package msgs

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/pointcloud"
	"repro/internal/ros"
	"repro/internal/sensor"
)

// TestAllPayloadsBagRoundTrip serializes one of each payload type
// through the bag format and checks content survives — the contract the
// record/replay workflow depends on.
func TestAllPayloadsBagRoundTrip(t *testing.T) {
	cloud := pointcloud.New(2)
	cloud.Append(pointcloud.Point{Pos: geom.V3(1, 2, 3), Intensity: 0.5, Ring: 7})

	img := sensor.NewImage(4, 3)
	img.Set(1, 2, 1, 0.25)
	frame := &sensor.Frame{
		Image: img,
		GT:    []sensor.GTBox{{Rect: geom.NewRect(geom.V2(0, 0), geom.V2(2, 2)), ActorID: 9}},
	}

	payloads := []any{
		&PointCloud{Cloud: cloud},
		&CameraImage{Frame: frame},
		&GNSS{Fix: sensor.GNSSFix{Pos: geom.V3(10, 20, 0), Sigma: 2}},
		&IMU{Sample: sensor.IMUSample{YawRate: 0.1, Speed: 8}},
		&PoseStamped{Pose: geom.NewPose(1, 2, 0, 0.5), Fitness: 1.5, Iterations: 7},
		&DetectedObjectArray{Objects: []DetectedObject{{
			ID: 3, Label: LabelCar, Score: 0.9,
			Pose:          geom.NewPose(5, 6, 0, 0.1),
			Dim:           geom.V3(4, 2, 1.5),
			Hull:          geom.Polygon{geom.V2(0, 0), geom.V2(1, 0), geom.V2(1, 1)},
			PredictedPath: []geom.Vec2{geom.V2(7, 8)},
		}}},
		&OccupancyGrid{Width: 2, Height: 2, Resolution: 0.5, Data: []int8{0, 100, 60, 0}},
		&LaneArray{Lanes: []Lane{{Waypoints: []Waypoint{{Pos: geom.V2(1, 1), Speed: 8}}}}, Best: 0},
		&TwistStamped{Twist: geom.Twist{Linear: 5, Angular: 0.2}},
	}

	var buf bytes.Buffer
	w, err := ros.NewBagWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range payloads {
		if err := w.Write(ros.BagRecord{Topic: "/t", Stamp: time.Duration(i), Payload: p}); err != nil {
			t.Fatalf("writing payload %T: %v", p, err)
		}
	}
	r, err := ros.NewBagReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(payloads) {
		t.Fatalf("got %d records, want %d", len(recs), len(payloads))
	}

	pc := recs[0].Payload.(*PointCloud)
	if pc.Cloud.Len() != 1 || pc.Cloud.Points[0].Ring != 7 {
		t.Errorf("point cloud round trip: %+v", pc.Cloud)
	}
	ci := recs[1].Payload.(*CameraImage)
	if ci.Frame.Image.At(1, 2, 1) != 0.25 || ci.Frame.GT[0].ActorID != 9 {
		t.Error("camera image round trip failed")
	}
	doa := recs[5].Payload.(*DetectedObjectArray)
	if doa.Objects[0].Label != LabelCar || len(doa.Objects[0].Hull) != 3 {
		t.Errorf("object array round trip: %+v", doa.Objects[0])
	}
	grid := recs[6].Payload.(*OccupancyGrid)
	if grid.At(1, 0) != 100 {
		t.Errorf("grid round trip: %+v", grid)
	}
}

func TestOccupancyGridBounds(t *testing.T) {
	g := &OccupancyGrid{Width: 3, Height: 3, Resolution: 1, Data: make([]int8, 9)}
	g.Set(1, 1, 50)
	if g.At(1, 1) != 50 {
		t.Error("set/at round trip")
	}
	// Out of range: read blocked, write ignored.
	if g.At(5, 5) != 100 || g.At(-1, 0) != 100 {
		t.Error("out-of-range reads should be blocked")
	}
	g.Set(5, 5, 25) // must not panic
	g.Set(-1, -1, 25)
}
