// Package msgs defines the concrete payload types exchanged on the
// graph's topics — the equivalent of Autoware's message definitions
// (sensor_msgs, autoware_msgs). All types are bag-serializable.
package msgs

import (
	"repro/internal/geom"
	"repro/internal/pointcloud"
	"repro/internal/ros"
	"repro/internal/sensor"
)

func init() {
	ros.RegisterBagType(&PointCloud{})
	ros.RegisterBagType(&CameraImage{})
	ros.RegisterBagType(&GNSS{})
	ros.RegisterBagType(&IMU{})
	ros.RegisterBagType(&PoseStamped{})
	ros.RegisterBagType(&DetectedObjectArray{})
	ros.RegisterBagType(&OccupancyGrid{})
	ros.RegisterBagType(&LaneArray{})
	ros.RegisterBagType(&TwistStamped{})
}

// PointCloud wraps a LiDAR cloud in the ego frame.
type PointCloud struct {
	Cloud *pointcloud.Cloud
}

// CameraImage wraps a camera frame (pixels + ground truth for offline
// quality evaluation; detectors only read the pixels).
type CameraImage struct {
	Frame *sensor.Frame
}

// GNSS is a satellite fix.
type GNSS struct {
	Fix sensor.GNSSFix
}

// IMU is an inertial sample.
type IMU struct {
	Sample sensor.IMUSample
}

// PoseStamped is a localization estimate.
type PoseStamped struct {
	Pose geom.Pose
	// Fitness is the NDT matching score (lower is better); Iterations
	// is how many Newton steps the matcher took.
	Fitness    float64
	Iterations int
}

// ObjectLabel is a detection class.
type ObjectLabel string

// Detection labels.
const (
	LabelUnknown    ObjectLabel = "unknown"
	LabelCar        ObjectLabel = "car"
	LabelTruck      ObjectLabel = "truck"
	LabelPedestrian ObjectLabel = "pedestrian"
	LabelCyclist    ObjectLabel = "cyclist"
)

// DetectedObject is one perceived traffic participant, in whatever
// richness the producing stage could supply: LiDAR clusters carry pose,
// hull and dimensions but LabelUnknown; vision detections carry label
// and image rect; fusion and tracking fill in the rest.
type DetectedObject struct {
	ID    int
	Label ObjectLabel
	Score float64
	// Pose is the object pose in the map frame (or ego frame for raw
	// cluster output, per FrameID on the message).
	Pose geom.Pose
	Dim  geom.Vec3
	// Velocity is the planar velocity, filled by tracking.
	Velocity geom.Vec2
	// YawRate is filled by tracking.
	YawRate float64
	// Hull is the ground-plane convex hull from clustering.
	Hull geom.Polygon
	// ImageRect is the 2D box for vision detections.
	ImageRect    geom.Rect
	HasImageRect bool
	// PointCount is the number of LiDAR points supporting the object.
	PointCount int
	// Tracked marks objects that passed the tracker (stable IDs).
	Tracked bool
	// PredictedPath, filled by motion prediction: future ground-plane
	// positions at PathDt intervals.
	PredictedPath []geom.Vec2
	PathDt        float64
}

// DetectedObjectArray is the standard object-list payload.
type DetectedObjectArray struct {
	Objects []DetectedObject
}

// OccupancyGrid is the costmap payload: row-major cells, origin at the
// grid's minimum corner, cost 0 (free) .. 100 (occupied).
type OccupancyGrid struct {
	Width, Height int
	Resolution    float64 // meters per cell
	Origin        geom.Vec2
	Data          []int8
}

// At returns the cost at cell (x, y); out-of-range queries return 100
// (treat unknown as blocked).
func (g *OccupancyGrid) At(x, y int) int8 {
	if x < 0 || y < 0 || x >= g.Width || y >= g.Height {
		return 100
	}
	return g.Data[y*g.Width+x]
}

// Set assigns the cost at cell (x, y); out-of-range is ignored.
func (g *OccupancyGrid) Set(x, y int, v int8) {
	if x < 0 || y < 0 || x >= g.Width || y >= g.Height {
		return
	}
	g.Data[y*g.Width+x] = v
}

// CellOf maps a world point to cell coordinates.
func (g *OccupancyGrid) CellOf(p geom.Vec2) (int, int) {
	return int((p.X - g.Origin.X) / g.Resolution), int((p.Y - g.Origin.Y) / g.Resolution)
}

// Waypoint is one pose+speed sample of a planned lane.
type Waypoint struct {
	Pos   geom.Vec2
	Yaw   float64
	Speed float64
}

// Lane is a dense waypoint path.
type Lane struct {
	Waypoints []Waypoint
	Cost      float64
}

// LaneArray carries planner output (global route or local rollouts).
type LaneArray struct {
	Lanes []Lane
	// Best indexes the selected lane, -1 when none is feasible.
	Best int
}

// TwistStamped is a velocity command.
type TwistStamped struct {
	Twist geom.Twist
}
