package ros

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"time"
)

// BagRecord is one recorded message: the topic, the capture time and
// the payload. Payload types must be registered with RegisterBagType
// before writing or reading.
type BagRecord struct {
	Topic   string
	Stamp   time.Duration
	FrameID string
	Payload any
}

// RegisterBagType registers a payload type for bag serialization. Call
// once per concrete payload type (typically from an init function in
// the message-definition package).
func RegisterBagType(value any) {
	gob.Register(value)
}

type bagHeader struct {
	Magic   string
	Version int
}

const bagMagic = "AVBAG"

// bagFrame is one v2 record envelope: the record's gob bytes plus
// their CRC32C. The inner encoding is stateful across frames (type
// descriptors are sent once), so frames must be decoded in order by a
// single stateful decoder — exactly what BagReader does.
type bagFrame struct {
	Data []byte
	CRC  uint32
}

// castagnoli is the CRC32C polynomial table (the checksum storage
// systems use for record integrity).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// BagWriter streams records to an underlying writer using the v2
// format: every record is enveloped with a CRC32C so corruption is
// detected at read time and attributed to the exact record, instead of
// surfacing as a confusing gob decode error (or worse, a silently
// wrong payload).
type BagWriter struct {
	enc   *gob.Encoder // outer frame stream
	rec   *gob.Encoder // stateful record encoder, one gob message per record
	buf   bytes.Buffer
	count int
}

// NewBagWriter wraps w. The header is written immediately.
func NewBagWriter(w io.Writer) (*BagWriter, error) {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(bagHeader{Magic: bagMagic, Version: 2}); err != nil {
		return nil, fmt.Errorf("ros: writing bag header: %w", err)
	}
	bw := &BagWriter{enc: enc}
	bw.rec = gob.NewEncoder(&bw.buf)
	return bw, nil
}

// Write appends one record with its checksum.
func (bw *BagWriter) Write(rec BagRecord) error {
	bw.buf.Reset()
	if err := bw.rec.Encode(rec); err != nil {
		return fmt.Errorf("ros: encoding bag record: %w", err)
	}
	data := bw.buf.Bytes()
	frame := bagFrame{Data: data, CRC: crc32.Checksum(data, castagnoli)}
	if err := bw.enc.Encode(frame); err != nil {
		return fmt.Errorf("ros: writing bag record: %w", err)
	}
	bw.count++
	return nil
}

// Count returns the number of records written.
func (bw *BagWriter) Count() int { return bw.count }

// frameBuffer feeds one frame's bytes to the stateful record decoder.
// It implements io.ByteReader so gob uses it directly instead of
// wrapping it in a bufio.Reader, which could read ahead across frame
// boundaries.
type frameBuffer struct {
	data []byte
	off  int
}

func (f *frameBuffer) Read(p []byte) (int, error) {
	if f.off >= len(f.data) {
		return 0, io.EOF
	}
	n := copy(p, f.data[f.off:])
	f.off += n
	return n, nil
}

func (f *frameBuffer) ReadByte() (byte, error) {
	if f.off >= len(f.data) {
		return 0, io.EOF
	}
	b := f.data[f.off]
	f.off++
	return b, nil
}

func (f *frameBuffer) reset(data []byte) {
	f.data = data
	f.off = 0
}

// BagReader reads records back. It accepts both formats: v2 bags are
// checksum-verified per record; v1 bags (no checksums) stay readable.
type BagReader struct {
	dec     *gob.Decoder // outer stream (v1: records, v2: frames)
	version int
	recDec  *gob.Decoder // stateful record decoder over frames (v2)
	frame   frameBuffer
	// read counts successfully decoded records, so decode errors can
	// say exactly where a corrupted or truncated bag failed.
	read int
}

// NewBagReader wraps r and validates the header.
func NewBagReader(r io.Reader) (*BagReader, error) {
	dec := gob.NewDecoder(r)
	var h bagHeader
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("ros: reading bag header: %w", err)
	}
	if h.Magic != bagMagic {
		return nil, fmt.Errorf("ros: not a bag file (magic %q)", h.Magic)
	}
	if h.Version != 1 && h.Version != 2 {
		return nil, fmt.Errorf("ros: unsupported bag version %d", h.Version)
	}
	br := &BagReader{dec: dec, version: h.Version}
	if h.Version == 2 {
		br.recDec = gob.NewDecoder(&br.frame)
	}
	return br, nil
}

// Version returns the format version of the bag being read.
func (br *BagReader) Version() int { return br.version }

// Checksummed reports whether the bag carries per-record checksums.
func (br *BagReader) Checksummed() bool { return br.version >= 2 }

// Next returns the next record, or io.EOF at end of bag. Decode and
// checksum failures name the failing record (1-based) and how many
// records decoded cleanly before it.
func (br *BagReader) Next() (BagRecord, error) {
	var rec BagRecord
	if br.version == 1 {
		err := br.dec.Decode(&rec)
		if errors.Is(err, io.EOF) {
			return rec, io.EOF
		}
		if err != nil {
			return rec, br.recordErr(err)
		}
		br.read++
		return rec, nil
	}
	var frame bagFrame
	err := br.dec.Decode(&frame)
	if errors.Is(err, io.EOF) {
		return rec, io.EOF
	}
	if err != nil {
		return rec, br.recordErr(err)
	}
	if got := crc32.Checksum(frame.Data, castagnoli); got != frame.CRC {
		return rec, fmt.Errorf("ros: bag record %d failed checksum (stored %08x, computed %08x; %d records decoded cleanly before it)",
			br.read+1, frame.CRC, got, br.read)
	}
	br.frame.reset(frame.Data)
	if err := br.recDec.Decode(&rec); err != nil {
		return rec, br.recordErr(err)
	}
	br.read++
	return rec, nil
}

func (br *BagReader) recordErr(err error) error {
	return fmt.Errorf("ros: reading bag record %d (%d records decoded cleanly before it): %w",
		br.read+1, br.read, err)
}

// Records returns how many records have been decoded successfully.
func (br *BagReader) Records() int { return br.read }

// ReadAll drains the reader, returning records sorted by stamp (stable
// for equal stamps, preserving recording order). On a decode failure
// it returns the records read up to that point together with the
// error, so callers can salvage the intact prefix of a damaged bag.
func (br *BagReader) ReadAll() ([]BagRecord, error) {
	var out []BagRecord
	var readErr error
	for {
		rec, err := br.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			readErr = err
			break
		}
		out = append(out, rec)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Stamp < out[j].Stamp })
	return out, readErr
}
