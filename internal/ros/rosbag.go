package ros

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"
)

// BagRecord is one recorded message: the topic, the capture time and
// the payload. Payload types must be registered with RegisterBagType
// before writing or reading.
type BagRecord struct {
	Topic   string
	Stamp   time.Duration
	FrameID string
	Payload any
}

// RegisterBagType registers a payload type for bag serialization. Call
// once per concrete payload type (typically from an init function in
// the message-definition package).
func RegisterBagType(value any) {
	gob.Register(value)
}

// BagWriter streams records to an underlying writer.
type BagWriter struct {
	enc   *gob.Encoder
	count int
}

// NewBagWriter wraps w. The header is written immediately.
func NewBagWriter(w io.Writer) (*BagWriter, error) {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(bagHeader{Magic: bagMagic, Version: 1}); err != nil {
		return nil, fmt.Errorf("ros: writing bag header: %w", err)
	}
	return &BagWriter{enc: enc}, nil
}

type bagHeader struct {
	Magic   string
	Version int
}

const bagMagic = "AVBAG"

// Write appends one record.
func (bw *BagWriter) Write(rec BagRecord) error {
	if err := bw.enc.Encode(rec); err != nil {
		return fmt.Errorf("ros: writing bag record: %w", err)
	}
	bw.count++
	return nil
}

// Count returns the number of records written.
func (bw *BagWriter) Count() int { return bw.count }

// BagReader reads records back.
type BagReader struct {
	dec *gob.Decoder
}

// NewBagReader wraps r and validates the header.
func NewBagReader(r io.Reader) (*BagReader, error) {
	dec := gob.NewDecoder(r)
	var h bagHeader
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("ros: reading bag header: %w", err)
	}
	if h.Magic != bagMagic {
		return nil, fmt.Errorf("ros: not a bag file (magic %q)", h.Magic)
	}
	if h.Version != 1 {
		return nil, fmt.Errorf("ros: unsupported bag version %d", h.Version)
	}
	return &BagReader{dec: dec}, nil
}

// Next returns the next record, or io.EOF at end of bag.
func (br *BagReader) Next() (BagRecord, error) {
	var rec BagRecord
	err := br.dec.Decode(&rec)
	if errors.Is(err, io.EOF) {
		return rec, io.EOF
	}
	if err != nil {
		return rec, fmt.Errorf("ros: reading bag record: %w", err)
	}
	return rec, nil
}

// ReadAll drains the reader, returning records sorted by stamp (stable
// for equal stamps, preserving recording order).
func (br *BagReader) ReadAll() ([]BagRecord, error) {
	var out []BagRecord
	for {
		rec, err := br.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Stamp < out[j].Stamp })
	return out, nil
}
