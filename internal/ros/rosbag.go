package ros

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"
)

// BagRecord is one recorded message: the topic, the capture time and
// the payload. Payload types must be registered with RegisterBagType
// before writing or reading.
type BagRecord struct {
	Topic   string
	Stamp   time.Duration
	FrameID string
	Payload any
}

// RegisterBagType registers a payload type for bag serialization. Call
// once per concrete payload type (typically from an init function in
// the message-definition package).
func RegisterBagType(value any) {
	gob.Register(value)
}

// BagWriter streams records to an underlying writer.
type BagWriter struct {
	enc   *gob.Encoder
	count int
}

// NewBagWriter wraps w. The header is written immediately.
func NewBagWriter(w io.Writer) (*BagWriter, error) {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(bagHeader{Magic: bagMagic, Version: 1}); err != nil {
		return nil, fmt.Errorf("ros: writing bag header: %w", err)
	}
	return &BagWriter{enc: enc}, nil
}

type bagHeader struct {
	Magic   string
	Version int
}

const bagMagic = "AVBAG"

// Write appends one record.
func (bw *BagWriter) Write(rec BagRecord) error {
	if err := bw.enc.Encode(rec); err != nil {
		return fmt.Errorf("ros: writing bag record: %w", err)
	}
	bw.count++
	return nil
}

// Count returns the number of records written.
func (bw *BagWriter) Count() int { return bw.count }

// BagReader reads records back.
type BagReader struct {
	dec *gob.Decoder
	// read counts successfully decoded records, so decode errors can
	// say exactly where a corrupted or truncated bag failed.
	read int
}

// NewBagReader wraps r and validates the header.
func NewBagReader(r io.Reader) (*BagReader, error) {
	dec := gob.NewDecoder(r)
	var h bagHeader
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("ros: reading bag header: %w", err)
	}
	if h.Magic != bagMagic {
		return nil, fmt.Errorf("ros: not a bag file (magic %q)", h.Magic)
	}
	if h.Version != 1 {
		return nil, fmt.Errorf("ros: unsupported bag version %d", h.Version)
	}
	return &BagReader{dec: dec}, nil
}

// Next returns the next record, or io.EOF at end of bag. Decode
// failures name the failing record (1-based) and how many records
// decoded cleanly before it.
func (br *BagReader) Next() (BagRecord, error) {
	var rec BagRecord
	err := br.dec.Decode(&rec)
	if errors.Is(err, io.EOF) {
		return rec, io.EOF
	}
	if err != nil {
		return rec, fmt.Errorf("ros: reading bag record %d (%d records decoded cleanly before it): %w",
			br.read+1, br.read, err)
	}
	br.read++
	return rec, nil
}

// Records returns how many records have been decoded successfully.
func (br *BagReader) Records() int { return br.read }

// ReadAll drains the reader, returning records sorted by stamp (stable
// for equal stamps, preserving recording order). On a decode failure
// it returns the records read up to that point together with the
// error, so callers can salvage the intact prefix of a damaged bag.
func (br *BagReader) ReadAll() ([]BagRecord, error) {
	var out []BagRecord
	var readErr error
	for {
		rec, err := br.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			readErr = err
			break
		}
		out = append(out, rec)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Stamp < out[j].Stamp })
	return out, readErr
}
