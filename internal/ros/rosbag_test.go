package ros

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"
	"time"
)

// writeV1Bag hand-crafts a legacy v1 bag (header version 1, records
// encoded directly on the outer stream, no checksums) — the format
// every bag written before the v2 envelope used.
func writeV1Bag(t *testing.T, recs []BagRecord) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(bagHeader{Magic: bagMagic, Version: 1}); err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			t.Fatal(err)
		}
	}
	return &buf
}

func TestBagV1Compat(t *testing.T) {
	RegisterBagType("")
	recs := []BagRecord{
		{Topic: "/a", Stamp: 10, Payload: "one"},
		{Topic: "/b", Stamp: 20, Payload: "two"},
	}
	r, err := NewBagReader(writeV1Bag(t, recs))
	if err != nil {
		t.Fatal(err)
	}
	if r.Version() != 1 {
		t.Errorf("version = %d, want 1", r.Version())
	}
	if r.Checksummed() {
		t.Error("v1 bags carry no checksums")
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Payload != "one" || got[1].Payload != "two" {
		t.Fatalf("got %+v", got)
	}
}

func TestBagV2Checksummed(t *testing.T) {
	RegisterBagType("")
	var buf bytes.Buffer
	w, err := NewBagWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Write(BagRecord{Topic: "/t", Stamp: time.Duration(i), Payload: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewBagReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Version() != 2 || !r.Checksummed() {
		t.Errorf("version = %d checksummed = %t, want v2 checksummed", r.Version(), r.Checksummed())
	}
	if got, err := r.ReadAll(); err != nil || len(got) != 3 {
		t.Fatalf("got %d records, err %v", len(got), err)
	}
}

func TestBagChecksumDetectsCorruption(t *testing.T) {
	RegisterBagType("")
	var buf bytes.Buffer
	w, err := NewBagWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// A distinctive payload so the corrupted byte is easy to find in
	// the serialized stream without disturbing framing metadata.
	payloads := []string{"aaaaaaaaaaaaaaaa", "bbbbbbbbbbbbbbbb", "cccccccccccccccc"}
	for i, p := range payloads {
		if err := w.Write(BagRecord{Topic: "/t", Stamp: time.Duration(i), Payload: p}); err != nil {
			t.Fatal(err)
		}
	}
	raw := buf.Bytes()
	// Flip one payload byte of the middle record.
	idx := bytes.Index(raw, []byte("bbbbbbbbbbbbbbbb"))
	if idx < 0 {
		t.Fatal("payload bytes not found in stream")
	}
	raw[idx+4] ^= 0xFF

	r, err := NewBagReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if err == nil {
		t.Fatal("corrupted record should fail its checksum")
	}
	if !strings.Contains(err.Error(), "record 2") {
		t.Errorf("error should name record 2: %v", err)
	}
	if !strings.Contains(err.Error(), "checksum") {
		t.Errorf("error should name the checksum: %v", err)
	}
	// The intact prefix is salvaged.
	if len(got) != 1 || got[0].Payload != "aaaaaaaaaaaaaaaa" {
		t.Errorf("salvaged prefix = %+v", got)
	}
}

func TestBagV2TruncatedStream(t *testing.T) {
	RegisterBagType("")
	var buf bytes.Buffer
	w, err := NewBagWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := w.Write(BagRecord{Topic: "/t", Stamp: time.Duration(i), Payload: "payload"}); err != nil {
			t.Fatal(err)
		}
	}
	raw := buf.Bytes()[:buf.Len()-5]
	r, err := NewBagReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if err == nil {
		t.Fatal("truncated bag should error")
	}
	if len(got) != 1 {
		t.Errorf("salvaged %d records, want 1", len(got))
	}
}
