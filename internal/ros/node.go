package ros

import (
	"time"

	"repro/internal/work"
)

// Output is one message a node wants published after a callback.
type Output struct {
	Topic   string
	Payload any
	FrameID string
}

// Result is everything a callback execution produced: the outputs to
// publish, the machine work the computation represents, and — for nodes
// that fuse internally cached inputs from other topics — the extra
// input messages whose origin lineage the outputs inherit.
type Result struct {
	Outputs []Output
	Work    work.Work
	// FusedInputs lists previously received messages (from other
	// subscriptions) whose origins must be merged into the outputs'
	// lineage, in addition to the triggering input.
	FusedInputs []*Message
}

// Node is a computation unit in the graph. Process is pure computation:
// it must not block or sleep — the platform layer assigns it virtual
// time based on the returned Work.
type Node interface {
	// Name returns the unique node name (matches the paper's node names).
	Name() string
	// Subscribes declares the node's input topics and queue depths.
	Subscribes() []SubSpec
	// Process handles one input message and returns outputs and cost.
	// now is the virtual time at which the callback started.
	Process(in *Message, now time.Duration) Result
}
