package ros

import (
	"bytes"
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"
)

// fuzzPayload is the payload type the round-trip fuzzer serializes. It
// mixes scalar, slice and string fields to cover gob's wire shapes.
type fuzzPayload struct {
	A float64
	B []float32
	C string
}

func init() {
	RegisterBagType(&fuzzPayload{})
}

// validBag serializes n records into bag bytes, for seeding the decode
// fuzzer with structurally valid input.
func validBag(n int) []byte {
	var buf bytes.Buffer
	w, err := NewBagWriter(&buf)
	if err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		err := w.Write(BagRecord{
			Topic:   "/points_raw",
			Stamp:   time.Duration(i) * 100 * time.Millisecond,
			FrameID: "velodyne",
			Payload: &fuzzPayload{A: float64(i), B: []float32{1, 2, 3}, C: "seed"},
		})
		if err != nil {
			panic(err)
		}
	}
	return buf.Bytes()
}

// FuzzBagDecode feeds arbitrary bytes to the bag reader. The contract:
// NewBagReader and Next may reject input with an error, but must never
// panic, regardless of how the stream is malformed, truncated or
// corrupted.
func FuzzBagDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("not a bag"))
	f.Add(validBag(0))
	f.Add(validBag(3))
	// A valid header followed by a truncated record.
	whole := validBag(1)
	f.Add(whole[:len(whole)-3])
	// A valid bag with a flipped byte mid-stream.
	flipped := append([]byte(nil), validBag(2)...)
	flipped[len(flipped)/2] ^= 0xFF
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewBagReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Drain with a record cap: corrupted streams must terminate with
		// an error or EOF, never spin or panic.
		for i := 0; i < 1<<16; i++ {
			_, err := r.Next()
			if errors.Is(err, io.EOF) || err != nil {
				return
			}
		}
		t.Fatalf("bag of %d bytes yielded over %d records", len(data), 1<<16)
	})
}

// FuzzBagRoundTrip checks write→read is lossless for arbitrary record
// contents: whatever the writer accepts, the reader returns unchanged.
func FuzzBagRoundTrip(f *testing.F) {
	f.Add("/points_raw", "velodyne", int64(0), 0.0, "", 0)
	f.Add("/image_raw", "camera", int64(1e9), 3.25, "payload", 4)
	f.Add("", "", int64(-5), math.Inf(1), "\xff\xfe", 1)

	f.Fuzz(func(t *testing.T, topic, frame string, stamp int64, a float64, c string, n int) {
		if n < 0 {
			n = -n
		}
		n %= 64
		b := make([]float32, n)
		for i := range b {
			b[i] = float32(i) * float32(a)
		}
		in := BagRecord{
			Topic:   topic,
			Stamp:   time.Duration(stamp),
			FrameID: frame,
			Payload: &fuzzPayload{A: a, B: b, C: c},
		}

		var buf bytes.Buffer
		w, err := NewBagWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(in); err != nil {
			t.Fatal(err)
		}
		r, err := NewBagReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reading back a just-written bag: %v", err)
		}
		out, err := r.Next()
		if err != nil {
			t.Fatalf("decoding a just-written record: %v", err)
		}
		if out.Topic != in.Topic || out.Stamp != in.Stamp || out.FrameID != in.FrameID {
			t.Fatalf("envelope mismatch: wrote %+v read %+v", in, out)
		}
		p, ok := out.Payload.(*fuzzPayload)
		if !ok {
			t.Fatalf("payload type lost: %T", out.Payload)
		}
		if !equalFloat64(p.A, a) || p.C != c {
			t.Fatalf("payload scalar mismatch: wrote {A:%v C:%q} read {A:%v C:%q}", a, c, p.A, p.C)
		}
		if len(p.B) != len(b) {
			t.Fatalf("payload slice length: wrote %d read %d", len(b), len(p.B))
		}
		for i := range b {
			if !equalFloat32(p.B[i], b[i]) {
				t.Fatalf("payload slice[%d]: wrote %v read %v", i, b[i], p.B[i])
			}
		}
		if _, err := r.Next(); !errors.Is(err, io.EOF) {
			t.Fatalf("expected EOF after the single record, got %v", err)
		}
	})
}

// equalFloat64 treats NaN as equal to itself so fuzzing NaN inputs
// round-trip cleanly.
func equalFloat64(x, y float64) bool {
	return x == y || (math.IsNaN(x) && math.IsNaN(y))
}

func equalFloat32(x, y float32) bool {
	return x == y || (x != x && y != y)
}

// TestWriteFuzzCorpus regenerates the checked-in seed corpus under
// testdata/fuzz. Guarded: run with WRITE_CORPUS=1 after changing the
// bag format, then commit the updated files.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("WRITE_CORPUS") == "" {
		t.Skip("set WRITE_CORPUS=1 to regenerate the fuzz seed corpus")
	}
	whole := validBag(1)
	flipped := append([]byte(nil), validBag(2)...)
	flipped[len(flipped)/2] ^= 0xFF
	decodeSeeds := map[string][]byte{
		"empty":     {},
		"garbage":   []byte("not a bag"),
		"valid":     validBag(3),
		"truncated": whole[:len(whole)-3],
		"corrupted": flipped,
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzBagDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range decodeSeeds {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	dir = filepath.Join("testdata", "fuzz", "FuzzBagRoundTrip")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	rtSeeds := map[string][6]any{
		"basic":    {"/points_raw", "velodyne", int64(0), 0.0, "", 0},
		"full":     {"/image_raw", "camera", int64(1e9), 3.25, "payload", 4},
		"extremes": {"", "", int64(-5), math.NaN(), "\xff\xfe", 63},
	}
	for name, args := range rtSeeds {
		body := "go test fuzz v1\n" +
			"string(" + strconv.Quote(args[0].(string)) + ")\n" +
			"string(" + strconv.Quote(args[1].(string)) + ")\n" +
			"int64(" + strconv.FormatInt(args[2].(int64), 10) + ")\n" +
			formatFloatSeed(args[3].(float64)) + "\n" +
			"string(" + strconv.Quote(args[4].(string)) + ")\n" +
			"int(" + strconv.Itoa(args[5].(int)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// formatFloatSeed renders one float64 corpus line: non-finite values
// via their bit pattern (the fuzz format's spelling), everything else
// as a plain float64 literal.
func formatFloatSeed(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "math.Float64frombits(0x" + strconv.FormatUint(math.Float64bits(v), 16) + ")"
	}
	return "float64(" + strconv.FormatFloat(v, 'g', -1, 64) + ")"
}
