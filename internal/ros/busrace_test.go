package ros

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBusStressConcurrentBurst is the MPSC-shim stress test the CI
// bus-stress job runs under -race: several producer goroutines publish
// through a shared bus while a burst republisher — modeled on the
// fault injector's burst generator, which caches the last payload seen
// on a topic and re-publishes it at its own rate — hammers the same
// topic from yet another goroutine, and a consumer concurrently drains
// one subscriber. Afterwards the books must balance exactly: every
// publication reached every queue, and once drained the pool holds
// zero live references.
func TestBusStressConcurrentBurst(t *testing.T) {
	bus := NewSharedBus()
	subs := []*Subscription{
		bus.Subscribe("fast", SubSpec{Topic: "/points_raw", Depth: 4}),
		bus.Subscribe("slow", SubSpec{Topic: "/points_raw", Depth: 1}),
		bus.Subscribe("elastic", SubSpec{Topic: "/points_raw", Depth: 0}),
	}

	// The burst generator's last-payload cache, fed by a bus tap the
	// way faults.Injector wires its replay buffer.
	var lastPayload atomic.Value
	var tapSeen atomic.Uint64
	bus.Tap(func(sub *Subscription, m *Message) {
		// Borrow only: observers must not retain m without Retain.
		lastPayload.Store(m.Payload)
		tapSeen.Add(1)
	}, nil)

	const producers = 4
	const perProducer = 400
	const burstPushes = 600

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				stamp := time.Duration(p*perProducer+i) * time.Millisecond
				bus.Publish("/points_raw", stamp, fmt.Sprintf("frame-%d-%d", p, i), nil)
			}
		}(p)
	}
	// Burst republisher: replays the cached payload with stale stamps,
	// exercising the sorted-insert path under concurrency.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < burstPushes; i++ {
			if lp := lastPayload.Load(); lp != nil {
				bus.Publish("/points_raw", time.Duration(i)*time.Microsecond, lp, nil)
			}
		}
	}()
	// Concurrent consumer on the bounded-depth subscriber.
	stop := make(chan struct{})
	var consumed atomic.Uint64
	var consumerWG sync.WaitGroup
	consumerWG.Add(1)
	go func() {
		defer consumerWG.Done()
		for {
			if m := subs[0].Queue.Pop(); m != nil {
				consumed.Add(1)
				m.Release()
				continue
			}
			select {
			case <-stop:
				return
			default:
				runtime.Gosched()
			}
		}
	}()

	wg.Wait()
	close(stop)
	consumerWG.Wait()

	// Conservation per queue: every publish arrived exactly once.
	total := uint64(0)
	for _, s := range subs {
		arrived, delivered, dropped := s.Queue.Stats()
		if arrived != delivered+dropped+uint64(s.Queue.Len()) {
			t.Fatalf("%s: arrived=%d delivered=%d dropped=%d len=%d",
				s.Subscriber, arrived, delivered, dropped, s.Queue.Len())
		}
		if total == 0 {
			total = arrived
		} else if arrived != total {
			t.Fatalf("fan-out mismatch: %s saw %d, others %d", s.Subscriber, arrived, total)
		}
	}
	if total < producers*perProducer {
		t.Fatalf("arrived %d < %d produced", total, producers*perProducer)
	}
	if tapSeen.Load() != total*uint64(len(subs)) {
		t.Fatalf("tap fired %d times, want %d", tapSeen.Load(), total*uint64(len(subs)))
	}

	// Drain everything still queued and the pool must balance to zero.
	for _, s := range subs {
		for m := s.Queue.Pop(); m != nil; m = s.Queue.Pop() {
			m.Release()
		}
	}
	ps := bus.PoolStats()
	if ps.Live != 0 || ps.LiveRefs != 0 {
		t.Fatalf("pool leaked after drain: %+v", ps)
	}
	if ps.Acquired != total {
		t.Fatalf("acquired %d envelopes for %d publications", ps.Acquired, total)
	}
}
