package ros

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// msg builds a message whose payload is its push index, so eviction
// order is checkable.
func msg(i int) *Message {
	return &Message{Topic: "/t", Header: Header{Seq: uint64(i)}, Payload: i}
}

// TestQueueDropOldestSemantics is the table-driven contract for the
// bounded drop-oldest queue across the capacity spectrum: unbounded
// (depth 0), degenerate (depth 1), and general (depth N). For each case
// it pushes `pushes` messages and checks what survives, what was
// evicted, and that the counters account for every message exactly once.
func TestQueueDropOldestSemantics(t *testing.T) {
	cases := []struct {
		depth       int
		pushes      int
		wantLen     int
		wantDropped uint64
		wantFirst   int // payload of the oldest surviving message
	}{
		{depth: 0, pushes: 0, wantLen: 0, wantDropped: 0, wantFirst: -1},
		{depth: 0, pushes: 1, wantLen: 1, wantDropped: 0, wantFirst: 0},
		{depth: 0, pushes: 7, wantLen: 7, wantDropped: 0, wantFirst: 0},
		// More pushes than the unbounded queue's initial storage (8):
		// the ring must grow instead of dropping.
		{depth: 0, pushes: 100, wantLen: 100, wantDropped: 0, wantFirst: 0},
		{depth: 1, pushes: 1, wantLen: 1, wantDropped: 0, wantFirst: 0},
		{depth: 1, pushes: 5, wantLen: 1, wantDropped: 4, wantFirst: 4},
		{depth: 3, pushes: 2, wantLen: 2, wantDropped: 0, wantFirst: 0},
		{depth: 3, pushes: 3, wantLen: 3, wantDropped: 0, wantFirst: 0},
		{depth: 3, pushes: 10, wantLen: 3, wantDropped: 7, wantFirst: 7},
		{depth: 64, pushes: 1000, wantLen: 64, wantDropped: 936, wantFirst: 936},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("depth=%d/pushes=%d", tc.depth, tc.pushes), func(t *testing.T) {
			q := NewQueue(tc.depth)
			var evicted []int
			for i := 0; i < tc.pushes; i++ {
				if ev := q.Push(msg(i)); ev != nil {
					evicted = append(evicted, ev.Payload.(int))
				}
			}
			if got := q.Len(); got != tc.wantLen {
				t.Errorf("Len = %d, want %d", got, tc.wantLen)
			}
			arrived, delivered, dropped := q.Stats()
			if arrived != uint64(tc.pushes) {
				t.Errorf("arrived = %d, want %d", arrived, tc.pushes)
			}
			if dropped != tc.wantDropped {
				t.Errorf("dropped = %d, want %d", dropped, tc.wantDropped)
			}
			if uint64(len(evicted)) != tc.wantDropped {
				t.Errorf("Push returned %d evictions, counter says %d", len(evicted), dropped)
			}
			// Evictions are the oldest messages, in order.
			for i, p := range evicted {
				if p != i {
					t.Errorf("eviction %d returned payload %d (drop-oldest violated)", i, p)
				}
			}
			// Survivors pop in FIFO order starting at wantFirst.
			for i := 0; i < tc.wantLen; i++ {
				m := q.Pop()
				if m == nil {
					t.Fatalf("Pop %d returned nil with %d queued", i, tc.wantLen-i)
				}
				if got := m.Payload.(int); got != tc.wantFirst+i {
					t.Errorf("Pop %d = payload %d, want %d", i, got, tc.wantFirst+i)
				}
			}
			if q.Pop() != nil {
				t.Error("queue not empty after draining")
			}
			// Conservation: every arrival is either still queued (none,
			// we drained), delivered, or dropped.
			arrived, delivered, dropped = q.Stats()
			if arrived != delivered+dropped {
				t.Errorf("counter leak: arrived=%d delivered=%d dropped=%d", arrived, delivered, dropped)
			}
		})
	}
}

// TestQueueConcurrentPush hammers one queue from many goroutines and
// checks the counters stay exact: no message is double-counted or lost
// regardless of interleaving. Run under -race this also proves the
// locking is sound — the fault injector's burst generator publishes
// into queues concurrently with test drivers.
func TestQueueConcurrentPush(t *testing.T) {
	const (
		goroutines = 8
		perG       = 500
	)
	for _, depth := range []int{0, 1, 4, 128} {
		t.Run(fmt.Sprintf("depth=%d", depth), func(t *testing.T) {
			q := NewQueue(depth)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						q.Push(msg(g*perG + i))
					}
				}(g)
			}
			// A concurrent consumer exercises Push/Pop interleaving; it
			// spins until the producers are done, then exits.
			var popped uint64
			stop := make(chan struct{})
			consumerDone := make(chan struct{})
			go func() {
				defer close(consumerDone)
				for {
					if q.Pop() != nil {
						popped++
						continue
					}
					select {
					case <-stop:
						return
					default:
					}
				}
			}()
			wg.Wait()
			close(stop)
			<-consumerDone
			// Drain whatever the consumer left behind.
			for q.Pop() != nil {
				popped++
			}
			arrived, delivered, dropped := q.Stats()
			if arrived != goroutines*perG {
				t.Errorf("arrived = %d, want %d", arrived, goroutines*perG)
			}
			if delivered != popped {
				t.Errorf("delivered = %d but consumer popped %d", delivered, popped)
			}
			if arrived != delivered+dropped {
				t.Errorf("counter leak: arrived=%d delivered=%d dropped=%d", arrived, delivered, dropped)
			}
			if depth == 0 && dropped != 0 {
				t.Errorf("unbounded queue dropped %d messages", dropped)
			}
			if depth > 0 && q.Len() > depth {
				t.Errorf("Len %d exceeds depth %d", q.Len(), depth)
			}
		})
	}
}

// stamped builds a message with an explicit header stamp; the payload
// is the push index so arrival order stays checkable.
func stamped(i int, stamp int64) *Message {
	return &Message{Topic: "/t", Header: Header{Seq: uint64(i), Stamp: time.Duration(stamp)}, Payload: i}
}

// TestQueueStampOrderDelivery is the table-driven contract for the
// delivery-order guarantee: Pop always yields the oldest stamp
// regardless of arrival order, duplicate stamps preserve arrival order
// (stable), and drop-oldest evicts the oldest stamp — not whichever
// message happened to arrive first.
func TestQueueStampOrderDelivery(t *testing.T) {
	cases := []struct {
		name    string
		depth   int
		stamps  []int64
		wantPop []int // push indices in expected pop order
		wantEv  []int // push indices expected evicted, in order
	}{
		{
			name:  "in-order stream is FIFO",
			depth: 0, stamps: []int64{10, 20, 30},
			wantPop: []int{0, 1, 2},
		},
		{
			name:  "late frame is delivered first",
			depth: 0, stamps: []int64{20, 30, 10},
			wantPop: []int{2, 0, 1},
		},
		{
			name:  "fully reversed arrival",
			depth: 0, stamps: []int64{40, 30, 20, 10},
			wantPop: []int{3, 2, 1, 0},
		},
		{
			name:  "duplicate stamps keep arrival order",
			depth: 0, stamps: []int64{10, 20, 20, 20, 30},
			wantPop: []int{0, 1, 2, 3, 4},
		},
		{
			name:  "interleaved duplicates stay stable",
			depth: 0, stamps: []int64{20, 10, 20, 10},
			wantPop: []int{1, 3, 0, 2},
		},
		{
			name:  "drop-oldest evicts oldest stamp not first arrival",
			depth: 2, stamps: []int64{30, 10, 20},
			// Arrivals: 30, then 10 (sorted ahead of 30). Third push
			// evicts stamp 10 — the oldest — leaving 20, 30.
			wantPop: []int{2, 0},
			wantEv:  []int{1},
		},
		{
			name:  "overflow under reversed stamps",
			depth: 3, stamps: []int64{50, 40, 30, 20, 10},
			// Each overflow evicts the oldest *queued* stamp before the
			// incoming frame is inserted (ROS semantics: the new message
			// always lands): push of 20 evicts 30, push of 10 evicts 20.
			wantPop: []int{4, 1, 0},
			wantEv:  []int{2, 3},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q := NewQueue(tc.depth)
			var evicted []int
			for i, s := range tc.stamps {
				if ev := q.Push(stamped(i, s)); ev != nil {
					evicted = append(evicted, ev.Payload.(int))
				}
			}
			for i, want := range tc.wantPop {
				if peek := q.Peek(); peek == nil || peek.Payload.(int) != want {
					t.Errorf("Peek %d = %v, want index %d", i, peek, want)
				}
				m := q.Pop()
				if m == nil {
					t.Fatalf("Pop %d returned nil", i)
				}
				if got := m.Payload.(int); got != want {
					t.Errorf("Pop %d = index %d (stamp %v), want index %d",
						i, got, m.Header.Stamp, want)
				}
			}
			if q.Pop() != nil {
				t.Error("queue not empty after draining")
			}
			if len(evicted) != len(tc.wantEv) {
				t.Fatalf("evicted %v, want %v", evicted, tc.wantEv)
			}
			for i, want := range tc.wantEv {
				if evicted[i] != want {
					t.Errorf("eviction %d = index %d, want %d", i, evicted[i], want)
				}
			}
		})
	}
}

// TestQueueDropRate pins the derived statistic used by Table III.
func TestQueueDropRate(t *testing.T) {
	q := NewQueue(2)
	if got := q.DropRate(); got != 0 {
		t.Errorf("empty queue DropRate = %v, want 0", got)
	}
	for i := 0; i < 8; i++ {
		q.Push(msg(i))
	}
	if got, want := q.DropRate(), 6.0/8.0; got != want {
		t.Errorf("DropRate = %v, want %v", got, want)
	}
}
