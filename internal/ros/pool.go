package ros

import (
	"sync"
	"time"
)

// Pool recycles Message envelopes so the steady-state publish path
// allocates nothing: the topic string, header, origin storage and
// refcount live in a reused envelope, while payloads stay caller-owned
// and are never recycled (layers like the watchdog's last-good cache
// and the burst injector's replay buffer legitimately retain payload
// pointers long after the envelope is reused).
//
// Lifecycle: Bus.NewMessage hands out an envelope holding one
// reference; Bus.PublishMessage converts that reference into one per
// subscriber queue; Queue.Pop transfers a queue's reference to the
// consumer; Release drops a reference. At zero references the envelope
// retires into a limbo generation rather than returning to the free
// list immediately — epoch-based reclamation. The bus advances the
// epoch once per publication, and an envelope becomes reusable only
// after two advances, so any reader that held a borrowed pointer
// during the publication that released it (an observer tap, a peeked
// queue head) never sees the envelope rewritten mid-event.
//
// A Pool created by NewBus is exclusive: single-goroutine, zero
// synchronization, matching the deterministic simulator. NewSharedBus
// creates a shared pool whose reference operations serialize through a
// mutex — the MPSC shim concurrent producers (the burst-republish race
// tests) require.
type Pool struct {
	shared bool
	mu     sync.Mutex

	free  []*Message
	limbo [limboGenerations][]*Message
	epoch uint64

	acquired uint64
	liveMsgs int64
	liveRefs int64
}

// limboGenerations is the number of retirement buckets: an envelope
// retired at epoch E rejoins the free list when the epoch reaches E+2,
// so with rotation one spare bucket is needed.
const limboGenerations = 3

// NewPool creates an exclusive (single-goroutine) pool.
func NewPool() *Pool { return &Pool{} }

// NewSharedPool creates a pool safe for concurrent use.
func NewSharedPool() *Pool { return &Pool{shared: true} }

// PoolStats is a point-in-time accounting snapshot.
type PoolStats struct {
	// Acquired counts envelopes handed out since creation (including
	// recycled reuses).
	Acquired uint64
	// Live counts envelopes currently holding at least one reference.
	Live int64
	// LiveRefs is the total outstanding reference count across all
	// live envelopes. Zero means no layer is holding transport memory.
	LiveRefs int64
	// Idle counts envelopes parked in the free list or in limbo.
	Idle int
	// Epoch is the current reclamation epoch.
	Epoch uint64
}

// Stats returns the pool's accounting snapshot.
func (p *Pool) Stats() PoolStats {
	if p.shared {
		p.mu.Lock()
		defer p.mu.Unlock()
	}
	idle := len(p.free)
	for _, g := range p.limbo {
		idle += len(g)
	}
	return PoolStats{
		Acquired: p.acquired,
		Live:     p.liveMsgs,
		LiveRefs: p.liveRefs,
		Idle:     idle,
		Epoch:    p.epoch,
	}
}

// get acquires an envelope holding one reference, with the header
// populated and the origin lineage copied into pool-owned storage (so
// the envelope never aliases a caller slice across recycling).
func (p *Pool) get(topic string, stamp time.Duration, payload any, origins []Origin) *Message {
	if p.shared {
		p.mu.Lock()
		defer p.mu.Unlock()
	}
	var m *Message
	if n := len(p.free); n > 0 {
		m = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
	} else {
		m = &Message{}
	}
	m.pool = p
	m.refs = 1
	m.Topic = topic
	m.Header.Seq = 0
	m.Header.Stamp = stamp
	m.Header.FrameID = ""
	m.Header.Origins = append(m.Header.Origins[:0], origins...)
	m.Payload = payload
	p.acquired++
	p.liveMsgs++
	p.liveRefs++
	return m
}

// advance rotates the reclamation epoch: envelopes retired two epochs
// ago rejoin the free list.
func (p *Pool) advance() {
	if p.shared {
		p.mu.Lock()
		defer p.mu.Unlock()
	}
	p.epoch++
	b := (p.epoch + 1) % limboGenerations
	if len(p.limbo[b]) > 0 {
		p.free = append(p.free, p.limbo[b]...)
		for i := range p.limbo[b] {
			p.limbo[b][i] = nil
		}
		p.limbo[b] = p.limbo[b][:0]
	}
}

// retire parks a zero-reference envelope in the current limbo
// generation. Caller holds the pool lock in shared mode.
func (p *Pool) retire(m *Message) {
	p.liveMsgs--
	m.Payload = nil
	b := p.epoch % limboGenerations
	p.limbo[b] = append(p.limbo[b], m)
}
