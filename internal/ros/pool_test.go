package ros

import (
	"strings"
	"testing"
	"time"
)

// TestPoolDoubleReleasePanics pins the loud-failure contract: releasing
// a pooled message past zero references must panic with a diagnostic
// naming the topic, never silently corrupt the free list.
func TestPoolDoubleReleasePanics(t *testing.T) {
	b := NewBus()
	s := b.Subscribe("n", SubSpec{Topic: "/points_raw", Depth: 2})
	b.Publish("/points_raw", time.Millisecond, "payload", nil)
	m := s.Queue.Pop()
	m.Release()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("double release should panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "/points_raw") {
			t.Fatalf("panic should name the topic, got %v", r)
		}
	}()
	m.Release()
}

// TestPoolRetainAfterReleasePanics: a retain on a fully released
// envelope is a use-after-free in the making.
func TestPoolRetainAfterReleasePanics(t *testing.T) {
	b := NewBus()
	s := b.Subscribe("n", SubSpec{Topic: "/t", Depth: 1})
	b.Publish("/t", 0, 1, nil)
	m := s.Queue.Pop()
	m.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("retain after final release should panic")
		}
	}()
	m.Retain()
}

// TestPoolExactAccounting drives publications through a two-subscriber
// fan-out and checks the books balance to exactly zero once every
// reference is returned.
func TestPoolExactAccounting(t *testing.T) {
	b := NewBus()
	s1 := b.Subscribe("a", SubSpec{Topic: "/t", Depth: 0})
	s2 := b.Subscribe("b", SubSpec{Topic: "/t", Depth: 0})
	const n = 20
	for i := 0; i < n; i++ {
		b.Publish("/t", time.Duration(i), i, nil)
	}
	ps := b.PoolStats()
	if ps.Live != n || ps.LiveRefs != 2*n {
		t.Fatalf("mid-flight stats = %+v, want Live=%d LiveRefs=%d", ps, n, 2*n)
	}
	if got := b.QueuedMessages(); got != 2*n {
		t.Fatalf("queued = %d, want %d", got, 2*n)
	}
	for _, s := range []*Subscription{s1, s2} {
		for m := s.Queue.Pop(); m != nil; m = s.Queue.Pop() {
			m.Release()
		}
	}
	ps = b.PoolStats()
	if ps.Live != 0 || ps.LiveRefs != 0 {
		t.Fatalf("drained stats = %+v, want Live=0 LiveRefs=0", ps)
	}
	if ps.Acquired != n {
		t.Fatalf("acquired = %d, want %d", ps.Acquired, n)
	}
}

// TestPoolEvictionReleases: drop-oldest eviction must return the
// evicted envelope's reference to the pool (via the bus), not leak it.
func TestPoolEvictionReleases(t *testing.T) {
	b := NewBus()
	s := b.Subscribe("n", SubSpec{Topic: "/t", Depth: 2})
	for i := 0; i < 50; i++ {
		b.Publish("/t", time.Duration(i), i, nil)
	}
	ps := b.PoolStats()
	if ps.Live != 2 || ps.LiveRefs != 2 {
		t.Fatalf("after 50 publishes into depth-2: %+v, want Live=2 LiveRefs=2", ps)
	}
	for m := s.Queue.Pop(); m != nil; m = s.Queue.Pop() {
		m.Release()
	}
	if ps := b.PoolStats(); ps.Live != 0 || ps.LiveRefs != 0 {
		t.Fatalf("drained: %+v", ps)
	}
}

// TestPoolEpochReclamation pins the reclamation grace: a retired
// envelope must survive two epoch advances (two publications) before
// the pool may hand it out again — so an observer that borrowed the
// pointer during the event that released it never sees it rewritten.
func TestPoolEpochReclamation(t *testing.T) {
	b := NewBus()
	s := b.Subscribe("n", SubSpec{Topic: "/t", Depth: 4})

	publish := func(i int) *Message {
		b.Publish("/t", time.Duration(i), i, nil)
		m := s.Queue.Pop()
		return m
	}

	m1 := publish(1)
	m1.Release() // retired at the epoch after publish #1
	if m2 := publish(2); m2 == m1 {
		t.Fatal("envelope reused immediately after release (no epoch grace)")
	} else {
		m2.Release()
	}
	m3 := publish(3)
	if m3 == m1 {
		t.Fatal("envelope reused after a single epoch advance")
	}
	m3.Release()
	m4 := publish(4)
	if m4 != m1 {
		t.Fatalf("envelope not recycled after two epoch advances: got %p, want %p", m4, m1)
	}
	m4.Release()
}

// TestPoolAbandonedMessageReleases covers the quarantine path: an
// envelope acquired via NewMessage but never published must release
// cleanly back to the pool.
func TestPoolAbandonedMessageReleases(t *testing.T) {
	b := NewBus()
	b.Subscribe("n", SubSpec{Topic: "/t", Depth: 1})
	m := b.NewMessage("/t", time.Second, "corrupt", nil)
	if ps := b.PoolStats(); ps.Live != 1 || ps.LiveRefs != 1 {
		t.Fatalf("after NewMessage: %+v", ps)
	}
	m.Release()
	if ps := b.PoolStats(); ps.Live != 0 || ps.LiveRefs != 0 {
		t.Fatalf("after abandoning: %+v", ps)
	}
	// Sequence numbers are only assigned on publication, so the
	// abandoned frame must not have consumed one.
	s := b.SubscriptionsOf("n")[0]
	b.Publish("/t", 2*time.Second, "good", nil)
	if got := s.Queue.Pop(); got.Header.Seq != 1 {
		t.Fatalf("first delivered seq = %d, want 1", got.Header.Seq)
	}
}

// TestPoolNoSubscribersRecycles: publishing into the void must not
// leak the envelope.
func TestPoolNoSubscribersRecycles(t *testing.T) {
	b := NewBus()
	for i := 0; i < 10; i++ {
		b.Publish("/nothing", time.Duration(i), i, nil)
	}
	if ps := b.PoolStats(); ps.Live != 0 || ps.LiveRefs != 0 {
		t.Fatalf("no-subscriber publishes leaked: %+v", ps)
	}
}

// TestPoolOriginsCopied: the pooled envelope must own its origin
// storage — mutating the caller's slice after publish cannot reach the
// queued message, or recycling would alias unrelated publications.
func TestPoolOriginsCopied(t *testing.T) {
	b := NewBus()
	s := b.Subscribe("n", SubSpec{Topic: "/t", Depth: 1})
	origins := []Origin{{Topic: "/points_raw", Stamp: 5}}
	b.Publish("/t", 10, "x", origins)
	origins[0].Stamp = 999
	m := s.Queue.Pop()
	defer m.Release()
	if len(m.Header.Origins) != 1 || m.Header.Origins[0].Stamp != 5 {
		t.Fatalf("origins aliased the caller slice: %+v", m.Header.Origins)
	}
}

// TestUnpooledMessageRefOpsNoop: directly constructed messages (tests,
// tools, bag replay) ignore the reference protocol entirely.
func TestUnpooledMessageRefOpsNoop(t *testing.T) {
	m := &Message{Topic: "/t"}
	m.Retain()
	m.Release()
	m.Release() // must not panic without a pool
}
