package ros

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// TestRingWraparound cycles a small ring far past its capacity so the
// cursors wrap the mask repeatedly.
func TestRingWraparound(t *testing.T) {
	var r ring
	r.init(4)
	msgs := make([]*Message, 3)
	for i := range msgs {
		msgs[i] = &Message{Header: Header{Seq: uint64(i)}}
	}
	for cycle := 0; cycle < 100; cycle++ {
		for _, m := range msgs {
			if !r.tryPush(m) {
				t.Fatalf("cycle %d: push failed at len %d", cycle, r.len())
			}
		}
		if r.len() != 3 {
			t.Fatalf("len = %d", r.len())
		}
		for _, want := range msgs {
			if got := r.pop(); got != want {
				t.Fatalf("cycle %d: pop = %v, want %v", cycle, got, want)
			}
		}
	}
	if r.pop() != nil {
		t.Fatal("empty pop should be nil")
	}
}

// TestRingFullRejects: tryPush must refuse, not overwrite.
func TestRingFullRejects(t *testing.T) {
	var r ring
	r.init(2)
	a, b, c := &Message{}, &Message{}, &Message{}
	if !r.tryPush(a) || !r.tryPush(b) {
		t.Fatal("fill failed")
	}
	if r.tryPush(c) {
		t.Fatal("push into full ring should fail")
	}
	if !r.full() {
		t.Fatal("full() should report true")
	}
	if got := r.pop(); got != a {
		t.Fatalf("pop = %v", got)
	}
}

// TestRingInsertSortedStable: equal stamps must preserve arrival order,
// later stamps sort behind earlier ones.
func TestRingInsertSorted(t *testing.T) {
	var r ring
	r.init(8)
	mk := func(seq uint64, stamp time.Duration) *Message {
		return &Message{Header: Header{Seq: seq, Stamp: stamp}}
	}
	r.tryPush(mk(1, 10))
	r.tryPush(mk(2, 30))
	r.insertSorted(mk(3, 20)) // between
	r.insertSorted(mk(4, 20)) // equal: stable, after seq 3
	r.insertSorted(mk(5, 5))  // front
	wantSeq := []uint64{5, 1, 3, 4, 2}
	for _, want := range wantSeq {
		got := r.pop()
		if got == nil || got.Header.Seq != want {
			t.Fatalf("pop = %v, want seq %d", got, want)
		}
	}
}

// TestRingGrow: unbounded growth unrolls across a wrapped ring without
// losing order.
func TestRingGrow(t *testing.T) {
	var r ring
	r.init(4)
	// Wrap the cursors first so growth must unroll.
	for i := 0; i < 3; i++ {
		r.tryPush(&Message{})
		r.pop()
	}
	var pushed []*Message
	for i := 0; i < 4; i++ {
		m := &Message{Header: Header{Seq: uint64(i)}}
		pushed = append(pushed, m)
		r.tryPush(m)
	}
	if !r.full() {
		t.Fatal("should be full")
	}
	r.grow()
	if r.full() || len(r.buf) != 8 {
		t.Fatalf("grow: full=%v cap=%d", r.full(), len(r.buf))
	}
	m := &Message{Header: Header{Seq: 99}}
	pushed = append(pushed, m)
	r.tryPush(m)
	for _, want := range pushed {
		if got := r.pop(); got != want {
			t.Fatalf("pop = %v, want %v", got, want)
		}
	}
}

// TestRingSPSCConcurrent proves the lock-free claim under the race
// detector: one producer goroutine, one consumer goroutine, no
// synchronization beyond the ring's own cursors. Every message must
// arrive exactly once, in order.
func TestRingSPSCConcurrent(t *testing.T) {
	var r ring
	r.init(8)
	const n = 100000
	msgs := make([]*Message, n)
	for i := range msgs {
		msgs[i] = &Message{Header: Header{Seq: uint64(i)}}
	}
	done := make(chan string, 1)
	go func() {
		for i := 0; i < n; {
			m := r.pop()
			if m == nil {
				runtime.Gosched() // spin: producer is behind
				continue
			}
			if m.Header.Seq != uint64(i) {
				done <- fmt.Sprintf("out of order: got seq %d at position %d", m.Header.Seq, i)
				return
			}
			i++
		}
		done <- ""
	}()
	for _, m := range msgs {
		for !r.tryPush(m) {
			runtime.Gosched() // spin: consumer is behind
		}
	}
	if err := <-done; err != "" {
		t.Fatal(err)
	}
	if r.len() != 0 {
		t.Fatalf("residual len = %d", r.len())
	}
}
