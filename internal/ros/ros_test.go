package ros

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"
)

func TestQueueFIFO(t *testing.T) {
	q := NewQueue(3)
	for i := 1; i <= 3; i++ {
		if evicted := q.Push(&Message{Header: Header{Seq: uint64(i)}}); evicted != nil {
			t.Fatalf("unexpected eviction at %d", i)
		}
	}
	for i := 1; i <= 3; i++ {
		m := q.Pop()
		if m == nil || m.Header.Seq != uint64(i) {
			t.Fatalf("pop %d = %v", i, m)
		}
	}
	if q.Pop() != nil {
		t.Error("empty pop should be nil")
	}
}

func TestQueueDropOldest(t *testing.T) {
	q := NewQueue(2)
	q.Push(&Message{Header: Header{Seq: 1}})
	q.Push(&Message{Header: Header{Seq: 2}})
	evicted := q.Push(&Message{Header: Header{Seq: 3}})
	if evicted == nil || evicted.Header.Seq != 1 {
		t.Fatalf("evicted = %v", evicted)
	}
	arrived, delivered, dropped := q.Stats()
	if arrived != 3 || dropped != 1 || delivered != 0 {
		t.Errorf("stats = %d %d %d", arrived, delivered, dropped)
	}
	if m := q.Pop(); m.Header.Seq != 2 {
		t.Errorf("head after drop = %v", m)
	}
	if got := q.DropRate(); got != 1.0/3.0 {
		t.Errorf("drop rate = %v", got)
	}
}

func TestQueuePeek(t *testing.T) {
	q := NewQueue(2)
	if q.Peek() != nil {
		t.Error("peek empty should be nil")
	}
	q.Push(&Message{Header: Header{Seq: 9}})
	if q.Peek().Header.Seq != 9 || q.Len() != 1 {
		t.Error("peek should not consume")
	}
}

func TestQueueDepthOne(t *testing.T) {
	q := NewQueue(1)
	q.Push(&Message{Header: Header{Seq: 1}})
	ev := q.Push(&Message{Header: Header{Seq: 2}})
	if ev == nil || ev.Header.Seq != 1 {
		t.Errorf("depth-1 eviction = %v", ev)
	}
	if q.Pop().Header.Seq != 2 {
		t.Error("latest should survive")
	}
}

func TestQueueInvariantProperty(t *testing.T) {
	f := func(ops []bool, depthRaw uint8) bool {
		depth := int(depthRaw%8) + 1
		q := NewQueue(depth)
		seq := uint64(0)
		var model []uint64 // reference FIFO
		for _, push := range ops {
			if push {
				seq++
				q.Push(&Message{Header: Header{Seq: seq}})
				model = append(model, seq)
				if len(model) > depth {
					model = model[1:]
				}
			} else {
				m := q.Pop()
				if len(model) == 0 {
					if m != nil {
						return false
					}
				} else {
					if m == nil || m.Header.Seq != model[0] {
						return false
					}
					model = model[1:]
				}
			}
			if q.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQueuePanicsOnBadDepth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewQueue(-1)
}

func TestBusPublishDeliver(t *testing.T) {
	b := NewBus()
	s1 := b.Subscribe("nodeA", SubSpec{Topic: "/points_raw", Depth: 2})
	s2 := b.Subscribe("nodeB", SubSpec{Topic: "/points_raw", Depth: 2})
	n := b.Publish("/points_raw", time.Millisecond, "payload", nil)
	if n != 2 {
		t.Errorf("reached %d subscribers", n)
	}
	m1, m2 := s1.Queue.Pop(), s2.Queue.Pop()
	if m1 == nil || m2 == nil || m1 != m2 {
		t.Error("both subscribers should see the same message value")
	}
	if m1.Header.Seq != 1 || m1.Header.Stamp != time.Millisecond {
		t.Errorf("header = %+v", m1.Header)
	}
	// Second publish increments seq.
	b.Publish("/points_raw", 2*time.Millisecond, "p2", nil)
	if s1.Queue.Pop().Header.Seq != 2 {
		t.Error("seq should increment per topic")
	}
}

func TestBusPublishNoSubscribers(t *testing.T) {
	b := NewBus()
	if n := b.Publish("/nothing", 0, "x", nil); n != 0 {
		t.Errorf("reached %d", n)
	}
}

func TestBusObservers(t *testing.T) {
	b := NewBus()
	b.Subscribe("n", SubSpec{Topic: "/t", Depth: 1})
	var delivers, drops int
	b.SetObservers(
		func(sub *Subscription, m *Message) { delivers++ },
		func(sub *Subscription, m *Message) { drops++ },
	)
	b.Publish("/t", 0, 1, nil)
	b.Publish("/t", 0, 2, nil) // evicts the first
	if delivers != 2 || drops != 1 {
		t.Errorf("delivers=%d drops=%d", delivers, drops)
	}
}

func TestBusDropReports(t *testing.T) {
	b := NewBus()
	b.Subscribe("slow", SubSpec{Topic: "/image_raw", Depth: 1})
	for i := 0; i < 10; i++ {
		b.Publish("/image_raw", time.Duration(i), i, nil)
	}
	reports := b.DropReports()
	if len(reports) != 1 {
		t.Fatalf("reports = %+v", reports)
	}
	r := reports[0]
	if r.Topic != "/image_raw" || r.Subscriber != "slow" || r.Arrived != 10 || r.Dropped != 9 {
		t.Errorf("report = %+v", r)
	}
}

func TestBusValidateDoubleSubscribe(t *testing.T) {
	b := NewBus()
	b.Subscribe("n", SubSpec{Topic: "/t", Depth: 1})
	if err := b.Validate(); err != nil {
		t.Errorf("single subscribe should validate: %v", err)
	}
	b.Subscribe("n", SubSpec{Topic: "/t", Depth: 1})
	if err := b.Validate(); err == nil {
		t.Error("double subscribe should fail validation")
	}
}

func TestMergeOrigins(t *testing.T) {
	m1 := &Message{Header: Header{Origins: []Origin{{Topic: "/points_raw", Stamp: 100}}}}
	m2 := &Message{Header: Header{Origins: []Origin{
		{Topic: "/image_raw", Stamp: 50},
		{Topic: "/points_raw", Stamp: 200},
	}}}
	merged := MergeOrigins(m1, m2, nil)
	if len(merged) != 2 {
		t.Fatalf("merged = %+v", merged)
	}
	byTopic := map[string]time.Duration{}
	for _, o := range merged {
		byTopic[o.Topic] = o.Stamp
	}
	if byTopic["/points_raw"] != 100 {
		t.Errorf("earliest stamp should win: %v", byTopic["/points_raw"])
	}
	if byTopic["/image_raw"] != 50 {
		t.Errorf("image origin = %v", byTopic["/image_raw"])
	}
}

func TestBagRoundTrip(t *testing.T) {
	RegisterBagType("")
	var buf bytes.Buffer
	w, err := NewBagWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs := []BagRecord{
		{Topic: "/b", Stamp: 20, Payload: "two"},
		{Topic: "/a", Stamp: 10, Payload: "one"},
		{Topic: "/c", Stamp: 30, Payload: "three"},
	}
	for _, rec := range recs {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Errorf("count = %d", w.Count())
	}
	r, err := NewBagReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d records", len(got))
	}
	// ReadAll sorts by stamp.
	if got[0].Topic != "/a" || got[1].Topic != "/b" || got[2].Topic != "/c" {
		t.Errorf("order = %v %v %v", got[0].Topic, got[1].Topic, got[2].Topic)
	}
	if got[0].Payload != "one" {
		t.Errorf("payload = %v", got[0].Payload)
	}
}

func TestBagReaderRejectsGarbage(t *testing.T) {
	if _, err := NewBagReader(bytes.NewReader([]byte("not a bag"))); err == nil {
		t.Error("garbage should fail")
	}
}

func TestBagNextEOF(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewBagWriter(&buf)
	_ = w
	r, err := NewBagReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("want EOF, got %v", err)
	}
}

func TestTopicStats(t *testing.T) {
	b := NewBus()
	if b.TopicStats() != nil {
		t.Error("stats should be nil before EnableStats")
	}
	b.EnableStats(func(payload any) float64 {
		if s, ok := payload.(string); ok {
			return float64(len(s))
		}
		return 0
	})
	b.Subscribe("n", SubSpec{Topic: "/t", Depth: 4})
	// 11 messages over 1 second: 10 Hz.
	for i := 0; i <= 10; i++ {
		b.Publish("/t", time.Duration(i)*100*time.Millisecond, "xxxx", nil)
	}
	stats := b.TopicStats()
	if len(stats) != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	s := stats[0]
	if s.Topic != "/t" || s.Messages != 11 || s.Subscribers != 1 {
		t.Errorf("stats = %+v", s)
	}
	if r := s.Rate(); r < 9.9 || r > 10.1 {
		t.Errorf("rate = %v", r)
	}
	if bw := s.Bandwidth(); bw < 43 || bw > 45 { // 44 bytes over 1 s
		t.Errorf("bandwidth = %v", bw)
	}
}

func TestTopicStatsDegenerate(t *testing.T) {
	b := NewBus()
	b.EnableStats(nil)
	b.Publish("/solo", time.Second, 1, nil)
	s := b.TopicStats()[0]
	if s.Rate() != 0 || s.Bandwidth() != 0 {
		t.Errorf("single-message stats should have zero rate/bw: %+v", s)
	}
}

// TestTopicStatsEdgeCases pins Rate and Bandwidth over the degenerate
// observation windows where a naive messages/span division would return
// Inf or NaN: no traffic, a single message (undefined span), and
// multiple messages published at the identical stamp (zero span).
func TestTopicStatsEdgeCases(t *testing.T) {
	cases := []struct {
		name     string
		s        TopicStats
		wantRate float64
		wantBW   float64
	}{
		{name: "zero-value", s: TopicStats{}, wantRate: 0, wantBW: 0},
		{
			name:     "single-message",
			s:        TopicStats{Messages: 1, First: time.Second, Last: time.Second, Bytes: 100},
			wantRate: 0, wantBW: 0,
		},
		{
			name:     "zero-span-burst",
			s:        TopicStats{Messages: 5, First: 2 * time.Second, Last: 2 * time.Second, Bytes: 500},
			wantRate: 0, wantBW: 0,
		},
		{
			name:     "two-messages",
			s:        TopicStats{Messages: 2, First: 0, Last: time.Second, Bytes: 8},
			wantRate: 1, wantBW: 8,
		},
		{
			name:     "steady",
			s:        TopicStats{Messages: 11, First: 0, Last: time.Second, Bytes: 44},
			wantRate: 10, wantBW: 44,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.s.Rate(); got != tc.wantRate {
				t.Errorf("Rate() = %v, want %v", got, tc.wantRate)
			}
			if got := tc.s.Bandwidth(); got != tc.wantBW {
				t.Errorf("Bandwidth() = %v, want %v", got, tc.wantBW)
			}
		})
	}

	// The same zero-span burst via the bus accumulator: five identical
	// stamps must not yield an infinite rate.
	b := NewBus()
	b.EnableStats(func(any) float64 { return 100 })
	for i := 0; i < 5; i++ {
		b.Publish("/burst", 3*time.Second, i, nil)
	}
	s := b.TopicStats()[0]
	if s.Messages != 5 {
		t.Fatalf("stats = %+v", s)
	}
	if r, bw := s.Rate(), s.Bandwidth(); r != 0 || bw != 0 {
		t.Errorf("zero-span burst: Rate=%v Bandwidth=%v, want 0, 0", r, bw)
	}
}

// TestTopicStatsSpanRobustness covers the two ways the observed span
// used to go wrong once shed/quarantine accounting and clock-skew
// faults entered the picture: a counter-first entry (Shed/Quarantine
// recorded before any publication) must not leave a phantom First=0
// that stretches the span back to the epoch, and non-monotonic stamps
// from a skewed clock must widen the span min/max-wise instead of
// driving it negative.
func TestTopicStatsSpanRobustness(t *testing.T) {
	b := NewBus()
	b.EnableStats(nil)

	// Counters land before the first publication ever happens.
	b.RecordShed("/t")
	b.RecordQuarantine("/t")

	// Stamps arrive out of order (skewed clock): 5s, 2s, 9s.
	b.Publish("/t", 5*time.Second, "x", nil)
	b.Publish("/t", 2*time.Second, "x", nil)
	b.Publish("/t", 9*time.Second, "x", nil)

	stats := b.TopicStats()
	if len(stats) != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	s := stats[0]
	if s.Shed != 1 || s.Quarantined != 1 {
		t.Errorf("counters = shed %d quarantined %d, want 1, 1", s.Shed, s.Quarantined)
	}
	if s.Messages != 3 {
		t.Errorf("messages = %d, want 3", s.Messages)
	}
	// The span is pinned by the published stamps only — not the
	// zero-valued First the counters created, not arrival order.
	if s.First != 2*time.Second || s.Last != 9*time.Second {
		t.Errorf("span = [%v, %v], want [2s, 9s]", s.First, s.Last)
	}
	if r := s.Rate(); r <= 0 {
		t.Errorf("rate = %v, want positive over a 7s span", r)
	}
}
