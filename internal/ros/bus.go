package ros

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// SubSpec declares one subscription of a node: the topic it listens to
// and the queue depth for that subscription. Autoware nodes typically
// use shallow queues (depth 1-10), which is exactly what makes message
// dropping observable under load.
type SubSpec struct {
	Topic string
	Depth int
}

// Subscription is a live binding of a subscriber node to a topic.
type Subscription struct {
	Topic      string
	Subscriber string
	Queue      *Queue
}

// Bus is the middleware fabric: it owns every topic and delivers
// published messages into subscriber queues. The Bus itself is
// timing-free; the platform layer decides *when* publishes happen and
// models the transport/serialization delay.
//
// Delivery is zero-copy: one pooled envelope per publication, shared
// by pointer across every subscriber queue with one reference each
// (see Pool). A Bus from NewBus is exclusive — owned by the
// single-threaded simulator, its edges lock-free SPSC rings with no
// synchronization at all. NewSharedBus yields a fabric safe for
// concurrent publishers (the MPSC shim): publications serialize
// through a bus mutex and edges use mutex-shimmed queues.
type Bus struct {
	topics map[string]*topicState
	// subsByNode indexes subscriptions per subscriber for executors.
	subsByNode map[string][]*Subscription
	// onDeliver, when set, observes every enqueue (for tracing).
	// Observers borrow the message for the duration of the call; a
	// layer that keeps it across events must Retain it.
	onDeliver func(sub *Subscription, m *Message)
	// onDrop observes every eviction. The evicted message is released
	// back to the pool when the observer returns.
	onDrop func(sub *Subscription, evicted *Message)
	// stats, when enabled, accumulates per-topic traffic counters.
	stats *statsCollector

	pool   *Pool
	shared bool
	mu     sync.Mutex
}

type topicState struct {
	name string
	seq  uint64
	subs []*Subscription
}

// NewBus creates an empty fabric owned by a single goroutine.
func NewBus() *Bus {
	return &Bus{
		topics:     make(map[string]*topicState),
		subsByNode: make(map[string][]*Subscription),
		pool:       NewPool(),
	}
}

// NewSharedBus creates a fabric safe for concurrent publishers and
// consumers — the MPSC shim the fault injector's burst generator uses
// when pushing from outside the simulator goroutine.
func NewSharedBus() *Bus {
	return &Bus{
		topics:     make(map[string]*topicState),
		subsByNode: make(map[string][]*Subscription),
		pool:       NewSharedPool(),
		shared:     true,
	}
}

// Subscribe registers a subscriber queue on a topic, creating the topic
// on first use.
func (b *Bus) Subscribe(nodeName string, spec SubSpec) *Subscription {
	if b.shared {
		b.mu.Lock()
		defer b.mu.Unlock()
	}
	ts := b.topic(spec.Topic)
	sub := &Subscription{
		Topic:      spec.Topic,
		Subscriber: nodeName,
		Queue:      newQueue(spec.Depth, b.shared),
	}
	ts.subs = append(ts.subs, sub)
	b.subsByNode[nodeName] = append(b.subsByNode[nodeName], sub)
	return sub
}

func (b *Bus) topic(name string) *topicState {
	ts := b.topics[name]
	if ts == nil {
		ts = &topicState{name: name}
		b.topics[name] = ts
	}
	return ts
}

// NewMessage acquires a pooled envelope for a publication, holding one
// reference on behalf of the caller. PublishMessage converts that
// reference into the subscribers'; a caller that abandons the message
// instead (e.g. the ingress guard quarantining it before it reaches
// any queue) must Release it back to the pool.
func (b *Bus) NewMessage(topic string, stamp time.Duration, payload any, origins []Origin) *Message {
	return b.pool.get(topic, stamp, payload, origins)
}

// Publish stamps the message and delivers it to every subscriber queue.
// It returns the number of subscribers reached.
func (b *Bus) Publish(topic string, stamp time.Duration, payload any, origins []Origin) int {
	return b.PublishMessage(b.NewMessage(topic, stamp, payload, origins))
}

// PublishMessage assigns the topic sequence number and fans the
// envelope out zero-copy: the payload is allocated (by the caller)
// once, and each subscriber queue holds one reference to the shared
// envelope. The caller's reference from NewMessage is consumed.
func (b *Bus) PublishMessage(m *Message) int {
	if b.shared {
		b.mu.Lock()
		defer b.mu.Unlock()
	}
	b.pool.advance()
	ts := b.topic(m.Topic)
	ts.seq++
	m.Header.Seq = ts.seq
	b.recordPublish(ts, m.Header.Stamp, m.Payload)
	if len(ts.subs) == 0 {
		m.Release()
		return 0
	}
	// Convert the caller's single reference into one per queue.
	m.addRefs(len(ts.subs) - 1)
	for _, sub := range ts.subs {
		evicted := sub.Queue.Push(m)
		if evicted != nil {
			if b.onDrop != nil {
				b.onDrop(sub, evicted)
			}
			evicted.Release()
		}
		if b.onDeliver != nil {
			b.onDeliver(sub, m)
		}
	}
	return len(ts.subs)
}

// PoolStats exposes the envelope pool's accounting — the leak-check
// surface: after a drained run, Live and LiveRefs must equal exactly
// the references still legitimately held (queued messages plus any
// node-retained caches).
func (b *Bus) PoolStats() PoolStats { return b.pool.Stats() }

// QueuedMessages counts messages currently sitting in subscriber
// queues across all topics — the transport's own outstanding
// references.
func (b *Bus) QueuedMessages() int {
	if b.shared {
		b.mu.Lock()
		defer b.mu.Unlock()
	}
	n := 0
	for _, ts := range b.topics {
		for _, sub := range ts.subs {
			n += sub.Queue.Len()
		}
	}
	return n
}

// SetObservers installs delivery/drop hooks (either may be nil),
// replacing any previously installed. Layers that must coexist (tracing,
// fault injection, watchdogs) should use Tap instead.
func (b *Bus) SetObservers(onDeliver func(*Subscription, *Message), onDrop func(*Subscription, *Message)) {
	b.onDeliver = onDeliver
	b.onDrop = onDrop
}

// Tap registers additional delivery/drop observers that run after any
// already installed, so independent layers can observe traffic without
// clobbering each other. Either argument may be nil. Note onDeliver
// fires once per (message, subscription) pair; observers that want one
// event per publication should de-duplicate by header sequence number.
func (b *Bus) Tap(onDeliver func(*Subscription, *Message), onDrop func(*Subscription, *Message)) {
	if onDeliver != nil {
		prev := b.onDeliver
		b.onDeliver = func(sub *Subscription, m *Message) {
			if prev != nil {
				prev(sub, m)
			}
			onDeliver(sub, m)
		}
	}
	if onDrop != nil {
		prev := b.onDrop
		b.onDrop = func(sub *Subscription, m *Message) {
			if prev != nil {
				prev(sub, m)
			}
			onDrop(sub, m)
		}
	}
}

// SubscriptionsOf returns the subscriptions held by a node, in
// registration order.
func (b *Bus) SubscriptionsOf(nodeName string) []*Subscription {
	return b.subsByNode[nodeName]
}

// DropReport is one row of the dropped-message table.
type DropReport struct {
	Topic      string
	Subscriber string
	Arrived    uint64
	Dropped    uint64
	Rate       float64
}

// DropReports returns drop statistics for every subscription that saw
// at least one arrival, sorted by topic then subscriber.
func (b *Bus) DropReports() []DropReport {
	var out []DropReport
	for _, ts := range b.topics {
		for _, sub := range ts.subs {
			arrived, _, dropped := sub.Queue.Stats()
			if arrived == 0 {
				continue
			}
			out = append(out, DropReport{
				Topic:      ts.name,
				Subscriber: sub.Subscriber,
				Arrived:    arrived,
				Dropped:    dropped,
				Rate:       sub.Queue.DropRate(),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Topic != out[j].Topic {
			return out[i].Topic < out[j].Topic
		}
		return out[i].Subscriber < out[j].Subscriber
	})
	return out
}

// Topics returns the sorted list of known topic names.
func (b *Bus) Topics() []string {
	out := make([]string, 0, len(b.topics))
	for name := range b.topics {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Validate checks that every topic referenced by a subscription exists
// (trivially true by construction) and that no node subscribed twice to
// the same topic, which would double-process messages.
func (b *Bus) Validate() error {
	for node, subs := range b.subsByNode {
		seen := map[string]bool{}
		for _, s := range subs {
			if seen[s.Topic] {
				return fmt.Errorf("ros: node %q subscribed twice to %q", node, s.Topic)
			}
			seen[s.Topic] = true
		}
	}
	return nil
}
