package ros

import (
	"sort"
	"time"
)

// TopicStats summarizes one topic's traffic, the `rostopic hz/bw`
// style observability used by the bag tool and the stack's reporting.
type TopicStats struct {
	Topic       string
	Messages    uint64
	Subscribers int
	// First and Last are the stamps of the earliest/latest publication.
	First, Last time.Duration
	// Bytes is accumulated payload volume (when a sizer is installed).
	Bytes float64
	// Shed counts frames consumed at dispatch by deadline-aware load
	// shedding (the executor's ShedBudget) instead of being processed.
	Shed uint64
	// Quarantined counts frames diverted at the bus boundary by the
	// input-integrity guard (see internal/guard) — rejected before they
	// could enter any subscriber queue, so they are not in Messages.
	Quarantined uint64
}

// Rate returns the mean publication rate in Hz over the observed span.
func (s TopicStats) Rate() float64 {
	span := (s.Last - s.First).Seconds()
	if span <= 0 || s.Messages < 2 {
		return 0
	}
	return float64(s.Messages-1) / span
}

// Bandwidth returns mean payload bytes/second over the observed span.
func (s TopicStats) Bandwidth() float64 {
	span := (s.Last - s.First).Seconds()
	if span <= 0 {
		return 0
	}
	return s.Bytes / span
}

// statsCollector accumulates per-topic counters inside the bus.
type statsCollector struct {
	byTopic map[string]*TopicStats
	sizer   func(payload any) float64
}

// EnableStats turns on per-topic accounting. sizer estimates payload
// bytes (nil counts zero bytes but still tracks rates).
func (b *Bus) EnableStats(sizer func(payload any) float64) {
	b.stats = &statsCollector{
		byTopic: make(map[string]*TopicStats),
		sizer:   sizer,
	}
}

// recordPublish updates stats for one publication (no-op when disabled).
func (b *Bus) recordPublish(ts *topicState, stamp time.Duration, payload any) {
	if b.stats == nil {
		return
	}
	s := b.stats.byTopic[ts.name]
	if s == nil {
		s = &TopicStats{Topic: ts.name, First: stamp}
		b.stats.byTopic[ts.name] = s
	}
	// The first observed publication pins both ends of the span: an
	// entry may predate it (created by a shed or quarantine counter with
	// a zero First), and non-monotonic stamps from skewed clocks must
	// widen the span min/max-wise rather than drive it negative.
	if s.Messages == 0 {
		s.First, s.Last = stamp, stamp
	} else {
		if stamp < s.First {
			s.First = stamp
		}
		if stamp > s.Last {
			s.Last = stamp
		}
	}
	s.Messages++
	s.Subscribers = len(ts.subs)
	if b.stats.sizer != nil {
		s.Bytes += b.stats.sizer(payload)
	}
}

// RecordShed counts one deadline-shed frame against a topic (no-op
// when stats are disabled).
func (b *Bus) RecordShed(topic string) {
	if b.stats == nil {
		return
	}
	s := b.stats.byTopic[topic]
	if s == nil {
		s = &TopicStats{Topic: topic}
		b.stats.byTopic[topic] = s
	}
	s.Shed++
}

// RecordQuarantine counts one guard-quarantined frame against a topic
// (no-op when stats are disabled).
func (b *Bus) RecordQuarantine(topic string) {
	if b.stats == nil {
		return
	}
	s := b.stats.byTopic[topic]
	if s == nil {
		s = &TopicStats{Topic: topic}
		b.stats.byTopic[topic] = s
	}
	s.Quarantined++
}

// TopicStats returns per-topic statistics sorted by topic name; nil
// when stats were never enabled.
func (b *Bus) TopicStats() []TopicStats {
	if b.stats == nil {
		return nil
	}
	out := make([]TopicStats, 0, len(b.stats.byTopic))
	for _, s := range b.stats.byTopic {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Topic < out[j].Topic })
	return out
}
