// Package ros implements the publish-subscribe middleware the stack is
// built on, mirroring the ROS 1 structures the paper's methodology
// depends on: named topics, per-subscriber bounded queues that drop the
// oldest message when full (the source of Table III's dropped-message
// statistics), and message headers that carry origin lineage so
// end-to-end computation paths can be traced through the graph.
//
// Hook points and ordering. The bus is the substrate the executor's
// decision chain hangs off: the fault injector perturbs at publish
// (upstream of the transport), the guard adjudicates at ingress (after
// transport, before any subscriber queue — a quarantined frame is
// never enqueued), the supervisor filters at dispatch, and the
// scheduler picks last, peeking queue heads without popping. Observers
// (taps, drop hooks) chain and never veto.
//
// Ownership. Message envelopes are pooled and reference-counted: one
// writer per topic publishes the same envelope to every subscriber
// queue (zero copies), each consumption point — queue eviction,
// quarantine, deadline shed, callback-filter drop, callback completion
// — returns exactly one reference, and long-lived holders (fusion's
// latest-input caches) must Retain/Release explicitly. Hook borrowers
// may read an envelope only for the duration of the call; epoch-based
// reclamation keeps a just-released envelope stable until two further
// publications pass. Payloads are never pooled and may be retained
// indefinitely. Double release and retain-after-free panic, naming the
// topic.
package ros

import (
	"fmt"
	"time"
)

// Origin identifies where a piece of data entered the system: the
// sensor topic it arrived on and the virtual time of arrival. Origins
// propagate through every node so the tracer can measure each
// computation path from sensor input to final perception output.
type Origin struct {
	Topic string
	Stamp time.Duration
}

// Header carries the metadata attached to every message.
type Header struct {
	// Seq is the per-topic sequence number.
	Seq uint64
	// Stamp is the virtual time at which the message was published.
	Stamp time.Duration
	// FrameID names the coordinate frame of the payload.
	FrameID string
	// Origins lists the sensor inputs this message derives from.
	Origins []Origin
}

// Message is one datum flowing through the graph.
//
// Messages published through a Bus are pooled envelopes: the payload
// is shared zero-copy across every subscriber, and the envelope is
// reference-counted — one reference per subscriber queue, transferred
// to the consumer by Pop and returned with Release. Messages
// constructed directly (tests, tools) have no pool and ignore the
// reference operations entirely.
type Message struct {
	Topic   string
	Header  Header
	Payload any

	// pool and refs implement pooled-envelope lifetime; both are nil /
	// unused for directly constructed messages.
	pool *Pool
	refs int32
}

// String implements fmt.Stringer.
func (m *Message) String() string {
	return fmt.Sprintf("msg{%s seq=%d t=%v}", m.Topic, m.Header.Seq, m.Header.Stamp)
}

// Retain adds a reference to a pooled message. A layer that stores a
// message across callbacks (e.g. the fusion node's last-good caches)
// must retain it, or the envelope will be recycled out from under it.
// No-op for unpooled messages.
func (m *Message) Retain() {
	p := m.pool
	if p == nil {
		return
	}
	if p.shared {
		p.mu.Lock()
		defer p.mu.Unlock()
	}
	if m.refs <= 0 {
		panic(fmt.Sprintf("ros: retain of already-released message on topic %q (seq %d)", m.Topic, m.Header.Seq))
	}
	m.refs++
	p.liveRefs++
}

// Release drops one reference to a pooled message; at zero the
// envelope retires to the pool's limbo for epoch-based reuse.
// Releasing more times than retained panics, naming the topic — a
// lifetime bug in a transport layer must be loud, not a silent
// use-after-recycle. No-op for unpooled messages.
func (m *Message) Release() {
	p := m.pool
	if p == nil {
		return
	}
	if p.shared {
		p.mu.Lock()
		defer p.mu.Unlock()
	}
	if m.refs <= 0 {
		panic(fmt.Sprintf("ros: double release of message on topic %q (seq %d)", m.Topic, m.Header.Seq))
	}
	m.refs--
	p.liveRefs--
	if m.refs == 0 {
		p.retire(m)
	}
}

// addRefs adds n references in one step — the bus's fan-out path
// converting its single acquisition reference into one per subscriber
// queue.
func (m *Message) addRefs(n int) {
	p := m.pool
	if p == nil || n == 0 {
		return
	}
	if p.shared {
		p.mu.Lock()
		defer p.mu.Unlock()
	}
	m.refs += int32(n)
	p.liveRefs += int64(n)
}

// MergeOrigins returns the union of the origins of several input
// messages, keeping the earliest stamp per topic. A node that fuses two
// streams (e.g. range_vision_fusion) produces outputs that trace back to
// both sensor inputs.
func MergeOrigins(inputs ...*Message) []Origin {
	seen := make(map[string]time.Duration)
	var order []string
	for _, in := range inputs {
		if in == nil {
			continue
		}
		for _, o := range in.Header.Origins {
			if prev, ok := seen[o.Topic]; !ok {
				seen[o.Topic] = o.Stamp
				order = append(order, o.Topic)
			} else if o.Stamp < prev {
				seen[o.Topic] = o.Stamp
			}
		}
	}
	out := make([]Origin, 0, len(order))
	for _, topic := range order {
		out = append(out, Origin{Topic: topic, Stamp: seen[topic]})
	}
	return out
}
