// Package ros implements the publish-subscribe middleware the stack is
// built on, mirroring the ROS 1 structures the paper's methodology
// depends on: named topics, per-subscriber bounded queues that drop the
// oldest message when full (the source of Table III's dropped-message
// statistics), and message headers that carry origin lineage so
// end-to-end computation paths can be traced through the graph.
package ros

import (
	"fmt"
	"time"
)

// Origin identifies where a piece of data entered the system: the
// sensor topic it arrived on and the virtual time of arrival. Origins
// propagate through every node so the tracer can measure each
// computation path from sensor input to final perception output.
type Origin struct {
	Topic string
	Stamp time.Duration
}

// Header carries the metadata attached to every message.
type Header struct {
	// Seq is the per-topic sequence number.
	Seq uint64
	// Stamp is the virtual time at which the message was published.
	Stamp time.Duration
	// FrameID names the coordinate frame of the payload.
	FrameID string
	// Origins lists the sensor inputs this message derives from.
	Origins []Origin
}

// Message is one datum flowing through the graph.
type Message struct {
	Topic   string
	Header  Header
	Payload any
}

// String implements fmt.Stringer.
func (m *Message) String() string {
	return fmt.Sprintf("msg{%s seq=%d t=%v}", m.Topic, m.Header.Seq, m.Header.Stamp)
}

// MergeOrigins returns the union of the origins of several input
// messages, keeping the earliest stamp per topic. A node that fuses two
// streams (e.g. range_vision_fusion) produces outputs that trace back to
// both sensor inputs.
func MergeOrigins(inputs ...*Message) []Origin {
	seen := make(map[string]time.Duration)
	var order []string
	for _, in := range inputs {
		if in == nil {
			continue
		}
		for _, o := range in.Header.Origins {
			if prev, ok := seen[o.Topic]; !ok {
				seen[o.Topic] = o.Stamp
				order = append(order, o.Topic)
			} else if o.Stamp < prev {
				seen[o.Topic] = o.Stamp
			}
		}
	}
	out := make([]Origin, 0, len(order))
	for _, topic := range order {
		out = append(out, Origin{Topic: topic, Stamp: seen[topic]})
	}
	return out
}
