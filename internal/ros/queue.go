package ros

import "sync"

// Queue is a bounded queue of messages with ROS subscriber semantics:
// when a new message arrives at a full queue, the oldest queued message
// is dropped to make room. Dropped and delivered counts feed the
// dropped-message statistics of Table III. A depth of zero means
// unbounded (ROS's queue_size=0 convention): the queue grows and never
// drops.
//
// Delivery order is by header stamp, not arrival order: Push inserts in
// non-decreasing stamp order (stable for duplicate stamps, preserving
// arrival order among equals), so Peek/Pop always yield the oldest
// stamp and drop-oldest always evicts it. For in-order streams this is
// plain FIFO at O(1); it only differs — and only deterministically —
// when stamps arrive out of order (skewed clocks, concurrent pushers),
// where arrival-order FIFO used to let a newer frame block an older one
// and drop-oldest could evict the wrong frame.
//
// The storage is a lock-free SPSC ring (see ring.go). Two constructors
// select the synchronization mode:
//
//   - NewQueue keeps the historical "safe for concurrent use" contract
//     by serializing every operation through a mutex — the MPSC shim
//     that lets multiple goroutines (the burst-republish race tests,
//     external tools) push into one subscriber.
//   - NewExclusiveQueue is the simulator hot path: a single goroutine
//     owns both ends, so push/pop run with no lock and no atomic
//     read-modify-write at all — the fix for the old queue paying a
//     mutex acquire/release per message on a single-threaded run.
type Queue struct {
	r     ring
	depth int // 0 = unbounded

	shared bool
	mu     sync.Mutex

	delivered uint64 // total pushes that ultimately got consumed or queued
	dropped   uint64 // messages evicted before consumption
	arrived   uint64 // total pushes
}

// NewQueue creates a queue with the given depth; 0 means unbounded.
// Negative depths panic. The queue is safe for concurrent use.
func NewQueue(depth int) *Queue { return newQueue(depth, true) }

// NewExclusiveQueue creates a queue owned by a single goroutine: all
// operations run without synchronization. The deterministic simulator
// uses this mode for every bus edge.
func NewExclusiveQueue(depth int) *Queue { return newQueue(depth, false) }

func newQueue(depth int, shared bool) *Queue {
	if depth < 0 {
		panic("ros: queue depth must be >= 0")
	}
	capacity := depth
	if depth == 0 {
		capacity = 8 // initial storage for the unbounded case
	}
	q := &Queue{depth: depth, shared: shared}
	q.r.init(capacity)
	return q
}

// Push enqueues m in stamp order, evicting the oldest message when
// full. It returns the evicted message (nil when nothing was dropped,
// always nil for unbounded queues). The caller owns any reference held
// by the evicted message; the bus releases it after the drop observers
// have run.
func (q *Queue) Push(m *Message) *Message {
	if q.shared {
		q.mu.Lock()
		evicted := q.push(m)
		q.mu.Unlock()
		return evicted
	}
	return q.push(m)
}

func (q *Queue) push(m *Message) *Message {
	q.arrived++
	var evicted *Message
	if q.depth > 0 {
		if q.r.len() == q.depth {
			evicted = q.r.pop()
			q.dropped++
		}
	} else if q.r.full() {
		q.r.grow()
	}
	// In-order arrival (the overwhelmingly common case) is a plain SPSC
	// append; only out-of-order stamps pay for the sorted insert.
	if last := q.r.newest(); last == nil || last.Header.Stamp <= m.Header.Stamp {
		q.r.tryPush(m)
	} else {
		q.r.insertSorted(m)
	}
	return evicted
}

// Pop removes and returns the oldest message, or nil when empty. The
// queue's reference to a pooled message transfers to the caller, who
// must Release it when done.
func (q *Queue) Pop() *Message {
	if q.shared {
		q.mu.Lock()
		m := q.pop()
		q.mu.Unlock()
		return m
	}
	return q.pop()
}

func (q *Queue) pop() *Message {
	m := q.r.pop()
	if m != nil {
		q.delivered++
	}
	return m
}

// Peek returns the oldest message without removing it, or nil. The
// queue keeps its reference; the returned message is a borrow.
func (q *Queue) Peek() *Message {
	if q.shared {
		q.mu.Lock()
		m := q.r.peek()
		q.mu.Unlock()
		return m
	}
	return q.r.peek()
}

// Len returns the number of queued messages.
func (q *Queue) Len() int {
	if q.shared {
		q.mu.Lock()
		n := q.r.len()
		q.mu.Unlock()
		return n
	}
	return q.r.len()
}

// Depth returns the configured capacity (0 = unbounded).
func (q *Queue) Depth() int { return q.depth }

// Stats returns (arrived, delivered, dropped) counts.
func (q *Queue) Stats() (arrived, delivered, dropped uint64) {
	if q.shared {
		q.mu.Lock()
		defer q.mu.Unlock()
	}
	return q.arrived, q.delivered, q.dropped
}

// DropRate returns dropped/arrived in [0, 1]; 0 when nothing arrived.
func (q *Queue) DropRate() float64 {
	if q.shared {
		q.mu.Lock()
		defer q.mu.Unlock()
	}
	if q.arrived == 0 {
		return 0
	}
	return float64(q.dropped) / float64(q.arrived)
}
