package ros

// Queue is a bounded FIFO of messages with ROS subscriber semantics:
// when a new message arrives at a full queue, the oldest queued message
// is dropped to make room. Dropped and delivered counts feed the
// dropped-message statistics of Table III.
type Queue struct {
	depth int
	buf   []*Message
	head  int
	count int

	delivered uint64 // total pushes that ultimately got consumed or queued
	dropped   uint64 // messages evicted before consumption
	arrived   uint64 // total pushes
}

// NewQueue creates a queue with the given depth (>= 1).
func NewQueue(depth int) *Queue {
	if depth < 1 {
		panic("ros: queue depth must be >= 1")
	}
	return &Queue{depth: depth, buf: make([]*Message, depth)}
}

// Push enqueues m, evicting the oldest message when full. It returns
// the evicted message (nil when nothing was dropped).
func (q *Queue) Push(m *Message) *Message {
	q.arrived++
	var evicted *Message
	if q.count == q.depth {
		evicted = q.buf[q.head]
		q.buf[q.head] = nil
		q.head = (q.head + 1) % q.depth
		q.count--
		q.dropped++
	}
	tail := (q.head + q.count) % q.depth
	q.buf[tail] = m
	q.count++
	return evicted
}

// Pop removes and returns the oldest message, or nil when empty.
func (q *Queue) Pop() *Message {
	if q.count == 0 {
		return nil
	}
	m := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % q.depth
	q.count--
	q.delivered++
	return m
}

// Peek returns the oldest message without removing it, or nil.
func (q *Queue) Peek() *Message {
	if q.count == 0 {
		return nil
	}
	return q.buf[q.head]
}

// Len returns the number of queued messages.
func (q *Queue) Len() int { return q.count }

// Depth returns the configured capacity.
func (q *Queue) Depth() int { return q.depth }

// Stats returns (arrived, delivered, dropped) counts.
func (q *Queue) Stats() (arrived, delivered, dropped uint64) {
	return q.arrived, q.delivered, q.dropped
}

// DropRate returns dropped/arrived in [0, 1]; 0 when nothing arrived.
func (q *Queue) DropRate() float64 {
	if q.arrived == 0 {
		return 0
	}
	return float64(q.dropped) / float64(q.arrived)
}
