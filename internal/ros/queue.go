package ros

import "sync"

// Queue is a bounded queue of messages with ROS subscriber semantics:
// when a new message arrives at a full queue, the oldest queued message
// is dropped to make room. Dropped and delivered counts feed the
// dropped-message statistics of Table III. A depth of zero means
// unbounded (ROS's queue_size=0 convention): the queue grows and never
// drops.
//
// Delivery order is by header stamp, not arrival order: Push inserts in
// non-decreasing stamp order (stable for duplicate stamps, preserving
// arrival order among equals), so Peek/Pop always yield the oldest
// stamp and drop-oldest always evicts it. For in-order streams this is
// plain FIFO at O(1); it only differs — and only deterministically —
// when stamps arrive out of order (skewed clocks, concurrent pushers),
// where arrival-order FIFO used to let a newer frame block an older one
// and drop-oldest could evict the wrong frame.
//
// Queues are safe for concurrent use. The simulator itself is single-
// threaded, but the fault injector's burst generator and tests exercise
// queues from multiple goroutines.
type Queue struct {
	mu    sync.Mutex
	depth int // 0 = unbounded
	buf   []*Message
	head  int
	count int

	delivered uint64 // total pushes that ultimately got consumed or queued
	dropped   uint64 // messages evicted before consumption
	arrived   uint64 // total pushes
}

// NewQueue creates a queue with the given depth; 0 means unbounded.
// Negative depths panic.
func NewQueue(depth int) *Queue {
	if depth < 0 {
		panic("ros: queue depth must be >= 0")
	}
	capacity := depth
	if depth == 0 {
		capacity = 8 // initial storage for the unbounded case
	}
	return &Queue{depth: depth, buf: make([]*Message, capacity)}
}

// Push enqueues m in stamp order, evicting the oldest message when
// full. It returns the evicted message (nil when nothing was dropped,
// always nil for unbounded queues).
func (q *Queue) Push(m *Message) *Message {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.arrived++
	var evicted *Message
	if q.depth > 0 && q.count == q.depth {
		evicted = q.buf[q.head]
		q.buf[q.head] = nil
		q.head = (q.head + 1) % len(q.buf)
		q.count--
		q.dropped++
	} else if q.depth == 0 && q.count == len(q.buf) {
		q.grow()
	}
	tail := (q.head + q.count) % len(q.buf)
	q.buf[tail] = m
	q.count++
	// Restore stamp order: bubble the new message backward past any
	// later-stamped entries. Stable for equal stamps (stops at <=), and
	// a no-op for in-order streams.
	for i := q.count - 1; i > 0; i-- {
		cur := (q.head + i) % len(q.buf)
		prev := (q.head + i - 1) % len(q.buf)
		if q.buf[prev].Header.Stamp <= q.buf[cur].Header.Stamp {
			break
		}
		q.buf[prev], q.buf[cur] = q.buf[cur], q.buf[prev]
	}
	return evicted
}

// grow doubles the ring storage of an unbounded queue, unrolling the
// ring so the oldest message lands at index 0.
func (q *Queue) grow() {
	next := make([]*Message, 2*len(q.buf))
	for i := 0; i < q.count; i++ {
		next[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = next
	q.head = 0
}

// Pop removes and returns the oldest message, or nil when empty.
func (q *Queue) Pop() *Message {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.count == 0 {
		return nil
	}
	m := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.count--
	q.delivered++
	return m
}

// Peek returns the oldest message without removing it, or nil.
func (q *Queue) Peek() *Message {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.count == 0 {
		return nil
	}
	return q.buf[q.head]
}

// Len returns the number of queued messages.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.count
}

// Depth returns the configured capacity (0 = unbounded).
func (q *Queue) Depth() int { return q.depth }

// Stats returns (arrived, delivered, dropped) counts.
func (q *Queue) Stats() (arrived, delivered, dropped uint64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.arrived, q.delivered, q.dropped
}

// DropRate returns dropped/arrived in [0, 1]; 0 when nothing arrived.
func (q *Queue) DropRate() float64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.arrived == 0 {
		return 0
	}
	return float64(q.dropped) / float64(q.arrived)
}
