package ros

import (
	"testing"
	"time"
)

// FuzzRingPushPop drives an exclusive queue (the ring plus its
// drop-oldest / stamp-sort / unbounded-growth extensions) against a
// straight-line slice model of the ROS subscriber contract, with
// op-stream-controlled stamps so sorted inserts, equal-stamp
// stability, wraparound and depth-0 growth all get exercised.
//
// Byte encoding: each op byte selects push (with stamp = op>>2),
// pop, or peek; depthRaw selects the queue depth, 0 = unbounded.
func FuzzRingPushPop(f *testing.F) {
	f.Add([]byte{0, 4, 8, 1, 1, 12, 16, 2}, uint8(2))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1}, uint8(0)) // growth
	f.Add([]byte{60, 40, 20, 0, 80, 1, 1, 1, 1}, uint8(3))      // reversed stamps
	f.Add([]byte{8, 8, 8, 8, 2, 1, 8, 8}, uint8(1))             // depth-1 churn
	f.Fuzz(func(t *testing.T, ops []byte, depthRaw uint8) {
		depth := int(depthRaw % 9) // 0..8
		q := newQueue(depth, false)
		var model []*Message
		var seq uint64
		for _, op := range ops {
			switch op % 4 {
			case 0, 1: // push
				seq++
				m := &Message{Header: Header{Seq: seq, Stamp: time.Duration(op >> 2)}}
				evicted := q.Push(m)
				var wantEvicted *Message
				if depth > 0 && len(model) == depth {
					wantEvicted = model[0]
					model = model[1:]
				}
				if evicted != wantEvicted {
					t.Fatalf("depth %d: evicted %v, want %v", depth, evicted, wantEvicted)
				}
				// Stable stamp-ordered insert: after every queued
				// message with stamp <= m's.
				at := len(model)
				for at > 0 && model[at-1].Header.Stamp > m.Header.Stamp {
					at--
				}
				model = append(model, nil)
				copy(model[at+1:], model[at:])
				model[at] = m
			case 2: // pop
				got := q.Pop()
				var want *Message
				if len(model) > 0 {
					want = model[0]
					model = model[1:]
				}
				if got != want {
					t.Fatalf("pop = %v, want %v", got, want)
				}
			case 3: // peek
				got := q.Peek()
				var want *Message
				if len(model) > 0 {
					want = model[0]
				}
				if got != want {
					t.Fatalf("peek = %v, want %v", got, want)
				}
			}
			if q.Len() != len(model) {
				t.Fatalf("len = %d, model = %d", q.Len(), len(model))
			}
		}
		// Drain: residual content must match the model exactly.
		for _, want := range model {
			if got := q.Pop(); got != want {
				t.Fatalf("drain pop = %v, want %v", got, want)
			}
		}
		if q.Pop() != nil {
			t.Fatal("queue should be empty after drain")
		}
		arrived, delivered, dropped := q.Stats()
		if arrived != seq || arrived != delivered+dropped {
			t.Fatalf("conservation violated: arrived=%d delivered=%d dropped=%d", arrived, delivered, dropped)
		}
	})
}
