package ros

import (
	"fmt"
	"testing"
	"time"
)

// Middleware micro-benchmarks: the perf trajectory for the intra-process
// transport. `make bench-middleware` runs these with -benchmem and
// records ns/op, B/op and allocs/op into BENCH_middleware.json next to
// the pre-rewrite baseline numbers, so every future change to the bus,
// queue or pool shows up as a delta against the recorded history.
//
// Pre-rewrite baselines (mutex queue, one envelope allocation per
// publish), captured on the seed transport and committed in
// BENCH_middleware.json:
//
//	BenchmarkBusPublishFanout/subs=1   85.71 ns/op   96 B/op   1 allocs/op
//	BenchmarkBusPublishFanout/subs=4  180.80 ns/op   96 B/op   1 allocs/op
//	BenchmarkQueuePush (mutex edge)    43.02 ns/op    0 B/op   0 allocs/op

// benchPayload is a stand-in sensor frame. The bus never copies
// payloads, so the type only matters for the sizer (stats are disabled
// here); a small struct keeps the benchmark focused on transport cost.
type benchPayload struct{ frame [16]float64 }

// BenchmarkBusPublishFanout measures one publication fanned out to N
// subscribers whose depth-4 queues are saturated, so every publish
// exercises the steady-state path: drop-oldest eviction (recycling the
// evicted envelope through the pool) plus delivery to every queue.
// This is the per-frame transport cost of a sensor topic under load.
func BenchmarkBusPublishFanout(b *testing.B) {
	for _, subs := range []int{1, 4} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			bus := NewBus()
			for i := 0; i < subs; i++ {
				bus.Subscribe(fmt.Sprintf("node%d", i), SubSpec{Topic: "/points_raw", Depth: 4})
			}
			payload := &benchPayload{}
			// Saturate the queues so the timed loop measures eviction
			// steady state, not initial fill.
			for i := 0; i < 8; i++ {
				bus.Publish("/points_raw", time.Duration(i), payload, nil)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bus.Publish("/points_raw", time.Duration(i+8), payload, nil)
			}
		})
	}
}

// BenchmarkQueuePush measures a single bus-edge queue in push/pop
// steady state. "exclusive" is the simulator hot path (what every bus
// edge runs: no lock, no atomic read-modify-write); "shared" is the
// MPSC shim paying a mutex per operation, measured uncontended. The
// pre-rewrite queue paid the shared-mode cost on every edge even
// though the simulator is single-threaded.
func BenchmarkQueuePush(b *testing.B) {
	for _, mode := range []struct {
		name string
		mk   func(int) *Queue
	}{
		{"exclusive", NewExclusiveQueue},
		{"shared", NewQueue},
	} {
		b.Run(mode.name, func(b *testing.B) {
			q := mode.mk(4)
			msgs := make([]*Message, 8)
			for i := range msgs {
				msgs[i] = &Message{Topic: "/t", Header: Header{Stamp: time.Duration(i)}}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Push(msgs[i%len(msgs)])
				q.Pop()
			}
		})
	}
}

// BenchmarkRingSteadyState measures the bare SPSC ring cycling through
// wraparound — the primitive cost floor under every queue mode.
func BenchmarkRingSteadyState(b *testing.B) {
	var r ring
	r.init(8)
	m := &Message{Topic: "/t"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.tryPush(m)
		r.pop()
	}
}

// TestQueuePushZeroAlloc pins the exclusive fast path at zero
// allocations per push/pop cycle — the simulator's per-message floor.
func TestQueuePushZeroAlloc(t *testing.T) {
	q := NewExclusiveQueue(4)
	msgs := make([]*Message, 8)
	for i := range msgs {
		msgs[i] = &Message{Topic: "/t", Header: Header{Stamp: time.Duration(i)}}
	}
	i := 0
	if n := testing.AllocsPerRun(1000, func() {
		q.Push(msgs[i%len(msgs)])
		q.Pop()
		i++
	}); n != 0 {
		t.Fatalf("exclusive Push/Pop allocated %v per op, want 0", n)
	}
}

// TestBusPublishSteadyStateZeroAlloc pins the pooled fan-out path at
// zero allocations per publication once the pool is warm: one payload,
// N refcounted readers, recycled envelopes, origin lineage copied into
// pool-owned storage.
func TestBusPublishSteadyStateZeroAlloc(t *testing.T) {
	bus := NewBus()
	for i := 0; i < 3; i++ {
		bus.Subscribe(fmt.Sprintf("node%d", i), SubSpec{Topic: "/points_raw", Depth: 4})
	}
	payload := &benchPayload{}
	origins := []Origin{{Topic: "/points_raw", Stamp: 0}}
	// Warm: fill queues and cycle enough evictions through the limbo
	// generations to populate the free list.
	stamp := time.Duration(0)
	for i := 0; i < 32; i++ {
		bus.Publish("/points_raw", stamp, payload, origins)
		stamp++
	}
	if n := testing.AllocsPerRun(1000, func() {
		origins[0].Stamp = stamp
		bus.Publish("/points_raw", stamp, payload, origins)
		stamp++
	}); n != 0 {
		t.Fatalf("steady-state Publish allocated %v per op, want 0", n)
	}
}
