package ros

import "sync/atomic"

// ring is a Lamport single-producer/single-consumer ring buffer of
// messages: a power-of-two slot array indexed by two monotonically
// increasing cursors. The producer owns tail, the consumer owns head,
// and each side publishes its cursor with an atomic store after it is
// done touching slots — no lock, no compare-and-swap, no fetch-and-add
// anywhere on the push/pop path. That makes push/pop safe across two
// goroutines (one per role) and free of contention when, as in the
// single-threaded simulator, both roles are the same goroutine.
//
// The extended operations a ROS subscriber queue needs — drop-oldest
// eviction, stamp-ordered insertion, unbounded growth — rewrite
// interior slots or move both cursors, so they are exclusive-access
// only: either both roles belong to one goroutine (the simulator hot
// path) or the caller serializes externally (the Queue's MPSC shim).
type ring struct {
	buf  []*Message
	mask uint64
	head atomic.Uint64 // consumer cursor: next slot to pop
	tail atomic.Uint64 // producer cursor: next slot to fill
}

// init sizes the ring to hold at least capacity elements.
func (r *ring) init(capacity int) {
	c := 1
	for c < capacity {
		c <<= 1
	}
	r.buf = make([]*Message, c)
	r.mask = uint64(c - 1)
}

// len reports the number of queued elements.
func (r *ring) len() int { return int(r.tail.Load() - r.head.Load()) }

// full reports whether every slot is occupied.
func (r *ring) full() bool { return r.tail.Load()-r.head.Load() == uint64(len(r.buf)) }

// tryPush appends m. Producer-side; returns false when the ring is
// full. The slot write happens before the tail store, so a consumer
// that observes the new tail also observes the slot.
func (r *ring) tryPush(m *Message) bool {
	t := r.tail.Load()
	if t-r.head.Load() == uint64(len(r.buf)) {
		return false
	}
	r.buf[t&r.mask] = m
	r.tail.Store(t + 1)
	return true
}

// pop removes and returns the oldest element, or nil when empty.
// Consumer-side; the slot is cleared before the head store, so a
// producer that observes the advanced head may safely reuse the slot.
func (r *ring) pop() *Message {
	h := r.head.Load()
	if h == r.tail.Load() {
		return nil
	}
	m := r.buf[h&r.mask]
	r.buf[h&r.mask] = nil
	r.head.Store(h + 1)
	return m
}

// peek returns the oldest element without removing it. Consumer-side.
func (r *ring) peek() *Message {
	h := r.head.Load()
	if h == r.tail.Load() {
		return nil
	}
	return r.buf[h&r.mask]
}

// newest returns the most recently pushed element, or nil when empty.
// Exclusive access only: the newest slot is exactly the one a
// concurrent consumer could be clearing when the ring holds a single
// element.
func (r *ring) newest() *Message {
	t := r.tail.Load()
	if t == r.head.Load() {
		return nil
	}
	return r.buf[(t-1)&r.mask]
}

// insertSorted places m before every queued element with a strictly
// later stamp — the out-of-order arrival path of the stamp-ordered
// queue contract (stable for equal stamps: insertion stops at <=).
// Exclusive access only. The caller ensures the ring is not full.
func (r *ring) insertSorted(m *Message) {
	h := r.head.Load()
	t := r.tail.Load()
	i := t
	for i > h {
		prev := r.buf[(i-1)&r.mask]
		if prev.Header.Stamp <= m.Header.Stamp {
			break
		}
		r.buf[i&r.mask] = prev
		i--
	}
	r.buf[i&r.mask] = m
	r.tail.Store(t + 1)
}

// grow doubles the slot array, unrolling so the oldest element lands
// at index 0 — the unbounded (queue_size=0) growth path. Exclusive
// access only.
func (r *ring) grow() {
	old := r.buf
	h := r.head.Load()
	n := r.tail.Load() - h
	next := make([]*Message, 2*len(old))
	for i := uint64(0); i < n; i++ {
		next[i] = old[(h+i)&r.mask]
	}
	r.buf = next
	r.mask = uint64(len(next) - 1)
	r.head.Store(0)
	r.tail.Store(n)
}
