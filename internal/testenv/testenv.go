// Package testenv caches the expensive shared fixtures (scenario, HD
// map, sensors) used across the repository's test packages, so each is
// built once per test binary.
package testenv

import (
	"sync"

	"repro/internal/hdmap"
	"repro/internal/sensor"
	"repro/internal/world"
)

var (
	once sync.Once
	scen *world.Scenario
	hmap *hdmap.Map
)

// Scenario returns the shared default scenario.
func Scenario() *world.Scenario {
	build()
	return scen
}

// Map returns the shared HD map (built with coarse scan spacing for
// test speed; coverage is still complete).
func Map() *hdmap.Map {
	build()
	return hmap
}

func build() {
	once.Do(func() {
		scen = world.NewScenario(world.DefaultScenarioConfig())
		cfg := hdmap.DefaultConfig()
		cfg.ScanSpacing = 10
		m, err := hdmap.Build(scen, cfg)
		if err != nil {
			panic(err)
		}
		hmap = m
	})
}

// LiDAR returns a fresh default scanner bound to the shared city.
func LiDAR() *sensor.LiDAR {
	build()
	return sensor.NewLiDAR(sensor.DefaultLiDARConfig(), scen.City)
}

// Camera returns a fresh default camera bound to the shared city.
func Camera() *sensor.Camera {
	build()
	return sensor.NewCamera(sensor.DefaultCameraConfig(), scen.City)
}
