package autoware

import (
	"testing"
	"time"

	"repro/internal/msgs"
	"repro/internal/nodes/filters"
	"repro/internal/nodes/localization"
	"repro/internal/nodes/visiondet"
	"repro/internal/ros"
	"repro/internal/sensor"
	"repro/internal/testenv"
	"repro/internal/world"
)

// recordDrive synthesizes the sensor streams of a drive window into bag
// records, optionally blanking an outage window for a topic.
func recordDrive(t *testing.T, duration time.Duration, outageTopic string, outageFrom, outageTo time.Duration) []ros.BagRecord {
	t.Helper()
	scen := testenv.Scenario()
	lidar := sensor.NewLiDAR(sensor.DefaultLiDARConfig(), scen.City)
	camera := sensor.NewCamera(sensor.DefaultCameraConfig(), scen.City)
	gnss := sensor.NewGNSS(2.0, 0x6A55)
	imu := sensor.NewIMU(0x1407)

	var recs []ros.BagRecord
	add := func(topic string, stamp time.Duration, payload any) {
		if topic == outageTopic && stamp >= outageFrom && stamp < outageTo {
			return
		}
		recs = append(recs, ros.BagRecord{Topic: topic, Stamp: stamp, Payload: payload})
	}
	snapAt := func(stamp time.Duration) world.Snapshot { return scen.At(stamp.Seconds()) }
	for stamp := 7 * time.Millisecond; stamp < duration; stamp += 100 * time.Millisecond {
		snap := snapAt(stamp)
		add(filters.TopicPointsRaw, stamp, &msgs.PointCloud{Cloud: lidar.Scan(&snap)})
	}
	for stamp := 11 * time.Millisecond; stamp < duration; stamp += 101 * time.Millisecond {
		snap := snapAt(stamp)
		add(visiondet.TopicImageRaw, stamp, &msgs.CameraImage{Frame: camera.Capture(&snap)})
	}
	for stamp := 3 * time.Millisecond; stamp < duration; stamp += time.Second {
		snap := snapAt(stamp)
		add(localization.TopicGNSS, stamp, &msgs.GNSS{Fix: gnss.Fix(&snap)})
	}
	for stamp := 1 * time.Millisecond; stamp < duration; stamp += 20 * time.Millisecond {
		snap := snapAt(stamp)
		add(localization.TopicIMU, stamp, &msgs.IMU{Sample: imu.Sample(&snap)})
	}
	return recs
}

func replayStack(t *testing.T, recs []ros.BagRecord, horizon time.Duration) *Stack {
	t.Helper()
	cfg := DefaultConfig(DetectorSSD300)
	cfg.NoSensorPumps = true
	s, err := BuildWithMap(cfg, testenv.Scenario(), testenv.Map())
	if err != nil {
		t.Fatal(err)
	}
	s.InjectBag(recs)
	s.Run(horizon)
	return s
}

func TestBagReplayDrivesFullPipeline(t *testing.T) {
	recs := recordDrive(t, 13*time.Second, "", 0, 0)
	s := replayStack(t, recs, 13*time.Second)
	// The whole graph ran.
	for _, n := range []string{"ndt_matching", "vision_detection", "costmap_generator_obj"} {
		if s.Recorder.NodeLatency(n).Count == 0 {
			t.Errorf("node %s produced nothing under replay", n)
		}
	}
	// Localization converged from replayed data.
	pose, ok := s.NDT.Pose()
	if !ok {
		t.Fatal("replay never localized")
	}
	truth := testenv.Scenario().At(s.Sim.Now().Seconds())
	if d := pose.XY().Dist(truth.Ego.Pose.XY()); d > 4 {
		t.Errorf("replay localization error %.2f m", d)
	}
}

func TestBagReplayIsDeterministic(t *testing.T) {
	recs := recordDrive(t, 8*time.Second, "", 0, 0)
	a := replayStack(t, recs, 9*time.Second)
	b := replayStack(t, recs, 9*time.Second)
	sa := a.Recorder.NodeLatency("ndt_matching")
	sb := b.Recorder.NodeLatency("ndt_matching")
	if sa.Count != sb.Count || sa.Mean != sb.Mean {
		t.Errorf("replays diverge: %+v vs %+v", sa, sb)
	}
}

// TestLiDAROutageRecovery injects a 2-second LiDAR blackout mid-drive:
// localization must coast on IMU through the gap and re-converge when
// scans return, without the pipeline wedging.
func TestLiDAROutageRecovery(t *testing.T) {
	recs := recordDrive(t, 15*time.Second, filters.TopicPointsRaw, 7*time.Second, 9*time.Second)
	s := replayStack(t, recs, 15*time.Second)

	// The pipeline processed scans both before and after the gap:
	// at 10 Hz over ~12 s of scan coverage minus warmup.
	n := s.Recorder.NodeLatency("ndt_matching").Count
	if n < 80 {
		t.Errorf("scan callbacks = %d; pipeline did not recover after outage", n)
	}
	pose, ok := s.NDT.Pose()
	if !ok {
		t.Fatal("not localized")
	}
	truth := testenv.Scenario().At(s.Sim.Now().Seconds())
	if d := pose.XY().Dist(truth.Ego.Pose.XY()); d > 5 {
		t.Errorf("post-outage localization error %.2f m", d)
	}
}

// TestGNSSOutageDoesNotBreakTracking removes GNSS entirely after the
// first fix: NDT should keep tracking on scan matching + IMU alone.
func TestGNSSOutageDoesNotBreakTracking(t *testing.T) {
	recs := recordDrive(t, 13*time.Second, localization.TopicGNSS, 2*time.Second, time.Hour)
	s := replayStack(t, recs, 13*time.Second)
	pose, ok := s.NDT.Pose()
	if !ok {
		t.Fatal("never localized from the initial fixes")
	}
	truth := testenv.Scenario().At(s.Sim.Now().Seconds())
	if d := pose.XY().Dist(truth.Ego.Pose.XY()); d > 4 {
		t.Errorf("GNSS-denied localization error %.2f m", d)
	}
}
