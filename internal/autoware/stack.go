package autoware

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/geom"
	"repro/internal/guard"
	"repro/internal/hdmap"
	"repro/internal/mathx"
	"repro/internal/msgs"
	"repro/internal/nodes/costmap"
	"repro/internal/nodes/filters"
	"repro/internal/nodes/fusion"
	"repro/internal/nodes/lidardet"
	"repro/internal/nodes/localization"
	"repro/internal/nodes/motion"
	"repro/internal/nodes/planning"
	"repro/internal/nodes/prediction"
	"repro/internal/nodes/tracking"
	"repro/internal/nodes/visiondet"
	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/ros"
	"repro/internal/sensor"
	"repro/internal/trace"
	"repro/internal/world"
)

// Stack is a fully assembled system ready to run.
type Stack struct {
	Config   Config
	Scenario *world.Scenario
	Map      *hdmap.Map

	Sim      *platform.Sim
	CPU      *platform.CPU
	GPU      *platform.GPU
	Bus      *ros.Bus
	Executor *platform.Executor
	Recorder *trace.Recorder
	Sampler  *power.Sampler
	// Guard is the input-integrity layer, nil unless Config.Guard.
	Guard *guard.Guard

	lidar  *sensor.LiDAR
	camera *sensor.Camera
	gnss   *sensor.GNSS
	imu    *sensor.IMU

	pumpRNG *mathx.RNG

	// NDT exposes the localization node for pose queries.
	NDT *localization.NDTMatching
	// Tracker exposes the tracking node.
	Tracker *tracking.Tracker

	ran time.Duration
}

// Build assembles a stack. The HD map is built from the scenario, which
// dominates construction time; BuildWithMap reuses a prebuilt one.
func Build(cfg Config) (*Stack, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	scen, err := world.BuildScenario(cfg.Scenario)
	if err != nil {
		return nil, err
	}
	var m *hdmap.Map
	if cfg.MapFile != "" {
		m, err = hdmap.LoadFile(cfg.MapFile)
	} else {
		m, err = hdmap.Build(scen, cfg.Map)
	}
	if err != nil {
		return nil, err
	}
	return BuildWithMap(cfg, scen, m)
}

// BuildWithMap assembles a stack over an existing scenario and map.
func BuildWithMap(cfg Config, scen *world.Scenario, m *hdmap.Map) (*Stack, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Weather rides in the scenario config as a sensor-noise profile:
	// the world itself stays noise-free (and the HD map with it — maps
	// are surveyed in clear weather), the sensor suite degrades. A
	// zero-value profile changes nothing, so scripted runs keep their
	// golden-pinned sensor streams bit for bit.
	if n := cfg.Scenario.Noise; !n.IsZero() {
		if err := n.Validate(); err != nil {
			return nil, err
		}
		if n.LiDARRange > 0 {
			cfg.LiDAR.RangeNoise *= n.LiDARRange
		}
		if n.LiDARDrop > 0 {
			cfg.LiDAR.DropProb += n.LiDARDrop
			if cfg.LiDAR.DropProb > 0.95 {
				cfg.LiDAR.DropProb = 0.95
			}
		}
		if n.CameraPixel > 0 {
			cfg.Camera.PixelNoise *= n.CameraPixel
		}
	}
	sim := platform.NewSim()
	cpu := platform.NewCPU(cfg.CPU, sim)
	gpu := platform.NewGPU(cfg.GPU, sim)
	bus := ros.NewBus()
	bus.EnableStats(platform.PayloadBytes)
	ex := platform.NewExecutor(sim, cpu, gpu, bus, platform.NewJitter(cfg.Jitter))

	s := &Stack{
		Config:   cfg,
		Scenario: scen,
		Map:      m,
		Sim:      sim,
		CPU:      cpu,
		GPU:      gpu,
		Bus:      bus,
		Executor: ex,
		pumpRNG:  mathx.NewRNG(0x9B2B5),
		lidar:    sensor.NewLiDAR(cfg.LiDAR, scen.City),
		camera:   sensor.NewCamera(cfg.Camera, scen.City),
		gnss:     sensor.NewGNSS(2.0, 0x6A55),
		imu:      sensor.NewIMU(0x1407),
	}

	arch, err := cfg.Detector.Arch()
	if err != nil {
		return nil, err
	}
	vcfg := visiondet.DefaultConfig(arch)
	if cfg.VisionQueueDepth > 0 {
		vcfg.QueueDepth = cfg.VisionQueueDepth
	}
	vision := visiondet.New(vcfg)

	add := func(n ros.Node) {
		ex.AddNode(n, platform.NodeOptions{CostScale: costScales[n.Name()]})
	}

	switch cfg.Mode {
	case ModeVisionStandalone:
		add(vision)
	case ModeFull, ModeFullWithPlanning:
		vgCfg := filters.DefaultVoxelGridConfig()
		if cfg.VoxelLeaf > 0 {
			vgCfg.Leaf = cfg.VoxelLeaf
		}
		add(filters.NewVoxelGrid(vgCfg))
		add(filters.NewRayGround(filters.DefaultRayGroundConfig()))
		s.NDT = localization.New(localization.DefaultConfig(), m)
		add(s.NDT)
		add(lidardet.New(lidardet.DefaultConfig()))
		add(vision)
		fcfg := fusion.DefaultConfig()
		fcfg.Camera = cfg.Camera
		add(fusion.New(fcfg))
		s.Tracker = tracking.New(tracking.DefaultConfig())
		add(s.Tracker)
		add(prediction.NewRelay())
		add(prediction.New(prediction.DefaultConfig()))
		add(costmap.NewPoints(costmap.DefaultConfig()))
		add(costmap.NewObjects(costmap.DefaultConfig()))
		if cfg.Mode == ModeFullWithPlanning {
			add(planning.NewGlobal(scen.Lanes))
			add(planning.NewLocal())
			add(motion.NewPurePursuit(motion.DefaultPurePursuitConfig()))
			add(motion.NewTwistFilter(motion.DefaultTwistFilterConfig()))
		}
	default:
		return nil, fmt.Errorf("autoware: unknown mode %d", cfg.Mode)
	}
	if err := bus.Validate(); err != nil {
		return nil, err
	}

	if cfg.Guard {
		s.Guard = guard.New(guard.Config{})
		s.Guard.Attach(ex)
	}

	s.Recorder = trace.NewRecorder(trace.StandardPaths())
	s.Recorder.Warmup = cfg.Warmup
	s.Recorder.Attach(ex)

	s.Sampler = power.NewSampler(power.DefaultCPUModel(), cpu, gpu)
	s.Sampler.Start(sim)

	if !cfg.NoSensorPumps {
		s.schedulePumps()
	}
	return s, nil
}

// InjectBag schedules recorded sensor messages for publication at their
// recorded stamps — the replayable-input methodology of the paper's
// Fig. 3, with the bag standing in for live sensors.
func (s *Stack) InjectBag(records []ros.BagRecord) {
	for _, rec := range records {
		rec := rec
		s.Sim.Schedule(rec.Stamp, func() {
			s.Executor.Publish(rec.Topic, rec.Payload)
		})
	}
}

// schedulePumps installs the recurring sensor drivers. Sensors are
// offset slightly so their first frames do not collide at t=0, like
// free-running hardware.
func (s *Stack) schedulePumps() {
	cfg := s.Config
	lidarPeriod := time.Duration(float64(time.Second) / cfg.LiDARRate)
	cameraPeriod := time.Duration(float64(time.Second) / cfg.CameraRate)
	gnssPeriod := time.Duration(float64(time.Second) / cfg.GNSSRate)
	imuPeriod := time.Duration(float64(time.Second) / cfg.IMURate)

	needLiDAR := cfg.Mode != ModeVisionStandalone

	if needLiDAR {
		s.every(7*time.Millisecond, lidarPeriod, func(snap *world.Snapshot) {
			cloud := s.lidar.Scan(snap)
			s.Executor.Publish(filters.TopicPointsRaw, &msgs.PointCloud{Cloud: cloud})
		})
		s.every(3*time.Millisecond, gnssPeriod, func(snap *world.Snapshot) {
			s.Executor.Publish(localization.TopicGNSS, &msgs.GNSS{Fix: s.gnss.Fix(snap)})
		})
		s.every(1*time.Millisecond, imuPeriod, func(snap *world.Snapshot) {
			s.Executor.Publish(localization.TopicIMU, &msgs.IMU{Sample: s.imu.Sample(snap)})
		})
	}
	s.every(11*time.Millisecond, cameraPeriod, func(snap *world.Snapshot) {
		frame := s.camera.Capture(snap)
		s.Executor.Publish(visiondet.TopicImageRaw, &msgs.CameraImage{Frame: frame})
	})

	if s.Config.Mode == ModeFullWithPlanning {
		// Issue a navigation goal once, shortly after localization
		// settles: the far corner of the ego loop.
		s.Sim.Schedule(2*time.Second, func() {
			n := float64(s.Scenario.City.Blocks)
			bs := s.Scenario.City.BlockSize
			goal := geom.NewPose((n-1)*bs, (n-1)*bs, 0, 0)
			s.Executor.Publish(planning.TopicGoal, &msgs.PoseStamped{Pose: goal})
		})
	}
}

// every schedules a recurring pump with an initial phase offset and a
// small per-tick period drift (±1 ms), so free-running sensors slide in
// phase against each other instead of staying artificially locked.
func (s *Stack) every(offset, period time.Duration, fn func(*world.Snapshot)) {
	rng := s.pumpRNG.Split()
	var tick func()
	tick = func() {
		snap := s.Scenario.At(s.Sim.Now().Seconds())
		fn(&snap)
		drift := time.Duration(rng.Range(-1e6, 1e6))
		s.Sim.After(period+drift, tick)
	}
	s.Sim.Schedule(offset, tick)
}

// Run advances the simulation by the given virtual duration (cumulative
// across calls).
func (s *Stack) Run(d time.Duration) {
	s.ran += d
	s.Sim.Run(s.ran)
}

// ErrCancelled is the sentinel RunContext wraps when the context ends
// before the drive horizon: the run stopped early, its measurements
// cover only the virtual time actually simulated.
var ErrCancelled = errors.New("autoware: run cancelled")

// runSlice is the virtual-time granularity at which RunContext polls
// the context. Event order is identical to one uninterrupted Run — the
// event loop pops strictly by (time, seq) either way — so slicing
// changes cancellation latency, never a reported number.
const runSlice = 100 * time.Millisecond

// RunContext is Run with cooperative cancellation: it advances the
// drive in runSlice virtual steps, checking ctx between steps, and
// returns an error wrapping both ErrCancelled and ctx.Err() if the
// context ends first. A fleet job deadline therefore stops in-flight
// simulation within one slice of wall clock instead of leaking the
// vehicle until drive end. Identical inputs run to completion produce
// results byte-identical to Run.
func (s *Stack) RunContext(ctx context.Context, d time.Duration) error {
	target := s.ran + d
	for s.ran < target {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("%w at t=%v: %w", ErrCancelled, s.ran, err)
		}
		step := runSlice
		if rem := target - s.ran; rem < step {
			step = rem
		}
		s.ran += step
		s.Sim.Run(s.ran)
	}
	return nil
}

// Horizon returns the total virtual time simulated so far.
func (s *Stack) Horizon() time.Duration { return s.ran }

// UtilizationReport returns the Table V-style per-node platform shares.
func (s *Stack) UtilizationReport() []power.UtilizationRow {
	return power.UtilizationReport(s.CPU, s.GPU, s.Horizon())
}

// VisionNodeName is the display name the recorder uses for the vision
// detector (the paper labels it vision_detection in all plots).
const VisionNodeName = "vision_detection"

// TrackerNodeName and LocalizerNodeName are the stateful nodes the
// supervision layer checkpoints by default.
const (
	TrackerNodeName   = "imm_ukf_pda_tracker"
	LocalizerNodeName = "ndt_matching"
)
