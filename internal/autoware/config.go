// Package autoware assembles the full stack — the synthetic drive, the
// sensor suite, every perception node, and optionally the planners —
// onto the simulated platform, reproducing the execution environment of
// the paper's methodology (Fig. 3): replayable sensor input, a
// point-cloud map, and the complete node graph running concurrently.
package autoware

import (
	"fmt"
	"time"

	"repro/internal/dnn"
	"repro/internal/hdmap"
	"repro/internal/platform"
	"repro/internal/sensor"
	"repro/internal/world"
)

// Detector selects the vision detection algorithm, the paper's main
// configuration axis.
type Detector string

// Detector choices.
const (
	DetectorSSD512 Detector = "SSD512"
	DetectorSSD300 Detector = "SSD300"
	DetectorYOLOv3 Detector = "YOLOv3-416"
)

// Arch resolves the detector's DNN architecture.
func (d Detector) Arch() (dnn.Arch, error) {
	return dnn.ArchByName(string(d))
}

// Detectors lists the three configurations the paper sweeps.
func Detectors() []Detector {
	return []Detector{DetectorSSD512, DetectorSSD300, DetectorYOLOv3}
}

// Mode selects which parts of the graph run.
type Mode int

// Modes.
const (
	// ModeFull runs the complete perception stack (the paper's main
	// configuration).
	ModeFull Mode = iota
	// ModeVisionStandalone runs only the vision detector (the paper's
	// isolated-profiling comparison, Fig. 8).
	ModeVisionStandalone
	// ModeFullWithPlanning adds the actuation-layer nodes the paper
	// could not stimulate.
	ModeFullWithPlanning
)

// Config parameterizes a stack run.
type Config struct {
	Detector Detector
	Mode     Mode

	Scenario world.ScenarioConfig
	Map      hdmap.Config
	// MapFile, when set, loads a prebuilt HD map (cmd/mapbuilder) instead
	// of synthesizing one — the expensive step of stack construction.
	MapFile string
	LiDAR   sensor.LiDARConfig
	Camera  sensor.CameraConfig

	CPU    platform.CPUConfig
	GPU    platform.GPUConfig
	Jitter platform.JitterConfig

	// Sensor rates, Hz.
	LiDARRate  float64
	CameraRate float64
	GNSSRate   float64
	IMURate    float64

	// Warmup discards measurements before this virtual time.
	Warmup time.Duration

	// NoSensorPumps disables the live sensor drivers; input then comes
	// from bag replay via Stack.InjectBag (the paper's ROSBAG workflow).
	NoSensorPumps bool

	// Guard attaches the input-integrity layer (internal/guard): payload
	// validation and time sanitization at the bus boundary, quarantining
	// corrupted frames before they reach any node. On clean input the
	// guard is a no-op (byte-identical reports either way).
	Guard bool

	// VoxelLeaf overrides the voxel_grid_filter leaf size (meters);
	// zero keeps the default. Ablation knob.
	VoxelLeaf float64
	// VisionQueueDepth overrides the detector's input queue depth;
	// zero keeps the default (1). Ablation knob.
	VisionQueueDepth int
}

// DefaultConfig mirrors the paper's setup: 10 Hz LiDAR, 12.5 Hz camera,
// one high-end CPU + GPU, full stack.
func DefaultConfig(det Detector) Config {
	mapCfg := hdmap.DefaultConfig()
	mapCfg.ScanSpacing = 10
	return Config{
		Detector:   det,
		Mode:       ModeFull,
		Scenario:   world.DefaultScenarioConfig(),
		Map:        mapCfg,
		LiDAR:      sensor.DefaultLiDARConfig(),
		Camera:     sensor.DefaultCameraConfig(),
		CPU:        platform.DefaultCPUConfig(),
		GPU:        platform.DefaultGPUConfig(),
		Jitter:     platform.DefaultJitterConfig(),
		LiDARRate:  10,
		CameraRate: 9.9,
		GNSSRate:   1,
		IMURate:    50,
		Warmup:     3 * time.Second,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if _, err := c.Detector.Arch(); err != nil {
		return fmt.Errorf("autoware: %w", err)
	}
	if c.LiDARRate <= 0 || c.CameraRate <= 0 || c.GNSSRate <= 0 || c.IMURate <= 0 {
		return fmt.Errorf("autoware: sensor rates must be positive")
	}
	return nil
}

// costScales calibrates each node's Work op volume to the per-callback
// cost of the Autoware original it models (C++/PCL/CUDA), using the
// paper's reported mean latencies as the reference (Fig. 5). Scales
// multiply CPU time only; per-frame variation still comes from the real
// scene-dependent work each Go implementation reports, so distribution
// *shapes* are emergent, not dialed in. See DESIGN.md §4.
var costScales = map[string]float64{
	"voxel_grid_filter":     30,
	"ray_ground_filter":     53,
	"ndt_matching":          27,
	"euclidean_cluster":     0.6,
	"vision_detection":      0.82,
	"range_vision_fusion":   120,
	"imm_ukf_pda_tracker":   17,
	"ukf_track_relay":       2,
	"naive_motion_predict":  50,
	"costmap_generator":     60,
	"costmap_generator_obj": 110,
	"op_global_planner":     1.0,
	"op_local_planner":      2.0,
	"pure_pursuit":          1.0,
	"twist_filter":          1.0,
}
