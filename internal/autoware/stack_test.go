package autoware

import (
	"testing"
	"time"

	"repro/internal/testenv"
)

// buildTestStack assembles a stack on the shared fixtures.
func buildTestStack(t *testing.T, det Detector, mode Mode) *Stack {
	t.Helper()
	cfg := DefaultConfig(det)
	cfg.Mode = mode
	s, err := BuildWithMap(cfg, testenv.Scenario(), testenv.Map())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFullStackProducesAllNodeSamples(t *testing.T) {
	s := buildTestStack(t, DetectorSSD300, ModeFull)
	s.Run(12 * time.Second)
	want := []string{
		"voxel_grid_filter", "ray_ground_filter", "ndt_matching",
		"euclidean_cluster", "vision_detection", "range_vision_fusion",
		"imm_ukf_pda_tracker", "ukf_track_relay", "naive_motion_predict",
		"costmap_generator", "costmap_generator_obj",
	}
	for _, n := range want {
		if s.Recorder.NodeLatency(n).Count == 0 {
			t.Errorf("node %s produced no latency samples", n)
		}
	}
	// All four computation paths observed.
	for _, p := range s.Recorder.PathNames() {
		if s.Recorder.PathLatency(p).Count == 0 {
			t.Errorf("path %s has no samples", p)
		}
	}
}

func TestStackLocalizationTracksGroundTruth(t *testing.T) {
	s := buildTestStack(t, DetectorYOLOv3, ModeFull)
	s.Run(15 * time.Second)
	pose, ok := s.NDT.Pose()
	if !ok {
		t.Fatal("localization never initialized")
	}
	truth := s.Scenario.At(s.Sim.Now().Seconds())
	// The estimate lags ground truth by up to one pipeline latency;
	// meters-level agreement is the expectation here.
	if d := pose.XY().Dist(truth.Ego.Pose.XY()); d > 4 {
		t.Errorf("localization error %.2f m", d)
	}
}

func TestStackTracksObjects(t *testing.T) {
	s := buildTestStack(t, DetectorSSD300, ModeFull)
	s.Run(15 * time.Second)
	if len(s.Tracker.Tracks()) == 0 {
		t.Error("tracker holds no tracks after 15 s of traffic")
	}
}

func TestStackDeterminism(t *testing.T) {
	a := buildTestStack(t, DetectorSSD512, ModeFull)
	a.Run(8 * time.Second)
	b := buildTestStack(t, DetectorSSD512, ModeFull)
	b.Run(8 * time.Second)
	sa := a.Recorder.NodeLatency(VisionNodeName)
	sb := b.Recorder.NodeLatency(VisionNodeName)
	if sa.Count != sb.Count || sa.Mean != sb.Mean || sa.Max != sb.Max {
		t.Errorf("runs diverge: %+v vs %+v", sa, sb)
	}
}

func TestVisionStandaloneMode(t *testing.T) {
	s := buildTestStack(t, DetectorSSD512, ModeVisionStandalone)
	s.Run(12 * time.Second)
	if s.Recorder.NodeLatency(VisionNodeName).Count == 0 {
		t.Fatal("standalone vision produced no samples")
	}
	if s.Recorder.NodeLatency("ndt_matching").Count != 0 {
		t.Error("standalone mode should not run LiDAR nodes")
	}
}

func TestStandaloneFasterAndSteadierThanFull(t *testing.T) {
	// Finding 4/5: full-system execution raises the detector's mean and
	// standard deviation versus standalone.
	alone := buildTestStack(t, DetectorSSD512, ModeVisionStandalone)
	alone.Run(20 * time.Second)
	full := buildTestStack(t, DetectorSSD512, ModeFull)
	full.Run(20 * time.Second)
	sa := alone.Recorder.NodeLatency(VisionNodeName)
	sf := full.Recorder.NodeLatency(VisionNodeName)
	if sf.Mean <= sa.Mean {
		t.Errorf("full-system mean (%v) should exceed standalone (%v)", sf.Mean, sa.Mean)
	}
	if sf.StdDev <= sa.StdDev {
		t.Errorf("full-system stddev (%v) should exceed standalone (%v)", sf.StdDev, sa.StdDev)
	}
}

func TestEndToEndExceedsBudget(t *testing.T) {
	// Finding 2: with SSD512 the worst path's tail exceeds 2x the
	// 100 ms budget.
	s := buildTestStack(t, DetectorSSD512, ModeFull)
	s.Run(30 * time.Second)
	name, sum := s.Recorder.EndToEnd()
	if name != "costmap_vision_obj" {
		t.Errorf("worst path = %s", name)
	}
	if sum.Max < 150 {
		t.Errorf("end-to-end max = %.1f ms, expected budget-breaking tail", sum.Max)
	}
	if sum.Mean < 100 {
		t.Errorf("end-to-end mean = %.1f ms, expected > 100", sum.Mean)
	}
}

func TestUtilizationUnderForty(t *testing.T) {
	// Finding 3: resources are not saturated.
	s := buildTestStack(t, DetectorSSD512, ModeFull)
	s.Run(20 * time.Second)
	if u := s.Sampler.MeanCPUUtil(); u > 0.5 {
		t.Errorf("CPU util = %.2f, expected < 0.5 (paper reports ~0.38)", u)
	}
	if u := s.Sampler.MeanGPUUtil(); u > 0.6 {
		t.Errorf("GPU util = %.2f", u)
	}
	rows := s.UtilizationReport()
	if len(rows) < 5 {
		t.Fatalf("utilization rows = %d", len(rows))
	}
	// vision_detection should be the top CPU consumer with SSD512.
	if rows[0].Node != VisionNodeName {
		t.Errorf("top CPU consumer = %s", rows[0].Node)
	}
}

func TestPlanningModeRuns(t *testing.T) {
	s := buildTestStack(t, DetectorSSD300, ModeFullWithPlanning)
	s.Run(12 * time.Second)
	if s.Recorder.NodeLatency("op_global_planner").Count == 0 {
		t.Error("global planner never planned")
	}
	if s.Recorder.NodeLatency("op_local_planner").Count == 0 {
		t.Error("local planner never produced a path")
	}
	if s.Recorder.NodeLatency("pure_pursuit").Count == 0 {
		t.Error("pure pursuit never commanded")
	}
	if s.Recorder.NodeLatency("twist_filter").Count == 0 {
		t.Error("twist filter never ran")
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig(Detector("bogus"))
	if err := cfg.Validate(); err == nil {
		t.Error("bogus detector should fail validation")
	}
	cfg = DefaultConfig(DetectorSSD300)
	cfg.CameraRate = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero camera rate should fail validation")
	}
	if _, err := BuildWithMap(cfg, testenv.Scenario(), testenv.Map()); err == nil {
		t.Error("build with invalid config should fail")
	}
}

func TestDetectorsList(t *testing.T) {
	ds := Detectors()
	if len(ds) != 3 {
		t.Fatalf("detectors = %v", ds)
	}
	for _, d := range ds {
		if _, err := d.Arch(); err != nil {
			t.Errorf("detector %s: %v", d, err)
		}
	}
}
