package tracking

import (
	"math"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/mathx"
	"repro/internal/msgs"
	"repro/internal/ros"
)

func det(x, y float64, label msgs.ObjectLabel) msgs.DetectedObject {
	return msgs.DetectedObject{
		Label: label, Score: 0.8,
		Pose: geom.NewPose(x, y, 0, 0),
		Dim:  geom.V3(4.4, 1.8, 1.5),
	}
}

func TestUKFPredictStraightLine(t *testing.T) {
	u := NewUKF(ModelCV, geom.V2(0, 0))
	// Fix a moving state: 10 m/s heading east.
	u.X.Set(iv, 0, 10)
	u.X.Set(iyaw, 0, 0)
	u.P = mathx.Identity(stateDim).Scale(0.01)
	if err := u.Predict(1.0); err != nil {
		t.Fatal(err)
	}
	if math.Abs(u.Pos().X-10) > 0.2 || math.Abs(u.Pos().Y) > 0.2 {
		t.Errorf("CV predict = %v", u.Pos())
	}
}

func TestUKFPredictTurn(t *testing.T) {
	u := NewUKF(ModelCTRV, geom.V2(0, 0))
	u.X.Set(iv, 0, 10)
	u.X.Set(iyawd, 0, 0.5)
	u.P = mathx.Identity(stateDim).Scale(0.01)
	if err := u.Predict(1.0); err != nil {
		t.Fatal(err)
	}
	// Turning left: Y must be clearly positive.
	if u.Pos().Y < 1 {
		t.Errorf("CTRV turn predict = %v", u.Pos())
	}
	if math.Abs(u.Yaw()-0.5) > 0.1 {
		t.Errorf("yaw after turn = %v", u.Yaw())
	}
}

func TestUKFConvergesOnStationaryTarget(t *testing.T) {
	u := NewUKF(ModelCV, geom.V2(5, 5))
	z := mathx.NewMat(measDim, 1)
	z.Set(0, 0, 6)
	z.Set(1, 0, 4)
	for i := 0; i < 20; i++ {
		if err := u.Predict(0.1); err != nil {
			t.Fatal(err)
		}
		mp, err := u.PredictMeasurement(0.3)
		if err != nil {
			t.Fatal(err)
		}
		u.UpdatePDA(mp, []*mathx.Mat{z}, []float64{0.95, 0.05})
	}
	if u.Pos().Dist(geom.V2(6, 4)) > 0.3 {
		t.Errorf("did not converge: %v", u.Pos())
	}
	// Position variance should have shrunk well under the prior.
	if u.P.At(ix, ix) > 0.5 {
		t.Errorf("variance did not contract: %v", u.P.At(ix, ix))
	}
}

func TestIMMPrefersCTRVWhileTurning(t *testing.T) {
	m := NewIMM(geom.V2(0, 0))
	// Simulate a target on a circle: radius 20, angular rate 0.3 rad/s.
	stamp := 0.0
	for i := 0; i < 40; i++ {
		stamp += 0.1
		ang := 0.3 * stamp
		z := mathx.NewMat(measDim, 1)
		z.Set(0, 0, 20*math.Sin(ang))
		z.Set(1, 0, 20*(1-math.Cos(ang)))
		if err := m.Predict(0.1); err != nil {
			t.Fatal(err)
		}
		err := m.Update(0.3, []*mathx.Mat{z}, func(mp *MeasurementPrediction) []float64 {
			return []float64{0.95, 0.05}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if m.Mu[ModelCTRV] < m.Mu[ModelRM] {
		t.Errorf("turning target should not favor RM: mu = %v", m.Mu)
	}
	if m.FPOps() <= 0 {
		t.Error("op accounting missing")
	}
}

func TestTrackerConfirmsAndTracksMovingObject(t *testing.T) {
	tr := New(DefaultConfig())
	// Object moving east at 8 m/s, observed at 10 Hz with small noise.
	rng := mathx.NewRNG(3)
	var confirmed []*Track
	for i := 0; i < 30; i++ {
		ts := time.Duration(i) * 100 * time.Millisecond
		x := 8 * float64(i) * 0.1
		d := det(x+rng.NormScaled(0, 0.1), rng.NormScaled(0, 0.1), msgs.LabelCar)
		confirmed = tr.Step([]msgs.DetectedObject{d}, ts)
	}
	if len(confirmed) != 1 {
		t.Fatalf("confirmed tracks = %d", len(confirmed))
	}
	tk := confirmed[0]
	v := tk.IMM.Velocity()
	if math.Abs(v.X-8) > 1.5 || math.Abs(v.Y) > 1.5 {
		t.Errorf("velocity estimate = %v, want ~(8,0)", v)
	}
	if tk.Label != msgs.LabelCar {
		t.Errorf("label = %s", tk.Label)
	}
}

func TestTrackerKeepsStableIDs(t *testing.T) {
	tr := New(DefaultConfig())
	var firstID int
	for i := 0; i < 20; i++ {
		ts := time.Duration(i) * 100 * time.Millisecond
		confirmed := tr.Step([]msgs.DetectedObject{det(float64(i)*0.5, 0, msgs.LabelCar)}, ts)
		if len(confirmed) > 0 {
			if firstID == 0 {
				firstID = confirmed[0].ID
			} else if confirmed[0].ID != firstID {
				t.Fatalf("track ID changed: %d -> %d", firstID, confirmed[0].ID)
			}
		}
	}
	if firstID == 0 {
		t.Fatal("track never confirmed")
	}
}

func TestTrackerDropsStaleTracks(t *testing.T) {
	tr := New(DefaultConfig())
	for i := 0; i < 5; i++ {
		tr.Step([]msgs.DetectedObject{det(0, 0, msgs.LabelCar)}, time.Duration(i)*100*time.Millisecond)
	}
	if len(tr.Tracks()) != 1 {
		t.Fatalf("tracks = %d", len(tr.Tracks()))
	}
	// Starve it.
	for i := 5; i < 12; i++ {
		tr.Step(nil, time.Duration(i)*100*time.Millisecond)
	}
	if len(tr.Tracks()) != 0 {
		t.Errorf("stale track survived: %d", len(tr.Tracks()))
	}
}

func TestTrackerSeparatesTwoObjects(t *testing.T) {
	tr := New(DefaultConfig())
	var confirmed []*Track
	for i := 0; i < 20; i++ {
		ts := time.Duration(i) * 100 * time.Millisecond
		confirmed = tr.Step([]msgs.DetectedObject{
			det(float64(i)*0.8, 0, msgs.LabelCar),
			det(float64(i)*0.8, 15, msgs.LabelPedestrian),
		}, ts)
	}
	if len(confirmed) != 2 {
		t.Fatalf("confirmed = %d, want 2", len(confirmed))
	}
	if confirmed[0].ID == confirmed[1].ID {
		t.Error("distinct objects share an ID")
	}
}

func TestTrackerProcessPublishesTrackedObjects(t *testing.T) {
	tr := New(DefaultConfig())
	var res ros.Result
	for i := 0; i < 10; i++ {
		res = tr.Process(&ros.Message{
			Header:  ros.Header{Stamp: time.Duration(i) * 100 * time.Millisecond},
			Payload: &msgs.DetectedObjectArray{Objects: []msgs.DetectedObject{det(float64(i), 0, msgs.LabelCar)}},
		}, 0)
	}
	if len(res.Outputs) != 1 || res.Outputs[0].Topic != TopicObjects {
		t.Fatalf("outputs = %+v", res.Outputs)
	}
	arr := res.Outputs[0].Payload.(*msgs.DetectedObjectArray)
	if len(arr.Objects) != 1 || !arr.Objects[0].Tracked {
		t.Fatalf("tracked objects = %+v", arr.Objects)
	}
	if res.Work.FPOps <= 0 {
		t.Error("work not accounted")
	}
}

func TestPDABetasSumToOne(t *testing.T) {
	tr := New(DefaultConfig())
	u := NewUKF(ModelCTRV, geom.V2(0, 0))
	mp, err := u.PredictMeasurement(0.5)
	if err != nil {
		t.Fatal(err)
	}
	z1 := mathx.NewMat(2, 1)
	z2 := mathx.NewMat(2, 1)
	z2.Set(0, 0, 0.5)
	betas := tr.pdaBetas(mp, []*mathx.Mat{z1, z2})
	sum := 0.0
	for _, b := range betas {
		if b < 0 {
			t.Fatalf("negative beta: %v", betas)
		}
		sum += b
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("betas sum = %v", sum)
	}
}

func TestModelNames(t *testing.T) {
	if ModelName(ModelCV) != "CV" || ModelName(ModelCTRV) != "CTRV" || ModelName(ModelRM) != "RM" {
		t.Error("model names wrong")
	}
	if ModelName(99) != "model99" {
		t.Error("unknown model name")
	}
}
