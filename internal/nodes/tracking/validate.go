package tracking

import (
	"errors"
	"math"

	"repro/internal/msgs"
)

// Validation errors are sentinels so the guard's accept path stays
// allocation-free: a hot loop over clean detections touches no heap.
var (
	// ErrNonFinitePose flags a NaN/Inf object pose or yaw.
	ErrNonFinitePose = errors.New("tracking: detection pose is not finite")
	// ErrDegenerateDim flags a negative or non-finite bounding box.
	ErrDegenerateDim = errors.New("tracking: detection dimensions degenerate")
	// ErrNonFiniteScore flags a NaN/Inf detection score.
	ErrNonFiniteScore = errors.New("tracking: detection score is not finite")
	// ErrNonFiniteVelocity flags a NaN/Inf velocity or yaw rate.
	ErrNonFiniteVelocity = errors.New("tracking: detection velocity is not finite")
	// ErrNonFiniteHull flags a NaN/Inf hull vertex.
	ErrNonFiniteHull = errors.New("tracking: detection hull is not finite")
)

// ValidateDetections checks every object in the array for the
// corruption modes a torn or bit-flipped frame exhibits: non-finite
// poses, scores, velocities or hull vertices, and negative box
// dimensions. A single bad object condemns the whole array — partial
// frames are worse than missing frames for the IMM-UKF association
// gate, which would chase a teleported centroid.
func ValidateDetections(a *msgs.DetectedObjectArray) error {
	if a == nil {
		return nil
	}
	for i := range a.Objects {
		o := &a.Objects[i]
		if !finite(o.Pose.Pos.X) || !finite(o.Pose.Pos.Y) || !finite(o.Pose.Pos.Z) || !finite(o.Pose.Yaw) {
			return ErrNonFinitePose
		}
		if o.Dim.X < 0 || o.Dim.Y < 0 || o.Dim.Z < 0 ||
			!finite(o.Dim.X) || !finite(o.Dim.Y) || !finite(o.Dim.Z) {
			return ErrDegenerateDim
		}
		if !finite(o.Score) {
			return ErrNonFiniteScore
		}
		if !finite(o.Velocity.X) || !finite(o.Velocity.Y) || !finite(o.YawRate) {
			return ErrNonFiniteVelocity
		}
		for _, v := range o.Hull {
			if !finite(v.X) || !finite(v.Y) {
				return ErrNonFiniteHull
			}
		}
	}
	return nil
}

func finite(f float64) bool {
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}
