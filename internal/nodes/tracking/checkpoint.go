package tracking

import "time"

// This file implements the supervision layer's Checkpointer contract
// (internal/supervise): Snapshot deep-copies the tracker's full state
// so a supervisor can restore it after a crash, losing only the updates
// since the last checkpoint instead of silently carrying stale
// in-memory tracks across the crash window.

// checkpoint is the tracker's snapshot payload.
type checkpoint struct {
	tracks []*Track
	nextID int
	last   time.Duration
}

// Snapshot returns a deep copy of the tracker state.
func (t *Tracker) Snapshot() any {
	cp := &checkpoint{nextID: t.nextID, last: t.last}
	cp.tracks = make([]*Track, len(t.tracks))
	for i, tr := range t.tracks {
		cp.tracks[i] = tr.clone()
	}
	return cp
}

// Restore replaces the tracker state with a deep copy of a snapshot
// taken by Snapshot, so the same snapshot can be restored repeatedly
// (failed restart probes) without aliasing live state. A nil snapshot
// is a cold restart: all tracks are lost.
func (t *Tracker) Restore(snapshot any) {
	cp, ok := snapshot.(*checkpoint)
	if !ok || cp == nil {
		t.tracks = nil
		t.nextID = 1
		t.last = 0
		return
	}
	t.tracks = make([]*Track, len(cp.tracks))
	for i, tr := range cp.tracks {
		t.tracks[i] = tr.clone()
	}
	t.nextID = cp.nextID
	t.last = cp.last
}

// clone deep-copies one track, including its filter bank.
func (t *Track) clone() *Track {
	c := *t
	c.IMM = t.IMM.Clone()
	c.Hull = append(c.Hull[:0:0], t.Hull...)
	return &c
}

// Clone deep-copies the IMM filter bank.
func (m *IMM) Clone() *IMM {
	c := &IMM{Mu: m.Mu}
	for i, f := range m.Filters {
		c.Filters[i] = f.Clone()
	}
	return c
}

// Clone deep-copies one UKF.
func (u *UKF) Clone() *UKF {
	c := *u
	c.X = u.X.Clone()
	c.P = u.P.Clone()
	c.wm = append(c.wm[:0:0], u.wm...)
	c.wc = append(c.wc[:0:0], u.wc...)
	return &c
}
