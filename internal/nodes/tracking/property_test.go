package tracking

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/geom"
	"repro/internal/mathx"
	"repro/internal/msgs"
)

// covarianceHealthy checks the UKF covariance invariants: finite,
// symmetric, positive diagonal, and factorizable with at most tiny
// jitter.
func covarianceHealthy(p *mathx.Mat) bool {
	for i := 0; i < p.Rows; i++ {
		for j := 0; j < p.Cols; j++ {
			v := p.At(i, j)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
			if math.Abs(p.At(i, j)-p.At(j, i)) > 1e-6 {
				return false
			}
		}
		if p.At(i, i) <= 0 {
			return false
		}
	}
	c := p.Clone()
	c.AddDiag(1e-9)
	_, err := c.Cholesky()
	return err == nil
}

// TestUKFCovarianceInvariantProperty drives a UKF with random motion
// and random (gated-plausible) measurements and checks the covariance
// never degenerates.
func TestUKFCovarianceInvariantProperty(t *testing.T) {
	rng := mathx.NewRNG(61)
	f := func() bool {
		model := rng.Intn(numModels)
		u := NewUKF(model, geom.V2(rng.Range(-50, 50), rng.Range(-50, 50)))
		pos := u.Pos()
		for step := 0; step < 30; step++ {
			dt := rng.Range(0.02, 0.5)
			if err := u.Predict(dt); err != nil {
				return false
			}
			if !covarianceHealthy(u.P) {
				return false
			}
			// Measurement near the predicted position with noise.
			pos = u.Pos().Add(geom.V2(rng.NormScaled(0, 0.5), rng.NormScaled(0, 0.5)))
			z := mathx.NewMat(measDim, 1)
			z.Set(0, 0, pos.X)
			z.Set(1, 0, pos.Y)
			mp, err := u.PredictMeasurement(0.45)
			if err != nil {
				return false
			}
			beta := rng.Range(0.5, 0.99)
			u.UpdatePDA(mp, []*mathx.Mat{z}, []float64{beta, 1 - beta})
			if !covarianceHealthy(u.P) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestIMMProbabilitiesSumToOneProperty checks the IMM's model
// probabilities stay a distribution under random updates.
func TestIMMProbabilitiesSumToOneProperty(t *testing.T) {
	rng := mathx.NewRNG(67)
	f := func() bool {
		m := NewIMM(geom.V2(rng.Range(-20, 20), rng.Range(-20, 20)))
		for step := 0; step < 20; step++ {
			if err := m.Predict(rng.Range(0.05, 0.3)); err != nil {
				return false
			}
			z := mathx.NewMat(measDim, 1)
			z.Set(0, 0, m.Pos().X+rng.NormScaled(0, 1))
			z.Set(1, 0, m.Pos().Y+rng.NormScaled(0, 1))
			err := m.Update(0.45, []*mathx.Mat{z}, func(mp *MeasurementPrediction) []float64 {
				return []float64{0.9, 0.1}
			})
			if err != nil {
				return false
			}
			sum := 0.0
			for _, mu := range m.Mu {
				if mu < -1e-12 || math.IsNaN(mu) {
					return false
				}
				sum += mu
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestTrackerNeverDuplicatesIDs checks track IDs stay unique through
// random detection streams (spawn, merge, prune).
func TestTrackerNeverDuplicatesIDs(t *testing.T) {
	rng := mathx.NewRNG(71)
	f := func() bool {
		tr := New(DefaultConfig())
		for step := 0; step < 25; step++ {
			n := rng.Intn(6)
			objs := make([]msgs.DetectedObject, 0, n)
			for i := 0; i < n; i++ {
				objs = append(objs, msgs.DetectedObject{
					Label: msgs.LabelCar, Score: 0.8,
					Pose: geom.NewPose(rng.Range(-30, 30), rng.Range(-30, 30), 0, 0),
					Dim:  geom.V3(4.4, 1.8, 1.5),
				})
			}
			tr.Step(objs, time.Duration(step+1)*100*time.Millisecond)
			seen := map[int]bool{}
			for _, track := range tr.Tracks() {
				if seen[track.ID] {
					return false
				}
				seen[track.ID] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
