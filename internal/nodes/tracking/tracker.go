package tracking

import (
	"math"
	"time"

	"repro/internal/geom"
	"repro/internal/mathx"
	"repro/internal/msgs"
	"repro/internal/nodes/fusion"
	"repro/internal/ros"
	"repro/internal/work"
)

// TopicObjects is the tracker output.
const TopicObjects = "/detection/object_tracker/objects"

// Config parameterizes the tracker node.
type Config struct {
	// GateMahalanobis is the squared-distance association gate.
	GateMahalanobis float64
	// StdMeas is the measurement (cluster centroid) noise, meters.
	StdMeas float64
	// ConfirmHits promotes a tentative track after this many updates.
	ConfirmHits int
	// MaxMisses drops a track after this many frames without support.
	MaxMisses int
	// ClutterDensity is the PDA clutter parameter (per square meter).
	ClutterDensity float64
	// DetectionProb is the PDA detection probability.
	DetectionProb float64
	QueueDepth    int
}

// DefaultConfig returns the stock configuration.
func DefaultConfig() Config {
	return Config{
		GateMahalanobis: 9.21, // chi2(2) at 99%
		StdMeas:         0.45,
		ConfirmHits:     3,
		MaxMisses:       4,
		ClutterDensity:  1e-4,
		DetectionProb:   0.9,
		QueueDepth:      2,
	}
}

// Track is one maintained object hypothesis.
type Track struct {
	ID    int
	IMM   *IMM
	Label msgs.ObjectLabel
	Score float64
	Dim   geom.Vec3
	Hull  geom.Polygon
	hits  int
	miss  int
	last  time.Duration
}

// Confirmed reports whether the track has enough support to publish.
func (t *Track) Confirmed(confirmHits int) bool { return t.hits >= confirmHits }

// Tracker is the imm_ukf_pda_tracker node.
type Tracker struct {
	cfg    Config
	tracks []*Track
	nextID int
	last   time.Duration
	// stats of the last frame for work/µarch modeling
	lastGateTests int
	lastUpdated   int
}

// New builds the node.
func New(cfg Config) *Tracker {
	if cfg.GateMahalanobis <= 0 || cfg.StdMeas <= 0 {
		panic("tracking: invalid config")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1
	}
	return &Tracker{cfg: cfg, nextID: 1}
}

// Name implements ros.Node.
func (t *Tracker) Name() string { return "imm_ukf_pda_tracker" }

// Subscribes implements ros.Node.
func (t *Tracker) Subscribes() []ros.SubSpec {
	return []ros.SubSpec{{Topic: fusion.TopicObjects, Depth: t.cfg.QueueDepth}}
}

// Tracks exposes the live track list (for tests and examples).
func (t *Tracker) Tracks() []*Track { return t.tracks }

// Step advances the tracker with one detection frame at the given
// stamp; exported for direct use. Returns the confirmed tracks.
func (t *Tracker) Step(objects []msgs.DetectedObject, stamp time.Duration) []*Track {
	dt := 0.1
	if t.last > 0 {
		d := (stamp - t.last).Seconds()
		if d > 1e-4 && d < 2 {
			dt = d
		}
	}
	t.last = stamp
	t.lastGateTests = 0
	t.lastUpdated = 0

	// Predict all tracks.
	for _, tr := range t.tracks {
		if err := tr.IMM.Predict(dt); err != nil {
			// A degenerate covariance marks the track for removal.
			tr.miss = t.cfg.MaxMisses + 1
		}
	}

	// Measurement vectors.
	zs := make([]*mathx.Mat, len(objects))
	for i, o := range objects {
		z := mathx.NewMat(measDim, 1)
		z.Set(0, 0, o.Pose.Pos.X)
		z.Set(1, 0, o.Pose.Pos.Y)
		zs[i] = z
	}
	claimed := make([]bool, len(objects))

	// Per-track gating and PDA update.
	for _, tr := range t.tracks {
		if tr.miss > t.cfg.MaxMisses {
			continue
		}
		// Gate against the CTRV filter's measurement prediction (the
		// bank shares position closely; one gate per track suffices).
		mp, err := tr.IMM.Filters[ModelCTRV].PredictMeasurement(t.cfg.StdMeas)
		if err != nil {
			tr.miss++
			continue
		}
		var gated []*mathx.Mat
		var gatedIdx []int
		for i, z := range zs {
			t.lastGateTests++
			d := z.Sub(mp.Z)
			m := d.T().Mul(mp.SInv).Mul(d).At(0, 0)
			if m <= t.cfg.GateMahalanobis {
				gated = append(gated, z)
				gatedIdx = append(gatedIdx, i)
			}
		}
		if len(gated) == 0 {
			tr.miss++
			continue
		}
		err = tr.IMM.Update(t.cfg.StdMeas, gated, func(mp *MeasurementPrediction) []float64 {
			return t.pdaBetas(mp, gated)
		})
		if err != nil {
			tr.miss++
			continue
		}
		tr.hits++
		tr.miss = 0
		tr.last = stamp
		t.lastUpdated++
		// Refresh appearance attributes from the strongest gated
		// detection (highest score, preferring labeled ones).
		bi := gatedIdx[0]
		for _, i := range gatedIdx {
			if objects[i].Label != msgs.LabelUnknown && objects[bi].Label == msgs.LabelUnknown {
				bi = i
			} else if objects[i].Score > objects[bi].Score {
				bi = i
			}
		}
		o := objects[bi]
		if o.Label != msgs.LabelUnknown {
			tr.Label = o.Label
			tr.Score = math.Max(tr.Score, o.Score)
		}
		tr.Dim = o.Dim
		tr.Hull = o.Hull
		for _, i := range gatedIdx {
			claimed[i] = true
		}
	}

	// Spawn tentative tracks from unclaimed detections.
	for i, o := range objects {
		if claimed[i] {
			continue
		}
		tr := &Track{
			ID:    t.nextID,
			IMM:   NewIMM(o.Pose.XY()),
			Label: o.Label,
			Score: o.Score,
			Dim:   o.Dim,
			Hull:  o.Hull,
			hits:  1,
			last:  stamp,
		}
		t.nextID++
		t.tracks = append(t.tracks, tr)
	}

	// Prune dead tracks.
	alive := t.tracks[:0]
	for _, tr := range t.tracks {
		if tr.miss <= t.cfg.MaxMisses {
			alive = append(alive, tr)
		}
	}
	t.tracks = alive

	// Merge coincident tracks: PDA's shared-measurement updates let
	// duplicates ride the same object forever, so near-identical
	// hypotheses collapse onto the most established one.
	t.mergeDuplicates()

	confirmed := make([]*Track, 0, len(t.tracks))
	for _, tr := range t.tracks {
		if tr.Confirmed(t.cfg.ConfirmHits) {
			confirmed = append(confirmed, tr)
		}
	}
	return confirmed
}

// mergeDuplicates removes tracks whose position estimate sits within
// MergeDist of a better-established track (more hits; ties keep the
// older ID). The survivor absorbs the duplicate's hit count so
// confirmation is not reset by a merge.
func (t *Tracker) mergeDuplicates() {
	const mergeDist = 1.2
	removed := make([]bool, len(t.tracks))
	for i := 0; i < len(t.tracks); i++ {
		if removed[i] {
			continue
		}
		for j := i + 1; j < len(t.tracks); j++ {
			if removed[j] {
				continue
			}
			a, b := t.tracks[i], t.tracks[j]
			if a.IMM.Pos().Dist(b.IMM.Pos()) > mergeDist {
				continue
			}
			// Keep the better-established hypothesis.
			keep, drop := i, j
			if b.hits > a.hits || (b.hits == a.hits && b.ID < a.ID) {
				keep, drop = j, i
			}
			if t.tracks[drop].hits > t.tracks[keep].hits {
				t.tracks[keep].hits = t.tracks[drop].hits
			}
			if t.tracks[keep].Label == msgs.LabelUnknown {
				t.tracks[keep].Label = t.tracks[drop].Label
			}
			removed[drop] = true
			if drop == i {
				break
			}
		}
	}
	alive := t.tracks[:0]
	for i, tr := range t.tracks {
		if !removed[i] {
			alive = append(alive, tr)
		}
	}
	t.tracks = alive
}

// pdaBetas computes the PDA association weights for gated measurements
// under a measurement prediction: one weight per measurement plus the
// trailing no-detection weight.
func (t *Tracker) pdaBetas(mp *MeasurementPrediction, zs []*mathx.Mat) []float64 {
	likes := make([]float64, len(zs))
	det := mp.S.At(0, 0)*mp.S.At(1, 1) - mp.S.At(0, 1)*mp.S.At(1, 0)
	norm := 1.0
	if det > 0 {
		norm = 1 / (2 * math.Pi * math.Sqrt(det))
	}
	sum := 0.0
	for i, z := range zs {
		d := z.Sub(mp.Z)
		m := d.T().Mul(mp.SInv).Mul(d).At(0, 0)
		likes[i] = t.cfg.DetectionProb * norm * math.Exp(-0.5*m)
		sum += likes[i]
	}
	b0 := t.cfg.ClutterDensity * (1 - t.cfg.DetectionProb)
	total := sum + b0
	beta := make([]float64, len(zs)+1)
	for i := range likes {
		beta[i] = likes[i] / total
	}
	beta[len(zs)] = b0 / total
	return beta
}

// Process implements ros.Node.
func (t *Tracker) Process(in *ros.Message, now time.Duration) ros.Result {
	arr, ok := in.Payload.(*msgs.DetectedObjectArray)
	if !ok {
		return ros.Result{}
	}
	startOps := t.totalFPOps()
	confirmed := t.Step(arr.Objects, in.Header.Stamp)
	filterOps := t.totalFPOps() - startOps

	out := make([]msgs.DetectedObject, 0, len(confirmed))
	for _, tr := range confirmed {
		pos := tr.IMM.Pos()
		out = append(out, msgs.DetectedObject{
			ID:       tr.ID,
			Label:    tr.Label,
			Score:    tr.Score,
			Pose:     geom.Pose{Pos: geom.V3(pos.X, pos.Y, 0), Yaw: tr.IMM.Yaw()},
			Dim:      tr.Dim,
			Velocity: tr.IMM.Velocity(),
			YawRate:  tr.IMM.YawRate(),
			Hull:     tr.Hull,
			Tracked:  true,
		})
	}

	nT := float64(len(t.tracks))
	nG := float64(t.lastGateTests)
	w := work.Work{
		FPOps:        filterOps + nG*40,
		IntOps:       nT*180 + nG*12,
		LoadOps:      filterOps*0.45 + nG*18,
		StoreOps:     filterOps*0.18 + nT*60,
		BranchOps:    nT*90 + nG*8,
		BytesTouched: nT*1600 + nG*96 + 4096,
	}
	return ros.Result{
		Outputs: []ros.Output{{
			Topic:   TopicObjects,
			Payload: &msgs.DetectedObjectArray{Objects: out},
			FrameID: "map",
		}},
		Work: w,
	}
}

func (t *Tracker) totalFPOps() float64 {
	var s float64
	for _, tr := range t.tracks {
		s += tr.IMM.FPOps()
	}
	return s
}
