// Package tracking implements imm_ukf_pda_tracker: multi-object
// tracking with an Interacting Multiple Model bank of Unscented Kalman
// Filters (constant velocity / constant turn-rate / random motion) and
// Probabilistic Data Association, following the structure of Autoware's
// tracker and the works it cites.
package tracking

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/mathx"
)

// State indices of the CTRV state vector [x, y, v, yaw, yawRate].
const (
	ix = iota
	iy
	iv
	iyaw
	iyawd
	stateDim
)

// measDim is the measurement dimension: observed (x, y) position.
const measDim = 2

// Motion model identifiers of the IMM bank.
const (
	ModelCV   = iota // constant velocity (turn rate damped to zero)
	ModelCTRV        // constant turn rate and velocity
	ModelRM          // random motion (velocity damped, high noise)
	numModels
)

// ModelName returns a printable model name.
func ModelName(m int) string {
	switch m {
	case ModelCV:
		return "CV"
	case ModelCTRV:
		return "CTRV"
	case ModelRM:
		return "RM"
	default:
		return fmt.Sprintf("model%d", m)
	}
}

// UKF is one unscented Kalman filter over the CTRV state.
type UKF struct {
	X *mathx.Mat // state (5x1)
	P *mathx.Mat // covariance (5x5)
	// Process noise spectral densities.
	stdA    float64 // longitudinal acceleration noise
	stdYawd float64 // yaw acceleration noise
	// Model behavior switches.
	model int
	// Sigma point weights.
	lambda float64
	wm, wc []float64
	// FPOps accumulates an architectural op estimate for work modeling.
	FPOps float64
}

// NewUKF creates a filter for the given model, initialized at a
// position with a generous prior.
func NewUKF(model int, pos geom.Vec2) *UKF {
	u := &UKF{
		X:     mathx.NewMat(stateDim, 1),
		P:     mathx.Identity(stateDim),
		model: model,
	}
	u.X.Set(ix, 0, pos.X)
	u.X.Set(iy, 0, pos.Y)
	u.P.Set(ix, ix, 1)
	u.P.Set(iy, iy, 1)
	u.P.Set(iv, iv, 16) // unknown speed up to ~8 m/s within 2 sigma
	u.P.Set(iyaw, iyaw, math.Pi*math.Pi)
	u.P.Set(iyawd, iyawd, 0.3)
	switch model {
	case ModelCV:
		u.stdA, u.stdYawd = 1.5, 0.05
	case ModelCTRV:
		u.stdA, u.stdYawd = 0.8, 0.6
	case ModelRM:
		u.stdA, u.stdYawd = 4.0, 1.5
	default:
		panic("tracking: unknown model")
	}
	// Unscented-transform spread: kappa = 2 keeps every sigma weight
	// positive for the 5-state filter, which makes the reconstructed
	// covariance positive semidefinite by construction (the classic
	// lambda = 3 - n choice goes negative for n > 3 and lets the
	// covariance drift indefinite over long prediction sequences).
	u.lambda = 2
	n := 2*stateDim + 1
	u.wm = make([]float64, n)
	u.wc = make([]float64, n)
	u.wm[0] = u.lambda / (u.lambda + float64(stateDim))
	u.wc[0] = u.wm[0]
	for i := 1; i < n; i++ {
		u.wm[i] = 0.5 / (u.lambda + float64(stateDim))
		u.wc[i] = u.wm[i]
	}
	return u
}

// sigmaPoints generates the 2n+1 unscented points of (X, P).
func (u *UKF) sigmaPoints() ([]*mathx.Mat, error) {
	scaled := u.P.Scale(u.lambda + float64(stateDim))
	var l *mathx.Mat
	var err error
	for jitter := 0.0; jitter < 1; jitter = jitter*10 + 1e-9 {
		p := scaled.Clone()
		if jitter > 0 {
			p.AddDiag(jitter)
		}
		l, err = p.Cholesky()
		if err == nil {
			break
		}
	}
	if err != nil {
		return nil, fmt.Errorf("tracking: sigma-point factorization failed: %w", err)
	}
	pts := make([]*mathx.Mat, 2*stateDim+1)
	pts[0] = u.X.Clone()
	for i := 0; i < stateDim; i++ {
		col := mathx.NewMat(stateDim, 1)
		for r := 0; r < stateDim; r++ {
			col.Set(r, 0, l.At(r, i))
		}
		pts[1+i] = u.X.Add(col)
		pts[1+stateDim+i] = u.X.Sub(col)
	}
	u.FPOps += float64(stateDim*stateDim*stateDim) + float64(4*stateDim*stateDim)
	return pts, nil
}

// propagate advances one sigma point by dt under the filter's model.
func (u *UKF) propagate(p *mathx.Mat, dt float64) *mathx.Mat {
	x, y := p.At(ix, 0), p.At(iy, 0)
	v, yaw, yawd := p.At(iv, 0), p.At(iyaw, 0), p.At(iyawd, 0)
	switch u.model {
	case ModelCV:
		yawd = 0
	case ModelRM:
		v *= math.Exp(-dt) // velocity decays; motion is noise-driven
	}
	var nx, ny float64
	if math.Abs(yawd) > 1e-4 {
		nx = x + v/yawd*(math.Sin(yaw+yawd*dt)-math.Sin(yaw))
		ny = y + v/yawd*(-math.Cos(yaw+yawd*dt)+math.Cos(yaw))
	} else {
		nx = x + v*dt*math.Cos(yaw)
		ny = y + v*dt*math.Sin(yaw)
	}
	out := mathx.NewMat(stateDim, 1)
	out.Set(ix, 0, nx)
	out.Set(iy, 0, ny)
	out.Set(iv, 0, v)
	out.Set(iyaw, 0, geom.WrapAngle(yaw+yawd*dt))
	out.Set(iyawd, 0, yawd)
	u.FPOps += 40
	return out
}

// Predict advances the filter by dt seconds.
func (u *UKF) Predict(dt float64) error {
	pts, err := u.sigmaPoints()
	if err != nil {
		return err
	}
	for i, p := range pts {
		pts[i] = u.propagate(p, dt)
	}
	// Reconstruct mean with angular care on yaw.
	mean := mathx.NewMat(stateDim, 1)
	var sinSum, cosSum float64
	for i, p := range pts {
		for r := 0; r < stateDim; r++ {
			if r == iyaw {
				continue
			}
			mean.AddAt(r, 0, u.wm[i]*p.At(r, 0))
		}
		sinSum += u.wm[i] * math.Sin(p.At(iyaw, 0))
		cosSum += u.wm[i] * math.Cos(p.At(iyaw, 0))
	}
	mean.Set(iyaw, 0, math.Atan2(sinSum, cosSum))
	// Covariance.
	cov := mathx.NewMat(stateDim, stateDim)
	for i, p := range pts {
		d := p.Sub(mean)
		d.Set(iyaw, 0, geom.WrapAngle(d.At(iyaw, 0)))
		for r := 0; r < stateDim; r++ {
			for c := 0; c < stateDim; c++ {
				cov.AddAt(r, c, u.wc[i]*d.At(r, 0)*d.At(c, 0))
			}
		}
	}
	// Additive process noise (discretized).
	dt2 := dt * dt
	qa := u.stdA * u.stdA
	qy := u.stdYawd * u.stdYawd
	cov.AddAt(ix, ix, 0.25*dt2*dt2*qa)
	cov.AddAt(iy, iy, 0.25*dt2*dt2*qa)
	cov.AddAt(iv, iv, dt2*qa)
	cov.AddAt(iyaw, iyaw, 0.25*dt2*dt2*qy)
	cov.AddAt(iyawd, iyawd, dt2*qy)
	cov.Symmetrize()
	u.X = mean
	u.P = cov
	u.FPOps += float64((2*stateDim + 1) * stateDim * stateDim * 2)
	return nil
}

// MeasurementPrediction holds the predicted measurement distribution
// and the cross covariance needed for the update.
type MeasurementPrediction struct {
	Z    *mathx.Mat // predicted measurement mean (2x1)
	S    *mathx.Mat // innovation covariance (2x2)
	SInv *mathx.Mat
	T    *mathx.Mat // cross covariance (5x2)
}

// PredictMeasurement projects the current belief into measurement space
// with measurement noise stdMeas.
func (u *UKF) PredictMeasurement(stdMeas float64) (*MeasurementPrediction, error) {
	pts, err := u.sigmaPoints()
	if err != nil {
		return nil, err
	}
	zPts := make([]*mathx.Mat, len(pts))
	zMean := mathx.NewMat(measDim, 1)
	for i, p := range pts {
		z := mathx.NewMat(measDim, 1)
		z.Set(0, 0, p.At(ix, 0))
		z.Set(1, 0, p.At(iy, 0))
		zPts[i] = z
		zMean.AddAt(0, 0, u.wm[i]*z.At(0, 0))
		zMean.AddAt(1, 0, u.wm[i]*z.At(1, 0))
	}
	s := mathx.NewMat(measDim, measDim)
	t := mathx.NewMat(stateDim, measDim)
	for i, p := range pts {
		dz := zPts[i].Sub(zMean)
		dx := p.Sub(u.X)
		dx.Set(iyaw, 0, geom.WrapAngle(dx.At(iyaw, 0)))
		for r := 0; r < measDim; r++ {
			for c := 0; c < measDim; c++ {
				s.AddAt(r, c, u.wc[i]*dz.At(r, 0)*dz.At(c, 0))
			}
		}
		for r := 0; r < stateDim; r++ {
			for c := 0; c < measDim; c++ {
				t.AddAt(r, c, u.wc[i]*dx.At(r, 0)*dz.At(c, 0))
			}
		}
	}
	s.AddAt(0, 0, stdMeas*stdMeas)
	s.AddAt(1, 1, stdMeas*stdMeas)
	sInv, err := s.Inverse()
	if err != nil {
		return nil, fmt.Errorf("tracking: singular innovation covariance: %w", err)
	}
	u.FPOps += float64((2*stateDim + 1) * (measDim*measDim + stateDim*measDim) * 2)
	return &MeasurementPrediction{Z: zMean, S: s, SInv: sInv, T: t}, nil
}

// UpdatePDA applies a probabilistic data association update with gated
// measurements zs (2x1 each) and their association weights beta
// (len(zs)+1 entries, last is the no-detection weight). It returns the
// combined measurement likelihood for IMM model probability updates.
func (u *UKF) UpdatePDA(mp *MeasurementPrediction, zs []*mathx.Mat, beta []float64) float64 {
	if len(beta) != len(zs)+1 {
		panic("tracking: beta length mismatch")
	}
	k := mp.T.Mul(mp.SInv) // Kalman gain (5x2)
	// Combined innovation.
	nu := mathx.NewMat(measDim, 1)
	for i, z := range zs {
		nu = nu.Add(z.Sub(mp.Z).Scale(beta[i]))
	}
	// Spread-of-innovations term for the PDA covariance.
	spread := mathx.NewMat(measDim, measDim)
	for i, z := range zs {
		d := z.Sub(mp.Z)
		for r := 0; r < measDim; r++ {
			for c := 0; c < measDim; c++ {
				spread.AddAt(r, c, beta[i]*d.At(r, 0)*d.At(c, 0))
			}
		}
	}
	for r := 0; r < measDim; r++ {
		for c := 0; c < measDim; c++ {
			spread.AddAt(r, c, -nu.At(r, 0)*nu.At(c, 0))
		}
	}
	u.X = u.X.Add(k.Mul(nu))
	u.X.Set(iyaw, 0, geom.WrapAngle(u.X.At(iyaw, 0)))
	b0 := beta[len(beta)-1]
	pc := u.P.Sub(k.Mul(mp.S).Mul(k.T()).Scale(1 - b0))
	pc = pc.Add(k.Mul(spread).Mul(k.T()))
	pc.Symmetrize()
	pc.AddDiag(1e-9)
	u.P = pc
	u.FPOps += 400

	// Mean gated likelihood (for IMM).
	like := 1e-12
	for _, z := range zs {
		d := z.Sub(mp.Z)
		m := d.T().Mul(mp.SInv).Mul(d).At(0, 0)
		det := mp.S.At(0, 0)*mp.S.At(1, 1) - mp.S.At(0, 1)*mp.S.At(1, 0)
		if det > 0 {
			like += math.Exp(-0.5*m) / (2 * math.Pi * math.Sqrt(det))
		}
	}
	return like
}

// Pos returns the estimated position.
func (u *UKF) Pos() geom.Vec2 { return geom.V2(u.X.At(ix, 0), u.X.At(iy, 0)) }

// Speed returns the estimated scalar speed.
func (u *UKF) Speed() float64 { return u.X.At(iv, 0) }

// Yaw returns the estimated heading.
func (u *UKF) Yaw() float64 { return u.X.At(iyaw, 0) }

// YawRate returns the estimated turn rate.
func (u *UKF) YawRate() float64 { return u.X.At(iyawd, 0) }
