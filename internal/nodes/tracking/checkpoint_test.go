package tracking

import (
	"testing"
	"time"

	"repro/internal/msgs"
	"repro/internal/ros"
)

// feed pushes one detection frame through the tracker.
func feed(t *testing.T, tr *Tracker, stamp time.Duration, objs ...msgs.DetectedObject) {
	t.Helper()
	tr.Process(&ros.Message{
		Header:  ros.Header{Stamp: stamp},
		Payload: &msgs.DetectedObjectArray{Objects: objs},
	}, stamp)
}

func TestCheckpointRoundTrip(t *testing.T) {
	tr := New(DefaultConfig())
	for i := 0; i < 5; i++ {
		stamp := time.Duration(i) * 100 * time.Millisecond
		feed(t, tr, stamp, det(10+float64(i), 5, msgs.LabelCar), det(30, 20+float64(i), msgs.LabelPedestrian))
	}
	if len(tr.Tracks()) == 0 {
		t.Fatal("no tracks to checkpoint")
	}
	wantIDs := trackIDs(tr)
	wantPos := tr.Tracks()[0].IMM.Pos()

	snap := tr.Snapshot()

	// Mutate past the checkpoint: new frames move the tracks and spawn
	// a new one.
	for i := 5; i < 10; i++ {
		stamp := time.Duration(i) * 100 * time.Millisecond
		feed(t, tr, stamp, det(10+float64(i), 5, msgs.LabelCar), det(-40, -40, msgs.LabelTruck))
	}

	tr.Restore(snap)
	if got := trackIDs(tr); !equalInts(got, wantIDs) {
		t.Errorf("restored track IDs = %v, want %v", got, wantIDs)
	}
	if got := tr.Tracks()[0].IMM.Pos(); got.Dist(wantPos) > 1e-12 {
		t.Errorf("restored position %v, want %v", got, wantPos)
	}

	// The restored state must continue evolving exactly like a tracker
	// that never crashed: ID allocation resumes from the checkpointed
	// counter.
	feed(t, tr, time.Second, det(100, 100, msgs.LabelCyclist))
	fresh := tr.Tracks()[len(tr.Tracks())-1]
	if fresh.ID != wantIDs[len(wantIDs)-1]+1 {
		t.Errorf("post-restore ID = %d, want %d", fresh.ID, wantIDs[len(wantIDs)-1]+1)
	}
}

func TestCheckpointIsDeepCopy(t *testing.T) {
	tr := New(DefaultConfig())
	for i := 0; i < 4; i++ {
		feed(t, tr, time.Duration(i)*100*time.Millisecond, det(10, 5, msgs.LabelCar))
	}
	snap := tr.Snapshot()
	before := tr.Tracks()[0].IMM.Pos()

	// Mutating the live tracker must not leak into the snapshot...
	for i := 4; i < 12; i++ {
		feed(t, tr, time.Duration(i)*100*time.Millisecond, det(10+3*float64(i), 5, msgs.LabelCar))
	}
	moved := tr.Tracks()[0].IMM.Pos()
	if moved.Dist(before) < 1 {
		t.Fatalf("track did not move (%v -> %v); test is vacuous", before, moved)
	}
	tr.Restore(snap)
	if got := tr.Tracks()[0].IMM.Pos(); got.Dist(before) > 1e-12 {
		t.Errorf("snapshot aliased live state: restored %v, want %v", got, before)
	}

	// ...and the same snapshot must survive repeated restores (failed
	// restart probes) without the first restore aliasing it either.
	tr.Restore(snap)
	feed(t, tr, 2*time.Second, det(50, 50, msgs.LabelCar))
	tr.Restore(snap)
	if got := tr.Tracks()[0].IMM.Pos(); got.Dist(before) > 1e-12 {
		t.Errorf("second restore corrupted: %v, want %v", got, before)
	}
}

func TestRestoreNilIsColdRestart(t *testing.T) {
	tr := New(DefaultConfig())
	for i := 0; i < 4; i++ {
		feed(t, tr, time.Duration(i)*100*time.Millisecond, det(10, 5, msgs.LabelCar))
	}
	tr.Restore(nil)
	if len(tr.Tracks()) != 0 {
		t.Errorf("cold restart kept %d tracks", len(tr.Tracks()))
	}
	feed(t, tr, time.Second, det(10, 5, msgs.LabelCar))
	if tr.Tracks()[0].ID != 1 {
		t.Errorf("cold restart did not reset ID allocation: first ID = %d", tr.Tracks()[0].ID)
	}
}

func trackIDs(tr *Tracker) []int {
	var ids []int
	for _, track := range tr.Tracks() {
		ids = append(ids, track.ID)
	}
	return ids
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
