package tracking

import (
	"math"

	"repro/internal/geom"
	"repro/internal/mathx"
)

// immTransition is the Markov model-switching matrix: rows are source
// models, columns destination. Strong diagonal keeps model identity
// sticky, echoing the tuned matrices of IMM trackers.
var immTransition = [numModels][numModels]float64{
	{0.92, 0.06, 0.02}, // from CV
	{0.06, 0.92, 0.02}, // from CTRV
	{0.10, 0.10, 0.80}, // from RM
}

// IMM is the interacting-multiple-model wrapper around a bank of UKFs
// sharing a common state space.
type IMM struct {
	Filters [numModels]*UKF
	// Mu are the model probabilities.
	Mu [numModels]float64
}

// NewIMM creates the filter bank at a position.
func NewIMM(pos geom.Vec2) *IMM {
	m := &IMM{}
	for i := 0; i < numModels; i++ {
		m.Filters[i] = NewUKF(i, pos)
	}
	m.Mu = [numModels]float64{0.45, 0.45, 0.1}
	return m
}

// mix performs the IMM interaction step: each filter restarts from a
// probability-weighted blend of all filters' states.
func (m *IMM) mix() {
	// Mixing weights w[j][i] = P(was i | now j).
	var cbar [numModels]float64
	for j := 0; j < numModels; j++ {
		for i := 0; i < numModels; i++ {
			cbar[j] += immTransition[i][j] * m.Mu[i]
		}
		if cbar[j] < 1e-12 {
			cbar[j] = 1e-12
		}
	}
	var mixedX [numModels]*mathx.Mat
	var mixedP [numModels]*mathx.Mat
	for j := 0; j < numModels; j++ {
		x := mathx.NewMat(stateDim, 1)
		var sinSum, cosSum float64
		for i := 0; i < numModels; i++ {
			w := immTransition[i][j] * m.Mu[i] / cbar[j]
			fi := m.Filters[i]
			for r := 0; r < stateDim; r++ {
				if r == iyaw {
					continue
				}
				x.AddAt(r, 0, w*fi.X.At(r, 0))
			}
			sinSum += w * math.Sin(fi.X.At(iyaw, 0))
			cosSum += w * math.Cos(fi.X.At(iyaw, 0))
		}
		x.Set(iyaw, 0, math.Atan2(sinSum, cosSum))
		p := mathx.NewMat(stateDim, stateDim)
		for i := 0; i < numModels; i++ {
			w := immTransition[i][j] * m.Mu[i] / cbar[j]
			fi := m.Filters[i]
			d := fi.X.Sub(x)
			d.Set(iyaw, 0, geom.WrapAngle(d.At(iyaw, 0)))
			for r := 0; r < stateDim; r++ {
				for c := 0; c < stateDim; c++ {
					p.AddAt(r, c, w*(fi.P.At(r, c)+d.At(r, 0)*d.At(c, 0)))
				}
			}
		}
		p.Symmetrize()
		mixedX[j], mixedP[j] = x, p
	}
	for j := 0; j < numModels; j++ {
		m.Filters[j].X = mixedX[j]
		m.Filters[j].P = mixedP[j]
	}
}

// Predict runs interaction and per-model prediction.
func (m *IMM) Predict(dt float64) error {
	m.mix()
	for _, f := range m.Filters {
		if err := f.Predict(dt); err != nil {
			return err
		}
	}
	return nil
}

// Update applies the PDA update to each model filter and refreshes the
// model probabilities with the per-model likelihoods.
func (m *IMM) Update(stdMeas float64, zs []*mathx.Mat, betaFor func(mp *MeasurementPrediction) []float64) error {
	var likes [numModels]float64
	for j, f := range m.Filters {
		mp, err := f.PredictMeasurement(stdMeas)
		if err != nil {
			return err
		}
		beta := betaFor(mp)
		likes[j] = f.UpdatePDA(mp, zs, beta)
	}
	// Model probability update.
	var cbar [numModels]float64
	for j := 0; j < numModels; j++ {
		for i := 0; i < numModels; i++ {
			cbar[j] += immTransition[i][j] * m.Mu[i]
		}
	}
	sum := 0.0
	for j := 0; j < numModels; j++ {
		m.Mu[j] = likes[j] * cbar[j]
		sum += m.Mu[j]
	}
	if sum < 1e-18 {
		m.Mu = [numModels]float64{1.0 / 3, 1.0 / 3, 1.0 / 3}
		return nil
	}
	for j := 0; j < numModels; j++ {
		m.Mu[j] /= sum
	}
	return nil
}

// best returns the most probable model's filter.
func (m *IMM) best() *UKF {
	bi, bv := 0, m.Mu[0]
	for i := 1; i < numModels; i++ {
		if m.Mu[i] > bv {
			bi, bv = i, m.Mu[i]
		}
	}
	return m.Filters[bi]
}

// Pos returns the probability-weighted position estimate.
func (m *IMM) Pos() geom.Vec2 {
	var x, y float64
	for i, f := range m.Filters {
		x += m.Mu[i] * f.X.At(ix, 0)
		y += m.Mu[i] * f.X.At(iy, 0)
	}
	return geom.V2(x, y)
}

// Velocity returns the best-model velocity vector.
func (m *IMM) Velocity() geom.Vec2 {
	f := m.best()
	return geom.V2(f.Speed()*math.Cos(f.Yaw()), f.Speed()*math.Sin(f.Yaw()))
}

// Yaw returns the best-model heading.
func (m *IMM) Yaw() float64 { return m.best().Yaw() }

// YawRate returns the best-model turn rate.
func (m *IMM) YawRate() float64 { return m.best().YawRate() }

// FPOps sums the accumulated op estimates across the bank.
func (m *IMM) FPOps() float64 {
	var s float64
	for _, f := range m.Filters {
		s += f.FPOps
	}
	return s
}
