package filters

import (
	"math"
	"sort"
	"time"

	"repro/internal/msgs"
	"repro/internal/pointcloud"
	"repro/internal/ros"
	"repro/internal/work"
)

// RayGroundConfig parameterizes the ground filter.
type RayGroundConfig struct {
	// Sectors is the number of azimuth bins the scan is split into;
	// each sector is processed as one "ray" walked radially outward.
	Sectors int
	// MaxSlope is the maximum ground slope, radians.
	MaxSlope float64
	// InitialHeight is the sensor height used to seed the ground line
	// at range zero (points near -InitialHeight in the ego frame are
	// ground candidates).
	InitialHeight float64
	// HeightMargin is the tolerance above the running ground estimate.
	HeightMargin float64
	QueueDepth   int
}

// DefaultRayGroundConfig returns the stock configuration.
func DefaultRayGroundConfig() RayGroundConfig {
	return RayGroundConfig{
		Sectors:       360,
		MaxSlope:      0.18,
		InitialHeight: 0,
		HeightMargin:  0.08,
		QueueDepth:    1,
	}
}

// RayGround is the ray_ground_filter node: it walks each azimuth ray
// outward, tracking the ground elevation profile, and splits the cloud
// into ground and non-ground sets.
type RayGround struct {
	cfg RayGroundConfig
	// sortSteps counts comparison iterations of the last Process, used
	// by the work model.
	sortSteps float64
}

// NewRayGround builds the node.
func NewRayGround(cfg RayGroundConfig) *RayGround {
	if cfg.Sectors <= 0 {
		panic("filters: sectors must be positive")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1
	}
	return &RayGround{cfg: cfg}
}

// Name implements ros.Node.
func (r *RayGround) Name() string { return "ray_ground_filter" }

// Subscribes implements ros.Node.
func (r *RayGround) Subscribes() []ros.SubSpec {
	return []ros.SubSpec{{Topic: TopicPointsRaw, Depth: r.cfg.QueueDepth}}
}

// Split performs the actual classification; exported for direct use in
// tests and examples.
func (r *RayGround) Split(cloud *pointcloud.Cloud) (ground, noGround *pointcloud.Cloud) {
	type radialPoint struct {
		idx    int32
		radius float64
	}
	sectors := make([][]radialPoint, r.cfg.Sectors)
	for i, p := range cloud.Points {
		az := math.Atan2(p.Pos.Y, p.Pos.X)
		sec := int((az + math.Pi) / (2 * math.Pi) * float64(r.cfg.Sectors))
		if sec >= r.cfg.Sectors {
			sec = r.cfg.Sectors - 1
		}
		if sec < 0 {
			sec = 0
		}
		sectors[sec] = append(sectors[sec], radialPoint{idx: int32(i), radius: p.Pos.XY().Norm()})
	}
	ground = pointcloud.New(cloud.Len() / 2)
	noGround = pointcloud.New(cloud.Len() / 2)
	r.sortSteps = 0
	for _, sec := range sectors {
		if len(sec) == 0 {
			continue
		}
		sort.Slice(sec, func(a, b int) bool { return sec[a].radius < sec[b].radius })
		r.sortSteps += float64(len(sec)) * math.Log2(float64(len(sec))+1)
		// Walk outward tracking the ground height.
		prevR := 0.0
		prevZ := r.cfg.InitialHeight
		for _, rp := range sec {
			p := cloud.Points[rp.idx]
			dr := rp.radius - prevR
			allowed := prevZ + dr*math.Tan(r.cfg.MaxSlope) + r.cfg.HeightMargin
			if p.Pos.Z <= allowed {
				ground.Append(p)
				// Ground estimate follows the terrain.
				prevZ = p.Pos.Z
				prevR = rp.radius
			} else {
				noGround.Append(p)
			}
		}
	}
	return ground, noGround
}

// Process implements ros.Node.
func (r *RayGround) Process(in *ros.Message, _ time.Duration) ros.Result {
	pc, ok := in.Payload.(*msgs.PointCloud)
	if !ok {
		return ros.Result{}
	}
	ground, noGround := r.Split(pc.Cloud)

	n := float64(pc.Cloud.Len())
	w := work.Work{
		// Binning: atan2 + bucket append per point; walk: slope test.
		FPOps:     28 * n,
		IntOps:    10*n + 6*r.sortSteps,
		LoadOps:   12*n + 4*r.sortSteps,
		StoreOps:  6*n + 1.5*r.sortSteps,
		BranchOps: 6*n + 1.5*r.sortSteps,
		// The paper attributes ray_ground_filter ~20+ms means — it
		// re-traverses the full-resolution cloud several times.
		BytesTouched: 96 * n,
	}
	return ros.Result{
		Outputs: []ros.Output{
			{Topic: TopicPointsGround, Payload: &msgs.PointCloud{Cloud: ground}, FrameID: "ego"},
			{Topic: TopicPointsNoGround, Payload: &msgs.PointCloud{Cloud: noGround}, FrameID: "ego"},
		},
		Work: w,
	}
}
