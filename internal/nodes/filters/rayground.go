package filters

import (
	"math"
	"time"

	"repro/internal/msgs"
	"repro/internal/parallel"
	"repro/internal/pointcloud"
	"repro/internal/ros"
	"repro/internal/work"
)

// RayGroundConfig parameterizes the ground filter.
type RayGroundConfig struct {
	// Sectors is the number of azimuth bins the scan is split into;
	// each sector is processed as one "ray" walked radially outward.
	Sectors int
	// MaxSlope is the maximum ground slope, radians.
	MaxSlope float64
	// InitialHeight is the sensor height used to seed the ground line
	// at range zero (points near -InitialHeight in the ego frame are
	// ground candidates).
	InitialHeight float64
	// HeightMargin is the tolerance above the running ground estimate.
	HeightMargin float64
	QueueDepth   int
}

// DefaultRayGroundConfig returns the stock configuration.
func DefaultRayGroundConfig() RayGroundConfig {
	return RayGroundConfig{
		Sectors:       360,
		MaxSlope:      0.18,
		InitialHeight: 0,
		HeightMargin:  0.08,
		QueueDepth:    1,
	}
}

// RayGround is the ray_ground_filter node: it walks each azimuth ray
// outward, tracking the ground elevation profile, and splits the cloud
// into ground and non-ground sets.
type RayGround struct {
	cfg RayGroundConfig
	// sortSteps counts comparison iterations of the last Process, used
	// by the work model.
	sortSteps float64

	// Per-frame scratch, reused across callbacks (each node instance
	// processes one message at a time). secs/radii hold per-point sector
	// assignments, counts/starts back the counting sort, order is the
	// sector-major point permutation, and stepsPerSec collects each
	// sector's sort cost for order-independent accumulation.
	secs        []int32
	radii       []float64
	counts      []int32
	starts      []int32
	order       []int32
	stepsPerSec []float64
}

// NewRayGround builds the node.
func NewRayGround(cfg RayGroundConfig) *RayGround {
	if cfg.Sectors <= 0 {
		panic("filters: sectors must be positive")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1
	}
	return &RayGround{cfg: cfg}
}

// Name implements ros.Node.
func (r *RayGround) Name() string { return "ray_ground_filter" }

// Subscribes implements ros.Node.
func (r *RayGround) Subscribes() []ros.SubSpec {
	return []ros.SubSpec{{Topic: TopicPointsRaw, Depth: r.cfg.QueueDepth}}
}

// raySectorShard fixes the shard size of the parallel azimuth-binning
// pass; the decomposition depends only on cloud size, so results match
// the serial walk bit for bit.
const raySectorShard = 8192

// Split performs the actual classification; exported for direct use in
// tests and examples.
func (r *RayGround) Split(cloud *pointcloud.Cloud) (ground, noGround *pointcloud.Cloud) {
	n := cloud.Len()
	nsec := r.cfg.Sectors
	r.ensureScratch(n, nsec)

	// Pass 1: per-point sector and radius. Pure per-element math over
	// disjoint slots — safe and deterministic under fixed shards.
	pts := cloud.Points
	parallel.Run(parallel.Shards(n, raySectorShard), func(si int) {
		lo, hi := parallel.ShardRange(si, raySectorShard, n)
		for i := lo; i < hi; i++ {
			p := &pts[i]
			az := math.Atan2(p.Pos.Y, p.Pos.X)
			sec := int((az + math.Pi) / (2 * math.Pi) * float64(nsec))
			if sec >= nsec {
				sec = nsec - 1
			}
			if sec < 0 {
				sec = 0
			}
			r.secs[i] = int32(sec)
			r.radii[i] = p.Pos.XY().Norm()
		}
	})

	// Pass 2: counting sort into sector-major order (stable in point
	// index, matching the append order of a per-sector bucket build).
	for i := range r.counts {
		r.counts[i] = 0
	}
	for i := 0; i < n; i++ {
		r.counts[r.secs[i]]++
	}
	off := int32(0)
	for s := 0; s < nsec; s++ {
		r.starts[s] = off
		off += r.counts[s]
		r.counts[s] = r.starts[s] // reuse as running cursor
	}
	r.starts[nsec] = off
	for i := 0; i < n; i++ {
		s := r.secs[i]
		r.order[r.counts[s]] = int32(i)
		r.counts[s]++
	}

	// Pass 3: sort each sector by radius. Sectors are disjoint slices,
	// so they sort concurrently; per-sector costs accumulate serially in
	// sector order afterwards to keep the float sum order-independent.
	sortWorkers := 1
	if n >= raySectorShard {
		sortWorkers = parallel.MaxWorkers()
	}
	parallel.RunLimit(nsec, sortWorkers, func(s int) {
		seg := r.order[r.starts[s]:r.starts[s+1]]
		r.stepsPerSec[s] = 0
		if len(seg) == 0 {
			return
		}
		sortByRadius(seg, r.radii)
		r.stepsPerSec[s] = float64(len(seg)) * math.Log2(float64(len(seg))+1)
	})
	r.sortSteps = 0
	for s := 0; s < nsec; s++ {
		r.sortSteps += r.stepsPerSec[s]
	}

	// Pass 4: walk each ray outward tracking the ground height.
	ground = pointcloud.New(n / 2)
	noGround = pointcloud.New(n / 2)
	tanSlope := math.Tan(r.cfg.MaxSlope)
	for s := 0; s < nsec; s++ {
		seg := r.order[r.starts[s]:r.starts[s+1]]
		if len(seg) == 0 {
			continue
		}
		prevR := 0.0
		prevZ := r.cfg.InitialHeight
		for _, idx := range seg {
			p := pts[idx]
			radius := r.radii[idx]
			dr := radius - prevR
			allowed := prevZ + dr*tanSlope + r.cfg.HeightMargin
			if p.Pos.Z <= allowed {
				ground.Append(p)
				// Ground estimate follows the terrain.
				prevZ = p.Pos.Z
				prevR = radius
			} else {
				noGround.Append(p)
			}
		}
	}
	return ground, noGround
}

// ensureScratch sizes the reusable buffers for n points and nsec sectors.
func (r *RayGround) ensureScratch(n, nsec int) {
	if cap(r.secs) < n {
		r.secs = make([]int32, n)
		r.radii = make([]float64, n)
		r.order = make([]int32, n)
	}
	r.secs = r.secs[:n]
	r.radii = r.radii[:n]
	r.order = r.order[:n]
	if cap(r.counts) < nsec+1 {
		r.counts = make([]int32, nsec+1)
		r.starts = make([]int32, nsec+1)
		r.stepsPerSec = make([]float64, nsec)
	}
	r.counts = r.counts[:nsec+1]
	r.starts = r.starts[:nsec+1]
	r.stepsPerSec = r.stepsPerSec[:nsec]
}

// sortByRadius orders a sector's point indices by (radius, index) —
// a total order, so every sorting algorithm yields the same result —
// using insertion sort: sectors are small (tens of points) and nearly
// sorted scan order makes it effectively linear.
func sortByRadius(seg []int32, radii []float64) {
	for i := 1; i < len(seg); i++ {
		v := seg[i]
		rv := radii[v]
		j := i - 1
		for j >= 0 && (radii[seg[j]] > rv || (radii[seg[j]] == rv && seg[j] > v)) {
			seg[j+1] = seg[j]
			j--
		}
		seg[j+1] = v
	}
}

// Process implements ros.Node.
func (r *RayGround) Process(in *ros.Message, _ time.Duration) ros.Result {
	pc, ok := in.Payload.(*msgs.PointCloud)
	if !ok {
		return ros.Result{}
	}
	ground, noGround := r.Split(pc.Cloud)

	n := float64(pc.Cloud.Len())
	w := work.Work{
		// Binning: atan2 + bucket append per point; walk: slope test.
		FPOps:     28 * n,
		IntOps:    10*n + 6*r.sortSteps,
		LoadOps:   12*n + 4*r.sortSteps,
		StoreOps:  6*n + 1.5*r.sortSteps,
		BranchOps: 6*n + 1.5*r.sortSteps,
		// The paper attributes ray_ground_filter ~20+ms means — it
		// re-traverses the full-resolution cloud several times.
		BytesTouched: 96 * n,
	}
	return ros.Result{
		Outputs: []ros.Output{
			{Topic: TopicPointsGround, Payload: &msgs.PointCloud{Cloud: ground}, FrameID: "ego"},
			{Topic: TopicPointsNoGround, Payload: &msgs.PointCloud{Cloud: noGround}, FrameID: "ego"},
		},
		Work: w,
	}
}
