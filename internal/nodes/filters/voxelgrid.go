// Package filters implements the point-cloud preprocessing nodes:
// voxel_grid_filter (downsampling ahead of NDT localization) and
// ray_ground_filter (ground/non-ground separation ahead of clustering
// and the points costmap).
package filters

import (
	"time"

	"repro/internal/msgs"
	"repro/internal/pointcloud"
	"repro/internal/ros"
	"repro/internal/work"
)

// Topic names owned by this package.
const (
	TopicPointsRaw      = "/points_raw"
	TopicFilteredPoints = "/filtered_points"
	TopicPointsGround   = "/points_ground"
	TopicPointsNoGround = "/points_no_ground"
)

// VoxelGridConfig parameterizes the downsampler.
type VoxelGridConfig struct {
	// Leaf is the voxel edge length, meters (Autoware default 2.0 for
	// the NDT input path).
	Leaf float64
	// QueueDepth for the input subscription.
	QueueDepth int
}

// DefaultVoxelGridConfig returns the stock configuration.
func DefaultVoxelGridConfig() VoxelGridConfig {
	return VoxelGridConfig{Leaf: 2.0, QueueDepth: 1}
}

// VoxelGrid is the voxel_grid_filter node.
type VoxelGrid struct {
	cfg VoxelGridConfig
}

// NewVoxelGrid builds the node.
func NewVoxelGrid(cfg VoxelGridConfig) *VoxelGrid {
	if cfg.Leaf <= 0 {
		panic("filters: voxel leaf must be positive")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1
	}
	return &VoxelGrid{cfg: cfg}
}

// Name implements ros.Node.
func (v *VoxelGrid) Name() string { return "voxel_grid_filter" }

// Subscribes implements ros.Node.
func (v *VoxelGrid) Subscribes() []ros.SubSpec {
	return []ros.SubSpec{{Topic: TopicPointsRaw, Depth: v.cfg.QueueDepth}}
}

// Process implements ros.Node.
func (v *VoxelGrid) Process(in *ros.Message, _ time.Duration) ros.Result {
	pc, ok := in.Payload.(*msgs.PointCloud)
	if !ok {
		return ros.Result{}
	}
	out, cells := pointcloud.VoxelDownsample(pc.Cloud, v.cfg.Leaf)

	n := float64(pc.Cloud.Len())
	c := float64(cells)
	w := work.Work{
		// Per input point: hash the voxel key, probe the map, accumulate.
		IntOps:    22 * n,
		FPOps:     6 * n,
		LoadOps:   9*n + 4*c,
		StoreOps:  4*n + 3*c,
		BranchOps: 5 * n,
		// Input cloud once, map churn, output cloud.
		BytesTouched: 32*n + 64*c,
	}
	return ros.Result{
		Outputs: []ros.Output{{Topic: TopicFilteredPoints, Payload: &msgs.PointCloud{Cloud: out}, FrameID: "ego"}},
		Work:    w,
	}
}
