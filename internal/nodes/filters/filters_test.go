package filters

import (
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/msgs"
	"repro/internal/pointcloud"
	"repro/internal/ros"
	"repro/internal/testenv"
)

func scanMsg(t *testing.T, at float64) (*ros.Message, *pointcloud.Cloud) {
	t.Helper()
	s := testenv.Scenario()
	snap := s.At(at)
	cloud := testenv.LiDAR().Scan(&snap)
	return &ros.Message{
		Topic:   TopicPointsRaw,
		Header:  ros.Header{Stamp: time.Duration(at * float64(time.Second))},
		Payload: &msgs.PointCloud{Cloud: cloud},
	}, cloud
}

func TestVoxelGridNode(t *testing.T) {
	n := NewVoxelGrid(DefaultVoxelGridConfig())
	if n.Name() != "voxel_grid_filter" {
		t.Error("name mismatch")
	}
	subs := n.Subscribes()
	if len(subs) != 1 || subs[0].Topic != TopicPointsRaw {
		t.Errorf("subs = %+v", subs)
	}
	msg, cloud := scanMsg(t, 12)
	res := n.Process(msg, 0)
	if len(res.Outputs) != 1 || res.Outputs[0].Topic != TopicFilteredPoints {
		t.Fatalf("outputs = %+v", res.Outputs)
	}
	out := res.Outputs[0].Payload.(*msgs.PointCloud).Cloud
	if out.Len() == 0 || out.Len() >= cloud.Len() {
		t.Errorf("filtered %d -> %d", cloud.Len(), out.Len())
	}
	if res.Work.CPUOps() <= 0 || res.Work.BytesTouched <= 0 {
		t.Error("work not accounted")
	}
	if len(res.Work.Kernels) != 0 {
		t.Error("voxel grid should be CPU-only")
	}
}

func TestVoxelGridIgnoresWrongPayload(t *testing.T) {
	n := NewVoxelGrid(DefaultVoxelGridConfig())
	res := n.Process(&ros.Message{Payload: "nonsense"}, 0)
	if len(res.Outputs) != 0 {
		t.Error("wrong payload should produce nothing")
	}
}

func TestVoxelGridPanicsOnBadLeaf(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewVoxelGrid(VoxelGridConfig{Leaf: 0})
}

func TestRayGroundSplitsScan(t *testing.T) {
	n := NewRayGround(DefaultRayGroundConfig())
	msg, cloud := scanMsg(t, 30)
	res := n.Process(msg, 0)
	if len(res.Outputs) != 2 {
		t.Fatalf("outputs = %d", len(res.Outputs))
	}
	var ground, noGround *pointcloud.Cloud
	for _, o := range res.Outputs {
		pc := o.Payload.(*msgs.PointCloud).Cloud
		switch o.Topic {
		case TopicPointsGround:
			ground = pc
		case TopicPointsNoGround:
			noGround = pc
		}
	}
	if ground == nil || noGround == nil {
		t.Fatal("missing output topics")
	}
	if ground.Len()+noGround.Len() != cloud.Len() {
		t.Errorf("split loses points: %d + %d != %d", ground.Len(), noGround.Len(), cloud.Len())
	}
	if ground.Len() == 0 || noGround.Len() == 0 {
		t.Errorf("degenerate split: ground=%d noGround=%d", ground.Len(), noGround.Len())
	}
	// Ground points sit low; check the medians separate.
	gHigh := 0
	for _, p := range ground.Points {
		if p.Pos.Z > 1.0 {
			gHigh++
		}
	}
	if gHigh > ground.Len()/10 {
		t.Errorf("too many high 'ground' points: %d/%d", gHigh, ground.Len())
	}
}

func TestRayGroundSyntheticWallAndFloor(t *testing.T) {
	n := NewRayGround(DefaultRayGroundConfig())
	cloud := pointcloud.New(64)
	// Floor points at z ~ 0 on a radial line; wall points vertical at x=10.
	for r := 2.0; r < 9; r += 0.5 {
		cloud.Append(pointcloud.Point{Pos: geom.V3(r, 0, 0.02)})
	}
	for z := 0.5; z < 2.5; z += 0.25 {
		cloud.Append(pointcloud.Point{Pos: geom.V3(10, 0, z)})
	}
	ground, noGround := n.Split(cloud)
	for _, p := range ground.Points {
		if p.Pos.Z > 0.4 {
			t.Errorf("wall point classified as ground: %v", p.Pos)
		}
	}
	if noGround.Len() < 7 {
		t.Errorf("wall points missing from no-ground set: %d", noGround.Len())
	}
	if ground.Len() < 10 {
		t.Errorf("floor points missing from ground set: %d", ground.Len())
	}
}

func TestRayGroundFollowsSlope(t *testing.T) {
	cfg := DefaultRayGroundConfig()
	cfg.MaxSlope = 0.2 // ~11 degrees allowed
	n := NewRayGround(cfg)
	cloud := pointcloud.New(32)
	// Gentle 5% ramp should remain ground.
	for r := 2.0; r < 20; r += 0.5 {
		cloud.Append(pointcloud.Point{Pos: geom.V3(r, 0, 0.05*r)})
	}
	ground, noGround := n.Split(cloud)
	if noGround.Len() > 2 {
		t.Errorf("ramp misclassified: %d points flagged non-ground", noGround.Len())
	}
	if ground.Len() < 30 {
		t.Errorf("ground size = %d", ground.Len())
	}
}

func TestRayGroundWorkScalesWithInput(t *testing.T) {
	n := NewRayGround(DefaultRayGroundConfig())
	msgBig, _ := scanMsg(t, 40)
	small := pointcloud.New(10)
	for i := 0; i < 10; i++ {
		small.Append(pointcloud.Point{Pos: geom.V3(float64(i+1), 0, 0)})
	}
	resBig := n.Process(msgBig, 0)
	resSmall := n.Process(&ros.Message{Payload: &msgs.PointCloud{Cloud: small}}, 0)
	if resBig.Work.CPUOps() <= resSmall.Work.CPUOps() {
		t.Error("work should grow with input size")
	}
}
