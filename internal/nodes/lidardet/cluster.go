// Package lidardet implements euclidean_cluster: LiDAR object detection
// by region-growing over a k-d tree of the non-ground cloud, producing
// clusters with centroids, hulls and bounding dimensions — objects with
// position and volume but no class, exactly the role the node plays in
// Autoware's detection layer.
package lidardet

import (
	"time"

	"repro/internal/geom"
	"repro/internal/msgs"
	"repro/internal/nodes/filters"
	"repro/internal/pointcloud"
	"repro/internal/ros"
	"repro/internal/work"
)

// TopicObjects is the cluster detection output.
const TopicObjects = "/detection/lidar_detector/objects"

// Config parameterizes the clusterer.
type Config struct {
	// Tolerance is the neighbor distance for region growing, meters.
	Tolerance float64
	// MinPoints, MaxPoints bound accepted cluster sizes.
	MinPoints int
	MaxPoints int
	// MaxRange discards points beyond this distance before clustering.
	MaxRange float64
	// GPUAssist models the CUDA nearest-neighbor offload Autoware's GPU
	// build uses; when true, part of the search cost is issued as GPU
	// kernels (Table V shows euclidean_cluster with a GPU share).
	GPUAssist  bool
	QueueDepth int
}

// DefaultConfig returns the stock configuration.
func DefaultConfig() Config {
	return Config{
		Tolerance:  0.8,
		MinPoints:  5,
		MaxPoints:  4000,
		MaxRange:   45,
		GPUAssist:  true,
		QueueDepth: 1,
	}
}

// Cluster is the euclidean_cluster node.
type Cluster struct {
	cfg Config
	// lastTraversal is the k-d tree traversal count of the last run,
	// used by the µarch trace generator.
	lastTraversal int

	// Per-frame scratch, reused across callbacks: the range-gated
	// positions, the k-d tree (rebuilt in place each frame), and the
	// region-growing working sets.
	pts      []geom.Vec3
	tree     *pointcloud.KDTree
	visited  []bool
	frontier []int32
	neigh    []int32
	member   []int32
	hullBuf  []geom.Vec2
}

// New builds the node.
func New(cfg Config) *Cluster {
	if cfg.Tolerance <= 0 || cfg.MinPoints < 1 {
		panic("lidardet: invalid config")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1
	}
	return &Cluster{cfg: cfg}
}

// Name implements ros.Node.
func (c *Cluster) Name() string { return "euclidean_cluster" }

// Subscribes implements ros.Node.
func (c *Cluster) Subscribes() []ros.SubSpec {
	return []ros.SubSpec{{Topic: filters.TopicPointsNoGround, Depth: c.cfg.QueueDepth}}
}

// LastTraversalSteps returns the k-d tree node visits of the last run.
func (c *Cluster) LastTraversalSteps() int { return c.lastTraversal }

// Extract runs clustering on a cloud (ego frame) and returns the
// detected objects; exported for tests and examples.
func (c *Cluster) Extract(cloud *pointcloud.Cloud) []msgs.DetectedObject {
	// Range gate into the reused position buffer.
	pts := c.pts[:0]
	maxR2 := c.cfg.MaxRange * c.cfg.MaxRange
	for _, p := range cloud.Points {
		if p.Pos.XY().NormSq() <= maxR2 {
			pts = append(pts, p.Pos)
		}
	}
	c.pts = pts
	if len(pts) == 0 {
		return nil
	}
	if c.tree == nil {
		c.tree = pointcloud.NewKDTree(pts)
	} else {
		c.tree.Rebuild(pts)
	}
	tree := c.tree
	tree.ResetCounters()
	if cap(c.visited) < len(pts) {
		c.visited = make([]bool, len(pts))
	}
	visited := c.visited[:len(pts)]
	for i := range visited {
		visited[i] = false
	}
	var out []msgs.DetectedObject
	id := 0
	for seed := range pts {
		if visited[seed] {
			continue
		}
		visited[seed] = true
		c.frontier = append(c.frontier[:0], int32(seed))
		member := c.member[:0]
		for len(c.frontier) > 0 {
			cur := c.frontier[len(c.frontier)-1]
			c.frontier = c.frontier[:len(c.frontier)-1]
			member = append(member, cur)
			if len(member) > c.cfg.MaxPoints {
				break
			}
			c.neigh = tree.Radius(pts[cur], c.cfg.Tolerance, c.neigh[:0])
			for _, nb := range c.neigh {
				if !visited[nb] {
					visited[nb] = true
					c.frontier = append(c.frontier, nb)
				}
			}
		}
		c.member = member
		if len(member) < c.cfg.MinPoints || len(member) > c.cfg.MaxPoints {
			continue
		}
		out = append(out, c.summarize(pts, member, &id))
	}
	c.lastTraversal = tree.TraversalSteps
	return out
}

// summarize converts one cluster's member indices into a DetectedObject.
func (c *Cluster) summarize(pts []geom.Vec3, member []int32, id *int) msgs.DetectedObject {
	var centroid geom.Vec3
	box := geom.EmptyAABB3()
	ground := c.hullBuf[:0]
	for _, idx := range member {
		p := pts[idx]
		centroid = centroid.Add(p)
		box.Expand(p)
		ground = append(ground, p.XY())
	}
	c.hullBuf = ground
	centroid = centroid.Scale(1 / float64(len(member)))
	// ConvexHull copies its input, so the reused buffer never escapes.
	hull := geom.ConvexHull(ground)
	size := box.Size()
	*id++
	return msgs.DetectedObject{
		ID:         *id,
		Label:      msgs.LabelUnknown,
		Score:      0.5,
		Pose:       geom.Pose{Pos: geom.V3(centroid.X, centroid.Y, box.Min.Z), Yaw: 0},
		Dim:        geom.V3(size.X, size.Y, size.Z),
		Hull:       hull,
		PointCount: len(member),
	}
}

// Process implements ros.Node.
func (c *Cluster) Process(in *ros.Message, _ time.Duration) ros.Result {
	pc, ok := in.Payload.(*msgs.PointCloud)
	if !ok {
		return ros.Result{}
	}
	objects := c.Extract(pc.Cloud)

	n := float64(pc.Cloud.Len())
	trav := float64(c.lastTraversal)
	nObj := float64(len(objects))
	w := work.Work{
		// Tree build: n log n; growth: traversal-dominated pointer
		// chasing — the source of this node's worst-in-table L1 miss
		// rates (paper Table VII: 4.66%/5.21% read/write misses).
		IntOps:    14*trav + 30*n,
		FPOps:     6*trav + 12*n,
		LoadOps:   16*trav + 22*n,
		StoreOps:  5*trav + 9*n,
		BranchOps: 7*trav + 6*n,
		// Scattered tree-node records; each visit is a potential miss.
		BytesTouched: 72*trav + 48*n + 2048*nObj,
	}
	if c.cfg.GPUAssist {
		// Modeled CUDA neighbor-search offload: the iterative region-
		// growing expansion re-scans pairwise distance tiles every pass
		// (~25 passes on typical scans), at the low sustained efficiency
		// of an irregular scatter/gather kernel.
		w.Kernels = append(w.Kernels, work.GPUKernel{
			Name:       "euclidean_cluster/nn_expand",
			FMAs:       n * n * 3 * 25,
			Bytes:      n*n*4 + 1<<20,
			Efficiency: 0.015,
		})
	}
	return ros.Result{
		Outputs: []ros.Output{{
			Topic:   TopicObjects,
			Payload: &msgs.DetectedObjectArray{Objects: objects},
			FrameID: "ego",
		}},
		Work: w,
	}
}
