package lidardet

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/mathx"
	"repro/internal/pointcloud"
)

// BenchmarkCluster measures steady-state Extract on a traffic-like
// scene: a ring of object blobs plus scattered clutter, reusing one
// node so the retained k-d tree and visit scratch amortize.
func BenchmarkCluster(b *testing.B) {
	rng := mathx.NewRNG(21)
	cloud := pointcloud.New(0)
	for i := 0; i < 12; i++ {
		ang := float64(i) * 0.5
		center := geom.V3(20*math.Cos(ang), 20*math.Sin(ang), 1)
		blob(cloud, rng, center, 400, 0.3)
	}
	for i := 0; i < 3000; i++ {
		cloud.Append(pointcloud.Point{Pos: geom.V3(
			rng.Float64()*80-40, rng.Float64()*80-40, rng.Float64()*2,
		)})
	}
	n := New(DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if objs := n.Extract(cloud); len(objs) == 0 {
			b.Fatal("no clusters")
		}
	}
}
