package lidardet

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/mathx"
	"repro/internal/msgs"
	"repro/internal/nodes/filters"
	"repro/internal/pointcloud"
	"repro/internal/ros"
	"repro/internal/testenv"
)

// blob appends a Gaussian cluster of n points around center.
func blob(c *pointcloud.Cloud, rng *mathx.RNG, center geom.Vec3, n int, spread float64) {
	for i := 0; i < n; i++ {
		c.Append(pointcloud.Point{Pos: geom.V3(
			center.X+rng.NormScaled(0, spread),
			center.Y+rng.NormScaled(0, spread),
			center.Z+rng.NormScaled(0, spread),
		)})
	}
}

func TestExtractSeparatesTwoBlobs(t *testing.T) {
	rng := mathx.NewRNG(7)
	cloud := pointcloud.New(100)
	blob(cloud, rng, geom.V3(5, 0, 1), 40, 0.15)
	blob(cloud, rng, geom.V3(12, 6, 1), 40, 0.15)
	n := New(DefaultConfig())
	objs := n.Extract(cloud)
	if len(objs) != 2 {
		t.Fatalf("clusters = %d, want 2", len(objs))
	}
	// Centroids near the blob centers.
	for _, o := range objs {
		d1 := o.Pose.XY().Dist(geom.V2(5, 0))
		d2 := o.Pose.XY().Dist(geom.V2(12, 6))
		if d1 > 0.5 && d2 > 0.5 {
			t.Errorf("cluster centroid %v matches neither blob", o.Pose.XY())
		}
		if o.PointCount < 30 {
			t.Errorf("cluster size = %d", o.PointCount)
		}
		if o.Label != msgs.LabelUnknown {
			t.Errorf("clusters must be unlabeled, got %s", o.Label)
		}
		if len(o.Hull) < 3 {
			t.Errorf("hull = %v", o.Hull)
		}
	}
}

func TestExtractRespectsMinPoints(t *testing.T) {
	rng := mathx.NewRNG(9)
	cloud := pointcloud.New(50)
	blob(cloud, rng, geom.V3(5, 0, 1), 40, 0.15)
	// Lone outlier points.
	cloud.Append(pointcloud.Point{Pos: geom.V3(20, 20, 1)})
	cloud.Append(pointcloud.Point{Pos: geom.V3(-15, 10, 1)})
	n := New(DefaultConfig())
	objs := n.Extract(cloud)
	if len(objs) != 1 {
		t.Errorf("clusters = %d, want 1 (outliers filtered)", len(objs))
	}
}

func TestExtractRangeGate(t *testing.T) {
	rng := mathx.NewRNG(11)
	cloud := pointcloud.New(50)
	blob(cloud, rng, geom.V3(100, 0, 1), 40, 0.15) // beyond MaxRange
	n := New(DefaultConfig())
	if objs := n.Extract(cloud); len(objs) != 0 {
		t.Errorf("far blob should be gated out, got %d clusters", len(objs))
	}
}

func TestExtractEmptyCloud(t *testing.T) {
	n := New(DefaultConfig())
	if objs := n.Extract(pointcloud.New(0)); objs != nil {
		t.Errorf("empty cloud should produce nil, got %v", objs)
	}
}

func TestExtractMergesWithinTolerance(t *testing.T) {
	// Two blobs closer than the tolerance merge into one cluster.
	rng := mathx.NewRNG(13)
	cloud := pointcloud.New(100)
	blob(cloud, rng, geom.V3(5, 0, 1), 30, 0.1)
	blob(cloud, rng, geom.V3(5.5, 0, 1), 30, 0.1)
	n := New(DefaultConfig())
	objs := n.Extract(cloud)
	if len(objs) != 1 {
		t.Errorf("adjacent blobs should merge: got %d", len(objs))
	}
}

func TestProcessOnRealScan(t *testing.T) {
	s := testenv.Scenario()
	snap := s.At(35)
	raw := testenv.LiDAR().Scan(&snap)
	rg := filters.NewRayGround(filters.DefaultRayGroundConfig())
	_, noGround := rg.Split(raw)

	n := New(DefaultConfig())
	res := n.Process(&ros.Message{Payload: &msgs.PointCloud{Cloud: noGround}}, 0)
	if len(res.Outputs) != 1 || res.Outputs[0].Topic != TopicObjects {
		t.Fatalf("outputs = %+v", res.Outputs)
	}
	arr := res.Outputs[0].Payload.(*msgs.DetectedObjectArray)
	if len(arr.Objects) == 0 {
		t.Error("no clusters on a real scan with buildings around")
	}
	if res.Work.CPUOps() <= 0 {
		t.Error("work not accounted")
	}
	if len(res.Work.Kernels) != 1 {
		t.Errorf("GPU-assist kernel missing: %+v", res.Work.Kernels)
	}
	if n.LastTraversalSteps() == 0 {
		t.Error("traversal counter not captured")
	}
}

func TestPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(Config{Tolerance: 0, MinPoints: 1})
}
