package prediction

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/msgs"
	"repro/internal/ros"
)

func TestRelayPassesThrough(t *testing.T) {
	r := NewRelay()
	if r.Name() != "ukf_track_relay" {
		t.Error("name mismatch")
	}
	arr := &msgs.DetectedObjectArray{Objects: []msgs.DetectedObject{{ID: 7}}}
	res := r.Process(&ros.Message{Payload: arr}, 0)
	if len(res.Outputs) != 1 || res.Outputs[0].Topic != TopicRelayedObjects {
		t.Fatalf("outputs = %+v", res.Outputs)
	}
	if res.Outputs[0].Payload.(*msgs.DetectedObjectArray).Objects[0].ID != 7 {
		t.Error("payload altered")
	}
	if res.Work.CPUOps() <= 0 {
		t.Error("relay work missing")
	}
}

func TestPredictStraightPath(t *testing.T) {
	p := New(DefaultConfig())
	o := msgs.DetectedObject{
		Pose:     geom.NewPose(0, 0, 0, 0),
		Velocity: geom.V2(10, 0),
	}
	path := p.PredictPath(o)
	if len(path) != 6 { // 3s / 0.5s
		t.Fatalf("path length = %d", len(path))
	}
	// Last point: 3 seconds at 10 m/s heading east.
	last := path[len(path)-1]
	if math.Abs(last.X-30) > 1e-6 || math.Abs(last.Y) > 1e-6 {
		t.Errorf("end of path = %v", last)
	}
}

func TestPredictTurningPath(t *testing.T) {
	p := New(DefaultConfig())
	o := msgs.DetectedObject{
		Pose:     geom.NewPose(0, 0, 0, 0),
		Velocity: geom.V2(10, 0),
		YawRate:  0.5,
	}
	path := p.PredictPath(o)
	if len(path) == 0 {
		t.Fatal("empty path")
	}
	// Turning left: final Y clearly positive and curling.
	if path[len(path)-1].Y < 5 {
		t.Errorf("turn path end = %v", path[len(path)-1])
	}
}

func TestPredictStationarySuppressed(t *testing.T) {
	p := New(DefaultConfig())
	o := msgs.DetectedObject{Pose: geom.NewPose(5, 5, 0, 0), Velocity: geom.V2(0.05, 0)}
	if path := p.PredictPath(o); path != nil {
		t.Errorf("stationary object should have no path, got %v", path)
	}
}

func TestPredictorProcess(t *testing.T) {
	p := New(DefaultConfig())
	arr := &msgs.DetectedObjectArray{Objects: []msgs.DetectedObject{
		{Pose: geom.NewPose(0, 0, 0, 0), Velocity: geom.V2(5, 0)},
		{Pose: geom.NewPose(10, 10, 0, 0), Velocity: geom.V2(0, 0)},
	}}
	res := p.Process(&ros.Message{Payload: arr}, 0)
	if len(res.Outputs) != 1 || res.Outputs[0].Topic != TopicPredictedObjects {
		t.Fatalf("outputs = %+v", res.Outputs)
	}
	out := res.Outputs[0].Payload.(*msgs.DetectedObjectArray).Objects
	if len(out[0].PredictedPath) == 0 {
		t.Error("moving object lost its path")
	}
	if len(out[1].PredictedPath) != 0 {
		t.Error("stationary object gained a path")
	}
	if out[0].PathDt != 0.5 {
		t.Errorf("path dt = %v", out[0].PathDt)
	}
	// Input array untouched (predictor copies).
	if len(arr.Objects[0].PredictedPath) != 0 {
		t.Error("input mutated")
	}
}

func TestPredictorPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(Config{Horizon: -1, Dt: 0.5})
}
