// Package prediction implements naive_motion_predict: constant
// velocity/turn-rate extrapolation of tracked objects into short-term
// future paths, plus the ukf_track_relay pass-through node that sits
// between the tracker and the predictor in the paper's computation
// paths (Table IV).
package prediction

import (
	"time"

	"repro/internal/geom"
	"repro/internal/msgs"
	"repro/internal/nodes/tracking"
	"repro/internal/ros"
	"repro/internal/work"
)

// Topic names owned by this package.
const (
	TopicRelayedObjects   = "/detection/objects"
	TopicPredictedObjects = "/prediction/motion_predictor/objects"
)

// Relay is ukf_track_relay: it republishes tracker output on the
// canonical /detection/objects topic.
type Relay struct{}

// NewRelay builds the relay node.
func NewRelay() *Relay { return &Relay{} }

// Name implements ros.Node.
func (r *Relay) Name() string { return "ukf_track_relay" }

// Subscribes implements ros.Node.
func (r *Relay) Subscribes() []ros.SubSpec {
	return []ros.SubSpec{{Topic: tracking.TopicObjects, Depth: 2}}
}

// Process implements ros.Node.
func (r *Relay) Process(in *ros.Message, _ time.Duration) ros.Result {
	arr, ok := in.Payload.(*msgs.DetectedObjectArray)
	if !ok {
		return ros.Result{}
	}
	n := float64(len(arr.Objects))
	return ros.Result{
		Outputs: []ros.Output{{Topic: TopicRelayedObjects, Payload: arr, FrameID: "map"}},
		Work: work.Work{
			IntOps: 150 + 8*n, LoadOps: 60 + 6*n, StoreOps: 40 + 6*n,
			BranchOps: 20 + n, BytesTouched: 512 + 128*n,
		},
	}
}

// Config parameterizes the predictor.
type Config struct {
	// Horizon is how far ahead to extrapolate, seconds.
	Horizon float64
	// Dt is the sample interval of the predicted path, seconds.
	Dt float64
	// MinSpeed suppresses paths for near-stationary objects.
	MinSpeed   float64
	QueueDepth int
}

// DefaultConfig returns the stock configuration (3 s at 0.5 s steps,
// matching Autoware's default prediction window).
func DefaultConfig() Config {
	return Config{Horizon: 3.0, Dt: 0.5, MinSpeed: 0.3, QueueDepth: 2}
}

// Predictor is the naive_motion_predict node.
type Predictor struct {
	cfg Config
}

// New builds the node.
func New(cfg Config) *Predictor {
	if cfg.Horizon <= 0 || cfg.Dt <= 0 {
		panic("prediction: invalid config")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1
	}
	return &Predictor{cfg: cfg}
}

// Name implements ros.Node.
func (p *Predictor) Name() string { return "naive_motion_predict" }

// Subscribes implements ros.Node.
func (p *Predictor) Subscribes() []ros.SubSpec {
	return []ros.SubSpec{{Topic: TopicRelayedObjects, Depth: p.cfg.QueueDepth}}
}

// PredictPath extrapolates one object; exported for tests.
func (p *Predictor) PredictPath(o msgs.DetectedObject) []geom.Vec2 {
	speed := o.Velocity.Norm()
	if speed < p.cfg.MinSpeed {
		return nil
	}
	steps := int(p.cfg.Horizon/p.cfg.Dt + 0.5)
	path := make([]geom.Vec2, 0, steps)
	pose := geom.Pose{Pos: o.Pose.Pos, Yaw: o.Pose.Yaw}
	tw := geom.Twist{Linear: speed, Angular: o.YawRate}
	for s := 0; s < steps; s++ {
		pose = tw.Integrate(pose, p.cfg.Dt)
		path = append(path, pose.XY())
	}
	return path
}

// Process implements ros.Node.
func (p *Predictor) Process(in *ros.Message, _ time.Duration) ros.Result {
	arr, ok := in.Payload.(*msgs.DetectedObjectArray)
	if !ok {
		return ros.Result{}
	}
	out := make([]msgs.DetectedObject, len(arr.Objects))
	totalSteps := 0
	for i, o := range arr.Objects {
		o.PredictedPath = p.PredictPath(o)
		o.PathDt = p.cfg.Dt
		totalSteps += len(o.PredictedPath)
		out[i] = o
	}
	n := float64(len(arr.Objects))
	st := float64(totalSteps)
	return ros.Result{
		Outputs: []ros.Output{{
			Topic:   TopicPredictedObjects,
			Payload: &msgs.DetectedObjectArray{Objects: out},
			FrameID: "map",
		}},
		Work: work.Work{
			FPOps:   n*40 + st*30,
			IntOps:  n*25 + st*8,
			LoadOps: n*30 + st*10, StoreOps: n*20 + st*8,
			BranchOps:    n*10 + st*3,
			BytesTouched: n*256 + st*24 + 1024,
		},
	}
}
