package fusion

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/msgs"
	"repro/internal/nodes/lidardet"
	"repro/internal/nodes/visiondet"
	"repro/internal/ros"
)

// clusterAhead builds a DetectedObjectArray with one ego-frame cluster.
func clusterAhead(dist float64) *msgs.DetectedObjectArray {
	return &msgs.DetectedObjectArray{Objects: []msgs.DetectedObject{{
		ID:    1,
		Label: msgs.LabelUnknown,
		Score: 0.5,
		Pose:  geom.NewPose(dist, 0, 0.1, 0),
		Dim:   geom.V3(4.4, 1.8, 1.4),
		Hull: geom.Polygon{
			geom.V2(dist-2, -1), geom.V2(dist+2, -1),
			geom.V2(dist+2, 1), geom.V2(dist-2, 1),
		},
		PointCount: 80,
	}}}
}

func TestFusionLabelsClusterFromVision(t *testing.T) {
	n := New(DefaultConfig())
	// Vision detection whose rect overlaps the projected cluster: get
	// the projection from the node itself for a consistent rect.
	rect, ok := n.projectCluster(clusterAhead(12).Objects[0])
	if !ok {
		t.Fatal("cluster ahead should project into the image")
	}
	vision := &msgs.DetectedObjectArray{Objects: []msgs.DetectedObject{{
		ID: 1, Label: msgs.LabelCar, Score: 0.9,
		ImageRect: rect, HasImageRect: true,
	}}}
	n.Process(&ros.Message{Topic: visiondet.TopicObjects, Payload: vision}, 0)

	res := n.Process(&ros.Message{Topic: lidardet.TopicObjects, Payload: clusterAhead(12)}, 0)
	if len(res.Outputs) != 1 || res.Outputs[0].Topic != TopicObjects {
		t.Fatalf("outputs = %+v", res.Outputs)
	}
	fused := res.Outputs[0].Payload.(*msgs.DetectedObjectArray)
	if len(fused.Objects) != 1 {
		t.Fatalf("fused = %+v", fused.Objects)
	}
	o := fused.Objects[0]
	if o.Label != msgs.LabelCar {
		t.Errorf("label = %s, want car", o.Label)
	}
	if o.Score < 0.9 {
		t.Errorf("score = %v", o.Score)
	}
	if !o.HasImageRect {
		t.Error("fused object should carry the image rect")
	}
}

func TestFusionKeepsUnmatchedClusterUnlabeled(t *testing.T) {
	n := New(DefaultConfig())
	// Vision box far from the cluster's projection.
	vision := &msgs.DetectedObjectArray{Objects: []msgs.DetectedObject{{
		ID: 1, Label: msgs.LabelPedestrian, Score: 0.9,
		ImageRect: geom.NewRect(geom.V2(0, 0), geom.V2(5, 5)), HasImageRect: true,
	}}}
	n.Process(&ros.Message{Topic: visiondet.TopicObjects, Payload: vision}, 0)
	res := n.Process(&ros.Message{Topic: lidardet.TopicObjects, Payload: clusterAhead(12)}, 0)
	fused := res.Outputs[0].Payload.(*msgs.DetectedObjectArray)
	if fused.Objects[0].Label != msgs.LabelUnknown {
		t.Errorf("label = %s, want unknown", fused.Objects[0].Label)
	}
}

func TestFusionTransformsToMapFrame(t *testing.T) {
	n := New(DefaultConfig())
	egoPose := geom.NewPose(100, 50, 0, 1.5707963267948966) // facing +Y
	n.Process(&ros.Message{
		Topic:   "/current_pose",
		Payload: &msgs.PoseStamped{Pose: egoPose},
	}, 0)
	res := n.Process(&ros.Message{Topic: lidardet.TopicObjects, Payload: clusterAhead(10)}, 0)
	if res.Outputs[0].FrameID != "map" {
		t.Errorf("frame = %s", res.Outputs[0].FrameID)
	}
	o := res.Outputs[0].Payload.(*msgs.DetectedObjectArray).Objects[0]
	// 10m ahead of an ego facing +Y at (100,50) => (100, 60).
	if o.Pose.XY().Dist(geom.V2(100, 60)) > 1e-6 {
		t.Errorf("map-frame pose = %v", o.Pose.XY())
	}
	// Hull transformed too.
	if len(o.Hull) != 4 {
		t.Fatalf("hull = %v", o.Hull)
	}
	if !o.Hull.Contains(geom.V2(100, 60)) {
		t.Errorf("transformed hull should contain object center, got %v", o.Hull)
	}
}

func TestFusionWithoutPoseStaysEgoFrame(t *testing.T) {
	n := New(DefaultConfig())
	res := n.Process(&ros.Message{Topic: lidardet.TopicObjects, Payload: clusterAhead(10)}, 0)
	if res.Outputs[0].FrameID != "ego" {
		t.Errorf("frame = %s", res.Outputs[0].FrameID)
	}
}

func TestFusionLineageIncludesVision(t *testing.T) {
	n := New(DefaultConfig())
	visionMsg := &ros.Message{
		Topic:   visiondet.TopicObjects,
		Header:  ros.Header{Origins: []ros.Origin{{Topic: "/image_raw", Stamp: 123}}},
		Payload: &msgs.DetectedObjectArray{},
	}
	n.Process(visionMsg, 0)
	res := n.Process(&ros.Message{Topic: lidardet.TopicObjects, Payload: clusterAhead(10)}, 0)
	if len(res.FusedInputs) != 1 || res.FusedInputs[0] != visionMsg {
		t.Error("fusion should report the cached vision message for lineage merging")
	}
}

func TestProjectClusterBehindCamera(t *testing.T) {
	n := New(DefaultConfig())
	obj := clusterAhead(-15).Objects[0]
	if _, ok := n.projectCluster(obj); ok {
		t.Error("cluster behind the camera should not project")
	}
}

func TestFusionPanicsOnBadCalibration(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(Config{})
}
