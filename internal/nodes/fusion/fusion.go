// Package fusion implements range_vision_fusion: projecting LiDAR
// clusters into the camera image, associating them with vision
// detections by rectangle overlap, and emitting labeled objects in the
// map frame — the step that gives LiDAR volumes their semantics and
// vision boxes their 3D placement.
package fusion

import (
	"math"
	"time"

	"repro/internal/geom"
	"repro/internal/msgs"
	"repro/internal/nodes/lidardet"
	"repro/internal/nodes/localization"
	"repro/internal/nodes/visiondet"
	"repro/internal/ros"
	"repro/internal/sensor"
	"repro/internal/work"
)

// TopicObjects is the fused detection output.
const TopicObjects = "/detection/fusion_tools/objects"

// Config parameterizes the fusion node.
type Config struct {
	// Camera is the calibration the projection uses (must match the
	// sensing rig).
	Camera sensor.CameraConfig
	// MinIoU is the association threshold between a projected cluster
	// rectangle and a vision rectangle.
	MinIoU     float64
	QueueDepth int
}

// DefaultConfig returns the stock configuration.
func DefaultConfig() Config {
	return Config{Camera: sensor.DefaultCameraConfig(), MinIoU: 0.3, QueueDepth: 2}
}

// Node is the range_vision_fusion node. It is triggered by LiDAR
// cluster arrays and fuses against the latest cached vision detections
// and localization pose.
type Node struct {
	cfg Config
	fx  float64
	cx  float64
	cy  float64

	lastVision    *ros.Message
	lastPose      *ros.Message
	visionObjects []msgs.DetectedObject
	egoPose       geom.Pose
	havePose      bool
}

// New builds the node.
func New(cfg Config) *Node {
	if cfg.Camera.Width <= 0 || cfg.Camera.HFovDeg <= 0 {
		panic("fusion: invalid camera calibration")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1
	}
	fx := float64(cfg.Camera.Width) / 2 / math.Tan(cfg.Camera.HFovDeg/2*math.Pi/180)
	return &Node{
		cfg: cfg,
		fx:  fx,
		cx:  float64(cfg.Camera.Width) / 2,
		cy:  float64(cfg.Camera.Height) / 2,
	}
}

// Name implements ros.Node.
func (n *Node) Name() string { return "range_vision_fusion" }

// Subscribes implements ros.Node.
func (n *Node) Subscribes() []ros.SubSpec {
	return []ros.SubSpec{
		{Topic: lidardet.TopicObjects, Depth: n.cfg.QueueDepth},
		{Topic: visiondet.TopicObjects, Depth: n.cfg.QueueDepth},
		{Topic: localization.TopicCurrentPose, Depth: 1},
	}
}

// Process implements ros.Node.
func (n *Node) Process(in *ros.Message, _ time.Duration) ros.Result {
	switch payload := in.Payload.(type) {
	case *msgs.PoseStamped:
		n.egoPose = payload.Pose
		n.havePose = true
		// Cache the input past this callback: retain our own reference
		// before the executor releases its (pooled envelopes recycle
		// once unreferenced), dropping the reference on the displaced
		// previous cache entry.
		in.Retain()
		if n.lastPose != nil {
			n.lastPose.Release()
		}
		n.lastPose = in
		return ros.Result{Work: work.Work{IntOps: 120, LoadOps: 60, StoreOps: 30, BranchOps: 20, BytesTouched: 256}}
	case *msgs.DetectedObjectArray:
		if in.Topic == visiondet.TopicObjects {
			n.visionObjects = payload.Objects
			in.Retain()
			if n.lastVision != nil {
				n.lastVision.Release()
			}
			n.lastVision = in
			return ros.Result{Work: work.Work{
				IntOps: 300, LoadOps: 150, StoreOps: 80, BranchOps: 50,
				BytesTouched: float64(1024 + 256*len(payload.Objects)),
			}}
		}
		return n.fuse(in, payload)
	default:
		return ros.Result{}
	}
}

// projectCluster maps an ego-frame cluster into an image rectangle;
// ok is false when the cluster is outside the camera frustum.
func (n *Node) projectCluster(obj msgs.DetectedObject) (geom.Rect, bool) {
	camPose := n.cfg.Camera.Mount // ego -> camera offset
	// Project the cluster's bounding box corners.
	half := obj.Dim.Scale(0.5)
	base := obj.Pose.Pos
	rect := geom.Rect{Min: geom.V2(math.Inf(1), math.Inf(1)), Max: geom.V2(math.Inf(-1), math.Inf(-1))}
	any := false
	for _, dx := range []float64{-half.X, half.X} {
		for _, dy := range []float64{-half.Y, half.Y} {
			for _, dz := range []float64{0, obj.Dim.Z} {
				p := geom.V3(base.X+dx, base.Y+dy, base.Z+dz)
				local := camPose.Inverse(p)
				if local.X < 0.5 {
					continue
				}
				any = true
				u := n.cx - n.fx*local.Y/local.X
				v := n.cy - n.fx*local.Z/local.X
				rect.Expand(geom.V2(u, v))
			}
		}
	}
	if !any {
		return geom.Rect{}, false
	}
	bounds := geom.NewRect(geom.V2(0, 0), geom.V2(float64(n.cfg.Camera.Width-1), float64(n.cfg.Camera.Height-1)))
	rect = rect.Intersect(bounds)
	if rect.Area() < 4 {
		return geom.Rect{}, false
	}
	return rect, true
}

func (n *Node) fuse(in *ros.Message, clusters *msgs.DetectedObjectArray) ros.Result {
	fused := make([]msgs.DetectedObject, 0, len(clusters.Objects))
	associations := 0
	for _, obj := range clusters.Objects {
		rect, visible := n.projectCluster(obj)
		if visible {
			// Greedy best-IoU association against cached vision boxes.
			bestIoU, bestIdx := n.cfg.MinIoU, -1
			for vi, v := range n.visionObjects {
				if !v.HasImageRect {
					continue
				}
				associations++
				if iou := rect.IoU(v.ImageRect); iou > bestIoU {
					bestIoU, bestIdx = iou, vi
				}
			}
			if bestIdx >= 0 {
				v := n.visionObjects[bestIdx]
				obj.Label = v.Label
				obj.Score = math.Max(obj.Score, v.Score)
				obj.ImageRect = v.ImageRect
				obj.HasImageRect = true
			}
		}
		// Lift into the map frame when localized; otherwise keep ego
		// frame (FrameID communicates which).
		if n.havePose {
			obj.Pose = n.egoPose.Compose(obj.Pose)
			hull := make(geom.Polygon, len(obj.Hull))
			for i, h := range obj.Hull {
				w := n.egoPose.Transform(geom.V3(h.X, h.Y, 0))
				hull[i] = w.XY()
			}
			obj.Hull = hull
		}
		fused = append(fused, obj)
	}

	frame := "ego"
	if n.havePose {
		frame = "map"
	}
	nc := float64(len(clusters.Objects))
	na := float64(associations)
	w := work.Work{
		FPOps:        nc*220 + na*30,
		IntOps:       nc*60 + na*18,
		LoadOps:      nc*90 + na*14,
		StoreOps:     nc * 45,
		BranchOps:    nc*25 + na*6,
		BytesTouched: nc*720 + na*64 + 4096,
	}
	return ros.Result{
		Outputs: []ros.Output{{
			Topic:   TopicObjects,
			Payload: &msgs.DetectedObjectArray{Objects: fused},
			FrameID: frame,
		}},
		Work:        w,
		FusedInputs: []*ros.Message{n.lastVision},
	}
}
