// Package planning implements the actuation-layer planners: the
// op_global_planner (A* route search over the lane network) and the
// op_local_planner (rollout generation and costmap-based selection).
// The paper could not stimulate these nodes for lack of HD map lane
// annotations (Sec. III-C); our synthetic map has them, so the nodes
// are fully functional, and — like the paper — the characterization
// harness focuses on the perception stack and leaves them optional.
package planning

import (
	"container/heap"
	"fmt"
	"math"
	"time"

	"repro/internal/geom"
	"repro/internal/msgs"
	"repro/internal/nodes/costmap"
	"repro/internal/nodes/localization"
	"repro/internal/ros"
	"repro/internal/work"
	"repro/internal/world"
)

// Topic names owned by this package.
const (
	TopicGlobalRoute = "/lane_waypoints_array"
	TopicLocalPath   = "/final_waypoints"
	TopicGoal        = "/move_base_simple/goal"
)

// GlobalPlanner is op_global_planner: A* over the lane graph.
type GlobalPlanner struct {
	lanes *world.LaneNetwork
	// Goal is set via the goal topic; the route replans on pose updates.
	goal     geom.Vec2
	haveGoal bool
	// Sampling step for densifying edges into waypoints.
	step float64
}

// NewGlobal builds the planner over a lane network.
func NewGlobal(lanes *world.LaneNetwork) *GlobalPlanner {
	if lanes == nil {
		panic("planning: nil lane network")
	}
	return &GlobalPlanner{lanes: lanes, step: 2.0}
}

// Name implements ros.Node.
func (g *GlobalPlanner) Name() string { return "op_global_planner" }

// Subscribes implements ros.Node.
func (g *GlobalPlanner) Subscribes() []ros.SubSpec {
	return []ros.SubSpec{
		{Topic: TopicGoal, Depth: 1},
		{Topic: localization.TopicCurrentPose, Depth: 1},
	}
}

// Plan computes a waypoint route from start to goal; exported for
// direct use. It returns an error when no route exists.
func (g *GlobalPlanner) Plan(start, goal geom.Vec2) (msgs.Lane, int, error) {
	src := g.lanes.NearestNode(start)
	dst := g.lanes.NearestNode(goal)
	if src < 0 || dst < 0 {
		return msgs.Lane{}, 0, fmt.Errorf("planning: no usable lane nodes")
	}
	type qitem struct {
		node int
		f    float64
	}
	gScore := make(map[int]float64, len(g.lanes.Nodes))
	prev := make(map[int]int)
	pq := &pqueue{}
	heap.Init(pq)
	gScore[src] = 0
	heap.Push(pq, pqEntry{node: src, f: g.lanes.Nodes[src].Pos.Dist(g.lanes.Nodes[dst].Pos)})
	expanded := 0
	found := false
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(pqEntry)
		if cur.node == dst {
			found = true
			break
		}
		expanded++
		for _, ei := range g.lanes.Out(cur.node) {
			e := g.lanes.Edges[ei]
			tentative := gScore[cur.node] + e.Length
			if old, ok := gScore[e.To]; !ok || tentative < old {
				gScore[e.To] = tentative
				prev[e.To] = cur.node
				h := g.lanes.Nodes[e.To].Pos.Dist(g.lanes.Nodes[dst].Pos)
				heap.Push(pq, pqEntry{node: e.To, f: tentative + h})
			}
		}
	}
	if !found {
		return msgs.Lane{}, expanded, fmt.Errorf("planning: no route from %v to %v", start, goal)
	}
	// Reconstruct and densify.
	var chain []int
	for n := dst; ; {
		chain = append([]int{n}, chain...)
		if n == src {
			break
		}
		p, ok := prev[n]
		if !ok {
			return msgs.Lane{}, expanded, fmt.Errorf("planning: broken back-pointer chain")
		}
		n = p
	}
	lane := msgs.Lane{}
	for i := 0; i+1 < len(chain); i++ {
		a := g.lanes.Nodes[chain[i]].Pos
		b := g.lanes.Nodes[chain[i+1]].Pos
		d := a.Dist(b)
		yaw := b.Sub(a).Angle()
		steps := int(d/g.step) + 1
		for s := 0; s < steps; s++ {
			p := a.Lerp(b, float64(s)/float64(steps))
			lane.Waypoints = append(lane.Waypoints, msgs.Waypoint{Pos: p, Yaw: yaw, Speed: 8})
		}
	}
	if len(chain) > 0 {
		last := g.lanes.Nodes[chain[len(chain)-1]].Pos
		yaw := 0.0
		if n := len(lane.Waypoints); n > 0 {
			yaw = lane.Waypoints[n-1].Yaw
		}
		lane.Waypoints = append(lane.Waypoints, msgs.Waypoint{Pos: last, Yaw: yaw, Speed: 8})
	}
	lane.Cost = gScore[dst]
	return lane, expanded, nil
}

// Process implements ros.Node.
func (g *GlobalPlanner) Process(in *ros.Message, _ time.Duration) ros.Result {
	switch payload := in.Payload.(type) {
	case *msgs.PoseStamped:
		if in.Topic == TopicGoal {
			g.goal = payload.Pose.XY()
			g.haveGoal = true
			return ros.Result{Work: work.Work{IntOps: 100, LoadOps: 40, StoreOps: 20, BranchOps: 15, BytesTouched: 128}}
		}
		if !g.haveGoal {
			return ros.Result{}
		}
		lane, expanded, err := g.Plan(payload.Pose.XY(), g.goal)
		ex := float64(expanded)
		w := work.Work{
			FPOps:        ex * 60,
			IntOps:       ex * 110,
			LoadOps:      ex * 70,
			StoreOps:     ex * 30,
			BranchOps:    ex * 35,
			BytesTouched: ex*160 + 4096,
		}
		if err != nil {
			return ros.Result{Work: w}
		}
		return ros.Result{
			Outputs: []ros.Output{{
				Topic:   TopicGlobalRoute,
				Payload: &msgs.LaneArray{Lanes: []msgs.Lane{lane}, Best: 0},
				FrameID: "map",
			}},
			Work: w,
		}
	default:
		return ros.Result{}
	}
}

// pqueue is a min-heap on f-score for A*.
type pqEntry struct {
	node int
	f    float64
}
type pqueue []pqEntry

func (p pqueue) Len() int           { return len(p) }
func (p pqueue) Less(i, j int) bool { return p[i].f < p[j].f }
func (p pqueue) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }
func (p *pqueue) Push(x any)        { *p = append(*p, x.(pqEntry)) }
func (p *pqueue) Pop() any          { old := *p; n := len(old); it := old[n-1]; *p = old[:n-1]; return it }

// LocalPlanner is op_local_planner: it generates laterally offset
// rollouts along the global route and selects the cheapest one against
// the objects costmap.
type LocalPlanner struct {
	// Rollouts is the number of lateral candidates (odd; center is 0).
	Rollouts int
	// LateralSpacing between rollouts, meters.
	LateralSpacing float64
	// HorizonWaypoints limits how far ahead each rollout extends.
	HorizonWaypoints int

	route    *msgs.Lane
	grid     *msgs.OccupancyGrid
	egoPose  geom.Pose
	havePose bool
}

// NewLocal builds the local planner.
func NewLocal() *LocalPlanner {
	return &LocalPlanner{Rollouts: 7, LateralSpacing: 0.8, HorizonWaypoints: 30}
}

// Name implements ros.Node.
func (l *LocalPlanner) Name() string { return "op_local_planner" }

// Subscribes implements ros.Node.
func (l *LocalPlanner) Subscribes() []ros.SubSpec {
	return []ros.SubSpec{
		{Topic: TopicGlobalRoute, Depth: 1},
		{Topic: costmap.TopicObjectsCostmap, Depth: 1},
		{Topic: localization.TopicCurrentPose, Depth: 1},
	}
}

// Process implements ros.Node.
func (l *LocalPlanner) Process(in *ros.Message, _ time.Duration) ros.Result {
	switch payload := in.Payload.(type) {
	case *msgs.LaneArray:
		if payload.Best >= 0 && payload.Best < len(payload.Lanes) {
			l.route = &payload.Lanes[payload.Best]
		}
		return ros.Result{Work: work.Work{IntOps: 200, LoadOps: 100, StoreOps: 50, BranchOps: 30, BytesTouched: 1024}}
	case *msgs.PoseStamped:
		l.egoPose = payload.Pose
		l.havePose = true
		return ros.Result{Work: work.Work{IntOps: 80, LoadOps: 40, StoreOps: 20, BranchOps: 12, BytesTouched: 128}}
	case *msgs.OccupancyGrid:
		l.grid = payload
		if l.route == nil || !l.havePose {
			return ros.Result{Work: work.Work{IntOps: 300, LoadOps: 150, BranchOps: 60, BytesTouched: 2048}}
		}
		return l.plan()
	default:
		return ros.Result{}
	}
}

func (l *LocalPlanner) plan() ros.Result {
	// Find the closest route waypoint ahead of the ego.
	best, bestD := -1, math.Inf(1)
	for i, wp := range l.route.Waypoints {
		if d := wp.Pos.DistSq(l.egoPose.XY()); d < bestD {
			best, bestD = i, d
		}
	}
	lanes := make([]msgs.Lane, 0, l.Rollouts)
	evaluated := 0
	bestLane, bestCost := -1, math.Inf(1)
	for r := 0; r < l.Rollouts; r++ {
		offset := (float64(r) - float64(l.Rollouts-1)/2) * l.LateralSpacing
		lane := msgs.Lane{}
		cost := math.Abs(offset) * 2 // prefer the centerline
		blocked := false
		for i := best; i < len(l.route.Waypoints) && i < best+l.HorizonWaypoints; i++ {
			wp := l.route.Waypoints[i]
			lateral := geom.V2(1, 0).Rotate(wp.Yaw).Perp().Scale(offset)
			p := wp.Pos.Add(lateral)
			lane.Waypoints = append(lane.Waypoints, msgs.Waypoint{Pos: p, Yaw: wp.Yaw, Speed: wp.Speed})
			x, y := l.grid.CellOf(p)
			if x < 0 || y < 0 || x >= l.grid.Width || y >= l.grid.Height {
				// Beyond costmap coverage: stop extending, score what
				// we have (unknown is not the same as blocked here).
				break
			}
			c := l.grid.At(x, y)
			evaluated++
			if c >= 100 {
				blocked = true
				break
			}
			cost += float64(c) * 0.1
		}
		if blocked {
			cost = math.Inf(1)
		}
		lane.Cost = cost
		lanes = append(lanes, lane)
		if cost < bestCost {
			bestCost, bestLane = cost, r
		}
	}
	if math.IsInf(bestCost, 1) {
		bestLane = -1 // all rollouts blocked
	}
	ev := float64(evaluated)
	return ros.Result{
		Outputs: []ros.Output{{
			Topic:   TopicLocalPath,
			Payload: &msgs.LaneArray{Lanes: lanes, Best: bestLane},
			FrameID: "map",
		}},
		Work: work.Work{
			FPOps:        ev * 35,
			IntOps:       ev * 25,
			LoadOps:      ev * 20,
			StoreOps:     ev * 10,
			BranchOps:    ev * 8,
			BytesTouched: ev*48 + 8192,
		},
	}
}
