package planning

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/msgs"
	"repro/internal/nodes/costmap"
	"repro/internal/ros"
	"repro/internal/testenv"
	"repro/internal/world"
)

func lanes(t *testing.T) *world.LaneNetwork {
	t.Helper()
	return testenv.Scenario().Lanes
}

func TestGlobalPlanFindsRoute(t *testing.T) {
	g := NewGlobal(lanes(t))
	start := geom.V2(100, 100)
	goal := geom.V2(500, 300)
	lane, expanded, err := g.Plan(start, goal)
	if err != nil {
		t.Fatal(err)
	}
	if expanded == 0 {
		t.Error("A* expanded nothing")
	}
	if len(lane.Waypoints) < 10 {
		t.Fatalf("waypoints = %d", len(lane.Waypoints))
	}
	// Route starts near start and ends near goal.
	first := lane.Waypoints[0].Pos
	last := lane.Waypoints[len(lane.Waypoints)-1].Pos
	if first.Dist(start) > 80 {
		t.Errorf("route start %v far from %v", first, start)
	}
	if last.Dist(goal) > 80 {
		t.Errorf("route end %v far from %v", last, goal)
	}
	// Cost is at least the Manhattan-ish shortest distance.
	if lane.Cost < 500-80 {
		t.Errorf("route cost = %v suspiciously small", lane.Cost)
	}
	// Waypoints are contiguous (no jumps beyond the densify step + edge).
	for i := 1; i < len(lane.Waypoints); i++ {
		if lane.Waypoints[i].Pos.Dist(lane.Waypoints[i-1].Pos) > 25 {
			t.Fatalf("gap at waypoint %d", i)
		}
	}
}

func TestGlobalPlanOptimalOnGrid(t *testing.T) {
	g := NewGlobal(lanes(t))
	// Straight line along one street: cost equals the street distance.
	lane, _, err := g.Plan(geom.V2(100, 100), geom.V2(400, 100))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lane.Cost-300) > 1 {
		t.Errorf("straight route cost = %v, want 300", lane.Cost)
	}
}

func TestGlobalPlannerProcessFlow(t *testing.T) {
	g := NewGlobal(lanes(t))
	// Pose before goal: nothing.
	res := g.Process(&ros.Message{
		Topic:   "/current_pose",
		Payload: &msgs.PoseStamped{Pose: geom.NewPose(100, 100, 0, 0)},
	}, 0)
	if len(res.Outputs) != 0 {
		t.Error("should not plan without a goal")
	}
	// Set goal.
	g.Process(&ros.Message{
		Topic:   TopicGoal,
		Payload: &msgs.PoseStamped{Pose: geom.NewPose(500, 500, 0, 0)},
	}, 0)
	// Pose triggers planning.
	res = g.Process(&ros.Message{
		Topic:   "/current_pose",
		Payload: &msgs.PoseStamped{Pose: geom.NewPose(100, 100, 0, 0)},
	}, 0)
	if len(res.Outputs) != 1 || res.Outputs[0].Topic != TopicGlobalRoute {
		t.Fatalf("outputs = %+v", res.Outputs)
	}
	arr := res.Outputs[0].Payload.(*msgs.LaneArray)
	if arr.Best != 0 || len(arr.Lanes) != 1 {
		t.Errorf("lane array = %+v", arr)
	}
}

func TestLocalPlannerSelectsCenterWhenFree(t *testing.T) {
	l := NewLocal()
	// Straight route east.
	route := msgs.Lane{}
	for x := 0.0; x < 60; x += 2 {
		route.Waypoints = append(route.Waypoints, msgs.Waypoint{Pos: geom.V2(x, 0), Yaw: 0, Speed: 8})
	}
	l.Process(&ros.Message{Payload: &msgs.LaneArray{Lanes: []msgs.Lane{route}, Best: 0}}, 0)
	l.Process(&ros.Message{Payload: &msgs.PoseStamped{Pose: geom.NewPose(0, 0, 0, 0)}}, 0)
	// Free costmap centered at ego.
	grid := &msgs.OccupancyGrid{
		Width: 120, Height: 120, Resolution: 0.5,
		Origin: geom.V2(-30, -30), Data: make([]int8, 120*120),
	}
	res := l.Process(&ros.Message{Payload: grid}, 0)
	if len(res.Outputs) != 1 {
		t.Fatalf("outputs = %+v", res.Outputs)
	}
	arr := res.Outputs[0].Payload.(*msgs.LaneArray)
	if arr.Best != (l.Rollouts-1)/2 {
		t.Errorf("best rollout = %d, want center %d", arr.Best, (l.Rollouts-1)/2)
	}
}

func TestLocalPlannerAvoidsBlockedCenter(t *testing.T) {
	l := NewLocal()
	route := msgs.Lane{}
	for x := 0.0; x < 60; x += 2 {
		route.Waypoints = append(route.Waypoints, msgs.Waypoint{Pos: geom.V2(x, 0), Yaw: 0, Speed: 8})
	}
	l.Process(&ros.Message{Payload: &msgs.LaneArray{Lanes: []msgs.Lane{route}, Best: 0}}, 0)
	l.Process(&ros.Message{Payload: &msgs.PoseStamped{Pose: geom.NewPose(0, 0, 0, 0)}}, 0)
	grid := &msgs.OccupancyGrid{
		Width: 120, Height: 120, Resolution: 0.5,
		Origin: geom.V2(-30, -30), Data: make([]int8, 120*120),
	}
	// Block a band across the centerline at x = 10..12, y in [-1, 1].
	for x := 10.0; x <= 12; x += 0.5 {
		for y := -1.0; y <= 1; y += 0.5 {
			cx, cy := grid.CellOf(geom.V2(x, y))
			grid.Set(cx, cy, 100)
		}
	}
	res := l.Process(&ros.Message{Payload: grid}, 0)
	arr := res.Outputs[0].Payload.(*msgs.LaneArray)
	if arr.Best == (l.Rollouts-1)/2 {
		t.Error("center rollout should be blocked")
	}
	if arr.Best < 0 {
		t.Error("an offset rollout should be feasible")
	}
}

func TestLocalPlannerAllBlocked(t *testing.T) {
	l := NewLocal()
	route := msgs.Lane{}
	for x := 0.0; x < 30; x += 2 {
		route.Waypoints = append(route.Waypoints, msgs.Waypoint{Pos: geom.V2(x, 0), Yaw: 0, Speed: 8})
	}
	l.Process(&ros.Message{Payload: &msgs.LaneArray{Lanes: []msgs.Lane{route}, Best: 0}}, 0)
	l.Process(&ros.Message{Payload: &msgs.PoseStamped{Pose: geom.NewPose(0, 0, 0, 0)}}, 0)
	grid := &msgs.OccupancyGrid{
		Width: 120, Height: 120, Resolution: 0.5,
		Origin: geom.V2(-30, -30), Data: make([]int8, 120*120),
	}
	// Wall across all rollouts.
	for y := -6.0; y <= 6; y += 0.25 {
		cx, cy := grid.CellOf(geom.V2(8, y))
		grid.Set(cx, cy, 100)
	}
	res := l.Process(&ros.Message{Payload: grid}, 0)
	arr := res.Outputs[0].Payload.(*msgs.LaneArray)
	if arr.Best != -1 {
		t.Errorf("all-blocked should yield Best=-1, got %d", arr.Best)
	}
}

func TestLocalPlannerNeedsRouteAndPose(t *testing.T) {
	l := NewLocal()
	grid := &msgs.OccupancyGrid{Width: 10, Height: 10, Resolution: 1, Data: make([]int8, 100)}
	res := l.Process(&ros.Message{Payload: grid}, 0)
	if len(res.Outputs) != 0 {
		t.Error("planner with no route should not emit a path")
	}
}

func TestSubscriptions(t *testing.T) {
	g := NewGlobal(lanes(t))
	if len(g.Subscribes()) != 2 {
		t.Error("global planner subscriptions")
	}
	l := NewLocal()
	found := false
	for _, s := range l.Subscribes() {
		if s.Topic == costmap.TopicObjectsCostmap {
			found = true
		}
	}
	if !found {
		t.Error("local planner should consume the objects costmap")
	}
}

func TestGlobalPlannerPanicsOnNilLanes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewGlobal(nil)
}
