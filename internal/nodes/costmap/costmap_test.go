package costmap

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/msgs"
	"repro/internal/pointcloud"
	"repro/internal/ros"
)

func TestPointsCostmapMarksObstacles(t *testing.T) {
	n := NewPoints(DefaultConfig())
	cloud := pointcloud.New(16)
	// Obstacle points at (10, 0) at torso height; ground-level and sky
	// points must be ignored.
	for i := 0; i < 5; i++ {
		cloud.Append(pointcloud.Point{Pos: geom.V3(10, 0, 1.0)})
	}
	cloud.Append(pointcloud.Point{Pos: geom.V3(5, 0, 0.05)}) // below MinHeight
	cloud.Append(pointcloud.Point{Pos: geom.V3(5, 5, 5.0)})  // above MaxHeight
	res := n.Process(&ros.Message{Payload: &msgs.PointCloud{Cloud: cloud}}, 0)
	if len(res.Outputs) != 1 || res.Outputs[0].Topic != TopicPointsCostmap {
		t.Fatalf("outputs = %+v", res.Outputs)
	}
	grid := res.Outputs[0].Payload.(*msgs.OccupancyGrid)
	x, y := grid.CellOf(geom.V2(10, 0))
	if grid.At(x, y) != 100 {
		t.Errorf("obstacle cell cost = %d", grid.At(x, y))
	}
	x, y = grid.CellOf(geom.V2(5, 0))
	if grid.At(x, y) == 100 {
		t.Error("ground-level point should not mark")
	}
	// Inflation shoulder next to the obstacle.
	x, y = grid.CellOf(geom.V2(10.8, 0))
	if grid.At(x, y) != 60 {
		t.Errorf("inflation cost = %d", grid.At(x, y))
	}
}

func TestPointsCostmapGridGeometry(t *testing.T) {
	cfg := DefaultConfig()
	n := NewPoints(cfg)
	res := n.Process(&ros.Message{Payload: &msgs.PointCloud{Cloud: pointcloud.New(0)}}, 0)
	grid := res.Outputs[0].Payload.(*msgs.OccupancyGrid)
	want := int(cfg.SizeMeters / cfg.Resolution)
	if grid.Width != want || grid.Height != want {
		t.Errorf("grid dims %dx%d, want %d", grid.Width, grid.Height, want)
	}
	// Out-of-range queries are blocked.
	if grid.At(-1, 0) != 100 || grid.At(0, grid.Height) != 100 {
		t.Error("out-of-range cells should read as blocked")
	}
}

func TestObjectsCostmapPaintsHullAndPath(t *testing.T) {
	n := NewObjects(DefaultConfig())
	// Ego at origin.
	n.Process(&ros.Message{Payload: &msgs.PoseStamped{Pose: geom.NewPose(0, 0, 0, 0)}}, 0)
	obj := msgs.DetectedObject{
		Pose: geom.NewPose(8, 0, 0, 0),
		Dim:  geom.V3(4, 2, 1.5),
		Hull: geom.Polygon{
			geom.V2(6, -1), geom.V2(10, -1), geom.V2(10, 1), geom.V2(6, 1),
		},
		Velocity:      geom.V2(5, 0),
		PredictedPath: []geom.Vec2{geom.V2(13, 0), geom.V2(18, 0)},
	}
	res := n.Process(&ros.Message{Payload: &msgs.DetectedObjectArray{Objects: []msgs.DetectedObject{obj}}}, 0)
	if len(res.Outputs) != 1 || res.Outputs[0].Topic != TopicObjectsCostmap {
		t.Fatalf("outputs = %+v", res.Outputs)
	}
	grid := res.Outputs[0].Payload.(*msgs.OccupancyGrid)
	// Hull interior occupied.
	x, y := grid.CellOf(geom.V2(8, 0))
	if grid.At(x, y) != 100 {
		t.Errorf("hull cell = %d", grid.At(x, y))
	}
	// Predicted path has decayed positive cost.
	x, y = grid.CellOf(geom.V2(13, 0))
	if c := grid.At(x, y); c <= 0 || c >= 100 {
		t.Errorf("path cell = %d", c)
	}
	// Empty area free.
	x, y = grid.CellOf(geom.V2(-20, -20))
	if grid.At(x, y) != 0 {
		t.Errorf("free cell = %d", grid.At(x, y))
	}
}

func TestObjectsCostmapFallsBackToOBB(t *testing.T) {
	n := NewObjects(DefaultConfig())
	n.Process(&ros.Message{Payload: &msgs.PoseStamped{Pose: geom.NewPose(0, 0, 0, 0)}}, 0)
	obj := msgs.DetectedObject{
		Pose: geom.NewPose(-5, 5, 0, 0),
		Dim:  geom.V3(4, 2, 1.5),
		// No hull.
	}
	res := n.Process(&ros.Message{Payload: &msgs.DetectedObjectArray{Objects: []msgs.DetectedObject{obj}}}, 0)
	grid := res.Outputs[0].Payload.(*msgs.OccupancyGrid)
	x, y := grid.CellOf(geom.V2(-5, 5))
	if grid.At(x, y) != 100 {
		t.Errorf("OBB fallback cell = %d", grid.At(x, y))
	}
}

func TestObjectsCostmapWorkScalesWithObjects(t *testing.T) {
	n := NewObjects(DefaultConfig())
	n.Process(&ros.Message{Payload: &msgs.PoseStamped{Pose: geom.NewPose(0, 0, 0, 0)}}, 0)
	mk := func(count int) *msgs.DetectedObjectArray {
		arr := &msgs.DetectedObjectArray{}
		for i := 0; i < count; i++ {
			arr.Objects = append(arr.Objects, msgs.DetectedObject{
				Pose:          geom.NewPose(float64(5+3*i), 0, 0, 0),
				Dim:           geom.V3(4, 2, 1.5),
				Velocity:      geom.V2(5, 0),
				PredictedPath: []geom.Vec2{geom.V2(float64(8+3*i), 2)},
			})
		}
		return arr
	}
	small := n.Process(&ros.Message{Payload: mk(1)}, 0)
	large := n.Process(&ros.Message{Payload: mk(8)}, 0)
	if large.Work.CPUOps() <= small.Work.CPUOps() {
		t.Errorf("work should scale with objects: %v vs %v",
			large.Work.CPUOps(), small.Work.CPUOps())
	}
}

func TestCostmapPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewPoints(Config{SizeMeters: 0, Resolution: 0.5})
}

func TestGridCellOfRoundTrip(t *testing.T) {
	g := &msgs.OccupancyGrid{
		Width: 100, Height: 100, Resolution: 0.5,
		Origin: geom.V2(-25, -25), Data: make([]int8, 10000),
	}
	x, y := g.CellOf(geom.V2(0, 0))
	if x != 50 || y != 50 {
		t.Errorf("center cell = %d,%d", x, y)
	}
	x, y = g.CellOf(geom.V2(-25, -25))
	if x != 0 || y != 0 {
		t.Errorf("origin cell = %d,%d", x, y)
	}
}
