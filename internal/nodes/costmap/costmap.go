// Package costmap implements the costmap generation nodes that close
// the paper's computation paths: costmap_generator (the points layer,
// fed by the non-ground cloud) and costmap_generator_obj (the objects
// layer, fed by predicted objects), each producing an occupancy grid of
// drivable space around the ego vehicle.
package costmap

import (
	"math"
	"time"

	"repro/internal/geom"
	"repro/internal/msgs"
	"repro/internal/nodes/filters"
	"repro/internal/nodes/localization"
	"repro/internal/nodes/prediction"
	"repro/internal/ros"
	"repro/internal/work"
)

// Topic names owned by this package.
const (
	TopicPointsCostmap  = "/costmap/points"
	TopicObjectsCostmap = "/costmap/objects"
)

// Config parameterizes a costmap node.
type Config struct {
	// SizeMeters is the square grid extent centered on the ego.
	SizeMeters float64
	// Resolution is meters per cell.
	Resolution float64
	// InflationRadius expands obstacles by this margin, meters.
	InflationRadius float64
	// MinHeight/MaxHeight gate points for the points layer.
	MinHeight, MaxHeight float64
	QueueDepth           int
}

// DefaultConfig returns the stock configuration.
func DefaultConfig() Config {
	return Config{
		SizeMeters:      60,
		Resolution:      0.5,
		InflationRadius: 1.0,
		MinHeight:       0.3,
		MaxHeight:       2.5,
		QueueDepth:      1,
	}
}

// cells returns the grid dimension.
func (c Config) cells() int { return int(c.SizeMeters / c.Resolution) }

// PointsNode is costmap_generator: the points-layer costmap built from
// the non-ground cloud (ego frame).
type PointsNode struct {
	cfg Config
	// lastMarked counts cells written in the last frame.
	lastMarked int
}

// NewPoints builds the points-layer node.
func NewPoints(cfg Config) *PointsNode {
	validate(cfg)
	return &PointsNode{cfg: cfg}
}

func validate(cfg Config) {
	if cfg.SizeMeters <= 0 || cfg.Resolution <= 0 {
		panic("costmap: invalid config")
	}
}

// Name implements ros.Node.
func (n *PointsNode) Name() string { return "costmap_generator" }

// Subscribes implements ros.Node.
func (n *PointsNode) Subscribes() []ros.SubSpec {
	return []ros.SubSpec{{Topic: filters.TopicPointsNoGround, Depth: n.cfg.QueueDepth}}
}

// Process implements ros.Node.
func (n *PointsNode) Process(in *ros.Message, _ time.Duration) ros.Result {
	pc, ok := in.Payload.(*msgs.PointCloud)
	if !ok {
		return ros.Result{}
	}
	dim := n.cfg.cells()
	grid := &msgs.OccupancyGrid{
		Width: dim, Height: dim,
		Resolution: n.cfg.Resolution,
		Origin:     geom.V2(-n.cfg.SizeMeters/2, -n.cfg.SizeMeters/2),
		Data:       make([]int8, dim*dim),
	}
	marked := 0
	for _, p := range pc.Cloud.Points {
		if p.Pos.Z < n.cfg.MinHeight || p.Pos.Z > n.cfg.MaxHeight {
			continue
		}
		x, y := grid.CellOf(p.Pos.XY())
		if grid.At(x, y) != 100 {
			grid.Set(x, y, 100)
			marked++
		}
	}
	marked += inflate(grid, n.cfg.InflationRadius)
	n.lastMarked = marked

	np := float64(pc.Cloud.Len())
	mk := float64(marked)
	cellCount := float64(dim * dim)
	w := work.Work{
		FPOps:        8*np + 4*mk,
		IntOps:       14*np + 20*mk + 2*cellCount,
		LoadOps:      8*np + 10*mk + cellCount,
		StoreOps:     3*np + 6*mk + 0.5*cellCount,
		BranchOps:    6*np + 5*mk + 0.5*cellCount,
		BytesTouched: 32*np + cellCount + 24*mk,
	}
	return ros.Result{
		Outputs: []ros.Output{{Topic: TopicPointsCostmap, Payload: grid, FrameID: "ego"}},
		Work:    w,
	}
}

// ObjectsNode is costmap_generator_obj: the objects-layer costmap built
// from predicted objects (map frame), rasterized around the current
// ego pose. Its per-frame cost scales with the number of objects and
// their predicted paths — the scene-dependence behind its long tail in
// Fig. 5.
type ObjectsNode struct {
	cfg      Config
	egoPose  geom.Pose
	havePose bool
	// lastCellsPainted for work/µarch modeling.
	lastCellsPainted int
}

// NewObjects builds the objects-layer node.
func NewObjects(cfg Config) *ObjectsNode {
	validate(cfg)
	return &ObjectsNode{cfg: cfg}
}

// Name implements ros.Node.
func (n *ObjectsNode) Name() string { return "costmap_generator_obj" }

// Subscribes implements ros.Node.
func (n *ObjectsNode) Subscribes() []ros.SubSpec {
	return []ros.SubSpec{
		{Topic: prediction.TopicPredictedObjects, Depth: n.cfg.QueueDepth},
		{Topic: localization.TopicCurrentPose, Depth: 1},
	}
}

// Process implements ros.Node.
func (n *ObjectsNode) Process(in *ros.Message, _ time.Duration) ros.Result {
	switch payload := in.Payload.(type) {
	case *msgs.PoseStamped:
		n.egoPose = payload.Pose
		n.havePose = true
		return ros.Result{Work: work.Work{IntOps: 100, LoadOps: 50, StoreOps: 25, BranchOps: 15, BytesTouched: 256}}
	case *msgs.DetectedObjectArray:
		return n.rasterize(payload)
	default:
		return ros.Result{}
	}
}

func (n *ObjectsNode) rasterize(arr *msgs.DetectedObjectArray) ros.Result {
	dim := n.cfg.cells()
	center := n.egoPose.XY()
	grid := &msgs.OccupancyGrid{
		Width: dim, Height: dim,
		Resolution: n.cfg.Resolution,
		Origin:     center.Sub(geom.V2(n.cfg.SizeMeters/2, n.cfg.SizeMeters/2)),
		Data:       make([]int8, dim*dim),
	}
	painted := 0
	hullVertices := 0
	pathSteps := 0
	for _, o := range arr.Objects {
		// Paint the object footprint: hull when available, else the
		// oriented box of its dimensions.
		poly := o.Hull
		if len(poly) < 3 {
			obb := geom.OBB2{
				Center: o.Pose.XY(), Yaw: o.Pose.Yaw,
				HalfLen: math.Max(o.Dim.X/2, 0.4), HalfWid: math.Max(o.Dim.Y/2, 0.4),
			}
			cs := obb.Corners()
			poly = geom.Polygon(cs[:])
		}
		hullVertices += len(poly)
		painted += paintPolygon(grid, poly, 100)
		// Mark the predicted path with decaying cost.
		for s, p := range o.PredictedPath {
			cost := 80 - 20*s/int(math.Max(1, float64(len(o.PredictedPath))))
			x, y := grid.CellOf(p)
			// Stamp a footprint-sized disc along the path.
			r := int(math.Max(o.Dim.Y/2, 0.4)/n.cfg.Resolution) + 1
			for dy := -r; dy <= r; dy++ {
				for dx := -r; dx <= r; dx++ {
					if dx*dx+dy*dy > r*r {
						continue
					}
					if grid.At(x+dx, y+dy) < int8(cost) {
						grid.Set(x+dx, y+dy, int8(cost))
						painted++
					}
				}
			}
			pathSteps++
		}
	}
	painted += inflate(grid, n.cfg.InflationRadius)
	n.lastCellsPainted = painted

	nObj := float64(len(arr.Objects))
	hv := float64(hullVertices)
	ps := float64(pathSteps)
	pt := float64(painted)
	cellCount := float64(dim * dim)
	// This node is compute-bound (paper Table VII: best IPC, lowest
	// load/store share): mostly arithmetic rasterization over a dense
	// grid that lives in cache.
	w := work.Work{
		FPOps:        nObj*300 + hv*120 + ps*90 + pt*14,
		IntOps:       nObj*150 + hv*60 + ps*60 + pt*20 + cellCount,
		LoadOps:      nObj*60 + hv*30 + ps*25 + pt*6 + 0.5*cellCount,
		StoreOps:     nObj*30 + pt*5 + 0.25*cellCount,
		BranchOps:    nObj*40 + hv*20 + ps*12 + pt*3,
		BytesTouched: cellCount + pt*8 + nObj*512,
	}
	return ros.Result{
		Outputs: []ros.Output{{Topic: TopicObjectsCostmap, Payload: grid, FrameID: "map"}},
		Work:    w,
	}
}

// paintPolygon fills a polygon's cells with cost, returning cells set.
func paintPolygon(g *msgs.OccupancyGrid, poly geom.Polygon, cost int8) int {
	b := poly.Bounds()
	x0, y0 := g.CellOf(b.Min)
	x1, y1 := g.CellOf(b.Max)
	painted := 0
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			if x < 0 || y < 0 || x >= g.Width || y >= g.Height {
				continue
			}
			cpt := geom.V2(
				g.Origin.X+(float64(x)+0.5)*g.Resolution,
				g.Origin.Y+(float64(y)+0.5)*g.Resolution,
			)
			if poly.Contains(cpt) && g.At(x, y) < cost {
				g.Set(x, y, cost)
				painted++
			}
		}
	}
	return painted
}

// inflate expands occupied cells (cost 100) by radius meters, writing
// a shoulder cost of 60; returns cells written.
func inflate(g *msgs.OccupancyGrid, radius float64) int {
	if radius <= 0 {
		return 0
	}
	r := int(radius / g.Resolution)
	if r < 1 {
		return 0
	}
	written := 0
	// Collect occupied cells first to avoid cascading inflation.
	type cell struct{ x, y int }
	var occ []cell
	for y := 0; y < g.Height; y++ {
		for x := 0; x < g.Width; x++ {
			if g.At(x, y) == 100 {
				occ = append(occ, cell{x, y})
			}
		}
	}
	for _, c := range occ {
		for dy := -r; dy <= r; dy++ {
			for dx := -r; dx <= r; dx++ {
				if dx*dx+dy*dy > r*r {
					continue
				}
				if g.At(c.x+dx, c.y+dy) < 60 {
					g.Set(c.x+dx, c.y+dy, 60)
					written++
				}
			}
		}
	}
	return written
}
