package motion

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/msgs"
	"repro/internal/ros"
)

func straightLane() *msgs.LaneArray {
	lane := msgs.Lane{}
	for x := 0.0; x < 40; x += 2 {
		lane.Waypoints = append(lane.Waypoints, msgs.Waypoint{Pos: geom.V2(x, 0), Yaw: 0, Speed: 8})
	}
	return &msgs.LaneArray{Lanes: []msgs.Lane{lane}, Best: 0}
}

func TestPurePursuitStraight(t *testing.T) {
	p := NewPurePursuit(DefaultPurePursuitConfig())
	p.Process(&ros.Message{Payload: straightLane()}, 0)
	res := p.Process(&ros.Message{Payload: &msgs.PoseStamped{Pose: geom.NewPose(0, 0, 0, 0)}}, 0)
	if len(res.Outputs) != 1 || res.Outputs[0].Topic != TopicTwistRaw {
		t.Fatalf("outputs = %+v", res.Outputs)
	}
	tw := res.Outputs[0].Payload.(*msgs.TwistStamped).Twist
	if tw.Linear != 8 {
		t.Errorf("linear = %v", tw.Linear)
	}
	if math.Abs(tw.Angular) > 0.05 {
		t.Errorf("straight path should need no turn: %v", tw.Angular)
	}
}

func TestPurePursuitSteersTowardOffsetPath(t *testing.T) {
	p := NewPurePursuit(DefaultPurePursuitConfig())
	// Path offset to the left (+Y) of the vehicle.
	lane := msgs.Lane{}
	for x := 0.0; x < 40; x += 2 {
		lane.Waypoints = append(lane.Waypoints, msgs.Waypoint{Pos: geom.V2(x, 4), Yaw: 0, Speed: 8})
	}
	p.Process(&ros.Message{Payload: &msgs.LaneArray{Lanes: []msgs.Lane{lane}, Best: 0}}, 0)
	tw, ok := p.Command(geom.NewPose(0, 0, 0, 0))
	if !ok {
		t.Fatal("no command")
	}
	if tw.Angular <= 0 {
		t.Errorf("should steer left: %v", tw.Angular)
	}
}

func TestPurePursuitAngularCap(t *testing.T) {
	cfg := DefaultPurePursuitConfig()
	p := NewPurePursuit(cfg)
	// Path hard to the side.
	lane := msgs.Lane{Waypoints: []msgs.Waypoint{{Pos: geom.V2(1, 20), Speed: 10}}}
	p.Process(&ros.Message{Payload: &msgs.LaneArray{Lanes: []msgs.Lane{lane}, Best: 0}}, 0)
	tw, _ := p.Command(geom.NewPose(0, 0, 0, 0))
	if math.Abs(tw.Angular) > cfg.MaxAngular+1e-9 {
		t.Errorf("angular %v exceeds cap", tw.Angular)
	}
}

func TestPurePursuitNoPath(t *testing.T) {
	p := NewPurePursuit(DefaultPurePursuitConfig())
	if _, ok := p.Command(geom.NewPose(0, 0, 0, 0)); ok {
		t.Error("command without path should fail")
	}
	// Infeasible lane array clears the path.
	p.Process(&ros.Message{Payload: straightLane()}, 0)
	p.Process(&ros.Message{Payload: &msgs.LaneArray{Lanes: []msgs.Lane{{}}, Best: -1}}, 0)
	if _, ok := p.Command(geom.NewPose(0, 0, 0, 0)); ok {
		t.Error("blocked lane array should clear the path")
	}
}

func TestTwistFilterSmooths(t *testing.T) {
	f := NewTwistFilter(DefaultTwistFilterConfig())
	// First sample passes through.
	out := f.Apply(geom.Twist{Linear: 5, Angular: 0.1})
	if out.Linear != 5 {
		t.Errorf("first sample = %v", out)
	}
	// A step change is smoothed, not followed instantly.
	out = f.Apply(geom.Twist{Linear: 10, Angular: -0.4})
	if out.Linear >= 10 || out.Linear <= 5 {
		t.Errorf("smoothed linear = %v", out.Linear)
	}
	if out.Angular <= -0.4 || out.Angular >= 0.1 {
		t.Errorf("smoothed angular = %v", out.Angular)
	}
}

func TestTwistFilterJerkLimit(t *testing.T) {
	cfg := DefaultTwistFilterConfig()
	cfg.Alpha = 1 // disable smoothing to isolate the jerk limit
	f := NewTwistFilter(cfg)
	f.Apply(geom.Twist{Linear: 0})
	out := f.Apply(geom.Twist{Linear: 100})
	if out.Linear > cfg.MaxLinearJerk+1e-9 {
		t.Errorf("jerk-limited linear = %v", out.Linear)
	}
}

func TestTwistFilterConverges(t *testing.T) {
	f := NewTwistFilter(DefaultTwistFilterConfig())
	target := geom.Twist{Linear: 6, Angular: 0.2}
	var out geom.Twist
	for i := 0; i < 100; i++ {
		out = f.Apply(target)
	}
	if math.Abs(out.Linear-6) > 0.01 || math.Abs(out.Angular-0.2) > 0.01 {
		t.Errorf("filter did not converge: %+v", out)
	}
}

func TestTwistFilterProcess(t *testing.T) {
	f := NewTwistFilter(DefaultTwistFilterConfig())
	res := f.Process(&ros.Message{Payload: &msgs.TwistStamped{Twist: geom.Twist{Linear: 3}}}, 0)
	if len(res.Outputs) != 1 || res.Outputs[0].Topic != TopicTwistCmd {
		t.Fatalf("outputs = %+v", res.Outputs)
	}
}

func TestTwistFilterPanicsOnBadAlpha(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewTwistFilter(TwistFilterConfig{Alpha: 0})
}
