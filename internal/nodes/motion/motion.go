// Package motion implements the control-output nodes: pure_pursuit
// (the geometric path follower computing linear/angular velocity) and
// twist_filter (the low-pass smoother applied before drive-by-wire).
package motion

import (
	"math"
	"time"

	"repro/internal/geom"
	"repro/internal/msgs"
	"repro/internal/nodes/localization"
	"repro/internal/nodes/planning"
	"repro/internal/ros"
	"repro/internal/work"
)

// Topic names owned by this package.
const (
	TopicTwistRaw = "/twist_raw"
	TopicTwistCmd = "/twist_cmd"
)

// PurePursuitConfig parameterizes the follower.
type PurePursuitConfig struct {
	// LookaheadGain scales the lookahead distance with speed.
	LookaheadGain float64
	// MinLookahead floors the lookahead, meters.
	MinLookahead float64
	// MaxAngular caps the commanded turn rate, rad/s.
	MaxAngular float64
}

// DefaultPurePursuitConfig returns the stock configuration.
func DefaultPurePursuitConfig() PurePursuitConfig {
	return PurePursuitConfig{LookaheadGain: 0.9, MinLookahead: 4, MaxAngular: 0.6}
}

// PurePursuit is the pure_pursuit node.
type PurePursuit struct {
	cfg      PurePursuitConfig
	path     *msgs.Lane
	egoPose  geom.Pose
	havePose bool
}

// NewPurePursuit builds the node.
func NewPurePursuit(cfg PurePursuitConfig) *PurePursuit {
	return &PurePursuit{cfg: cfg}
}

// Name implements ros.Node.
func (p *PurePursuit) Name() string { return "pure_pursuit" }

// Subscribes implements ros.Node.
func (p *PurePursuit) Subscribes() []ros.SubSpec {
	return []ros.SubSpec{
		{Topic: planning.TopicLocalPath, Depth: 1},
		{Topic: localization.TopicCurrentPose, Depth: 1},
	}
}

// Command computes the twist for a pose against the current path;
// exported for tests. ok is false without a feasible path.
func (p *PurePursuit) Command(pose geom.Pose) (geom.Twist, bool) {
	if p.path == nil || len(p.path.Waypoints) == 0 {
		return geom.Twist{}, false
	}
	speed := p.path.Waypoints[0].Speed
	lookahead := math.Max(p.cfg.MinLookahead, p.cfg.LookaheadGain*speed)
	// Target: first waypoint at least lookahead away, ahead of the pose.
	var target *msgs.Waypoint
	for i := range p.path.Waypoints {
		wp := &p.path.Waypoints[i]
		rel := pose.Inverse(geom.V3(wp.Pos.X, wp.Pos.Y, 0))
		if rel.X > 0 && wp.Pos.Dist(pose.XY()) >= lookahead {
			target = wp
			break
		}
	}
	if target == nil {
		target = &p.path.Waypoints[len(p.path.Waypoints)-1]
	}
	rel := pose.Inverse(geom.V3(target.Pos.X, target.Pos.Y, 0))
	d2 := rel.X*rel.X + rel.Y*rel.Y
	if d2 < 1e-6 {
		return geom.Twist{Linear: speed}, true
	}
	// Pure pursuit curvature: kappa = 2*y / L^2.
	kappa := 2 * rel.Y / d2
	ang := geom.Clamp(speed*kappa, -p.cfg.MaxAngular, p.cfg.MaxAngular)
	return geom.Twist{Linear: target.Speed, Angular: ang}, true
}

// Process implements ros.Node.
func (p *PurePursuit) Process(in *ros.Message, _ time.Duration) ros.Result {
	switch payload := in.Payload.(type) {
	case *msgs.LaneArray:
		if payload.Best >= 0 && payload.Best < len(payload.Lanes) {
			p.path = &payload.Lanes[payload.Best]
		} else {
			p.path = nil
		}
		return ros.Result{Work: work.Work{IntOps: 150, LoadOps: 80, StoreOps: 30, BranchOps: 25, BytesTouched: 512}}
	case *msgs.PoseStamped:
		p.egoPose = payload.Pose
		p.havePose = true
		tw, ok := p.Command(payload.Pose)
		n := 1.0
		if p.path != nil {
			n = float64(len(p.path.Waypoints))
		}
		w := work.Work{
			FPOps: 40 + 18*n, IntOps: 20 + 6*n, LoadOps: 15 + 8*n,
			StoreOps: 10, BranchOps: 8 + 3*n, BytesTouched: 256 + 24*n,
		}
		if !ok {
			return ros.Result{Work: w}
		}
		return ros.Result{
			Outputs: []ros.Output{{Topic: TopicTwistRaw, Payload: &msgs.TwistStamped{Twist: tw}, FrameID: "ego"}},
			Work:    w,
		}
	default:
		return ros.Result{}
	}
}

// TwistFilterConfig parameterizes the smoother.
type TwistFilterConfig struct {
	// Alpha is the exponential smoothing factor in (0, 1]; 1 disables
	// smoothing.
	Alpha float64
	// MaxLinearJerk caps the change in linear velocity per message.
	MaxLinearJerk float64
}

// DefaultTwistFilterConfig returns the stock configuration.
func DefaultTwistFilterConfig() TwistFilterConfig {
	return TwistFilterConfig{Alpha: 0.35, MaxLinearJerk: 1.2}
}

// TwistFilter is the twist_filter node: an exponential low-pass over
// velocity commands.
type TwistFilter struct {
	cfg  TwistFilterConfig
	prev geom.Twist
	has  bool
}

// NewTwistFilter builds the node.
func NewTwistFilter(cfg TwistFilterConfig) *TwistFilter {
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		panic("motion: twist filter alpha out of range")
	}
	return &TwistFilter{cfg: cfg}
}

// Name implements ros.Node.
func (t *TwistFilter) Name() string { return "twist_filter" }

// Subscribes implements ros.Node.
func (t *TwistFilter) Subscribes() []ros.SubSpec {
	return []ros.SubSpec{{Topic: TopicTwistRaw, Depth: 1}}
}

// Apply smooths one command; exported for tests.
func (t *TwistFilter) Apply(in geom.Twist) geom.Twist {
	if !t.has {
		t.prev = in
		t.has = true
		return in
	}
	a := t.cfg.Alpha
	out := geom.Twist{
		Linear:  t.prev.Linear + a*(in.Linear-t.prev.Linear),
		Angular: t.prev.Angular + a*(in.Angular-t.prev.Angular),
	}
	// Jerk limit on linear velocity.
	dv := geom.Clamp(out.Linear-t.prev.Linear, -t.cfg.MaxLinearJerk, t.cfg.MaxLinearJerk)
	out.Linear = t.prev.Linear + dv
	t.prev = out
	return out
}

// Process implements ros.Node.
func (t *TwistFilter) Process(in *ros.Message, _ time.Duration) ros.Result {
	ts, ok := in.Payload.(*msgs.TwistStamped)
	if !ok {
		return ros.Result{}
	}
	out := t.Apply(ts.Twist)
	return ros.Result{
		Outputs: []ros.Output{{Topic: TopicTwistCmd, Payload: &msgs.TwistStamped{Twist: out}, FrameID: "ego"}},
		Work: work.Work{
			FPOps: 30, IntOps: 15, LoadOps: 12, StoreOps: 8, BranchOps: 6,
			BytesTouched: 128,
		},
	}
}
