// Package visiondet implements the image-based detection nodes
// (vision_ssd_detect / vision_yolo_detect). Each node wraps a dnn
// Detector: the functional reduced-scale network really processes the
// camera pixels, while the full-size architecture's analytic workload
// drives the GPU/CPU timing — preserving the SSD512 ≫ YOLOv3 ≈ SSD300
// cost ordering the paper's entire characterization pivots on.
package visiondet

import (
	"time"

	"repro/internal/dnn"
	"repro/internal/msgs"
	"repro/internal/ros"
)

// Topic names owned by this package.
const (
	TopicImageRaw = "/image_raw"
	TopicObjects  = "/detection/image_detector/objects"
)

// Config parameterizes a vision detector node.
type Config struct {
	// Arch selects the full-size model (dnn.ArchSSD300 / ArchSSD512 /
	// ArchYOLOv3).
	Arch dnn.Arch
	// ScoreThreshold drops low-confidence detections.
	ScoreThreshold float64
	QueueDepth     int
	Seed           uint64
}

// DefaultConfig returns the configuration for an architecture.
func DefaultConfig(arch dnn.Arch) Config {
	return Config{Arch: arch, ScoreThreshold: 0.5, QueueDepth: 1, Seed: 0xDE7EC7}
}

// Node is a vision detection node.
type Node struct {
	cfg Config
	det *dnn.Detector
	// lastDetections is kept for tests/inspection.
	lastDetections []dnn.Detection
	// tin is the reused input tensor the camera frame is staged into.
	tin dnn.Tensor
}

// New builds the node.
func New(cfg Config) *Node {
	if cfg.Arch.Name == "" {
		panic("visiondet: config needs an architecture")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1
	}
	return &Node{cfg: cfg, det: dnn.NewDetector(cfg.Arch, cfg.Seed)}
}

// Name implements ros.Node. The paper's plots label this node
// "vision_detection" regardless of the algorithm; we keep the algorithm
// visible in the name's suffixless form for Table/Figure rendering.
func (n *Node) Name() string { return "vision_detection" }

// ArchName returns the architecture identifier (SSD300/SSD512/YOLOv3-416).
func (n *Node) ArchName() string { return n.cfg.Arch.Name }

// Subscribes implements ros.Node.
func (n *Node) Subscribes() []ros.SubSpec {
	return []ros.SubSpec{{Topic: TopicImageRaw, Depth: n.cfg.QueueDepth}}
}

// LastDetections returns the detections of the most recent frame.
func (n *Node) LastDetections() []dnn.Detection { return n.lastDetections }

// labelFor maps the functional detector's class index to a message label.
func labelFor(class int) msgs.ObjectLabel {
	switch dnn.ClassNames[class] {
	case "car":
		return msgs.LabelCar
	case "truck":
		return msgs.LabelTruck
	case "pedestrian":
		return msgs.LabelPedestrian
	case "cyclist":
		return msgs.LabelCyclist
	default:
		return msgs.LabelUnknown
	}
}

// Process implements ros.Node.
func (n *Node) Process(in *ros.Message, _ time.Duration) ros.Result {
	img, ok := in.Payload.(*msgs.CameraImage)
	if !ok {
		return ros.Result{}
	}
	tensor := n.tin.Reshape(3, img.Frame.Image.H, img.Frame.Image.W)
	copy(tensor.Data, img.Frame.Image.Pix)
	dets := n.det.Infer(tensor)
	n.lastDetections = dets

	objects := make([]msgs.DetectedObject, 0, len(dets))
	for i, d := range dets {
		if d.Score < n.cfg.ScoreThreshold {
			continue
		}
		objects = append(objects, msgs.DetectedObject{
			ID:           i + 1,
			Label:        labelFor(d.Class),
			Score:        d.Score,
			ImageRect:    d.Rect,
			HasImageRect: true,
		})
	}

	// Cost: full-size architecture — host-side pre/post work plus the
	// GPU kernel chain.
	w := n.cfg.Arch.CPUWork()
	w.Kernels = n.cfg.Arch.GPUKernels()
	return ros.Result{
		Outputs: []ros.Output{{
			Topic:   TopicObjects,
			Payload: &msgs.DetectedObjectArray{Objects: objects},
			FrameID: "camera",
		}},
		Work: w,
	}
}

// NewSSD300 returns a detector node modeling SSD300.
func NewSSD300() *Node { return New(DefaultConfig(dnn.ArchSSD300)) }

// NewSSD512 returns a detector node modeling SSD512.
func NewSSD512() *Node { return New(DefaultConfig(dnn.ArchSSD512)) }

// NewYOLOv3 returns a detector node modeling YOLOv3-416.
func NewYOLOv3() *Node { return New(DefaultConfig(dnn.ArchYOLOv3)) }
