package visiondet

import (
	"testing"

	"repro/internal/dnn"
	"repro/internal/geom"
	"repro/internal/msgs"
	"repro/internal/ros"
	"repro/internal/testenv"
	"repro/internal/world"
)

func frameWithActorAhead(t *testing.T, kind world.ActorKind, dist float64) *msgs.CameraImage {
	t.Helper()
	s := testenv.Scenario()
	snap := s.At(0)
	ego := snap.Ego.Pose
	p := ego.Transform(geom.V3(dist, 0, 0))
	snap.Actors = []world.ActorState{{
		ID: 1, Kind: kind,
		Pose: geom.NewPose(p.X, p.Y, 0, ego.Yaw),
		Dim:  kind.Dimensions(),
	}}
	return &msgs.CameraImage{Frame: testenv.Camera().Capture(&snap)}
}

func TestDetectsCarFromPixels(t *testing.T) {
	n := NewSSD512()
	img := frameWithActorAhead(t, world.KindCar, 12)
	res := n.Process(&ros.Message{Topic: TopicImageRaw, Payload: img}, 0)
	if len(res.Outputs) != 1 || res.Outputs[0].Topic != TopicObjects {
		t.Fatalf("outputs = %+v", res.Outputs)
	}
	arr := res.Outputs[0].Payload.(*msgs.DetectedObjectArray)
	if len(arr.Objects) == 0 {
		t.Fatal("no detections on a clear car")
	}
	found := false
	for _, o := range arr.Objects {
		if o.Label == msgs.LabelCar && o.HasImageRect {
			found = true
			// Rough overlap with ground truth.
			if len(img.Frame.GT) > 0 && o.ImageRect.IoU(img.Frame.GT[0].Rect) < 0.2 {
				t.Errorf("poor localization: IoU %.2f", o.ImageRect.IoU(img.Frame.GT[0].Rect))
			}
		}
	}
	if !found {
		t.Errorf("car label missing: %+v", arr.Objects)
	}
}

func TestDetectsPedestrian(t *testing.T) {
	n := NewYOLOv3()
	img := frameWithActorAhead(t, world.KindPedestrian, 8)
	res := n.Process(&ros.Message{Payload: img}, 0)
	arr := res.Outputs[0].Payload.(*msgs.DetectedObjectArray)
	found := false
	for _, o := range arr.Objects {
		if o.Label == msgs.LabelPedestrian {
			found = true
		}
	}
	if !found {
		t.Errorf("pedestrian missed: %+v", arr.Objects)
	}
}

func TestWorkloadReflectsArchitecture(t *testing.T) {
	img := frameWithActorAhead(t, world.KindCar, 15)
	msg := &ros.Message{Payload: img}
	r512 := NewSSD512().Process(msg, 0)
	r300 := NewSSD300().Process(msg, 0)
	ry := NewYOLOv3().Process(msg, 0)
	if r512.Work.GPUFMAs() <= ry.Work.GPUFMAs() || ry.Work.GPUFMAs() <= r300.Work.GPUFMAs() {
		t.Errorf("GPU FMA ordering wrong: 512=%.3g yolo=%.3g 300=%.3g",
			r512.Work.GPUFMAs(), ry.Work.GPUFMAs(), r300.Work.GPUFMAs())
	}
	if r512.Work.CPUOps() <= ry.Work.CPUOps() {
		t.Errorf("SSD512 CPU side should dominate YOLO: %.3g vs %.3g",
			r512.Work.CPUOps(), ry.Work.CPUOps())
	}
}

func TestNames(t *testing.T) {
	if NewSSD512().Name() != "vision_detection" {
		t.Error("node name mismatch")
	}
	if NewSSD512().ArchName() != "SSD512" || NewYOLOv3().ArchName() != "YOLOv3-416" {
		t.Error("arch name mismatch")
	}
	subs := NewSSD300().Subscribes()
	if len(subs) != 1 || subs[0].Topic != TopicImageRaw || subs[0].Depth != 1 {
		t.Errorf("subs = %+v", subs)
	}
}

func TestIgnoresWrongPayload(t *testing.T) {
	n := NewSSD300()
	if res := n.Process(&ros.Message{Payload: 42}, 0); len(res.Outputs) != 0 {
		t.Error("wrong payload should produce nothing")
	}
}

func TestPanicsWithoutArch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(Config{})
}

func TestLabelMapping(t *testing.T) {
	for i, name := range dnn.ClassNames {
		l := labelFor(i)
		if string(l) != name {
			t.Errorf("label %d: %s != %s", i, l, name)
		}
	}
}
