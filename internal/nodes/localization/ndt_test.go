package localization

import (
	"math"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/msgs"
	"repro/internal/nodes/filters"
	"repro/internal/pointcloud"
	"repro/internal/ros"
	"repro/internal/sensor"
	"repro/internal/testenv"
)

func filteredScanAt(t *testing.T, at float64) (*pointcloud.Cloud, geom.Pose) {
	t.Helper()
	s := testenv.Scenario()
	snap := s.At(at)
	raw := testenv.LiDAR().Scan(&snap)
	filtered, _ := pointcloud.VoxelDownsample(raw, 2.0)
	return filtered, snap.Ego.Pose
}

func newTestNode(t *testing.T) *NDTMatching {
	t.Helper()
	return New(DefaultConfig(), testenv.Map())
}

func TestNDTAlignRecoversPerturbation(t *testing.T) {
	n := newTestNode(t)
	cloud, truth := filteredScanAt(t, 25)
	// Start from a perturbed pose; alignment should pull it back.
	init := geom.Pose{
		Pos: truth.Pos.Add(geom.V3(1.2, -0.8, 0)),
		Yaw: geom.WrapAngle(truth.Yaw + 0.06),
	}
	pose, fitness, iters, matched, _ := n.align(cloud, init)
	if matched < 50 {
		t.Fatalf("too few matches: %d", matched)
	}
	errPos := pose.XY().Dist(truth.XY())
	errYaw := math.Abs(geom.AngleDiff(pose.Yaw, truth.Yaw))
	initErr := init.XY().Dist(truth.XY())
	if errPos > initErr/2 {
		t.Errorf("alignment did not improve position: %.3f -> %.3f m", initErr, errPos)
	}
	if errPos > 0.8 {
		t.Errorf("position error %.3f m too large", errPos)
	}
	if errYaw > 0.05 {
		t.Errorf("yaw error %.4f rad too large", errYaw)
	}
	if iters < 1 || fitness <= 0 {
		t.Errorf("iters=%d fitness=%v", iters, fitness)
	}
}

func TestNDTAlignIsStableAtTruth(t *testing.T) {
	n := newTestNode(t)
	cloud, truth := filteredScanAt(t, 60)
	pose, _, _, _, _ := n.align(cloud, truth)
	if pose.XY().Dist(truth.XY()) > 0.5 {
		t.Errorf("truth pose drifted to %v (truth %v)", pose.Pos, truth.Pos)
	}
}

func TestNDTNodeLifecycle(t *testing.T) {
	n := newTestNode(t)
	if n.Name() != "ndt_matching" {
		t.Error("name mismatch")
	}
	if len(n.Subscribes()) != 3 {
		t.Errorf("subs = %+v", n.Subscribes())
	}
	if _, ok := n.Pose(); ok {
		t.Error("should start uninitialized")
	}

	cloud, truth := filteredScanAt(t, 25)
	stamp := 25 * time.Second

	// Scan before GNSS: no pose output.
	res := n.Process(&ros.Message{
		Header:  ros.Header{Stamp: stamp},
		Payload: &msgs.PointCloud{Cloud: cloud},
	}, stamp)
	if len(res.Outputs) != 0 {
		t.Error("should not localize before GNSS init")
	}

	// GNSS fix near truth.
	n.Process(&ros.Message{Payload: &msgs.GNSS{Fix: sensor.GNSSFix{
		Pos: truth.Pos.Add(geom.V3(1.5, -1, 0)),
	}}}, stamp)

	// Now the scan should produce a pose.
	res = n.Process(&ros.Message{
		Header:  ros.Header{Stamp: stamp + 100*time.Millisecond},
		Payload: &msgs.PointCloud{Cloud: cloud},
	}, stamp+100*time.Millisecond)
	if len(res.Outputs) != 1 || res.Outputs[0].Topic != TopicCurrentPose {
		t.Fatalf("outputs = %+v", res.Outputs)
	}
	ps := res.Outputs[0].Payload.(*msgs.PoseStamped)
	if ps.Iterations < 1 {
		t.Error("no iterations recorded")
	}
	pose, ok := n.Pose()
	if !ok {
		t.Fatal("should be initialized")
	}
	if pose.XY().Dist(truth.XY()) > 2.5 {
		t.Errorf("bootstrap pose error = %.2f m", pose.XY().Dist(truth.XY()))
	}
	if res.Work.CPUOps() <= 0 {
		t.Error("work not accounted")
	}
}

func TestNDTTracksMotion(t *testing.T) {
	n := newTestNode(t)
	s := testenv.Scenario()
	lidar := testenv.LiDAR()
	imu := sensor.NewIMU(3)
	gnss := sensor.NewGNSS(2, 4)

	var maxErr float64
	localized := 0
	for ts := 20.0; ts < 30; ts += 0.1 {
		snap := s.At(ts)
		stamp := time.Duration(ts * float64(time.Second))
		n.Process(&ros.Message{
			Header:  ros.Header{Stamp: stamp},
			Payload: &msgs.IMU{Sample: imu.Sample(&snap)},
		}, stamp)
		if int(ts*10)%10 == 0 {
			n.Process(&ros.Message{
				Header:  ros.Header{Stamp: stamp},
				Payload: &msgs.GNSS{Fix: gnss.Fix(&snap)},
			}, stamp)
		}
		raw := lidar.Scan(&snap)
		filtered, _ := pointcloud.VoxelDownsample(raw, 2.0)
		res := n.Process(&ros.Message{
			Header:  ros.Header{Stamp: stamp},
			Payload: &msgs.PointCloud{Cloud: filtered},
		}, stamp)
		if len(res.Outputs) == 0 {
			continue
		}
		localized++
		pose := res.Outputs[0].Payload.(*msgs.PoseStamped).Pose
		if err := pose.XY().Dist(snap.Ego.Pose.XY()); err > maxErr {
			maxErr = err
		}
	}
	if localized < 80 {
		t.Fatalf("localized only %d frames", localized)
	}
	if maxErr > 2.0 {
		t.Errorf("max tracking error %.2f m (want < 2.0: centimeter-level is the paper's claim, meter-level is our acceptance with a noisy synthetic rig)", maxErr)
	}
}

func TestNDTWorkGrowsWithIterations(t *testing.T) {
	n := newTestNode(t)
	cloud, truth := filteredScanAt(t, 25)
	// Converged-at-truth run.
	_, _, itA, _, _ := n.align(cloud, truth)
	// Perturbed run should need at least as many iterations.
	_, _, itB, _, _ := n.align(cloud, geom.Pose{
		Pos: truth.Pos.Add(geom.V3(2, 2, 0)),
		Yaw: truth.Yaw + 0.1,
	})
	if itB < itA {
		t.Errorf("perturbed alignment used fewer iterations: %d < %d", itB, itA)
	}
}

func TestNDTPanicsOnNilMap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(DefaultConfig(), nil)
}

var _ = filters.TopicFilteredPoints // silence unused-import lint in builds without tags
