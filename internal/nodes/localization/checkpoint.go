package localization

import (
	"time"

	"repro/internal/geom"
	"repro/internal/msgs"
)

// This file implements the supervision layer's Checkpointer contract
// (internal/supervise) for ndt_matching: the pose estimate and the
// dead-reckoning context are the node's crash-critical state — losing
// them forces a full GNSS re-bootstrap, while restoring a recent
// checkpoint lets a restarted localizer re-converge from scan matching
// alone.

// ndtCheckpoint is the localizer's snapshot payload.
type ndtCheckpoint struct {
	pose         geom.Pose
	initialized  bool
	lastStamp    time.Duration
	lastIMUStamp time.Duration
	lastIMU      *msgs.IMU
	lastGNSS     *msgs.GNSS
}

// Snapshot returns a copy of the localizer's estimation state. Message
// payloads are immutable once published, so the cached IMU/GNSS
// pointers are shared rather than copied.
func (n *NDTMatching) Snapshot() any {
	return &ndtCheckpoint{
		pose:         n.pose,
		initialized:  n.initialized,
		lastStamp:    n.lastStamp,
		lastIMUStamp: n.lastIMUStamp,
		lastIMU:      n.lastIMU,
		lastGNSS:     n.lastGNSS,
	}
}

// Restore replaces the estimation state with a snapshot taken by
// Snapshot. A nil snapshot is a cold restart: the localizer becomes
// uninitialized and re-bootstraps from the next GNSS fix.
func (n *NDTMatching) Restore(snapshot any) {
	cp, ok := snapshot.(*ndtCheckpoint)
	if !ok || cp == nil {
		n.pose = geom.Pose{}
		n.initialized = false
		n.lastStamp = 0
		n.lastIMUStamp = 0
		n.lastIMU = nil
		n.lastGNSS = nil
		return
	}
	n.pose = cp.pose
	n.initialized = cp.initialized
	n.lastStamp = cp.lastStamp
	n.lastIMUStamp = cp.lastIMUStamp
	n.lastIMU = cp.lastIMU
	n.lastGNSS = cp.lastGNSS
}
