package localization

import (
	"errors"
	"math"

	"repro/internal/msgs"
)

// Validation errors are sentinels so validation allocates nothing on
// clean inputs.
var (
	// ErrNonFinitePose flags a NaN/Inf pose estimate.
	ErrNonFinitePose = errors.New("localization: pose is not finite")
	// ErrNonFiniteFix flags a NaN/Inf GNSS position or sigma.
	ErrNonFiniteFix = errors.New("localization: gnss fix is not finite")
	// ErrNonFiniteIMU flags a NaN/Inf inertial sample.
	ErrNonFiniteIMU = errors.New("localization: imu sample is not finite")
)

// ValidatePose rejects pose estimates with non-finite position, yaw or
// fitness. A NaN pose entering the NDT predict step would poison the
// matcher's seed and every downstream map-frame transform.
func ValidatePose(p *msgs.PoseStamped) error {
	if p == nil {
		return nil
	}
	if !finiteVal(p.Pose.Pos.X) || !finiteVal(p.Pose.Pos.Y) || !finiteVal(p.Pose.Pos.Z) ||
		!finiteVal(p.Pose.Yaw) || !finiteVal(p.Fitness) {
		return ErrNonFinitePose
	}
	return nil
}

// ValidateGNSS rejects fixes with non-finite position or negative /
// non-finite advertised accuracy.
func ValidateGNSS(g *msgs.GNSS) error {
	if g == nil {
		return nil
	}
	if !finiteVal(g.Fix.Pos.X) || !finiteVal(g.Fix.Pos.Y) || !finiteVal(g.Fix.Pos.Z) ||
		!finiteVal(g.Fix.Sigma) || g.Fix.Sigma < 0 {
		return ErrNonFiniteFix
	}
	return nil
}

// ValidateIMU rejects inertial samples with non-finite rate, speed or
// heading.
func ValidateIMU(m *msgs.IMU) error {
	if m == nil {
		return nil
	}
	if !finiteVal(m.Sample.YawRate) || !finiteVal(m.Sample.Speed) || !finiteVal(m.Sample.Yaw) {
		return ErrNonFiniteIMU
	}
	return nil
}

func finiteVal(f float64) bool {
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}
