// Package localization implements ndt_matching: scan-to-map alignment
// using the Normal Distributions Transform over the HD map's voxel
// Gaussians, with GNSS initialization and IMU-based motion prediction —
// the same structure as Autoware's localization pipeline.
package localization

import (
	"math"
	"time"

	"repro/internal/geom"
	"repro/internal/hdmap"
	"repro/internal/mathx"
	"repro/internal/msgs"
	"repro/internal/nodes/filters"
	"repro/internal/pointcloud"
	"repro/internal/ros"
	"repro/internal/work"
)

// Topic names owned by this package.
const (
	TopicGNSS        = "/gnss_pose"
	TopicIMU         = "/imu_raw"
	TopicCurrentPose = "/current_pose"
)

// Config parameterizes the matcher.
type Config struct {
	// MaxIterations bounds the Gauss-Newton loop.
	MaxIterations int
	// Epsilon is the convergence threshold on the update step norm.
	Epsilon float64
	// StepScale damps the Newton step.
	StepScale float64
	// OutlierMahalanobis rejects correspondences with squared
	// Mahalanobis distance beyond this value.
	OutlierMahalanobis float64
	QueueDepth         int
}

// DefaultConfig returns the stock configuration.
func DefaultConfig() Config {
	return Config{
		MaxIterations:      20,
		Epsilon:            1e-3,
		StepScale:          0.7,
		OutlierMahalanobis: 400,
		QueueDepth:         2,
	}
}

// NDTMatching is the ndt_matching node.
type NDTMatching struct {
	cfg Config
	m   *hdmap.Map

	pose         geom.Pose
	initialized  bool
	lastStamp    time.Duration
	lastIMUStamp time.Duration
	lastIMU      *msgs.IMU
	lastGNSS     *msgs.GNSS
	// Instrumentation for the work model and the µarch traces.
	lastIterations int
	lastMatched    int
	lastLookups    int

	// Gauss-Newton scratch reused across iterations and scans: the
	// gradient, the 3x3 Hessian approximation, and the voxel buffer.
	grad [3]float64
	hess *mathx.Mat
	vbuf []*pointcloud.VoxelStats
}

// New builds the node against a prebuilt HD map.
func New(cfg Config, m *hdmap.Map) *NDTMatching {
	if m == nil {
		panic("localization: nil map")
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 20
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1
	}
	return &NDTMatching{cfg: cfg, m: m}
}

// Name implements ros.Node.
func (n *NDTMatching) Name() string { return "ndt_matching" }

// Subscribes implements ros.Node.
func (n *NDTMatching) Subscribes() []ros.SubSpec {
	return []ros.SubSpec{
		{Topic: filters.TopicFilteredPoints, Depth: n.cfg.QueueDepth},
		{Topic: TopicGNSS, Depth: 1},
		// High-rate IMU samples queue while a scan alignment runs and
		// drain right after; a deeper queue avoids spurious drops.
		{Topic: TopicIMU, Depth: 10},
	}
}

// Pose returns the current estimate (valid after initialization).
func (n *NDTMatching) Pose() (geom.Pose, bool) { return n.pose, n.initialized }

// LastStats reports (iterations, matched points, voxel lookups) of the
// most recent alignment, for tests and the µarch trace generators.
func (n *NDTMatching) LastStats() (int, int, int) {
	return n.lastIterations, n.lastMatched, n.lastLookups
}

// Process implements ros.Node.
func (n *NDTMatching) Process(in *ros.Message, now time.Duration) ros.Result {
	switch payload := in.Payload.(type) {
	case *msgs.GNSS:
		n.lastGNSS = payload
		return ros.Result{Work: work.Work{IntOps: 200, LoadOps: 80, StoreOps: 40, BranchOps: 30, BytesTouched: 256}}
	case *msgs.IMU:
		// Continuous dead reckoning: the pose integrates on the IMU
		// stream itself, so it coasts through LiDAR gaps; scan matching
		// then corrects the accumulated drift.
		if n.initialized && n.lastIMUStamp > 0 {
			dt := (in.Header.Stamp - n.lastIMUStamp).Seconds()
			if dt > 0 && dt < 1 {
				tw := geom.Twist{Linear: payload.Sample.Speed, Angular: payload.Sample.YawRate}
				n.pose = tw.Integrate(n.pose, dt)
			}
		}
		n.lastIMUStamp = in.Header.Stamp
		n.lastIMU = payload
		return ros.Result{Work: work.Work{IntOps: 150, FPOps: 60, LoadOps: 60, StoreOps: 30, BranchOps: 20, BytesTouched: 192}}
	case *msgs.PointCloud:
		return n.match(in, payload)
	default:
		return ros.Result{}
	}
}

func (n *NDTMatching) match(in *ros.Message, pc *msgs.PointCloud) ros.Result {
	stamp := in.Header.Stamp
	// Bridge the gap between the last IMU sample and this scan's
	// capture time with the latest twist.
	if n.initialized && n.lastIMU != nil && n.lastIMUStamp > 0 {
		dt := (stamp - n.lastIMUStamp).Seconds()
		if dt > 0 && dt < 1 {
			tw := geom.Twist{Linear: n.lastIMU.Sample.Speed, Angular: n.lastIMU.Sample.YawRate}
			n.pose = tw.Integrate(n.pose, dt)
			n.lastIMUStamp = stamp
		}
	}
	n.lastStamp = stamp
	if !n.initialized {
		if n.lastGNSS == nil {
			// Nothing to anchor to yet.
			return ros.Result{Work: work.Work{IntOps: 500, LoadOps: 200, BranchOps: 100, BytesTouched: 1 << 10}}
		}
		n.pose = n.bootstrap(pc.Cloud)
		n.initialized = true
	}

	pose, fitness, iters, matched, lookups := n.align(pc.Cloud, n.pose)
	n.pose = pose
	n.lastIterations = iters
	n.lastMatched = matched
	n.lastLookups = lookups

	np := float64(pc.Cloud.Len())
	it := float64(iters)
	lk := float64(lookups)
	w := work.Work{
		// Per iteration per point: rigid transform (FP), voxel hash
		// lookup (int + loads over tree-like voxel records), gradient
		// and Hessian accumulation (FP heavy).
		FPOps:     it*np*95 + 400,
		IntOps:    lk*14 + it*np*12,
		LoadOps:   lk*9 + it*np*26,
		StoreOps:  it * np * 9,
		BranchOps: lk*4 + it*np*7,
		// PCL-style traversal touches scattered voxel records.
		BytesTouched: lk*96 + np*32,
	}
	return ros.Result{
		Outputs: []ros.Output{{
			Topic:   TopicCurrentPose,
			Payload: &msgs.PoseStamped{Pose: pose, Fitness: fitness, Iterations: iters},
			FrameID: "map",
		}},
		Work: w,
	}
}

// bootstrap searches a coarse position grid around the last GNSS fix
// (covering its meter-level uncertainty) crossed with candidate
// headings, and returns the best-scoring pose — the "GNSS indicates an
// initial position for the matching algorithm to start its search" step
// of the paper's localization description.
func (n *NDTMatching) bootstrap(cloud *pointcloud.Cloud) geom.Pose {
	anchor := geom.V3(n.lastGNSS.Fix.Pos.X, n.lastGNSS.Fix.Pos.Y, 0)
	span := math.Max(2, 1.5*n.lastGNSS.Fix.Sigma)
	best := geom.Pose{Pos: anchor}
	bestScore := math.Inf(-1)
	for dx := -span; dx <= span+1e-9; dx += 0.5 {
		for dy := -span; dy <= span+1e-9; dy += 0.5 {
			for k := 0; k < 16; k++ {
				yaw := 2 * math.Pi * float64(k) / 16
				pose := geom.Pose{Pos: anchor.Add(geom.V3(dx, dy, 0)), Yaw: yaw}
				score, _, _ := n.score(cloud, pose, 16)
				if score > bestScore {
					bestScore, best = score, pose
				}
			}
		}
	}
	return best
}

// score evaluates the NDT likelihood of the cloud at a pose, sampling
// every 'stride'-th point. Returns score, matched count, lookups.
func (n *NDTMatching) score(cloud *pointcloud.Cloud, pose geom.Pose, stride int) (float64, int, int) {
	if stride < 1 {
		stride = 1
	}
	score := 0.0
	matched, lookups := 0, 0
	var buf []*pointcloud.VoxelStats
	for i := 0; i < cloud.Len(); i += stride {
		wp := pose.Transform(cloud.Points[i].Pos)
		lookups += 7
		buf = n.m.Direct7(wp, buf[:0])
		hit := false
		for _, vs := range buf {
			d2 := vs.MahalanobisSq(wp)
			if d2 > n.cfg.OutlierMahalanobis {
				continue
			}
			w := 1.0
			if d2 > 9 {
				w = 9 / d2
			}
			score += w
			hit = true
		}
		if hit {
			matched++
		}
	}
	return score, matched, lookups
}

// align runs damped Gauss-Newton over (x, y, yaw), maximizing the sum
// of per-point Gaussian scores against the map voxels.
func (n *NDTMatching) align(cloud *pointcloud.Cloud, init geom.Pose) (pose geom.Pose, fitness float64, iters, matched, lookups int) {
	pose = init
	buf := n.vbuf
	defer func() { n.vbuf = buf }()
	if n.hess == nil {
		n.hess = mathx.NewMat(3, 3)
	}
	for iters = 1; iters <= n.cfg.MaxIterations; iters++ {
		g := n.grad[:]
		g[0], g[1], g[2] = 0, 0, 0
		h := n.hess // Gauss-Newton Hessian approximation
		for i := range h.Data {
			h.Data[i] = 0
		}
		sumD2, m, lk := 0.0, 0, 0 // fitness bookkeeping
		s, c := math.Sincos(pose.Yaw)
		for i := range cloud.Points {
			lp := cloud.Points[i].Pos
			wp := pose.Transform(lp)
			lk += 7
			buf = n.m.Direct7(wp, buf[:0])
			pointHit := false
			for _, vs := range buf {
				d := wp.Sub(vs.Mean)
				dv := [3]float64{d.X, d.Y, d.Z}
				// Sigma^-1 * d
				var sd [3]float64
				for r := 0; r < 3; r++ {
					sd[r] = vs.InvCov[r][0]*dv[0] + vs.InvCov[r][1]*dv[1] + vs.InvCov[r][2]*dv[2]
				}
				d2 := dv[0]*sd[0] + dv[1]*sd[1] + dv[2]*sd[2]
				if d2 > n.cfg.OutlierMahalanobis {
					continue
				}
				// Robust (Cauchy/IRLS) weight: quadratic near the
				// surface, 1/d2 in the tail, so displaced scans still
				// see a usable gradient. See DESIGN.md on robustified
				// NDT for the synthetic map.
				wgt := 1.0
				if d2 > 9 {
					wgt = 9 / d2
				}
				sumD2 += d2
				pointHit = true
				// Jacobian of the transformed point wrt (tx, ty, yaw).
				// d(wp)/dtx = (1,0,0); /dty = (0,1,0);
				// /dyaw = (-x sin - y cos, x cos - y sin, 0) local coords.
				jYawX := -lp.X*s - lp.Y*c
				jYawY := lp.X*c - lp.Y*s
				// J^T Sigma^-1 d  (rows: tx, ty, yaw)
				g[0] += wgt * sd[0]
				g[1] += wgt * sd[1]
				g[2] += wgt * (jYawX*sd[0] + jYawY*sd[1])
				// J^T Sigma^-1 J over columns e0, e1, jy.
				s00 := vs.InvCov[0][0]
				s01 := vs.InvCov[0][1]
				s11 := vs.InvCov[1][1]
				h.AddAt(0, 0, wgt*s00)
				h.AddAt(0, 1, wgt*s01)
				h.AddAt(1, 0, wgt*s01)
				h.AddAt(1, 1, wgt*s11)
				hy0 := jYawX*s00 + jYawY*s01
				hy1 := jYawX*s01 + jYawY*s11
				h.AddAt(0, 2, wgt*hy0)
				h.AddAt(2, 0, wgt*hy0)
				h.AddAt(1, 2, wgt*hy1)
				h.AddAt(2, 1, wgt*hy1)
				h.AddAt(2, 2, wgt*(jYawX*hy0+jYawY*hy1))
			}
			if pointHit {
				m++
			}
		}
		matched, lookups = m, lookups+lk
		if m < 10 {
			// Too little overlap with the map; hold the prediction.
			fitness = math.Inf(1)
			return pose, fitness, iters, matched, lookups
		}
		fitness = sumD2 / float64(m)
		// Solve H dx = -g (descend the negative log-likelihood).
		h.AddDiag(1e-6 + 0.01*h.At(0, 0)) // Levenberg damping
		step, err := h.SolveVec([]float64{-g[0], -g[1], -g[2]})
		if err != nil {
			return pose, fitness, iters, matched, lookups
		}
		dx := step[0] * n.cfg.StepScale
		dy := step[1] * n.cfg.StepScale
		dyaw := geom.Clamp(step[2]*n.cfg.StepScale, -0.2, 0.2)
		pose = geom.Pose{
			Pos: pose.Pos.Add(geom.V3(dx, dy, 0)),
			Yaw: geom.WrapAngle(pose.Yaw + dyaw),
		}
		if math.Sqrt(dx*dx+dy*dy)+math.Abs(dyaw) < n.cfg.Epsilon {
			return pose, fitness, iters, matched, lookups
		}
	}
	return pose, fitness, n.cfg.MaxIterations, matched, lookups
}
