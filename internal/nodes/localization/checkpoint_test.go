package localization

import (
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/msgs"
	"repro/internal/ros"
	"repro/internal/sensor"
)

// initialize bootstraps a node at the t=25s scan and returns its pose.
func initialize(t *testing.T, n *NDTMatching) geom.Pose {
	t.Helper()
	cloud, truth := filteredScanAt(t, 25)
	stamp := 25 * time.Second
	n.Process(&ros.Message{Payload: &msgs.GNSS{Fix: sensor.GNSSFix{
		Pos: truth.Pos.Add(geom.V3(1.5, -1, 0)),
	}}}, stamp)
	n.Process(&ros.Message{
		Header:  ros.Header{Stamp: stamp},
		Payload: &msgs.PointCloud{Cloud: cloud},
	}, stamp)
	pose, ok := n.Pose()
	if !ok {
		t.Fatal("node did not initialize")
	}
	return pose
}

func TestNDTCheckpointRoundTrip(t *testing.T) {
	n := newTestNode(t)
	pose := initialize(t, n)
	snap := n.Snapshot()

	// Mutate past the checkpoint: track the moving ego for two seconds
	// of scans so the estimate drives away from the checkpointed pose.
	for ts := 25.1; ts < 27; ts += 0.1 {
		cloud2, _ := filteredScanAt(t, ts)
		stamp2 := time.Duration(ts * float64(time.Second))
		n.Process(&ros.Message{
			Header:  ros.Header{Stamp: stamp2},
			Payload: &msgs.PointCloud{Cloud: cloud2},
		}, stamp2)
	}
	moved, _ := n.Pose()
	if moved.XY().Dist(pose.XY()) < 1 {
		t.Fatalf("pose did not move (%v -> %v); test is vacuous", pose.Pos, moved.Pos)
	}

	n.Restore(snap)
	got, ok := n.Pose()
	if !ok {
		t.Fatal("restore lost initialization")
	}
	if got.XY().Dist(pose.XY()) > 1e-12 {
		t.Errorf("restored pose %v, want %v", got.Pos, pose.Pos)
	}

	// The restored estimate keeps localizing: the next scan near the
	// checkpointed position re-converges from scan matching alone.
	cloud, truth := filteredScanAt(t, 25.1)
	res := n.Process(&ros.Message{
		Header:  ros.Header{Stamp: 25100 * time.Millisecond},
		Payload: &msgs.PointCloud{Cloud: cloud},
	}, 25100*time.Millisecond)
	if len(res.Outputs) != 1 {
		t.Fatalf("restored node produced no pose: %+v", res.Outputs)
	}
	final := res.Outputs[0].Payload.(*msgs.PoseStamped).Pose
	if final.XY().Dist(truth.XY()) > 2.5 {
		t.Errorf("post-restore pose error %.2f m", final.XY().Dist(truth.XY()))
	}
}

func TestNDTRestoreNilIsColdRestart(t *testing.T) {
	n := newTestNode(t)
	initialize(t, n)
	n.Restore(nil)
	if _, ok := n.Pose(); ok {
		t.Fatal("cold restart kept the pose estimate")
	}

	// Uninitialized again: a scan without GNSS produces nothing, then a
	// fresh GNSS fix re-bootstraps — the cold-restart recovery path.
	cloud, truth := filteredScanAt(t, 25)
	stamp := 25 * time.Second
	res := n.Process(&ros.Message{
		Header:  ros.Header{Stamp: stamp},
		Payload: &msgs.PointCloud{Cloud: cloud},
	}, stamp)
	if len(res.Outputs) != 0 {
		t.Error("cold-restarted node localized without re-bootstrapping")
	}
	n.Process(&ros.Message{Payload: &msgs.GNSS{Fix: sensor.GNSSFix{Pos: truth.Pos}}}, stamp)
	res = n.Process(&ros.Message{
		Header:  ros.Header{Stamp: stamp + 100*time.Millisecond},
		Payload: &msgs.PointCloud{Cloud: cloud},
	}, stamp+100*time.Millisecond)
	if len(res.Outputs) != 1 {
		t.Error("cold-restarted node failed to re-bootstrap from GNSS")
	}
}
