package platform

import (
	"math"
	"time"
)

// CPUConfig describes the simulated processor.
type CPUConfig struct {
	// Cores is the number of hardware threads tasks share.
	Cores int
	// EffectiveOpsPerSec is the per-core sustained architectural
	// operation rate used to turn Work op counts into seconds.
	EffectiveOpsPerSec float64
	// MemBandwidth is the socket memory bandwidth, bytes/second.
	// Concurrent tasks whose combined traffic exceeds it slow down —
	// the shared-resource contention of the paper's Finding 1.
	MemBandwidth float64
	// FIFO switches from processor-sharing to run-to-completion
	// scheduling: each task owns one core; excess tasks queue. Used by
	// the scheduling ablation bench.
	FIFO bool
}

// DefaultCPUConfig models the paper's testbed-class desktop part,
// with the core count folded down to the effective parallelism left
// for the stack once OS, ROS infrastructure and driver threads take
// their share.
func DefaultCPUConfig() CPUConfig {
	return CPUConfig{
		Cores:              3,
		EffectiveOpsPerSec: 1.55e9,
		MemBandwidth:       8.0e9,
	}
}

type cpuTask struct {
	id        uint64
	owner     string
	remaining float64 // seconds of single-core work left at full rate
	bwDemand  float64 // bytes/second the task streams when running full rate
	onDone    func()
}

// CPU simulates processor-sharing execution: all runnable tasks share
// the cores equally; when more tasks than cores are runnable, or when
// aggregate memory traffic saturates the socket, everyone slows down.
type CPU struct {
	cfg  CPUConfig
	sim  *Sim
	next uint64

	tasks      map[uint64]*cpuTask
	fifoQueue  []*cpuTask
	lastUpdate time.Duration
	rate       float64 // per-task progress rate currently in force
	eventGen   uint64  // invalidates stale completion events

	// busy accounting: core-seconds consumed per owner, and in total.
	busyByOwner map[string]float64
	busyTotal   float64
}

// NewCPU creates the processor bound to a simulation clock.
func NewCPU(cfg CPUConfig, sim *Sim) *CPU {
	if cfg.Cores <= 0 || cfg.EffectiveOpsPerSec <= 0 {
		panic("platform: invalid CPU config")
	}
	return &CPU{
		cfg:         cfg,
		sim:         sim,
		tasks:       make(map[uint64]*cpuTask),
		busyByOwner: make(map[string]float64),
		rate:        1,
		lastUpdate:  sim.Now(),
	}
}

// Config returns the processor configuration.
func (c *CPU) Config() CPUConfig { return c.cfg }

// Submit enqueues a task of the given single-core duration (seconds)
// with a streaming bandwidth demand; onDone fires at completion.
func (c *CPU) Submit(owner string, seconds, bwDemand float64, onDone func()) {
	if seconds <= 0 {
		seconds = 1e-9
	}
	c.advance()
	c.next++
	t := &cpuTask{
		id: c.next, owner: owner,
		remaining: seconds, bwDemand: bwDemand, onDone: onDone,
	}
	if c.cfg.FIFO {
		c.fifoQueue = append(c.fifoQueue, t)
		c.fifoAdmit()
		return
	}
	c.tasks[c.next] = t
	c.reschedule()
}

// fifoAdmit moves queued tasks onto free cores (FIFO mode only).
func (c *CPU) fifoAdmit() {
	moved := false
	for len(c.tasks) < c.cfg.Cores && len(c.fifoQueue) > 0 {
		t := c.fifoQueue[0]
		c.fifoQueue = c.fifoQueue[1:]
		c.tasks[t.id] = t
		moved = true
	}
	if moved || len(c.tasks) > 0 {
		c.reschedule()
	}
}

// advance applies progress to all tasks since the last update.
func (c *CPU) advance() {
	elapsed := (c.sim.Now() - c.lastUpdate).Seconds()
	c.lastUpdate = c.sim.Now()
	if elapsed <= 0 || len(c.tasks) == 0 {
		return
	}
	progress := elapsed * c.rate
	for _, t := range c.tasks {
		t.remaining -= progress
		c.busyByOwner[t.owner] += progress
		c.busyTotal += progress
	}
}

// currentRate computes the per-task progress rate for the present task
// set: the processor-sharing share (1 in FIFO mode, where admission
// control caps concurrency at the core count), further scaled when
// aggregate memory traffic exceeds the socket bandwidth.
func (c *CPU) currentRate() float64 {
	n := len(c.tasks)
	if n == 0 {
		return 1
	}
	share := math.Min(1, float64(c.cfg.Cores)/float64(n))
	demand := 0.0
	for _, t := range c.tasks {
		demand += t.bwDemand * share
	}
	if demand > c.cfg.MemBandwidth {
		share *= c.cfg.MemBandwidth / demand
	}
	return share
}

// reschedule recomputes the rate and schedules the next completion.
func (c *CPU) reschedule() {
	c.rate = c.currentRate()
	c.eventGen++
	if len(c.tasks) == 0 {
		return
	}
	minRem := math.Inf(1)
	for _, t := range c.tasks {
		if t.remaining < minRem {
			minRem = t.remaining
		}
	}
	if minRem < 0 {
		minRem = 0
	}
	wait := time.Duration(minRem / c.rate * float64(time.Second))
	gen := c.eventGen
	c.sim.After(wait+1, func() { c.completionCheck(gen) })
}

// completionCheck fires completed tasks; stale generations are ignored.
func (c *CPU) completionCheck(gen uint64) {
	if gen != c.eventGen {
		return
	}
	c.advance()
	const eps = 1e-12
	var done []*cpuTask
	for id, t := range c.tasks {
		if t.remaining <= eps {
			done = append(done, t)
			delete(c.tasks, id)
		}
	}
	// Deterministic completion order by task id.
	for i := 0; i < len(done); i++ {
		for j := i + 1; j < len(done); j++ {
			if done[j].id < done[i].id {
				done[i], done[j] = done[j], done[i]
			}
		}
	}
	if c.cfg.FIFO {
		c.fifoAdmit()
	} else {
		c.reschedule()
	}
	for _, t := range done {
		t.onDone()
	}
}

// Runnable returns the number of in-flight tasks.
func (c *CPU) Runnable() int { return len(c.tasks) }

// BusyTotal returns total core-seconds consumed so far.
func (c *CPU) BusyTotal() float64 {
	c.advance()
	return c.busyTotal
}

// BusyByOwner returns core-seconds consumed per owner (a live map
// snapshot; callers must not mutate it).
func (c *CPU) BusyByOwner() map[string]float64 {
	c.advance()
	return c.busyByOwner
}

// SecondsFor converts a Work op volume to single-core seconds.
func (c *CPU) SecondsFor(ops float64) float64 {
	return ops / c.cfg.EffectiveOpsPerSec
}
