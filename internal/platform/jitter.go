package platform

import "repro/internal/mathx"

// JitterConfig models operating-system noise on task durations:
// scheduler ticks, page faults, interrupts — the irreducible
// variability the paper's latency distributions carry even for
// fixed-size inputs.
type JitterConfig struct {
	// RelSigma is the relative half-normal spread applied to every task.
	RelSigma float64
	// SpikeProb is the chance of a preemption spike per task.
	SpikeProb float64
	// SpikeMean is the mean added delay of a spike, seconds.
	SpikeMean float64
	Seed      uint64
}

// DefaultJitterConfig returns a mild desktop-Linux-like noise profile.
func DefaultJitterConfig() JitterConfig {
	return JitterConfig{
		RelSigma:  0.015,
		SpikeProb: 0.02,
		SpikeMean: 0.006,
		Seed:      0x0511CE,
	}
}

// Jitter is the noise source. One instance per executor; draws are
// deterministic in dispatch order.
type Jitter struct {
	cfg JitterConfig
	rng *mathx.RNG
}

// NewJitter builds the source.
func NewJitter(cfg JitterConfig) *Jitter {
	return &Jitter{cfg: cfg, rng: mathx.NewRNG(cfg.Seed)}
}

// Apply perturbs a task duration (seconds) and returns the noisy value.
func (j *Jitter) Apply(seconds float64) float64 {
	if j == nil {
		return seconds
	}
	n := j.rng.Norm()
	if n < 0 {
		n = -n
	}
	out := seconds * (1 + j.cfg.RelSigma*n)
	if j.cfg.SpikeProb > 0 && j.rng.Bool(j.cfg.SpikeProb) {
		out += j.rng.Exp(j.cfg.SpikeMean)
	}
	return out
}
