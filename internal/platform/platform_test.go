package platform

import (
	"math"
	"testing"
	"time"

	"repro/internal/msgs"
	"repro/internal/pointcloud"
	"repro/internal/ros"
	"repro/internal/work"
)

// pcNew builds a cloud of n zero points for payload-size tests.
func pcNew(n int) *pointcloud.Cloud {
	c := pointcloud.New(n)
	for i := 0; i < n; i++ {
		c.Append(pointcloud.Point{})
	}
	return c
}

func TestSimOrdering(t *testing.T) {
	s := NewSim()
	var got []int
	s.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	s.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	s.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	// Equal times preserve scheduling order.
	s.Schedule(20*time.Millisecond, func() { got = append(got, 4) })
	n := s.Run(time.Second)
	if n != 4 {
		t.Fatalf("processed %d", n)
	}
	want := []int{1, 2, 4, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v", got)
		}
	}
	if s.Now() != time.Second {
		t.Errorf("now = %v", s.Now())
	}
}

func TestSimHorizonStopsEarly(t *testing.T) {
	s := NewSim()
	fired := false
	s.Schedule(2*time.Second, func() { fired = true })
	s.Run(time.Second)
	if fired {
		t.Error("event beyond horizon fired")
	}
	if s.Pending() != 1 {
		t.Errorf("pending = %d", s.Pending())
	}
	s.Run(3 * time.Second)
	if !fired {
		t.Error("event did not fire on extended run")
	}
}

func TestSimScheduleInPastClamps(t *testing.T) {
	s := NewSim()
	s.Schedule(time.Second, func() {
		s.Schedule(0, func() {}) // in the past; must clamp, not hang
	})
	s.Run(2 * time.Second)
}

func TestCPUSingleTaskDuration(t *testing.T) {
	s := NewSim()
	c := NewCPU(DefaultCPUConfig(), s)
	var doneAt time.Duration
	c.Submit("a", 0.05, 0, func() { doneAt = s.Now() })
	s.Run(time.Second)
	if math.Abs(doneAt.Seconds()-0.05) > 1e-6 {
		t.Errorf("single task finished at %v", doneAt)
	}
	if math.Abs(c.BusyTotal()-0.05) > 1e-6 {
		t.Errorf("busy total = %v", c.BusyTotal())
	}
}

func TestCPUProcessorSharing(t *testing.T) {
	cfg := DefaultCPUConfig()
	cfg.Cores = 1
	s := NewSim()
	c := NewCPU(cfg, s)
	var aDone, bDone time.Duration
	// Two equal 100ms tasks on one core: both finish at ~200ms under PS.
	c.Submit("a", 0.1, 0, func() { aDone = s.Now() })
	c.Submit("b", 0.1, 0, func() { bDone = s.Now() })
	s.Run(time.Second)
	if math.Abs(aDone.Seconds()-0.2) > 1e-3 || math.Abs(bDone.Seconds()-0.2) > 1e-3 {
		t.Errorf("PS finish times: %v, %v (want ~200ms both)", aDone, bDone)
	}
}

func TestCPUNoContentionBelowCoreCount(t *testing.T) {
	cfg := DefaultCPUConfig()
	cfg.Cores = 4
	s := NewSim()
	c := NewCPU(cfg, s)
	var done [3]time.Duration
	for i := 0; i < 3; i++ {
		i := i
		c.Submit("n", 0.1, 0, func() { done[i] = s.Now() })
	}
	s.Run(time.Second)
	for i, d := range done {
		if math.Abs(d.Seconds()-0.1) > 1e-3 {
			t.Errorf("task %d finished at %v despite free cores", i, d)
		}
	}
}

func TestCPUMemoryBandwidthInterference(t *testing.T) {
	cfg := DefaultCPUConfig()
	cfg.Cores = 8
	cfg.MemBandwidth = 1e9
	s := NewSim()
	c := NewCPU(cfg, s)
	var aDone time.Duration
	// Two tasks each demanding the full socket bandwidth: both slow ~2x
	// even though cores are free.
	c.Submit("a", 0.1, 1e9, func() { aDone = s.Now() })
	c.Submit("b", 0.1, 1e9, func() {})
	s.Run(time.Second)
	if aDone.Seconds() < 0.19 {
		t.Errorf("bandwidth-bound task finished at %v, want ~0.2s", aDone)
	}
}

func TestCPUStaggeredArrival(t *testing.T) {
	cfg := DefaultCPUConfig()
	cfg.Cores = 1
	s := NewSim()
	c := NewCPU(cfg, s)
	var aDone time.Duration
	c.Submit("a", 0.1, 0, func() { aDone = s.Now() })
	// Second task arrives at 50ms; from then on, both progress at half
	// speed. a has 50ms left -> finishes at 150ms.
	s.Schedule(50*time.Millisecond, func() {
		c.Submit("b", 0.1, 0, func() {})
	})
	s.Run(time.Second)
	if math.Abs(aDone.Seconds()-0.15) > 2e-3 {
		t.Errorf("staggered PS: a done at %v, want ~150ms", aDone)
	}
}

func TestGPUFIFO(t *testing.T) {
	s := NewSim()
	g := NewGPU(DefaultGPUConfig(), s)
	k := work.GPUKernel{FMAs: 4.4e10, Efficiency: 1} // 10ms at peak
	d1 := g.Submit("a", []work.GPUKernel{k})
	d2 := g.Submit("b", []work.GPUKernel{k})
	if d2 <= d1 {
		t.Errorf("FIFO ordering: %v then %v", d1, d2)
	}
	// Second waits for first: roughly double.
	if math.Abs(d2.Seconds()-2*d1.Seconds()) > 1e-3 {
		t.Errorf("queueing: d1=%v d2=%v", d1, d2)
	}
	if g.QueueWait() <= 0 {
		t.Error("queue wait not recorded")
	}
}

func TestGPUKernelDurationRoofline(t *testing.T) {
	s := NewSim()
	g := NewGPU(DefaultGPUConfig(), s)
	computeBound := work.GPUKernel{FMAs: 4.4e10, Bytes: 1, Efficiency: 1}
	memBound := work.GPUKernel{FMAs: 1, Bytes: 3.2e10, Efficiency: 1}
	dc := g.KernelDuration(computeBound).Seconds()
	dm := g.KernelDuration(memBound).Seconds()
	if math.Abs(dc-0.01) > 1e-3 {
		t.Errorf("compute-bound duration = %v", dc)
	}
	if math.Abs(dm-0.1) > 1e-2 {
		t.Errorf("memory-bound duration = %v", dm)
	}
	// Low efficiency stretches duration.
	slow := work.GPUKernel{FMAs: 4.4e10, Efficiency: 0.1}
	if g.KernelDuration(slow).Seconds() < 9*dc {
		t.Error("efficiency scaling missing")
	}
}

func TestGPUEnergyAccounting(t *testing.T) {
	s := NewSim()
	g := NewGPU(DefaultGPUConfig(), s)
	g.Submit("a", []work.GPUKernel{{FMAs: 4.4e10, Efficiency: 1}})
	if g.DynEnergy() <= 0 {
		t.Error("no dynamic energy recorded")
	}
	if g.BusyByOwner()["a"] <= 0 {
		t.Error("owner busy accounting missing")
	}
}

// echoNode processes any input into one output after fixed work.
type echoNode struct {
	name    string
	in, out string
	ops     float64
	kernels []work.GPUKernel
	count   int
}

func (n *echoNode) Name() string { return n.name }
func (n *echoNode) Subscribes() []ros.SubSpec {
	return []ros.SubSpec{{Topic: n.in, Depth: 2}}
}
func (n *echoNode) Process(in *ros.Message, _ time.Duration) ros.Result {
	n.count++
	return ros.Result{
		Outputs: []ros.Output{{Topic: n.out, Payload: in.Payload}},
		Work:    work.Work{IntOps: n.ops, Kernels: n.kernels},
	}
}

func newTestExecutor() (*Executor, *Sim) {
	sim := NewSim()
	cpu := NewCPU(DefaultCPUConfig(), sim)
	gpu := NewGPU(DefaultGPUConfig(), sim)
	bus := ros.NewBus()
	ex := NewExecutor(sim, cpu, gpu, bus, nil) // no jitter: deterministic timing tests
	return ex, sim
}

func TestExecutorPipelineLatency(t *testing.T) {
	ex, sim := newTestExecutor()
	a := &echoNode{name: "a", in: "/in", out: "/mid", ops: 1.55e7} // 10ms
	b := &echoNode{name: "b", in: "/mid", out: "/out", ops: 1.55e7}
	ex.AddNode(a, NodeOptions{})
	ex.AddNode(b, NodeOptions{})

	var done []DoneInfo
	ex.OnDone = func(d DoneInfo) { done = append(done, d) }

	sim.Schedule(0, func() { ex.Publish("/in", "payload") })
	sim.Run(time.Second)

	if a.count != 1 || b.count != 1 {
		t.Fatalf("counts a=%d b=%d", a.count, b.count)
	}
	if len(done) != 2 {
		t.Fatalf("done callbacks = %d", len(done))
	}
	// Node a: ~10ms of work after ~40µs comm.
	la := (done[0].Finished - done[0].Arrived).Seconds()
	if math.Abs(la-0.010) > 1e-3 {
		t.Errorf("node a latency = %v", la)
	}
	// End of pipeline: ~20ms + 2 comm delays.
	lb := done[1].Finished.Seconds()
	if lb < 0.020 || lb > 0.023 {
		t.Errorf("pipeline finish = %v", lb)
	}
}

func TestExecutorLineagePropagates(t *testing.T) {
	ex, sim := newTestExecutor()
	a := &echoNode{name: "a", in: "/in", out: "/out", ops: 1e6}
	ex.AddNode(a, NodeOptions{})
	var lastOrigins []ros.Origin
	ex.OnPublish = func(topic string, h ros.Header) {
		if topic == "/out" {
			lastOrigins = h.Origins
		}
	}
	sim.Schedule(0, func() { ex.Publish("/in", 1) })
	sim.Run(time.Second)
	if len(lastOrigins) != 1 || lastOrigins[0].Topic != "/in" {
		t.Fatalf("origins = %+v", lastOrigins)
	}
	if lastOrigins[0].Stamp != 0 {
		t.Errorf("origin stamp = %v", lastOrigins[0].Stamp)
	}
}

func TestExecutorQueueDropsUnderOverload(t *testing.T) {
	ex, sim := newTestExecutor()
	// Node takes 100ms per input; inputs arrive every 10ms; depth 2.
	slow := &echoNode{name: "slow", in: "/in", out: "/out", ops: 1.55e8}
	ex.AddNode(slow, NodeOptions{})
	for i := 0; i < 20; i++ {
		at := time.Duration(i) * 10 * time.Millisecond
		sim.Schedule(at, func() { ex.Publish("/in", 1) })
	}
	sim.Run(3 * time.Second)
	reports := ex.Bus.DropReports()
	if len(reports) != 1 {
		t.Fatalf("reports = %+v", reports)
	}
	if reports[0].Dropped == 0 {
		t.Error("overloaded queue should drop")
	}
	if slow.count >= 20 {
		t.Errorf("all messages processed despite overload: %d", slow.count)
	}
}

func TestExecutorContentionStretchesLatency(t *testing.T) {
	// One core: two nodes fed simultaneously must interfere.
	sim := NewSim()
	cfg := DefaultCPUConfig()
	cfg.Cores = 1
	cpu := NewCPU(cfg, sim)
	gpu := NewGPU(DefaultGPUConfig(), sim)
	ex := NewExecutor(sim, cpu, gpu, ros.NewBus(), nil)
	a := &echoNode{name: "a", in: "/ia", out: "/oa", ops: 1.55e7 * 5} // 50ms alone
	b := &echoNode{name: "b", in: "/ib", out: "/ob", ops: 1.55e7 * 5}
	ex.AddNode(a, NodeOptions{})
	ex.AddNode(b, NodeOptions{})
	var finishes []time.Duration
	ex.OnDone = func(d DoneInfo) { finishes = append(finishes, d.Finished) }
	sim.Schedule(0, func() {
		ex.Publish("/ia", 1)
		ex.Publish("/ib", 1)
	})
	sim.Run(time.Second)
	if len(finishes) != 2 {
		t.Fatalf("finishes = %v", finishes)
	}
	last := finishes[1].Seconds()
	if last < 0.095 {
		t.Errorf("contended pair finished at %v, want ~100ms", last)
	}
}

func TestExecutorGPUPhaseSerializedAcrossNodes(t *testing.T) {
	ex, sim := newTestExecutor()
	k := work.GPUKernel{FMAs: 4.4e10 * 3, Efficiency: 1} // 30ms
	a := &echoNode{name: "a", in: "/ia", out: "/oa", ops: 1e6, kernels: []work.GPUKernel{k}}
	b := &echoNode{name: "b", in: "/ib", out: "/ob", ops: 1e6, kernels: []work.GPUKernel{k}}
	ex.AddNode(a, NodeOptions{})
	ex.AddNode(b, NodeOptions{})
	var finishes []time.Duration
	ex.OnDone = func(d DoneInfo) { finishes = append(finishes, d.Finished) }
	sim.Schedule(0, func() {
		ex.Publish("/ia", 1)
		ex.Publish("/ib", 1)
	})
	sim.Run(time.Second)
	if len(finishes) != 2 {
		t.Fatalf("finishes = %v", finishes)
	}
	// Second node's kernels queue behind the first's: ~60ms.
	if finishes[1].Seconds() < 0.058 {
		t.Errorf("GPU queueing absent: second finish %v", finishes[1])
	}
}

func TestExecutorCostScale(t *testing.T) {
	ex, sim := newTestExecutor()
	a := &echoNode{name: "a", in: "/in", out: "/out", ops: 1.55e6} // 1ms at scale 1
	ex.AddNode(a, NodeOptions{CostScale: 10})
	var fin time.Duration
	ex.OnDone = func(d DoneInfo) { fin = d.Finished }
	sim.Schedule(0, func() { ex.Publish("/in", 1) })
	sim.Run(time.Second)
	if fin.Seconds() < 0.010 {
		t.Errorf("cost scale ignored: finish %v", fin)
	}
}

func TestExecutorDuplicateNodePanics(t *testing.T) {
	ex, _ := newTestExecutor()
	ex.AddNode(&echoNode{name: "x", in: "/i", out: "/o"}, NodeOptions{})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	ex.AddNode(&echoNode{name: "x", in: "/i", out: "/o"}, NodeOptions{})
}

func TestJitterNonNegativeAndBounded(t *testing.T) {
	j := NewJitter(DefaultJitterConfig())
	base := 0.01
	var maxV float64
	for i := 0; i < 10000; i++ {
		v := j.Apply(base)
		if v < base {
			t.Fatalf("jitter shrank the task: %v < %v", v, base)
		}
		if v > maxV {
			maxV = v
		}
	}
	// Spikes must exist but stay sane.
	if maxV <= base*1.05 {
		t.Error("no spikes observed")
	}
	if maxV > base+1 {
		t.Errorf("spike too large: %v", maxV)
	}
	// Nil jitter passes through.
	var nilJ *Jitter
	if nilJ.Apply(0.5) != 0.5 {
		t.Error("nil jitter should be identity")
	}
}

// twoInputNode subscribes to two topics and records processing order.
type twoInputNode struct {
	order []string
}

func (n *twoInputNode) Name() string { return "two" }
func (n *twoInputNode) Subscribes() []ros.SubSpec {
	return []ros.SubSpec{{Topic: "/a", Depth: 4}, {Topic: "/b", Depth: 4}}
}
func (n *twoInputNode) Process(in *ros.Message, _ time.Duration) ros.Result {
	n.order = append(n.order, in.Topic)
	return ros.Result{Work: work.Work{IntOps: 1.55e6}} // 1ms
}

func TestExecutorProcessesOldestStampFirst(t *testing.T) {
	ex, sim := newTestExecutor()
	n := &twoInputNode{}
	ex.AddNode(n, NodeOptions{})
	// /b published first, then /a: while the node is busy with /b,
	// both queues fill; on completion the older (/a at 1ms) vs (/b at
	// 2ms) must drain in stamp order.
	sim.Schedule(0, func() { ex.Publish("/b", 1) })
	sim.Schedule(time.Millisecond, func() { ex.Publish("/a", 1) })
	sim.Schedule(2*time.Millisecond, func() { ex.Publish("/b", 1) })
	sim.Run(time.Second)
	want := []string{"/b", "/a", "/b"}
	if len(n.order) != 3 {
		t.Fatalf("order = %v", n.order)
	}
	for i := range want {
		if n.order[i] != want[i] {
			t.Fatalf("order = %v, want %v", n.order, want)
		}
	}
}

func TestExecutorCommDelayScalesWithPayload(t *testing.T) {
	ex, _ := newTestExecutor()
	small := ex.commDelay("tiny")
	big := ex.commDelay(&msgs.OccupancyGrid{Data: make([]int8, 1<<20)})
	if big <= small {
		t.Errorf("large payload should take longer: %v vs %v", big, small)
	}
	// 1 MiB at 8 GB/s is ~131 µs + fixed 40 µs.
	if big < 150*time.Microsecond || big > 250*time.Microsecond {
		t.Errorf("1 MiB delay = %v", big)
	}
}

func TestPayloadBytesCoversAllTypes(t *testing.T) {
	cases := []any{
		&msgs.PointCloud{Cloud: pcNew(10)},
		&msgs.DetectedObjectArray{Objects: make([]msgs.DetectedObject, 3)},
		&msgs.OccupancyGrid{Data: make([]int8, 100)},
		&msgs.LaneArray{Lanes: []msgs.Lane{{Waypoints: make([]msgs.Waypoint, 5)}}},
		"fallback",
	}
	for _, c := range cases {
		if PayloadBytes(c) <= 0 {
			t.Errorf("payload bytes for %T = %v", c, PayloadBytes(c))
		}
	}
}
