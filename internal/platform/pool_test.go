package platform

import (
	"testing"
	"time"

	"repro/internal/ros"
	"repro/internal/work"
)

// relayNode forwards each input to an output topic; sinkNode consumes.
// Both report a little work so callbacks occupy nonzero virtual time.
type relayNode struct{}

func (relayNode) Name() string              { return "relay" }
func (relayNode) Subscribes() []ros.SubSpec { return []ros.SubSpec{{Topic: "/in", Depth: 2}} }
func (relayNode) Process(in *ros.Message, now time.Duration) ros.Result {
	return ros.Result{
		Outputs: []ros.Output{{Topic: "/mid", Payload: in.Payload}},
		Work:    work.Work{IntOps: 1000},
	}
}

type sinkNode struct{}

func (sinkNode) Name() string              { return "sink" }
func (sinkNode) Subscribes() []ros.SubSpec { return []ros.SubSpec{{Topic: "/mid", Depth: 1}} }
func (sinkNode) Process(in *ros.Message, now time.Duration) ros.Result {
	return ros.Result{Work: work.Work{IntOps: 1000}}
}

// TestExecutorPoolDrainsToZero runs a finite burst through a two-node
// chain and lets the simulation drain completely. With no events left,
// no callback can be holding a reference and every queue is empty after
// the nodes consumed or evicted their backlog — so the pool ledger must
// close at exactly zero. This is the end-to-end proof that every
// executor path (dispatch, eviction, publication of node outputs,
// callback completion) returns its references.
func TestExecutorPoolDrainsToZero(t *testing.T) {
	sim := NewSim()
	ex := NewExecutor(sim,
		NewCPU(DefaultCPUConfig(), sim),
		NewGPU(DefaultGPUConfig(), sim),
		ros.NewBus(), nil)
	ex.AddNode(relayNode{}, NodeOptions{})
	ex.AddNode(sinkNode{}, NodeOptions{})

	// A burst faster than the relay drains its depth-2 queue forces
	// drop-oldest evictions alongside normal consumption.
	const frames = 40
	for i := 0; i < frames; i++ {
		i := i
		sim.After(time.Duration(i)*100*time.Microsecond, func() {
			ex.Publish("/in", i)
		})
	}
	sim.Run(10 * time.Second)

	if p := sim.Pending(); p != 0 {
		t.Fatalf("simulation did not drain: %d events pending", p)
	}
	ps := ex.Bus.PoolStats()
	if ps.Live != 0 || ps.LiveRefs != 0 {
		t.Fatalf("pool did not close to zero after drain: %+v", ps)
	}
	if ps.Acquired < frames {
		t.Fatalf("acquired %d envelopes, want at least %d sensor frames", ps.Acquired, frames)
	}
	if got := ex.Bus.QueuedMessages(); got != 0 {
		t.Fatalf("queued = %d after drain", got)
	}
}
