// Package platform is the discrete-event hardware model the stack runs
// on: a multicore CPU with processor-sharing scheduling and memory-
// bandwidth interference, a FIFO GPU, an OS-jitter model, and the
// executor that binds ROS nodes to them. Node algorithms run for real;
// only *time* is simulated — which is what lets the reproduction
// deterministically exhibit the contention, queueing and tail-latency
// phenomena the paper measures on real hardware.
package platform

import (
	"container/heap"
	"time"
)

// Event is a scheduled callback.
type event struct {
	at  time.Duration
	seq uint64 // tie-break for determinism
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Sim is the deterministic event loop. All times are virtual.
type Sim struct {
	now    time.Duration
	events eventHeap
	seq    uint64
}

// NewSim creates an empty simulation at time zero.
func NewSim() *Sim {
	s := &Sim{}
	heap.Init(&s.events)
	return s
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Schedule runs fn at the given virtual time (clamped to now).
func (s *Sim) Schedule(at time.Duration, fn func()) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	heap.Push(&s.events, &event{at: at, seq: s.seq, fn: fn})
}

// After schedules fn delay after now.
func (s *Sim) After(delay time.Duration, fn func()) {
	s.Schedule(s.now+delay, fn)
}

// Run processes events until the horizon (inclusive) or until the queue
// drains. It returns the number of events processed.
func (s *Sim) Run(until time.Duration) int {
	n := 0
	for s.events.Len() > 0 {
		e := s.events[0]
		if e.at > until {
			break
		}
		heap.Pop(&s.events)
		s.now = e.at
		e.fn()
		n++
	}
	if s.now < until {
		s.now = until
	}
	return n
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return s.events.Len() }
