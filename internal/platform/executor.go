package platform

import (
	"fmt"
	"time"

	"repro/internal/msgs"
	"repro/internal/ros"
	"repro/internal/work"
)

// NodeOptions tune how the executor runs one node.
type NodeOptions struct {
	// CostScale multiplies the node's CPU work before conversion to
	// time. It calibrates each Go implementation's op counts to the
	// per-node costs of the C++/PCL/CUDA originals (see DESIGN.md);
	// per-frame *variation* still comes entirely from the real
	// scene-dependent work the node reports.
	CostScale float64
}

type nodeRuntime struct {
	node      ros.Node
	subs      []*ros.Subscription
	busy      bool
	costScale float64
}

// DoneInfo describes one completed node callback for observers.
type DoneInfo struct {
	Node string
	// Input is the message that triggered the callback. Borrowed: valid
	// only for the duration of the OnDone call.
	Input *ros.Message
	// Arrived is when the input reached the node's queue.
	Arrived time.Duration
	// Started is when the callback began executing.
	Started time.Duration
	// CPUDone is when the host phase finished.
	CPUDone time.Duration
	// Finished is when outputs were ready (after GPU phases).
	Finished time.Duration
	// Work is the callback's reported cost.
	Work work.Work
	// Outputs is how many messages the callback published.
	Outputs int
	// Published lists the topics the callback published on, in output
	// order — the forward half of lineage chaining: an output published
	// at Finished on Published[i] is the parent of whichever callback
	// later consumes it (see trace.ChainLog).
	Published []string
	// FusedInputs lists previously cached messages whose origins were
	// merged into the outputs' lineage (fusion's latest-input caches).
	// Borrowed: valid only for the duration of the OnDone call.
	FusedInputs []*ros.Message
}

// SchedPolicy is the decision surface of the deadline scheduler
// (internal/sched). When Executor.Sched is non-nil the FIFO
// registration-order dispatch is replaced by a global earliest-deadline
// pick with criticality tie-breaks; a nil policy keeps the seed
// dispatch byte-identical.
type SchedPolicy interface {
	// Priority returns the node's criticality (higher = more critical);
	// it breaks ties between candidates with equal deadlines.
	Priority(node string) float64
	// NodeShedBudget returns the per-node deadline-shedding budget. A
	// zero return falls back to the executor's global ShedBudget.
	NodeShedBudget(node string) time.Duration
	// MaxInflight caps how many callbacks may be CPU-resident at once
	// (0 = uncapped). The cap applies at admission; a callback releases
	// its slot at the CPU/GPU pipeline boundary (the preemption point),
	// so a GPU-phase node does not hold back CPU work.
	MaxInflight() int
}

// Executor binds ROS nodes to the simulated platform: it pulls messages
// from subscription queues, charges each callback's Work to the CPU and
// GPU models, and publishes outputs with transport delay once the
// virtual execution completes.
type Executor struct {
	Sim    *Sim
	CPU    *CPU
	GPU    *GPU
	Bus    *ros.Bus
	Jitter *Jitter

	// CommBandwidth models intra-host message transport, bytes/second.
	CommBandwidth float64
	// CommLatency is the fixed per-message transport cost.
	CommLatency time.Duration

	runtimes map[string]*nodeRuntime
	order    []string // registration order for deterministic dispatch

	// OnDone observes completed callbacks (latency tracing).
	OnDone func(DoneInfo)
	// OnPublish observes every publication (end-to-end path tracing).
	OnPublish func(topic string, m ros.Header)

	// PublishFilter, when set, adjudicates every publication before it
	// is delivered — the fault-injection point for message drops, extra
	// transport delay, sensor timing jitter, payload corruption, stamp
	// skew and frame duplication. It runs at the publish instant (before
	// the transport delay is scheduled) and sees the payload so
	// corruption faults can substitute a mutated copy.
	PublishFilter func(topic string, payload any, now time.Duration) PublishVerdict
	// IngressFilter, when set, adjudicates every arrival at the bus
	// boundary — after transport, before the message enters any
	// subscriber queue. It is the input-integrity guard point: a
	// quarantine verdict diverts the frame so it is never enqueued and
	// never dispatched (see internal/guard).
	IngressFilter func(topic string, stamp time.Duration, payload any, now time.Duration) IngressVerdict
	// OnQuarantine observes frames diverted by the ingress filter.
	OnQuarantine func(topic, cause string, stamp time.Duration)
	// CallbackFilter, when set, adjudicates every callback dispatch —
	// the fault-injection point for node stalls and crash windows. It
	// runs after the input message is dequeued.
	CallbackFilter func(node string, m *ros.Message, now time.Duration) CallbackVerdict
	// OnCallbackDrop observes inputs consumed by a crash verdict.
	OnCallbackDrop func(node string, m *ros.Message)

	// ShedBudget, when positive, enables deadline-aware load shedding:
	// at dispatch, a frame whose earliest sensor origin is already more
	// than the budget old is consumed without running the callback —
	// it could not meet the end-to-end deadline anyway, and processing
	// it would only drag the tail further (COLA-style shedding). Shed
	// counts surface per topic in the bus's TopicStats.
	ShedBudget time.Duration
	// OnShed observes frames consumed by the deadline shedder.
	OnShed func(node string, m *ros.Message)

	// Sched, when non-nil, enables the deadline scheduler: dispatch
	// picks the ready (node, message) candidate with the earliest
	// origin-stamp deadline across the whole graph, breaking ties by
	// the policy's criticality priorities and then registration order.
	// Nil keeps the seed FIFO registration-order dispatch, byte for
	// byte. See internal/sched.
	Sched SchedPolicy
	// inflight counts CPU-resident callbacks under the scheduler's
	// admission cap. A slot is taken when a callback's CPU phase is
	// submitted and released when that phase completes — the CPU/GPU
	// pipeline boundary — so GPU offload never blocks CPU admission.
	inflight int
}

// PublishVerdict is a fault-layer decision about one publication.
type PublishVerdict struct {
	// Drop suppresses the publication entirely: no subscriber sees it.
	Drop bool
	// Delay is extra transport delay added on top of the comm model.
	Delay time.Duration
	// Payload, when non-nil, replaces the published payload — the
	// corruption faults substitute a mutated copy here, never touching
	// the original (other subscribers and replay buffers may hold it).
	Payload any
	// StampSkew offsets the message stamp (and the matching self-origin
	// of sensor publications) — a corrupted sensor clock. Negative skew
	// rewinds the stamp.
	StampSkew time.Duration
	// Copies delivers this many extra identical frames (same stamp,
	// same payload) right after the original — a duplicating driver.
	Copies int
}

// IngressVerdict is an integrity-layer decision about one arrival.
type IngressVerdict struct {
	// Quarantine diverts the frame: it is counted per topic
	// (TopicStats.Quarantined) but never enqueued or dispatched.
	Quarantine bool
	// Cause names why the frame was rejected (see internal/guard).
	Cause string
}

// CallbackVerdict is a fault-layer decision about one callback dispatch.
type CallbackVerdict struct {
	// Drop consumes the input without running the callback — a crashed
	// (restarting) node losing the messages delivered while it is down.
	Drop bool
	// Stall blocks the node for this long before the callback executes,
	// holding it busy without consuming CPU — a hung I/O or lock wait.
	Stall time.Duration
}

// NewExecutor assembles an executor over fresh platform components.
func NewExecutor(sim *Sim, cpu *CPU, gpu *GPU, bus *ros.Bus, jit *Jitter) *Executor {
	return &Executor{
		Sim: sim, CPU: cpu, GPU: gpu, Bus: bus, Jitter: jit,
		CommBandwidth: 8e9,
		CommLatency:   40 * time.Microsecond,
		runtimes:      make(map[string]*nodeRuntime),
	}
}

// AddNode registers a node and its subscriptions.
func (e *Executor) AddNode(n ros.Node, opts NodeOptions) {
	if _, dup := e.runtimes[n.Name()]; dup {
		panic(fmt.Sprintf("platform: duplicate node %q", n.Name()))
	}
	scale := opts.CostScale
	if scale <= 0 {
		scale = 1
	}
	rt := &nodeRuntime{node: n, costScale: scale}
	for _, spec := range n.Subscribes() {
		rt.subs = append(rt.subs, e.Bus.Subscribe(n.Name(), spec))
	}
	e.runtimes[n.Name()] = rt
	e.order = append(e.order, n.Name())
}

// commDelay models message transport for a payload.
func (e *Executor) commDelay(payload any) time.Duration {
	return e.CommLatency + time.Duration(PayloadBytes(payload)/e.CommBandwidth*float64(time.Second))
}

// PayloadBytes estimates the serialized size of a payload, for the
// transport-delay model and topic bandwidth accounting.
func PayloadBytes(payload any) float64 {
	switch p := payload.(type) {
	case *msgs.PointCloud:
		return float64(p.Cloud.Len())*26 + 64
	case *msgs.CameraImage:
		return float64(len(p.Frame.Image.Pix))*4 + 128
	case *msgs.DetectedObjectArray:
		n := 0
		for _, o := range p.Objects {
			n += 320 + 16*len(o.Hull) + 16*len(o.PredictedPath)
		}
		return float64(n) + 64
	case *msgs.OccupancyGrid:
		return float64(len(p.Data)) + 96
	case *msgs.LaneArray:
		n := 0
		for _, l := range p.Lanes {
			n += 48 + 32*len(l.Waypoints)
		}
		return float64(n) + 64
	default:
		return 256
	}
}

// Publish injects a message from outside the node graph (a sensor
// driver): it is stamped now, carries itself as origin, and reaches
// subscriber queues after the transport delay.
func (e *Executor) Publish(topic string, payload any) {
	stamp := e.Sim.Now()
	origins := []ros.Origin{{Topic: topic, Stamp: stamp}}
	e.deliver(topic, stamp, payload, origins)
}

// deliver performs the delayed enqueue + dispatch for one publication.
func (e *Executor) deliver(topic string, stamp time.Duration, payload any, origins []ros.Origin) {
	delay := e.commDelay(payload)
	copies := 0
	if e.PublishFilter != nil {
		v := e.PublishFilter(topic, payload, e.Sim.Now())
		if v.Drop {
			return
		}
		delay += v.Delay
		if v.Payload != nil {
			payload = v.Payload
		}
		if v.StampSkew != 0 {
			stamp += v.StampSkew
			origins = skewSelfOrigin(origins, topic, stamp)
		}
		copies = v.Copies
	}
	e.Sim.After(delay, func() {
		delivered := e.enqueue(topic, stamp, payload, origins)
		for i := 0; i < copies; i++ {
			if e.enqueue(topic, stamp, payload, origins) {
				delivered = true
			}
		}
		if delivered {
			e.dispatchSubscribers(topic)
		}
	})
}

// skewSelfOrigin rewrites the origin entry of the publication's own
// topic to the skewed stamp: a sensor whose clock skews stamps its
// lineage with the same bogus time, which is exactly the corruption the
// guard's time sanitization (and the trace layer's non-monotonic-origin
// clamping) must survive.
func skewSelfOrigin(origins []ros.Origin, topic string, stamp time.Duration) []ros.Origin {
	out := make([]ros.Origin, len(origins))
	copy(out, origins)
	for i := range out {
		if out[i].Topic == topic {
			out[i].Stamp = stamp
		}
	}
	return out
}

// enqueue materializes the arrival as a pooled envelope, runs the
// ingress integrity filter on it and, on accept, publishes it into the
// subscriber queues. It reports whether the frame was delivered (false
// when quarantined). A quarantined frame never reaches a queue: its
// envelope is released straight back to the pool.
func (e *Executor) enqueue(topic string, stamp time.Duration, payload any, origins []ros.Origin) bool {
	m := e.Bus.NewMessage(topic, stamp, payload, origins)
	if e.IngressFilter != nil {
		v := e.IngressFilter(topic, stamp, payload, e.Sim.Now())
		if v.Quarantine {
			e.Bus.RecordQuarantine(topic)
			if e.OnQuarantine != nil {
				e.OnQuarantine(topic, v.Cause, stamp)
			}
			m.Release()
			return false
		}
	}
	e.Bus.PublishMessage(m)
	if e.OnPublish != nil {
		e.OnPublish(topic, ros.Header{Stamp: e.Sim.Now(), Origins: origins})
	}
	return true
}

// dispatchSubscribers pokes every idle node subscribed to the topic.
func (e *Executor) dispatchSubscribers(topic string) {
	if e.Sched != nil {
		e.schedDispatch()
		return
	}
	for _, name := range e.order {
		rt := e.runtimes[name]
		for _, sub := range rt.subs {
			if sub.Topic == topic {
				e.tryDispatch(rt)
				break
			}
		}
	}
}

// deadlineOf returns a message's scheduling key: the oldest sensor
// origin stamp (every path shares the same end-to-end budget, so
// earliest origin = earliest absolute deadline). Messages without
// lineage fall back to their publish stamp.
func deadlineOf(m *ros.Message) time.Duration {
	if len(m.Header.Origins) == 0 {
		return m.Header.Stamp
	}
	oldest := m.Header.Origins[0].Stamp
	for _, o := range m.Header.Origins[1:] {
		if o.Stamp < oldest {
			oldest = o.Stamp
		}
	}
	return oldest
}

// schedDispatch runs the deadline scheduler's admission loop: while the
// inflight cap has room, pick the ready (node, message) candidate with
// the earliest deadline — criticality, then registration order, break
// ties — and start it. Shed and crash-drop verdicts consume the input
// without taking a slot, so the loop re-picks until a callback starts
// or no candidate remains. Every decision reads only virtual-time
// state, keeping dispatch order bit-identical across host worker counts.
func (e *Executor) schedDispatch() {
	for {
		if cap := e.Sched.MaxInflight(); cap > 0 && e.inflight >= cap {
			return
		}
		rt, sub := e.pickReady()
		if rt == nil {
			return
		}
		// Progress is guaranteed: every iteration either consumes the
		// picked message (run, shed, drop) or marks the node busy
		// (stall), and pickReady skips busy nodes.
		e.startScheduled(rt, sub)
	}
}

// pickReady scans idle nodes and returns the candidate with the
// earliest deadline. Ties fall to the higher-criticality node, then to
// registration order (the seed dispatch order), so the pick is total
// and deterministic.
func (e *Executor) pickReady() (*nodeRuntime, *ros.Subscription) {
	var bestRT *nodeRuntime
	var bestSub *ros.Subscription
	var bestDeadline time.Duration
	var bestPrio float64
	for _, name := range e.order {
		rt := e.runtimes[name]
		if rt.busy {
			continue
		}
		for _, sub := range rt.subs {
			m := sub.Queue.Peek()
			if m == nil {
				continue
			}
			d := deadlineOf(m)
			if bestRT == nil || d < bestDeadline {
				bestRT, bestSub, bestDeadline = rt, sub, d
				bestPrio = e.Sched.Priority(name)
				continue
			}
			if d == bestDeadline {
				if p := e.Sched.Priority(name); p > bestPrio {
					bestRT, bestSub, bestPrio = rt, sub, p
				}
			}
		}
	}
	return bestRT, bestSub
}

// startScheduled pops the chosen input and runs the shed check (per-node
// budget, falling back to the global one), the callback filter, and the
// callback itself. Shed and drop verdicts consume the input and leave
// the node idle; a stall marks it busy until the callback runs.
func (e *Executor) startScheduled(rt *nodeRuntime, sub *ros.Subscription) {
	msg := sub.Queue.Pop()
	budget := e.Sched.NodeShedBudget(rt.node.Name())
	if budget <= 0 {
		budget = e.ShedBudget
	}
	if budget > 0 && e.overBudget(msg, budget) {
		e.Bus.RecordShed(msg.Topic)
		if e.OnShed != nil {
			e.OnShed(rt.node.Name(), msg)
		}
		msg.Release()
		return
	}
	if e.CallbackFilter != nil {
		v := e.CallbackFilter(rt.node.Name(), msg, e.Sim.Now())
		if v.Drop {
			if e.OnCallbackDrop != nil {
				e.OnCallbackDrop(rt.node.Name(), msg)
			}
			msg.Release()
			return
		}
		if v.Stall > 0 {
			rt.busy = true
			e.Sim.After(v.Stall, func() { e.runCallback(rt, msg) })
			return
		}
	}
	rt.busy = true
	e.runCallback(rt, msg)
}

// tryDispatch starts the next callback on an idle node with input.
func (e *Executor) tryDispatch(rt *nodeRuntime) {
	if rt.busy {
		return
	}
	// Oldest message across the node's queues (by publish stamp).
	var bestSub *ros.Subscription
	for _, sub := range rt.subs {
		m := sub.Queue.Peek()
		if m == nil {
			continue
		}
		if bestSub == nil || m.Header.Stamp < bestSub.Queue.Peek().Header.Stamp {
			bestSub = sub
		}
	}
	if bestSub == nil {
		return
	}
	// Pop transfers the queue's reference on the message to us; every
	// path below must end in exactly one Release — here for shed and
	// crash-drop verdicts, in completeCallback once a callback ran.
	msg := bestSub.Queue.Pop()
	if e.ShedBudget > 0 && e.overBudget(msg, e.ShedBudget) {
		e.Bus.RecordShed(msg.Topic)
		if e.OnShed != nil {
			e.OnShed(rt.node.Name(), msg)
		}
		msg.Release()
		e.tryDispatch(rt) // the next queued input, if any
		return
	}
	if e.CallbackFilter != nil {
		v := e.CallbackFilter(rt.node.Name(), msg, e.Sim.Now())
		if v.Drop {
			if e.OnCallbackDrop != nil {
				e.OnCallbackDrop(rt.node.Name(), msg)
			}
			msg.Release()
			e.tryDispatch(rt) // the next queued input, if any
			return
		}
		if v.Stall > 0 {
			rt.busy = true
			e.Sim.After(v.Stall, func() { e.runCallback(rt, msg) })
			return
		}
	}
	rt.busy = true
	e.runCallback(rt, msg)
}

// overBudget reports whether a message's oldest sensor origin already
// exceeds the given shedding budget. Messages without origin lineage
// are never shed.
func (e *Executor) overBudget(m *ros.Message, budget time.Duration) bool {
	now := e.Sim.Now()
	for _, o := range m.Header.Origins {
		if now-o.Stamp > budget {
			return true
		}
	}
	return false
}

// runCallback executes one callback on a node already marked busy.
func (e *Executor) runCallback(rt *nodeRuntime, msg *ros.Message) {
	started := e.Sim.Now()

	// The real computation happens now (node state mutates in dispatch
	// order, which is execution order); its virtual cost is charged to
	// the platform and outputs are withheld until the virtual finish.
	res := rt.node.Process(msg, started)

	cpuSeconds := e.CPU.SecondsFor(res.Work.CPUOps()) * rt.costScale
	if e.Jitter != nil {
		cpuSeconds = e.Jitter.Apply(cpuSeconds)
	}
	bwDemand := 0.0
	if cpuSeconds > 0 {
		bwDemand = res.Work.BytesTouched * rt.costScale / cpuSeconds
	}
	if e.Sched != nil {
		e.inflight++
	}
	e.CPU.Submit(rt.node.Name(), cpuSeconds, bwDemand, func() {
		cpuDone := e.Sim.Now()
		finish := cpuDone
		if len(res.Work.Kernels) > 0 {
			finish = e.GPU.Submit(rt.node.Name(), res.Work.Kernels)
		}
		e.Sim.Schedule(finish, func() {
			e.completeCallback(rt, msg, started, cpuDone, res)
		})
		if e.Sched != nil {
			// Preemption point: the CPU phase is over, so the admission
			// slot frees here even though the node stays busy through
			// its GPU phase — the next-most-urgent callback's CPU work
			// overlaps this node's offload.
			e.inflight--
			e.schedDispatch()
		}
	})
}

func (e *Executor) completeCallback(rt *nodeRuntime, msg *ros.Message, started, cpuDone time.Duration, res ros.Result) {
	now := e.Sim.Now()
	// Publish outputs with merged lineage.
	lineage := append([]*ros.Message{msg}, res.FusedInputs...)
	origins := ros.MergeOrigins(lineage...)
	for _, out := range res.Outputs {
		e.deliver(out.Topic, now, out.Payload, origins)
	}
	if e.OnDone != nil {
		var published []string
		if len(res.Outputs) > 0 {
			published = make([]string, len(res.Outputs))
			for i, out := range res.Outputs {
				published[i] = out.Topic
			}
		}
		e.OnDone(DoneInfo{
			Node:        rt.node.Name(),
			Input:       msg,
			Arrived:     msg.Header.Stamp,
			Started:     started,
			CPUDone:     cpuDone,
			Finished:    now,
			Work:        res.Work,
			Outputs:     len(res.Outputs),
			Published:   published,
			FusedInputs: res.FusedInputs,
		})
	}
	rt.busy = false
	// The callback (and its observers) are done with the input; return
	// our reference. A node that cached the message (fusion's last-good
	// buffers) holds its own retained reference past this point.
	msg.Release()
	if e.Sched != nil {
		e.schedDispatch()
		return
	}
	e.tryDispatch(rt)
}

// NodeNames returns registered node names in registration order.
func (e *Executor) NodeNames() []string {
	out := make([]string, len(e.order))
	copy(out, e.order)
	return out
}
