package platform

import (
	"testing"
	"time"

	"repro/internal/work"
)

func TestGPUMultiChannelOverlaps(t *testing.T) {
	cfg := DefaultGPUConfig()
	cfg.Channels = 2
	sim := NewSim()
	g := NewGPU(cfg, sim)
	k := work.GPUKernel{FMAs: 4.4e10, Efficiency: 1} // 10ms
	d1 := g.Submit("a", []work.GPUKernel{k})
	d2 := g.Submit("b", []work.GPUKernel{k})
	// Two channels: both finish at ~10ms.
	if d2 > d1+time.Millisecond {
		t.Errorf("two-channel submissions should overlap: %v, %v", d1, d2)
	}
	// Third kernel queues behind the earlier channel.
	d3 := g.Submit("c", []work.GPUKernel{k})
	if d3 < d1+9*time.Millisecond {
		t.Errorf("third kernel should queue: %v", d3)
	}
	if g.BusyUntil() != d3 {
		t.Errorf("BusyUntil = %v, want %v", g.BusyUntil(), d3)
	}
}

func TestCPUFIFORunToCompletion(t *testing.T) {
	cfg := DefaultCPUConfig()
	cfg.Cores = 1
	cfg.FIFO = true
	sim := NewSim()
	c := NewCPU(cfg, sim)
	var aDone, bDone time.Duration
	c.Submit("a", 0.1, 0, func() { aDone = sim.Now() })
	c.Submit("b", 0.1, 0, func() { bDone = sim.Now() })
	sim.Run(time.Second)
	// FIFO: a finishes at 100ms (not stretched), b at 200ms.
	if aDone > 101*time.Millisecond {
		t.Errorf("FIFO first task done at %v, want ~100ms", aDone)
	}
	if bDone < 199*time.Millisecond {
		t.Errorf("FIFO second task done at %v, want ~200ms", bDone)
	}
}

func TestCPUFIFOAdmitsUpToCores(t *testing.T) {
	cfg := DefaultCPUConfig()
	cfg.Cores = 2
	cfg.FIFO = true
	sim := NewSim()
	c := NewCPU(cfg, sim)
	var done [3]time.Duration
	for i := 0; i < 3; i++ {
		i := i
		c.Submit("n", 0.1, 0, func() { done[i] = sim.Now() })
	}
	sim.Run(time.Second)
	// First two run concurrently (~100ms); third queues (~200ms).
	if done[0] > 101*time.Millisecond || done[1] > 101*time.Millisecond {
		t.Errorf("first two should finish at ~100ms: %v, %v", done[0], done[1])
	}
	if done[2] < 199*time.Millisecond {
		t.Errorf("third should queue: %v", done[2])
	}
}
