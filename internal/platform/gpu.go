package platform

import (
	"math"
	"time"

	"repro/internal/work"
)

// GPUConfig describes the simulated accelerator.
type GPUConfig struct {
	// PeakFMAs is the peak fused-multiply-add rate, FMA/second.
	PeakFMAs float64
	// MemBandwidth is the device memory bandwidth, bytes/second.
	MemBandwidth float64
	// LaunchOverhead is the fixed host+driver cost per kernel.
	LaunchOverhead time.Duration
	// IdlePower and MaxDynPower parameterize the power model:
	// P = IdlePower while idle; while a kernel runs,
	// P = IdlePower + MaxDynPower * (0.25 + 0.75*efficiency).
	IdlePower   float64
	MaxDynPower float64
	// Channels is the number of concurrently executing kernel queues
	// (1 = the CUDA default-stream FIFO the profiled stack uses; >1
	// models multi-stream/MPS overlap for the ablation benches).
	Channels int
}

// DefaultGPUConfig models a high-end discrete part of the paper's era
// (GTX 1080-class: ~8.9 TFLOP/s, ~320 GB/s).
func DefaultGPUConfig() GPUConfig {
	return GPUConfig{
		PeakFMAs:       4.4e12,
		MemBandwidth:   3.2e11,
		LaunchOverhead: 12 * time.Microsecond,
		IdlePower:      25,
		MaxDynPower:    390,
	}
}

// GPU is a FIFO, non-preemptive kernel queue — the execution model of
// the CUDA default stream the profiled detectors use.
type GPU struct {
	cfg       GPUConfig
	sim       *Sim
	busyUntil []time.Duration

	busyByOwner map[string]float64 // busy seconds per owner
	busyTotal   float64
	// dynEnergy integrates kernel dynamic power over time (joules,
	// excluding idle power which the sampler adds analytically).
	dynEnergy float64
	// queueWait accumulates time kernels spent waiting behind others.
	queueWait float64
}

// NewGPU creates the device bound to a simulation clock.
func NewGPU(cfg GPUConfig, sim *Sim) *GPU {
	if cfg.PeakFMAs <= 0 || cfg.MemBandwidth <= 0 {
		panic("platform: invalid GPU config")
	}
	ch := cfg.Channels
	if ch < 1 {
		ch = 1
	}
	return &GPU{
		cfg: cfg, sim: sim,
		busyUntil:   make([]time.Duration, ch),
		busyByOwner: make(map[string]float64),
	}
}

// Config returns the device configuration.
func (g *GPU) Config() GPUConfig { return g.cfg }

// KernelDuration returns the modeled execution time of one kernel.
func (g *GPU) KernelDuration(k work.GPUKernel) time.Duration {
	eff := k.Efficiency
	if eff <= 0 {
		eff = 1
	}
	compute := k.FMAs / (g.cfg.PeakFMAs * eff)
	memory := k.Bytes / (g.cfg.MemBandwidth * eff)
	return g.cfg.LaunchOverhead + time.Duration(math.Max(compute, memory)*float64(time.Second))
}

// Submit enqueues the kernel chain at the current time and returns the
// virtual completion time. The chain runs back to back after whatever
// is already queued.
func (g *GPU) Submit(owner string, kernels []work.GPUKernel) time.Duration {
	// Pick the channel that drains first.
	ch := 0
	for i := 1; i < len(g.busyUntil); i++ {
		if g.busyUntil[i] < g.busyUntil[ch] {
			ch = i
		}
	}
	start := g.sim.Now()
	if g.busyUntil[ch] > start {
		g.queueWait += (g.busyUntil[ch] - start).Seconds()
		start = g.busyUntil[ch]
	}
	t := start
	for _, k := range kernels {
		d := g.KernelDuration(k)
		eff := k.Efficiency
		if eff <= 0 {
			eff = 1
		}
		sec := d.Seconds()
		g.busyByOwner[owner] += sec
		g.busyTotal += sec
		g.dynEnergy += sec * g.cfg.MaxDynPower * (0.25 + 0.75*eff)
		t += d
	}
	g.busyUntil[ch] = t
	return t
}

// BusyTotal returns total busy seconds so far.
func (g *GPU) BusyTotal() float64 { return g.busyTotal }

// BusyByOwner returns busy seconds per owner (live snapshot; callers
// must not mutate).
func (g *GPU) BusyByOwner() map[string]float64 { return g.busyByOwner }

// DynEnergy returns the integrated dynamic energy in joules.
func (g *GPU) DynEnergy() float64 { return g.dynEnergy }

// QueueWait returns total seconds kernels waited behind other kernels.
func (g *GPU) QueueWait() float64 { return g.queueWait }

// BusyUntil returns the time the device drains all channels.
func (g *GPU) BusyUntil() time.Duration {
	var max time.Duration
	for _, b := range g.busyUntil {
		if b > max {
			max = b
		}
	}
	return max
}
