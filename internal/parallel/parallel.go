// Package parallel provides the host-parallelism substrate the
// reproduction engine runs on: a bounded worker pool with deterministic
// by-index result collection, and fixed-shard decomposition helpers for
// the per-frame hot loops.
//
// Two invariants keep host parallelism invisible to the simulated
// platform (see DESIGN.md, "Host parallelism vs. simulated time"):
//
//  1. Results are always collected by index, never by completion
//     order, so concurrent execution cannot reorder anything an
//     experiment renders.
//  2. Work decomposition is a function of the *input size only* (fixed
//     shard sizes), never of the worker count, so a reduction computes
//     the same floating-point operation tree whether it runs on one
//     goroutine or sixteen.
//
// The worker budget is a process-wide knob (SetMaxWorkers, wired to the
// -workers flag of cmd/characterize and cmd/avsim); it bounds how many
// OS threads the engine saturates but never changes a reported number.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

var maxWorkers atomic.Int64

func init() {
	maxWorkers.Store(int64(runtime.NumCPU()))
}

// SetMaxWorkers bounds the number of goroutines any parallel loop in
// this package may use. n < 1 resets to runtime.NumCPU(). It only
// affects wall-clock speed: every result is bit-identical under any
// setting.
func SetMaxWorkers(n int) {
	if n < 1 {
		n = runtime.NumCPU()
	}
	maxWorkers.Store(int64(n))
}

// MaxWorkers returns the current worker budget.
func MaxWorkers() int { return int(maxWorkers.Load()) }

// Run executes fn(i) for every i in [0, n) across at most
// min(MaxWorkers, n) goroutines. Indices are claimed atomically, so
// each runs exactly once; fn instances for different indices must be
// independent (write disjoint state). Falls back to a plain loop when
// the budget or n is 1.
func Run(n int, fn func(int)) { RunLimit(n, MaxWorkers(), fn) }

// RunLimit is Run with an explicit worker bound (further capped by
// MaxWorkers and n).
func RunLimit(n, workers int, fn func(int)) {
	if n <= 0 {
		return
	}
	if m := MaxWorkers(); workers > m {
		workers = m
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Map runs fn over [0, n) concurrently and returns the results in index
// order — completion order never leaks into the output.
func Map[T any](n int, fn func(int) T) []T {
	return MapLimit(n, MaxWorkers(), fn)
}

// MapLimit is Map with an explicit worker bound.
func MapLimit[T any](n, workers int, fn func(int) T) []T {
	out := make([]T, n)
	RunLimit(n, workers, func(i int) { out[i] = fn(i) })
	return out
}

// FirstError runs n error-returning tasks concurrently and returns the
// lowest-indexed non-nil error (deterministic regardless of which task
// failed first in wall-clock time), or nil.
func FirstError(n, workers int, fn func(int) error) error {
	errs := MapLimit(n, workers, fn)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Shards returns the number of fixed-size shards covering n items.
// The count depends only on n and shardSize — never on the worker
// budget — so sharded reductions are reproducible across machines.
func Shards(n, shardSize int) int {
	if n <= 0 {
		return 0
	}
	if shardSize <= 0 {
		return 1
	}
	return (n + shardSize - 1) / shardSize
}

// ShardRange returns the half-open item range [lo, hi) of shard s.
func ShardRange(s, shardSize, n int) (lo, hi int) {
	lo = s * shardSize
	hi = lo + shardSize
	if hi > n {
		hi = n
	}
	return lo, hi
}
