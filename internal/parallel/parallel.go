// Package parallel provides the host-parallelism substrate the
// reproduction engine runs on: a bounded worker pool with deterministic
// by-index result collection, and fixed-shard decomposition helpers for
// the per-frame hot loops.
//
// Two invariants keep host parallelism invisible to the simulated
// platform (see DESIGN.md, "Host parallelism vs. simulated time"):
//
//  1. Results are always collected by index, never by completion
//     order, so concurrent execution cannot reorder anything an
//     experiment renders.
//  2. Work decomposition is a function of the *input size only* (fixed
//     shard sizes), never of the worker count, so a reduction computes
//     the same floating-point operation tree whether it runs on one
//     goroutine or sixteen.
//
// The worker budget is a process-wide knob (SetMaxWorkers, wired to the
// -workers flag of cmd/characterize and cmd/avsim); it bounds how many
// OS threads the engine saturates but never changes a reported number.
package parallel

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError is a task panic captured by the pool: the panicking task's
// index, the recovered value, and the goroutine stack at the panic
// site. Loops re-raise it in the *calling* goroutine (where a recover
// can actually catch it — a panic left to escape a worker goroutine
// kills the whole process), and error-returning task runners surface it
// as the task's error.
type PanicError struct {
	// Index is the task index that panicked.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: task %d panicked: %v", e.Index, e.Value)
}

// safeCall runs fn(i), converting a panic into a *PanicError.
func safeCall(i int, fn func(int)) (err *PanicError) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Index: i, Value: v, Stack: debug.Stack()}
		}
	}()
	fn(i)
	return nil
}

var maxWorkers atomic.Int64

func init() {
	maxWorkers.Store(int64(runtime.NumCPU()))
}

// SetMaxWorkers bounds the number of goroutines any parallel loop in
// this package may use. n < 1 resets to runtime.NumCPU(). It only
// affects wall-clock speed: every result is bit-identical under any
// setting.
func SetMaxWorkers(n int) {
	if n < 1 {
		n = runtime.NumCPU()
	}
	maxWorkers.Store(int64(n))
}

// MaxWorkers returns the current worker budget.
func MaxWorkers() int { return int(maxWorkers.Load()) }

// Run executes fn(i) for every i in [0, n) across at most
// min(MaxWorkers, n) goroutines. Indices are claimed atomically, so
// each runs exactly once; fn instances for different indices must be
// independent (write disjoint state). Falls back to a plain loop when
// the budget or n is 1.
func Run(n int, fn func(int)) { RunLimit(n, MaxWorkers(), fn) }

// RunLimit is Run with an explicit worker bound (further capped by
// MaxWorkers and n).
//
// A panicking task no longer kills the process from inside a worker
// goroutine: every panic is captured, the remaining indices still run,
// and after the loop drains the lowest-indexed capture is re-raised as
// a *PanicError in the calling goroutine — deterministic regardless of
// wall-clock completion order, and recoverable by the caller (the fleet
// service's per-vehicle isolation depends on this). Callers that want
// panics as plain per-task errors use Tasks or FirstError instead.
func RunLimit(n, workers int, fn func(int)) {
	if n <= 0 {
		return
	}
	if m := MaxWorkers(); workers > m {
		workers = m
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		// Same contract as the concurrent path: every index runs, the
		// first capture re-raises after the loop.
		var first *PanicError
		for i := 0; i < n; i++ {
			if pe := safeCall(i, fn); pe != nil && first == nil {
				first = pe
			}
		}
		if first != nil {
			panic(first)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var mu sync.Mutex
	var first *PanicError
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if pe := safeCall(i, fn); pe != nil {
					mu.Lock()
					if first == nil || pe.Index < first.Index {
						first = pe
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if first != nil {
		panic(first)
	}
}

// Map runs fn over [0, n) concurrently and returns the results in index
// order — completion order never leaks into the output.
func Map[T any](n int, fn func(int) T) []T {
	return MapLimit(n, MaxWorkers(), fn)
}

// MapLimit is Map with an explicit worker bound.
func MapLimit[T any](n, workers int, fn func(int) T) []T {
	out := make([]T, n)
	RunLimit(n, workers, func(i int) { out[i] = fn(i) })
	return out
}

// Tasks runs n error-returning tasks concurrently and returns one
// error slot per task, in index order. A task that panics fills its
// slot with a *PanicError (stack included) instead of unwinding the
// pool: one corrupt task among healthy ones costs exactly its own
// result, never the process.
func Tasks(n, workers int, fn func(int) error) []error {
	return MapLimit(n, workers, func(i int) error {
		var err error
		if pe := safeCall(i, func(i int) { err = fn(i) }); pe != nil {
			return pe
		}
		return err
	})
}

// FirstError runs n error-returning tasks concurrently and returns the
// lowest-indexed non-nil error (deterministic regardless of which task
// failed first in wall-clock time), or nil. Panicking tasks surface as
// *PanicError like any other failure.
func FirstError(n, workers int, fn func(int) error) error {
	for _, err := range Tasks(n, workers, fn) {
		if err != nil {
			return err
		}
	}
	return nil
}

// Shards returns the number of fixed-size shards covering n items.
// The count depends only on n and shardSize — never on the worker
// budget — so sharded reductions are reproducible across machines.
func Shards(n, shardSize int) int {
	if n <= 0 {
		return 0
	}
	if shardSize <= 0 {
		return 1
	}
	return (n + shardSize - 1) / shardSize
}

// ShardRange returns the half-open item range [lo, hi) of shard s.
func ShardRange(s, shardSize, n int) (lo, hi int) {
	lo = s * shardSize
	hi = lo + shardSize
	if hi > n {
		hi = n
	}
	return lo, hi
}
