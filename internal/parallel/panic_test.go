package parallel

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestTasksCapturesPanicAmongHealthyTasks is the pool-survival
// regression: one panicking task submitted among healthy ones must cost
// exactly its own slot — every other task completes, the process
// survives, and the capture carries the panic value and a stack.
func TestTasksCapturesPanicAmongHealthyTasks(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran atomic.Int32
		errs := Tasks(8, workers, func(i int) error {
			if i == 3 {
				panic("corrupt scenario")
			}
			ran.Add(1)
			if i == 5 {
				return errors.New("plain failure")
			}
			return nil
		})
		if got := ran.Load(); got != 7 {
			t.Fatalf("workers=%d: %d healthy tasks ran, want 7", workers, got)
		}
		var pe *PanicError
		if !errors.As(errs[3], &pe) {
			t.Fatalf("workers=%d: errs[3] = %v, want *PanicError", workers, errs[3])
		}
		if pe.Index != 3 || pe.Value != "corrupt scenario" {
			t.Fatalf("capture = index %d value %v", pe.Index, pe.Value)
		}
		if !strings.Contains(string(pe.Stack), "panic_test.go") {
			t.Fatal("captured stack does not name the panic site")
		}
		if errs[5] == nil || errs[5].Error() != "plain failure" {
			t.Fatalf("errs[5] = %v, want the plain failure", errs[5])
		}
		for _, i := range []int{0, 1, 2, 4, 6, 7} {
			if errs[i] != nil {
				t.Fatalf("healthy task %d got error %v", i, errs[i])
			}
		}
	}
}

// TestFirstErrorSurfacesPanicDeterministically pins that a panic loses
// to a lower-indexed plain error and wins over higher-indexed ones.
func TestFirstErrorSurfacesPanicDeterministically(t *testing.T) {
	err := FirstError(10, 4, func(i int) error {
		if i == 2 {
			panic("boom")
		}
		if i == 6 {
			return errors.New("later")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 2 {
		t.Fatalf("FirstError = %v, want *PanicError at index 2", err)
	}
}

// TestRunLimitReraisesInCaller pins the loop contract: the panic is
// re-raised in the calling goroutine (recoverable), carries the
// lowest task index, and every other index still runs.
func TestRunLimitReraisesInCaller(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran atomic.Int32
		func() {
			defer func() {
				v := recover()
				pe, ok := v.(*PanicError)
				if !ok {
					t.Fatalf("workers=%d: recovered %v, want *PanicError", workers, v)
				}
				if pe.Index != 1 {
					t.Fatalf("workers=%d: panic index %d, want lowest (1)", workers, pe.Index)
				}
			}()
			RunLimit(6, workers, func(i int) {
				if i == 1 || i == 4 {
					panic(i)
				}
				ran.Add(1)
			})
			t.Fatalf("workers=%d: RunLimit returned without panicking", workers)
		}()
		if got := ran.Load(); got != 4 {
			t.Fatalf("workers=%d: %d healthy indices ran, want 4", workers, got)
		}
	}
}

// TestPoolSurvivesPanickingTask submits a panicking task among healthy
// ones to a live pool: the panic arrives as that task's error, the
// workers stay up for later submissions, and the panic counter ticks.
func TestPoolSurvivesPanickingTask(t *testing.T) {
	p := NewPool(2, 8)
	defer p.Close()

	var dones []<-chan error
	for i := 0; i < 4; i++ {
		i := i
		done, err := p.Submit(func() error {
			if i == 1 {
				panic("vehicle corrupted")
			}
			return nil
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		dones = append(dones, done)
	}
	for i, done := range dones {
		err := <-done
		if i == 1 {
			var pe *PanicError
			if !errors.As(err, &pe) || pe.Value != "vehicle corrupted" {
				t.Fatalf("task 1 error = %v, want captured panic", err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("healthy task %d: %v", i, err)
		}
	}
	if p.Panicked() != 1 {
		t.Fatalf("Panicked = %d, want 1", p.Panicked())
	}

	// The pool still serves work after the panic.
	done, err := p.Submit(func() error { return nil })
	if err != nil {
		t.Fatalf("post-panic submit: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("post-panic task: %v", err)
	}
}

// TestPoolTrySubmitSaturation fills the queue behind a blocked worker
// and demands the explicit rejection signal, not unbounded buffering.
func TestPoolTrySubmitSaturation(t *testing.T) {
	p := NewPool(1, 1)
	defer p.Close()

	release := make(chan struct{})
	blocker, err := p.Submit(func() error { <-release; return nil })
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to pick the blocker up, then fill the queue.
	deadline := time.Now().Add(2 * time.Second)
	for p.Queued() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the blocking task")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := p.TrySubmit(func() error { return nil }); err != nil {
		t.Fatalf("first queued TrySubmit: %v", err)
	}
	if _, err := p.TrySubmit(func() error { return nil }); !errors.Is(err, ErrPoolSaturated) {
		t.Fatalf("saturated TrySubmit = %v, want ErrPoolSaturated", err)
	}
	close(release)
	if err := <-blocker; err != nil {
		t.Fatal(err)
	}
}

// TestPoolCloseRejectsNewWork pins the post-Close contract.
func TestPoolCloseRejectsNewWork(t *testing.T) {
	p := NewPool(1, 0)
	p.Close()
	if _, err := p.Submit(func() error { return nil }); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Submit after Close = %v, want ErrPoolClosed", err)
	}
	if _, err := p.TrySubmit(func() error { return nil }); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("TrySubmit after Close = %v, want ErrPoolClosed", err)
	}
	p.Close() // idempotent
}
