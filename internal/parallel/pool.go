package parallel

import (
	"errors"
	"sync"
	"sync/atomic"
)

// Pool errors.
var (
	// ErrPoolSaturated is returned by TrySubmit when the task queue is
	// full — the pool's explicit-rejection backpressure signal (the
	// fleet service maps it to a 429).
	ErrPoolSaturated = errors.New("parallel: pool saturated")
	// ErrPoolClosed is returned by submissions after Close.
	ErrPoolClosed = errors.New("parallel: pool closed")
)

// Pool is a long-lived bounded worker pool for services that accept
// work over time (unlike Run/Map, which drain a fixed index range and
// return). It carries the same survival contract as the loops: a
// panicking task is captured as a *PanicError and delivered on the
// task's result channel; the worker goroutine — and the process —
// survive.
type Pool struct {
	tasks chan poolTask
	wg    sync.WaitGroup
	// mu serializes submission against Close: submitters hold the read
	// side while sending, so the channel can never be closed under a
	// send. A Submit blocked on a full queue only delays Close, never
	// deadlocks it — the workers keep draining until the channel
	// actually closes.
	mu     sync.RWMutex
	closed bool

	submitted atomic.Int64
	panicked  atomic.Int64
}

type poolTask struct {
	fn   func() error
	done chan error
}

// NewPool starts workers goroutines serving a queue of the given
// depth. workers < 1 falls back to MaxWorkers(); depth < 0 is treated
// as 0 (rendezvous: Submit blocks until a worker is free, TrySubmit
// rejects unless one is idle and draining the channel).
func NewPool(workers, depth int) *Pool {
	if workers < 1 {
		workers = MaxWorkers()
	}
	if depth < 0 {
		depth = 0
	}
	p := &Pool{tasks: make(chan poolTask, depth)}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer p.wg.Done()
			for t := range p.tasks {
				t.done <- p.run(t.fn)
			}
		}()
	}
	return p
}

// run executes one task, converting a panic into its error result.
func (p *Pool) run(fn func() error) error {
	var err error
	if pe := safeCall(0, func(int) { err = fn() }); pe != nil {
		p.panicked.Add(1)
		return pe
	}
	return err
}

// TrySubmit enqueues a task without blocking. On success the returned
// channel delivers the task's error (or *PanicError) exactly once.
// When the queue is full it returns ErrPoolSaturated — the caller
// sheds load explicitly instead of buffering without bound.
func (p *Pool) TrySubmit(fn func() error) (<-chan error, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return nil, ErrPoolClosed
	}
	t := poolTask{fn: fn, done: make(chan error, 1)}
	select {
	case p.tasks <- t:
		p.submitted.Add(1)
		return t.done, nil
	default:
		return nil, ErrPoolSaturated
	}
}

// Submit enqueues a task, blocking while the queue is full.
func (p *Pool) Submit(fn func() error) (<-chan error, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return nil, ErrPoolClosed
	}
	t := poolTask{fn: fn, done: make(chan error, 1)}
	p.tasks <- t
	p.submitted.Add(1)
	return t.done, nil
}

// Queued returns the number of tasks waiting for a worker.
func (p *Pool) Queued() int { return len(p.tasks) }

// Submitted returns the number of tasks ever accepted.
func (p *Pool) Submitted() int64 { return p.submitted.Load() }

// Panicked returns the number of tasks that ended in a captured panic.
func (p *Pool) Panicked() int64 { return p.panicked.Load() }

// Close stops accepting work and waits for queued tasks to drain.
// Submissions racing with Close may be executed or rejected, never
// lost silently.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.tasks)
	p.mu.Unlock()
	p.wg.Wait()
}
