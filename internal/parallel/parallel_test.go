package parallel

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestRunCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		n := 1000
		counts := make([]int32, n)
		RunLimit(n, workers, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestMapPreservesIndexOrder(t *testing.T) {
	got := MapLimit(257, 8, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("index %d: got %d want %d", i, v, i*i)
		}
	}
}

func TestRunHandlesDegenerateInputs(t *testing.T) {
	ran := false
	Run(0, func(int) { ran = true })
	RunLimit(-3, 4, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran for empty input")
	}
	Run(1, func(i int) { ran = i == 0 })
	if !ran {
		t.Fatal("fn did not run for n=1")
	}
}

func TestFirstErrorReturnsLowestIndex(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	err := FirstError(10, 4, func(i int) error {
		switch i {
		case 3:
			return errB
		case 7:
			return errA
		}
		return nil
	})
	if err != errB {
		t.Fatalf("got %v, want lowest-indexed error %v", err, errB)
	}
	if err := FirstError(5, 2, func(int) error { return nil }); err != nil {
		t.Fatalf("unexpected error %v", err)
	}
}

func TestSetMaxWorkersClampsAndRestores(t *testing.T) {
	old := MaxWorkers()
	defer SetMaxWorkers(old)
	SetMaxWorkers(3)
	if MaxWorkers() != 3 {
		t.Fatalf("MaxWorkers=%d want 3", MaxWorkers())
	}
	SetMaxWorkers(0)
	if MaxWorkers() != runtime.NumCPU() {
		t.Fatalf("MaxWorkers=%d want NumCPU", MaxWorkers())
	}
}

func TestShardDecompositionIsWorkerIndependent(t *testing.T) {
	n, size := 10_000, 4096
	if got := Shards(n, size); got != 3 {
		t.Fatalf("Shards=%d want 3", got)
	}
	covered := 0
	for s := 0; s < Shards(n, size); s++ {
		lo, hi := ShardRange(s, size, n)
		if lo != covered {
			t.Fatalf("shard %d starts at %d, want %d", s, lo, covered)
		}
		covered = hi
	}
	if covered != n {
		t.Fatalf("shards cover %d of %d items", covered, n)
	}
	if Shards(0, size) != 0 {
		t.Fatal("empty input should produce no shards")
	}
}
