// Package journal is the durability layer under the fleet service: a
// CRC32C-framed, fsync-disciplined write-ahead log plus an atomically
// replaced snapshot, managed together as one on-disk directory.
//
// The design mirrors what storage engines do, scaled to this repo:
//
//   - Every appended record is enveloped as [len | crc32c | payload],
//     so corruption is detected at read time and attributed to the
//     exact record — the same Castagnoli discipline as the v2 bag
//     format in internal/ros.
//   - Open salvages a torn or truncated tail the way ros.BagReader
//     salvages a damaged bag: the intact prefix is returned, the bad
//     record is named (*TornError), and the file is truncated back to
//     the last whole frame so new appends never interleave with
//     garbage.
//   - Compact replaces the snapshot atomically (write temp, fsync,
//     rename, fsync dir) and only then truncates the WAL, so a crash
//     at any instant leaves either the old state or the new state on
//     disk — never neither. Replay after a crash in the window between
//     rename and truncate sees pre-snapshot entries again, which is
//     why the fleet's replay is idempotent.
//   - Appends write straight through to the file; Sync is a separate
//     call so callers choose the fsync discipline per record class
//     (the fleet syncs admissions and terminal transitions, and lets
//     advisory attempt markers ride the page cache).
//
// Payloads are opaque bytes; the caller owns the encoding. Decoded
// payloads alias the read buffer and must not be mutated.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

// File-format constants. The magic doubles as a version stamp: bump it
// for incompatible layouts.
const (
	walMagic  = "AVWAL001"
	snapMagic = "AVSNAP01"
	// frameHeader is the per-record envelope: uint32 LE payload length,
	// then uint32 LE CRC32C of the payload.
	frameHeader = 8
)

// ErrTorn is the sentinel wrapped by every torn/truncated-tail
// condition; match with errors.Is.
var ErrTorn = errors.New("journal: torn record")

// castagnoli is the CRC32C table (same polynomial as the bag format).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// TornError names the exact record where a WAL stopped decoding
// cleanly: its 1-based index, the byte offset its frame starts at, and
// why it failed (truncated header, truncated payload, or checksum
// mismatch). Everything before it is intact and was salvaged.
type TornError struct {
	Record int
	Offset int64
	Reason string
}

func (e *TornError) Error() string {
	return fmt.Sprintf("journal: record %d at offset %d torn: %s (%d records salvaged before it)",
		e.Record, e.Offset, e.Reason, e.Record-1)
}

// Is makes errors.Is(err, ErrTorn) match.
func (e *TornError) Is(target error) bool { return target == ErrTorn }

// appendFrame appends one [len|crc|payload] envelope to buf.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// Decode parses a whole WAL image: the magic header, then frames until
// the data ends. It returns the decoded payloads (aliasing data), the
// number of bytes consumed by the header plus every intact frame, and
// an error. A torn or truncated tail returns the intact prefix together
// with a *TornError naming the damage — callers salvage, they do not
// lose the log. Only a missing or foreign magic is unrecoverable.
func Decode(data []byte) (recs [][]byte, validLen int, err error) {
	if len(data) < len(walMagic) || string(data[:len(walMagic)]) != walMagic {
		return nil, 0, fmt.Errorf("journal: not a journal file (bad magic)")
	}
	off := len(walMagic)
	for off < len(data) {
		rem := len(data) - off
		if rem < frameHeader {
			return recs, off, &TornError{Record: len(recs) + 1, Offset: int64(off),
				Reason: fmt.Sprintf("truncated frame header (%d of %d bytes)", rem, frameHeader)}
		}
		length := int(binary.LittleEndian.Uint32(data[off : off+4]))
		want := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if length > rem-frameHeader {
			return recs, off, &TornError{Record: len(recs) + 1, Offset: int64(off),
				Reason: fmt.Sprintf("truncated payload (%d of %d bytes)", rem-frameHeader, length)}
		}
		payload := data[off+frameHeader : off+frameHeader+length]
		if got := crc32.Checksum(payload, castagnoli); got != want {
			return recs, off, &TornError{Record: len(recs) + 1, Offset: int64(off),
				Reason: fmt.Sprintf("checksum mismatch (stored %08x, computed %08x)", want, got)}
		}
		recs = append(recs, payload)
		off += frameHeader + length
	}
	return recs, off, nil
}

// Stats is the log's operational ledger, surfaced on /fleetz.
type Stats struct {
	// Appends counts records appended this process lifetime; Syncs the
	// fsync calls; Compactions the snapshot+truncate passes.
	Appends     int64 `json:"appends"`
	Syncs       int64 `json:"syncs"`
	Compactions int64 `json:"compactions"`
	// WALRecords/WALBytes describe the live WAL segment (records since
	// the last compaction, including those recovered at Open).
	WALRecords int   `json:"wal_records"`
	WALBytes   int64 `json:"wal_bytes"`
	// Salvaged describes the torn-tail salvage performed at Open, empty
	// for a clean log.
	Salvaged string `json:"salvaged,omitempty"`
}

// Recovered is what Open found on disk: the latest snapshot (nil if
// none was ever taken), the WAL entries appended after it, and the
// torn-tail note if the WAL needed salvaging.
type Recovered struct {
	Snapshot []byte
	Entries  [][]byte
	Salvage  string
}

// Log is an open journal directory: one `snapshot` file (atomically
// replaced by Compact) and one `wal` file (appended by Append). Safe
// for concurrent use.
type Log struct {
	mu     sync.Mutex
	dir    string
	wal    *os.File
	stats  Stats
	closed bool
}

func (l *Log) walPath() string  { return filepath.Join(l.dir, "wal") }
func (l *Log) snapPath() string { return filepath.Join(l.dir, "snapshot") }

// Open opens (creating if needed) the journal directory and recovers
// its contents. A torn WAL tail is salvaged: the intact prefix is
// returned in Recovered.Entries, the damage is described in
// Recovered.Salvage, and the file is truncated back to the last whole
// frame. A corrupt snapshot is fatal — it is written atomically, so
// damage there is disk-level and needs an operator, not a guess.
func Open(dir string) (*Log, Recovered, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, Recovered{}, fmt.Errorf("journal: creating %s: %w", dir, err)
	}
	l := &Log{dir: dir}
	var rec Recovered

	if data, err := os.ReadFile(l.snapPath()); err == nil {
		snap, derr := decodeSnapshot(data)
		if derr != nil {
			return nil, Recovered{}, fmt.Errorf("journal: snapshot %s: %w", l.snapPath(), derr)
		}
		rec.Snapshot = snap
	} else if !os.IsNotExist(err) {
		return nil, Recovered{}, fmt.Errorf("journal: reading snapshot: %w", err)
	}

	data, err := os.ReadFile(l.walPath())
	switch {
	case os.IsNotExist(err):
		if werr := os.WriteFile(l.walPath(), []byte(walMagic), 0o644); werr != nil {
			return nil, Recovered{}, fmt.Errorf("journal: creating wal: %w", werr)
		}
		syncDir(dir)
		l.stats.WALBytes = int64(len(walMagic))
	case err != nil:
		return nil, Recovered{}, fmt.Errorf("journal: reading wal: %w", err)
	default:
		entries, validLen, derr := Decode(data)
		if derr != nil {
			var torn *TornError
			if !errors.As(derr, &torn) {
				return nil, Recovered{}, derr // bad magic: not salvageable
			}
			rec.Salvage = torn.Error()
			if terr := os.Truncate(l.walPath(), int64(validLen)); terr != nil {
				return nil, Recovered{}, fmt.Errorf("journal: truncating torn tail: %w", terr)
			}
		}
		// Copy entries out: the WAL image backing them is transient.
		rec.Entries = make([][]byte, len(entries))
		for i, e := range entries {
			rec.Entries[i] = append([]byte(nil), e...)
		}
		l.stats.WALRecords = len(entries)
		l.stats.WALBytes = int64(validLen)
		l.stats.Salvaged = rec.Salvage
	}

	f, err := os.OpenFile(l.walPath(), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, Recovered{}, fmt.Errorf("journal: opening wal for append: %w", err)
	}
	l.wal = f
	return l, rec, nil
}

// Append writes one record envelope to the WAL. It does not fsync —
// call Sync when the record class demands durability before the caller
// proceeds (admissions, terminal transitions).
func (l *Log) Append(payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("journal: append on closed log")
	}
	frame := appendFrame(make([]byte, 0, frameHeader+len(payload)), payload)
	if _, err := l.wal.Write(frame); err != nil {
		return fmt.Errorf("journal: appending record: %w", err)
	}
	l.stats.Appends++
	l.stats.WALRecords++
	l.stats.WALBytes += int64(len(frame))
	return nil
}

// Sync fsyncs the WAL.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("journal: sync on closed log")
	}
	if err := l.wal.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	l.stats.Syncs++
	return nil
}

// Compact replaces the snapshot with the given state and truncates the
// WAL. The snapshot lands atomically (temp file, fsync, rename, dir
// fsync) before the WAL is touched: a crash anywhere in the sequence
// leaves a replayable combination on disk. Entries that survive in the
// WAL across the rename/truncate window are pre-snapshot entries —
// replaying them over the snapshot must be (and in the fleet, is)
// idempotent.
func (l *Log) Compact(snapshot []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("journal: compact on closed log")
	}
	tmp := l.snapPath() + ".tmp"
	buf := appendFrame(append(make([]byte, 0, len(snapMagic)+frameHeader+len(snapshot)), snapMagic...), snapshot)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: creating snapshot temp: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("journal: writing snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp, l.snapPath()); err != nil {
		return fmt.Errorf("journal: installing snapshot: %w", err)
	}
	syncDir(l.dir)
	if err := l.wal.Truncate(int64(len(walMagic))); err != nil {
		return fmt.Errorf("journal: truncating wal after snapshot: %w", err)
	}
	if err := l.wal.Sync(); err != nil {
		return fmt.Errorf("journal: syncing truncated wal: %w", err)
	}
	l.stats.Compactions++
	l.stats.WALRecords = 0
	l.stats.WALBytes = int64(len(walMagic))
	return nil
}

// Stats returns a copy of the operational counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Close fsyncs and closes the WAL. Further operations error.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	serr := l.wal.Sync()
	cerr := l.wal.Close()
	if serr != nil {
		return fmt.Errorf("journal: closing: %w", serr)
	}
	return cerr
}

// decodeSnapshot validates a snapshot file image: magic, exactly one
// intact frame, nothing after it.
func decodeSnapshot(data []byte) ([]byte, error) {
	if len(data) < len(snapMagic) || string(data[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("not a snapshot file (bad magic)")
	}
	body := data[len(snapMagic):]
	if len(body) < frameHeader {
		return nil, fmt.Errorf("truncated snapshot frame header")
	}
	length := int(binary.LittleEndian.Uint32(body[0:4]))
	want := binary.LittleEndian.Uint32(body[4:8])
	if length != len(body)-frameHeader {
		return nil, fmt.Errorf("snapshot length %d does not match file (%d payload bytes)", length, len(body)-frameHeader)
	}
	payload := body[frameHeader:]
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, fmt.Errorf("snapshot checksum mismatch (stored %08x, computed %08x)", want, got)
	}
	return append([]byte(nil), payload...), nil
}

// syncDir fsyncs a directory so renames and creates within it are
// durable. Best-effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
