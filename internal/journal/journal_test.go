package journal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// reopen cycles the log through a close/open to simulate a restart.
func reopen(t *testing.T, l *Log, dir string) (*Log, Recovered) {
	t.Helper()
	if l != nil {
		if err := l.Close(); err != nil {
			t.Fatalf("closing log: %v", err)
		}
	}
	nl, rec, err := Open(dir)
	if err != nil {
		t.Fatalf("reopening %s: %v", dir, err)
	}
	return nl, rec
}

// TestJournalRoundTrip pins the basic contract: appended records come
// back in order and byte-identical across a restart.
func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot != nil || len(rec.Entries) != 0 || rec.Salvage != "" {
		t.Fatalf("fresh dir recovered %+v, want empty", rec)
	}
	want := [][]byte{[]byte("one"), []byte(""), []byte("three, longer record with bytes \x00\xff")}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}

	l, rec = reopen(t, l, dir)
	defer l.Close()
	if len(rec.Entries) != len(want) {
		t.Fatalf("recovered %d entries, want %d", len(rec.Entries), len(want))
	}
	for i, r := range want {
		if !bytes.Equal(rec.Entries[i], r) {
			t.Errorf("entry %d = %q, want %q", i, rec.Entries[i], r)
		}
	}
	if rec.Salvage != "" {
		t.Errorf("clean log reported salvage: %s", rec.Salvage)
	}
	st := l.Stats()
	if st.WALRecords != len(want) {
		t.Errorf("stats report %d wal records, want %d", st.WALRecords, len(want))
	}
}

// TestJournalTornTail damages the WAL three ways — truncated header,
// truncated payload, bit-flipped payload — and demands the intact
// prefix back, the bad record named, and the file repaired so new
// appends land cleanly.
func TestJournalTornTail(t *testing.T) {
	cases := []struct {
		name   string
		mangle func(data []byte) []byte
	}{
		{"truncated-header", func(d []byte) []byte { return d[:len(d)-3] }},
		{"truncated-payload", func(d []byte) []byte { return d[:len(d)-8] }},
		{"bit-flip", func(d []byte) []byte { d[len(d)-2] ^= 0x40; return d }},
		{"garbage-tail", func(d []byte) []byte { return append(d, 0xde, 0xad, 0xbe) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l, _, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 5; i++ {
				if err := l.Append([]byte(fmt.Sprintf("record-%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			walPath := filepath.Join(dir, "wal")
			data, err := os.ReadFile(walPath)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(walPath, tc.mangle(data), 0o644); err != nil {
				t.Fatal(err)
			}

			l, rec, err := Open(dir)
			if err != nil {
				t.Fatalf("open after %s: %v", tc.name, err)
			}
			if rec.Salvage == "" {
				t.Fatalf("%s produced no salvage note", tc.name)
			}
			// All damage hit record 5 (or appended garbage as record 6):
			// at least the first four records survive intact.
			if len(rec.Entries) < 4 {
				t.Fatalf("salvaged %d records, want >= 4 (%s)", len(rec.Entries), rec.Salvage)
			}
			for i := 0; i < 4; i++ {
				if got, want := string(rec.Entries[i]), fmt.Sprintf("record-%d", i); got != want {
					t.Errorf("salvaged entry %d = %q, want %q", i, got, want)
				}
			}

			// The torn tail was truncated away: appending and reopening
			// yields salvaged prefix + the new record, no salvage note.
			if err := l.Append([]byte("after-salvage")); err != nil {
				t.Fatal(err)
			}
			if err := l.Sync(); err != nil {
				t.Fatal(err)
			}
			prev := len(rec.Entries)
			l, rec = reopen(t, l, dir)
			defer l.Close()
			if rec.Salvage != "" {
				t.Errorf("second open still reports salvage: %s", rec.Salvage)
			}
			if len(rec.Entries) != prev+1 || string(rec.Entries[prev]) != "after-salvage" {
				t.Errorf("after salvage+append recovered %d entries (last %q), want %d ending in after-salvage",
					len(rec.Entries), rec.Entries[len(rec.Entries)-1], prev+1)
			}
		})
	}
}

// TestJournalTornErrorShape pins the Decode error contract: *TornError
// matching ErrTorn, naming the 1-based record and salvage count.
func TestJournalTornErrorShape(t *testing.T) {
	img := []byte(walMagic)
	img = appendFrame(img, []byte("good"))
	img = append(img, 0x01, 0x02) // torn header

	recs, n, err := Decode(img)
	if len(recs) != 1 || string(recs[0]) != "good" {
		t.Fatalf("salvaged %d records, want the one good record", len(recs))
	}
	if !errors.Is(err, ErrTorn) {
		t.Fatalf("err %v does not match ErrTorn", err)
	}
	var torn *TornError
	if !errors.As(err, &torn) {
		t.Fatalf("err %T is not *TornError", err)
	}
	if torn.Record != 2 {
		t.Errorf("torn record index %d, want 2", torn.Record)
	}
	if n != len(walMagic)+frameHeader+4 {
		t.Errorf("valid length %d, want %d", n, len(walMagic)+frameHeader+4)
	}
	if got := torn.Error(); !bytes.Contains([]byte(got), []byte("record 2")) {
		t.Errorf("torn error %q does not name record 2", got)
	}

	if _, _, err := Decode([]byte("NOTAWAL!")); err == nil || errors.Is(err, ErrTorn) {
		t.Errorf("foreign magic: err %v, want a non-torn hard error", err)
	}
}

// TestJournalCompact proves compaction bounds the WAL and installs the
// snapshot atomically: after Compact the reopened log recovers the
// snapshot plus only post-compaction entries.
func TestJournalCompact(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append([]byte(fmt.Sprintf("pre-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Compact([]byte("state@10")); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.WALRecords != 0 || st.Compactions != 1 {
		t.Errorf("post-compact stats %+v, want 0 wal records 1 compaction", st)
	}
	if err := l.Append([]byte("post-0")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}

	l, rec := reopen(t, l, dir)
	defer l.Close()
	if string(rec.Snapshot) != "state@10" {
		t.Errorf("recovered snapshot %q, want state@10", rec.Snapshot)
	}
	if len(rec.Entries) != 1 || string(rec.Entries[0]) != "post-0" {
		t.Errorf("recovered %d post-snapshot entries (%q), want [post-0]", len(rec.Entries), rec.Entries)
	}
}

// TestJournalCorruptSnapshotFatal: the snapshot is written atomically,
// so a damaged one is disk-level corruption — Open must refuse loudly
// rather than silently replay a partial state.
func TestJournalCorruptSnapshotFatal(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Compact([]byte("good state")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, "snapshot")
	data, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(snapPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir); err == nil {
		t.Fatal("open with a corrupt snapshot succeeded, want a hard error")
	}
}

// TestJournalAppendAfterClose pins the closed-log error contract.
func TestJournalAppendAfterClose(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("late")); err == nil {
		t.Error("append after close succeeded")
	}
	if err := l.Sync(); err == nil {
		t.Error("sync after close succeeded")
	}
	if err := l.Compact(nil); err == nil {
		t.Error("compact after close succeeded")
	}
	if err := l.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}
