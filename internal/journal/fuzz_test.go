package journal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// FuzzJournalDecode throws arbitrary bytes at the WAL decoder. The
// contract under fuzz: never panic, never read past the buffer, and
// when the input is a valid prefix followed by damage, salvage exactly
// the valid prefix and report a *TornError. Decoded payloads must
// re-encode to an image that decodes to the same records (the
// salvage-then-rewrite path the fleet recovery uses).
func FuzzJournalDecode(f *testing.F) {
	// Seed the interesting shapes: empty, bare magic, clean logs,
	// truncated tails, bit flips, garbage.
	f.Add([]byte{})
	f.Add([]byte(walMagic))
	f.Add([]byte("NOTAWAL!garbage"))
	clean := []byte(walMagic)
	clean = appendFrame(clean, []byte(`{"op":"admit","id":1}`))
	clean = appendFrame(clean, []byte(`{"op":"done","id":1,"hash":"abc"}`))
	f.Add(clean)
	f.Add(clean[:len(clean)-5])                                    // torn payload
	f.Add(append(clean[:len(clean):len(clean)], 0x00, 0x01, 0x02)) // garbage tail
	flipped := append([]byte(nil), clean...)
	flipped[len(flipped)-3] ^= 0x80
	f.Add(flipped) // bit flip in the last record
	huge := []byte(walMagic)
	huge = append(huge, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0) // 4 GiB length claim
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, validLen, err := Decode(data)
		if validLen < 0 || validLen > len(data) {
			t.Fatalf("valid length %d outside [0, %d]", validLen, len(data))
		}
		if err == nil && len(data) >= len(walMagic) && validLen != len(data) {
			t.Fatalf("clean decode consumed %d of %d bytes", validLen, len(data))
		}
		if err != nil && !errors.Is(err, ErrTorn) {
			// The only non-torn failure is a foreign/missing magic, which
			// salvages nothing.
			if len(recs) != 0 || validLen != 0 {
				t.Fatalf("hard error %v salvaged %d records", err, len(recs))
			}
			return
		}
		// Round-trip the salvaged prefix: re-encoding must reproduce the
		// valid image bytes exactly and decode back to the same records.
		img := []byte(walMagic)
		for _, r := range recs {
			img = appendFrame(img, r)
		}
		if len(data) >= len(walMagic) && !bytes.Equal(img, data[:validLen]) {
			t.Fatalf("re-encoded salvage (%d bytes) differs from the valid prefix (%d bytes)", len(img), validLen)
		}
		again, n, err2 := Decode(img)
		if err2 != nil {
			t.Fatalf("re-decoding the salvaged image failed: %v", err2)
		}
		if n != len(img) || len(again) != len(recs) {
			t.Fatalf("re-decode got %d records over %d bytes, want %d over %d", len(again), n, len(recs), len(img))
		}
		for i := range recs {
			if !bytes.Equal(again[i], recs[i]) {
				t.Fatalf("record %d changed across re-encode", i)
			}
		}
	})
}

// TestWriteFuzzCorpus regenerates the checked-in seed corpus under
// testdata/fuzz. Guarded: run with WRITE_CORPUS=1 after changing the
// journal format, then commit the updated files.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("WRITE_CORPUS") == "" {
		t.Skip("set WRITE_CORPUS=1 to regenerate the fuzz seed corpus")
	}
	clean := []byte(walMagic)
	clean = appendFrame(clean, []byte(`{"op":"admit","id":1,"tenant":"alice"}`))
	clean = appendFrame(clean, []byte(`{"op":"start","id":1}`))
	clean = appendFrame(clean, []byte(`{"op":"done","id":1,"hash":"deadbeef"}`))
	flipped := append([]byte(nil), clean...)
	flipped[len(flipped)-4] ^= 0x20
	seeds := map[string][]byte{
		"empty":         {},
		"bare-magic":    []byte(walMagic),
		"garbage":       []byte("NOTAWAL!garbage bytes"),
		"valid":         clean,
		"truncated":     clean[:len(clean)-6],
		"bit-flipped":   flipped,
		"torn-tail":     append(append([]byte(nil), clean...), 0x03, 0x00, 0x00, 0x00),
		"length-lies":   append([]byte(walMagic), 0xff, 0xff, 0xff, 0x7f, 1, 2, 3, 4),
		"header-sliver": append([]byte(walMagic), 0x01),
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzJournalDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range seeds {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
