package world

import (
	"fmt"

	"repro/internal/mathx"
)

// Span is a closed floating-point sampling interval.
type Span struct {
	Min, Max float64
}

// IntSpan is a closed integer sampling interval.
type IntSpan struct {
	Min, Max int
}

// ParamSpace bounds the procedural scenario generator: every knob the
// generator samples is drawn from one of these intervals. The space is
// also the mutation domain for the adversarial search — mutations clamp
// back into it, so the search can never wander into configs the
// generator itself would not produce.
type ParamSpace struct {
	Blocks          IntSpan
	BlockSize       Span
	StreetWidth     Span
	BuildingDensity Span

	Cars        IntSpan
	Pedestrians IntSpan
	Cyclists    IntSpan
	EgoSpeed    Span

	// LeadVehicleProb is the chance the sampled drive includes a lead
	// vehicle on the ego route.
	LeadVehicleProb float64

	// BurstProb is the chance the sampled scenario includes a
	// pedestrian burst; when it does, the burst knobs come from the
	// spans below (the street index is drawn from the city interior).
	BurstProb    float64
	BurstCount   IntSpan
	BurstRadius  Span
	BurstStagger Span

	// Weather is the menu of noise profiles sampled uniformly. Entry 0
	// should be the clear-weather zero value so a share of sampled
	// scenarios stay noise-free.
	Weather []NoiseProfile
}

// DefaultSpace is the full-size sampling space: cities the scale of the
// scripted default, traffic volumes bracketing it on both sides, and a
// weather menu from clear to heavy rain.
func DefaultSpace() ParamSpace {
	return ParamSpace{
		Blocks:          IntSpan{5, 10},
		BlockSize:       Span{70, 130},
		StreetWidth:     Span{10, 18},
		BuildingDensity: Span{0.4, 1},
		Cars:            IntSpan{4, 48},
		Pedestrians:     IntSpan{0, 40},
		Cyclists:        IntSpan{0, 12},
		EgoSpeed:        Span{6, 14},
		LeadVehicleProb: 0.35,
		BurstProb:       0.5,
		BurstCount:      IntSpan{8, 40},
		BurstRadius:     Span{6, 30},
		BurstStagger:    Span{0.2, 2.5},
		Weather:         WeatherMenu(),
	}
}

// CompactSpace is a small-city variant of DefaultSpace for CI and smoke
// runs: the same knob structure over cheaper worlds (fewer buildings to
// raycast, shorter ego laps), so tests exercise the full generate→
// simulate→score path in seconds instead of minutes.
func CompactSpace() ParamSpace {
	s := DefaultSpace()
	s.Blocks = IntSpan{3, 5}
	s.BlockSize = Span{60, 90}
	s.Cars = IntSpan{2, 16}
	s.Pedestrians = IntSpan{0, 16}
	s.Cyclists = IntSpan{0, 6}
	s.BurstCount = IntSpan{4, 16}
	return s
}

// WeatherMenu returns the built-in noise-profile menu: clear weather
// first (the zero value), then progressively sensor-hostile conditions.
// Multipliers scale stock sensor noise; drop is added LiDAR return loss.
func WeatherMenu() []NoiseProfile {
	return []NoiseProfile{
		{}, // clear — stock sensors
		{Name: "drizzle", LiDARRange: 1.5, LiDARDrop: 0.03, CameraPixel: 1.3},
		{Name: "rain", LiDARRange: 2.5, LiDARDrop: 0.1, CameraPixel: 2},
		{Name: "heavy-rain", LiDARRange: 4, LiDARDrop: 0.25, CameraPixel: 3},
		{Name: "fog", LiDARRange: 6, LiDARDrop: 0.4, CameraPixel: 2.5},
	}
}

// Validate rejects degenerate sampling spaces (empty intervals,
// inverted bounds, menus with invalid profiles). Every violation wraps
// ErrSpaceConfig.
func (sp ParamSpace) Validate() error {
	intSpans := []struct {
		name string
		s    IntSpan
		min  int
	}{
		{"blocks", sp.Blocks, 3},
		{"cars", sp.Cars, 0},
		{"pedestrians", sp.Pedestrians, 0},
		{"cyclists", sp.Cyclists, 0},
		{"burst count", sp.BurstCount, 0},
	}
	for _, is := range intSpans {
		if is.s.Min > is.s.Max || is.s.Min < is.min {
			return fmt.Errorf("%w: %s span [%d, %d] invalid (min %d)",
				ErrSpaceConfig, is.name, is.s.Min, is.s.Max, is.min)
		}
	}
	spans := []struct {
		name string
		s    Span
	}{
		{"block size", sp.BlockSize},
		{"street width", sp.StreetWidth},
		{"building density", sp.BuildingDensity},
		{"ego speed", sp.EgoSpeed},
		{"burst radius", sp.BurstRadius},
		{"burst stagger", sp.BurstStagger},
	}
	for _, fs := range spans {
		if !isFinite(fs.s.Min) || !isFinite(fs.s.Max) || fs.s.Min > fs.s.Max {
			return fmt.Errorf("%w: %s span [%v, %v] invalid",
				ErrSpaceConfig, fs.name, fs.s.Min, fs.s.Max)
		}
	}
	if sp.LeadVehicleProb < 0 || sp.LeadVehicleProb > 1 || !isFinite(sp.LeadVehicleProb) {
		return fmt.Errorf("%w: lead-vehicle probability %v outside [0, 1]", ErrSpaceConfig, sp.LeadVehicleProb)
	}
	if sp.BurstProb < 0 || sp.BurstProb > 1 || !isFinite(sp.BurstProb) {
		return fmt.Errorf("%w: burst probability %v outside [0, 1]", ErrSpaceConfig, sp.BurstProb)
	}
	if len(sp.Weather) == 0 {
		return fmt.Errorf("%w: empty weather menu", ErrSpaceConfig)
	}
	for i, n := range sp.Weather {
		if err := n.Validate(); err != nil {
			return fmt.Errorf("%w: weather[%d]: %v", ErrSpaceConfig, i, err)
		}
	}
	return nil
}

// genSalt decorrelates generator streams from any other consumer of the
// same seed (the simulation itself, the search harness's own streams).
const genSalt = 0x6E65A7E5CE11A

// Generate deterministically samples a scenario config from the space.
// Layout, traffic, and weather knobs each come from an independent
// child stream of the seed, so two generated scenarios that happen to
// share, say, the same city layout draw their traffic from identical
// distributions — and a future space change to one concern's spans
// cannot reshuffle the others. Generated configs always split the
// in-scenario RNG streams and give street furniture its own seed; the
// returned config passes Validate by construction.
func Generate(space ParamSpace, seed uint64) (ScenarioConfig, error) {
	if err := space.Validate(); err != nil {
		return ScenarioConfig{}, err
	}
	root := mathx.NewRNG(seed ^ genSalt)
	layout, traffic, weather := root.Split(), root.Split(), root.Split()

	cfg := ScenarioConfig{
		City: CityConfig{
			Blocks:          space.Blocks.sample(layout),
			BlockSize:       roundKnob(space.BlockSize.sample(layout)),
			Seed:            layout.Uint64(),
			BuildingDensity: roundKnob(space.BuildingDensity.sample(layout)),
			FurnitureSeed:   layout.Uint64() | 1, // nonzero: own pole stream
		},
		Seed:           traffic.Uint64(),
		NumCars:        space.Cars.sample(traffic),
		NumPedestrians: space.Pedestrians.sample(traffic),
		NumCyclists:    space.Cyclists.sample(traffic),
		EgoSpeed:       roundKnob(space.EgoSpeed.sample(traffic)),
		LeadVehicle:    traffic.Bool(space.LeadVehicleProb),
		SplitStreams:   true,
	}
	// Street width is bounded by the sampled block size; clamp the span
	// so tight spaces cannot produce an invalid pair.
	swMax := space.StreetWidth.Max
	if lim := cfg.City.BlockSize * 0.4; swMax > lim {
		swMax = lim
	}
	cfg.City.StreetWidth = roundKnob(Span{space.StreetWidth.Min, swMax}.sample(layout))

	if traffic.Bool(space.BurstProb) {
		cfg.Burst = PedBurst{
			Count:   space.BurstCount.sample(traffic),
			Street:  1 + traffic.Intn(cfg.City.Blocks-1),
			Radius:  roundKnob(space.BurstRadius.sample(traffic)),
			Stagger: roundKnob(space.BurstStagger.sample(traffic)),
		}
		if cfg.Burst.Radius > cfg.City.BlockSize {
			cfg.Burst.Radius = cfg.City.BlockSize
		}
	}
	cfg.Noise = space.Weather[weather.Intn(len(space.Weather))]

	if err := cfg.Validate(); err != nil {
		// A validated space must yield valid configs; surfacing the
		// error (rather than panicking) keeps the generator total.
		return ScenarioConfig{}, fmt.Errorf("world: generated config invalid: %w", err)
	}
	return cfg, nil
}

func (s IntSpan) sample(r *mathx.RNG) int {
	if s.Max == s.Min {
		return s.Min
	}
	return s.Min + r.Intn(s.Max-s.Min+1)
}

func (s Span) sample(r *mathx.RNG) float64 {
	if s.Max == s.Min {
		return s.Min
	}
	return r.Range(s.Min, s.Max)
}

// roundKnob quantizes a sampled float knob to 1/1024 so every generated
// value has a short exact decimal/binary form: params files stay
// readable, and marshal→parse→marshal is trivially byte-stable.
func roundKnob(v float64) float64 {
	return float64(int64(v*1024+0.5)) / 1024
}
