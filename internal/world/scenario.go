package world

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/mathx"
)

// ScenarioConfig parameterizes the synthetic drive.
type ScenarioConfig struct {
	City CityConfig
	// Seed drives traffic placement (independent of city layout seed).
	Seed uint64
	// NumCars, NumPedestrians, NumCyclists control traffic volume.
	NumCars        int
	NumPedestrians int
	NumCyclists    int
	// EgoSpeed is the cruise speed of the ego vehicle, m/s.
	EgoSpeed float64
	// LeadVehicle adds a car driving the ego's own route a few seconds
	// ahead — a persistent nearby target for perception-quality tests.
	LeadVehicle bool
	// SplitStreams gives each traffic concern (cars, pedestrians,
	// cyclists, burst) its own RNG stream derived from Seed, so
	// mutating one population's knob cannot reshuffle the placement of
	// another — the property the adversarial search relies on to
	// attribute a latency change to the knob it actually turned.
	// The scripted default keeps the legacy shared stream (pinned by
	// historical golden hashes); generated configs always split.
	SplitStreams bool
	// Burst clusters extra pedestrians around one intersection —
	// a crossing platoon the ego repeatedly meets. Zero value disables.
	Burst PedBurst
	// Noise is the sensor-noise/weather profile the stack builder
	// applies to the sensor suite. The world itself is noise-free;
	// the profile rides in the scenario config so one sampled parameter
	// vector describes the whole drive. Zero value means clear weather
	// (stock sensor noise).
	Noise NoiseProfile
}

// PedBurst parameterizes a pedestrian burst: Count pedestrians with
// tight crossing loops clustered within Radius meters of the
// intersection at street index (Street, Street), phase-staggered by
// Stagger seconds so they cross as a platoon rather than a smear. The
// burst is the scene-density spike behind the object-dependent nodes'
// worst latencies (cluster counts, fusion pairs, tracker updates all
// scale with it).
type PedBurst struct {
	Count   int
	Street  int
	Radius  float64
	Stagger float64
}

// NoiseProfile describes sensor-degrading weather. Multipliers scale
// the stock sensor noise (1 = stock); LiDARDrop adds per-point return
// loss. A zero-value profile is clear weather and changes nothing.
type NoiseProfile struct {
	// Name labels the profile in reports ("clear", "rain", "fog", ...).
	Name string
	// LiDARRange multiplies the LiDAR 1-sigma radial noise (0 = stock).
	LiDARRange float64
	// LiDARDrop adds per-point return-drop probability in [0, 0.9].
	LiDARDrop float64
	// CameraPixel multiplies the camera 1-sigma pixel noise (0 = stock).
	CameraPixel float64
}

// IsZero reports whether the profile is clear weather (no overrides).
func (n NoiseProfile) IsZero() bool { return n == NoiseProfile{} }

// Validate rejects non-physical noise profiles, wrapping ErrNoiseConfig.
func (n NoiseProfile) Validate() error {
	switch {
	case !isFinite(n.LiDARRange) || n.LiDARRange < 0 || n.LiDARRange > 16:
		return fmt.Errorf("%w: lidar range-noise scale %v outside [0, 16]", ErrNoiseConfig, n.LiDARRange)
	case !isFinite(n.LiDARDrop) || n.LiDARDrop < 0 || n.LiDARDrop > 0.9:
		return fmt.Errorf("%w: lidar drop probability %v outside [0, 0.9]", ErrNoiseConfig, n.LiDARDrop)
	case !isFinite(n.CameraPixel) || n.CameraPixel < 0 || n.CameraPixel > 16:
		return fmt.Errorf("%w: camera pixel-noise scale %v outside [0, 16]", ErrNoiseConfig, n.CameraPixel)
	case !validProfileName(n.Name):
		return fmt.Errorf("%w: profile name %q (want lowercase [a-z0-9-], <= 24 chars)", ErrNoiseConfig, n.Name)
	}
	return nil
}

// validProfileName keeps profile labels codec-safe: short lowercase
// kebab-case with no whitespace or separators to escape.
func validProfileName(s string) bool {
	if len(s) > 24 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '-' {
			continue
		}
		return false
	}
	return true
}

// DefaultScenarioConfig reproduces the profile of the paper's input: an
// 8-minute urban drive with moderate mixed traffic.
func DefaultScenarioConfig() ScenarioConfig {
	return ScenarioConfig{
		City:           DefaultCityConfig(),
		Seed:           0x5CE11A,
		NumCars:        22,
		NumPedestrians: 18,
		NumCyclists:    6,
		EgoSpeed:       9,
	}
}

type scriptedActor struct {
	id    int
	kind  ActorKind
	route *Route
	// phase offsets the actor's clock so same-route actors don't stack.
	phase float64
}

// Scenario binds the static city, lane graph, ego route and traffic into
// one deterministic closed-form simulation.
type Scenario struct {
	City     *City
	Lanes    *LaneNetwork
	EgoRoute *Route
	actors   []scriptedActor
}

// NewScenario deterministically builds the scenario. It panics on an
// invalid config; generated or mutated configs should go through
// BuildScenario, which reports the problem as a sentinel error.
func NewScenario(cfg ScenarioConfig) *Scenario {
	s, err := BuildScenario(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Validate rejects configs the generator cannot realize as a valid
// drivable scenario. Every violation wraps one of the package's
// sentinel errors.
func (cfg ScenarioConfig) Validate() error {
	if err := cfg.City.Validate(); err != nil {
		return err
	}
	if cfg.City.Blocks < 3 {
		// The scripted ego loop and every traffic placement rule index
		// interior streets; below 3 blocks the loop degenerates to a
		// point and interior draws have no support.
		return fmt.Errorf("%w: %d blocks (need >= 3)", ErrCityTooSmall, cfg.City.Blocks)
	}
	if cfg.NumCars < 0 || cfg.NumPedestrians < 0 || cfg.NumCyclists < 0 {
		return fmt.Errorf("%w: negative population (%d cars, %d pedestrians, %d cyclists)",
			ErrTrafficConfig, cfg.NumCars, cfg.NumPedestrians, cfg.NumCyclists)
	}
	if cfg.NumCars > maxTrafficActors || cfg.NumPedestrians > maxTrafficActors || cfg.NumCyclists > maxTrafficActors {
		return fmt.Errorf("%w: population exceeds %d per class", ErrTrafficConfig, maxTrafficActors)
	}
	if !isFinite(cfg.EgoSpeed) || cfg.EgoSpeed <= 0 || cfg.EgoSpeed > 40 {
		return fmt.Errorf("%w: ego speed %v outside (0, 40] m/s", ErrEgoConfig, cfg.EgoSpeed)
	}
	if b := cfg.Burst; b.Count != 0 {
		switch {
		case b.Count < 0 || b.Count > maxTrafficActors:
			return fmt.Errorf("%w: count %d outside [0, %d]", ErrBurstConfig, b.Count, maxTrafficActors)
		case b.Street < 1 || b.Street > cfg.City.Blocks-1:
			return fmt.Errorf("%w: street %d outside the city interior [1, %d]", ErrBurstConfig, b.Street, cfg.City.Blocks-1)
		case !isFinite(b.Radius) || b.Radius <= 0 || b.Radius > cfg.City.BlockSize:
			return fmt.Errorf("%w: radius %v outside (0, block size]", ErrBurstConfig, b.Radius)
		case !isFinite(b.Stagger) || b.Stagger < 0 || b.Stagger > 30:
			return fmt.Errorf("%w: stagger %v outside [0, 30] s", ErrBurstConfig, b.Stagger)
		}
	}
	return cfg.Noise.Validate()
}

// BuildScenario deterministically builds the scenario, rejecting
// invalid configs with a sentinel error instead of panicking.
func BuildScenario(cfg ScenarioConfig) (*Scenario, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	city, err := BuildCity(cfg.City)
	if err != nil {
		return nil, err
	}
	lanes := NewLaneNetworkForCity(city, 13.9)
	s := &Scenario{
		City:     city,
		Lanes:    lanes,
		EgoRoute: buildEgoRoute(city, cfg.EgoSpeed),
	}
	// One shared stream reproduces the legacy draw order exactly (the
	// scripted default the golden hashes pin); split streams give each
	// concern an independent child so knob mutations stay local.
	rng := mathx.NewRNG(cfg.Seed)
	carRNG, pedRNG, cycRNG, burstRNG := rng, rng, rng, rng
	if cfg.SplitStreams {
		carRNG, pedRNG, cycRNG, burstRNG = rng.Split(), rng.Split(), rng.Split(), rng.Split()
	}
	id := 1
	bs := city.BlockSize
	if cfg.LeadVehicle {
		s.actors = append(s.actors, scriptedActor{
			id: id, kind: KindCar, route: s.EgoRoute, phase: 1.3,
		})
		id++
	}
	// Traffic cars: straight out-and-back runs along streets crossing
	// the ego loop, concentrated in the mid-city so scene density varies
	// along the drive.
	for i := 0; i < cfg.NumCars; i++ {
		horizontal := carRNG.Bool(0.5)
		street := 1 + carRNG.Intn(city.Blocks-1)
		if carRNG.Bool(0.45) {
			// Bias onto the streets the ego loop travels, so the drive
			// actually meets oncoming and crossing traffic — the
			// scene-content variation behind the object-dependent
			// nodes' latency spread.
			egoStreets := []int{1, city.Blocks / 2, city.Blocks - 1}
			street = egoStreets[carRNG.Intn(len(egoStreets))]
		}
		span0 := carRNG.Range(0.5, 2) * bs
		span1 := carRNG.Range(float64(city.Blocks)-2.5, float64(city.Blocks)-0.5) * bs
		laneOff := 3.0
		if carRNG.Bool(0.5) {
			laneOff = -3.0
		}
		speed := carRNG.Range(6, 12)
		var a, b geom.Vec2
		if horizontal {
			y := city.StreetCenter(street) + laneOff
			a, b = geom.V2(span0, y), geom.V2(span1, y)
		} else {
			x := city.StreetCenter(street) + laneOff
			a, b = geom.V2(x, span0), geom.V2(x, span1)
		}
		route := NewRouteBuilder(a, 0).
			DriveTo(b, speed).
			Dwell(carRNG.Range(2, 8)).
			DriveTo(a, speed).
			Dwell(carRNG.Range(2, 8)).
			Loop().
			Build()
		kind := KindCar
		if carRNG.Bool(0.15) {
			kind = KindTruck
		}
		s.actors = append(s.actors, scriptedActor{
			id: id, kind: kind, route: route, phase: carRNG.Range(0, route.Duration()),
		})
		id++
	}
	// Pedestrians: small rectangular loops on block corners near the
	// ego route.
	for i := 0; i < cfg.NumPedestrians; i++ {
		ix := 1 + pedRNG.Intn(city.Blocks-1)
		iy := 1 + pedRNG.Intn(city.Blocks-1)
		cx := city.StreetCenter(ix) + pedRNG.Range(-4, 4)
		cy := city.StreetCenter(iy) + pedRNG.Range(-4, 4)
		side := pedRNG.Range(6, 20)
		speed := pedRNG.Range(0.8, 1.8)
		route := NewRouteBuilder(geom.V2(cx, cy), 0).
			DriveTo(geom.V2(cx+side, cy), speed).
			Dwell(pedRNG.Range(1, 5)).
			DriveTo(geom.V2(cx+side, cy+side), speed).
			DriveTo(geom.V2(cx, cy+side), speed).
			Dwell(pedRNG.Range(1, 5)).
			DriveTo(geom.V2(cx, cy), speed).
			Loop().
			Build()
		s.actors = append(s.actors, scriptedActor{
			id: id, kind: KindPedestrian, route: route, phase: pedRNG.Range(0, route.Duration()),
		})
		id++
	}
	// Cyclists: longer loops hugging street edges.
	for i := 0; i < cfg.NumCyclists; i++ {
		ix := 1 + cycRNG.Intn(city.Blocks-2)
		iy := 1 + cycRNG.Intn(city.Blocks-2)
		x0 := city.StreetCenter(ix) + 5
		y0 := city.StreetCenter(iy) + 5
		x1 := city.StreetCenter(ix+1) - 5
		y1 := city.StreetCenter(iy+1) - 5
		speed := cycRNG.Range(3.5, 6.5)
		route := NewRouteBuilder(geom.V2(x0, y0), 0).
			DriveTo(geom.V2(x1, y0), speed).
			DriveTo(geom.V2(x1, y1), speed).
			DriveTo(geom.V2(x0, y1), speed).
			DriveTo(geom.V2(x0, y0), speed).
			Loop().
			Build()
		s.actors = append(s.actors, scriptedActor{
			id: id, kind: KindCyclist, route: route, phase: cycRNG.Range(0, route.Duration()),
		})
		id++
	}
	// Pedestrian burst: a crossing platoon clustered around one
	// intersection, alternating between the two street arms. Phases are
	// staggered, not uniform over the loop, so the group arrives at the
	// crossing together — the point is a density spike, not more of the
	// ambient smear.
	if b := cfg.Burst; b.Count > 0 {
		cx := city.StreetCenter(b.Street)
		cy := city.StreetCenter(b.Street)
		half := city.StreetWidth/2 + 2
		for i := 0; i < b.Count; i++ {
			off := burstRNG.Range(-b.Radius, b.Radius)
			speed := burstRNG.Range(1.0, 1.9)
			dwell := burstRNG.Range(0.5, 2.5)
			var from, to geom.Vec2
			if i%2 == 0 {
				// Cross the east-west street: walk north-south.
				from, to = geom.V2(cx+off, cy-half), geom.V2(cx+off, cy+half)
			} else {
				// Cross the north-south street: walk east-west.
				from, to = geom.V2(cx-half, cy+off), geom.V2(cx+half, cy+off)
			}
			route := NewRouteBuilder(from, 0).
				DriveTo(to, speed).
				Dwell(dwell).
				DriveTo(from, speed).
				Dwell(dwell).
				Loop().
				Build()
			phase := float64(i)*b.Stagger + burstRNG.Range(0, 0.5)
			s.actors = append(s.actors, scriptedActor{
				id: id, kind: KindPedestrian, route: route, phase: phase,
			})
			id++
		}
	}
	return s, nil
}

// buildEgoRoute traces a large loop through the city with stops at a
// few intersections, sized to take roughly eight minutes per lap.
func buildEgoRoute(c *City, speed float64) *Route {
	bs := c.BlockSize
	n := float64(c.Blocks)
	p := func(ix, iy float64) geom.Vec2 { return geom.V2(ix*bs, iy*bs) }
	b := NewRouteBuilder(p(1, 1), 0)
	slow := speed * 0.6
	// Outer loop with two mid-city detours; dwell at selected corners.
	b.DriveTo(p(n-1, 1), speed).Dwell(6)
	b.DriveTo(p(n-1, n/2), speed)
	b.DriveTo(p(n/2, n/2), slow).Dwell(8) // mid-city, dense traffic
	b.DriveTo(p(n/2, n-1), speed)
	b.DriveTo(p(1, n-1), speed).Dwell(5)
	b.DriveTo(p(1, n/2), speed)
	b.DriveTo(p(2, n/2), slow)
	b.DriveTo(p(2, 2), speed).Dwell(4)
	b.DriveTo(p(1, 2), slow)
	b.DriveTo(p(1, 1), speed).Dwell(6)
	return b.Loop().Build()
}

// Duration returns one ego lap duration in seconds.
func (s *Scenario) Duration() float64 { return s.EgoRoute.Duration() }

// At returns the full ground-truth snapshot at time t.
func (s *Scenario) At(t float64) Snapshot {
	egoPose, egoSpeed := s.EgoRoute.At(t)
	snap := Snapshot{
		Time: t,
		Ego: ActorState{
			ID: 0, Kind: KindCar, Pose: egoPose, Speed: egoSpeed,
			Dim: KindCar.Dimensions(),
		},
		Actors: make([]ActorState, 0, len(s.actors)),
	}
	for _, a := range s.actors {
		pose, speed := a.route.At(t + a.phase)
		snap.Actors = append(snap.Actors, ActorState{
			ID: a.id, Kind: a.kind, Pose: pose, Speed: speed,
			Dim: a.kind.Dimensions(),
		})
	}
	return snap
}

// NumActors returns the number of scripted traffic actors.
func (s *Scenario) NumActors() int { return len(s.actors) }
