package world

import (
	"repro/internal/geom"
	"repro/internal/mathx"
)

// ScenarioConfig parameterizes the synthetic drive.
type ScenarioConfig struct {
	City CityConfig
	// Seed drives traffic placement (independent of city layout seed).
	Seed uint64
	// NumCars, NumPedestrians, NumCyclists control traffic volume.
	NumCars        int
	NumPedestrians int
	NumCyclists    int
	// EgoSpeed is the cruise speed of the ego vehicle, m/s.
	EgoSpeed float64
	// LeadVehicle adds a car driving the ego's own route a few seconds
	// ahead — a persistent nearby target for perception-quality tests.
	LeadVehicle bool
}

// DefaultScenarioConfig reproduces the profile of the paper's input: an
// 8-minute urban drive with moderate mixed traffic.
func DefaultScenarioConfig() ScenarioConfig {
	return ScenarioConfig{
		City:           DefaultCityConfig(),
		Seed:           0x5CE11A,
		NumCars:        22,
		NumPedestrians: 18,
		NumCyclists:    6,
		EgoSpeed:       9,
	}
}

type scriptedActor struct {
	id    int
	kind  ActorKind
	route *Route
	// phase offsets the actor's clock so same-route actors don't stack.
	phase float64
}

// Scenario binds the static city, lane graph, ego route and traffic into
// one deterministic closed-form simulation.
type Scenario struct {
	City     *City
	Lanes    *LaneNetwork
	EgoRoute *Route
	actors   []scriptedActor
}

// NewScenario deterministically builds the scenario.
func NewScenario(cfg ScenarioConfig) *Scenario {
	city := NewCity(cfg.City)
	lanes := NewLaneNetworkForCity(city, 13.9)
	s := &Scenario{
		City:     city,
		Lanes:    lanes,
		EgoRoute: buildEgoRoute(city, cfg.EgoSpeed),
	}
	rng := mathx.NewRNG(cfg.Seed)
	id := 1
	bs := city.BlockSize
	if cfg.LeadVehicle {
		s.actors = append(s.actors, scriptedActor{
			id: id, kind: KindCar, route: s.EgoRoute, phase: 1.3,
		})
		id++
	}
	// Traffic cars: straight out-and-back runs along streets crossing
	// the ego loop, concentrated in the mid-city so scene density varies
	// along the drive.
	for i := 0; i < cfg.NumCars; i++ {
		horizontal := rng.Bool(0.5)
		street := 1 + rng.Intn(city.Blocks-1)
		if rng.Bool(0.45) {
			// Bias onto the streets the ego loop travels, so the drive
			// actually meets oncoming and crossing traffic — the
			// scene-content variation behind the object-dependent
			// nodes' latency spread.
			egoStreets := []int{1, city.Blocks / 2, city.Blocks - 1}
			street = egoStreets[rng.Intn(len(egoStreets))]
		}
		span0 := rng.Range(0.5, 2) * bs
		span1 := rng.Range(float64(city.Blocks)-2.5, float64(city.Blocks)-0.5) * bs
		laneOff := 3.0
		if rng.Bool(0.5) {
			laneOff = -3.0
		}
		speed := rng.Range(6, 12)
		var a, b geom.Vec2
		if horizontal {
			y := city.StreetCenter(street) + laneOff
			a, b = geom.V2(span0, y), geom.V2(span1, y)
		} else {
			x := city.StreetCenter(street) + laneOff
			a, b = geom.V2(x, span0), geom.V2(x, span1)
		}
		route := NewRouteBuilder(a, 0).
			DriveTo(b, speed).
			Dwell(rng.Range(2, 8)).
			DriveTo(a, speed).
			Dwell(rng.Range(2, 8)).
			Loop().
			Build()
		kind := KindCar
		if rng.Bool(0.15) {
			kind = KindTruck
		}
		s.actors = append(s.actors, scriptedActor{
			id: id, kind: kind, route: route, phase: rng.Range(0, route.Duration()),
		})
		id++
	}
	// Pedestrians: small rectangular loops on block corners near the
	// ego route.
	for i := 0; i < cfg.NumPedestrians; i++ {
		ix := 1 + rng.Intn(city.Blocks-1)
		iy := 1 + rng.Intn(city.Blocks-1)
		cx := city.StreetCenter(ix) + rng.Range(-4, 4)
		cy := city.StreetCenter(iy) + rng.Range(-4, 4)
		side := rng.Range(6, 20)
		speed := rng.Range(0.8, 1.8)
		route := NewRouteBuilder(geom.V2(cx, cy), 0).
			DriveTo(geom.V2(cx+side, cy), speed).
			Dwell(rng.Range(1, 5)).
			DriveTo(geom.V2(cx+side, cy+side), speed).
			DriveTo(geom.V2(cx, cy+side), speed).
			Dwell(rng.Range(1, 5)).
			DriveTo(geom.V2(cx, cy), speed).
			Loop().
			Build()
		s.actors = append(s.actors, scriptedActor{
			id: id, kind: KindPedestrian, route: route, phase: rng.Range(0, route.Duration()),
		})
		id++
	}
	// Cyclists: longer loops hugging street edges.
	for i := 0; i < cfg.NumCyclists; i++ {
		ix := 1 + rng.Intn(city.Blocks-2)
		iy := 1 + rng.Intn(city.Blocks-2)
		x0 := city.StreetCenter(ix) + 5
		y0 := city.StreetCenter(iy) + 5
		x1 := city.StreetCenter(ix+1) - 5
		y1 := city.StreetCenter(iy+1) - 5
		speed := rng.Range(3.5, 6.5)
		route := NewRouteBuilder(geom.V2(x0, y0), 0).
			DriveTo(geom.V2(x1, y0), speed).
			DriveTo(geom.V2(x1, y1), speed).
			DriveTo(geom.V2(x0, y1), speed).
			DriveTo(geom.V2(x0, y0), speed).
			Loop().
			Build()
		s.actors = append(s.actors, scriptedActor{
			id: id, kind: KindCyclist, route: route, phase: rng.Range(0, route.Duration()),
		})
		id++
	}
	return s
}

// buildEgoRoute traces a large loop through the city with stops at a
// few intersections, sized to take roughly eight minutes per lap.
func buildEgoRoute(c *City, speed float64) *Route {
	bs := c.BlockSize
	n := float64(c.Blocks)
	p := func(ix, iy float64) geom.Vec2 { return geom.V2(ix*bs, iy*bs) }
	b := NewRouteBuilder(p(1, 1), 0)
	slow := speed * 0.6
	// Outer loop with two mid-city detours; dwell at selected corners.
	b.DriveTo(p(n-1, 1), speed).Dwell(6)
	b.DriveTo(p(n-1, n/2), speed)
	b.DriveTo(p(n/2, n/2), slow).Dwell(8) // mid-city, dense traffic
	b.DriveTo(p(n/2, n-1), speed)
	b.DriveTo(p(1, n-1), speed).Dwell(5)
	b.DriveTo(p(1, n/2), speed)
	b.DriveTo(p(2, n/2), slow)
	b.DriveTo(p(2, 2), speed).Dwell(4)
	b.DriveTo(p(1, 2), slow)
	b.DriveTo(p(1, 1), speed).Dwell(6)
	return b.Loop().Build()
}

// Duration returns one ego lap duration in seconds.
func (s *Scenario) Duration() float64 { return s.EgoRoute.Duration() }

// At returns the full ground-truth snapshot at time t.
func (s *Scenario) At(t float64) Snapshot {
	egoPose, egoSpeed := s.EgoRoute.At(t)
	snap := Snapshot{
		Time: t,
		Ego: ActorState{
			ID: 0, Kind: KindCar, Pose: egoPose, Speed: egoSpeed,
			Dim: KindCar.Dimensions(),
		},
		Actors: make([]ActorState, 0, len(s.actors)),
	}
	for _, a := range s.actors {
		pose, speed := a.route.At(t + a.phase)
		snap.Actors = append(snap.Actors, ActorState{
			ID: a.id, Kind: a.kind, Pose: pose, Speed: speed,
			Dim: a.kind.Dimensions(),
		})
	}
	return snap
}

// NumActors returns the number of scripted traffic actors.
func (s *Scenario) NumActors() int { return len(s.actors) }
