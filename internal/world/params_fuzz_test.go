package world

import (
	"strings"
	"testing"
)

// FuzzScenarioParams pins the codec's two safety properties against
// hostile input: ParseParams never panics (it returns a validated
// config or a sentinel error), and any accepted input reaches a stable
// canonical form — marshal∘parse is the identity on parse results, and
// the canonical line re-parses to the identical config.
func FuzzScenarioParams(f *testing.F) {
	f.Add(MarshalParams(DefaultScenarioConfig()))
	for seed := uint64(0); seed < 4; seed++ {
		if cfg, err := Generate(DefaultSpace(), seed); err == nil {
			f.Add(MarshalParams(cfg))
		}
	}
	f.Add("")
	f.Add("blocks=8")
	f.Add("blocks=8 blocks=9")
	f.Add("weather=rain lidarnoise=1e308")
	f.Add("blocks=8 size=NaN street=14 density=0.5 cityseed=0x1 seed=0x2 cars=1 peds=0 cyclists=0 ego=9")
	f.Fuzz(func(t *testing.T, line string) {
		cfg, err := ParseParams(line) // must never panic
		if err != nil {
			return
		}
		// Accepted input must be a valid config...
		if verr := cfg.Validate(); verr != nil {
			t.Fatalf("ParseParams(%q) accepted invalid config: %v", line, verr)
		}
		// ...with a canonical form that is a fixed point of the codec.
		canon := MarshalParams(cfg)
		back, err := ParseParams(canon)
		if err != nil {
			t.Fatalf("canonical line %q does not re-parse: %v", canon, err)
		}
		if back != cfg {
			t.Fatalf("canonical round-trip mismatch for %q:\ncanon: %s\ngot:   %+v\nwant:  %+v",
				line, canon, back, cfg)
		}
		if again := MarshalParams(back); again != canon {
			t.Fatalf("marshal not stable: %q vs %q", canon, again)
		}
		// Canonical lines never need escaping: single spaces, no tabs.
		if strings.ContainsAny(canon, "\t\n\r") || strings.Contains(canon, "  ") {
			t.Fatalf("canonical line contains raw whitespace: %q", canon)
		}
	})
}
