package world

import (
	"fmt"
	"strconv"
	"strings"
)

// The scenario-parameter codec serializes a ScenarioConfig as a single
// line of space-separated key=value tokens in a fixed key order:
//
//	blocks=8 size=100 street=14 density=0.85 cityseed=0xa07a0 ...
//
// One line describes one sampled world, so a search candidate, a pinned
// regression scenario, and a params file row are all the same string.
// The codec is strict and total: ParseParams either returns a config
// that passes Validate or a sentinel error wrapping ErrParams (or the
// validation sentinel) — hostile input never panics. Marshal∘Parse is
// the identity on valid configs, and Parse∘Marshal is the identity on
// canonical lines, which is what FuzzScenarioParams pins.

// MarshalParams serializes cfg as one canonical params line. Zero-value
// optional sections (burst, noise) are omitted, so the scripted default
// stays a short line.
func MarshalParams(cfg ScenarioConfig) string {
	var b strings.Builder
	put := func(key, val string) {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(key)
		b.WriteByte('=')
		b.WriteString(val)
	}
	putInt := func(key string, v int) { put(key, strconv.Itoa(v)) }
	putF := func(key string, v float64) { put(key, strconv.FormatFloat(v, 'g', -1, 64)) }
	putHex := func(key string, v uint64) { put(key, "0x"+strconv.FormatUint(v, 16)) }

	putInt("blocks", cfg.City.Blocks)
	putF("size", cfg.City.BlockSize)
	putF("street", cfg.City.StreetWidth)
	putF("density", cfg.City.BuildingDensity)
	putHex("cityseed", cfg.City.Seed)
	if cfg.City.FurnitureSeed != 0 {
		putHex("furnitureseed", cfg.City.FurnitureSeed)
	}
	putHex("seed", cfg.Seed)
	putInt("cars", cfg.NumCars)
	putInt("peds", cfg.NumPedestrians)
	putInt("cyclists", cfg.NumCyclists)
	putF("ego", cfg.EgoSpeed)
	if cfg.LeadVehicle {
		put("lead", "1")
	}
	if cfg.SplitStreams {
		put("split", "1")
	}
	if cfg.Burst.Count != 0 {
		putInt("burst", cfg.Burst.Count)
		putInt("burststreet", cfg.Burst.Street)
		putF("burstradius", cfg.Burst.Radius)
		putF("burststagger", cfg.Burst.Stagger)
	}
	if !cfg.Noise.IsZero() {
		name := cfg.Noise.Name
		if name == "" {
			name = "custom"
		}
		put("weather", name)
		putF("lidarnoise", cfg.Noise.LiDARRange)
		putF("lidardrop", cfg.Noise.LiDARDrop)
		putF("pixelnoise", cfg.Noise.CameraPixel)
	}
	return b.String()
}

// ParseParams decodes one params line into a validated ScenarioConfig.
// Unknown keys, duplicate keys, malformed values, and configs that fail
// Validate are all rejected with sentinel errors; no input panics.
func ParseParams(line string) (ScenarioConfig, error) {
	var cfg ScenarioConfig
	seen := make(map[string]bool, 16)
	for _, tok := range strings.Fields(line) {
		key, val, ok := strings.Cut(tok, "=")
		if !ok || key == "" || val == "" {
			return cfg, fmt.Errorf("%w: token %q is not key=value", ErrParams, tok)
		}
		if seen[key] {
			return cfg, fmt.Errorf("%w: duplicate key %q", ErrParams, key)
		}
		seen[key] = true
		if err := setParam(&cfg, key, val); err != nil {
			return cfg, err
		}
	}
	if len(seen) == 0 {
		return cfg, fmt.Errorf("%w: empty params line", ErrParams)
	}
	// Optional-section sub-keys are only meaningful with their lead key
	// present: an orphaned nonzero sub-value would be dropped by
	// MarshalParams and silently break canonical round-trip.
	if cfg.Burst.Count == 0 && cfg.Burst != (PedBurst{}) {
		return cfg, fmt.Errorf("%w: burst sub-keys without a burst count", ErrParams)
	}
	if !seen["weather"] && !cfg.Noise.IsZero() {
		return cfg, fmt.Errorf("%w: noise overrides without a weather name", ErrParams)
	}
	if err := cfg.Validate(); err != nil {
		return ScenarioConfig{}, err
	}
	return cfg, nil
}

func setParam(cfg *ScenarioConfig, key, val string) error {
	parseInt := func() (int, error) {
		v, err := strconv.Atoi(val)
		if err != nil {
			return 0, fmt.Errorf("%w: key %q: %q is not an integer", ErrParams, key, val)
		}
		return v, nil
	}
	parseF := func() (float64, error) {
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return 0, fmt.Errorf("%w: key %q: %q is not a number", ErrParams, key, val)
		}
		return v, nil
	}
	parseHex := func() (uint64, error) {
		s := strings.TrimPrefix(val, "0x")
		v, err := strconv.ParseUint(s, 16, 64)
		if err != nil {
			return 0, fmt.Errorf("%w: key %q: %q is not a hex seed", ErrParams, key, val)
		}
		return v, nil
	}
	var err error
	switch key {
	case "blocks":
		cfg.City.Blocks, err = parseInt()
	case "size":
		cfg.City.BlockSize, err = parseF()
	case "street":
		cfg.City.StreetWidth, err = parseF()
	case "density":
		cfg.City.BuildingDensity, err = parseF()
	case "cityseed":
		cfg.City.Seed, err = parseHex()
	case "furnitureseed":
		cfg.City.FurnitureSeed, err = parseHex()
		if err == nil && cfg.City.FurnitureSeed == 0 {
			err = fmt.Errorf("%w: furnitureseed must be nonzero when present", ErrParams)
		}
	case "seed":
		cfg.Seed, err = parseHex()
	case "cars":
		cfg.NumCars, err = parseInt()
	case "peds":
		cfg.NumPedestrians, err = parseInt()
	case "cyclists":
		cfg.NumCyclists, err = parseInt()
	case "ego":
		cfg.EgoSpeed, err = parseF()
	case "lead":
		err = parseFlag(key, val, &cfg.LeadVehicle)
	case "split":
		err = parseFlag(key, val, &cfg.SplitStreams)
	case "burst":
		cfg.Burst.Count, err = parseInt()
		if err == nil && cfg.Burst.Count == 0 {
			err = fmt.Errorf("%w: burst count must be nonzero when present", ErrParams)
		}
	case "burststreet":
		cfg.Burst.Street, err = parseInt()
	case "burstradius":
		cfg.Burst.Radius, err = parseF()
	case "burststagger":
		cfg.Burst.Stagger, err = parseF()
	case "weather":
		if !validProfileName(val) || val == "" {
			return fmt.Errorf("%w: weather name %q (want lowercase [a-z0-9-], <= 24 chars)", ErrParams, val)
		}
		cfg.Noise.Name = val
	case "lidarnoise":
		cfg.Noise.LiDARRange, err = parseF()
	case "lidardrop":
		cfg.Noise.LiDARDrop, err = parseF()
	case "pixelnoise":
		cfg.Noise.CameraPixel, err = parseF()
	default:
		return fmt.Errorf("%w: unknown key %q", ErrParams, key)
	}
	return err
}

// parseFlag accepts only the canonical "1" (flags are omitted when
// false, so any other value would break round-trip stability).
func parseFlag(key, val string, dst *bool) error {
	if val != "1" {
		return fmt.Errorf("%w: key %q: %q is not the flag value 1", ErrParams, key, val)
	}
	*dst = true
	return nil
}
