// Package world models the synthetic driving environment that replaces
// the paper's Nagoya recording: a city of streets and buildings, a lane
// graph, scripted traffic actors and a deterministic ego drive. All
// dynamics are closed-form functions of time, so any instant of the
// drive can be queried exactly and reproducibly.
package world

import "repro/internal/geom"

// ActorKind classifies a traffic participant. The detection stack's
// class labels mirror these.
type ActorKind int

// Actor kinds.
const (
	KindCar ActorKind = iota
	KindTruck
	KindPedestrian
	KindCyclist
)

// String implements fmt.Stringer.
func (k ActorKind) String() string {
	switch k {
	case KindCar:
		return "car"
	case KindTruck:
		return "truck"
	case KindPedestrian:
		return "pedestrian"
	case KindCyclist:
		return "cyclist"
	default:
		return "unknown"
	}
}

// Dimensions returns the canonical body size (length, width, height) in
// meters for the kind.
func (k ActorKind) Dimensions() geom.Vec3 {
	switch k {
	case KindCar:
		return geom.V3(4.4, 1.8, 1.5)
	case KindTruck:
		return geom.V3(8.0, 2.5, 3.2)
	case KindPedestrian:
		return geom.V3(0.5, 0.5, 1.7)
	case KindCyclist:
		return geom.V3(1.8, 0.6, 1.7)
	default:
		return geom.V3(1, 1, 1)
	}
}

// ActorState is the ground-truth state of one traffic participant at a
// queried instant.
type ActorState struct {
	ID   int
	Kind ActorKind
	Pose geom.Pose
	// Speed is the scalar ground speed along the heading, m/s.
	Speed float64
	// Dim is the body size (length, width, height).
	Dim geom.Vec3
}

// Footprint returns the ground-plane oriented box of the actor.
func (a ActorState) Footprint() geom.OBB2 {
	return geom.OBB2{
		Center:  a.Pose.XY(),
		Yaw:     a.Pose.Yaw,
		HalfLen: a.Dim.X / 2,
		HalfWid: a.Dim.Y / 2,
	}
}

// BodyBox returns the world-frame axis-aligned box that encloses the
// actor's oriented body. Ray casting uses the oriented test; this box is
// the broad-phase bound.
func (a ActorState) BodyBox() geom.AABB3 {
	fp := a.Footprint()
	box := geom.EmptyAABB3()
	for _, c := range fp.Corners() {
		box.Expand(geom.V3(c.X, c.Y, a.Pose.Pos.Z))
		box.Expand(geom.V3(c.X, c.Y, a.Pose.Pos.Z+a.Dim.Z))
	}
	return box
}

// Velocity returns the planar velocity vector.
func (a ActorState) Velocity() geom.Vec2 {
	return a.Pose.Forward().Scale(a.Speed)
}

// Building is a static box-shaped obstacle (building, wall or pole).
type Building struct {
	Box geom.AABB3
}

// Snapshot is the complete ground truth of the world at one instant.
type Snapshot struct {
	Time   float64
	Ego    ActorState
	Actors []ActorState
}

// ActorsNear returns the actors whose centers lie within radius of the
// ego, which is what the perception stack can plausibly observe.
func (s *Snapshot) ActorsNear(radius float64) []ActorState {
	out := make([]ActorState, 0, len(s.Actors))
	ego := s.Ego.Pose.XY()
	for _, a := range s.Actors {
		if a.Pose.XY().Dist(ego) <= radius {
			out = append(out, a)
		}
	}
	return out
}
