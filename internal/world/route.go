package world

import (
	"repro/internal/geom"
)

// Route is a polyline path with a piecewise-constant speed profile,
// parameterized by time. It drives both the ego vehicle and scripted
// traffic. Dwell segments (speed 0) model stops at intersections.
type Route struct {
	waypoints []geom.Vec2
	// segTime[i] is the time spent on segment i; segSpeed[i] its speed.
	segTime  []float64
	segSpeed []float64
	// cumTime[i] is the time at which segment i starts.
	cumTime []float64
	total   float64
	loop    bool
	z       float64
}

// RouteBuilder assembles a route incrementally.
type RouteBuilder struct {
	r Route
}

// NewRouteBuilder starts a route at the given ground point.
func NewRouteBuilder(start geom.Vec2, z float64) *RouteBuilder {
	b := &RouteBuilder{}
	b.r.waypoints = append(b.r.waypoints, start)
	b.r.z = z
	return b
}

// DriveTo appends a straight segment to p traversed at speed (m/s).
// Zero-length segments are ignored.
func (b *RouteBuilder) DriveTo(p geom.Vec2, speed float64) *RouteBuilder {
	if speed <= 0 {
		panic("world: DriveTo needs positive speed")
	}
	last := b.r.waypoints[len(b.r.waypoints)-1]
	d := last.Dist(p)
	if d < 1e-9 {
		return b
	}
	b.r.waypoints = append(b.r.waypoints, p)
	b.r.segTime = append(b.r.segTime, d/speed)
	b.r.segSpeed = append(b.r.segSpeed, speed)
	return b
}

// Dwell appends a stationary pause of the given duration at the current
// endpoint (a stop at a light or crossing).
func (b *RouteBuilder) Dwell(seconds float64) *RouteBuilder {
	if seconds <= 0 {
		return b
	}
	last := b.r.waypoints[len(b.r.waypoints)-1]
	b.r.waypoints = append(b.r.waypoints, last)
	b.r.segTime = append(b.r.segTime, seconds)
	b.r.segSpeed = append(b.r.segSpeed, 0)
	return b
}

// Loop marks the route as cyclic: time wraps modulo the total duration.
func (b *RouteBuilder) Loop() *RouteBuilder {
	b.r.loop = true
	return b
}

// Build finalizes the route. It panics if no segment was added.
func (b *RouteBuilder) Build() *Route {
	if len(b.r.segTime) == 0 {
		panic("world: route with no segments")
	}
	r := b.r
	r.cumTime = make([]float64, len(r.segTime)+1)
	for i, d := range r.segTime {
		r.cumTime[i+1] = r.cumTime[i] + d
	}
	r.total = r.cumTime[len(r.cumTime)-1]
	return &r
}

// Duration returns the total traversal time of the route.
func (r *Route) Duration() float64 { return r.total }

// At returns the pose and scalar speed at time t. Before the start the
// route holds its first pose; past the end a non-loop route holds its
// final pose; a loop wraps.
func (r *Route) At(t float64) (geom.Pose, float64) {
	if r.loop && r.total > 0 {
		for t < 0 {
			t += r.total
		}
		for t >= r.total {
			t -= r.total
		}
	}
	if t <= 0 {
		return r.poseOnSegment(0, 0), 0
	}
	if t >= r.total {
		n := len(r.segTime) - 1
		return r.poseOnSegment(n, 1), 0
	}
	// Binary search the segment containing t.
	lo, hi := 0, len(r.segTime)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if r.cumTime[mid] <= t {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	seg := lo
	frac := 0.0
	if r.segTime[seg] > 0 {
		frac = (t - r.cumTime[seg]) / r.segTime[seg]
	}
	return r.poseOnSegment(seg, frac), r.segSpeed[seg]
}

func (r *Route) poseOnSegment(seg int, frac float64) geom.Pose {
	a := r.waypoints[seg]
	b := r.waypoints[seg+1]
	p := a.Lerp(b, frac)
	yaw := r.headingAt(seg)
	return geom.NewPose(p.X, p.Y, r.z, yaw)
}

// headingAt returns the heading of segment seg, skipping over dwell
// segments (which have no direction) to the nearest moving segment.
func (r *Route) headingAt(seg int) float64 {
	for s := seg; s < len(r.segTime); s++ {
		d := r.waypoints[s+1].Sub(r.waypoints[s])
		if d.NormSq() > 1e-12 {
			return d.Angle()
		}
	}
	for s := seg - 1; s >= 0; s-- {
		d := r.waypoints[s+1].Sub(r.waypoints[s])
		if d.NormSq() > 1e-12 {
			return d.Angle()
		}
	}
	return 0
}

// Waypoints exposes the polyline (for the planner's reference path).
func (r *Route) Waypoints() []geom.Vec2 {
	out := make([]geom.Vec2, len(r.waypoints))
	copy(out, r.waypoints)
	return out
}
