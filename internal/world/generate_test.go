package world

import (
	"errors"
	"math"
	"testing"
)

// TestBuildScenarioEdgeCases pins the generator contract: every config
// either yields a valid drivable scenario or a named sentinel error —
// never a panic. The table walks the degenerate corners the adversarial
// search and the params fuzzer can reach.
func TestBuildScenarioEdgeCases(t *testing.T) {
	base := DefaultScenarioConfig()
	mod := func(f func(*ScenarioConfig)) ScenarioConfig {
		cfg := base
		f(&cfg)
		return cfg
	}
	cases := []struct {
		name    string
		cfg     ScenarioConfig
		wantErr error // nil means the config must build
	}{
		{"default", base, nil},
		{"zero traffic", mod(func(c *ScenarioConfig) {
			c.NumCars, c.NumPedestrians, c.NumCyclists = 0, 0, 0
		}), nil},
		{"minimum city", mod(func(c *ScenarioConfig) { c.City.Blocks = 3 }), nil},
		{"zero building density", mod(func(c *ScenarioConfig) { c.City.BuildingDensity = 0 }), nil},
		{"full building density", mod(func(c *ScenarioConfig) { c.City.BuildingDensity = 1 }), nil},
		{"split streams", mod(func(c *ScenarioConfig) { c.SplitStreams = true }), nil},
		{"burst", mod(func(c *ScenarioConfig) {
			c.Burst = PedBurst{Count: 12, Street: 2, Radius: 10, Stagger: 1}
		}), nil},
		{"one block city", mod(func(c *ScenarioConfig) { c.City.Blocks = 1 }), ErrCityTooSmall},
		{"two block city", mod(func(c *ScenarioConfig) { c.City.Blocks = 2 }), ErrCityTooSmall},
		{"zero blocks", mod(func(c *ScenarioConfig) { c.City.Blocks = 0 }), ErrCityConfig},
		{"negative blocks", mod(func(c *ScenarioConfig) { c.City.Blocks = -4 }), ErrCityConfig},
		{"huge city", mod(func(c *ScenarioConfig) { c.City.Blocks = maxBlocks + 1 }), ErrCityConfig},
		{"zero block size", mod(func(c *ScenarioConfig) { c.City.BlockSize = 0 }), ErrCityConfig},
		{"nan block size", mod(func(c *ScenarioConfig) { c.City.BlockSize = math.NaN() }), ErrCityConfig},
		{"street wider than block", mod(func(c *ScenarioConfig) {
			c.City.StreetWidth = c.City.BlockSize
		}), ErrCityConfig},
		{"negative street", mod(func(c *ScenarioConfig) { c.City.StreetWidth = -1 }), ErrCityConfig},
		{"density above one", mod(func(c *ScenarioConfig) { c.City.BuildingDensity = 1.1 }), ErrCityConfig},
		{"inf density", mod(func(c *ScenarioConfig) { c.City.BuildingDensity = math.Inf(1) }), ErrCityConfig},
		{"negative cars", mod(func(c *ScenarioConfig) { c.NumCars = -1 }), ErrTrafficConfig},
		{"too many pedestrians", mod(func(c *ScenarioConfig) {
			c.NumPedestrians = maxTrafficActors + 1
		}), ErrTrafficConfig},
		{"zero ego speed", mod(func(c *ScenarioConfig) { c.EgoSpeed = 0 }), ErrEgoConfig},
		{"negative ego speed", mod(func(c *ScenarioConfig) { c.EgoSpeed = -5 }), ErrEgoConfig},
		{"nan ego speed", mod(func(c *ScenarioConfig) { c.EgoSpeed = math.NaN() }), ErrEgoConfig},
		{"supersonic ego", mod(func(c *ScenarioConfig) { c.EgoSpeed = 300 }), ErrEgoConfig},
		{"burst street outside city", mod(func(c *ScenarioConfig) {
			c.Burst = PedBurst{Count: 5, Street: c.City.Blocks, Radius: 10, Stagger: 1}
		}), ErrBurstConfig},
		{"burst zero radius", mod(func(c *ScenarioConfig) {
			c.Burst = PedBurst{Count: 5, Street: 2, Radius: 0, Stagger: 1}
		}), ErrBurstConfig},
		{"burst negative count", mod(func(c *ScenarioConfig) {
			c.Burst = PedBurst{Count: -2, Street: 2, Radius: 10, Stagger: 1}
		}), ErrBurstConfig},
		{"noise drop too high", mod(func(c *ScenarioConfig) {
			c.Noise = NoiseProfile{Name: "storm", LiDARDrop: 0.95}
		}), ErrNoiseConfig},
		{"noise bad name", mod(func(c *ScenarioConfig) {
			c.Noise = NoiseProfile{Name: "Heavy Rain!", LiDARRange: 2}
		}), ErrNoiseConfig},
		{"noise nan scale", mod(func(c *ScenarioConfig) {
			c.Noise = NoiseProfile{Name: "x", LiDARRange: math.NaN()}
		}), ErrNoiseConfig},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := BuildScenario(tc.cfg) // must never panic
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("err = %v, want %v", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			// Drivability: a positive-duration ego lap and in-bounds actors.
			if s.Duration() <= 0 {
				t.Fatalf("ego lap duration = %v", s.Duration())
			}
			size := s.City.Size()
			snap := s.At(s.Duration() / 3)
			for _, a := range snap.Actors {
				p := a.Pose.XY()
				if p.X < -1 || p.Y < -1 || p.X > size+1 || p.Y > size+1 {
					t.Fatalf("actor %d out of city: %v", a.ID, p)
				}
			}
		})
	}
}

// TestLegacySharedStreamUnchanged pins that the stream refactor did not
// move a single draw on the scripted default path: the golden report
// hashes depend on this placement bit-for-bit.
func TestLegacySharedStreamUnchanged(t *testing.T) {
	s := NewScenario(DefaultScenarioConfig())
	snap := s.At(100)
	if len(snap.Actors) != 22+18+6 {
		t.Fatalf("actor count = %d", len(snap.Actors))
	}
	// First traffic car's pose at t=100, captured before the refactor.
	got := snap.Actors[0].Pose.XY()
	const wantX, wantY = 299.24438328488623, 303
	if math.Abs(got.X-wantX) > 1e-9 || math.Abs(got.Y-wantY) > 1e-9 {
		t.Fatalf("first car at t=100 moved: got (%v, %v), want (%v, %v) — legacy RNG draw order changed",
			got.X, got.Y, wantX, wantY)
	}
}

// TestSplitStreamsIsolateConcerns is the satellite fix's contract:
// with SplitStreams set, mutating one population knob cannot reshuffle
// the placement of another concern's actors.
func TestSplitStreamsIsolateConcerns(t *testing.T) {
	base := DefaultScenarioConfig()
	base.SplitStreams = true
	base.Burst = PedBurst{Count: 8, Street: 3, Radius: 12, Stagger: 0.7}

	build := func(f func(*ScenarioConfig)) *Scenario {
		cfg := base
		f(&cfg)
		s, err := BuildScenario(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a := build(func(*ScenarioConfig) {})

	samePoses := func(t *testing.T, a, b *Scenario, ids []int) {
		t.Helper()
		for _, ts := range []float64{0, 31.7, 150} {
			sa, sb := a.At(ts), b.At(ts)
			pose := func(snap Snapshot, id int) (p [2]float64, ok bool) {
				for _, ac := range snap.Actors {
					if ac.ID == id {
						return [2]float64{ac.Pose.XY().X, ac.Pose.XY().Y}, true
					}
				}
				return p, false
			}
			for _, id := range ids {
				pa, oka := pose(sa, id)
				pb, okb := pose(sb, id)
				if !oka || !okb {
					t.Fatalf("actor %d missing at t=%v", id, ts)
				}
				if pa != pb {
					t.Fatalf("actor %d moved at t=%v: %v vs %v", id, ts, pa, pb)
				}
			}
		}
	}
	carIDs := make([]int, base.NumCars)
	for i := range carIDs {
		carIDs[i] = 1 + i // no lead vehicle: cars are ids 1..NumCars
	}

	// Halving pedestrians must not move a single car.
	b := build(func(c *ScenarioConfig) { c.NumPedestrians = 4 })
	samePoses(t, a, b, carIDs)

	// Dropping cyclists must not move cars either.
	c := build(func(c *ScenarioConfig) { c.NumCyclists = 0 })
	samePoses(t, a, c, carIDs)

	// Without split streams the legacy shared stream *does* reshuffle —
	// guard against the test silently passing for the wrong reason.
	legacyA := build(func(c *ScenarioConfig) { c.SplitStreams = false; c.Burst = PedBurst{} })
	legacyB := build(func(c *ScenarioConfig) {
		c.SplitStreams = false
		c.Burst = PedBurst{}
		c.NumCars = base.NumCars - 1
	})
	sa, sb := legacyA.At(50), legacyB.At(50)
	// Pedestrians start after the cars; with one car fewer the shared
	// stream shifts every subsequent draw.
	pedA := sa.Actors[base.NumCars].Pose.XY()
	pedB := sb.Actors[base.NumCars-1].Pose.XY()
	if pedA == pedB {
		t.Fatal("legacy shared stream unexpectedly isolates concerns; split-stream test is vacuous")
	}
}

// TestFurnitureSeedIsolatesPoles: with a furniture seed, mutating
// building density must not move street poles (and the same furniture
// seed must yield the same poles under different layout seeds).
func TestFurnitureSeedIsolatesPoles(t *testing.T) {
	cfg := DefaultCityConfig()
	cfg.FurnitureSeed = 0xBEEF
	poles := func(c *City) [][2]float64 {
		var out [][2]float64
		for _, b := range c.Buildings {
			sz := b.Box.Max.Sub(b.Box.Min)
			if sz.Z == 6 && sz.X < 1 { // pole footprint, not a building
				out = append(out, [2]float64{b.Box.Min.X, b.Box.Min.Y})
			}
		}
		return out
	}
	a, err := BuildCity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.BuildingDensity = 0.3
	cfg2.Seed = 0x1234
	b, err := BuildCity(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := poles(a), poles(b)
	if len(pa) == 0 || len(pa) != len(pb) {
		t.Fatalf("pole counts: %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("pole %d moved with building density: %v vs %v", i, pa[i], pb[i])
		}
	}
}

func TestGenerateDeterministicAndValid(t *testing.T) {
	for _, space := range []ParamSpace{DefaultSpace(), CompactSpace()} {
		for seed := uint64(0); seed < 40; seed++ {
			a, err := Generate(space, seed)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			b, err := Generate(space, seed)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if a != b {
				t.Fatalf("seed %d: generation not deterministic:\n%+v\n%+v", seed, a, b)
			}
			if !a.SplitStreams || a.City.FurnitureSeed == 0 {
				t.Fatalf("seed %d: generated config must split streams and own a furniture seed", seed)
			}
			if _, err := BuildScenario(a); err != nil {
				t.Fatalf("seed %d: generated config does not build: %v", seed, err)
			}
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	space := DefaultSpace()
	a, _ := Generate(space, 1)
	b, _ := Generate(space, 2)
	if a == b {
		t.Fatal("distinct seeds produced identical configs")
	}
}

func TestGenerateRejectsBadSpace(t *testing.T) {
	cases := map[string]func(*ParamSpace){
		"inverted blocks":   func(s *ParamSpace) { s.Blocks = IntSpan{6, 3} },
		"tiny blocks":       func(s *ParamSpace) { s.Blocks = IntSpan{1, 4} },
		"nan ego span":      func(s *ParamSpace) { s.EgoSpeed = Span{math.NaN(), 10} },
		"negative prob":     func(s *ParamSpace) { s.BurstProb = -0.5 },
		"empty weather":     func(s *ParamSpace) { s.Weather = nil },
		"invalid weather":   func(s *ParamSpace) { s.Weather = []NoiseProfile{{Name: "BAD NAME"}} },
		"inverted ego span": func(s *ParamSpace) { s.EgoSpeed = Span{12, 6} },
	}
	for name, f := range cases {
		t.Run(name, func(t *testing.T) {
			space := DefaultSpace()
			f(&space)
			if _, err := Generate(space, 1); !errors.Is(err, ErrSpaceConfig) {
				t.Fatalf("err = %v, want ErrSpaceConfig", err)
			}
		})
	}
}

func TestParamsRoundTrip(t *testing.T) {
	configs := []ScenarioConfig{DefaultScenarioConfig()}
	space := DefaultSpace()
	for seed := uint64(0); seed < 30; seed++ {
		cfg, err := Generate(space, seed)
		if err != nil {
			t.Fatal(err)
		}
		configs = append(configs, cfg)
	}
	for i, cfg := range configs {
		line := MarshalParams(cfg)
		back, err := ParseParams(line)
		if err != nil {
			t.Fatalf("config %d: parse(%q): %v", i, line, err)
		}
		if back != cfg {
			t.Fatalf("config %d: round-trip mismatch\nline: %s\ngot:  %+v\nwant: %+v", i, line, back, cfg)
		}
		if again := MarshalParams(back); again != line {
			t.Fatalf("config %d: marshal not canonical:\n%s\n%s", i, line, again)
		}
	}
}

func TestParseParamsRejects(t *testing.T) {
	cases := map[string]string{
		"empty":               "",
		"whitespace only":     "   \t ",
		"bare token":          "blocks",
		"unknown key":         "blocks=8 size=100 street=14 density=0.5 cityseed=0x1 seed=0x2 cars=1 peds=0 cyclists=0 ego=9 warp=1",
		"duplicate key":       "blocks=8 blocks=9",
		"bad int":             "blocks=eight",
		"bad float":           "blocks=8 size=wide",
		"bad seed":            "blocks=8 cityseed=0xZZ",
		"bad flag":            "blocks=8 lead=yes",
		"zero furniture seed": "blocks=8 furnitureseed=0x0",
		"orphan burst street": "blocks=8 size=100 street=14 density=0.5 cityseed=0x1 seed=0x2 cars=1 peds=0 cyclists=0 ego=9 burststreet=2",
		"orphan noise":        "blocks=8 size=100 street=14 density=0.5 cityseed=0x1 seed=0x2 cars=1 peds=0 cyclists=0 ego=9 lidarnoise=2",
		"weather bad name":    "blocks=8 size=100 street=14 density=0.5 cityseed=0x1 seed=0x2 cars=1 peds=0 cyclists=0 ego=9 weather=Rain lidarnoise=2",
		"city too small":      "blocks=1 size=100 street=14 density=0.5 cityseed=0x1 seed=0x2 cars=1 peds=0 cyclists=0 ego=9",
		"missing required":    "lead=1",
	}
	for name, line := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ParseParams(line); err == nil {
				t.Fatalf("ParseParams(%q) accepted invalid input", line)
			}
		})
	}
}
