package world

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestRouteStraight(t *testing.T) {
	r := NewRouteBuilder(geom.V2(0, 0), 0).DriveTo(geom.V2(100, 0), 10).Build()
	if math.Abs(r.Duration()-10) > 1e-9 {
		t.Errorf("duration = %v", r.Duration())
	}
	pose, speed := r.At(5)
	if math.Abs(pose.Pos.X-50) > 1e-9 || speed != 10 {
		t.Errorf("mid: %v speed %v", pose.Pos, speed)
	}
	// Before start / after end clamp.
	p0, s0 := r.At(-1)
	if p0.Pos.X != 0 || s0 != 0 {
		t.Errorf("before start: %v %v", p0.Pos, s0)
	}
	p1, s1 := r.At(100)
	if p1.Pos.X != 100 || s1 != 0 {
		t.Errorf("after end: %v %v", p1.Pos, s1)
	}
}

func TestRouteDwell(t *testing.T) {
	r := NewRouteBuilder(geom.V2(0, 0), 0).
		DriveTo(geom.V2(10, 0), 10).
		Dwell(5).
		DriveTo(geom.V2(10, 10), 10).
		Build()
	// t=3: inside dwell (drive takes 1s).
	pose, speed := r.At(3)
	if speed != 0 || pose.Pos.XY().Dist(geom.V2(10, 0)) > 1e-9 {
		t.Errorf("dwell: %v speed %v", pose.Pos, speed)
	}
	// After dwell: moving north; heading should be +Y.
	pose, speed = r.At(6.5)
	if speed != 10 {
		t.Errorf("post-dwell speed = %v", speed)
	}
	if math.Abs(pose.Yaw-math.Pi/2) > 1e-9 {
		t.Errorf("post-dwell yaw = %v", pose.Yaw)
	}
	// During the dwell the heading looks ahead to the next segment.
	pose, _ = r.At(3)
	if math.Abs(pose.Yaw-math.Pi/2) > 1e-9 {
		t.Errorf("dwell yaw = %v", pose.Yaw)
	}
}

func TestRouteLoopWraps(t *testing.T) {
	r := NewRouteBuilder(geom.V2(0, 0), 0).
		DriveTo(geom.V2(10, 0), 10).
		DriveTo(geom.V2(0, 0), 10).
		Loop().
		Build()
	// Duration 2s; t=2.5 is same as t=0.5.
	pa, _ := r.At(2.5)
	pb, _ := r.At(0.5)
	if pa.Pos.Dist(pb.Pos) > 1e-9 {
		t.Errorf("loop wrap: %v vs %v", pa.Pos, pb.Pos)
	}
	// Negative time wraps too.
	pc, _ := r.At(-1.5)
	if pc.Pos.Dist(pb.Pos) > 1e-9 {
		t.Errorf("negative wrap: %v vs %v", pc.Pos, pb.Pos)
	}
}

func TestRouteContinuity(t *testing.T) {
	r := NewRouteBuilder(geom.V2(0, 0), 0).
		DriveTo(geom.V2(50, 0), 10).
		DriveTo(geom.V2(50, 50), 5).
		Dwell(3).
		DriveTo(geom.V2(0, 50), 8).
		Build()
	prev, _ := r.At(0)
	for ts := 0.1; ts < r.Duration(); ts += 0.1 {
		cur, _ := r.At(ts)
		if cur.Pos.Dist(prev.Pos) > 10*0.1+1e-6 {
			t.Fatalf("discontinuity at t=%v: %v -> %v", ts, prev.Pos, cur.Pos)
		}
		prev = cur
	}
}

func TestRouteBuilderPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"no segments": func() { NewRouteBuilder(geom.V2(0, 0), 0).Build() },
		"zero speed":  func() { NewRouteBuilder(geom.V2(0, 0), 0).DriveTo(geom.V2(1, 0), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestCityGeneration(t *testing.T) {
	c := NewCity(DefaultCityConfig())
	if len(c.Buildings) == 0 {
		t.Fatal("no buildings generated")
	}
	// All buildings fit inside the city bounds and stay out of streets.
	size := c.Size()
	for _, b := range c.Buildings {
		if b.Box.Min.X < 0 || b.Box.Max.X > size || b.Box.Min.Y < 0 || b.Box.Max.Y > size {
			t.Fatalf("building out of bounds: %+v", b.Box)
		}
		if !b.Box.Valid() || b.Box.Max.Z <= 0 {
			t.Fatalf("degenerate building: %+v", b.Box)
		}
	}
}

func TestCityDeterminism(t *testing.T) {
	a := NewCity(DefaultCityConfig())
	b := NewCity(DefaultCityConfig())
	if len(a.Buildings) != len(b.Buildings) {
		t.Fatal("city generation not deterministic")
	}
	for i := range a.Buildings {
		if a.Buildings[i].Box != b.Buildings[i].Box {
			t.Fatal("building mismatch between identical seeds")
		}
	}
}

func TestCityCastRayGround(t *testing.T) {
	c := NewCity(DefaultCityConfig())
	// From 2m above an intersection, pointing down at 45 degrees along a
	// street: must hit the ground at range ~2*sqrt(2) unless a pole
	// interferes (choose a gap direction: straight down).
	origin := geom.V3(c.StreetCenter(1), c.StreetCenter(1), 2)
	dist, hit := c.CastRay(origin, geom.V3(0, 0, -1), 100)
	if !hit || math.Abs(dist-2) > 1e-9 {
		t.Errorf("ground ray: %v %v", dist, hit)
	}
	// Pointing up: no hit.
	if _, hit := c.CastRay(origin, geom.V3(0, 0, 1), 100); hit {
		t.Error("sky ray should miss")
	}
}

func TestCityCastRayBuilding(t *testing.T) {
	c := NewCity(DefaultCityConfig())
	b := c.Buildings[0].Box
	center := b.Center()
	// Shoot from outside toward the building center, horizontally.
	origin := geom.V3(b.Min.X-10, center.Y, math.Min(2, b.Max.Z/2))
	dist, hit := c.CastRay(origin, geom.V3(1, 0, 0), 100)
	if !hit {
		t.Fatal("building ray should hit")
	}
	if dist > 10+1e-9 {
		t.Errorf("hit distance %v should be <= 10", dist)
	}
}

func TestLaneNetwork(t *testing.T) {
	c := NewCity(DefaultCityConfig())
	ln := NewLaneNetworkForCity(c, 13.9)
	if err := ln.Validate(); err != nil {
		t.Fatal(err)
	}
	n := c.Blocks + 1
	if len(ln.Nodes) != n*n {
		t.Errorf("nodes = %d, want %d", len(ln.Nodes), n*n)
	}
	// Each interior node has 4 outgoing edges.
	interior := ln.NearestNode(geom.V2(c.StreetCenter(2), c.StreetCenter(2)))
	if got := len(ln.Out(interior)); got != 4 {
		t.Errorf("interior degree = %d", got)
	}
	// Corner has 2.
	corner := ln.NearestNode(geom.V2(0, 0))
	if got := len(ln.Out(corner)); got != 2 {
		t.Errorf("corner degree = %d", got)
	}
	if ln.Out(-1) != nil {
		t.Error("Out(-1) should be nil")
	}
}

func TestScenarioDeterminism(t *testing.T) {
	a := NewScenario(DefaultScenarioConfig())
	b := NewScenario(DefaultScenarioConfig())
	for _, ts := range []float64{0, 13.37, 120, 400} {
		sa, sb := a.At(ts), b.At(ts)
		if sa.Ego.Pose != sb.Ego.Pose {
			t.Fatalf("ego poses differ at t=%v", ts)
		}
		if len(sa.Actors) != len(sb.Actors) {
			t.Fatalf("actor counts differ at t=%v", ts)
		}
		for i := range sa.Actors {
			if sa.Actors[i].Pose != sb.Actors[i].Pose {
				t.Fatalf("actor %d pose differs at t=%v", i, ts)
			}
		}
	}
}

func TestScenarioDurationRoughlyEightMinutes(t *testing.T) {
	s := NewScenario(DefaultScenarioConfig())
	d := s.Duration()
	if d < 300 || d > 700 {
		t.Errorf("ego lap duration = %v s, want a few hundred seconds", d)
	}
}

func TestScenarioActorsStayInCity(t *testing.T) {
	s := NewScenario(DefaultScenarioConfig())
	size := s.City.Size()
	for ts := 0.0; ts < 100; ts += 7.3 {
		snap := s.At(ts)
		for _, a := range snap.Actors {
			p := a.Pose.XY()
			if p.X < -1 || p.Y < -1 || p.X > size+1 || p.Y > size+1 {
				t.Fatalf("actor %d out of city at t=%v: %v", a.ID, ts, p)
			}
		}
	}
}

func TestScenarioSceneDensityVaries(t *testing.T) {
	s := NewScenario(DefaultScenarioConfig())
	counts := map[int]int{}
	for ts := 0.0; ts < s.Duration(); ts += 5 {
		snap := s.At(ts)
		counts[len(snap.ActorsNear(50))]++
	}
	if len(counts) < 3 {
		t.Errorf("actor density should vary along the drive, got %v", counts)
	}
}

func TestActorStateGeometry(t *testing.T) {
	a := ActorState{
		Kind: KindCar,
		Pose: geom.NewPose(10, 20, 0, 0),
		Dim:  KindCar.Dimensions(),
	}
	fp := a.Footprint()
	if !fp.Contains(geom.V2(10, 20)) {
		t.Error("footprint should contain center")
	}
	if !fp.Contains(geom.V2(12, 20)) { // within half length 2.2
		t.Error("footprint should contain nose")
	}
	if fp.Contains(geom.V2(13, 20)) {
		t.Error("footprint should not extend past nose")
	}
	box := a.BodyBox()
	if box.Max.Z != a.Dim.Z {
		t.Errorf("body box height = %v", box.Max.Z)
	}
	a.Speed = 5
	v := a.Velocity()
	if math.Abs(v.X-5) > 1e-9 || math.Abs(v.Y) > 1e-9 {
		t.Errorf("velocity = %v", v)
	}
}

func TestActorKindStrings(t *testing.T) {
	if KindCar.String() != "car" || KindPedestrian.String() != "pedestrian" ||
		KindTruck.String() != "truck" || KindCyclist.String() != "cyclist" {
		t.Error("kind strings wrong")
	}
	if ActorKind(99).String() != "unknown" {
		t.Error("unknown kind string")
	}
}

func TestSnapshotActorsNear(t *testing.T) {
	snap := Snapshot{
		Ego: ActorState{Pose: geom.NewPose(0, 0, 0, 0)},
		Actors: []ActorState{
			{ID: 1, Pose: geom.NewPose(10, 0, 0, 0)},
			{ID: 2, Pose: geom.NewPose(100, 0, 0, 0)},
		},
	}
	near := snap.ActorsNear(50)
	if len(near) != 1 || near[0].ID != 1 {
		t.Errorf("near = %+v", near)
	}
}
