package world

import (
	"errors"
	"math"
)

// Sentinel errors for the scenario generator. Every rejection from
// BuildCity/BuildScenario (and therefore from the params codec) wraps
// one of these, so callers — the adversarial search harness mutating
// configs, the codec fuzzer feeding hostile input — can classify the
// failure with errors.Is instead of parsing messages. The generator
// contract is: a valid drivable scenario, or a named sentinel error,
// never a panic.
var (
	// ErrCityConfig marks a city parameterization the generator cannot
	// realize (non-positive sizes, density outside [0,1], ...).
	ErrCityConfig = errors.New("world: invalid city config")
	// ErrCityTooSmall marks a city with too few blocks to host the
	// scripted ego loop and traffic placement (minimum 3 per axis).
	ErrCityTooSmall = errors.New("world: city too small for a drivable ego loop")
	// ErrTrafficConfig marks invalid traffic volumes.
	ErrTrafficConfig = errors.New("world: invalid traffic config")
	// ErrEgoConfig marks an undrivable ego parameterization.
	ErrEgoConfig = errors.New("world: invalid ego config")
	// ErrBurstConfig marks an invalid pedestrian-burst parameterization.
	ErrBurstConfig = errors.New("world: invalid pedestrian burst config")
	// ErrNoiseConfig marks an invalid sensor-noise/weather profile.
	ErrNoiseConfig = errors.New("world: invalid noise profile")
	// ErrSpaceConfig marks a degenerate sampling space.
	ErrSpaceConfig = errors.New("world: invalid param space")
	// ErrParams marks scenario-parameter text the codec cannot decode.
	ErrParams = errors.New("world: invalid scenario params")
)

// maxBlocks bounds city size so hostile codec input cannot demand an
// effectively unbounded allocation (lots grow quadratically in blocks).
const maxBlocks = 64

// maxTrafficActors bounds the total scripted population per class for
// the same reason.
const maxTrafficActors = 4096

func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}
