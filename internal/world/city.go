package world

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/mathx"
)

// City is the static environment: a rectangular street grid with
// box-shaped buildings filling the blocks, plus street furniture
// (poles). Streets run every BlockSize meters in both axes.
type City struct {
	// Blocks is the number of city blocks per axis.
	Blocks int
	// BlockSize is the street-to-street pitch in meters.
	BlockSize float64
	// StreetWidth is the drivable width of each street.
	StreetWidth float64
	Buildings   []Building
	// index is a coarse uniform grid over building indices for fast ray
	// queries from the LiDAR model.
	index     map[[2]int][]int32
	indexCell float64
}

// CityConfig parameterizes city generation.
type CityConfig struct {
	Blocks      int
	BlockSize   float64
	StreetWidth float64
	Seed        uint64
	// BuildingDensity in [0,1] is the chance a lot inside a block gets
	// a building.
	BuildingDensity float64
	// FurnitureSeed, when nonzero, gives street furniture (poles) its
	// own RNG stream instead of continuing the building stream. The
	// scripted default keeps it zero — the shared stream is pinned by
	// historical golden hashes — but generated cities always set it, so
	// mutating BuildingDensity cannot reshuffle pole placement.
	FurnitureSeed uint64
}

// DefaultCityConfig mirrors a dense mid-rise urban district, matching
// the "city of Nagoya" drive context in scale.
func DefaultCityConfig() CityConfig {
	return CityConfig{
		Blocks:          8,
		BlockSize:       100,
		StreetWidth:     14,
		Seed:            0xA07A0,
		BuildingDensity: 0.85,
	}
}

// NewCity deterministically generates a city from the config. It
// panics on an invalid config; generated configs should go through
// BuildCity, which reports the problem as a sentinel error instead.
func NewCity(cfg CityConfig) *City {
	c, err := BuildCity(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// BuildCity deterministically generates a city from the config,
// rejecting invalid parameter combinations with an error wrapping
// ErrCityConfig (hostile or mutated configs must never panic the
// generator).
func BuildCity(cfg CityConfig) (*City, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := mathx.NewRNG(cfg.Seed)
	c := &City{
		Blocks:      cfg.Blocks,
		BlockSize:   cfg.BlockSize,
		StreetWidth: cfg.StreetWidth,
		indexCell:   cfg.BlockSize / 2,
	}
	inner := cfg.BlockSize - cfg.StreetWidth // usable block interior
	lotsPerSide := 3
	lot := inner / float64(lotsPerSide)
	for bx := 0; bx < cfg.Blocks; bx++ {
		for by := 0; by < cfg.Blocks; by++ {
			// Block interior origin (after the half street on each side).
			ox := float64(bx)*cfg.BlockSize + cfg.StreetWidth/2
			oy := float64(by)*cfg.BlockSize + cfg.StreetWidth/2
			for lx := 0; lx < lotsPerSide; lx++ {
				for ly := 0; ly < lotsPerSide; ly++ {
					if !rng.Bool(cfg.BuildingDensity) {
						continue
					}
					// Building footprint inside the lot with a margin.
					margin := rng.Range(1, 4)
					w := lot - 2*margin
					if w < 4 {
						continue
					}
					h := rng.Range(6, 30) // building height
					x0 := ox + float64(lx)*lot + margin
					y0 := oy + float64(ly)*lot + margin
					c.Buildings = append(c.Buildings, Building{
						Box: geom.NewAABB3(geom.V3(x0, y0, 0), geom.V3(x0+w, y0+w, h)),
					})
				}
			}
		}
	}
	// Street furniture: poles at intersection corners. With a furniture
	// seed the poles own their stream; otherwise they continue the
	// building stream (the legacy derivation the goldens pin).
	frng := rng
	if cfg.FurnitureSeed != 0 {
		frng = mathx.NewRNG(cfg.FurnitureSeed)
	}
	for ix := 0; ix <= cfg.Blocks; ix++ {
		for iy := 0; iy <= cfg.Blocks; iy++ {
			if !frng.Bool(0.6) {
				continue
			}
			px := float64(ix)*cfg.BlockSize + cfg.StreetWidth/2 + 1
			py := float64(iy)*cfg.BlockSize + cfg.StreetWidth/2 + 1
			if px+0.15 > c.Size() || py+0.15 > c.Size() {
				continue
			}
			c.Buildings = append(c.Buildings, Building{
				Box: geom.NewAABB3(geom.V3(px-0.15, py-0.15, 0), geom.V3(px+0.15, py+0.15, 6)),
			})
		}
	}
	c.buildIndex()
	return c, nil
}

// Validate rejects parameter combinations the generator cannot turn
// into a well-formed city. Every violation wraps ErrCityConfig.
func (cfg CityConfig) Validate() error {
	switch {
	case cfg.Blocks <= 0 || cfg.Blocks > maxBlocks:
		return fmt.Errorf("%w: blocks %d outside [1, %d]", ErrCityConfig, cfg.Blocks, maxBlocks)
	case !isFinite(cfg.BlockSize) || cfg.BlockSize <= 0:
		return fmt.Errorf("%w: block size %v not a positive finite length", ErrCityConfig, cfg.BlockSize)
	case !isFinite(cfg.StreetWidth) || cfg.StreetWidth < 0 || cfg.StreetWidth >= cfg.BlockSize:
		return fmt.Errorf("%w: street width %v outside [0, block size)", ErrCityConfig, cfg.StreetWidth)
	case !isFinite(cfg.BuildingDensity) || cfg.BuildingDensity < 0 || cfg.BuildingDensity > 1:
		return fmt.Errorf("%w: building density %v outside [0, 1]", ErrCityConfig, cfg.BuildingDensity)
	}
	return nil
}

func (c *City) buildIndex() {
	c.index = make(map[[2]int][]int32)
	for i, b := range c.Buildings {
		min := b.Box.Min
		max := b.Box.Max
		x0 := int(min.X / c.indexCell)
		x1 := int(max.X / c.indexCell)
		y0 := int(min.Y / c.indexCell)
		y1 := int(max.Y / c.indexCell)
		for x := x0; x <= x1; x++ {
			for y := y0; y <= y1; y++ {
				k := [2]int{x, y}
				c.index[k] = append(c.index[k], int32(i))
			}
		}
	}
}

// Size returns the total extent of the city per axis, meters.
func (c *City) Size() float64 { return float64(c.Blocks) * c.BlockSize }

// StreetCenter returns the centerline coordinate of street index i
// (streets are at multiples of BlockSize).
func (c *City) StreetCenter(i int) float64 { return float64(i) * c.BlockSize }

// CastRay intersects a ray with the static environment (ground plane at
// z=0 plus buildings) and returns the hit distance and whether anything
// was hit within maxRange.
func (c *City) CastRay(origin, dir geom.Vec3, maxRange float64) (float64, bool) {
	best := maxRange
	hit := false
	// Ground plane z=0.
	if dir.Z < -1e-9 {
		t := -origin.Z / dir.Z
		if t > 0 && t < best {
			best = t
			hit = true
		}
	}
	// Walk the coarse grid cells along the ray's ground projection.
	// For simplicity and robustness we visit every cell in the bounding
	// region of the clipped ray; rays are at most maxRange long.
	end := origin.Add(dir.Scale(best))
	x0 := int(minf(origin.X, end.X) / c.indexCell)
	x1 := int(maxf(origin.X, end.X) / c.indexCell)
	y0 := int(minf(origin.Y, end.Y) / c.indexCell)
	y1 := int(maxf(origin.Y, end.Y) / c.indexCell)
	seen := make(map[int32]struct{}, 8)
	for x := x0; x <= x1; x++ {
		for y := y0; y <= y1; y++ {
			for _, bi := range c.index[[2]int{x, y}] {
				if _, dup := seen[bi]; dup {
					continue
				}
				seen[bi] = struct{}{}
				if t, ok := c.Buildings[bi].Box.RayHit(origin, dir, best); ok && t < best {
					best = t
					hit = true
				}
			}
		}
	}
	return best, hit
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
