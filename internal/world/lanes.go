package world

import (
	"fmt"

	"repro/internal/geom"
)

// LaneNode is an intersection in the lane graph.
type LaneNode struct {
	ID  int
	Pos geom.Vec2
}

// LaneEdge is a directed drivable connection between intersections.
type LaneEdge struct {
	From, To   int
	Length     float64
	SpeedLimit float64
}

// LaneNetwork is the road topology the planners operate on — the part
// of an HD map annotation (allowed ways, speed limits) our synthetic
// map does carry, unlike the paper's un-annotated Nagoya point cloud.
type LaneNetwork struct {
	Nodes []LaneNode
	Edges []LaneEdge
	// adj[n] lists indices into Edges leaving node n.
	adj [][]int
}

// NewLaneNetworkForCity builds the grid lane graph for a city: one node
// per intersection, bidirectional edges along every street.
func NewLaneNetworkForCity(c *City, speedLimit float64) *LaneNetwork {
	n := c.Blocks + 1
	ln := &LaneNetwork{}
	id := func(ix, iy int) int { return iy*n + ix }
	for iy := 0; iy < n; iy++ {
		for ix := 0; ix < n; ix++ {
			ln.Nodes = append(ln.Nodes, LaneNode{
				ID:  id(ix, iy),
				Pos: geom.V2(c.StreetCenter(ix), c.StreetCenter(iy)),
			})
		}
	}
	addBoth := func(a, b int) {
		l := ln.Nodes[a].Pos.Dist(ln.Nodes[b].Pos)
		ln.Edges = append(ln.Edges,
			LaneEdge{From: a, To: b, Length: l, SpeedLimit: speedLimit},
			LaneEdge{From: b, To: a, Length: l, SpeedLimit: speedLimit},
		)
	}
	for iy := 0; iy < n; iy++ {
		for ix := 0; ix < n; ix++ {
			if ix+1 < n {
				addBoth(id(ix, iy), id(ix+1, iy))
			}
			if iy+1 < n {
				addBoth(id(ix, iy), id(ix, iy+1))
			}
		}
	}
	ln.buildAdj()
	return ln
}

func (ln *LaneNetwork) buildAdj() {
	ln.adj = make([][]int, len(ln.Nodes))
	for i, e := range ln.Edges {
		ln.adj[e.From] = append(ln.adj[e.From], i)
	}
}

// Out returns the indices of edges leaving node id.
func (ln *LaneNetwork) Out(id int) []int {
	if id < 0 || id >= len(ln.adj) {
		return nil
	}
	return ln.adj[id]
}

// NearestNode returns the id of the node closest to p.
func (ln *LaneNetwork) NearestNode(p geom.Vec2) int {
	best, bestD := -1, 0.0
	for i, n := range ln.Nodes {
		d := n.Pos.DistSq(p)
		if best < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// Validate checks structural invariants and returns an error describing
// the first violation found.
func (ln *LaneNetwork) Validate() error {
	for i, e := range ln.Edges {
		if e.From < 0 || e.From >= len(ln.Nodes) || e.To < 0 || e.To >= len(ln.Nodes) {
			return fmt.Errorf("world: edge %d references missing node", i)
		}
		if e.Length <= 0 {
			return fmt.Errorf("world: edge %d has non-positive length", i)
		}
		if e.SpeedLimit <= 0 {
			return fmt.Errorf("world: edge %d has non-positive speed limit", i)
		}
	}
	return nil
}
