package eval

import (
	"testing"

	"repro/internal/autoware"
	"repro/internal/testenv"
	"repro/internal/world"
)

// buildStackWithLead assembles a full stack over a scenario with a
// lead vehicle (same city, so the shared HD map remains valid).
func buildStackWithLead(t *testing.T) (*autoware.Stack, *world.Scenario) {
	t.Helper()
	scfg := world.DefaultScenarioConfig()
	scfg.LeadVehicle = true
	scen := world.NewScenario(scfg)
	cfg := autoware.DefaultConfig(autoware.DetectorSSD300)
	s, err := autoware.BuildWithMap(cfg, scen, testenv.Map())
	if err != nil {
		t.Fatal(err)
	}
	return s, scen
}
