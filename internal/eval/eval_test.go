package eval

import (
	"math"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/msgs"
	"repro/internal/world"
)

func snapWithActors(actors ...world.ActorState) *world.Snapshot {
	return &world.Snapshot{
		Ego:    world.ActorState{Pose: geom.NewPose(0, 0, 0, 0)},
		Actors: actors,
	}
}

func actor(id int, kind world.ActorKind, x, y float64) world.ActorState {
	return world.ActorState{
		ID: id, Kind: kind,
		Pose: geom.NewPose(x, y, 0, 0),
		Dim:  kind.Dimensions(),
	}
}

func obj(id int, label msgs.ObjectLabel, x, y float64) msgs.DetectedObject {
	return msgs.DetectedObject{ID: id, Label: label, Pose: geom.NewPose(x, y, 0, 0)}
}

func TestScoreFramePerfectMatch(t *testing.T) {
	snap := snapWithActors(actor(1, world.KindCar, 10, 0))
	f := ScoreFrame([]msgs.DetectedObject{obj(5, msgs.LabelCar, 10.3, 0.2)}, snap, 50, 2)
	if len(f.Matches) != 1 || f.FalsePositives != 0 || f.Misses != 0 {
		t.Fatalf("score = %+v", f)
	}
	m := f.Matches[0]
	if m.ObjectID != 5 || m.ActorID != 1 || !m.LabelCorrect {
		t.Errorf("match = %+v", m)
	}
	if f.Precision() != 1 || f.Recall() != 1 {
		t.Errorf("P=%v R=%v", f.Precision(), f.Recall())
	}
}

func TestScoreFrameWrongLabel(t *testing.T) {
	snap := snapWithActors(actor(1, world.KindPedestrian, 10, 0))
	f := ScoreFrame([]msgs.DetectedObject{obj(5, msgs.LabelCar, 10, 0)}, snap, 50, 2)
	if len(f.Matches) != 1 || f.Matches[0].LabelCorrect {
		t.Errorf("wrong label should still match: %+v", f)
	}
	if f.LabelTotal != 1 || f.LabelCorrect != 0 {
		t.Errorf("label counters = %d/%d", f.LabelCorrect, f.LabelTotal)
	}
}

func TestScoreFrameUnknownLabelNotCounted(t *testing.T) {
	snap := snapWithActors(actor(1, world.KindCar, 10, 0))
	f := ScoreFrame([]msgs.DetectedObject{obj(5, msgs.LabelUnknown, 10, 0)}, snap, 50, 2)
	if f.LabelTotal != 0 {
		t.Error("unknown labels should not enter label accuracy")
	}
	if len(f.Matches) != 1 {
		t.Error("unknown-labeled object should still match positionally")
	}
}

func TestScoreFrameFalsePositiveAndMiss(t *testing.T) {
	snap := snapWithActors(actor(1, world.KindCar, 10, 0))
	f := ScoreFrame([]msgs.DetectedObject{obj(5, msgs.LabelCar, 30, 30)}, snap, 50, 2)
	if len(f.Matches) != 0 || f.FalsePositives != 1 || f.Misses != 1 {
		t.Errorf("score = %+v", f)
	}
}

func TestScoreFrameRadiusGate(t *testing.T) {
	// Both the actor and the object are far away: neither penalized.
	snap := snapWithActors(actor(1, world.KindCar, 200, 0))
	f := ScoreFrame([]msgs.DetectedObject{obj(5, msgs.LabelCar, 300, 0)}, snap, 50, 2)
	if len(f.Matches) != 0 || f.FalsePositives != 0 || f.Misses != 0 {
		t.Errorf("out-of-range items should be ignored: %+v", f)
	}
}

func TestScoreFrameGreedyNearest(t *testing.T) {
	// Two objects near one actor: nearest wins, other is FP.
	snap := snapWithActors(actor(1, world.KindCar, 10, 0))
	f := ScoreFrame([]msgs.DetectedObject{
		obj(5, msgs.LabelCar, 11.5, 0),
		obj(6, msgs.LabelCar, 10.2, 0),
	}, snap, 50, 2)
	if len(f.Matches) != 1 || f.Matches[0].ObjectID != 6 {
		t.Errorf("nearest should win: %+v", f)
	}
	if f.FalsePositives != 1 {
		t.Errorf("FPs = %d", f.FalsePositives)
	}
}

func TestAggregateIDSwitches(t *testing.T) {
	a := NewAggregate()
	snap := snapWithActors(actor(1, world.KindCar, 10, 0))
	// Same actor matched by object 5, then object 9.
	a.AddFrame(ScoreFrame([]msgs.DetectedObject{obj(5, msgs.LabelCar, 10, 0)}, snap, 50, 2))
	a.AddFrame(ScoreFrame([]msgs.DetectedObject{obj(5, msgs.LabelCar, 10, 0)}, snap, 50, 2))
	a.AddFrame(ScoreFrame([]msgs.DetectedObject{obj(9, msgs.LabelCar, 10, 0)}, snap, 50, 2))
	r := a.Report()
	if r.IDSwitches != 1 {
		t.Errorf("switches = %d", r.IDSwitches)
	}
	if r.Precision != 1 || r.Recall != 1 || r.LabelAccuracy != 1 {
		t.Errorf("report = %+v", r)
	}
	if !r.IsFinite() {
		t.Error("report has non-finite values")
	}
}

func TestAggregateLocalization(t *testing.T) {
	a := NewAggregate()
	a.AddLocalization(0.2)
	a.AddLocalization(0.6)
	r := a.Report()
	if math.Abs(r.MeanLocErr-0.4) > 1e-9 || r.MaxLocErr != 0.6 {
		t.Errorf("loc = %+v", r)
	}
}

func TestMOTAish(t *testing.T) {
	a := NewAggregate()
	snap := snapWithActors(actor(1, world.KindCar, 10, 0), actor(2, world.KindCar, 20, 0))
	// One matched, one missed, no FP.
	a.AddFrame(ScoreFrame([]msgs.DetectedObject{obj(5, msgs.LabelCar, 10, 0)}, snap, 50, 2))
	// MOTA = 1 - (1 miss)/(2 gt) = 0.5.
	if got := a.MOTAish(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("MOTA = %v", got)
	}
	if NewAggregate().MOTAish() != 0 {
		t.Error("empty MOTA should be 0")
	}
}

func TestEmptyReportIsFinite(t *testing.T) {
	r := NewAggregate().Report()
	if !r.IsFinite() {
		t.Error("empty report should be finite")
	}
}

// TestEndToEndPerceptionQuality runs the real stack — with a lead
// vehicle as a guaranteed nearby target — and checks the perception
// output is substantively correct: the lead car is perceived most of
// the time and localization is meter-level.
func TestEndToEndPerceptionQuality(t *testing.T) {
	stack, cfgScenario := buildStackWithLead(t)
	agg := NewAggregate()
	for i := 0; i < 20; i++ {
		stack.Run(500 * time.Millisecond)
		now := stack.Sim.Now().Seconds()
		snap := cfgScenario.At(now)
		var objs []msgs.DetectedObject
		for _, tr := range stack.Tracker.Tracks() {
			if !tr.Confirmed(3) {
				continue
			}
			pos := tr.IMM.Pos()
			objs = append(objs, msgs.DetectedObject{
				ID: tr.ID, Label: tr.Label,
				Pose: geom.Pose{Pos: geom.V3(pos.X, pos.Y, 0)},
			})
		}
		// Score actors within close range. The association gate of 5 m
		// allows for the physical offset between an actor's center and
		// its LiDAR-visible face plus one pipeline latency of motion.
		agg.AddFrame(ScoreFrame(objs, &snap, 25, 5.0))
		if pose, ok := stack.NDT.Pose(); ok {
			agg.AddLocalization(pose.XY().Dist(snap.Ego.Pose.XY()))
		}
	}
	r := agg.Report()
	if r.Frames != 20 {
		t.Fatalf("frames = %d", r.Frames)
	}
	if r.Recall < 0.5 {
		t.Errorf("recall = %.2f — the stack misses most nearby actors", r.Recall)
	}
	if r.MeanLocErr > 2 {
		t.Errorf("mean localization error = %.2f m", r.MeanLocErr)
	}
	if !r.IsFinite() {
		t.Error("report has non-finite values")
	}
}
