// Package eval scores perception output against world ground truth:
// detection precision/recall, label accuracy, tracking continuity and
// localization error. The paper scopes quality out ("assessing the most
// propitious image detector is out of the scope"), but a usable library
// needs to demonstrate the stack perceives correctly, not just quickly —
// and quality metrics guard the reproduction against degenerate
// configurations that would be fast by not working.
package eval

import (
	"math"
	"sort"

	"repro/internal/msgs"
	"repro/internal/world"
)

// Match pairs one perceived object with one ground-truth actor.
type Match struct {
	ObjectID int
	ActorID  int
	Dist     float64
	// LabelCorrect is true when the perceived label equals the actor
	// kind (unknown never counts as correct).
	LabelCorrect bool
}

// FrameScore is the outcome of scoring one perception frame.
type FrameScore struct {
	Matches        []Match
	FalsePositives int // perceived objects with no actor nearby
	Misses         int // visible actors nobody perceived
	LabelCorrect   int
	LabelTotal     int // matched objects carrying a non-unknown label
}

// Precision returns matched / perceived.
func (f FrameScore) Precision() float64 {
	det := len(f.Matches) + f.FalsePositives
	if det == 0 {
		return 0
	}
	return float64(len(f.Matches)) / float64(det)
}

// Recall returns matched / visible actors.
func (f FrameScore) Recall() float64 {
	vis := len(f.Matches) + f.Misses
	if vis == 0 {
		return 0
	}
	return float64(len(f.Matches)) / float64(vis)
}

// labelFor maps actor kinds to detection labels.
func labelFor(k world.ActorKind) msgs.ObjectLabel {
	switch k {
	case world.KindCar:
		return msgs.LabelCar
	case world.KindTruck:
		return msgs.LabelTruck
	case world.KindPedestrian:
		return msgs.LabelPedestrian
	case world.KindCyclist:
		return msgs.LabelCyclist
	default:
		return msgs.LabelUnknown
	}
}

// ScoreFrame greedily matches perceived objects (map frame) against the
// snapshot's actors within the given radius of the ego and the given
// association distance. Perceived objects beyond the radius are ignored
// (the stack cannot be penalized for not seeing past its sensors), and
// static-structure detections (no matching actor but also no actor
// claim) count as false positives only within the radius.
func ScoreFrame(objects []msgs.DetectedObject, snap *world.Snapshot, radius, assocDist float64) FrameScore {
	actors := snap.ActorsNear(radius)
	ego := snap.Ego.Pose.XY()

	type cand struct {
		obj, act int
		d        float64
	}
	var cands []cand
	inRange := make([]bool, len(objects))
	for oi, o := range objects {
		p := o.Pose.XY()
		if p.Dist(ego) > radius {
			continue
		}
		inRange[oi] = true
		for ai, a := range actors {
			if d := p.Dist(a.Pose.XY()); d <= assocDist {
				cands = append(cands, cand{obj: oi, act: ai, d: d})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].d < cands[j].d })

	var score FrameScore
	objUsed := make([]bool, len(objects))
	actUsed := make([]bool, len(actors))
	for _, c := range cands {
		if objUsed[c.obj] || actUsed[c.act] {
			continue
		}
		objUsed[c.obj] = true
		actUsed[c.act] = true
		o := objects[c.obj]
		a := actors[c.act]
		m := Match{
			ObjectID: o.ID,
			ActorID:  a.ID,
			Dist:     c.d,
		}
		if o.Label != msgs.LabelUnknown {
			score.LabelTotal++
			if o.Label == labelFor(a.Kind) {
				m.LabelCorrect = true
				score.LabelCorrect++
			}
		}
		score.Matches = append(score.Matches, m)
	}
	for oi := range objects {
		if inRange[oi] && !objUsed[oi] {
			score.FalsePositives++
		}
	}
	for ai := range actors {
		if !actUsed[ai] {
			score.Misses++
		}
	}
	return score
}

// Aggregate accumulates frame scores over a drive.
type Aggregate struct {
	frames     int
	matches    int
	falsePos   int
	misses     int
	labelOK    int
	labelTotal int
	distSum    float64
	// Track-continuity bookkeeping: the perceived object ID seen for
	// each actor, and how often it changed.
	lastIDForActor map[int]int
	idSwitches     int
	// Localization error accumulation.
	locErrSum float64
	locErrMax float64
	locFrames int
}

// NewAggregate creates an empty accumulator.
func NewAggregate() *Aggregate {
	return &Aggregate{lastIDForActor: make(map[int]int)}
}

// AddFrame folds one frame score in.
func (a *Aggregate) AddFrame(f FrameScore) {
	a.frames++
	a.matches += len(f.Matches)
	a.falsePos += f.FalsePositives
	a.misses += f.Misses
	a.labelOK += f.LabelCorrect
	a.labelTotal += f.LabelTotal
	for _, m := range f.Matches {
		a.distSum += m.Dist
		if prev, ok := a.lastIDForActor[m.ActorID]; ok && prev != m.ObjectID {
			a.idSwitches++
		}
		a.lastIDForActor[m.ActorID] = m.ObjectID
	}
}

// AddLocalization records one localization error sample (meters).
func (a *Aggregate) AddLocalization(errMeters float64) {
	a.locErrSum += errMeters
	if errMeters > a.locErrMax {
		a.locErrMax = errMeters
	}
	a.locFrames++
}

// Report condenses the aggregate into the final metrics.
type Report struct {
	Frames        int
	Precision     float64
	Recall        float64
	LabelAccuracy float64
	MeanMatchDist float64
	IDSwitches    int
	MeanLocErr    float64
	MaxLocErr     float64
}

// Report computes the final metrics.
func (a *Aggregate) Report() Report {
	r := Report{Frames: a.frames, IDSwitches: a.idSwitches}
	if det := a.matches + a.falsePos; det > 0 {
		r.Precision = float64(a.matches) / float64(det)
	}
	if vis := a.matches + a.misses; vis > 0 {
		r.Recall = float64(a.matches) / float64(vis)
	}
	if a.labelTotal > 0 {
		r.LabelAccuracy = float64(a.labelOK) / float64(a.labelTotal)
	}
	if a.matches > 0 {
		r.MeanMatchDist = a.distSum / float64(a.matches)
	}
	if a.locFrames > 0 {
		r.MeanLocErr = a.locErrSum / float64(a.locFrames)
		r.MaxLocErr = a.locErrMax
	}
	return r
}

// MOTAish returns a MOTA-style combined score: 1 - (misses + false
// positives + switches) / ground-truth observations. Can be negative
// for very poor tracking, like the original metric.
func (a *Aggregate) MOTAish() float64 {
	gt := a.matches + a.misses
	if gt == 0 {
		return 0
	}
	return 1 - float64(a.misses+a.falsePos+a.idSwitches)/float64(gt)
}

// IsFinite sanity-checks a report for NaN/Inf leakage.
func (r Report) IsFinite() bool {
	for _, v := range []float64{r.Precision, r.Recall, r.LabelAccuracy, r.MeanMatchDist, r.MeanLocErr, r.MaxLocErr} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
