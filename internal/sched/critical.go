package sched

import (
	"sort"
	"time"

	"repro/internal/trace"
)

// NodeCriticality is one node's accumulated critical-path accounting
// across a set of completed chains.
type NodeCriticality struct {
	Node string
	// OnPathTime is the total span time (queue wait + compute + offload)
	// the node contributed while on a chain's critical walk.
	OnPathTime time.Duration
	// OnPathCount counts chains where the node was on the critical walk.
	OnPathCount int
	// Appearances counts chains where the node appeared at all.
	Appearances int
	// MinSlack is the smallest measured slack over every chain where the
	// node was off the critical walk: how much later its output could
	// have arrived without delaying the terminal. Zero when the node was
	// ever on the walk (an on-path span has no slack by definition).
	MinSlack time.Duration
	// Share is OnPathTime over the total makespan of all chains — the
	// fraction of measured end-to-end latency this node carried, and the
	// quantity priorities derive from.
	Share float64
}

// Criticality is the per-node result of analyzing a chain population.
type Criticality struct {
	nodes         map[string]*NodeCriticality
	totalMakespan time.Duration
	chains        int
}

// Analyze walks every chain backwards from its terminal span and
// accumulates per-node criticality. At each step the *gating* parent —
// the one whose output arrived last, i.e. with the latest finish stamp
// (ties to the earlier span for determinism) — extends the critical
// walk; every other parent p is charged slack gating.Finished −
// p.Finished, the measured headroom it had. The walk ends at a span
// with no recorded parents (a sensor fed it directly).
func Analyze(chains []trace.Chain) *Criticality {
	c := &Criticality{nodes: make(map[string]*NodeCriticality)}
	for _, ch := range chains {
		c.analyzeOne(ch)
	}
	c.finalize()
	return c
}

func (c *Criticality) analyzeOne(ch trace.Chain) {
	if len(ch.Spans) == 0 {
		return
	}
	c.chains++
	c.totalMakespan += ch.Makespan()

	seen := make(map[string]bool, len(ch.Spans))
	for _, sp := range ch.Spans {
		if !seen[sp.Node] {
			seen[sp.Node] = true
			c.node(sp.Node).Appearances++
		}
	}

	onPath := make(map[string]bool, len(ch.Spans))
	cur := len(ch.Spans) - 1 // the terminal producer
	for cur >= 0 {
		sp := ch.Spans[cur]
		nc := c.node(sp.Node)
		nc.OnPathTime += sp.Duration()
		if !onPath[sp.Node] {
			onPath[sp.Node] = true
			nc.OnPathCount++
		}
		if len(sp.Parents) == 0 {
			break
		}
		gating := sp.Parents[0]
		for _, p := range sp.Parents[1:] {
			if ch.Spans[p].Finished > ch.Spans[gating].Finished {
				gating = p
			}
		}
		for _, p := range sp.Parents {
			if p == gating {
				continue
			}
			slack := ch.Spans[gating].Finished - ch.Spans[p].Finished
			off := c.node(ch.Spans[p].Node)
			if off.MinSlack == 0 || slack < off.MinSlack {
				// Only meaningful while the node has never been on a
				// walk; finalize clears it otherwise.
				off.MinSlack = slack
			}
		}
		cur = gating
	}
}

func (c *Criticality) node(name string) *NodeCriticality {
	nc := c.nodes[name]
	if nc == nil {
		nc = &NodeCriticality{Node: name}
		c.nodes[name] = nc
	}
	return nc
}

// finalize computes shares and zeroes the slack of nodes that made any
// critical walk (slack only describes consistently-off-path nodes).
func (c *Criticality) finalize() {
	for _, nc := range c.nodes {
		if c.totalMakespan > 0 {
			nc.Share = float64(nc.OnPathTime) / float64(c.totalMakespan)
		}
		if nc.OnPathCount > 0 {
			nc.MinSlack = 0
		}
	}
}

// Chains returns how many chains the analysis consumed.
func (c *Criticality) Chains() int { return c.chains }

// Priority returns the node's criticality share (0 for unseen nodes) —
// the tie-break quantity the executor's deadline pick consults.
func (c *Criticality) Priority(node string) float64 {
	if nc := c.nodes[node]; nc != nil {
		return nc.Share
	}
	return 0
}

// Slack returns the node's minimum measured slack (0 for on-path or
// unseen nodes).
func (c *Criticality) Slack(node string) time.Duration {
	if nc := c.nodes[node]; nc != nil {
		return nc.MinSlack
	}
	return 0
}

// Nodes returns per-node criticality sorted by descending share, then
// name — the report order for DESIGN §11's priority table.
func (c *Criticality) Nodes() []NodeCriticality {
	out := make([]NodeCriticality, 0, len(c.nodes))
	for _, nc := range c.nodes {
		out = append(out, *nc)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Share != out[j].Share {
			return out[i].Share > out[j].Share
		}
		return out[i].Node < out[j].Node
	})
	return out
}
