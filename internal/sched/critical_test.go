package sched

import (
	"errors"
	"testing"
	"time"

	"repro/internal/trace"
)

func ms(v int) time.Duration { return time.Duration(v) * time.Millisecond }

// span is a test shorthand: arrived == started (no queue wait) unless a
// test builds the Span directly.
func span(node string, arrived, finished int, parents ...int) trace.Span {
	return trace.Span{Node: node, Arrived: ms(arrived), Started: ms(arrived), Finished: ms(finished), Parents: parents}
}

func TestAnalyzeLineageGraphs(t *testing.T) {
	cases := []struct {
		name      string
		chain     trace.Chain
		wantOn    []string                 // nodes on the critical walk
		wantSlack map[string]time.Duration // expected MinSlack for off-path nodes
	}{
		{
			// A fans out to B (slow) and C (fast); D fuses both. The
			// critical walk is D→B→A, and C has 20 ms of slack.
			name: "diamond",
			chain: trace.Chain{
				Path: "p", OriginStamp: 0, Terminal: ms(70),
				Spans: []trace.Span{
					span("A", 0, 10),
					span("B", 10, 50, 0),
					span("C", 10, 30, 0),
					span("D", 50, 70, 1, 2),
				},
			},
			wantOn:    []string{"A", "B", "D"},
			wantSlack: map[string]time.Duration{"C": ms(20)},
		},
		{
			// Two sensor roots feed a fusion node directly; the later
			// root gates, the earlier one has the difference as slack.
			name: "fan-in",
			chain: trace.Chain{
				Path: "p", OriginStamp: 0, Terminal: ms(60),
				Spans: []trace.Span{
					span("lidar", 0, 25),
					span("camera", 0, 40),
					span("fusion", 40, 60, 0, 1),
				},
			},
			wantOn:    []string{"camera", "fusion"},
			wantSlack: map[string]time.Duration{"lidar": ms(15)},
		},
		{
			// A node whose input sat queued (Started >> Arrived) still
			// charges its full arrival-to-finish window to the path:
			// queue wait is latency the schedule can reclaim.
			name: "stalled-node",
			chain: trace.Chain{
				Path: "p", OriginStamp: 0, Terminal: ms(100),
				Spans: []trace.Span{
					span("A", 0, 10),
					{Node: "stalled", Arrived: ms(10), Started: ms(80), Finished: ms(90), Parents: []int{0}},
					span("sink", 90, 100, 1),
				},
			},
			wantOn:    []string{"A", "stalled", "sink"},
			wantSlack: map[string]time.Duration{},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := Analyze([]trace.Chain{tc.chain})
			if c.Chains() != 1 {
				t.Fatalf("Chains() = %d, want 1", c.Chains())
			}
			on := make(map[string]bool, len(tc.wantOn))
			for _, n := range tc.wantOn {
				on[n] = true
				if c.Priority(n) <= 0 {
					t.Errorf("node %s: on critical path but Priority = %v", n, c.Priority(n))
				}
			}
			for _, nc := range c.Nodes() {
				if !on[nc.Node] && nc.OnPathCount != 0 {
					t.Errorf("node %s: off path but OnPathCount = %d", nc.Node, nc.OnPathCount)
				}
				if on[nc.Node] && nc.MinSlack != 0 {
					t.Errorf("node %s: on path but MinSlack = %v", nc.Node, nc.MinSlack)
				}
			}
			for n, want := range tc.wantSlack {
				if got := c.Slack(n); got != want {
					t.Errorf("node %s: MinSlack = %v, want %v", n, got, want)
				}
			}
			// Shares of on-path nodes must account for the whole makespan
			// when spans tile it exactly, as these fixtures do.
			var total float64
			for _, n := range tc.wantOn {
				total += c.Priority(n)
			}
			if total < 0.999 || total > 1.001 {
				t.Errorf("on-path shares sum to %v, want ~1", total)
			}
		})
	}
}

func TestAnalyzeSharesRankNodes(t *testing.T) {
	// The diamond's slow branch must outrank the fast one and everything
	// else — this is the property the executor's tie-break relies on.
	chain := trace.Chain{
		Path: "p", OriginStamp: 0, Terminal: ms(70),
		Spans: []trace.Span{
			span("A", 0, 10),
			span("B", 10, 50, 0),
			span("C", 10, 30, 0),
			span("D", 50, 70, 1, 2),
		},
	}
	c := Analyze([]trace.Chain{chain})
	nodes := c.Nodes()
	if len(nodes) == 0 || nodes[0].Node != "B" {
		t.Fatalf("top-ranked node = %+v, want B", nodes)
	}
	if c.Priority("B") <= c.Priority("D") || c.Priority("D") <= c.Priority("A") {
		t.Errorf("want share(B) > share(D) > share(A); got B=%v D=%v A=%v",
			c.Priority("B"), c.Priority("D"), c.Priority("A"))
	}
	if c.Priority("C") != 0 {
		t.Errorf("off-path C share = %v, want 0", c.Priority("C"))
	}
}

func TestAnalyzeEmptyAndMulti(t *testing.T) {
	c := Analyze(nil)
	if c.Chains() != 0 || c.Priority("anything") != 0 || len(c.Nodes()) != 0 {
		t.Fatalf("empty analysis not empty: %+v", c.Nodes())
	}
	// Accumulating the same chain twice doubles times but keeps shares.
	chain := trace.Chain{
		Path: "p", OriginStamp: 0, Terminal: ms(30),
		Spans: []trace.Span{span("A", 0, 10), span("B", 10, 30, 0)},
	}
	one := Analyze([]trace.Chain{chain})
	two := Analyze([]trace.Chain{chain, chain})
	if one.Priority("A") != two.Priority("A") || one.Priority("B") != two.Priority("B") {
		t.Errorf("shares changed with chain count: %v vs %v", one.Nodes(), two.Nodes())
	}
	if two.Nodes()[0].OnPathCount != 2 {
		t.Errorf("OnPathCount = %d, want 2", two.Nodes()[0].OnPathCount)
	}
}

func TestDefaultCandidatesDeterministic(t *testing.T) {
	a := DefaultCandidates(42, 3)
	b := DefaultCandidates(42, 3)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("candidate %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	if !a[0].Disabled {
		t.Fatalf("candidate 0 = %+v, want disabled baseline", a[0])
	}
	seen := map[string]bool{}
	for _, c := range a {
		if seen[c.Name] {
			t.Errorf("duplicate candidate name %q", c.Name)
		}
		seen[c.Name] = true
	}
}

func TestTunePicksBestFeasible(t *testing.T) {
	cands := []Candidate{
		{Name: "baseline", Disabled: true},
		{Name: "shedder", Knobs: Knobs{ShedBudget: ms(50)}},
		{Name: "winner", Knobs: Knobs{UsePriorities: true}},
		{Name: "broken", Knobs: Knobs{MaxInflight: 1}},
	}
	evals := map[string]Eval{
		"baseline": {Path: "p", P50: 50, P99: 120, Samples: 100},
		"shedder":  {Path: "p", P50: 10, P99: 20, Samples: 10}, // great p99, gutted sample — infeasible
		"winner":   {Path: "p", P50: 45, P99: 90, Samples: 98},
	}
	best, outcomes, err := Tune(cands, 0.5, func(c Candidate) (Eval, error) {
		if c.Name == "broken" {
			return Eval{}, errors.New("boom")
		}
		return evals[c.Name], nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if cands[best].Name != "winner" {
		t.Fatalf("best = %s, want winner", cands[best].Name)
	}
	if outcomes[1].Feasible {
		t.Errorf("shedder marked feasible despite gutted samples")
	}
	if outcomes[3].Err == nil {
		t.Errorf("broken candidate has no error recorded")
	}

	// Degenerate search: nothing beats baseline → baseline wins.
	best, _, err = Tune(cands[:2], 0.5, func(c Candidate) (Eval, error) {
		return Eval{Path: "p", P50: 50, P99: 120, Samples: 100}, nil
	})
	if err != nil || best != 0 {
		t.Fatalf("best = %d err = %v, want baseline 0", best, err)
	}

	// A non-disabled first candidate is a programmer error.
	if _, _, err := Tune(cands[1:], 0, nil); err == nil {
		t.Fatal("Tune accepted a non-baseline first candidate")
	}
}

func TestPolicyKnobs(t *testing.T) {
	chain := trace.Chain{
		Path: "p", OriginStamp: 0, Terminal: ms(30),
		Spans: []trace.Span{span("A", 0, 10), span("B", 10, 30, 0)},
	}
	crit := Analyze([]trace.Chain{chain})

	p := NewPolicy(crit, Knobs{UsePriorities: true, ShedBudget: ms(80), MaxInflight: 3})
	if p.Priority("B") <= 0 {
		t.Errorf("priorities enabled but Priority(B) = %v", p.Priority("B"))
	}
	if got := p.NodeShedBudget("B"); got != ms(80) {
		t.Errorf("NodeShedBudget = %v, want 80ms", got)
	}
	if p.MaxInflight() != 3 {
		t.Errorf("MaxInflight = %d, want 3", p.MaxInflight())
	}

	off := NewPolicy(crit, Knobs{})
	if off.Priority("B") != 0 {
		t.Errorf("priorities disabled but Priority(B) = %v", off.Priority("B"))
	}
	if off.NodeShedBudget("B") != 0 || off.MaxInflight() != 0 {
		t.Errorf("zero knobs leaked: shed=%v cap=%d", off.NodeShedBudget("B"), off.MaxInflight())
	}
	if nilCrit := NewPolicy(nil, Knobs{UsePriorities: true}); nilCrit.Priority("B") != 0 {
		t.Errorf("nil criticality but Priority(B) = %v", nilCrit.Priority("B"))
	}
}
