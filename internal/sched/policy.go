package sched

import (
	"time"
)

// Knobs is the tunable configuration a Policy applies — the search space
// of the auto-tuner. The zero value is the identity schedule: no
// priorities, no per-node shedding, no admission cap, stock queue depth.
type Knobs struct {
	// UsePriorities enables the criticality tie-break in the executor's
	// deadline pick. Off, ties fall through to registration order (the
	// seed's ordering), which keeps the candidate space anchored at the
	// baseline.
	UsePriorities bool
	// ShedBudget, when positive, sheds any candidate whose oldest origin
	// is staler than this at dispatch, on every node. It generalizes the
	// executor's global ShedBudget: frames that can no longer make the
	// 100 ms budget are removed before they burn contended CPU time.
	ShedBudget time.Duration
	// MaxInflight, when positive, caps concurrently admitted callbacks.
	// A slot is held for the CPU phase only — it frees at the CPU/GPU
	// pipeline boundary — so the cap throttles processor-sharing
	// oversubscription without serializing GPU offload.
	MaxInflight int
	// QueueDepth, when positive, overrides the vision detector's input
	// queue depth (the stack's deepest buffer and the classic source of
	// stale-frame latency).
	QueueDepth int
}

// Policy implements platform.SchedPolicy from a measured Criticality
// profile plus a Knobs setting. It is stateless at dispatch time: every
// method is a pure read, so installing it cannot perturb virtual time
// beyond the dispatch decisions it exists to make.
type Policy struct {
	crit  *Criticality
	knobs Knobs
}

// NewPolicy builds a policy. crit may be nil (priorities all zero), and
// the zero Knobs yields a policy equivalent to running unscheduled
// except for the EDF pick order itself.
func NewPolicy(crit *Criticality, k Knobs) *Policy {
	return &Policy{crit: crit, knobs: k}
}

// Knobs returns the configuration the policy was built with.
func (p *Policy) Knobs() Knobs { return p.knobs }

// Criticality returns the profile the policy was built with (may be nil).
func (p *Policy) Criticality() *Criticality { return p.crit }

// Priority returns the node's criticality share when the priority
// tie-break is enabled, else 0 for every node (deadline order with
// registration-order ties — still deterministic).
func (p *Policy) Priority(node string) float64 {
	if !p.knobs.UsePriorities || p.crit == nil {
		return 0
	}
	return p.crit.Priority(node)
}

// NodeShedBudget returns the per-node staleness budget (0 disables
// per-node shedding and defers to the executor's global budget).
func (p *Policy) NodeShedBudget(node string) time.Duration {
	return p.knobs.ShedBudget
}

// MaxInflight returns the admission cap (0 = uncapped).
func (p *Policy) MaxInflight() int { return p.knobs.MaxInflight }
