// Package sched is the critical-path deadline scheduler: the COLA-style
// optimization layer that turns the repo's measured tail pathologies
// (Finding 1's contention inflation, Finding 2's blown 100 ms budget)
// into something the executor can schedule against instead of merely
// reproduce.
//
// It has three parts. Analyze walks completed end-to-end lineage chains
// (trace.Chain) backwards from each terminal publication, attributing
// the makespan to the gating span at every step and measured slack to
// the spans that could have finished later — so per-node criticality
// comes from the drive that actually ran, not hand tuning. Policy turns
// a Criticality profile plus a Knobs setting into the executor's
// SchedPolicy: earliest-origin-deadline dispatch with criticality
// tie-breaks, per-node deadline-shedding budgets, and a CPU admission
// cap whose slot frees at the CPU/GPU pipeline boundary. Tune runs a
// deterministic seeded search over the knob space (priorities on/off,
// shed budget, inflight cap, detector queue depth) and picks the
// candidate minimizing end-to-end p99, rejecting any that guts the
// sample population.
//
// Hook point and ordering. The scheduler lives at the executor's
// *dispatch* instant, downstream of every other layer: the fault
// injector perturbs at publish (PublishFilter), the integrity guard
// adjudicates at ingress (IngressFilter), the supervisor consumes
// dispatches for dead nodes (CallbackFilter) — and only then does the
// scheduler decide which surviving (node, message) candidate runs next
// (Executor.Sched). A quarantined or crash-dropped frame is therefore
// never schedulable, and the scheduler never resurrects anything a
// layer above rejected.
//
// Ownership. The policy borrows nothing: it reads queue heads via Peek
// during the pick and never retains a message reference — popping,
// shedding and releasing stay entirely inside the executor, so the
// transport's refcount ledger is unchanged whether the scheduler is on
// or off. Everything the policy consults is virtual-time state, so a
// scheduled run is bit-identical across host worker counts; with
// Executor.Sched nil the seed FIFO dispatch is preserved byte for byte.
package sched
