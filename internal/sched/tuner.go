package sched

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/mathx"
)

// Candidate is one point in the tuner's search space.
type Candidate struct {
	// Name labels the candidate in reports and BENCH_sched.json.
	Name string
	// Disabled marks the identity candidate: run with no scheduler
	// attached at all. Candidate 0 must be Disabled — it measures the
	// baseline every other candidate is judged against, and because the
	// simulation is deterministic its numbers are exactly the untuned
	// scenario's, which is what guarantees tuned p99 ≤ baseline p99.
	Disabled bool
	Knobs    Knobs
}

// Eval is the measurement one candidate run produces: the worst path's
// end-to-end latency summary in milliseconds.
type Eval struct {
	Path    string  `json:"path"`
	P50     float64 `json:"p50_ms"`
	P99     float64 `json:"p99_ms"`
	Samples int     `json:"samples"`
}

// Outcome pairs a candidate with its measurement and feasibility.
type Outcome struct {
	Candidate Candidate
	Eval      Eval
	// Feasible is false when the candidate's sample population fell
	// below the floor — a schedule that "wins" p99 by shedding most of
	// the traffic is not a win.
	Feasible bool
	Err      error
}

// DefaultCandidates builds the deterministic search list for a machine
// with the given CPU core count: the identity baseline first, then a
// small grid over the knob axes (priorities on/off × shed budget ×
// admission cap × detector queue depth), then seeded random
// perturbations around the grid. The same seed always yields the same
// list in the same order.
func DefaultCandidates(seed uint64, cores int) []Candidate {
	if cores < 1 {
		cores = 1
	}
	cands := []Candidate{{Name: "baseline", Disabled: true}}

	sheds := []time.Duration{0, 100 * time.Millisecond, 80 * time.Millisecond}
	caps := []int{0, cores, cores + 1}
	depths := []int{0, 1}
	for _, pri := range []bool{true, false} {
		for _, shed := range sheds {
			for _, cap := range caps {
				for _, depth := range depths {
					k := Knobs{UsePriorities: pri, ShedBudget: shed, MaxInflight: cap, QueueDepth: depth}
					if k == (Knobs{}) {
						continue // identity already present as baseline
					}
					cands = append(cands, Candidate{Name: knobName(k), Knobs: k})
				}
			}
		}
	}

	rng := mathx.NewRNG(seed)
	for i := 0; i < 6; i++ {
		k := Knobs{
			UsePriorities: rng.Bool(0.5),
			ShedBudget:    time.Duration(rng.Range(60, 140)) * time.Millisecond,
			MaxInflight:   1 + rng.Intn(cores+2),
			QueueDepth:    rng.Intn(3),
		}
		cands = append(cands, Candidate{Name: fmt.Sprintf("rand%d-%s", i, knobName(k)), Knobs: k})
	}
	return cands
}

func knobName(k Knobs) string {
	pri := "fifo"
	if k.UsePriorities {
		pri = "crit"
	}
	return fmt.Sprintf("%s-shed%dms-cap%d-q%d", pri, k.ShedBudget.Milliseconds(), k.MaxInflight, k.QueueDepth)
}

// Tune evaluates every candidate with the supplied run function and
// returns the index of the best feasible one — lowest worst-path p99,
// earlier candidate on exact ties, so the search is deterministic given
// a deterministic runner. minSamplesFrac (0..1) sets the feasibility
// floor as a fraction of the baseline's sample count; 0 means any
// non-empty sample is feasible. Candidate 0 must be the Disabled
// baseline; because it is always feasible, Tune never returns a result
// worse than not scheduling at all.
func Tune(cands []Candidate, minSamplesFrac float64, run func(Candidate) (Eval, error)) (int, []Outcome, error) {
	if len(cands) == 0 {
		return 0, nil, errors.New("sched: no candidates")
	}
	if !cands[0].Disabled {
		return 0, nil, errors.New("sched: candidate 0 must be the disabled baseline")
	}
	outcomes := make([]Outcome, len(cands))
	base, err := run(cands[0])
	if err != nil {
		return 0, nil, fmt.Errorf("sched: baseline run: %w", err)
	}
	outcomes[0] = Outcome{Candidate: cands[0], Eval: base, Feasible: base.Samples > 0}
	floor := int(minSamplesFrac * float64(base.Samples))

	best := 0
	for i := 1; i < len(cands); i++ {
		ev, err := run(cands[i])
		if err != nil {
			outcomes[i] = Outcome{Candidate: cands[i], Err: err}
			continue
		}
		feasible := ev.Samples > 0 && ev.Samples >= floor
		outcomes[i] = Outcome{Candidate: cands[i], Eval: ev, Feasible: feasible}
		if feasible && ev.P99 < outcomes[best].Eval.P99 {
			best = i
		}
	}
	return best, outcomes, nil
}
