package mathx

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Count != 5 || s.Min != 1 || s.Max != 5 {
		t.Errorf("summary = %+v", s)
	}
	if s.Mean != 3 || s.Median != 3 {
		t.Errorf("mean/median = %v/%v", s.Mean, s.Median)
	}
	if s.Q1 != 2 || s.Q3 != 4 {
		t.Errorf("quartiles = %v/%v", s.Q1, s.Q3)
	}
	want := math.Sqrt(2) // population stddev of 1..5
	if math.Abs(s.StdDev-want) > 1e-9 {
		t.Errorf("stddev = %v, want %v", s.StdDev, want)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Summarize mutated its input")
	}
}

func TestQuantile(t *testing.T) {
	s := []float64{10, 20, 30, 40}
	if got := Quantile(s, 0); got != 10 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(s, 1); got != 40 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile(s, 0.5); got != 25 {
		t.Errorf("median = %v", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %v", got)
	}
}

func TestSummaryOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		sample := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				sample = append(sample, math.Mod(v, 1e6))
			}
		}
		if len(sample) == 0 {
			return true
		}
		s := Summarize(sample)
		return s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 &&
			s.Q3 <= s.Max && s.Min <= s.Mean && s.Mean <= s.Max &&
			s.StdDev >= 0 && s.P95 <= s.P99+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{0.5, 1, 3, 5, 7, 9, 11, -1} {
		h.Add(v)
	}
	if h.Total != 8 {
		t.Errorf("total = %d", h.Total)
	}
	// -1 clamps to bin 0; 11 clamps to bin 4.
	if h.Bins[0] != 3 { // 0.5, 1, -1
		t.Errorf("bin0 = %d (%v)", h.Bins[0], h.Bins)
	}
	if h.Bins[4] != 2 { // 9, 11
		t.Errorf("bin4 = %d (%v)", h.Bins[4], h.Bins)
	}
	d := h.Densities()
	sum := 0.0
	for _, v := range d {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("density sum = %v", sum)
	}
	if got := h.BinCenter(0); got != 1 {
		t.Errorf("bin center = %v", got)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(5, 5, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	r := NewRNG(9)
	var w Welford
	var sample []float64
	for i := 0; i < 5000; i++ {
		v := r.NormScaled(5, 3)
		w.Add(v)
		sample = append(sample, v)
	}
	s := Summarize(sample)
	if math.Abs(w.Mean()-s.Mean) > 1e-9 {
		t.Errorf("welford mean %v vs batch %v", w.Mean(), s.Mean)
	}
	if math.Abs(w.StdDev()-s.StdDev) > 1e-6 {
		t.Errorf("welford sd %v vs batch %v", w.StdDev(), s.StdDev)
	}
	if w.Min() != s.Min || w.Max() != s.Max {
		t.Errorf("welford min/max %v/%v vs %v/%v", w.Min(), w.Max(), s.Min, s.Max)
	}
	if w.Count() != s.Count {
		t.Errorf("count %d vs %d", w.Count(), s.Count)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		sample := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				sample = append(sample, math.Mod(v, 1e6))
			}
		}
		if len(sample) < 2 {
			return true
		}
		qa := math.Mod(math.Abs(a), 1)
		qb := math.Mod(math.Abs(b), 1)
		if qa > qb {
			qa, qb = qb, qa
		}
		sort.Float64s(sample)
		return quantileSorted(sample, qa) <= quantileSorted(sample, qb)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
