package mathx

import (
	"fmt"
	"math"
	"sort"
)

// Summary condenses a latency (or any scalar) sample into the statistics
// the paper's figures report: min, quartiles, mean, max, stddev and
// high percentiles. It is the Go rendering of one violin in Figs. 5/6.
type Summary struct {
	Count  int
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
	Mean   float64
	StdDev float64
	P95    float64
	P99    float64
}

// Summarize computes a Summary from a sample. The input is not modified.
// An empty sample yields the zero Summary.
func Summarize(sample []float64) Summary {
	if len(sample) == 0 {
		return Summary{}
	}
	s := make([]float64, len(sample))
	copy(s, sample)
	sort.Float64s(s)
	sum, sumSq := 0.0, 0.0
	for _, v := range s {
		sum += v
		sumSq += v * v
	}
	n := float64(len(s))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		Count:  len(s),
		Min:    s[0],
		Q1:     quantileSorted(s, 0.25),
		Median: quantileSorted(s, 0.5),
		Q3:     quantileSorted(s, 0.75),
		Max:    s[len(s)-1],
		Mean:   mean,
		StdDev: math.Sqrt(variance),
		P95:    quantileSorted(s, 0.95),
		P99:    quantileSorted(s, 0.99),
	}
}

// Quantile returns the q-quantile (0..1) of the sample with linear
// interpolation. The input is not modified.
func Quantile(sample []float64, q float64) float64 {
	if len(sample) == 0 {
		return 0
	}
	s := make([]float64, len(sample))
	copy(s, sample)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

func quantileSorted(s []float64, q float64) float64 {
	if len(s) == 0 {
		return 0
	}
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Mean returns the arithmetic mean; 0 for an empty sample.
func Mean(sample []float64) float64 {
	if len(sample) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range sample {
		sum += v
	}
	return sum / float64(len(sample))
}

// StdDev returns the population standard deviation; 0 for fewer than
// two values.
func StdDev(sample []float64) float64 {
	if len(sample) < 2 {
		return 0
	}
	m := Mean(sample)
	sum := 0.0
	for _, v := range sample {
		d := v - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(sample)))
}

// Histogram is a fixed-bin histogram over [Lo, Hi); values outside the
// range clamp into the edge bins. It backs the violin renderings.
type Histogram struct {
	Lo, Hi float64
	Bins   []int
	Total  int
}

// NewHistogram creates a histogram with n bins over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		panic("mathx: histogram needs at least one bin")
	}
	if hi <= lo {
		panic("mathx: histogram needs hi > lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int, n)}
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	idx := int(float64(len(h.Bins)) * (v - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Bins) {
		idx = len(h.Bins) - 1
	}
	h.Bins[idx]++
	h.Total++
}

// BinCenter returns the representative value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Bins))
	return h.Lo + (float64(i)+0.5)*w
}

// Densities returns each bin's share of the total, or zeros when empty.
func (h *Histogram) Densities() []float64 {
	out := make([]float64, len(h.Bins))
	if h.Total == 0 {
		return out
	}
	for i, c := range h.Bins {
		out[i] = float64(c) / float64(h.Total)
	}
	return out
}

// String renders a compact one-line description.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.2f q1=%.2f mean=%.2f q3=%.2f max=%.2f sd=%.2f",
		s.Count, s.Min, s.Q1, s.Mean, s.Q3, s.Max, s.StdDev)
}

// Welford accumulates mean/variance in one pass without storing the
// sample, for metrics that run over entire drives.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Count returns the number of observations.
func (w *Welford) Count() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the running population variance.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the running population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest observation (0 when empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 when empty).
func (w *Welford) Max() float64 { return w.max }
