// Package mathx supplies the numeric substrate shared by the stack:
// a deterministic seedable RNG, distribution statistics used by the
// characterization reports, and small dense-matrix linear algebra for
// the estimation filters.
package mathx

import "math"

// RNG is a small, fast, deterministic pseudo-random generator based on
// SplitMix64. Every stochastic component of the reproduction owns its
// own RNG so that experiments are reproducible and independent: reading
// from one stream never perturbs another.
type RNG struct {
	state uint64
	// Cached second normal variate from the Box-Muller pair.
	hasGauss bool
	gauss    float64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives an independent child generator. The child's stream is a
// deterministic function of the parent state at the time of the call.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0x9e3779b97f4a7c15)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("mathx: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a standard normal variate (Box-Muller).
func (r *RNG) Norm() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.hasGauss = true
	return u * f
}

// NormScaled returns a normal variate with the given mean and stddev.
func (r *RNG) NormScaled(mean, stddev float64) float64 {
	return mean + stddev*r.Norm()
}

// Exp returns an exponential variate with the given mean. Used by the
// OS-jitter model for preemption inter-arrival times.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm fills a permutation of [0, n) using Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
