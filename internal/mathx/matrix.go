package mathx

import (
	"fmt"
	"math"
)

// Mat is a small dense row-major matrix. It backs the UKF/IMM filters
// and the NDT Newton step; dimensions there are at most 7x7, so the
// implementation favors clarity over blocking.
type Mat struct {
	Rows, Cols int
	Data       []float64
}

// NewMat allocates a zero matrix.
func NewMat(rows, cols int) *Mat {
	if rows <= 0 || cols <= 0 {
		panic("mathx: non-positive matrix dimension")
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// MatFromRows builds a matrix from row slices, which must be equal length.
func MatFromRows(rows ...[]float64) *Mat {
	if len(rows) == 0 {
		panic("mathx: MatFromRows with no rows")
	}
	m := NewMat(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("mathx: ragged rows")
		}
		copy(m.Data[i*m.Cols:], r)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Mat {
	m := NewMat(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// AddAt increments element (i, j) by v.
func (m *Mat) AddAt(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	out := NewMat(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Add returns m + o.
func (m *Mat) Add(o *Mat) *Mat {
	m.checkSameShape(o)
	out := m.Clone()
	for i, v := range o.Data {
		out.Data[i] += v
	}
	return out
}

// Sub returns m - o.
func (m *Mat) Sub(o *Mat) *Mat {
	m.checkSameShape(o)
	out := m.Clone()
	for i, v := range o.Data {
		out.Data[i] -= v
	}
	return out
}

// Scale returns m * s.
func (m *Mat) Scale(s float64) *Mat {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// Mul returns the matrix product m * o.
func (m *Mat) Mul(o *Mat) *Mat {
	if m.Cols != o.Rows {
		panic(fmt.Sprintf("mathx: Mul shape mismatch %dx%d * %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	out := NewMat(m.Rows, o.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < o.Cols; j++ {
				out.Data[i*out.Cols+j] += a * o.At(k, j)
			}
		}
	}
	return out
}

// T returns the transpose of m.
func (m *Mat) T() *Mat {
	out := NewMat(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// MulVec returns m * v for a column vector v (len == Cols).
func (m *Mat) MulVec(v []float64) []float64 {
	if len(v) != m.Cols {
		panic("mathx: MulVec length mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, x := range v {
			s += row[j] * x
		}
		out[i] = s
	}
	return out
}

// Cholesky computes the lower-triangular L with L*Lᵀ = m for a symmetric
// positive-definite matrix. It returns an error when the matrix is not
// positive definite (a frequent runtime hazard in UKF covariance updates,
// handled by jittering the diagonal at the call site).
func (m *Mat) Cholesky() (*Mat, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("mathx: Cholesky of non-square %dx%d", m.Rows, m.Cols)
	}
	n := m.Rows
	l := NewMat(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := m.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("mathx: matrix not positive definite at pivot %d (%g)", i, sum)
				}
				l.Set(i, j, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// Inverse computes the inverse via Gauss-Jordan with partial pivoting.
// It returns an error for singular matrices.
func (m *Mat) Inverse() (*Mat, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("mathx: Inverse of non-square %dx%d", m.Rows, m.Cols)
	}
	n := m.Rows
	a := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Pivot selection.
		pivot := col
		maxAbs := math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > maxAbs {
				maxAbs = v
				pivot = r
			}
		}
		if maxAbs < 1e-14 {
			return nil, fmt.Errorf("mathx: singular matrix at column %d", col)
		}
		if pivot != col {
			a.swapRows(pivot, col)
			inv.swapRows(pivot, col)
		}
		// Normalize pivot row.
		p := a.At(col, col)
		for j := 0; j < n; j++ {
			a.Set(col, j, a.At(col, j)/p)
			inv.Set(col, j, inv.At(col, j)/p)
		}
		// Eliminate other rows.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				a.AddAt(r, j, -f*a.At(col, j))
				inv.AddAt(r, j, -f*inv.At(col, j))
			}
		}
	}
	return inv, nil
}

// SolveVec solves m * x = b via the Gauss-Jordan inverse; for the small
// systems in this codebase that is accurate enough.
func (m *Mat) SolveVec(b []float64) ([]float64, error) {
	inv, err := m.Inverse()
	if err != nil {
		return nil, err
	}
	return inv.MulVec(b), nil
}

func (m *Mat) swapRows(i, j int) {
	ri := m.Data[i*m.Cols : (i+1)*m.Cols]
	rj := m.Data[j*m.Cols : (j+1)*m.Cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

func (m *Mat) checkSameShape(o *Mat) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic(fmt.Sprintf("mathx: shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
}

// Symmetrize averages m with its transpose in place, a standard fix for
// covariance drift in Kalman-style updates.
func (m *Mat) Symmetrize() {
	if m.Rows != m.Cols {
		panic("mathx: Symmetrize of non-square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			v := (m.At(i, j) + m.At(j, i)) / 2
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
}

// AddDiag adds v to every diagonal element in place (covariance jitter).
func (m *Mat) AddDiag(v float64) {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	for i := 0; i < n; i++ {
		m.AddAt(i, i, v)
	}
}
