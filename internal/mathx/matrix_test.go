package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func matApprox(a, b *Mat, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

func TestMatMul(t *testing.T) {
	a := MatFromRows([]float64{1, 2}, []float64{3, 4})
	b := MatFromRows([]float64{5, 6}, []float64{7, 8})
	c := a.Mul(b)
	want := MatFromRows([]float64{19, 22}, []float64{43, 50})
	if !matApprox(c, want, 1e-12) {
		t.Errorf("Mul = %+v", c)
	}
}

func TestMatMulIdentity(t *testing.T) {
	a := MatFromRows([]float64{1, 2, 3}, []float64{4, 5, 6}, []float64{7, 8, 10})
	if !matApprox(a.Mul(Identity(3)), a, 1e-12) {
		t.Error("A*I != A")
	}
	if !matApprox(Identity(3).Mul(a), a, 1e-12) {
		t.Error("I*A != A")
	}
}

func TestMatTranspose(t *testing.T) {
	a := MatFromRows([]float64{1, 2, 3}, []float64{4, 5, 6})
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 || at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Errorf("T = %+v", at)
	}
	if !matApprox(at.T(), a, 0) {
		t.Error("double transpose != original")
	}
}

func TestMatAddSubScale(t *testing.T) {
	a := MatFromRows([]float64{1, 2}, []float64{3, 4})
	b := MatFromRows([]float64{4, 3}, []float64{2, 1})
	if got := a.Add(b); !matApprox(got, MatFromRows([]float64{5, 5}, []float64{5, 5}), 0) {
		t.Errorf("Add = %+v", got)
	}
	if got := a.Sub(a); !matApprox(got, NewMat(2, 2), 0) {
		t.Errorf("Sub = %+v", got)
	}
	if got := a.Scale(2); got.At(1, 1) != 8 {
		t.Errorf("Scale = %+v", got)
	}
}

func TestMatInverse(t *testing.T) {
	a := MatFromRows(
		[]float64{4, 7, 2},
		[]float64{3, 6, 1},
		[]float64{2, 5, 3},
	)
	inv, err := a.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	if !matApprox(a.Mul(inv), Identity(3), 1e-9) {
		t.Errorf("A*inv(A) != I: %+v", a.Mul(inv))
	}
}

func TestMatInverseSingular(t *testing.T) {
	a := MatFromRows([]float64{1, 2}, []float64{2, 4})
	if _, err := a.Inverse(); err == nil {
		t.Error("singular inverse should fail")
	}
}

func TestMatSolveVec(t *testing.T) {
	a := MatFromRows([]float64{2, 1}, []float64{1, 3})
	x, err := a.SolveVec([]float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	// 2x + y = 5; x + 3y = 10 -> x=1, y=3.
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-3) > 1e-9 {
		t.Errorf("solve = %v", x)
	}
}

func TestCholesky(t *testing.T) {
	// A = L0 * L0' for a known L0.
	l0 := MatFromRows(
		[]float64{2, 0, 0},
		[]float64{1, 3, 0},
		[]float64{0.5, -1, 1.5},
	)
	a := l0.Mul(l0.T())
	l, err := a.Cholesky()
	if err != nil {
		t.Fatal(err)
	}
	if !matApprox(l, l0, 1e-9) {
		t.Errorf("Cholesky = %+v, want %+v", l, l0)
	}
	if !matApprox(l.Mul(l.T()), a, 1e-9) {
		t.Error("L*L' != A")
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a := MatFromRows([]float64{1, 2}, []float64{2, 1}) // eigenvalues 3, -1
	if _, err := a.Cholesky(); err == nil {
		t.Error("Cholesky of indefinite matrix should fail")
	}
}

func TestMulVec(t *testing.T) {
	a := MatFromRows([]float64{1, 2, 3}, []float64{4, 5, 6})
	got := a.MulVec([]float64{1, 1, 1})
	if got[0] != 6 || got[1] != 15 {
		t.Errorf("MulVec = %v", got)
	}
}

func TestSymmetrize(t *testing.T) {
	a := MatFromRows([]float64{1, 2}, []float64{4, 3})
	a.Symmetrize()
	if a.At(0, 1) != 3 || a.At(1, 0) != 3 {
		t.Errorf("Symmetrize = %+v", a)
	}
}

func TestAddDiag(t *testing.T) {
	a := NewMat(2, 2)
	a.AddDiag(5)
	if a.At(0, 0) != 5 || a.At(1, 1) != 5 || a.At(0, 1) != 0 {
		t.Errorf("AddDiag = %+v", a)
	}
}

func TestInverseRoundTripProperty(t *testing.T) {
	r := NewRNG(31)
	f := func() bool {
		// Random diagonally dominant matrix: always invertible.
		n := 2 + r.Intn(4)
		a := NewMat(n, n)
		for i := 0; i < n; i++ {
			rowSum := 0.0
			for j := 0; j < n; j++ {
				if i != j {
					v := r.Range(-1, 1)
					a.Set(i, j, v)
					rowSum += math.Abs(v)
				}
			}
			a.Set(i, i, rowSum+1+r.Float64())
		}
		inv, err := a.Inverse()
		if err != nil {
			return false
		}
		return matApprox(a.Mul(inv), Identity(n), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCholeskyRoundTripProperty(t *testing.T) {
	r := NewRNG(37)
	f := func() bool {
		n := 2 + r.Intn(4)
		// Random SPD matrix: B*B' + n*I.
		b := NewMat(n, n)
		for i := range b.Data {
			b.Data[i] = r.Range(-1, 1)
		}
		a := b.Mul(b.T())
		a.AddDiag(float64(n))
		l, err := a.Cholesky()
		if err != nil {
			return false
		}
		return matApprox(l.Mul(l.T()), a, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMatPanics(t *testing.T) {
	a := NewMat(2, 3)
	for name, fn := range map[string]func(){
		"mul shape":    func() { a.Mul(NewMat(2, 2)) },
		"add shape":    func() { a.Add(NewMat(3, 2)) },
		"mulvec len":   func() { a.MulVec([]float64{1}) },
		"bad dims":     func() { NewMat(0, 1) },
		"ragged rows":  func() { MatFromRows([]float64{1, 2}, []float64{1}) },
		"sym nonsq":    func() { a.Symmetrize() },
		"from no rows": func() { MatFromRows() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
