package mathx

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds should diverge")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGFloat64Uniformity(t *testing.T) {
	r := NewRNG(7)
	const n = 100000
	sum := 0.0
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		v := r.Float64()
		sum += v
		buckets[int(v*10)]++
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v", mean)
	}
	for i, c := range buckets {
		if math.Abs(float64(c)/n-0.1) > 0.01 {
			t.Errorf("bucket %d share = %v", i, float64(c)/n)
		}
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(99)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v", variance)
	}
}

func TestRNGNormScaled(t *testing.T) {
	r := NewRNG(5)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.NormScaled(10, 2)
	}
	if math.Abs(sum/n-10) > 0.05 {
		t.Errorf("scaled mean = %v", sum/n)
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(11)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(3)
		if v < 0 {
			t.Fatalf("exponential variate negative: %v", v)
		}
		sum += v
	}
	if math.Abs(sum/n-3) > 0.1 {
		t.Errorf("exponential mean = %v", sum/n)
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn should cover all 7 values, saw %d", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(17)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(1)
	child := parent.Split()
	// Parent and child streams should not be identical.
	same := 0
	for i := 0; i < 20; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("parent/child streams suspiciously aligned: %d matches", same)
	}
}

func TestRNGBool(t *testing.T) {
	r := NewRNG(23)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	if math.Abs(float64(hits)/n-0.25) > 0.01 {
		t.Errorf("Bool(0.25) rate = %v", float64(hits)/n)
	}
}
