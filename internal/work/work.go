// Package work defines the cost descriptor a node reports for one
// callback execution. Node algorithms compute real outputs and, along
// the way, account for how much machine work they represent: CPU
// operations by class, bytes touched, and GPU kernels launched. The
// platform simulator turns a Work into virtual time under contention;
// the µarch model turns it into instruction-mix and counter estimates.
package work

// GPUKernel is one device-side launch: a compute volume in fused
// multiply-add operations and the bytes moved over the device memory bus.
type GPUKernel struct {
	Name string
	// FMAs is the kernel's arithmetic volume in fused multiply-adds.
	FMAs float64
	// Bytes is device-memory traffic (reads + writes).
	Bytes float64
	// Efficiency in (0, 1] is the fraction of device peak the kernel
	// sustains: dense GEMM-style kernels run near 0.6, irregular
	// pointer-chasing kernels a few percent. Zero means 1.0.
	Efficiency float64
}

// Work describes one callback execution.
type Work struct {
	// CPU operation counts by class. These are *architectural*
	// instruction estimates derived from the real computation performed
	// (loop trip counts, element counts), not host-profiling artifacts.
	IntOps    float64 // integer ALU
	FPOps     float64 // floating point
	LoadOps   float64 // memory reads
	StoreOps  float64 // memory writes
	BranchOps float64 // control transfer

	// BytesTouched approximates the callback's working-set traffic and
	// drives the memory-bandwidth interference model.
	BytesTouched float64

	// Kernels is the ordered list of GPU launches this callback performs.
	// The CPU blocks on kernel completion (synchronous offload, matching
	// the ROS node structure of the profiled detectors).
	Kernels []GPUKernel
}

// Add accumulates o into w.
func (w *Work) Add(o Work) {
	w.IntOps += o.IntOps
	w.FPOps += o.FPOps
	w.LoadOps += o.LoadOps
	w.StoreOps += o.StoreOps
	w.BranchOps += o.BranchOps
	w.BytesTouched += o.BytesTouched
	w.Kernels = append(w.Kernels, o.Kernels...)
}

// CPUOps returns the total CPU operation count.
func (w Work) CPUOps() float64 {
	return w.IntOps + w.FPOps + w.LoadOps + w.StoreOps + w.BranchOps
}

// GPUFMAs returns the total device arithmetic volume.
func (w Work) GPUFMAs() float64 {
	var s float64
	for _, k := range w.Kernels {
		s += k.FMAs
	}
	return s
}

// GPUBytes returns the total device memory traffic.
func (w Work) GPUBytes() float64 {
	var s float64
	for _, k := range w.Kernels {
		s += k.Bytes
	}
	return s
}

// Scale returns a copy of w with all CPU-side costs multiplied by f.
// GPU kernels are not scaled.
func (w Work) Scale(f float64) Work {
	out := w
	out.IntOps *= f
	out.FPOps *= f
	out.LoadOps *= f
	out.StoreOps *= f
	out.BranchOps *= f
	out.BytesTouched *= f
	return out
}
