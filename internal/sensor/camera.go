package sensor

import (
	"math"

	"repro/internal/geom"
	"repro/internal/mathx"
	"repro/internal/world"
)

// Image is a dense RGB image in planar (channel, row, col) layout with
// float32 pixels in [0, 1], the input format of the DNN engine.
type Image struct {
	W, H int
	Pix  []float32 // len = 3*W*H, plane-major (R plane, G plane, B plane)
}

// NewImage allocates a black image.
func NewImage(w, h int) *Image {
	return &Image{W: w, H: h, Pix: make([]float32, 3*w*h)}
}

// At returns channel ch at (x, y).
func (im *Image) At(ch, x, y int) float32 { return im.Pix[ch*im.W*im.H+y*im.W+x] }

// Set assigns channel ch at (x, y).
func (im *Image) Set(ch, x, y int, v float32) { im.Pix[ch*im.W*im.H+y*im.W+x] = v }

// GTBox is a ground-truth 2D detection attached to a camera frame. It
// is used only for evaluating detector quality, never by the detectors
// themselves.
type GTBox struct {
	Rect    geom.Rect
	Kind    world.ActorKind
	ActorID int
	// Dist is the range from the camera to the actor, meters.
	Dist float64
}

// Frame is one camera capture: pixels plus ground truth.
type Frame struct {
	Image *Image
	GT    []GTBox
}

// CameraConfig describes the pinhole camera.
type CameraConfig struct {
	Width, Height int
	// HFovDeg is the horizontal field of view in degrees.
	HFovDeg float64
	// Mount is the camera pose in the ego frame (looking along +X).
	Mount    geom.Pose
	MaxRange float64
	// PixelNoise is the 1-sigma additive pixel noise.
	PixelNoise float64
	Seed       uint64
}

// DefaultCameraConfig returns the front camera used by the drive. The
// resolution is the functional DNN input resolution; the analytic DNN
// workload model separately accounts for full-size sensor frames.
func DefaultCameraConfig() CameraConfig {
	return CameraConfig{
		Width:      128,
		Height:     96,
		HFovDeg:    80,
		Mount:      geom.NewPose(1.5, 0, 1.4, 0),
		MaxRange:   70,
		PixelNoise: 0.02,
		Seed:       0xCA3E2A,
	}
}

// Camera renders synthetic frames from world snapshots.
type Camera struct {
	cfg  CameraConfig
	rng  *mathx.RNG
	fx   float64 // focal length in pixels
	cx   float64
	cy   float64
	city *world.City
}

// NewCamera builds the camera.
func NewCamera(cfg CameraConfig, city *world.City) *Camera {
	if cfg.Width <= 0 || cfg.Height <= 0 || cfg.HFovDeg <= 0 || cfg.HFovDeg >= 180 {
		panic("sensor: invalid camera config")
	}
	fx := float64(cfg.Width) / 2 / math.Tan(cfg.HFovDeg/2*math.Pi/180)
	return &Camera{
		cfg:  cfg,
		rng:  mathx.NewRNG(cfg.Seed),
		fx:   fx,
		cx:   float64(cfg.Width) / 2,
		cy:   float64(cfg.Height) / 2,
		city: city,
	}
}

// kindColor returns the body color signature used to render each actor
// kind. The vision detectors classify by recovering this signature, so
// classification is a real function of pixel content.
func kindColor(k world.ActorKind) [3]float32 {
	switch k {
	case world.KindCar:
		return [3]float32{0.95, 0.25, 0.2}
	case world.KindTruck:
		return [3]float32{0.9, 0.75, 0.15}
	case world.KindPedestrian:
		return [3]float32{0.2, 0.55, 0.95}
	case world.KindCyclist:
		return [3]float32{0.25, 0.9, 0.4}
	default:
		return [3]float32{1, 1, 1}
	}
}

// Capture renders the frame for a snapshot.
func (c *Camera) Capture(snap *world.Snapshot) *Frame {
	im := NewImage(c.cfg.Width, c.cfg.Height)
	camPose := snap.Ego.Pose.Compose(c.cfg.Mount)

	// Background: dark road up close, lighter sky above the horizon,
	// with mild noise so convolution layers see texture.
	horizon := int(c.cy)
	for y := 0; y < c.cfg.Height; y++ {
		var base float32
		if y < horizon {
			base = 0.55 - 0.2*float32(y)/float32(horizon+1) // sky
		} else {
			base = 0.12 + 0.05*float32(y-horizon)/float32(c.cfg.Height-horizon) // road
		}
		for x := 0; x < c.cfg.Width; x++ {
			n := float32(c.rng.NormScaled(0, c.cfg.PixelNoise))
			im.Set(0, x, y, clamp01(base+n))
			im.Set(1, x, y, clamp01(base+n))
			im.Set(2, x, y, clamp01(base*1.1+n))
		}
	}

	frame := &Frame{Image: im}

	// Render actors back to front so nearer ones overdraw.
	type rendered struct {
		rect geom.Rect
		gt   GTBox
	}
	var items []rendered
	for _, a := range snap.Actors {
		rect, dist, ok := c.project(camPose, a)
		if !ok {
			continue
		}
		items = append(items, rendered{
			rect: rect,
			gt:   GTBox{Rect: rect, Kind: a.Kind, ActorID: a.ID, Dist: dist},
		})
	}
	// Sort by distance descending (far first) — insertion sort, the list
	// is short.
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && items[j].gt.Dist > items[j-1].gt.Dist; j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
	for _, it := range items {
		c.fillRect(im, it.rect, kindColor(it.gt.Kind), it.gt.Dist)
		frame.GT = append(frame.GT, it.gt)
	}
	return frame
}

// project maps an actor body box into the image, returning its 2D rect,
// camera distance, and whether it is visible and at least a few pixels.
func (c *Camera) project(camPose geom.Pose, a world.ActorState) (geom.Rect, float64, bool) {
	// Eight corners of the body box in world space.
	fp := a.Footprint()
	corners2 := fp.Corners()
	rect := geom.Rect{Min: geom.V2(math.Inf(1), math.Inf(1)), Max: geom.V2(math.Inf(-1), math.Inf(-1))}
	anyFront := false
	var minDepth float64 = math.Inf(1)
	for _, c2 := range corners2 {
		for _, z := range []float64{a.Pose.Pos.Z, a.Pose.Pos.Z + a.Dim.Z} {
			local := camPose.Inverse(geom.V3(c2.X, c2.Y, z))
			if local.X < 0.5 { // behind or grazing the image plane
				continue
			}
			anyFront = true
			if local.X < minDepth {
				minDepth = local.X
			}
			u := c.cx - c.fx*local.Y/local.X
			v := c.cy - c.fx*local.Z/local.X
			rect.Expand(geom.V2(u, v))
		}
	}
	if !anyFront || minDepth > c.cfg.MaxRange {
		return geom.Rect{}, 0, false
	}
	// Clip to image bounds.
	rect = rect.Intersect(geom.NewRect(geom.V2(0, 0), geom.V2(float64(c.cfg.Width-1), float64(c.cfg.Height-1))))
	if rect.Width() < 2 || rect.Height() < 2 {
		return geom.Rect{}, 0, false
	}
	return rect, minDepth, true
}

// fillRect paints an actor body with its kind color, shaded by distance.
func (c *Camera) fillRect(im *Image, r geom.Rect, color [3]float32, dist float64) {
	shade := float32(1 - 0.5*geom.Clamp(dist/c.cfg.MaxRange, 0, 1))
	x0, x1 := int(r.Min.X), int(r.Max.X)
	y0, y1 := int(r.Min.Y), int(r.Max.Y)
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			n := float32(c.rng.NormScaled(0, c.cfg.PixelNoise))
			im.Set(0, x, y, clamp01(color[0]*shade+n))
			im.Set(1, x, y, clamp01(color[1]*shade+n))
			im.Set(2, x, y, clamp01(color[2]*shade+n))
		}
	}
}

func clamp01(v float32) float32 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Config returns the camera configuration.
func (c *Camera) Config() CameraConfig { return c.cfg }
