package sensor

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/world"
)

func testScenario() *world.Scenario {
	cfg := world.DefaultScenarioConfig()
	return world.NewScenario(cfg)
}

func TestLiDARScanProducesPoints(t *testing.T) {
	s := testScenario()
	l := NewLiDAR(DefaultLiDARConfig(), s.City)
	snap := s.At(10)
	cloud := l.Scan(&snap)
	if cloud.Len() < 500 {
		t.Fatalf("scan too sparse: %d points", cloud.Len())
	}
	// All points within max range of the sensor origin (ego frame, the
	// mount offset is small).
	for _, p := range cloud.Points {
		if p.Pos.Norm() > l.Config().MaxRange+3 {
			t.Fatalf("point beyond range: %v", p.Pos)
		}
		if p.Ring < 0 || p.Ring >= l.Config().Beams {
			t.Fatalf("bad ring: %d", p.Ring)
		}
	}
}

func TestLiDARGroundPointsPresent(t *testing.T) {
	s := testScenario()
	l := NewLiDAR(DefaultLiDARConfig(), s.City)
	snap := s.At(5)
	cloud := l.Scan(&snap)
	ground := 0
	for _, p := range cloud.Points {
		// Ego frame: sensor is ~1.9m up, ground points land near z=0
		// relative to the ego base.
		if p.Pos.Z < 0.3 {
			ground++
		}
	}
	if ground < cloud.Len()/10 {
		t.Errorf("expected substantial ground returns, got %d/%d", ground, cloud.Len())
	}
}

func TestLiDARSeesNearbyActor(t *testing.T) {
	s := testScenario()
	cfg := DefaultLiDARConfig()
	cfg.DropProb = 0
	cfg.RangeNoise = 0
	l := NewLiDAR(cfg, s.City)

	// Build a snapshot with a car 10m ahead of the ego.
	snap := s.At(0)
	ego := snap.Ego.Pose
	ahead := ego.Transform(geom.V3(10, 0, 0))
	snap.Actors = []world.ActorState{{
		ID: 1, Kind: world.KindCar,
		Pose: geom.NewPose(ahead.X, ahead.Y, 0, ego.Yaw),
		Dim:  world.KindCar.Dimensions(),
	}}
	cloud := l.Scan(&snap)
	// Points on the car body: in ego frame near x=8..12, |y|<1, z in body.
	hits := 0
	for _, p := range cloud.Points {
		if p.Pos.X > 6 && p.Pos.X < 13 && math.Abs(p.Pos.Y) < 1.2 && p.Pos.Z > 0.05 && p.Pos.Z < 1.6 {
			hits++
		}
	}
	if hits < 5 {
		t.Errorf("expected returns on the car body, got %d", hits)
	}
}

func TestLiDARDeterminism(t *testing.T) {
	s := testScenario()
	snap := s.At(33)
	a := NewLiDAR(DefaultLiDARConfig(), s.City).Scan(&snap)
	b := NewLiDAR(DefaultLiDARConfig(), s.City).Scan(&snap)
	if a.Len() != b.Len() {
		t.Fatalf("scan lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatal("scan points differ between identical configs")
		}
	}
}

func TestLiDARPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewLiDAR(LiDARConfig{Beams: 0, AzimuthSteps: 10}, nil)
}

func TestCameraCaptureBasics(t *testing.T) {
	s := testScenario()
	cam := NewCamera(DefaultCameraConfig(), s.City)
	snap := s.At(20)
	f := cam.Capture(&snap)
	if f.Image.W != 128 || f.Image.H != 96 {
		t.Fatalf("image dims %dx%d", f.Image.W, f.Image.H)
	}
	// Pixels in range.
	for _, v := range f.Image.Pix {
		if v < 0 || v > 1 {
			t.Fatalf("pixel out of range: %v", v)
		}
	}
}

func TestCameraSeesActorAhead(t *testing.T) {
	s := testScenario()
	cam := NewCamera(DefaultCameraConfig(), s.City)
	snap := s.At(0)
	ego := snap.Ego.Pose
	ahead := ego.Transform(geom.V3(15, 0, 0))
	snap.Actors = []world.ActorState{{
		ID: 7, Kind: world.KindPedestrian,
		Pose: geom.NewPose(ahead.X, ahead.Y, 0, ego.Yaw),
		Dim:  world.KindPedestrian.Dimensions(),
	}}
	f := cam.Capture(&snap)
	if len(f.GT) != 1 {
		t.Fatalf("GT boxes = %d, want 1", len(f.GT))
	}
	gt := f.GT[0]
	if gt.ActorID != 7 || gt.Kind != world.KindPedestrian {
		t.Errorf("GT = %+v", gt)
	}
	// Pedestrian color signature: blue channel dominates inside the box.
	cpt := gt.Rect.Center()
	x, y := int(cpt.X), int(cpt.Y)
	r, b := f.Image.At(0, x, y), f.Image.At(2, x, y)
	if b <= r {
		t.Errorf("pedestrian pixel should be blue-dominant: r=%v b=%v", r, b)
	}
}

func TestCameraActorBehindNotVisible(t *testing.T) {
	s := testScenario()
	cam := NewCamera(DefaultCameraConfig(), s.City)
	snap := s.At(0)
	ego := snap.Ego.Pose
	behind := ego.Transform(geom.V3(-15, 0, 0))
	snap.Actors = []world.ActorState{{
		ID: 3, Kind: world.KindCar,
		Pose: geom.NewPose(behind.X, behind.Y, 0, ego.Yaw),
		Dim:  world.KindCar.Dimensions(),
	}}
	f := cam.Capture(&snap)
	if len(f.GT) != 0 {
		t.Errorf("actor behind camera should be invisible, GT = %+v", f.GT)
	}
}

func TestCameraFartherActorSmaller(t *testing.T) {
	s := testScenario()
	cam := NewCamera(DefaultCameraConfig(), s.City)
	area := func(dist float64) float64 {
		snap := s.At(0)
		ego := snap.Ego.Pose
		p := ego.Transform(geom.V3(dist, 0, 0))
		snap.Actors = []world.ActorState{{
			ID: 1, Kind: world.KindCar,
			Pose: geom.NewPose(p.X, p.Y, 0, ego.Yaw),
			Dim:  world.KindCar.Dimensions(),
		}}
		f := cam.Capture(&snap)
		if len(f.GT) != 1 {
			t.Fatalf("GT missing at dist %v", dist)
		}
		return f.GT[0].Rect.Area()
	}
	if a10, a30 := area(10), area(30); a30 >= a10 {
		t.Errorf("area should shrink with distance: %v vs %v", a10, a30)
	}
}

func TestGNSSNoiseScale(t *testing.T) {
	s := testScenario()
	g := NewGNSS(2.0, 99)
	snap := s.At(50)
	sumSq := 0.0
	const n = 2000
	for i := 0; i < n; i++ {
		fix := g.Fix(&snap)
		sumSq += fix.Pos.XY().DistSq(snap.Ego.Pose.XY())
	}
	// E[dx^2+dy^2] = 2*sigma^2 = 8.
	rms := sumSq / n
	if rms < 6 || rms > 10 {
		t.Errorf("GNSS error power = %v, want ~8", rms)
	}
}

func TestIMUYawRate(t *testing.T) {
	s := testScenario()
	m := NewIMU(7)
	// Feed successive snapshots while ego turns; yaw rate should track
	// the ground-truth difference.
	var lastYaw float64
	var ok bool
	for ts := 0.0; ts < 60; ts += 0.02 {
		snap := s.At(ts)
		samp := m.Sample(&snap)
		if ts > 0 {
			want := geom.AngleDiff(snap.Ego.Pose.Yaw, lastYaw) / 0.02
			if math.Abs(samp.YawRate-want) < 0.1 {
				ok = true
			}
		}
		lastYaw = snap.Ego.Pose.Yaw
	}
	if !ok {
		t.Error("IMU yaw rate never tracked ground truth")
	}
}

func TestImageAtSet(t *testing.T) {
	im := NewImage(4, 3)
	im.Set(2, 1, 2, 0.5)
	if im.At(2, 1, 2) != 0.5 {
		t.Error("At/Set round trip failed")
	}
	if im.At(0, 1, 2) != 0 {
		t.Error("other channel affected")
	}
}
