// Package sensor synthesizes the vehicle's sensor suite from world
// ground truth: a spinning multi-beam LiDAR (ray-cast against the city
// and the traffic actors), a pinhole camera producing both a pixel
// tensor and ground-truth 2D boxes, and GNSS/IMU models. It replaces
// the paper's recorded Nagoya ROSBAG with a generator that produces the
// same kind of scene-dependent, time-varying workload.
package sensor

import (
	"math"

	"repro/internal/geom"
	"repro/internal/mathx"
	"repro/internal/pointcloud"
	"repro/internal/world"
)

// LiDARConfig describes the spinning scanner. The default approximates a
// 16-beam unit, scaled for simulation throughput while preserving the
// point-cloud structure (rings, 360° azimuth coverage).
type LiDARConfig struct {
	Beams        int
	AzimuthSteps int
	MinVertDeg   float64
	MaxVertDeg   float64
	MaxRange     float64
	// Mount is the sensor pose in the ego frame.
	Mount geom.Pose
	// RangeNoise is the 1-sigma radial noise in meters.
	RangeNoise float64
	// DropProb is the chance an individual return is lost.
	DropProb float64
	Seed     uint64
}

// DefaultLiDARConfig returns the standard scanner used by the drive.
func DefaultLiDARConfig() LiDARConfig {
	return LiDARConfig{
		Beams:        16,
		AzimuthSteps: 360,
		MinVertDeg:   -15,
		MaxVertDeg:   10,
		MaxRange:     80,
		Mount:        geom.NewPose(0, 0, 1.9, 0),
		RangeNoise:   0.02,
		DropProb:     0.03,
		Seed:         0x11DA2,
	}
}

// LiDAR casts rays against the static city and the dynamic actors.
type LiDAR struct {
	cfg  LiDARConfig
	city *world.City
	rng  *mathx.RNG
	// Precomputed beam elevations (sin/cos pairs).
	sinEl, cosEl []float64
}

// NewLiDAR builds the scanner for a city.
func NewLiDAR(cfg LiDARConfig, city *world.City) *LiDAR {
	if cfg.Beams <= 0 || cfg.AzimuthSteps <= 0 {
		panic("sensor: invalid LiDAR config")
	}
	l := &LiDAR{cfg: cfg, city: city, rng: mathx.NewRNG(cfg.Seed)}
	for b := 0; b < cfg.Beams; b++ {
		frac := 0.0
		if cfg.Beams > 1 {
			frac = float64(b) / float64(cfg.Beams-1)
		}
		el := (cfg.MinVertDeg + frac*(cfg.MaxVertDeg-cfg.MinVertDeg)) * math.Pi / 180
		s, c := math.Sincos(el)
		l.sinEl = append(l.sinEl, s)
		l.cosEl = append(l.cosEl, c)
	}
	return l
}

// Scan produces one full revolution as a cloud in the *ego* frame. The
// returned cloud's rings identify the source beam.
func (l *LiDAR) Scan(snap *world.Snapshot) *pointcloud.Cloud {
	egoPose := snap.Ego.Pose
	sensorPose := egoPose.Compose(l.cfg.Mount)
	origin := sensorPose.Pos

	// Broad-phase: collect nearby actor boxes once per scan.
	targets := make([]target, 0, len(snap.Actors))
	for _, a := range snap.Actors {
		if a.Pose.XY().Dist(egoPose.XY()) > l.cfg.MaxRange+10 {
			continue
		}
		targets = append(targets, target{state: a, box: a.BodyBox()})
	}

	cloud := pointcloud.New(l.cfg.Beams * l.cfg.AzimuthSteps / 2)
	for az := 0; az < l.cfg.AzimuthSteps; az++ {
		theta := sensorPose.Yaw + 2*math.Pi*float64(az)/float64(l.cfg.AzimuthSteps)
		sA, cA := math.Sincos(theta)
		for b := 0; b < l.cfg.Beams; b++ {
			dir := geom.V3(cA*l.cosEl[b], sA*l.cosEl[b], l.sinEl[b])
			dist, hit, intensity := l.castOne(origin, dir, targets)
			if !hit {
				continue
			}
			if l.cfg.DropProb > 0 && l.rng.Bool(l.cfg.DropProb) {
				continue
			}
			if l.cfg.RangeNoise > 0 {
				dist += l.rng.NormScaled(0, l.cfg.RangeNoise)
				if dist <= 0.1 {
					continue
				}
			}
			worldPt := origin.Add(dir.Scale(dist))
			cloud.Append(pointcloud.Point{
				Pos:       egoPose.Inverse(worldPt),
				Intensity: intensity,
				Ring:      b,
			})
		}
	}
	return cloud
}

// target is a broad-phase entry: an actor plus its world-frame bound.
type target struct {
	state world.ActorState
	box   geom.AABB3
}

// castOne intersects one ray with city and actors, returning the nearest
// hit distance, whether anything was hit, and a synthetic intensity.
func (l *LiDAR) castOne(origin, dir geom.Vec3, targets []target) (float64, bool, float64) {
	best, hit := l.city.CastRay(origin, dir, l.cfg.MaxRange)
	intensity := 0.3 // ground/building reflectivity
	for _, t := range targets {
		// Broad-phase AABB test first.
		limit := l.cfg.MaxRange
		if hit {
			limit = best
		}
		if _, ok := t.box.RayHit(origin, dir, limit); !ok {
			continue
		}
		// Exact: transform the ray into the actor's frame and slab-test
		// against the local body box.
		lo := t.state.Pose.Inverse(origin)
		s, c := math.Sincos(-t.state.Pose.Yaw)
		ld := geom.V3(dir.X*c-dir.Y*s, dir.X*s+dir.Y*c, dir.Z)
		local := geom.NewAABB3(
			geom.V3(-t.state.Dim.X/2, -t.state.Dim.Y/2, 0),
			geom.V3(t.state.Dim.X/2, t.state.Dim.Y/2, t.state.Dim.Z),
		)
		if tt, ok := local.RayHit(lo, ld, limit); ok && (!hit || tt < best) {
			best = tt
			hit = true
			intensity = 0.7 // vehicle/pedestrian body
		}
	}
	return best, hit, intensity
}

// Config returns the scanner configuration.
func (l *LiDAR) Config() LiDARConfig { return l.cfg }
