package sensor

import (
	"repro/internal/geom"
	"repro/internal/mathx"
	"repro/internal/world"
)

// GNSSFix is one satellite position fix with meter-level noise — the
// coarse initializer the localization search starts from.
type GNSSFix struct {
	Pos geom.Vec3
	// Sigma is the advertised 1-sigma horizontal accuracy, meters.
	Sigma float64
}

// GNSS models the satellite receiver.
type GNSS struct {
	rng   *mathx.RNG
	sigma float64
}

// NewGNSS builds a receiver with the given 1-sigma noise.
func NewGNSS(sigma float64, seed uint64) *GNSS {
	return &GNSS{rng: mathx.NewRNG(seed), sigma: sigma}
}

// Fix produces a noisy position for the snapshot.
func (g *GNSS) Fix(snap *world.Snapshot) GNSSFix {
	p := snap.Ego.Pose.Pos
	return GNSSFix{
		Pos: geom.V3(
			p.X+g.rng.NormScaled(0, g.sigma),
			p.Y+g.rng.NormScaled(0, g.sigma),
			p.Z,
		),
		Sigma: g.sigma,
	}
}

// IMUSample is one inertial measurement: yaw rate and forward speed
// (wheel-odometry fused, as Autoware's twist input provides).
type IMUSample struct {
	YawRate float64 // rad/s
	Speed   float64 // m/s
	Yaw     float64 // integrated heading estimate, rad
}

// IMU models the inertial unit with bias and white noise.
type IMU struct {
	rng       *mathx.RNG
	gyroBias  float64
	gyroNoise float64
	spdNoise  float64
	lastYaw   float64
	havePrev  bool
	prevTime  float64
}

// NewIMU builds an inertial unit.
func NewIMU(seed uint64) *IMU {
	rng := mathx.NewRNG(seed)
	return &IMU{
		rng:       rng,
		gyroBias:  rng.NormScaled(0, 0.002),
		gyroNoise: 0.004,
		spdNoise:  0.08,
	}
}

// Sample measures the snapshot. Yaw rate is differenced from successive
// ground-truth headings, so calls must be in time order.
func (m *IMU) Sample(snap *world.Snapshot) IMUSample {
	yaw := snap.Ego.Pose.Yaw
	rate := 0.0
	if m.havePrev {
		dt := snap.Time - m.prevTime
		if dt > 1e-6 {
			rate = geom.AngleDiff(yaw, m.lastYaw) / dt
		}
	}
	m.lastYaw = yaw
	m.prevTime = snap.Time
	m.havePrev = true
	return IMUSample{
		YawRate: rate + m.gyroBias + m.rng.NormScaled(0, m.gyroNoise),
		Speed:   snap.Ego.Speed + m.rng.NormScaled(0, m.spdNoise),
		Yaw:     yaw + m.rng.NormScaled(0, 0.01),
	}
}
