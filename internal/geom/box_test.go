package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAABB3ExpandContains(t *testing.T) {
	b := EmptyAABB3()
	if b.Valid() {
		t.Error("empty box should be invalid")
	}
	b.Expand(V3(1, 2, 3))
	b.Expand(V3(-1, 0, 5))
	if !b.Valid() {
		t.Error("expanded box should be valid")
	}
	if !b.Contains(V3(0, 1, 4)) {
		t.Error("box should contain interior point")
	}
	if b.Contains(V3(2, 1, 4)) {
		t.Error("box should not contain exterior point")
	}
	if got := b.Center(); got != V3(0, 1, 4) {
		t.Errorf("center = %v", got)
	}
	if got := b.Size(); got != V3(2, 2, 2) {
		t.Errorf("size = %v", got)
	}
}

func TestAABB3Intersects(t *testing.T) {
	a := NewAABB3(V3(0, 0, 0), V3(2, 2, 2))
	b := NewAABB3(V3(1, 1, 1), V3(3, 3, 3))
	c := NewAABB3(V3(5, 5, 5), V3(6, 6, 6))
	if !a.Intersects(b) {
		t.Error("a should intersect b")
	}
	if a.Intersects(c) {
		t.Error("a should not intersect c")
	}
}

func TestAABB3RayHit(t *testing.T) {
	b := NewAABB3(V3(5, -1, -1), V3(7, 1, 1))
	tHit, ok := b.RayHit(V3(0, 0, 0), V3(1, 0, 0), 100)
	if !ok || !approx(tHit, 5) {
		t.Errorf("ray hit = %v, %v", tHit, ok)
	}
	// Miss: offset laterally.
	if _, ok := b.RayHit(V3(0, 5, 0), V3(1, 0, 0), 100); ok {
		t.Error("ray should miss")
	}
	// Miss: pointing away.
	if _, ok := b.RayHit(V3(0, 0, 0), V3(-1, 0, 0), 100); ok {
		t.Error("backward ray should miss")
	}
	// Beyond tMax.
	if _, ok := b.RayHit(V3(0, 0, 0), V3(1, 0, 0), 4); ok {
		t.Error("ray beyond tMax should miss")
	}
	// Origin inside box hits at t=0.
	tHit, ok = b.RayHit(V3(6, 0, 0), V3(1, 0, 0), 100)
	if !ok || tHit != 0 {
		t.Errorf("inside-origin hit = %v, %v", tHit, ok)
	}
}

func TestAABB3RayHitDiagonal(t *testing.T) {
	b := NewAABB3(V3(9, 9, -1), V3(11, 11, 1))
	dir := V3(1, 1, 0).Unit()
	tHit, ok := b.RayHit(V3(0, 0, 0), dir, 100)
	if !ok {
		t.Fatal("diagonal ray should hit")
	}
	p := V3(dir.X*tHit, dir.Y*tHit, 0)
	if !b.Contains(p) {
		t.Errorf("hit point %v not on box", p)
	}
}

func TestOBB2CornersContains(t *testing.T) {
	o := OBB2{Center: V2(0, 0), Yaw: 0, HalfLen: 2, HalfWid: 1}
	if !o.Contains(V2(1.9, 0.9)) {
		t.Error("should contain near-corner point")
	}
	if o.Contains(V2(2.1, 0)) {
		t.Error("should not contain point past length")
	}
	// Rotated 90 degrees: length now along Y.
	o.Yaw = math.Pi / 2
	if !o.Contains(V2(0, 1.9)) {
		t.Error("rotated box should contain point along Y")
	}
	if o.Contains(V2(1.9, 0)) {
		t.Error("rotated box should not contain point along X")
	}
	cs := o.Corners()
	for _, c := range cs {
		// Corners are on the boundary; shrink slightly inward to test.
		in := o.Center.Add(c.Sub(o.Center).Scale(0.99))
		if !o.Contains(in) {
			t.Errorf("should contain shrunk corner %v", in)
		}
	}
	if !approx(o.Area(), 8) {
		t.Errorf("area = %v", o.Area())
	}
}

func TestRectIoU(t *testing.T) {
	a := NewRect(V2(0, 0), V2(2, 2))
	b := NewRect(V2(1, 1), V2(3, 3))
	// Intersection 1, union 7.
	if got := a.IoU(b); !approx(got, 1.0/7.0) {
		t.Errorf("IoU = %v", got)
	}
	if got := a.IoU(a); !approx(got, 1) {
		t.Errorf("self IoU = %v", got)
	}
	c := NewRect(V2(10, 10), V2(11, 11))
	if got := a.IoU(c); got != 0 {
		t.Errorf("disjoint IoU = %v", got)
	}
}

func TestRectIoUPropertyBounds(t *testing.T) {
	f := func(x1, y1, x2, y2, x3, y3, x4, y4 float64) bool {
		for _, v := range []float64{x1, y1, x2, y2, x3, y3, x4, y4} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		m := func(v float64) float64 { return math.Mod(v, 100) }
		a := NewRect(V2(m(x1), m(y1)), V2(m(x2), m(y2)))
		b := NewRect(V2(m(x3), m(y3)), V2(m(x4), m(y4)))
		iou := a.IoU(b)
		return iou >= 0 && iou <= 1+1e-9 && approx(a.IoU(b), b.IoU(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(V2(4, 5), V2(1, 2))
	if r.Min != V2(1, 2) || r.Max != V2(4, 5) {
		t.Errorf("NewRect normalization: %+v", r)
	}
	if r.Width() != 3 || r.Height() != 3 {
		t.Errorf("dims = %v x %v", r.Width(), r.Height())
	}
	if r.Center() != V2(2.5, 3.5) {
		t.Errorf("center = %v", r.Center())
	}
	if !r.Contains(V2(2, 3)) || r.Contains(V2(0, 0)) {
		t.Error("contains misbehaves")
	}
}
