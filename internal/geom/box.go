package geom

import "math"

// AABB3 is an axis-aligned 3D bounding box.
type AABB3 struct {
	Min, Max Vec3
}

// NewAABB3 returns the box spanning the given corners in any order.
func NewAABB3(a, b Vec3) AABB3 {
	return AABB3{
		Min: Vec3{math.Min(a.X, b.X), math.Min(a.Y, b.Y), math.Min(a.Z, b.Z)},
		Max: Vec3{math.Max(a.X, b.X), math.Max(a.Y, b.Y), math.Max(a.Z, b.Z)},
	}
}

// EmptyAABB3 returns a box that contains nothing and extends under Expand.
func EmptyAABB3() AABB3 {
	inf := math.Inf(1)
	return AABB3{Min: Vec3{inf, inf, inf}, Max: Vec3{-inf, -inf, -inf}}
}

// Expand grows the box to include p.
func (b *AABB3) Expand(p Vec3) {
	b.Min.X = math.Min(b.Min.X, p.X)
	b.Min.Y = math.Min(b.Min.Y, p.Y)
	b.Min.Z = math.Min(b.Min.Z, p.Z)
	b.Max.X = math.Max(b.Max.X, p.X)
	b.Max.Y = math.Max(b.Max.Y, p.Y)
	b.Max.Z = math.Max(b.Max.Z, p.Z)
}

// Contains reports whether p lies inside the box (inclusive).
func (b AABB3) Contains(p Vec3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// Center returns the geometric center of the box.
func (b AABB3) Center() Vec3 { return b.Min.Add(b.Max).Scale(0.5) }

// Size returns the extents of the box.
func (b AABB3) Size() Vec3 { return b.Max.Sub(b.Min) }

// Valid reports whether the box has non-negative extents.
func (b AABB3) Valid() bool {
	return b.Min.X <= b.Max.X && b.Min.Y <= b.Max.Y && b.Min.Z <= b.Max.Z
}

// Intersects reports whether two boxes overlap.
func (b AABB3) Intersects(o AABB3) bool {
	return b.Min.X <= o.Max.X && b.Max.X >= o.Min.X &&
		b.Min.Y <= o.Max.Y && b.Max.Y >= o.Min.Y &&
		b.Min.Z <= o.Max.Z && b.Max.Z >= o.Min.Z
}

// RayHit intersects the ray origin + t*dir with the box using the slab
// method and returns the entry parameter and whether the ray hits for
// t in [0, tMax].
func (b AABB3) RayHit(origin, dir Vec3, tMax float64) (float64, bool) {
	tMin := 0.0
	// Per-axis slab clipping.
	axes := [3][3]float64{
		{origin.X, dir.X, 0}, {origin.Y, dir.Y, 0}, {origin.Z, dir.Z, 0},
	}
	mins := [3]float64{b.Min.X, b.Min.Y, b.Min.Z}
	maxs := [3]float64{b.Max.X, b.Max.Y, b.Max.Z}
	for i := 0; i < 3; i++ {
		o, d := axes[i][0], axes[i][1]
		if math.Abs(d) < 1e-12 {
			if o < mins[i] || o > maxs[i] {
				return 0, false
			}
			continue
		}
		inv := 1 / d
		t0 := (mins[i] - o) * inv
		t1 := (maxs[i] - o) * inv
		if t0 > t1 {
			t0, t1 = t1, t0
		}
		if t0 > tMin {
			tMin = t0
		}
		if t1 < tMax {
			tMax = t1
		}
		if tMin > tMax {
			return 0, false
		}
	}
	return tMin, true
}

// OBB2 is an oriented 2D box: a center, heading and half-extents. It is
// used for vehicle footprints and detection outputs.
type OBB2 struct {
	Center  Vec2
	Yaw     float64
	HalfLen float64 // half size along heading
	HalfWid float64 // half size across heading
}

// Corners returns the four corners in counter-clockwise order.
func (o OBB2) Corners() [4]Vec2 {
	f := V2(1, 0).Rotate(o.Yaw).Scale(o.HalfLen)
	l := V2(0, 1).Rotate(o.Yaw).Scale(o.HalfWid)
	return [4]Vec2{
		o.Center.Add(f).Add(l),
		o.Center.Sub(f).Add(l),
		o.Center.Sub(f).Sub(l),
		o.Center.Add(f).Sub(l),
	}
}

// Contains reports whether p is inside the oriented box.
func (o OBB2) Contains(p Vec2) bool {
	d := p.Sub(o.Center).Rotate(-o.Yaw)
	return math.Abs(d.X) <= o.HalfLen && math.Abs(d.Y) <= o.HalfWid
}

// Area returns the area of the box.
func (o OBB2) Area() float64 { return 4 * o.HalfLen * o.HalfWid }

// Rect is an axis-aligned 2D rectangle, used for image-space boxes.
type Rect struct {
	Min, Max Vec2
}

// NewRect returns the rectangle spanning the two corners in any order.
func NewRect(a, b Vec2) Rect {
	return Rect{
		Min: Vec2{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Vec2{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// Width returns the horizontal extent.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the rectangle area, zero for degenerate rectangles.
func (r Rect) Area() float64 {
	if r.Max.X < r.Min.X || r.Max.Y < r.Min.Y {
		return 0
	}
	return r.Width() * r.Height()
}

// Center returns the rectangle center.
func (r Rect) Center() Vec2 { return r.Min.Add(r.Max).Scale(0.5) }

// Contains reports whether p is inside the rectangle (inclusive).
func (r Rect) Contains(p Vec2) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Intersect returns the overlapping region of two rectangles; the result
// has zero Area when they do not overlap.
func (r Rect) Intersect(o Rect) Rect {
	return Rect{
		Min: Vec2{math.Max(r.Min.X, o.Min.X), math.Max(r.Min.Y, o.Min.Y)},
		Max: Vec2{math.Min(r.Max.X, o.Max.X), math.Min(r.Max.Y, o.Max.Y)},
	}
}

// IoU returns the intersection-over-union of two rectangles in [0, 1].
func (r Rect) IoU(o Rect) float64 {
	inter := r.Intersect(o).Area()
	if inter <= 0 {
		return 0
	}
	union := r.Area() + o.Area() - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

// Expand grows the rectangle to include p.
func (r *Rect) Expand(p Vec2) {
	r.Min.X = math.Min(r.Min.X, p.X)
	r.Min.Y = math.Min(r.Min.Y, p.Y)
	r.Max.X = math.Max(r.Max.X, p.X)
	r.Max.Y = math.Max(r.Max.Y, p.Y)
}
