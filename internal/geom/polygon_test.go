package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func square() Polygon {
	return Polygon{V2(0, 0), V2(2, 0), V2(2, 2), V2(0, 2)}
}

func TestPolygonArea(t *testing.T) {
	if got := square().Area(); !approx(got, 4) {
		t.Errorf("area = %v", got)
	}
	tri := Polygon{V2(0, 0), V2(4, 0), V2(0, 3)}
	if got := tri.Area(); !approx(got, 6) {
		t.Errorf("triangle area = %v", got)
	}
	if got := (Polygon{V2(0, 0), V2(1, 1)}).Area(); got != 0 {
		t.Errorf("degenerate area = %v", got)
	}
}

func TestPolygonCentroid(t *testing.T) {
	c := square().Centroid()
	if !approx(c.X, 1) || !approx(c.Y, 1) {
		t.Errorf("centroid = %v", c)
	}
	// Degenerate polygon falls back to vertex mean.
	line := Polygon{V2(0, 0), V2(2, 0)}
	c = line.Centroid()
	if !approx(c.X, 1) || !approx(c.Y, 0) {
		t.Errorf("degenerate centroid = %v", c)
	}
}

func TestPolygonContains(t *testing.T) {
	p := square()
	if !p.Contains(V2(1, 1)) {
		t.Error("interior point should be inside")
	}
	if p.Contains(V2(3, 1)) || p.Contains(V2(-1, 1)) {
		t.Error("exterior point should be outside")
	}
	// Concave polygon (L shape).
	l := Polygon{V2(0, 0), V2(3, 0), V2(3, 1), V2(1, 1), V2(1, 3), V2(0, 3)}
	if !l.Contains(V2(0.5, 2)) {
		t.Error("L interior should be inside")
	}
	if l.Contains(V2(2, 2)) {
		t.Error("L notch should be outside")
	}
}

func TestPolygonBounds(t *testing.T) {
	b := square().Bounds()
	if b.Min != V2(0, 0) || b.Max != V2(2, 2) {
		t.Errorf("bounds = %+v", b)
	}
	if (Polygon{}).Bounds() != (Rect{}) {
		t.Error("empty polygon bounds should be zero")
	}
}

func TestConvexHullSquarePlusInterior(t *testing.T) {
	pts := []Vec2{
		V2(0, 0), V2(4, 0), V2(4, 4), V2(0, 4),
		V2(2, 2), V2(1, 1), V2(3, 2), // interior points
	}
	h := ConvexHull(pts)
	if len(h) != 4 {
		t.Fatalf("hull size = %d (%v)", len(h), h)
	}
	if !approx(h.Area(), 16) {
		t.Errorf("hull area = %v", h.Area())
	}
}

func TestConvexHullCollinear(t *testing.T) {
	pts := []Vec2{V2(0, 0), V2(1, 0), V2(2, 0), V2(3, 0)}
	h := ConvexHull(pts)
	// All collinear: the hull degenerates to the two extreme points.
	if len(h) > 2 {
		t.Errorf("collinear hull = %v", h)
	}
}

func TestConvexHullSmallInputs(t *testing.T) {
	if got := ConvexHull(nil); len(got) != 0 {
		t.Errorf("nil hull = %v", got)
	}
	one := ConvexHull([]Vec2{V2(1, 2)})
	if len(one) != 1 || one[0] != V2(1, 2) {
		t.Errorf("single-point hull = %v", one)
	}
}

func TestConvexHullContainsAllPoints(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 8 {
			return true
		}
		pts := make([]Vec2, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			x, y := raw[i], raw[i+1]
			if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
				return true
			}
			pts = append(pts, V2(math.Mod(x, 100), math.Mod(y, 100)))
		}
		h := ConvexHull(pts)
		if len(h) < 3 {
			return true // degenerate input
		}
		// Every input point must be inside or on the hull; test with a
		// small tolerance by shrinking points toward the hull centroid.
		c := h.Centroid()
		for _, p := range pts {
			q := c.Add(p.Sub(c).Scale(0.9999))
			if !h.Contains(q) && p.Dist(c) > 1e-6 {
				// Point may be a hull vertex; boundary tolerance.
				onHull := false
				for _, v := range h {
					if v.Dist(p) < 1e-9 {
						onHull = true
						break
					}
				}
				if !onHull {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSegmentPointDist(t *testing.T) {
	a, b := V2(0, 0), V2(10, 0)
	if got := SegmentPointDist(a, b, V2(5, 3)); !approx(got, 3) {
		t.Errorf("mid dist = %v", got)
	}
	if got := SegmentPointDist(a, b, V2(-4, 3)); !approx(got, 5) {
		t.Errorf("endpoint dist = %v", got)
	}
	if got := SegmentPointDist(a, a, V2(3, 4)); !approx(got, 5) {
		t.Errorf("degenerate segment dist = %v", got)
	}
}
