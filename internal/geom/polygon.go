package geom

import "math"

// Polygon is a simple 2D polygon given by its vertices in order.
type Polygon []Vec2

// Area returns the unsigned area via the shoelace formula.
func (p Polygon) Area() float64 {
	if len(p) < 3 {
		return 0
	}
	sum := 0.0
	for i := 0; i < len(p); i++ {
		j := (i + 1) % len(p)
		sum += p[i].Cross(p[j])
	}
	return math.Abs(sum) / 2
}

// Centroid returns the area centroid. For degenerate polygons it falls
// back to the vertex mean.
func (p Polygon) Centroid() Vec2 {
	if len(p) == 0 {
		return Vec2{}
	}
	a := 0.0
	var c Vec2
	for i := 0; i < len(p); i++ {
		j := (i + 1) % len(p)
		cross := p[i].Cross(p[j])
		a += cross
		c = c.Add(p[i].Add(p[j]).Scale(cross))
	}
	if math.Abs(a) < 1e-12 {
		var m Vec2
		for _, v := range p {
			m = m.Add(v)
		}
		return m.Scale(1 / float64(len(p)))
	}
	return c.Scale(1 / (3 * a))
}

// Contains reports whether q lies inside the polygon using the winding
// ray-crossing test. Points exactly on an edge may land on either side.
func (p Polygon) Contains(q Vec2) bool {
	inside := false
	n := len(p)
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		pi, pj := p[i], p[j]
		if (pi.Y > q.Y) != (pj.Y > q.Y) {
			xInt := (pj.X-pi.X)*(q.Y-pi.Y)/(pj.Y-pi.Y) + pi.X
			if q.X < xInt {
				inside = !inside
			}
		}
	}
	return inside
}

// Bounds returns the axis-aligned bounding rectangle of the polygon.
func (p Polygon) Bounds() Rect {
	if len(p) == 0 {
		return Rect{}
	}
	r := NewRect(p[0], p[0])
	for _, v := range p[1:] {
		r.Expand(v)
	}
	return r
}

// ConvexHull computes the convex hull of a point set using the Andrew
// monotone chain algorithm. The input is not modified; the hull is
// returned in counter-clockwise order without the closing point.
func ConvexHull(points []Vec2) Polygon {
	n := len(points)
	if n < 3 {
		out := make(Polygon, n)
		copy(out, points)
		return out
	}
	pts := make([]Vec2, n)
	copy(pts, points)
	// Sort lexicographically by (X, Y) with insertion-free sort.
	sortVec2(pts)

	hull := make([]Vec2, 0, 2*n)
	// Lower hull.
	for _, p := range pts {
		for len(hull) >= 2 && hull[len(hull)-1].Sub(hull[len(hull)-2]).Cross(p.Sub(hull[len(hull)-2])) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	// Upper hull.
	lower := len(hull) + 1
	for i := n - 2; i >= 0; i-- {
		p := pts[i]
		for len(hull) >= lower && hull[len(hull)-1].Sub(hull[len(hull)-2]).Cross(p.Sub(hull[len(hull)-2])) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	return Polygon(hull[:len(hull)-1])
}

func sortVec2(pts []Vec2) {
	// Simple in-place quicksort over (X, Y); the point counts here are
	// small (cluster hulls) so recursion depth is not a concern.
	if len(pts) < 2 {
		return
	}
	pivot := pts[len(pts)/2]
	left, right := 0, len(pts)-1
	for left <= right {
		for vec2Less(pts[left], pivot) {
			left++
		}
		for vec2Less(pivot, pts[right]) {
			right--
		}
		if left <= right {
			pts[left], pts[right] = pts[right], pts[left]
			left++
			right--
		}
	}
	sortVec2(pts[:right+1])
	sortVec2(pts[left:])
}

func vec2Less(a, b Vec2) bool {
	if a.X != b.X {
		return a.X < b.X
	}
	return a.Y < b.Y
}

// SegmentPointDist returns the distance from point p to segment [a, b].
func SegmentPointDist(a, b, p Vec2) float64 {
	ab := b.Sub(a)
	l2 := ab.NormSq()
	if l2 == 0 {
		return p.Dist(a)
	}
	t := Clamp(p.Sub(a).Dot(ab)/l2, 0, 1)
	return p.Dist(a.Add(ab.Scale(t)))
}
