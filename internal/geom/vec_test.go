package geom

import (
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestVec2Basics(t *testing.T) {
	a, b := V2(3, 4), V2(-1, 2)
	if got := a.Add(b); got != V2(2, 6) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != V2(4, 2) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != V2(6, 8) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 5 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Cross(b); got != 10 {
		t.Errorf("Cross = %v", got)
	}
	if got := a.Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := a.NormSq(); got != 25 {
		t.Errorf("NormSq = %v", got)
	}
}

func TestVec2Unit(t *testing.T) {
	if got := V2(10, 0).Unit(); got != V2(1, 0) {
		t.Errorf("Unit = %v", got)
	}
	if got := V2(0, 0).Unit(); got != V2(0, 0) {
		t.Errorf("zero Unit = %v", got)
	}
	u := V2(3, -7).Unit()
	if !approx(u.Norm(), 1) {
		t.Errorf("Unit norm = %v", u.Norm())
	}
}

func TestVec2Rotate(t *testing.T) {
	r := V2(1, 0).Rotate(math.Pi / 2)
	if !approx(r.X, 0) || !approx(r.Y, 1) {
		t.Errorf("Rotate 90 = %v", r)
	}
	p := V2(1, 0).Perp()
	if p != V2(0, 1) {
		t.Errorf("Perp = %v", p)
	}
}

func TestVec2RotatePreservesNorm(t *testing.T) {
	f := func(x, y, theta float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) ||
			math.IsNaN(theta) || math.IsInf(theta, 0) {
			return true
		}
		// Keep magnitudes sane to avoid float overflow noise.
		x = math.Mod(x, 1e6)
		y = math.Mod(y, 1e6)
		v := V2(x, y)
		r := v.Rotate(theta)
		return math.Abs(v.Norm()-r.Norm()) < 1e-6*(1+v.Norm())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVec2Lerp(t *testing.T) {
	a, b := V2(0, 0), V2(10, -10)
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp 0 = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp 1 = %v", got)
	}
	if got := a.Lerp(b, 0.5); got != V2(5, -5) {
		t.Errorf("Lerp 0.5 = %v", got)
	}
}

func TestVec3Basics(t *testing.T) {
	a, b := V3(1, 2, 3), V3(4, 5, 6)
	if got := a.Add(b); got != V3(5, 7, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Dot(b); got != 32 {
		t.Errorf("Dot = %v", got)
	}
	c := a.Cross(b)
	if c != V3(-3, 6, -3) {
		t.Errorf("Cross = %v", c)
	}
	// Cross product is orthogonal to both operands.
	if !approx(c.Dot(a), 0) || !approx(c.Dot(b), 0) {
		t.Errorf("Cross not orthogonal: %v", c)
	}
	if got := a.XY(); got != V2(1, 2) {
		t.Errorf("XY = %v", got)
	}
}

func TestVec3Unit(t *testing.T) {
	if got := V3(0, 0, 0).Unit(); got != V3(0, 0, 0) {
		t.Errorf("zero Unit = %v", got)
	}
	if n := V3(1, 2, 2).Unit().Norm(); !approx(n, 1) {
		t.Errorf("Unit norm = %v", n)
	}
}

func TestWrapAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi, math.Pi},
		{2 * math.Pi, 0},
		{-2.5 * math.Pi, -0.5 * math.Pi},
	}
	for _, c := range cases {
		if got := WrapAngle(c.in); !approx(got, c.want) {
			t.Errorf("WrapAngle(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestWrapAngleProperty(t *testing.T) {
	f := func(a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return true
		}
		a = math.Mod(a, 1000)
		w := WrapAngle(a)
		if w <= -math.Pi-eps || w > math.Pi+eps {
			return false
		}
		// The wrapped angle points the same direction.
		return math.Abs(math.Sin(w)-math.Sin(a)) < 1e-6 &&
			math.Abs(math.Cos(w)-math.Cos(a)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAngleDiff(t *testing.T) {
	if got := AngleDiff(0.1, -0.1); !approx(got, 0.2) {
		t.Errorf("AngleDiff = %v", got)
	}
	// Across the wrap boundary.
	if got := AngleDiff(math.Pi-0.1, -math.Pi+0.1); !approx(got, -0.2) {
		t.Errorf("AngleDiff wrap = %v", got)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}
