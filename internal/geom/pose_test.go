package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPoseTransformInverseRoundTrip(t *testing.T) {
	p := NewPose(10, -5, 2, 0.7)
	local := V3(3, 1, 0.5)
	world := p.Transform(local)
	back := p.Inverse(world)
	if back.Dist(local) > 1e-9 {
		t.Errorf("round trip: %v -> %v -> %v", local, world, back)
	}
}

func TestPoseTransformIdentity(t *testing.T) {
	p := NewPose(0, 0, 0, 0)
	v := V3(1, 2, 3)
	if got := p.Transform(v); got != v {
		t.Errorf("identity transform = %v", got)
	}
}

func TestPoseTransformRotation(t *testing.T) {
	p := NewPose(0, 0, 0, math.Pi/2)
	got := p.Transform(V3(1, 0, 0))
	if math.Abs(got.X) > 1e-9 || math.Abs(got.Y-1) > 1e-9 {
		t.Errorf("90-degree transform = %v", got)
	}
}

func TestPoseCompose(t *testing.T) {
	a := NewPose(1, 0, 0, math.Pi/2)
	b := NewPose(1, 0, 0, 0)
	c := a.Compose(b)
	// b's origin is 1m forward of a, which points +Y.
	if math.Abs(c.Pos.X-1) > 1e-9 || math.Abs(c.Pos.Y-1) > 1e-9 {
		t.Errorf("compose pos = %v", c.Pos)
	}
	if !approx(c.Yaw, math.Pi/2) {
		t.Errorf("compose yaw = %v", c.Yaw)
	}
}

func TestPoseComposeAssociativeProperty(t *testing.T) {
	f := func(x1, y1, w1, x2, y2, w2, x3, y3, w3 float64) bool {
		for _, v := range []float64{x1, y1, w1, x2, y2, w2, x3, y3, w3} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		clampIn := func(v float64) float64 { return math.Mod(v, 100) }
		a := NewPose(clampIn(x1), clampIn(y1), 0, clampIn(w1))
		b := NewPose(clampIn(x2), clampIn(y2), 0, clampIn(w2))
		c := NewPose(clampIn(x3), clampIn(y3), 0, clampIn(w3))
		l := a.Compose(b).Compose(c)
		r := a.Compose(b.Compose(c))
		return l.Pos.Dist(r.Pos) < 1e-6 && math.Abs(AngleDiff(l.Yaw, r.Yaw)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPoseForward(t *testing.T) {
	p := NewPose(0, 0, 0, math.Pi)
	f := p.Forward()
	if !approx(f.X, -1) || !approx(f.Y, 0) {
		t.Errorf("forward = %v", f)
	}
}

func TestTwistIntegrateStraight(t *testing.T) {
	p := NewPose(0, 0, 0, 0)
	tw := Twist{Linear: 10, Angular: 0}
	q := tw.Integrate(p, 0.5)
	if !approx(q.Pos.X, 5) || !approx(q.Pos.Y, 0) {
		t.Errorf("straight integrate = %v", q.Pos)
	}
}

func TestTwistIntegrateArc(t *testing.T) {
	// Quarter circle of radius 10: v = w*r.
	p := NewPose(0, 0, 0, 0)
	tw := Twist{Linear: 10, Angular: 1}
	q := tw.Integrate(p, math.Pi/2)
	if !approx(q.Pos.X, 10) || !approx(q.Pos.Y, 10) {
		t.Errorf("arc integrate pos = %v", q.Pos)
	}
	if !approx(q.Yaw, math.Pi/2) {
		t.Errorf("arc integrate yaw = %v", q.Yaw)
	}
}

func TestTwistIntegrateArcLength(t *testing.T) {
	// Over a short step the distance traveled equals v*dt regardless of
	// curvature (to first order the chord is shorter; check bound).
	p := NewPose(3, 4, 0, 1.1)
	tw := Twist{Linear: 8, Angular: 0.3}
	dt := 0.01
	q := tw.Integrate(p, dt)
	chord := q.Pos.Dist(p.Pos)
	if chord > tw.Linear*dt+1e-9 {
		t.Errorf("chord %v exceeds arc %v", chord, tw.Linear*dt)
	}
	if chord < tw.Linear*dt*0.999 {
		t.Errorf("chord %v too short vs arc %v", chord, tw.Linear*dt)
	}
}
