package geom

import (
	"fmt"
	"math"
)

// Pose is a rigid transform in the plane with an altitude: position,
// yaw (heading) and z. Full 3D orientation is not needed anywhere in the
// stack — vehicles and the LiDAR rig stay level — so roll/pitch are
// omitted by design.
type Pose struct {
	Pos Vec3
	Yaw float64
}

// NewPose builds a Pose from a 2D position, altitude and yaw.
func NewPose(x, y, z, yaw float64) Pose {
	return Pose{Pos: Vec3{x, y, z}, Yaw: WrapAngle(yaw)}
}

// Transform maps a point from the pose's local frame to the world frame.
func (p Pose) Transform(local Vec3) Vec3 {
	s, c := math.Sincos(p.Yaw)
	return Vec3{
		p.Pos.X + local.X*c - local.Y*s,
		p.Pos.Y + local.X*s + local.Y*c,
		p.Pos.Z + local.Z,
	}
}

// Inverse maps a world point into the pose's local frame.
func (p Pose) Inverse(world Vec3) Vec3 {
	d := world.Sub(p.Pos)
	s, c := math.Sincos(-p.Yaw)
	return Vec3{
		d.X*c - d.Y*s,
		d.X*s + d.Y*c,
		d.Z,
	}
}

// Compose returns the pose obtained by applying q in p's frame
// (i.e. p then q, like matrix multiplication p*q).
func (p Pose) Compose(q Pose) Pose {
	return Pose{
		Pos: p.Transform(q.Pos),
		Yaw: WrapAngle(p.Yaw + q.Yaw),
	}
}

// Forward returns the unit heading vector of the pose on the ground plane.
func (p Pose) Forward() Vec2 {
	s, c := math.Sincos(p.Yaw)
	return Vec2{c, s}
}

// XY returns the ground-plane position.
func (p Pose) XY() Vec2 { return p.Pos.XY() }

// DistanceTo returns the planar distance between two poses.
func (p Pose) DistanceTo(q Pose) float64 { return p.XY().Dist(q.XY()) }

// String implements fmt.Stringer.
func (p Pose) String() string {
	return fmt.Sprintf("pose{%s yaw=%.3f}", p.Pos, p.Yaw)
}

// Twist is a velocity command or measurement: linear speed along the
// heading and angular (yaw) rate.
type Twist struct {
	Linear  float64 // m/s
	Angular float64 // rad/s
}

// Integrate advances a pose by the twist over dt seconds using the
// unicycle model (exact arc integration when Angular != 0).
func (t Twist) Integrate(p Pose, dt float64) Pose {
	if math.Abs(t.Angular) < 1e-9 {
		d := p.Forward().Scale(t.Linear * dt)
		return Pose{Pos: p.Pos.Add(Vec3{d.X, d.Y, 0}), Yaw: p.Yaw}
	}
	r := t.Linear / t.Angular
	newYaw := p.Yaw + t.Angular*dt
	dx := r * (math.Sin(newYaw) - math.Sin(p.Yaw))
	dy := r * (-math.Cos(newYaw) + math.Cos(p.Yaw))
	return Pose{Pos: p.Pos.Add(Vec3{dx, dy, 0}), Yaw: WrapAngle(newYaw)}
}
