// Package geom provides the small geometric vocabulary shared by every
// layer of the stack: vectors, poses, rotations, boxes and polygon
// operations. All angles are radians; the world frame is right-handed
// with X forward (east), Y left (north), Z up.
package geom

import (
	"fmt"
	"math"
)

// Vec2 is a 2D vector or point.
type Vec2 struct {
	X, Y float64
}

// V2 is shorthand for Vec2{x, y}.
func V2(x, y float64) Vec2 { return Vec2{X: x, Y: y} }

// Add returns v + o.
func (v Vec2) Add(o Vec2) Vec2 { return Vec2{v.X + o.X, v.Y + o.Y} }

// Sub returns v - o.
func (v Vec2) Sub(o Vec2) Vec2 { return Vec2{v.X - o.X, v.Y - o.Y} }

// Scale returns v * s.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{v.X * s, v.Y * s} }

// Dot returns the dot product v·o.
func (v Vec2) Dot(o Vec2) float64 { return v.X*o.X + v.Y*o.Y }

// Cross returns the scalar z-component of the 3D cross product.
func (v Vec2) Cross(o Vec2) float64 { return v.X*o.Y - v.Y*o.X }

// Norm returns the Euclidean length of v.
func (v Vec2) Norm() float64 { return math.Hypot(v.X, v.Y) }

// NormSq returns the squared length of v.
func (v Vec2) NormSq() float64 { return v.X*v.X + v.Y*v.Y }

// Dist returns the distance between v and o.
func (v Vec2) Dist(o Vec2) float64 { return v.Sub(o).Norm() }

// DistSq returns the squared distance between v and o.
func (v Vec2) DistSq(o Vec2) float64 { return v.Sub(o).NormSq() }

// Unit returns v normalized to length 1. The zero vector maps to itself.
func (v Vec2) Unit() Vec2 {
	n := v.Norm()
	if n == 0 {
		return Vec2{}
	}
	return v.Scale(1 / n)
}

// Angle returns the heading of v in radians, in (-pi, pi].
func (v Vec2) Angle() float64 { return math.Atan2(v.Y, v.X) }

// Rotate returns v rotated by theta radians counter-clockwise.
func (v Vec2) Rotate(theta float64) Vec2 {
	s, c := math.Sincos(theta)
	return Vec2{v.X*c - v.Y*s, v.X*s + v.Y*c}
}

// Perp returns v rotated 90 degrees counter-clockwise.
func (v Vec2) Perp() Vec2 { return Vec2{-v.Y, v.X} }

// Lerp linearly interpolates between v (t=0) and o (t=1).
func (v Vec2) Lerp(o Vec2, t float64) Vec2 {
	return Vec2{v.X + (o.X-v.X)*t, v.Y + (o.Y-v.Y)*t}
}

// String implements fmt.Stringer.
func (v Vec2) String() string { return fmt.Sprintf("(%.3f, %.3f)", v.X, v.Y) }

// Vec3 is a 3D vector or point.
type Vec3 struct {
	X, Y, Z float64
}

// V3 is shorthand for Vec3{x, y, z}.
func V3(x, y, z float64) Vec3 { return Vec3{X: x, Y: y, Z: z} }

// Add returns v + o.
func (v Vec3) Add(o Vec3) Vec3 { return Vec3{v.X + o.X, v.Y + o.Y, v.Z + o.Z} }

// Sub returns v - o.
func (v Vec3) Sub(o Vec3) Vec3 { return Vec3{v.X - o.X, v.Y - o.Y, v.Z - o.Z} }

// Scale returns v * s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product v·o.
func (v Vec3) Dot(o Vec3) float64 { return v.X*o.X + v.Y*o.Y + v.Z*o.Z }

// Cross returns the cross product v × o.
func (v Vec3) Cross(o Vec3) Vec3 {
	return Vec3{
		v.Y*o.Z - v.Z*o.Y,
		v.Z*o.X - v.X*o.Z,
		v.X*o.Y - v.Y*o.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.NormSq()) }

// NormSq returns the squared length of v.
func (v Vec3) NormSq() float64 { return v.X*v.X + v.Y*v.Y + v.Z*v.Z }

// Dist returns the distance between v and o.
func (v Vec3) Dist(o Vec3) float64 { return v.Sub(o).Norm() }

// DistSq returns the squared distance between v and o.
func (v Vec3) DistSq(o Vec3) float64 { return v.Sub(o).NormSq() }

// Unit returns v normalized to length 1. The zero vector maps to itself.
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 {
		return Vec3{}
	}
	return v.Scale(1 / n)
}

// XY projects v onto the ground plane.
func (v Vec3) XY() Vec2 { return Vec2{v.X, v.Y} }

// Lerp linearly interpolates between v (t=0) and o (t=1).
func (v Vec3) Lerp(o Vec3, t float64) Vec3 {
	return Vec3{v.X + (o.X-v.X)*t, v.Y + (o.Y-v.Y)*t, v.Z + (o.Z-v.Z)*t}
}

// String implements fmt.Stringer.
func (v Vec3) String() string {
	return fmt.Sprintf("(%.3f, %.3f, %.3f)", v.X, v.Y, v.Z)
}

// WrapAngle normalizes an angle to (-pi, pi].
func WrapAngle(a float64) float64 {
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	for a <= -math.Pi {
		a += 2 * math.Pi
	}
	return a
}

// AngleDiff returns the signed smallest difference a-b wrapped to (-pi, pi].
func AngleDiff(a, b float64) float64 { return WrapAngle(a - b) }

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
