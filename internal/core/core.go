// Package core is the paper's primary contribution rendered as a
// library: the end-to-end characterization engine. It orchestrates
// full-system runs of the assembled stack across the detector
// configurations, regenerates every table and figure of the evaluation,
// and writes the paper-versus-measured record (EXPERIMENTS.md).
package core

import (
	"fmt"
	"io"
	"time"

	"repro/internal/autoware"
	"repro/internal/experiments"
)

// Characterizer runs the full methodology over one environment.
type Characterizer struct {
	env  *experiments.Env
	runs *experiments.Runs
	// Duration is the virtual drive time per configuration.
	Duration time.Duration
}

// NewCharacterizer builds the environment (scenario + HD map). This is
// the expensive step; reuse one Characterizer across experiments.
func NewCharacterizer(duration time.Duration) (*Characterizer, error) {
	if duration <= 0 {
		return nil, fmt.Errorf("core: non-positive duration")
	}
	env, err := experiments.NewEnv()
	if err != nil {
		return nil, err
	}
	c := &Characterizer{env: env, Duration: duration}
	c.runs = experiments.NewRuns(env, duration)
	return c, nil
}

// Env exposes the underlying environment for advanced use.
func (c *Characterizer) Env() *experiments.Env { return c.env }

// SetWorkers bounds how many experiment configurations simulate
// concurrently (n <= 1 means serial). Each configuration is an isolated
// virtual-time simulation, so the worker count never changes results —
// only wall-clock time.
func (c *Characterizer) SetWorkers(n int) { c.runs.Workers = n }

// SetGuard attaches the input-integrity guard to every characterization
// stack. The sensor pumps produce clean input, so guarded output is
// byte-identical to unguarded output — the flag is the regression hook
// that proves it. Call before any experiment runs.
func (c *Characterizer) SetGuard(on bool) { c.runs.Guard = on }

// prewarm simulates the full configuration matrix concurrently when
// workers are enabled; serial runs warm lazily instead.
func (c *Characterizer) prewarm() error {
	if c.runs.Workers <= 1 {
		return nil
	}
	if err := c.runs.Prewarm(); err != nil {
		return fmt.Errorf("core: prewarm: %w", err)
	}
	return nil
}

// Runs exposes the run cache (completed stack executions).
func (c *Characterizer) Runs() *experiments.Runs { return c.runs }

// RunExperiment executes one named experiment (fig5, tab3, fig6, tab5,
// tab6, tab7, fig7, fig8), writing its report to w.
func (c *Characterizer) RunExperiment(w io.Writer, name string) error {
	e, err := experiments.ByName(name)
	if err != nil {
		return err
	}
	return e.Run(w, c.runs)
}

// WriteCSV exports the raw data behind the figures to dir (see
// experiments.WriteCSV for the file inventory).
func (c *Characterizer) WriteCSV(dir string) error {
	if err := c.prewarm(); err != nil {
		return err
	}
	return experiments.WriteCSV(dir, c.runs)
}

// RunAll executes every experiment in paper order. When SetWorkers has
// enabled parallelism, the configuration matrix is simulated up front
// across workers; rendering then reads the cache in paper order.
func (c *Characterizer) RunAll(w io.Writer) error {
	if err := c.prewarm(); err != nil {
		return err
	}
	for _, e := range experiments.All() {
		if err := e.Run(w, c.runs); err != nil {
			return fmt.Errorf("core: experiment %s: %w", e.Name, err)
		}
	}
	return nil
}

// ExperimentNames lists the available experiments in paper order.
func ExperimentNames() []string {
	all := experiments.All()
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = e.Name
	}
	return out
}

// Stack returns the completed full-system run for a detector (running
// it on first use).
func (c *Characterizer) Stack(det autoware.Detector) (*autoware.Stack, error) {
	return c.runs.Full(det)
}

// Findings checks the paper's five findings against the completed runs
// and returns one line per finding with a pass/deviation verdict.
func (c *Characterizer) Findings() ([]string, error) {
	var out []string

	ssd512, err := c.runs.Full(autoware.DetectorSSD512)
	if err != nil {
		return nil, err
	}
	ssd300, err := c.runs.Full(autoware.DetectorSSD300)
	if err != nil {
		return nil, err
	}
	alone, err := c.runs.Standalone(autoware.DetectorSSD512)
	if err != nil {
		return nil, err
	}

	// Finding 1: tail latency of other components varies with the
	// detector choice (contention).
	t512 := ssd512.Recorder.NodeLatency("euclidean_cluster").P99
	t300 := ssd300.Recorder.NodeLatency("euclidean_cluster").P99
	delta := 0.0
	if t300 > 0 {
		delta = (t512 - t300) / t300
	}
	out = append(out, verdict(
		"F1 contention moves co-runner tails",
		fmt.Sprintf("euclidean_cluster p99 %.1f ms (SSD512) vs %.1f ms (SSD300), %+.0f%%", t512, t300, 100*delta),
		delta > 0.05 || delta < -0.05))

	// Finding 2: end-to-end latency exceeds the 100 ms budget.
	_, e2e := ssd512.Recorder.EndToEnd()
	out = append(out, verdict(
		"F2 end-to-end exceeds 100 ms budget",
		fmt.Sprintf("worst path mean %.1f ms, max %.1f ms", e2e.Mean, e2e.Max),
		e2e.Mean > 100 && e2e.Max > 150))

	// Finding 3: average utilization leaves headroom.
	cpuU := ssd512.Sampler.MeanCPUUtil()
	gpuU := ssd512.Sampler.MeanGPUUtil()
	out = append(out, verdict(
		"F3 resources not saturated",
		fmt.Sprintf("mean CPU %.0f%%, GPU %.0f%%", 100*cpuU, 100*gpuU),
		cpuU < 0.6 && gpuU < 0.6))

	// Findings 4/5: full system raises detector mean and stddev.
	sa := alone.Recorder.NodeLatency(autoware.VisionNodeName)
	sf := ssd512.Recorder.NodeLatency(autoware.VisionNodeName)
	out = append(out, verdict(
		"F4 full system raises detector mean",
		fmt.Sprintf("SSD512 %.2f ms alone vs %.2f ms in system", sa.Mean, sf.Mean),
		sf.Mean > sa.Mean))
	out = append(out, verdict(
		"F5 full system weakens predictability",
		fmt.Sprintf("SSD512 stddev %.2f ms alone vs %.2f ms in system", sa.StdDev, sf.StdDev),
		sf.StdDev > sa.StdDev))
	return out, nil
}

func verdict(name, detail string, ok bool) string {
	mark := "REPRODUCED"
	if !ok {
		mark = "DEVIATION"
	}
	return fmt.Sprintf("[%s] %s — %s", mark, name, detail)
}
