package core

import (
	"strings"
	"testing"
	"time"
)

// The characterizer is expensive (environment build + full-system
// runs); one shared instance serves every test in the package.
var shared *Characterizer

func characterizer(t *testing.T) *Characterizer {
	t.Helper()
	if shared == nil {
		c, err := NewCharacterizer(15 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		shared = c
	}
	return shared
}

func TestNewCharacterizerRejectsBadDuration(t *testing.T) {
	if _, err := NewCharacterizer(0); err == nil {
		t.Error("zero duration should fail")
	}
}

func TestRunExperimentByName(t *testing.T) {
	c := characterizer(t)
	var sb strings.Builder
	if err := c.RunExperiment(&sb, "tab6"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Table VI") {
		t.Errorf("tab6 output:\n%s", sb.String())
	}
	if err := c.RunExperiment(&sb, "nope"); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestExperimentNames(t *testing.T) {
	names := ExperimentNames()
	if len(names) != 9 {
		t.Fatalf("names = %v", names)
	}
	if names[0] != "fig5" {
		t.Errorf("first = %s", names[0])
	}
}

func TestFindingsAllReproduced(t *testing.T) {
	c := characterizer(t)
	findings, err := c.Findings()
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 5 {
		t.Fatalf("findings = %d", len(findings))
	}
	for _, f := range findings {
		if !strings.Contains(f, "REPRODUCED") {
			t.Errorf("finding not reproduced: %s", f)
		}
	}
}

func TestStackAccessor(t *testing.T) {
	c := characterizer(t)
	s, err := c.Stack("SSD300")
	if err != nil {
		t.Fatal(err)
	}
	if s.Recorder.NodeLatency("ndt_matching").Count == 0 {
		t.Error("stack run produced no samples")
	}
	if _, err := c.Stack("bogus"); err == nil {
		t.Error("bogus detector should fail")
	}
}
