package hdmap

import (
	"os"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/pointcloud"
	"repro/internal/world"
)

var (
	testMapOnce sync.Once
	testMap     *Map
	testScen    *world.Scenario
)

// sharedMap builds one map for all tests in the package (construction
// sweeps the whole route and is the expensive part).
func sharedMap(t *testing.T) (*Map, *world.Scenario) {
	t.Helper()
	testMapOnce.Do(func() {
		testScen = world.NewScenario(world.DefaultScenarioConfig())
		cfg := DefaultConfig()
		cfg.ScanSpacing = 10 // coarser for test speed
		m, err := Build(testScen, cfg)
		if err != nil {
			panic(err)
		}
		testMap = m
	})
	return testMap, testScen
}

func TestBuildProducesMap(t *testing.T) {
	m, _ := sharedMap(t)
	if m.Cloud.Len() < 10000 {
		t.Errorf("map cloud too sparse: %d points", m.Cloud.Len())
	}
	if m.Scans < 50 {
		t.Errorf("too few mapping scans: %d", m.Scans)
	}
	usable := 0
	for _, vs := range m.NDT {
		if vs.OK {
			usable++
		}
	}
	if usable < 100 {
		t.Errorf("too few usable NDT voxels: %d", usable)
	}
}

func TestBuildRejectsBadConfig(t *testing.T) {
	s := world.NewScenario(world.DefaultScenarioConfig())
	cfg := DefaultConfig()
	cfg.ScanSpacing = -1
	if _, err := Build(s, cfg); err == nil {
		t.Error("negative spacing should fail")
	}
}

func TestVoxelAt(t *testing.T) {
	m, s := sharedMap(t)
	// A point near the route at ground structure height should usually
	// have a voxel; a point far outside the city should not.
	pose, _ := s.EgoRoute.At(30)
	found := false
	for dz := 0.0; dz <= 2 && !found; dz += 0.5 {
		for dx := -6.0; dx <= 6 && !found; dx += 2 {
			if m.VoxelAt(pose.Pos.Add(geom.V3(dx, 0, dz))) != nil {
				found = true
			}
		}
	}
	if !found {
		t.Error("no NDT voxel near route point")
	}
	if m.VoxelAt(geom.V3(-500, -500, 0)) != nil {
		t.Error("voxel outside the city should be nil")
	}
}

func TestNeighborVoxelsSorted(t *testing.T) {
	m, s := sharedMap(t)
	pose, _ := s.EgoRoute.At(60)
	p := pose.Pos.Add(geom.V3(0, 0, 0.2))
	vs := m.NeighborVoxels(p)
	for i := 1; i < len(vs); i++ {
		if vs[i].Mean.DistSq(p) < vs[i-1].Mean.DistSq(p) {
			t.Fatal("neighbor voxels not sorted by distance")
		}
	}
}

func TestCoverageAlongRoute(t *testing.T) {
	m, s := sharedMap(t)
	cov := m.Coverage(s, 50)
	if cov < 0.8 {
		t.Errorf("route coverage = %v, want >= 0.8", cov)
	}
}

func TestDirect7Neighborhood(t *testing.T) {
	m, s := sharedMap(t)
	pose, _ := s.EgoRoute.At(45)
	probe := pose.Pos.Add(geom.V3(0, 0, 0.3))
	var buf []*pointcloud.VoxelStats
	buf = m.Direct7(probe, buf[:0])
	if len(buf) > 7 {
		t.Fatalf("Direct7 returned %d voxels", len(buf))
	}
	// Every returned voxel's mean lies within ~2 cells of the probe.
	for _, vs := range buf {
		if vs.Mean.Dist(probe) > 2*m.NDTLeaf*1.8 {
			t.Errorf("voxel mean %v too far from probe %v", vs.Mean, probe)
		}
		if !vs.OK {
			t.Error("Direct7 returned an unusable voxel")
		}
	}
	// Reuse: the buffer grows without reallocating beyond capacity.
	buf2 := m.Direct7(probe, buf[:0])
	if len(buf2) != len(buf) {
		t.Error("Direct7 not deterministic")
	}
}

func TestMapSaveLoadRoundTrip(t *testing.T) {
	m, s := sharedMap(t)
	path := t.TempDir() + "/test.avmap"
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Cloud.Len() != m.Cloud.Len() {
		t.Errorf("cloud size %d != %d", loaded.Cloud.Len(), m.Cloud.Len())
	}
	if loaded.Scans != m.Scans || loaded.NDTLeaf != m.NDTLeaf {
		t.Errorf("metadata mismatch: %+v", loaded)
	}
	// The rebuilt NDT grid matches voxel for voxel.
	if len(loaded.NDT) != len(m.NDT) {
		t.Fatalf("voxel count %d != %d", len(loaded.NDT), len(m.NDT))
	}
	// And localization still works against the loaded map: probe the
	// DIRECT7 neighborhood along the route.
	pose, _ := s.EgoRoute.At(45)
	probe := pose.Pos.Add(geom.V3(0, 0, 0.3))
	a := m.Direct7(probe, nil)
	b := loaded.Direct7(probe, nil)
	if len(a) != len(b) {
		t.Errorf("Direct7 differs after reload: %d vs %d", len(a), len(b))
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	path := t.TempDir() + "/junk"
	if err := os.WriteFile(path, []byte("not a map"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil {
		t.Error("garbage file should fail to load")
	}
	if _, err := LoadFile(path + "/missing"); err == nil {
		t.Error("missing file should fail to load")
	}
}
