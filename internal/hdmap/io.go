package hdmap

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"repro/internal/pointcloud"
)

// serialized is the on-disk form of a Map. The NDT grid is rebuilt on
// load from the stored leaf/minPoints, so the file stays compact and
// the regularization logic has a single home.
type serialized struct {
	Magic          string
	Version        int
	Points         []pointcloud.Point
	NDTLeaf        float64
	MinVoxelPoints int
	Scans          int
}

const mapMagic = "AVMAP"

// Save writes the map to w in a compact binary form.
func (m *Map) Save(w io.Writer) error {
	enc := gob.NewEncoder(w)
	err := enc.Encode(serialized{
		Magic:          mapMagic,
		Version:        1,
		Points:         m.Cloud.Points,
		NDTLeaf:        m.NDTLeaf,
		MinVoxelPoints: m.minVoxelPoints,
		Scans:          m.Scans,
	})
	if err != nil {
		return fmt.Errorf("hdmap: saving map: %w", err)
	}
	return nil
}

// Load reads a map previously written by Save and rebuilds its NDT grid.
func Load(r io.Reader) (*Map, error) {
	var s serialized
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("hdmap: reading map: %w", err)
	}
	if s.Magic != mapMagic {
		return nil, fmt.Errorf("hdmap: not a map file (magic %q)", s.Magic)
	}
	if s.Version != 1 {
		return nil, fmt.Errorf("hdmap: unsupported map version %d", s.Version)
	}
	minPts := s.MinVoxelPoints
	if minPts <= 0 {
		minPts = DefaultConfig().MinVoxelPoints
	}
	m := &Map{
		Cloud:          &pointcloud.Cloud{Points: s.Points},
		NDTLeaf:        s.NDTLeaf,
		Scans:          s.Scans,
		minVoxelPoints: minPts,
	}
	m.NDT = pointcloud.BuildVoxelStats(m.Cloud, m.NDTLeaf, minPts)
	return m, nil
}

// SaveFile writes the map to a file path.
func (m *Map) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("hdmap: creating %s: %w", path, err)
	}
	defer f.Close()
	return m.Save(f)
}

// LoadFile reads a map from a file path.
func LoadFile(path string) (*Map, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("hdmap: opening %s: %w", path, err)
	}
	defer f.Close()
	return Load(f)
}
