// Package hdmap builds the point-cloud map the localization stack
// matches against. The paper, lacking an HD map for its Nagoya drive,
// generated one from the recording with Autoware's ndt_mapping utility;
// this package is the equivalent step for the synthetic world: it sweeps
// the LiDAR along the ego route through the *static* city (maps are
// built without traffic), accumulates the returns in the world frame,
// and distills them into the voxelized Normal Distributions Transform
// grid consumed by ndt_matching.
package hdmap

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/pointcloud"
	"repro/internal/sensor"
	"repro/internal/world"
)

// Config parameterizes map construction.
type Config struct {
	// ScanSpacing is the distance between mapping scans along the route,
	// meters.
	ScanSpacing float64
	// MapLeaf is the voxel size used to thin the accumulated cloud.
	MapLeaf float64
	// NDTLeaf is the voxel size of the NDT statistics grid.
	NDTLeaf float64
	// MinVoxelPoints is the minimum population for a usable NDT voxel.
	MinVoxelPoints int
	// LiDAR overrides the scanner; zero value uses the default scanner
	// with noise disabled (mapping rigs are calibrated).
	LiDAR sensor.LiDARConfig
}

// DefaultConfig returns the standard mapping configuration.
func DefaultConfig() Config {
	lc := sensor.DefaultLiDARConfig()
	lc.RangeNoise = 0
	lc.DropProb = 0
	return Config{
		ScanSpacing:    5,
		MapLeaf:        0.4,
		NDTLeaf:        2.0,
		MinVoxelPoints: 4,
		LiDAR:          lc,
	}
}

// Map is the built product: the thinned world-frame cloud and the NDT
// voxel grid derived from it.
type Map struct {
	Cloud   *pointcloud.Cloud
	NDT     map[pointcloud.VoxelKey]*pointcloud.VoxelStats
	NDTLeaf float64
	// Scans is the number of mapping sweeps that contributed.
	Scans int

	minVoxelPoints int
}

// Build runs the mapping sweep over the scenario's ego route.
func Build(s *world.Scenario, cfg Config) (*Map, error) {
	if cfg.ScanSpacing <= 0 || cfg.MapLeaf <= 0 || cfg.NDTLeaf <= 0 {
		return nil, fmt.Errorf("hdmap: invalid config %+v", cfg)
	}
	lidar := sensor.NewLiDAR(cfg.LiDAR, s.City)
	acc := pointcloud.New(1 << 16)
	scratch := pointcloud.New(0)

	// Walk the route by time, emitting a scan every ScanSpacing meters.
	duration := s.EgoRoute.Duration()
	const dt = 0.2
	var lastPos geom.Vec2
	havePos := false
	scans := 0
	for t := 0.0; t < duration; t += dt {
		pose, _ := s.EgoRoute.At(t)
		if havePos && pose.XY().Dist(lastPos) < cfg.ScanSpacing {
			continue
		}
		lastPos = pose.XY()
		havePos = true
		snap := world.Snapshot{
			Time: t,
			Ego: world.ActorState{
				Pose: pose, Kind: world.KindCar, Dim: world.KindCar.Dimensions(),
			},
			// No traffic: the map captures only static structure.
		}
		scan := lidar.Scan(&snap)
		// Register into the world frame with the known mapping pose,
		// through a reused staging cloud.
		wsc := scan.TransformInto(pose, scratch)
		acc.Points = append(acc.Points, wsc.Points...)
		// Thin periodically to bound memory.
		if acc.Len() > 1<<20 {
			acc, _ = pointcloud.VoxelDownsample(acc, cfg.MapLeaf)
		}
		scans++
	}
	if scans == 0 {
		return nil, fmt.Errorf("hdmap: route produced no scans")
	}
	thinned, _ := pointcloud.VoxelDownsample(acc, cfg.MapLeaf)
	m := &Map{
		Cloud:          thinned,
		NDTLeaf:        cfg.NDTLeaf,
		Scans:          scans,
		minVoxelPoints: cfg.MinVoxelPoints,
	}
	m.NDT = pointcloud.BuildVoxelStats(thinned, cfg.NDTLeaf, cfg.MinVoxelPoints)
	return m, nil
}

// VoxelAt returns the NDT statistics voxel containing p, or nil when the
// voxel is unmapped or unusable.
func (m *Map) VoxelAt(p geom.Vec3) *pointcloud.VoxelStats {
	vs := m.NDT[pointcloud.KeyFor(p, m.NDTLeaf)]
	if vs == nil || !vs.OK {
		return nil
	}
	return vs
}

// Direct7 appends to out the usable voxels among the containing cell
// and its six face neighbors — the DIRECT7 neighborhood PCL's NDT
// accumulates its score over. Passing a reused slice avoids allocation
// in the matching hot loop.
func (m *Map) Direct7(p geom.Vec3, out []*pointcloud.VoxelStats) []*pointcloud.VoxelStats {
	base := pointcloud.KeyFor(p, m.NDTLeaf)
	keys := [7]pointcloud.VoxelKey{
		base,
		{X: base.X - 1, Y: base.Y, Z: base.Z},
		{X: base.X + 1, Y: base.Y, Z: base.Z},
		{X: base.X, Y: base.Y - 1, Z: base.Z},
		{X: base.X, Y: base.Y + 1, Z: base.Z},
		{X: base.X, Y: base.Y, Z: base.Z - 1},
		{X: base.X, Y: base.Y, Z: base.Z + 1},
	}
	for _, k := range keys {
		if vs := m.NDT[k]; vs != nil && vs.OK {
			out = append(out, vs)
		}
	}
	return out
}

// NeighborVoxels returns the usable voxels in the 3x3x3 neighborhood of
// p's voxel, nearest first by mean distance. The NDT score in matching
// sums over these.
func (m *Map) NeighborVoxels(p geom.Vec3) []*pointcloud.VoxelStats {
	base := pointcloud.KeyFor(p, m.NDTLeaf)
	var out []*pointcloud.VoxelStats
	for dx := int32(-1); dx <= 1; dx++ {
		for dy := int32(-1); dy <= 1; dy++ {
			for dz := int32(-1); dz <= 1; dz++ {
				k := pointcloud.VoxelKey{X: base.X + dx, Y: base.Y + dy, Z: base.Z + dz}
				if vs := m.NDT[k]; vs != nil && vs.OK {
					out = append(out, vs)
				}
			}
		}
	}
	// Sort by distance to p (selection sort; list has at most 27 items).
	for i := 0; i < len(out); i++ {
		best := i
		for j := i + 1; j < len(out); j++ {
			if out[j].Mean.DistSq(p) < out[best].Mean.DistSq(p) {
				best = j
			}
		}
		out[i], out[best] = out[best], out[i]
	}
	return out
}

// Coverage reports the fraction of route sample points whose NDT voxel
// neighborhood is usable — a map-quality sanity metric.
func (m *Map) Coverage(s *world.Scenario, samples int) float64 {
	if samples <= 0 {
		return 0
	}
	hit := 0
	duration := s.EgoRoute.Duration()
	for i := 0; i < samples; i++ {
		t := duration * float64(i) / float64(samples)
		pose, _ := s.EgoRoute.At(t)
		// Probe at sensor height where wall/ground structure lives.
		probe := pose.Pos.Add(geom.V3(0, 0, 1))
		if len(m.NeighborVoxels(probe)) > 0 || !math.IsInf(m.nearestVoxelDist(probe), 1) {
			hit++
		}
	}
	return float64(hit) / float64(samples)
}

func (m *Map) nearestVoxelDist(p geom.Vec3) float64 {
	best := math.Inf(1)
	for _, vs := range m.NDT {
		if !vs.OK {
			continue
		}
		if d := vs.Mean.Dist(p); d < best {
			best = d
		}
	}
	return best
}
