package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/autoware"
	"repro/internal/platform"
)

// SceneDependence is a supplementary analysis backing the paper's
// qualitative claim in Sec. IV-A: "the more the driving players, the
// higher the time to track each of them, project their occupancy site
// in the world, and obtain their cluster centroids" — it correlates the
// object-dependent nodes' per-callback latency with the live track
// population at callback time.
func SceneDependence(w io.Writer, runs *Runs) error {
	Section(w, "Supplementary — scene-content dependence of object-driven nodes")

	cfg := autoware.DefaultConfig(autoware.DetectorSSD300)
	// Denser traffic widens the object-count range the regression sees.
	cfg.Scenario.NumCars *= 2
	cfg.Scenario.LeadVehicle = true
	s, err := autoware.BuildWithMap(cfg, runs.env.Scenario, runs.env.Map)
	if err != nil {
		return err
	}

	type sample struct{ objects, latencyMS float64 }
	samplesByNode := map[string][]sample{}
	watched := map[string]bool{
		"imm_ukf_pda_tracker":   true,
		"costmap_generator_obj": true,
		"naive_motion_predict":  true,
	}
	prev := s.Executor.OnDone
	s.Executor.OnDone = func(d platform.DoneInfo) {
		if prev != nil {
			prev(d)
		}
		if !watched[d.Node] || d.Outputs == 0 || d.Finished < cfg.Warmup {
			return
		}
		samplesByNode[d.Node] = append(samplesByNode[d.Node], sample{
			objects:   float64(len(s.Tracker.Tracks())),
			latencyMS: (d.Finished - d.Arrived).Seconds() * 1000,
		})
	}
	s.Run(2 * runs.Duration)

	tbl := &Table{Header: []string{"Node", "Samples", "Corr(objects, latency)", "ms per extra object"}}
	for _, node := range []string{"imm_ukf_pda_tracker", "costmap_generator_obj", "naive_motion_predict"} {
		pts := samplesByNode[node]
		if len(pts) < 10 {
			tbl.Add(node, len(pts), "n/a", "n/a")
			continue
		}
		xs := make([]float64, len(pts))
		ys := make([]float64, len(pts))
		for i, p := range pts {
			xs[i], ys[i] = p.objects, p.latencyMS
		}
		r, slope := corrAndSlope(xs, ys)
		tbl.Add(node, len(pts), fmt.Sprintf("%.2f", r), fmt.Sprintf("%.3f", slope))
	}
	tbl.Write(w)
	fmt.Fprintln(w, "positive correlations: these nodes' cost scales with scene content,")
	fmt.Fprintln(w, "which is where their Fig. 5 latency spread comes from.")
	return nil
}

// corrAndSlope returns the Pearson correlation and least-squares slope
// of y on x.
func corrAndSlope(xs, ys []float64) (r, slope float64) {
	n := float64(len(xs))
	var sx, sy, sxx, syy, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		syy += ys[i] * ys[i]
		sxy += xs[i] * ys[i]
	}
	covXY := sxy/n - sx/n*sy/n
	varX := sxx/n - sx/n*sx/n
	varY := syy/n - sy/n*sy/n
	if varX <= 0 || varY <= 0 {
		return 0, 0
	}
	return covXY / math.Sqrt(varX*varY), covXY / varX
}
