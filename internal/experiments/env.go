package experiments

import (
	"fmt"
	"time"

	"repro/internal/autoware"
	"repro/internal/hdmap"
	"repro/internal/world"
)

// Env holds the shared fixtures every experiment runs against: the
// scenario (the synthetic Nagoya drive) and its HD map.
type Env struct {
	Scenario *world.Scenario
	Map      *hdmap.Map
}

// NewEnv builds the fixtures once.
func NewEnv() (*Env, error) {
	scen := world.NewScenario(world.DefaultScenarioConfig())
	mc := hdmap.DefaultConfig()
	mc.ScanSpacing = 10
	m, err := hdmap.Build(scen, mc)
	if err != nil {
		return nil, fmt.Errorf("experiments: building map: %w", err)
	}
	return &Env{Scenario: scen, Map: m}, nil
}

// Runs caches completed stack executions so the experiments that share
// a configuration do not re-simulate.
type Runs struct {
	env      *Env
	Duration time.Duration

	full       map[autoware.Detector]*autoware.Stack
	standalone map[autoware.Detector]*autoware.Stack
}

// NewRuns prepares a run cache for the given drive duration per run.
func NewRuns(env *Env, duration time.Duration) *Runs {
	return &Runs{
		env:        env,
		Duration:   duration,
		full:       make(map[autoware.Detector]*autoware.Stack),
		standalone: make(map[autoware.Detector]*autoware.Stack),
	}
}

// Full returns (running on first use) the full-system stack for a
// detector.
func (r *Runs) Full(det autoware.Detector) (*autoware.Stack, error) {
	if s, ok := r.full[det]; ok {
		return s, nil
	}
	cfg := autoware.DefaultConfig(det)
	s, err := autoware.BuildWithMap(cfg, r.env.Scenario, r.env.Map)
	if err != nil {
		return nil, err
	}
	s.Run(r.Duration)
	r.full[det] = s
	return s, nil
}

// Standalone returns the vision-only stack for a detector.
func (r *Runs) Standalone(det autoware.Detector) (*autoware.Stack, error) {
	if s, ok := r.standalone[det]; ok {
		return s, nil
	}
	cfg := autoware.DefaultConfig(det)
	cfg.Mode = autoware.ModeVisionStandalone
	s, err := autoware.BuildWithMap(cfg, r.env.Scenario, r.env.Map)
	if err != nil {
		return nil, err
	}
	s.Run(r.Duration)
	r.standalone[det] = s
	return s, nil
}
