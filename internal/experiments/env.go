package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/autoware"
	"repro/internal/hdmap"
	"repro/internal/parallel"
	"repro/internal/world"
)

// Env holds the shared fixtures every experiment runs against: the
// scenario (the synthetic Nagoya drive) and its HD map. Both are
// read-only once built, so any number of stacks may run against them
// concurrently.
type Env struct {
	Scenario *world.Scenario
	Map      *hdmap.Map
}

// NewEnv builds the fixtures once.
func NewEnv() (*Env, error) {
	scen := world.NewScenario(world.DefaultScenarioConfig())
	mc := hdmap.DefaultConfig()
	mc.ScanSpacing = 10
	m, err := hdmap.Build(scen, mc)
	if err != nil {
		return nil, fmt.Errorf("experiments: building map: %w", err)
	}
	return &Env{Scenario: scen, Map: m}, nil
}

// Runs caches completed stack executions so the experiments that share
// a configuration do not re-simulate. With Workers > 1, Prewarm
// executes the whole configuration matrix concurrently; each stack is
// an isolated simulation (own virtual clock, RNGs, platform state), so
// results are identical to serial execution.
type Runs struct {
	env      *Env
	Duration time.Duration
	// Workers bounds how many configurations simulate concurrently in
	// Prewarm. <= 1 means serial (the default).
	Workers int
	// Guard attaches the input-integrity layer to every stack. On clean
	// sensor input (these runs inject no faults) the guard is a no-op;
	// the flag exists to demonstrate exactly that.
	Guard bool
	// Ctx, when non-nil, cancels in-flight simulation cooperatively: a
	// run cut short returns an error wrapping autoware.ErrCancelled
	// instead of simulating to drive end. Completed runs are identical
	// with or without it.
	Ctx context.Context

	mu         sync.Mutex
	full       map[autoware.Detector]*autoware.Stack
	standalone map[autoware.Detector]*autoware.Stack
	saturated  map[autoware.Detector]*autoware.Stack
}

// NewRuns prepares a run cache for the given drive duration per run.
func NewRuns(env *Env, duration time.Duration) *Runs {
	return &Runs{
		env:        env,
		Duration:   duration,
		full:       make(map[autoware.Detector]*autoware.Stack),
		standalone: make(map[autoware.Detector]*autoware.Stack),
		saturated:  make(map[autoware.Detector]*autoware.Stack),
	}
}

// lookup returns the cached stack for key in m, if any.
func (r *Runs) lookup(m map[autoware.Detector]*autoware.Stack, key autoware.Detector) (*autoware.Stack, bool) {
	r.mu.Lock()
	s, ok := m[key]
	r.mu.Unlock()
	return s, ok
}

// store records a completed stack.
func (r *Runs) store(m map[autoware.Detector]*autoware.Stack, key autoware.Detector, s *autoware.Stack) {
	r.mu.Lock()
	m[key] = s
	r.mu.Unlock()
}

// drive advances a freshly built stack to the run horizon, honoring the
// cancellation context when one is set.
func (r *Runs) drive(s *autoware.Stack) error {
	if r.Ctx == nil {
		s.Run(r.Duration)
		return nil
	}
	return s.RunContext(r.Ctx, r.Duration)
}

// Full returns (running on first use) the full-system stack for a
// detector.
func (r *Runs) Full(det autoware.Detector) (*autoware.Stack, error) {
	if s, ok := r.lookup(r.full, det); ok {
		return s, nil
	}
	cfg := autoware.DefaultConfig(det)
	cfg.Guard = r.Guard
	s, err := autoware.BuildWithMap(cfg, r.env.Scenario, r.env.Map)
	if err != nil {
		return nil, err
	}
	if err := r.drive(s); err != nil {
		return nil, err
	}
	r.store(r.full, det, s)
	return s, nil
}

// Standalone returns the vision-only stack for a detector.
func (r *Runs) Standalone(det autoware.Detector) (*autoware.Stack, error) {
	if s, ok := r.lookup(r.standalone, det); ok {
		return s, nil
	}
	cfg := autoware.DefaultConfig(det)
	cfg.Guard = r.Guard
	cfg.Mode = autoware.ModeVisionStandalone
	s, err := autoware.BuildWithMap(cfg, r.env.Scenario, r.env.Map)
	if err != nil {
		return nil, err
	}
	if err := r.drive(s); err != nil {
		return nil, err
	}
	r.store(r.standalone, det, s)
	return s, nil
}

// Saturated returns the full-system stack with the camera overdriven to
// 13.5 fps — the saturated-detector dropping regime of Table III (b).
func (r *Runs) Saturated(det autoware.Detector) (*autoware.Stack, error) {
	if s, ok := r.lookup(r.saturated, det); ok {
		return s, nil
	}
	cfg := autoware.DefaultConfig(det)
	cfg.Guard = r.Guard
	cfg.CameraRate = 13.5
	s, err := autoware.BuildWithMap(cfg, r.env.Scenario, r.env.Map)
	if err != nil {
		return nil, err
	}
	if err := r.drive(s); err != nil {
		return nil, err
	}
	r.store(r.saturated, det, s)
	return s, nil
}

// Prewarm simulates every configuration the experiment suite reads —
// full system and saturated-camera for each detector, standalone for
// the Fig. 8 pair — across at most Workers goroutines. Errors are
// reported in configuration order, so failures are deterministic too.
// After Prewarm, every experiment harness is a pure cache read.
func (r *Runs) Prewarm() error {
	type job func() error
	var jobs []job
	for _, det := range autoware.Detectors() {
		det := det
		jobs = append(jobs, func() error { _, err := r.Full(det); return err })
		jobs = append(jobs, func() error { _, err := r.Saturated(det); return err })
	}
	for _, det := range []autoware.Detector{autoware.DetectorSSD512, autoware.DetectorYOLOv3} {
		det := det
		jobs = append(jobs, func() error { _, err := r.Standalone(det); return err })
	}
	workers := r.Workers
	if workers <= 1 {
		workers = 1
	}
	return parallel.FirstError(len(jobs), workers, func(i int) error { return jobs[i]() })
}
