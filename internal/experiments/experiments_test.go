package experiments

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/autoware"
	"repro/internal/testenv"
)

var (
	sharedOnce sync.Once
	sharedEnv  *Env
	sharedRuns *Runs
	sharedErr  error
)

// testEnvAndRuns returns one package-wide run cache over the shared
// fixtures with a short drive (enough samples for shape checks, fast
// enough for CI). The first caller prewarms the whole configuration
// matrix across workers; every experiment harness then reads the
// cache, so each configuration simulates exactly once per test binary.
func testEnvAndRuns(t *testing.T) (*Env, *Runs) {
	t.Helper()
	sharedOnce.Do(func() {
		sharedEnv = &Env{Scenario: testenv.Scenario(), Map: testenv.Map()}
		sharedRuns = NewRuns(sharedEnv, 20*time.Second)
		sharedRuns.Workers = runtime.NumCPU()
		sharedErr = sharedRuns.Prewarm()
	})
	if sharedErr != nil {
		t.Fatal(sharedErr)
	}
	return sharedEnv, sharedRuns
}

func TestFig5ProducesAllViolins(t *testing.T) {
	_, runs := testEnvAndRuns(t)
	var sb strings.Builder
	if err := Fig5(&sb, runs); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, n := range fig5Nodes {
		if !strings.Contains(out, n) {
			t.Errorf("missing node %s in Fig5 output", n)
		}
	}
	for _, det := range autoware.Detectors() {
		if !strings.Contains(out, string(det)) {
			t.Errorf("missing detector %s panel", det)
		}
	}
	if strings.Contains(out, "(no samples)") {
		t.Error("some node had no samples")
	}
}

func TestTable3Runs(t *testing.T) {
	_, runs := testEnvAndRuns(t)
	var sb strings.Builder
	if err := Table3(&sb, runs); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Table III") || !strings.Contains(out, "13.5 fps") {
		t.Error("Table III output incomplete")
	}
	// The saturated regime must show image drops for SSD512.
	sat := out[strings.Index(out, "13.5 fps"):]
	if !strings.Contains(sat, "/image_raw") {
		t.Errorf("saturated regime shows no image drops:\n%s", sat)
	}
}

func TestFig6EndToEndVerdicts(t *testing.T) {
	_, runs := testEnvAndRuns(t)
	var sb strings.Builder
	if err := Fig6(&sb, runs); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, p := range []string{"localization", "costmap_points", "costmap_vision_obj", "costmap_cluster_obj"} {
		if !strings.Contains(out, p) {
			t.Errorf("missing path %s", p)
		}
	}
	if !strings.Contains(out, "exceeded") {
		t.Error("no budget-exceeded verdict; Finding 2 not reproduced")
	}
}

func TestTable5And6(t *testing.T) {
	_, runs := testEnvAndRuns(t)
	var sb strings.Builder
	if err := Table5(&sb, runs); err != nil {
		t.Fatal(err)
	}
	if err := Table6(&sb, runs); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "vision_detection") || !strings.Contains(out, "Total") {
		t.Error("Table V incomplete")
	}
	if !strings.Contains(out, "with SSD512") {
		t.Error("Table VI incomplete")
	}
}

func TestTable7AndFig7(t *testing.T) {
	_, runs := testEnvAndRuns(t)
	var sb strings.Builder
	if err := Table7(&sb, runs); err != nil {
		t.Fatal(err)
	}
	if err := Fig7(&sb, runs); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, n := range []string{"SSD512", "YOLOv3-416", "euclidean_cluster", "ndt_matching", "imm_ukf_pda_tracker", "costmap_generator_obj"} {
		if strings.Count(out, n) < 2 {
			t.Errorf("node %s missing from Table VII/Fig 7", n)
		}
	}
}

func TestFig8ShowsContrast(t *testing.T) {
	_, runs := testEnvAndRuns(t)
	var sb strings.Builder
	if err := Fig8(&sb, runs); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "standalone") || !strings.Contains(out, "full system") {
		t.Error("Fig 8 output incomplete")
	}
}

func TestByName(t *testing.T) {
	for _, e := range All() {
		got, err := ByName(e.Name)
		if err != nil || got.Name != e.Name {
			t.Errorf("ByName(%s) = %v, %v", e.Name, got.Name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Header: []string{"A", "Blong"}}
	tbl.Add("x", 1.5)
	tbl.Add("longer", "v")
	var sb strings.Builder
	tbl.Write(&sb)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	// All lines same width.
	for _, l := range lines[1:] {
		if len(l) != len(lines[0]) {
			t.Errorf("ragged table:\n%s", sb.String())
		}
	}
	if !strings.Contains(sb.String(), "1.50") {
		t.Error("float formatting missing")
	}
}

func TestViolinRendering(t *testing.T) {
	var sb strings.Builder
	Violin(&sb, "test", []float64{1, 2, 2, 3, 10}, 0, 10, 20)
	out := sb.String()
	if !strings.Contains(out, "mean=3.6") {
		t.Errorf("violin stats wrong:\n%s", out)
	}
	sb.Reset()
	Violin(&sb, "empty", nil, 0, 10, 20)
	if !strings.Contains(sb.String(), "no samples") {
		t.Error("empty violin should say so")
	}
}

func TestWriteCSV(t *testing.T) {
	_, runs := testEnvAndRuns(t)
	dir := t.TempDir()
	if err := WriteCSV(dir, runs); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"fig5_latency.csv", "fig6_paths.csv", "tab5_utilization.csv",
		"tab6_power.csv", "fig8_modes.csv",
	} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lines := strings.Count(string(data), "\n")
		if lines < 2 {
			t.Errorf("%s has only %d lines", name, lines)
		}
	}
	// fig5 carries one row per callback: thousands of samples.
	data, _ := os.ReadFile(filepath.Join(dir, "fig5_latency.csv"))
	if strings.Count(string(data), "\n") < 1000 {
		t.Errorf("fig5 csv suspiciously small: %d rows", strings.Count(string(data), "\n"))
	}
}

func TestSceneDependence(t *testing.T) {
	_, runs := testEnvAndRuns(t)
	var sb strings.Builder
	if err := SceneDependence(&sb, runs); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, n := range []string{"imm_ukf_pda_tracker", "costmap_generator_obj"} {
		if !strings.Contains(out, n) {
			t.Errorf("missing %s", n)
		}
	}
	if strings.Contains(out, "n/a") {
		t.Errorf("insufficient samples:\n%s", out)
	}
}
