package experiments

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/autoware"
	"repro/internal/testenv"
)

// TestRunsCancelledReturnsPromptly pins the fleet-deadline contract on
// the experiment engine: a context cancelled mid-drive stops in-flight
// simulation within a slice of wall clock and surfaces the
// autoware.ErrCancelled sentinel, instead of leaking the run until
// drive end.
func TestRunsCancelledReturnsPromptly(t *testing.T) {
	env := &Env{Scenario: testenv.Scenario(), Map: testenv.Map()}

	// A 10-minute virtual drive would take minutes of wall clock; the
	// 50 ms context must cut it off in well under a second.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	runs := NewRuns(env, 10*time.Minute)
	runs.Ctx = ctx

	start := time.Now()
	_, err := runs.Full(autoware.DetectorSSD300)
	elapsed := time.Since(start)

	if !errors.Is(err, autoware.ErrCancelled) {
		t.Fatalf("Full under dead context = %v, want wrapped autoware.ErrCancelled", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v should also wrap context.DeadlineExceeded", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("cancelled run took %v, want prompt return", elapsed)
	}

	// An already-cancelled context never starts simulating at all.
	done, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	runs2 := NewRuns(env, time.Second)
	runs2.Ctx = done
	if _, err := runs2.Full(autoware.DetectorSSD300); !errors.Is(err, autoware.ErrCancelled) {
		t.Fatalf("pre-cancelled Full = %v, want autoware.ErrCancelled", err)
	}
}
