package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/autoware"
	"repro/internal/mathx"
	"repro/internal/uarch"
)

// fig5Nodes is the node set of the paper's Fig. 5 violins, in its
// display order.
var fig5Nodes = []string{
	"voxel_grid_filter",
	"ndt_matching",
	"ray_ground_filter",
	"euclidean_cluster",
	"vision_detection",
	"range_vision_fusion",
	"imm_ukf_pda_tracker",
	"naive_motion_predict",
	"costmap_generator",
	"costmap_generator_obj",
}

// Fig5 regenerates Figure 5: single-node latency distributions under
// each image-detection configuration.
func Fig5(w io.Writer, runs *Runs) error {
	for _, det := range autoware.Detectors() {
		s, err := runs.Full(det)
		if err != nil {
			return err
		}
		Section(w, fmt.Sprintf("Fig. 5 — single-node latency with %s", det))
		// Shared axis per panel for visual comparability.
		hi := 1.0
		for _, n := range fig5Nodes {
			if m := s.Recorder.NodeLatency(n).Max; m > hi {
				hi = m
			}
		}
		for _, n := range fig5Nodes {
			Violin(w, n, s.Recorder.NodeSamples(n), 0, hi, 60)
		}
	}
	return nil
}

// Table3 regenerates Table III: dropped messages per (topic,
// subscriber) for each detector. The default camera rate reproduces the
// paper's regime ordering (SSD512 drops, the others do not); a second
// sweep at 12.5 fps shows the saturated-detector dropping regime.
func Table3(w io.Writer, runs *Runs) error {
	Section(w, "Table III — dropped messages during execution")
	tbl := &Table{Header: []string{"Config", "Topic", "Subscriber", "Arrived", "Dropped", "Rate"}}
	for _, det := range autoware.Detectors() {
		s, err := runs.Full(det)
		if err != nil {
			return err
		}
		rows := 0
		for _, r := range s.Bus.DropReports() {
			if r.Dropped == 0 {
				continue
			}
			tbl.Add("with "+string(det), r.Topic, r.Subscriber, r.Arrived, r.Dropped, Pct(r.Rate))
			rows++
		}
		if rows == 0 {
			tbl.Add("with "+string(det), "(no drops)", "-", "-", "-", "-")
		}
	}
	tbl.Write(w)

	// Saturated regime: camera faster than SSD512 can serve.
	Section(w, "Table III (b) — camera at 13.5 fps (saturated-detector regime)")
	tbl2 := &Table{Header: []string{"Config", "Topic", "Subscriber", "Arrived", "Dropped", "Rate"}}
	for _, det := range autoware.Detectors() {
		s, err := runs.Saturated(det)
		if err != nil {
			return err
		}
		rows := 0
		for _, r := range s.Bus.DropReports() {
			if r.Dropped == 0 {
				continue
			}
			tbl2.Add("with "+string(det), r.Topic, r.Subscriber, r.Arrived, r.Dropped, Pct(r.Rate))
			rows++
		}
		if rows == 0 {
			tbl2.Add("with "+string(det), "(no drops)", "-", "-", "-", "-")
		}
	}
	tbl2.Write(w)
	return nil
}

// Fig6 regenerates Figure 6: end-to-end computation-path latency per
// detector, with the worst path (the paper's end-to-end metric) marked.
func Fig6(w io.Writer, runs *Runs) error {
	for _, det := range autoware.Detectors() {
		s, err := runs.Full(det)
		if err != nil {
			return err
		}
		Section(w, fmt.Sprintf("Fig. 6 — computation-path latency with %s", det))
		hi := 1.0
		for _, p := range s.Recorder.PathNames() {
			if m := s.Recorder.PathLatency(p).Max; m > hi {
				hi = m
			}
		}
		for _, p := range s.Recorder.PathNames() {
			Violin(w, p, s.Recorder.PathSamples(p), 0, hi, 60)
		}
		worst, sum := s.Recorder.EndToEnd()
		fmt.Fprintf(w, "end-to-end (worst path) = %s: mean %.1f ms, p99 %.1f ms, max %.1f ms — 100 ms budget %s\n",
			worst, sum.Mean, sum.P99, sum.Max, budgetVerdict(sum))
	}
	return nil
}

func budgetVerdict(s mathx.Summary) string {
	switch {
	case s.Max > 200:
		return "exceeded by more than 2x at the tail"
	case s.Max > 100:
		return "exceeded at the tail"
	default:
		return "met"
	}
}

// Table5 regenerates Table V: per-node CPU and GPU utilization shares.
func Table5(w io.Writer, runs *Runs) error {
	Section(w, "Table V — CPU and GPU utilization share among nodes")
	tbl := &Table{Header: []string{"Node", "CPU(SSD512)", "CPU(SSD300)", "CPU(YOLO)", "GPU(SSD512)", "GPU(SSD300)", "GPU(YOLO)"}}
	type share struct{ cpu, gpu float64 }
	perDet := map[autoware.Detector]map[string]share{}
	var nodeOrder []string
	for _, det := range autoware.Detectors() {
		s, err := runs.Full(det)
		if err != nil {
			return err
		}
		m := map[string]share{}
		for _, row := range s.UtilizationReport() {
			m[row.Node] = share{cpu: row.CPUShare, gpu: row.GPUShare}
			if det == autoware.DetectorSSD512 {
				nodeOrder = append(nodeOrder, row.Node)
			}
		}
		perDet[det] = m
	}
	var totals [6]float64
	for _, n := range nodeOrder {
		a := perDet[autoware.DetectorSSD512][n]
		b := perDet[autoware.DetectorSSD300][n]
		c := perDet[autoware.DetectorYOLOv3][n]
		tbl.Add(n, Pct(a.cpu), Pct(b.cpu), Pct(c.cpu), Pct(a.gpu), Pct(b.gpu), Pct(c.gpu))
		for i, v := range []float64{a.cpu, b.cpu, c.cpu, a.gpu, b.gpu, c.gpu} {
			totals[i] += v
		}
	}
	tbl.Add("Total", Pct(totals[0]), Pct(totals[1]), Pct(totals[2]), Pct(totals[3]), Pct(totals[4]), Pct(totals[5]))
	tbl.Write(w)
	return nil
}

// Table6 regenerates Table VI: mean CPU and GPU power dissipation.
func Table6(w io.Writer, runs *Runs) error {
	Section(w, "Table VI — CPU and GPU mean power dissipation")
	tbl := &Table{Header: []string{"Config", "CPU (W)", "GPU (W)", "Total (W)"}}
	for _, det := range autoware.Detectors() {
		s, err := runs.Full(det)
		if err != nil {
			return err
		}
		cpu := s.Sampler.MeanCPUPower()
		gpu := s.Sampler.MeanGPUPower()
		tbl.Add("with "+string(det), cpu, gpu, cpu+gpu)
	}
	tbl.Write(w)
	return nil
}

// tab7Key maps recorder node names (and the active detector) to the
// µarch spec identities of Table VII.
func tab7Entries(runs *Runs) ([]string, map[string]uarch.InstrMix, error) {
	mixes := map[string]uarch.InstrMix{}
	// Vision entries come from the matching detector's full run.
	for _, det := range []autoware.Detector{autoware.DetectorSSD512, autoware.DetectorYOLOv3} {
		s, err := runs.Full(det)
		if err != nil {
			return nil, nil, err
		}
		mixes[string(det)] = uarch.MixFromWork(s.Recorder.NodeWork("vision_detection"))
	}
	// LiDAR-side nodes measured under the SSD512 configuration (the
	// paper's reference column).
	s, err := runs.Full(autoware.DetectorSSD512)
	if err != nil {
		return nil, nil, err
	}
	for _, n := range []string{"euclidean_cluster", "ndt_matching", "imm_ukf_pda_tracker", "costmap_generator_obj"} {
		mixes[n] = uarch.MixFromWork(s.Recorder.NodeWork(n))
	}
	order := []string{"SSD512", "YOLOv3-416", "euclidean_cluster", "ndt_matching", "imm_ukf_pda_tracker", "costmap_generator_obj"}
	return order, mixes, nil
}

// Table7 regenerates Table VII: the per-node microarchitectural profile
// (IPC, L1 miss rates, branch misprediction), from the cache/branch
// simulators driven by each node's structural trace and the instruction
// mix measured in the live run.
func Table7(w io.Writer, runs *Runs) error {
	Section(w, "Table VII — microarchitecture profile of critical nodes")
	order, mixes, err := tab7Entries(runs)
	if err != nil {
		return err
	}
	tbl := &Table{Header: []string{"Node", "IPC", "L1 miss (read)", "L1 miss (write)", "Branch mispred."}}
	for _, name := range order {
		spec, err := uarch.SpecFor(name)
		if err != nil {
			return err
		}
		p := uarch.Simulate(spec, mixes[name], 600000, 600000, 42)
		tbl.Add(name, fmt.Sprintf("%.2f", p.IPC), Pct(p.L1ReadMissRate), Pct(p.L1WriteMissRate), Pct(p.BranchMissRate))
	}
	tbl.Write(w)
	return nil
}

// Fig7 regenerates Figure 7: the instruction mix of the Table VII nodes.
func Fig7(w io.Writer, runs *Runs) error {
	Section(w, "Fig. 7 — instruction mix")
	order, mixes, err := tab7Entries(runs)
	if err != nil {
		return err
	}
	tbl := &Table{Header: []string{"Node", "Int", "FP", "Load", "Store", "Branch"}}
	for _, name := range order {
		m := mixes[name]
		tbl.Add(name, Pct(m.Int), Pct(m.FP), Pct(m.Load), Pct(m.Store), Pct(m.Branch))
	}
	tbl.Write(w)
	return nil
}

// Fig8 regenerates Figure 8: the CPU/GPU share of detector latency and
// the standalone-versus-full-system comparison (Findings 4 and 5).
func Fig8(w io.Writer, runs *Runs) error {
	Section(w, "Fig. 8 — CPU/GPU split and standalone vs full-system execution")
	tbl := &Table{Header: []string{"Detector", "Mode", "Mean (ms)", "StdDev (ms)", "CPU share", "GPU share"}}
	for _, det := range []autoware.Detector{autoware.DetectorSSD512, autoware.DetectorYOLOv3} {
		alone, err := runs.Standalone(det)
		if err != nil {
			return err
		}
		full, err := runs.Full(det)
		if err != nil {
			return err
		}
		sa := alone.Recorder.NodeLatency("vision_detection")
		sf := full.Recorder.NodeLatency("vision_detection")
		tbl.Add(string(det), "standalone", sa.Mean, sa.StdDev,
			Pct(alone.Recorder.CPUShare("vision_detection")), Pct(alone.Recorder.GPUShare("vision_detection")))
		tbl.Add(string(det), "full system", sf.Mean, sf.StdDev,
			Pct(full.Recorder.CPUShare("vision_detection")), Pct(full.Recorder.GPUShare("vision_detection")))
	}
	tbl.Write(w)
	return nil
}

// Experiment couples a name with its harness.
type Experiment struct {
	Name  string
	Title string
	Run   func(io.Writer, *Runs) error
}

// All returns the experiment registry in paper order.
func All() []Experiment {
	return []Experiment{
		{Name: "fig5", Title: "Figure 5: single-node latency distributions", Run: Fig5},
		{Name: "tab3", Title: "Table III: dropped messages", Run: Table3},
		{Name: "fig6", Title: "Figure 6: end-to-end path latency", Run: Fig6},
		{Name: "tab5", Title: "Table V: utilization shares", Run: Table5},
		{Name: "tab6", Title: "Table VI: mean power", Run: Table6},
		{Name: "tab7", Title: "Table VII: microarchitecture profile", Run: Table7},
		{Name: "fig7", Title: "Figure 7: instruction mix", Run: Fig7},
		{Name: "fig8", Title: "Figure 8: standalone vs full system", Run: Fig8},
		{Name: "scene", Title: "Supplementary: scene-content dependence", Run: SceneDependence},
	}
}

// ByName resolves an experiment.
func ByName(name string) (Experiment, error) {
	for _, e := range All() {
		if e.Name == name {
			return e, nil
		}
	}
	names := make([]string, 0, len(All()))
	for _, e := range All() {
		names = append(names, e.Name)
	}
	sort.Strings(names)
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, names)
}

// RunAll executes every experiment against one run cache. With
// workers > 1 the configuration matrix simulates concurrently before
// the (serial, ordered) report rendering; the reports are identical
// either way.
func RunAll(w io.Writer, env *Env, duration time.Duration, workers int) error {
	return RunAllContext(context.Background(), w, env, duration, workers)
}

// RunAllContext is RunAll with cooperative cancellation: the context is
// threaded into every simulated configuration (including the concurrent
// prewarm), so cancelling stops in-flight drives within a slice of wall
// clock — the returned error wraps autoware.ErrCancelled — instead of
// simulating the rest of the matrix to drive end.
func RunAllContext(ctx context.Context, w io.Writer, env *Env, duration time.Duration, workers int) error {
	runs := NewRuns(env, duration)
	runs.Workers = workers
	runs.Ctx = ctx
	if workers > 1 {
		if err := runs.Prewarm(); err != nil {
			return fmt.Errorf("experiments: prewarm: %w", err)
		}
	}
	for _, e := range All() {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("experiments: %s: %w: %w", e.Name, autoware.ErrCancelled, err)
		}
		if err := e.Run(w, runs); err != nil {
			return fmt.Errorf("experiments: %s: %w", e.Name, err)
		}
	}
	return nil
}
