package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/autoware"
)

// WriteCSV exports the raw data behind the figures to dir, one file per
// artifact, so the paper's plots can be regenerated with any plotting
// tool:
//
//	fig5_latency.csv    detector,node,latency_ms      (one row per callback)
//	fig6_paths.csv      detector,path,latency_ms      (one row per traced path)
//	tab5_utilization.csv detector,node,cpu_share,gpu_share
//	tab6_power.csv      detector,cpu_w,gpu_w
//	fig8_modes.csv      detector,mode,mean_ms,stddev_ms,cpu_share
func WriteCSV(dir string, runs *Runs) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiments: creating csv dir: %w", err)
	}

	if err := writeCSV(dir, "fig5_latency.csv", []string{"detector", "node", "latency_ms"}, func(emit func(...string)) error {
		for _, det := range autoware.Detectors() {
			s, err := runs.Full(det)
			if err != nil {
				return err
			}
			for _, n := range fig5Nodes {
				for _, v := range s.Recorder.NodeSamples(n) {
					emit(string(det), n, formatF(v))
				}
			}
		}
		return nil
	}); err != nil {
		return err
	}

	if err := writeCSV(dir, "fig6_paths.csv", []string{"detector", "path", "latency_ms"}, func(emit func(...string)) error {
		for _, det := range autoware.Detectors() {
			s, err := runs.Full(det)
			if err != nil {
				return err
			}
			for _, p := range s.Recorder.PathNames() {
				for _, v := range s.Recorder.PathSamples(p) {
					emit(string(det), p, formatF(v))
				}
			}
		}
		return nil
	}); err != nil {
		return err
	}

	if err := writeCSV(dir, "tab5_utilization.csv", []string{"detector", "node", "cpu_share", "gpu_share"}, func(emit func(...string)) error {
		for _, det := range autoware.Detectors() {
			s, err := runs.Full(det)
			if err != nil {
				return err
			}
			for _, row := range s.UtilizationReport() {
				emit(string(det), row.Node, formatF(row.CPUShare), formatF(row.GPUShare))
			}
		}
		return nil
	}); err != nil {
		return err
	}

	if err := writeCSV(dir, "tab6_power.csv", []string{"detector", "cpu_w", "gpu_w"}, func(emit func(...string)) error {
		for _, det := range autoware.Detectors() {
			s, err := runs.Full(det)
			if err != nil {
				return err
			}
			emit(string(det), formatF(s.Sampler.MeanCPUPower()), formatF(s.Sampler.MeanGPUPower()))
		}
		return nil
	}); err != nil {
		return err
	}

	return writeCSV(dir, "fig8_modes.csv", []string{"detector", "mode", "mean_ms", "stddev_ms", "cpu_share"}, func(emit func(...string)) error {
		for _, det := range []autoware.Detector{autoware.DetectorSSD512, autoware.DetectorYOLOv3} {
			alone, err := runs.Standalone(det)
			if err != nil {
				return err
			}
			full, err := runs.Full(det)
			if err != nil {
				return err
			}
			sa := alone.Recorder.NodeLatency(autoware.VisionNodeName)
			sf := full.Recorder.NodeLatency(autoware.VisionNodeName)
			emit(string(det), "standalone", formatF(sa.Mean), formatF(sa.StdDev),
				formatF(alone.Recorder.CPUShare(autoware.VisionNodeName)))
			emit(string(det), "full", formatF(sf.Mean), formatF(sf.StdDev),
				formatF(full.Recorder.CPUShare(autoware.VisionNodeName)))
		}
		return nil
	})
}

func formatF(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

// writeCSV streams rows produced by fill into dir/name.
func writeCSV(dir, name string, header []string, fill func(emit func(...string)) error) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return fmt.Errorf("experiments: creating %s: %w", name, err)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	var writeErr error
	emit := func(cells ...string) {
		if writeErr == nil {
			writeErr = w.Write(cells)
		}
	}
	if err := fill(emit); err != nil {
		return err
	}
	if writeErr != nil {
		return writeErr
	}
	w.Flush()
	return w.Error()
}
