package experiments_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/testenv"
)

// csvArtifacts is the full inventory WriteCSV produces.
var csvArtifacts = []string{
	"fig5_latency.csv",
	"fig6_paths.csv",
	"tab5_utilization.csv",
	"tab6_power.csv",
	"fig8_modes.csv",
}

// exportCSV runs the whole configuration matrix at the given worker
// count (serial runs warm lazily; parallel runs prewarm concurrently)
// and returns the bytes of every CSV artifact.
func exportCSV(t *testing.T, workers int, duration time.Duration) map[string][]byte {
	t.Helper()
	env := &experiments.Env{Scenario: testenv.Scenario(), Map: testenv.Map()}
	runs := experiments.NewRuns(env, duration)
	runs.Workers = workers
	if workers > 1 {
		if err := runs.Prewarm(); err != nil {
			t.Fatalf("prewarm (workers=%d): %v", workers, err)
		}
	}
	dir := t.TempDir()
	if err := experiments.WriteCSV(dir, runs); err != nil {
		t.Fatalf("WriteCSV (workers=%d): %v", workers, err)
	}
	out := make(map[string][]byte, len(csvArtifacts))
	for _, name := range csvArtifacts {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("reading %s (workers=%d): %v", name, workers, err)
		}
		if len(bytes.Split(b, []byte("\n"))) < 3 {
			t.Fatalf("%s (workers=%d) is trivial: %q", name, workers, b)
		}
		out[name] = b
	}
	return out
}

// TestParallelRunsAreByteIdentical is the tentpole's determinism
// regression: the exported CSV artifacts must match byte-for-byte
// between a serial (lazily warmed) run and a 4-worker prewarmed run.
// Host parallelism may only change wall-clock time, never a single
// virtual-time sample.
func TestParallelRunsAreByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix simulation in -short mode")
	}
	// Past the 3 s warmup so every artifact has real samples.
	const duration = 6 * time.Second
	serial := exportCSV(t, 1, duration)
	parallel := exportCSV(t, 4, duration)
	for _, name := range csvArtifacts {
		if !bytes.Equal(serial[name], parallel[name]) {
			t.Errorf("%s differs between workers=1 and workers=4 (serial %d bytes, parallel %d bytes)",
				name, len(serial[name]), len(parallel[name]))
		}
	}
}

// TestPrewarmCoversTable3Cache verifies Prewarm populates the
// saturated-camera cache Table III(b) reads, so rendering after a
// prewarm does no further simulation.
func TestPrewarmCoversTable3Cache(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	env := &experiments.Env{Scenario: testenv.Scenario(), Map: testenv.Map()}
	runs := experiments.NewRuns(env, 4*time.Second)
	runs.Workers = 4
	if err := runs.Prewarm(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	start := time.Now()
	if err := experiments.Table3(&buf, runs); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("Table3 after prewarm took %v; should be a cache read", elapsed)
	}
	if buf.Len() == 0 {
		t.Error("Table3 produced no output")
	}
}
