// Package experiments contains one harness per table and figure of the
// paper's evaluation (Figs. 5-8, Tables III, V, VI, VII), each running
// the assembled stack and rendering the same rows/series the paper
// reports, plus the machinery to emit EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/mathx"
)

// Table renders rows of aligned columns with a header.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row; values are formatted with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Write renders the table.
func (t *Table) Write(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "| "+strings.Join(parts, " | ")+" |")
	}
	line(t.Header)
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, r := range t.Rows {
		line(r)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Violin renders a latency distribution as an ASCII horizontal violin:
// density bars over the value range, with min/q1/mean/q3/max markers —
// the textual analogue of one series in Figs. 5/6.
func Violin(w io.Writer, label string, samples []float64, lo, hi float64, width int) {
	s := mathx.Summarize(samples)
	if s.Count == 0 {
		fmt.Fprintf(w, "%-24s (no samples)\n", label)
		return
	}
	if hi <= lo {
		hi = lo + 1
	}
	h := mathx.NewHistogram(lo, hi, width)
	for _, v := range samples {
		h.Add(v)
	}
	maxBin := 0
	for _, c := range h.Bins {
		if c > maxBin {
			maxBin = c
		}
	}
	glyphs := []rune(" .:-=+*#%@")
	var b strings.Builder
	for _, c := range h.Bins {
		idx := 0
		if maxBin > 0 {
			idx = c * (len(glyphs) - 1) / maxBin
		}
		b.WriteRune(glyphs[idx])
	}
	fmt.Fprintf(w, "%-24s |%s|\n", label, b.String())
	fmt.Fprintf(w, "%-24s  min=%.1f q1=%.1f mean=%.1f q3=%.1f max=%.1f sd=%.2f (ms, n=%d)\n",
		"", s.Min, s.Q1, s.Mean, s.Q3, s.Max, s.StdDev, s.Count)
}

// Pct formats a fraction as a percentage string.
func Pct(f float64) string { return fmt.Sprintf("%.2f%%", 100*f) }

// Section writes a titled separator.
func Section(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}
