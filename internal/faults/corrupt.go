package faults

import (
	"math"

	"repro/internal/mathx"
	"repro/internal/msgs"
	"repro/internal/pointcloud"
)

// corruptPayload returns a mutated deep copy of payload, simulating
// payload bit-flips in a sensor driver or transport: non-finite
// coordinates, out-of-range magnitudes, degenerate boxes. The original
// is never touched — it may still be referenced by burst buffers or
// earlier subscribers. Payload types the mutator doesn't know return
// nil, which the injector treats as "no corruption applied".
//
// Every mutation draws from rng only, so a seeded schedule corrupts
// identically across runs.
func corruptPayload(rng *mathx.RNG, payload any) any {
	switch p := payload.(type) {
	case *msgs.PointCloud:
		if p.Cloud == nil || p.Cloud.Len() == 0 {
			return nil
		}
		c := &msgs.PointCloud{Cloud: p.Cloud.Clone()}
		victims := 1 + rng.Intn(8)
		for v := 0; v < victims; v++ {
			i := rng.Intn(len(c.Cloud.Points))
			pt := &c.Cloud.Points[i]
			switch rng.Intn(5) {
			case 0:
				pt.Pos.X = math.NaN()
			case 1:
				pt.Pos.Y = math.Inf(1)
			case 2:
				pt.Pos.Z = math.Inf(-1)
			case 3:
				// Plausible bit-flip in the exponent: a coordinate
				// teleports far outside any physical sensor range.
				pt.Pos.X = 1e8 * rng.Range(0.5, 2)
			case 4:
				pt.Intensity = math.NaN()
			}
		}
		return c
	case *msgs.DetectedObjectArray:
		if len(p.Objects) == 0 {
			return nil
		}
		c := &msgs.DetectedObjectArray{Objects: append([]msgs.DetectedObject(nil), p.Objects...)}
		i := rng.Intn(len(c.Objects))
		obj := &c.Objects[i]
		switch rng.Intn(3) {
		case 0:
			obj.Pose.Pos.X = math.NaN()
		case 1:
			obj.Dim.X = -obj.Dim.X - 1
		case 2:
			obj.Score = math.NaN()
		}
		return c
	case *msgs.PoseStamped:
		c := *p
		if rng.Bool(0.5) {
			c.Pose.Pos.Y = math.NaN()
		} else {
			c.Pose.Yaw = math.Inf(1)
		}
		return &c
	}
	return nil
}

// truncatePayload returns a copy of payload cut off mid-frame: a frac
// prefix survives, followed by one torn record with non-finite fields
// (the half-written struct at the cut). Unknown types return nil.
func truncatePayload(rng *mathx.RNG, payload any, frac float64) any {
	switch p := payload.(type) {
	case *msgs.PointCloud:
		if p.Cloud == nil || p.Cloud.Len() == 0 {
			return nil
		}
		keep := int(frac * float64(p.Cloud.Len()))
		c := pointcloud.New(keep + 1)
		c.Points = append(c.Points, p.Cloud.Points[:keep]...)
		torn := pointcloud.Point{Intensity: rng.Range(0, 1)}
		torn.Pos.X = math.NaN()
		c.Append(torn)
		return &msgs.PointCloud{Cloud: c}
	case *msgs.DetectedObjectArray:
		if len(p.Objects) == 0 {
			return nil
		}
		keep := int(frac * float64(len(p.Objects)))
		objs := make([]msgs.DetectedObject, 0, keep+1)
		objs = append(objs, p.Objects[:keep]...)
		torn := msgs.DetectedObject{ID: rng.Intn(1 << 16)}
		torn.Pose.Pos.X = math.Inf(-1)
		torn.Dim.Y = math.NaN()
		objs = append(objs, torn)
		return &msgs.DetectedObjectArray{Objects: objs}
	}
	return nil
}
