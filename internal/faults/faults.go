// Package faults is the deterministic fault-injection layer: a seeded,
// schedule-driven injector that perturbs the running stack through the
// executor's publish/callback filters and the platform's CPU model.
// It exists to make the paper's tail-latency phenomena — contention
// inflation (Finding 1), message drops under load (Table III), stale
// inputs — reproducible on demand instead of accidental: the same seed
// and schedule always produce the same perturbation sequence, so chaos
// runs are regression-testable byte for byte.
//
// Hook point and ordering. The injector perturbs at the *publish*
// instant (the executor's PublishFilter, plus a CallbackFilter for
// stall/crash verdicts, the bus's chainable Tap for burst replay, and
// the CPU model for contention hogs). It is the FIRST layer in the
// executor's decision chain — everything it lets through is then
// adjudicated by the guard at ingress, the supervisor at dispatch, and
// the scheduler's pick last (injector → guard → supervisor →
// scheduler), so a fault is always upstream of every mitigation that
// might answer it.
//
// Ownership. Filter hooks borrow the message for the duration of the
// call: corruption faults substitute a freshly cloned payload rather
// than mutating the original, the burst pump republishes retained
// *payload* pointers (never pooled envelopes), and a drop verdict
// leaves the release to the executor — the injector itself never
// touches the transport's reference ledger.
package faults

import (
	"fmt"
	"sort"
	"time"
)

// Kind names a fault type.
type Kind string

// Fault kinds.
const (
	// KindDrop drops messages published on Topic with probability Prob
	// while the window is active (lossy transport / dying driver).
	KindDrop Kind = "drop"
	// KindDelay adds Delay (+ uniform extra up to Sigma) of transport
	// delay to messages on Topic (congested DDS / serialization stall).
	KindDelay Kind = "delay"
	// KindJitter perturbs the publication timing of Topic with a
	// half-normal delay of scale Sigma — sensor clock wander.
	KindJitter Kind = "jitter"
	// KindStall blocks Node for Delay (+ uniform extra up to Sigma)
	// before each callback while active — a hung lock or I/O wait. The
	// node stays busy but burns no CPU.
	KindStall Kind = "stall"
	// KindCrash makes Node consume its inputs without processing them
	// while active — a crashed, restarting process losing messages.
	KindCrash Kind = "crash"
	// KindBurst republishes the last message seen on Topic at Rate Hz
	// while active, saturating subscriber queues to force drop-oldest
	// eviction (a runaway upstream publisher).
	KindBurst Kind = "burst"
	// KindContention runs Workers background CPU hogs, each a stream of
	// Load-second tasks with Bandwidth bytes/s of memory traffic — the
	// co-located best-effort work of the paper's Finding 1.
	KindContention Kind = "contention"
	// KindCorrupt flips payload bits on Topic with probability Prob:
	// each hit substitutes a mutated copy (NaN/Inf/out-of-range fields)
	// the integrity guard must quarantine before it corrupts node state.
	KindCorrupt Kind = "corrupt"
	// KindSkew offsets the stamp of messages on Topic by Skew with
	// probability Prob — a corrupted sensor clock. Negative Skew rewinds
	// stamps, positive Skew stamps frames in the future.
	KindSkew Kind = "skew"
	// KindDup delivers Copies extra identical frames (same stamp, same
	// payload) per message on Topic with probability Prob — a
	// duplicating driver or retransmitting transport.
	KindDup Kind = "dup"
	// KindTruncate truncates payloads on Topic with probability Prob,
	// keeping a Frac prefix and leaving a torn (non-finite) tail record
	// — a write cut off mid-frame.
	KindTruncate Kind = "truncate"
)

// Fault is one scheduled perturbation. Which fields apply depends on
// Kind; Validate enforces the pairing.
type Fault struct {
	Kind Kind
	// Topic targets message-level faults (drop, delay, jitter, burst).
	Topic string
	// Node targets callback-level faults (stall, crash).
	Node string
	// Start and Duration bound the active window in virtual time.
	Start    time.Duration
	Duration time.Duration

	// Prob is the per-message drop probability (drop).
	Prob float64
	// Delay is the base added delay (delay, stall).
	Delay time.Duration
	// Sigma is the random extra: uniform [0, Sigma) for delay/stall,
	// half-normal scale for jitter.
	Sigma time.Duration
	// Rate is the burst republish rate, Hz (burst).
	Rate float64
	// Load is single-core seconds per hog task (contention).
	Load float64
	// Bandwidth is bytes/s of memory traffic per hog task (contention).
	Bandwidth float64
	// Workers is the number of concurrent hog streams (contention).
	Workers int
	// Skew is the stamp offset applied per hit (skew); may be negative.
	Skew time.Duration
	// Copies is the number of extra identical frames per hit (dup).
	Copies int
	// Frac is the kept prefix fraction of a truncated payload (truncate).
	Frac float64
}

// ActiveAt reports whether the fault window covers virtual time t.
func (f Fault) ActiveAt(t time.Duration) bool {
	return t >= f.Start && t < f.Start+f.Duration
}

// End returns the end of the active window.
func (f Fault) End() time.Duration { return f.Start + f.Duration }

// Target names what the fault acts on, for reports.
func (f Fault) Target() string {
	switch f.Kind {
	case KindStall, KindCrash:
		return f.Node
	case KindContention:
		return "cpu"
	default:
		return f.Topic
	}
}

// Validate checks the fault's parameters.
func (f Fault) Validate() error {
	if f.Duration <= 0 {
		return fmt.Errorf("faults: %s fault needs a positive duration", f.Kind)
	}
	switch f.Kind {
	case KindDrop:
		if f.Topic == "" {
			return fmt.Errorf("faults: drop fault needs a topic")
		}
		if f.Prob <= 0 || f.Prob > 1 {
			return fmt.Errorf("faults: drop probability %v outside (0, 1]", f.Prob)
		}
	case KindDelay:
		if f.Topic == "" {
			return fmt.Errorf("faults: delay fault needs a topic")
		}
		if f.Delay <= 0 && f.Sigma <= 0 {
			return fmt.Errorf("faults: delay fault needs Delay or Sigma")
		}
	case KindJitter:
		if f.Topic == "" {
			return fmt.Errorf("faults: jitter fault needs a topic")
		}
		if f.Sigma <= 0 {
			return fmt.Errorf("faults: jitter fault needs a positive Sigma")
		}
	case KindStall:
		if f.Node == "" {
			return fmt.Errorf("faults: stall fault needs a node")
		}
		if f.Delay <= 0 && f.Sigma <= 0 {
			return fmt.Errorf("faults: stall fault needs Delay or Sigma")
		}
	case KindCrash:
		if f.Node == "" {
			return fmt.Errorf("faults: crash fault needs a node")
		}
	case KindBurst:
		if f.Topic == "" {
			return fmt.Errorf("faults: burst fault needs a topic")
		}
		if f.Rate <= 0 {
			return fmt.Errorf("faults: burst fault needs a positive rate")
		}
	case KindContention:
		if f.Workers <= 0 || f.Load <= 0 {
			return fmt.Errorf("faults: contention fault needs Workers and Load")
		}
	case KindCorrupt:
		if f.Topic == "" {
			return fmt.Errorf("faults: corrupt fault needs a topic")
		}
		if f.Prob <= 0 || f.Prob > 1 {
			return fmt.Errorf("faults: corrupt probability %v outside (0, 1]", f.Prob)
		}
	case KindSkew:
		if f.Topic == "" {
			return fmt.Errorf("faults: skew fault needs a topic")
		}
		if f.Skew == 0 {
			return fmt.Errorf("faults: skew fault needs a nonzero Skew")
		}
		if f.Prob <= 0 || f.Prob > 1 {
			return fmt.Errorf("faults: skew probability %v outside (0, 1]", f.Prob)
		}
	case KindDup:
		if f.Topic == "" {
			return fmt.Errorf("faults: dup fault needs a topic")
		}
		if f.Copies <= 0 {
			return fmt.Errorf("faults: dup fault needs positive Copies")
		}
		if f.Prob <= 0 || f.Prob > 1 {
			return fmt.Errorf("faults: dup probability %v outside (0, 1]", f.Prob)
		}
	case KindTruncate:
		if f.Topic == "" {
			return fmt.Errorf("faults: truncate fault needs a topic")
		}
		if f.Frac < 0 || f.Frac >= 1 {
			return fmt.Errorf("faults: truncate fraction %v outside [0, 1)", f.Frac)
		}
		if f.Prob <= 0 || f.Prob > 1 {
			return fmt.Errorf("faults: truncate probability %v outside (0, 1]", f.Prob)
		}
	default:
		return fmt.Errorf("faults: unknown kind %q", f.Kind)
	}
	return nil
}

// String renders the fault for reports, fully determined by its fields.
func (f Fault) String() string {
	base := fmt.Sprintf("%-10s %-34s window=[%v, %v)", f.Kind, f.Target(), f.Start, f.End())
	switch f.Kind {
	case KindDrop:
		return fmt.Sprintf("%s p=%.2f", base, f.Prob)
	case KindDelay, KindStall:
		return fmt.Sprintf("%s delay=%v sigma=%v", base, f.Delay, f.Sigma)
	case KindJitter:
		return fmt.Sprintf("%s sigma=%v", base, f.Sigma)
	case KindBurst:
		return fmt.Sprintf("%s rate=%.0fHz", base, f.Rate)
	case KindContention:
		return fmt.Sprintf("%s workers=%d load=%.1fms bw=%.1fGB/s",
			base, f.Workers, f.Load*1e3, f.Bandwidth/1e9)
	case KindCorrupt:
		return fmt.Sprintf("%s p=%.2f", base, f.Prob)
	case KindSkew:
		return fmt.Sprintf("%s p=%.2f skew=%v", base, f.Prob, f.Skew)
	case KindDup:
		return fmt.Sprintf("%s p=%.2f copies=%d", base, f.Prob, f.Copies)
	case KindTruncate:
		return fmt.Sprintf("%s p=%.2f frac=%.2f", base, f.Prob, f.Frac)
	}
	return base
}

// Schedule is a seeded set of faults. The seed drives every stochastic
// decision (drop coin flips, jitter draws) through per-fault split RNG
// streams, so two runs with the same schedule perturb identically.
type Schedule struct {
	Seed   uint64
	Faults []Fault
}

// Validate checks every fault in the schedule.
func (s Schedule) Validate() error {
	if len(s.Faults) == 0 {
		return fmt.Errorf("faults: empty schedule")
	}
	for i, f := range s.Faults {
		if err := f.Validate(); err != nil {
			return fmt.Errorf("fault %d: %w", i, err)
		}
	}
	return nil
}

// Event is one aggregate counter of applied perturbations, for reports.
type Event struct {
	Kind   Kind
	Target string
	Count  int
}

// sortEvents orders events deterministically (kind, then target).
func sortEvents(evs []Event) {
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].Kind != evs[j].Kind {
			return evs[i].Kind < evs[j].Kind
		}
		return evs[i].Target < evs[j].Target
	})
}
