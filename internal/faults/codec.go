package faults

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ErrFaultSyntax marks fault text the codec cannot decode. Semantic
// violations (a drop fault without a topic) surface as the same
// Validate errors the programmatic API returns.
var ErrFaultSyntax = errors.New("faults: invalid fault line")

// The fault codec serializes one Fault as a single line of
// space-separated key=value tokens, kind first:
//
//	kind=contention start=2s dur=6s load=0.008 bw=2e+09 workers=3
//	kind=drop topic=/points_raw start=1s dur=5s p=0.35
//
// It is the text form the adversarial search uses to mutate, pin, and
// replay fault schedules: FormatFault∘ParseFault is the identity on
// canonical lines, ParseFault∘FormatFault the identity on valid faults,
// and hostile input yields an error — never a panic. Durations use Go
// duration syntax; floats use shortest exact form.

// FormatFault renders f as one canonical fault line. Only fields the
// kind consumes are emitted, and only when nonzero, so the line is
// minimal and stable under re-parsing.
func FormatFault(f Fault) string {
	var b strings.Builder
	put := func(key, val string) {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(key)
		b.WriteByte('=')
		b.WriteString(val)
	}
	putF := func(key string, v float64) {
		if v != 0 {
			put(key, strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	putD := func(key string, v time.Duration) {
		if v != 0 {
			put(key, v.String())
		}
	}
	put("kind", string(f.Kind))
	if f.Topic != "" {
		put("topic", f.Topic)
	}
	if f.Node != "" {
		put("node", f.Node)
	}
	putD("start", f.Start)
	putD("dur", f.Duration)
	putF("p", f.Prob)
	putD("delay", f.Delay)
	putD("sigma", f.Sigma)
	putF("rate", f.Rate)
	putF("load", f.Load)
	putF("bw", f.Bandwidth)
	if f.Workers != 0 {
		put("workers", strconv.Itoa(f.Workers))
	}
	putD("skew", f.Skew)
	if f.Copies != 0 {
		put("copies", strconv.Itoa(f.Copies))
	}
	putF("frac", f.Frac)
	return b.String()
}

// ParseFault decodes one fault line into a validated Fault. Syntax
// problems wrap ErrFaultSyntax; semantically invalid faults return the
// corresponding Validate error. No input panics.
func ParseFault(line string) (Fault, error) {
	var f Fault
	seen := make(map[string]bool, 8)
	for _, tok := range strings.Fields(line) {
		key, val, ok := strings.Cut(tok, "=")
		if !ok || key == "" || val == "" {
			return f, fmt.Errorf("%w: token %q is not key=value", ErrFaultSyntax, tok)
		}
		if seen[key] {
			return f, fmt.Errorf("%w: duplicate key %q", ErrFaultSyntax, key)
		}
		seen[key] = true
		if err := setFaultField(&f, key, val); err != nil {
			return f, err
		}
	}
	if !seen["kind"] {
		return f, fmt.Errorf("%w: missing kind", ErrFaultSyntax)
	}
	if err := f.Validate(); err != nil {
		return Fault{}, err
	}
	return f, nil
}

func setFaultField(f *Fault, key, val string) error {
	parseF := func() (float64, error) {
		v, err := strconv.ParseFloat(val, 64)
		if err != nil || v != v || v > 1e300 || v < -1e300 {
			return 0, fmt.Errorf("%w: key %q: %q is not a finite number", ErrFaultSyntax, key, val)
		}
		return v, nil
	}
	parseD := func() (time.Duration, error) {
		v, err := time.ParseDuration(val)
		if err != nil {
			return 0, fmt.Errorf("%w: key %q: %q is not a duration", ErrFaultSyntax, key, val)
		}
		return v, nil
	}
	parseInt := func() (int, error) {
		v, err := strconv.Atoi(val)
		if err != nil {
			return 0, fmt.Errorf("%w: key %q: %q is not an integer", ErrFaultSyntax, key, val)
		}
		return v, nil
	}
	var err error
	switch key {
	case "kind":
		f.Kind = Kind(val)
	case "topic":
		if !codecSafeName(val) {
			return fmt.Errorf("%w: topic %q has characters the codec cannot carry", ErrFaultSyntax, val)
		}
		f.Topic = val
	case "node":
		if !codecSafeName(val) {
			return fmt.Errorf("%w: node %q has characters the codec cannot carry", ErrFaultSyntax, val)
		}
		f.Node = val
	case "start":
		f.Start, err = parseD()
		if err == nil && f.Start < 0 {
			err = fmt.Errorf("%w: negative start %v", ErrFaultSyntax, f.Start)
		}
	case "dur":
		f.Duration, err = parseD()
	case "p":
		f.Prob, err = parseF()
	case "delay":
		f.Delay, err = parseD()
	case "sigma":
		f.Sigma, err = parseD()
	case "rate":
		f.Rate, err = parseF()
	case "load":
		f.Load, err = parseF()
	case "bw":
		f.Bandwidth, err = parseF()
	case "workers":
		f.Workers, err = parseInt()
	case "skew":
		f.Skew, err = parseD()
	case "copies":
		f.Copies, err = parseInt()
	case "frac":
		f.Frac, err = parseF()
	default:
		return fmt.Errorf("%w: unknown key %q", ErrFaultSyntax, key)
	}
	return err
}

// codecSafeName bounds topic/node names to printable ASCII without
// whitespace or '=', so every formatted line tokenizes back losslessly.
func codecSafeName(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c <= ' ' || c > '~' || c == '=' {
			return false
		}
	}
	return true
}
