package faults

import (
	"errors"
	"testing"
	"time"
)

// codecFaults covers every kind with representative field mixes.
func codecFaults() []Fault {
	return []Fault{
		{Kind: KindDrop, Topic: "/points_raw", Start: time.Second, Duration: 5 * time.Second, Prob: 0.35},
		{Kind: KindDelay, Topic: "/image_raw", Start: 2 * time.Second, Duration: 3 * time.Second,
			Delay: 12 * time.Millisecond, Sigma: 4 * time.Millisecond},
		{Kind: KindJitter, Topic: "/points_raw", Duration: 8 * time.Second, Sigma: 7 * time.Millisecond},
		{Kind: KindStall, Node: "ndt_matching", Start: 500 * time.Millisecond, Duration: 4 * time.Second,
			Delay: 30 * time.Millisecond},
		{Kind: KindCrash, Node: "ekf_localizer", Start: 6 * time.Second, Duration: 2 * time.Second},
		{Kind: KindBurst, Topic: "/detection/objects", Duration: time.Second, Rate: 400},
		{Kind: KindContention, Start: 2 * time.Second, Duration: 6 * time.Second,
			Workers: 3, Load: 0.008, Bandwidth: 2e9},
		{Kind: KindCorrupt, Topic: "/points_raw", Duration: 5 * time.Second, Prob: 0.2},
		{Kind: KindSkew, Topic: "/image_raw", Duration: 5 * time.Second, Prob: 0.5, Skew: -2 * time.Second},
		{Kind: KindDup, Topic: "/points_raw", Duration: 5 * time.Second, Prob: 0.25, Copies: 2},
		{Kind: KindTruncate, Topic: "/points_raw", Duration: 5 * time.Second, Prob: 0.4, Frac: 0.6},
	}
}

func TestFaultCodecRoundTrip(t *testing.T) {
	for _, f := range codecFaults() {
		line := FormatFault(f)
		back, err := ParseFault(line)
		if err != nil {
			t.Fatalf("%s: parse(%q): %v", f.Kind, line, err)
		}
		if back != f {
			t.Fatalf("%s: round-trip mismatch\nline: %s\ngot:  %+v\nwant: %+v", f.Kind, line, back, f)
		}
		if again := FormatFault(back); again != line {
			t.Fatalf("%s: format not canonical: %q vs %q", f.Kind, line, again)
		}
	}
}

func TestParseFaultRejects(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"missing kind":     "topic=/points_raw dur=5s p=0.5",
		"unknown kind":     "kind=gremlin dur=5s",
		"unknown key":      "kind=drop topic=/points_raw dur=5s p=0.5 color=red",
		"duplicate key":    "kind=drop topic=/points_raw dur=5s p=0.5 p=0.6",
		"bare token":       "kind=drop topic",
		"bad duration":     "kind=drop topic=/points_raw dur=five p=0.5",
		"bad float":        "kind=drop topic=/points_raw dur=5s p=high",
		"nan prob":         "kind=drop topic=/points_raw dur=5s p=NaN",
		"huge rate":        "kind=burst topic=/points_raw dur=5s rate=1e308",
		"negative start":   "kind=drop topic=/points_raw start=-1s dur=5s p=0.5",
		"zero duration":    "kind=drop topic=/points_raw p=0.5",
		"drop sans topic":  "kind=drop dur=5s p=0.5",
		"prob above one":   "kind=drop topic=/points_raw dur=5s p=1.5",
		"topic with space": "kind=drop topic=/points\x00raw dur=5s p=0.5",
		"topic with eq":    "kind=drop topic=/a=b dur=5s p=0.5",
		"stall sans node":  "kind=stall dur=5s delay=10ms",
	}
	for name, line := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ParseFault(line); err == nil {
				t.Fatalf("ParseFault(%q) accepted invalid input", line)
			}
		})
	}
	// Syntax errors carry the sentinel; semantic ones carry Validate's.
	if _, err := ParseFault("kind=drop topic=/p dur=5s p=0.5 p=0.6"); !errors.Is(err, ErrFaultSyntax) {
		t.Fatalf("duplicate key error = %v, want ErrFaultSyntax", err)
	}
}

// TestFaultCodecMatchesValidate pins that anything ParseFault accepts
// also passes the programmatic Validate — the codec adds syntax, not a
// second semantic standard.
func TestFaultCodecMatchesValidate(t *testing.T) {
	for _, f := range codecFaults() {
		if err := f.Validate(); err != nil {
			t.Fatalf("%s: table fault invalid: %v", f.Kind, err)
		}
		got, err := ParseFault(FormatFault(f))
		if err != nil {
			t.Fatal(err)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("%s: parsed fault invalid: %v", f.Kind, err)
		}
	}
}
