package faults

import (
	"time"

	"repro/internal/mathx"
	"repro/internal/platform"
	"repro/internal/ros"
)

// Injector applies one Schedule to one running stack. It chains onto
// the executor's publish/callback filters (preserving filters other
// layers installed), taps the bus to learn burst payloads, and drives
// burst and contention activity off the simulation clock. All of its
// decisions are functions of (schedule, seed, dispatch order), so a
// deterministic simulation stays deterministic with the injector
// attached.
type Injector struct {
	sched Schedule
	sim   *platform.Sim
	ex    *platform.Executor

	// rngs holds one independent stream per fault, split from the seed
	// in fault order.
	rngs []*mathx.RNG

	// lastPayload remembers the newest payload per burst topic, with
	// per-topic seq de-duplication of the per-subscription deliver hook.
	lastPayload map[string]any
	lastSeq     map[string]uint64

	counts map[Kind]map[string]int

	// losses, when set, receives every message-losing verdict (drop,
	// crash) with its timestamp, so traces can distinguish "dropped by
	// an injected fault" from "never produced".
	losses LossRecorder
}

// LossRecorder receives fault-induced message losses as they happen.
// trace.Recorder implements it; SetLossRecorder wires it up.
type LossRecorder interface {
	OnFaultLoss(kind, target string, at time.Duration)
}

// New prepares an injector for the schedule. Attach must be called
// before the simulation runs past the first fault window.
func New(sched Schedule) (*Injector, error) {
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	in := &Injector{
		sched:       sched,
		lastPayload: make(map[string]any),
		lastSeq:     make(map[string]uint64),
		counts:      make(map[Kind]map[string]int),
	}
	root := mathx.NewRNG(sched.Seed)
	for range sched.Faults {
		in.rngs = append(in.rngs, root.Split())
	}
	return in, nil
}

// Schedule returns the schedule the injector applies.
func (in *Injector) Schedule() Schedule { return in.sched }

// SetLossRecorder installs the trace hook for message-losing verdicts.
// Call any time; nil disables.
func (in *Injector) SetLossRecorder(r LossRecorder) { in.losses = r }

// Attach wires the injector into a stack's executor and bus and
// schedules the windowed activities (bursts, contention hogs).
func (in *Injector) Attach(ex *platform.Executor, bus *ros.Bus) {
	in.sim = ex.Sim
	in.ex = ex

	in.chainPublishFilter(ex)
	in.chainCallbackFilter(ex)

	needTap := false
	for i := range in.sched.Faults {
		f := &in.sched.Faults[i]
		switch f.Kind {
		case KindBurst:
			needTap = true
			in.scheduleBurst(f, in.rngs[i])
		case KindContention:
			in.scheduleContention(f)
		}
	}
	if needTap {
		bus.Tap(in.observeDeliver, nil)
	}
}

// chainPublishFilter installs the message-level faults (drop, delay,
// jitter, corrupt, skew, dup, truncate) behind any existing filter.
func (in *Injector) chainPublishFilter(ex *platform.Executor) {
	prev := ex.PublishFilter
	ex.PublishFilter = func(topic string, payload any, now time.Duration) platform.PublishVerdict {
		var v platform.PublishVerdict
		if prev != nil {
			v = prev(topic, payload, now)
			if v.Drop {
				return v
			}
			if v.Payload != nil {
				payload = v.Payload
			}
		}
		for i := range in.sched.Faults {
			f := &in.sched.Faults[i]
			if f.Topic != topic || !f.ActiveAt(now) {
				continue
			}
			rng := in.rngs[i]
			switch f.Kind {
			case KindDrop:
				if rng.Bool(f.Prob) {
					in.count(f, 1)
					if in.losses != nil {
						in.losses.OnFaultLoss(string(KindDrop), f.Target(), now)
					}
					v.Drop = true
					return v
				}
			case KindDelay:
				extra := f.Delay
				if f.Sigma > 0 {
					extra += time.Duration(rng.Range(0, float64(f.Sigma)))
				}
				v.Delay += extra
				in.count(f, 1)
			case KindJitter:
				n := rng.Norm()
				if n < 0 {
					n = -n
				}
				v.Delay += time.Duration(n * float64(f.Sigma))
				in.count(f, 1)
			case KindCorrupt:
				if rng.Bool(f.Prob) {
					if mutated := corruptPayload(rng, payload); mutated != nil {
						v.Payload = mutated
						payload = mutated
						in.count(f, 1)
					}
				}
			case KindSkew:
				if rng.Bool(f.Prob) {
					v.StampSkew += f.Skew
					in.count(f, 1)
				}
			case KindDup:
				if rng.Bool(f.Prob) {
					v.Copies += f.Copies
					in.count(f, f.Copies)
				}
			case KindTruncate:
				if rng.Bool(f.Prob) {
					if mutated := truncatePayload(rng, payload, f.Frac); mutated != nil {
						v.Payload = mutated
						payload = mutated
						in.count(f, 1)
					}
				}
			}
		}
		return v
	}
}

// chainCallbackFilter installs the node-level faults (stall, crash)
// behind any existing filter.
func (in *Injector) chainCallbackFilter(ex *platform.Executor) {
	prev := ex.CallbackFilter
	ex.CallbackFilter = func(node string, m *ros.Message, now time.Duration) platform.CallbackVerdict {
		var v platform.CallbackVerdict
		if prev != nil {
			v = prev(node, m, now)
			if v.Drop {
				return v
			}
		}
		for i := range in.sched.Faults {
			f := &in.sched.Faults[i]
			if f.Node != node || !f.ActiveAt(now) {
				continue
			}
			switch f.Kind {
			case KindCrash:
				in.count(f, 1)
				if in.losses != nil {
					in.losses.OnFaultLoss(string(KindCrash), f.Target(), now)
				}
				v.Drop = true
				return v
			case KindStall:
				extra := f.Delay
				if f.Sigma > 0 {
					extra += time.Duration(in.rngs[i].Range(0, float64(f.Sigma)))
				}
				v.Stall += extra
				in.count(f, 1)
			}
		}
		return v
	}
}

// observeDeliver remembers the newest payload per topic for bursts,
// de-duplicating the per-subscription fan-out by sequence number.
//
// Borrow contract: bus taps receive the pooled *Message for the
// duration of the call only — retaining m (or anything reachable
// through its Header) without m.Retain() is a use-after-recycle once
// the pool's reclamation epoch passes. Payloads are never pooled, so
// caching m.Payload here is safe indefinitely.
func (in *Injector) observeDeliver(sub *ros.Subscription, m *ros.Message) {
	if m.Header.Seq == in.lastSeq[sub.Topic] {
		return
	}
	in.lastSeq[sub.Topic] = m.Header.Seq
	in.lastPayload[sub.Topic] = m.Payload
}

// scheduleBurst installs the republish pump for one burst fault.
func (in *Injector) scheduleBurst(f *Fault, rng *mathx.RNG) {
	period := time.Duration(float64(time.Second) / f.Rate)
	var tick func()
	tick = func() {
		now := in.sim.Now()
		if now >= f.End() {
			return
		}
		if payload, ok := in.lastPayload[f.Topic]; ok {
			in.ex.Publish(f.Topic, payload)
			in.count(f, 1)
		}
		// A touch of period noise keeps the burst from phase-locking to
		// the victim's own publication cadence.
		drift := time.Duration(rng.Range(0, float64(period)/16))
		in.sim.After(period+drift, tick)
	}
	in.sim.Schedule(f.Start, tick)
}

// scheduleContention launches the background hog streams for one
// contention fault: each worker keeps one Load-second task in flight on
// the shared CPU until the window closes.
func (in *Injector) scheduleContention(f *Fault) {
	owner := "fault:contention"
	for w := 0; w < f.Workers; w++ {
		var submit func()
		submit = func() {
			if in.sim.Now() >= f.End() {
				return
			}
			in.count(f, 1)
			in.ex.CPU.Submit(owner, f.Load, f.Bandwidth, func() {
				submit()
			})
		}
		in.sim.Schedule(f.Start, submit)
	}
}

// count bumps the aggregate event counter for a fault.
func (in *Injector) count(f *Fault, n int) {
	byTarget := in.counts[f.Kind]
	if byTarget == nil {
		byTarget = make(map[string]int)
		in.counts[f.Kind] = byTarget
	}
	byTarget[f.Target()] += n
}

// Events returns the aggregate perturbation counters, deterministically
// ordered by kind then target.
func (in *Injector) Events() []Event {
	var out []Event
	for kind, byTarget := range in.counts {
		for target, n := range byTarget {
			out = append(out, Event{Kind: kind, Target: target, Count: n})
		}
	}
	sortEvents(out)
	return out
}
