package faults

import (
	"testing"
	"time"

	"repro/internal/platform"
	"repro/internal/ros"
	"repro/internal/work"
)

// echoNode turns each input into one output after fixed CPU work.
type echoNode struct {
	name    string
	in, out string
	ops     float64
	depth   int
	count   int
}

func (n *echoNode) Name() string { return n.name }
func (n *echoNode) Subscribes() []ros.SubSpec {
	d := n.depth
	if d == 0 {
		d = 2
	}
	return []ros.SubSpec{{Topic: n.in, Depth: d}}
}
func (n *echoNode) Process(in *ros.Message, _ time.Duration) ros.Result {
	n.count++
	return ros.Result{
		Outputs: []ros.Output{{Topic: n.out, Payload: in.Payload}},
		Work:    work.Work{IntOps: n.ops},
	}
}

// rig is a minimal one-node pipeline under an injector.
type rig struct {
	sim  *platform.Sim
	ex   *platform.Executor
	bus  *ros.Bus
	node *echoNode
	inj  *Injector
}

// newRig publishes to /in every 10 ms for the given span; the node does
// ~1 ms of work per input.
func newRig(t *testing.T, sched Schedule, depth int) *rig {
	t.Helper()
	sim := platform.NewSim()
	cpu := platform.NewCPU(platform.DefaultCPUConfig(), sim)
	gpu := platform.NewGPU(platform.DefaultGPUConfig(), sim)
	bus := ros.NewBus()
	ex := platform.NewExecutor(sim, cpu, gpu, bus, nil)
	node := &echoNode{name: "n", in: "/in", out: "/out", ops: 1.55e6, depth: depth}
	ex.AddNode(node, platform.NodeOptions{})
	inj, err := New(sched)
	if err != nil {
		t.Fatal(err)
	}
	inj.Attach(ex, bus)
	return &rig{sim: sim, ex: ex, bus: bus, node: node, inj: inj}
}

func (r *rig) pump(n int, period time.Duration) {
	for i := 0; i < n; i++ {
		i := i
		r.sim.Schedule(time.Duration(i)*period, func() { r.ex.Publish("/in", i) })
	}
}

func window(start, dur time.Duration) (time.Duration, time.Duration) { return start, dur }

func TestDropFaultSuppressesMessages(t *testing.T) {
	start, dur := window(0, time.Second)
	r := newRig(t, Schedule{Seed: 1, Faults: []Fault{{
		Kind: KindDrop, Topic: "/in", Start: start, Duration: dur, Prob: 1.0,
	}}}, 0)
	r.pump(50, 10*time.Millisecond)
	r.sim.Run(2 * time.Second)
	if r.node.count != 0 {
		t.Errorf("p=1 drop window let %d messages through", r.node.count)
	}
	evs := r.inj.Events()
	if len(evs) != 1 || evs[0].Kind != KindDrop || evs[0].Count != 50 {
		t.Errorf("events = %+v", evs)
	}
}

func TestDropFaultOutsideWindowIsInert(t *testing.T) {
	r := newRig(t, Schedule{Seed: 1, Faults: []Fault{{
		Kind: KindDrop, Topic: "/in", Start: 10 * time.Second, Duration: time.Second, Prob: 1.0,
	}}}, 0)
	r.pump(20, 10*time.Millisecond)
	r.sim.Run(2 * time.Second)
	if r.node.count != 20 {
		t.Errorf("inactive fault dropped messages: processed %d/20", r.node.count)
	}
	if len(r.inj.Events()) != 0 {
		t.Errorf("events = %+v", r.inj.Events())
	}
}

func TestDelayFaultShiftsCompletion(t *testing.T) {
	// One message, 100 ms fixed extra delay: output must land >= 100 ms
	// after the no-fault completion time.
	base := newRig(t, Schedule{Seed: 1, Faults: []Fault{{
		Kind: KindDelay, Topic: "/in", Start: 10 * time.Second, Duration: time.Second,
		Delay: 100 * time.Millisecond,
	}}}, 0) // window never active: baseline
	var baseDone time.Duration
	base.ex.OnDone = func(d platform.DoneInfo) { baseDone = d.Finished }
	base.pump(1, time.Millisecond)
	base.sim.Run(time.Second)

	delayed := newRig(t, Schedule{Seed: 1, Faults: []Fault{{
		Kind: KindDelay, Topic: "/in", Start: 0, Duration: time.Second,
		Delay: 100 * time.Millisecond,
	}}}, 0)
	var faultDone time.Duration
	delayed.ex.OnDone = func(d platform.DoneInfo) { faultDone = d.Finished }
	delayed.pump(1, time.Millisecond)
	delayed.sim.Run(time.Second)

	if faultDone-baseDone < 100*time.Millisecond {
		t.Errorf("delay fault added %v, want >= 100ms", faultDone-baseDone)
	}
}

func TestStallFaultHoldsNodeBusy(t *testing.T) {
	r := newRig(t, Schedule{Seed: 1, Faults: []Fault{{
		Kind: KindStall, Node: "n", Start: 0, Duration: time.Second,
		Delay: 200 * time.Millisecond,
	}}}, 0)
	var first platform.DoneInfo
	r.ex.OnDone = func(d platform.DoneInfo) {
		if first.Node == "" {
			first = d
		}
	}
	r.pump(1, time.Millisecond)
	r.sim.Run(time.Second)
	if lat := first.Finished - first.Arrived; lat < 200*time.Millisecond {
		t.Errorf("stalled callback latency %v, want >= 200ms", lat)
	}
	if r.node.count != 1 {
		t.Errorf("stall lost the message: count = %d", r.node.count)
	}
}

func TestCrashFaultConsumesInputsSilently(t *testing.T) {
	r := newRig(t, Schedule{Seed: 1, Faults: []Fault{{
		Kind: KindCrash, Node: "n", Start: 0, Duration: 250 * time.Millisecond,
	}}}, 0)
	r.pump(50, 10*time.Millisecond)
	r.sim.Run(2 * time.Second)
	// ~25 inputs land in the crash window and are consumed unprocessed;
	// the rest process normally after recovery.
	if r.node.count < 20 || r.node.count > 30 {
		t.Errorf("processed %d of 50 with a 250ms crash window", r.node.count)
	}
	evs := r.inj.Events()
	if len(evs) != 1 || evs[0].Kind != KindCrash || evs[0].Count == 0 {
		t.Errorf("events = %+v", evs)
	}
}

func TestBurstFaultForcesQueueEviction(t *testing.T) {
	// Slow node (50 ms/input, depth 1) under a 200 Hz burst republish:
	// the queue must evict.
	sched := Schedule{Seed: 7, Faults: []Fault{{
		Kind: KindBurst, Topic: "/in", Start: 100 * time.Millisecond,
		Duration: 500 * time.Millisecond, Rate: 200,
	}}}
	sim := platform.NewSim()
	cpu := platform.NewCPU(platform.DefaultCPUConfig(), sim)
	gpu := platform.NewGPU(platform.DefaultGPUConfig(), sim)
	bus := ros.NewBus()
	ex := platform.NewExecutor(sim, cpu, gpu, bus, nil)
	node := &echoNode{name: "n", in: "/in", out: "/out", ops: 7.75e7, depth: 1}
	ex.AddNode(node, platform.NodeOptions{})
	inj, err := New(sched)
	if err != nil {
		t.Fatal(err)
	}
	inj.Attach(ex, bus)
	for i := 0; i < 10; i++ {
		i := i
		sim.Schedule(time.Duration(i)*50*time.Millisecond, func() { ex.Publish("/in", i) })
	}
	sim.Run(2 * time.Second)

	drops := bus.DropReports()
	if len(drops) != 1 || drops[0].Dropped == 0 {
		t.Errorf("burst produced no evictions: %+v", drops)
	}
	evs := inj.Events()
	if len(evs) != 1 || evs[0].Kind != KindBurst || evs[0].Count < 50 {
		t.Errorf("events = %+v", evs)
	}
}

func TestContentionFaultSlowsCallbacks(t *testing.T) {
	mk := func(withHogs bool) time.Duration {
		sched := Schedule{Seed: 3, Faults: []Fault{{
			Kind: KindContention, Start: 0, Duration: time.Second,
			Workers: 4, Load: 10e-3,
		}}}
		if !withHogs {
			sched.Faults[0].Start = 10 * time.Second // out of reach
		}
		r := newRig(t, sched, 0)
		r.node.ops = 1.55e7 // 10 ms of work per input
		var last time.Duration
		r.ex.OnDone = func(d platform.DoneInfo) { last = d.Finished }
		r.pump(10, 50*time.Millisecond)
		r.sim.Run(5 * time.Second)
		return last
	}
	clean, contended := mk(false), mk(true)
	if contended <= clean {
		t.Errorf("contention did not slow pipeline: clean=%v contended=%v", clean, contended)
	}
}

func TestInjectorDeterminism(t *testing.T) {
	run := func() (int, []Event) {
		r := newRig(t, Schedule{Seed: 42, Faults: []Fault{
			{Kind: KindDrop, Topic: "/in", Start: 0, Duration: time.Second, Prob: 0.5},
			{Kind: KindJitter, Topic: "/out", Start: 0, Duration: time.Second, Sigma: 5 * time.Millisecond},
		}}, 0)
		r.pump(100, 10*time.Millisecond)
		r.sim.Run(3 * time.Second)
		return r.node.count, r.inj.Events()
	}
	c1, e1 := run()
	c2, e2 := run()
	if c1 != c2 {
		t.Errorf("processed counts diverge: %d vs %d", c1, c2)
	}
	if len(e1) != len(e2) {
		t.Fatalf("event sets diverge: %+v vs %+v", e1, e2)
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Errorf("event %d diverges: %+v vs %+v", i, e1[i], e2[i])
		}
	}
	// A different seed must perturb differently (0.5 drop over 100 msgs).
	r3 := newRig(t, Schedule{Seed: 43, Faults: []Fault{
		{Kind: KindDrop, Topic: "/in", Start: 0, Duration: time.Second, Prob: 0.5},
		{Kind: KindJitter, Topic: "/out", Start: 0, Duration: time.Second, Sigma: 5 * time.Millisecond},
	}}, 0)
	r3.pump(100, 10*time.Millisecond)
	r3.sim.Run(3 * time.Second)
	if r3.node.count == c1 {
		t.Logf("note: different seed produced same drop count %d (possible but unlikely)", c1)
	}
}

func TestScheduleValidation(t *testing.T) {
	bad := []Schedule{
		{Seed: 1},
		{Seed: 1, Faults: []Fault{{Kind: KindDrop, Topic: "/t", Duration: time.Second}}},          // no prob
		{Seed: 1, Faults: []Fault{{Kind: KindDrop, Topic: "/t", Prob: 0.5}}},                      // no duration
		{Seed: 1, Faults: []Fault{{Kind: KindStall, Duration: time.Second, Delay: time.Second}}},  // no node
		{Seed: 1, Faults: []Fault{{Kind: "nope", Duration: time.Second}}},                         // unknown kind
		{Seed: 1, Faults: []Fault{{Kind: KindBurst, Topic: "/t", Duration: time.Second}}},         // no rate
		{Seed: 1, Faults: []Fault{{Kind: KindContention, Duration: time.Second, Workers: 1}}},     // no load
		{Seed: 1, Faults: []Fault{{Kind: KindDrop, Topic: "/t", Duration: time.Second, Prob: 2}}}, // p > 1
		{Seed: 1, Faults: []Fault{{Kind: KindJitter, Topic: "/t", Duration: time.Second}}},        // no sigma
		{Seed: 1, Faults: []Fault{{Kind: KindDelay, Topic: "/t", Duration: time.Second}}},         // no delay
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("schedule %d should fail validation", i)
		}
	}
	good := Schedule{Seed: 1, Faults: []Fault{
		{Kind: KindCrash, Node: "n", Duration: time.Second},
	}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
}
