// Package uarch is the hardware-counter substitute: a set-associative
// L1 data-cache simulator, a gshare branch predictor, and a pipeline
// model that together produce the per-node microarchitectural profile
// of the paper's Table VII and the instruction mix of Fig. 7. Each node
// contributes a memory/branch trace generator that is structurally
// derived from its real data structures (k-d tree pointer chasing,
// voxel hash probing, dense grid rasterization, per-class ranking
// sorts), so the counters respond to algorithm structure rather than
// being dialed in directly.
package uarch

// CacheConfig describes one cache level.
type CacheConfig struct {
	SizeBytes int
	LineBytes int
	Ways      int
}

// DefaultL1D is a contemporary 32 KiB, 8-way, 64 B-line L1 data cache.
func DefaultL1D() CacheConfig {
	return CacheConfig{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8}
}

// CacheStats accumulates access outcomes.
type CacheStats struct {
	ReadAccesses  uint64
	ReadMisses    uint64
	WriteAccesses uint64
	WriteMisses   uint64
}

// ReadMissRate returns read misses / read accesses.
func (s CacheStats) ReadMissRate() float64 {
	if s.ReadAccesses == 0 {
		return 0
	}
	return float64(s.ReadMisses) / float64(s.ReadAccesses)
}

// WriteMissRate returns write misses / write accesses.
func (s CacheStats) WriteMissRate() float64 {
	if s.WriteAccesses == 0 {
		return 0
	}
	return float64(s.WriteMisses) / float64(s.WriteAccesses)
}

// Cache is a set-associative write-allocate cache with LRU replacement.
type Cache struct {
	cfg      CacheConfig
	sets     int
	lineBits uint
	// tags[set][way]; lru[set][way] holds recency counters.
	tags  [][]uint64
	valid [][]bool
	lru   [][]uint64
	clock uint64
	Stats CacheStats
}

// NewCache builds the cache; the configuration must be power-of-two
// consistent (size divisible by line*ways).
func NewCache(cfg CacheConfig) *Cache {
	if cfg.SizeBytes <= 0 || cfg.LineBytes <= 0 || cfg.Ways <= 0 {
		panic("uarch: invalid cache config")
	}
	sets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	if sets < 1 {
		panic("uarch: cache too small for associativity")
	}
	lineBits := uint(0)
	for l := cfg.LineBytes; l > 1; l >>= 1 {
		lineBits++
	}
	c := &Cache{cfg: cfg, sets: sets, lineBits: lineBits}
	c.tags = make([][]uint64, sets)
	c.valid = make([][]bool, sets)
	c.lru = make([][]uint64, sets)
	for i := range c.tags {
		c.tags[i] = make([]uint64, cfg.Ways)
		c.valid[i] = make([]bool, cfg.Ways)
		c.lru[i] = make([]uint64, cfg.Ways)
	}
	return c
}

// install fills the line containing addr without touching the stats —
// the prefetch path.
func (c *Cache) install(addr uint64) {
	c.clock++
	line := addr >> c.lineBits
	set := int(line % uint64(c.sets))
	tag := line / uint64(c.sets)
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[set][w] && c.tags[set][w] == tag {
			c.lru[set][w] = c.clock
			return
		}
	}
	victim := 0
	for w := 1; w < c.cfg.Ways; w++ {
		if !c.valid[set][w] {
			victim = w
			break
		}
		if c.lru[set][w] < c.lru[set][victim] {
			victim = w
		}
	}
	c.tags[set][victim] = tag
	c.valid[set][victim] = true
	c.lru[set][victim] = c.clock
}

// Access simulates one access; returns true on hit.
func (c *Cache) Access(addr uint64, write bool) bool {
	c.clock++
	line := addr >> c.lineBits
	set := int(line % uint64(c.sets))
	tag := line / uint64(c.sets)
	if write {
		c.Stats.WriteAccesses++
	} else {
		c.Stats.ReadAccesses++
	}
	// Lookup.
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[set][w] && c.tags[set][w] == tag {
			c.lru[set][w] = c.clock
			return true
		}
	}
	// Miss: fill LRU way.
	if write {
		c.Stats.WriteMisses++
	} else {
		c.Stats.ReadMisses++
	}
	victim := 0
	for w := 1; w < c.cfg.Ways; w++ {
		if !c.valid[set][w] {
			victim = w
			break
		}
		if c.lru[set][w] < c.lru[set][victim] {
			victim = w
		}
	}
	c.tags[set][victim] = tag
	c.valid[set][victim] = true
	c.lru[set][victim] = c.clock
	return false
}
