package uarch

// Level identifies where an access was served.
type Level int

// Access outcomes.
const (
	HitL1 Level = iota + 1
	HitL2
	HitMemory
)

// Hierarchy is a two-level inclusive cache: misses in the L1 probe the
// L2, misses in the L2 go to memory and fill both levels.
type Hierarchy struct {
	L1 *Cache
	L2 *Cache
}

// DefaultL2 is a 512 KiB, 8-way unified second level.
func DefaultL2() CacheConfig {
	return CacheConfig{SizeBytes: 512 << 10, LineBytes: 64, Ways: 8}
}

// NewHierarchy builds the two-level structure.
func NewHierarchy(l1, l2 CacheConfig) *Hierarchy {
	return &Hierarchy{L1: NewCache(l1), L2: NewCache(l2)}
}

// Access simulates one access and returns the serving level. A simple
// next-line stream prefetcher fills the L2 on demand misses, so
// sequential scans are served from the L2 after their first line — the
// behaviour hardware prefetchers give streaming workloads.
func (h *Hierarchy) Access(addr uint64, write bool) Level {
	if h.L1.Access(addr, write) {
		return HitL1
	}
	if h.L2.Access(addr, write) {
		return HitL2
	}
	// Demand miss to memory: prefetch the next line into the L2
	// without charging its stats.
	next := addr + uint64(h.L2.cfg.LineBytes)
	h.L2.install(next)
	return HitMemory
}

// L2MissRatio returns L2 misses per *L1 access* for reads and writes —
// the per-instruction memory-traffic rates the pipeline model charges.
func (h *Hierarchy) L2MissRatio() (read, write float64) {
	if h.L1.Stats.ReadAccesses > 0 {
		read = float64(h.L2.Stats.ReadMisses) / float64(h.L1.Stats.ReadAccesses)
	}
	if h.L1.Stats.WriteAccesses > 0 {
		write = float64(h.L2.Stats.WriteMisses) / float64(h.L1.Stats.WriteAccesses)
	}
	return read, write
}
