package uarch

import (
	"fmt"

	"repro/internal/mathx"
	"repro/internal/work"
)

// InstrMix is the Fig. 7 instruction breakdown, as fractions of all
// instructions.
type InstrMix struct {
	Int, FP, Load, Store, Branch float64
}

// MixFromWork derives the instruction mix from a node's accumulated
// Work descriptor.
func MixFromWork(w work.Work) InstrMix {
	total := w.CPUOps()
	if total <= 0 {
		return InstrMix{}
	}
	return InstrMix{
		Int:    w.IntOps / total,
		FP:     w.FPOps / total,
		Load:   w.LoadOps / total,
		Store:  w.StoreOps / total,
		Branch: w.BranchOps / total,
	}
}

// MemPattern describes a node's memory access structure. Fractions
// need not sum to 1; the remainder goes to the hot set (register/L1
// resident reuse).
type MemPattern struct {
	// StreamFrac accesses walk long sequential arrays (one miss per
	// cache line).
	StreamFrac float64
	// RandFrac accesses are uniform within RandBytes (hash probing,
	// lookup tables).
	RandFrac  float64
	RandBytes int
	// ChaseFrac accesses are dependent pointer chases within
	// ChaseBytes (tree traversal).
	ChaseFrac  float64
	ChaseBytes int
	// WriteScatterFrac of writes land on random lines within RandBytes
	// or ChaseBytes (cluster visited-flags, scattered field updates);
	// WriteStreamFrac of writes stream sequentially; the rest hit the
	// hot set.
	WriteScatterFrac float64
	WriteStreamFrac  float64
}

// BranchPattern describes a node's branch structure.
type BranchPattern struct {
	// RandomFrac branches are data-dependent coin flips (sorting
	// unsorted data) that defeat history-based prediction.
	RandomFrac float64
	// BiasedTakenProb is the taken probability of the remaining
	// branches (loop back-edges and guards).
	BiasedTakenProb float64
	// Sites is the number of static branch PCs exercised.
	Sites int
}

// NodeSpec is the microarchitectural model of one node.
type NodeSpec struct {
	Name string
	// ILP is the sustainable issue IPC absent cache/branch stalls —
	// the dependency-chain structure of the code (long serial chains in
	// small matrix algebra push it down; independent rasterization
	// arithmetic pushes it up).
	ILP    float64
	Mem    MemPattern
	Branch BranchPattern
	// StoreShare of memory accesses that are writes.
	StoreShare float64
}

// Profile is the Table VII row produced for a node.
type Profile struct {
	Name            string
	IPC             float64
	L1ReadMissRate  float64
	L1WriteMissRate float64
	BranchMissRate  float64
	Mix             InstrMix
}

// Penalties of the pipeline model (effective cycles; memory-level
// parallelism hides part of the architectural latencies).
const (
	l2HitPenalty       = 6.0  // L1 miss served by the L2
	memPenalty         = 15.0 // L2 miss served by memory
	l1WriteMissPenalty = 2.0  // store buffer hides most of it
	memWritePenalty    = 5.0  // L2 write miss
	mispredictPenalty  = 15.0 // frontend refill
)

// Simulate runs the node's memory and branch traces through the cache
// and predictor simulators and closes the pipeline model with the
// given instruction mix.
func Simulate(spec NodeSpec, mix InstrMix, memAccesses, branches int, seed uint64) Profile {
	rng := mathx.NewRNG(seed)
	cache := NewHierarchy(DefaultL1D(), DefaultL2())
	pred := NewGShare(14)

	// --- memory trace ---
	const line = 64
	streamAddr := uint64(1 << 30)
	hotBase := uint64(1 << 20)
	randBase := uint64(1 << 26)
	chaseBase := uint64(1 << 28)
	chasePtr := chaseBase
	writeStreamAddr := uint64(3) << 30
	scatterBytes := spec.Mem.RandBytes
	if spec.Mem.ChaseBytes > scatterBytes {
		scatterBytes = spec.Mem.ChaseBytes
	}
	for i := 0; i < memAccesses; i++ {
		isWrite := rng.Float64() < spec.StoreShare
		var addr uint64
		r := rng.Float64()
		if isWrite {
			switch {
			case r < spec.Mem.WriteScatterFrac && scatterBytes > 0:
				addr = randBase + uint64(rng.Intn(scatterBytes))
			case r < spec.Mem.WriteScatterFrac+spec.Mem.WriteStreamFrac:
				writeStreamAddr += 8
				addr = writeStreamAddr
			default:
				addr = hotBase + uint64(rng.Intn(4096))
			}
			cache.Access(addr, true)
			continue
		}
		switch {
		case r < spec.Mem.StreamFrac:
			streamAddr += 8
			addr = streamAddr
		case r < spec.Mem.StreamFrac+spec.Mem.RandFrac && spec.Mem.RandBytes > 0:
			addr = randBase + uint64(rng.Intn(spec.Mem.RandBytes))
		case r < spec.Mem.StreamFrac+spec.Mem.RandFrac+spec.Mem.ChaseFrac && spec.Mem.ChaseBytes > 0:
			// Dependent chase: next address derived from current.
			chasePtr = chaseBase + (chasePtr*2654435761+uint64(i))%uint64(spec.Mem.ChaseBytes)
			addr = chasePtr
		default:
			// Hot set: 4 KiB of heavily reused state.
			addr = hotBase + uint64(rng.Intn(4096))
		}
		cache.Access(addr, false)
	}

	// --- branch trace ---
	sites := spec.Branch.Sites
	if sites < 1 {
		sites = 16
	}
	for i := 0; i < branches; i++ {
		pc := uint64(0x4000) + uint64(rng.Intn(sites))*4
		var taken bool
		if rng.Float64() < spec.Branch.RandomFrac {
			taken = rng.Bool(0.5)
		} else {
			taken = rng.Bool(spec.Branch.BiasedTakenProb)
		}
		pred.Access(pc, taken)
	}

	// --- pipeline model ---
	stats := cache.L1.Stats
	loadMiss := stats.ReadMissRate()
	storeMiss := stats.WriteMissRate()
	l2ReadMiss, l2WriteMiss := cache.L2MissRatio()
	brMiss := pred.MispredictRate()
	cyclesPerInstr := 1/spec.ILP +
		mix.Load*(loadMiss*l2HitPenalty+l2ReadMiss*memPenalty) +
		mix.Store*(storeMiss*l1WriteMissPenalty+l2WriteMiss*memWritePenalty) +
		mix.Branch*brMiss*mispredictPenalty
	return Profile{
		Name:            spec.Name,
		IPC:             1 / cyclesPerInstr,
		L1ReadMissRate:  loadMiss,
		L1WriteMissRate: storeMiss,
		BranchMissRate:  brMiss,
		Mix:             mix,
	}
}

// Specs returns the microarchitectural models of the Table VII nodes.
// The memory/branch structures are derived from each implementation:
// see the per-entry comments.
func Specs() map[string]NodeSpec {
	return map[string]NodeSpec{
		// SSD512: streaming image/weight pre-processing plus the
		// per-class ranking sort whose comparisons are data-dependent
		// coin flips — the paper found 71% of its CPU time there.
		"SSD512": {
			Name: "SSD512", ILP: 1.80,
			Mem: MemPattern{
				StreamFrac: 0.12, RandFrac: 0.015, RandBytes: 64 << 10,
				WriteScatterFrac: 0.012, WriteStreamFrac: 0.02,
			},
			Branch:     BranchPattern{RandomFrac: 0.18, BiasedTakenProb: 0.99, Sites: 64},
			StoreShare: 0.12,
		},
		// YOLO host side: tensor layout shuffles stream heavily, almost
		// every branch is a well-behaved loop edge.
		"YOLOv3-416": {
			Name: "YOLOv3-416", ILP: 1.73,
			Mem: MemPattern{
				StreamFrac: 0.29, RandFrac: 0.005, RandBytes: 64 << 10,
				WriteStreamFrac: 0.036,
			},
			Branch:     BranchPattern{RandomFrac: 0, BiasedTakenProb: 0.999, Sites: 16},
			StoreShare: 0.10,
		},
		// euclidean_cluster: k-d tree pointer chasing over a multi-MB
		// point/tree arena, scattered visited-flag writes — worst
		// locality in the table. The code between misses is wide
		// (independent distance computations), hence the high base ILP
		// that the memory stalls then erode.
		"euclidean_cluster": {
			Name: "euclidean_cluster", ILP: 2.72,
			Mem: MemPattern{
				StreamFrac: 0.04, RandFrac: 0.0, RandBytes: 0,
				ChaseFrac: 0.042, ChaseBytes: 2 << 20,
				WriteScatterFrac: 0.052,
			},
			Branch:     BranchPattern{RandomFrac: 0.015, BiasedTakenProb: 0.995, Sites: 48},
			StoreShare: 0.18,
		},
		// ndt_matching: per-point streaming with hash-probe lookups into
		// a voxel-record set whose hot region almost fits in L1; tree-
		// like descents give it a noticeable misprediction rate.
		"ndt_matching": {
			Name: "ndt_matching", ILP: 1.52,
			Mem: MemPattern{
				StreamFrac: 0.05, RandFrac: 0.015, RandBytes: 64 << 10,
				WriteScatterFrac: 0.008, WriteStreamFrac: 0.005,
			},
			Branch:     BranchPattern{RandomFrac: 0.045, BiasedTakenProb: 0.99, Sites: 64},
			StoreShare: 0.15,
		},
		// imm_ukf_pda_tracker: small dense matrices resident in L1, but
		// long dependency chains (Cholesky, sigma-point recombination)
		// cap the achievable IPC.
		"imm_ukf_pda_tracker": {
			Name: "imm_ukf_pda_tracker", ILP: 1.21,
			Mem: MemPattern{
				StreamFrac: 0.001, RandFrac: 0.025, RandBytes: 64 << 10,
				WriteScatterFrac: 0.025, WriteStreamFrac: 0.002,
			},
			Branch:     BranchPattern{RandomFrac: 0.005, BiasedTakenProb: 0.995, Sites: 40},
			StoreShare: 0.20,
		},
		// costmap_generator_obj: dense sequential grid arithmetic, tiny
		// working set per row, predictable loops — compute-bound with
		// the best IPC of the table.
		"costmap_generator_obj": {
			Name: "costmap_generator_obj", ILP: 2.11,
			Mem: MemPattern{
				StreamFrac: 0.012, RandFrac: 0.001, RandBytes: 24 << 10,
				WriteScatterFrac: 0.001, WriteStreamFrac: 0.02,
			},
			Branch:     BranchPattern{RandomFrac: 0, BiasedTakenProb: 0.999, Sites: 24},
			StoreShare: 0.14,
		},
	}
}

// SpecFor resolves a node spec by name.
func SpecFor(name string) (NodeSpec, error) {
	s, ok := Specs()[name]
	if !ok {
		return NodeSpec{}, fmt.Errorf("uarch: no spec for node %q", name)
	}
	return s, nil
}
