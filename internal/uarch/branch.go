package uarch

// GShare is a global-history branch predictor with 2-bit saturating
// counters, the classic baseline that modern predictors refine. Data-
// dependent branches (sort comparisons on unsorted data) defeat it,
// reproducing SSD512's outlier misprediction rate.
type GShare struct {
	historyBits uint
	history     uint64
	table       []uint8 // 2-bit counters, initialized weakly taken
	Accesses    uint64
	Mispredicts uint64
}

// NewGShare builds a predictor with 2^historyBits counters.
func NewGShare(historyBits uint) *GShare {
	if historyBits == 0 || historyBits > 24 {
		panic("uarch: history bits out of range")
	}
	t := make([]uint8, 1<<historyBits)
	for i := range t {
		t[i] = 2 // weakly taken
	}
	return &GShare{historyBits: historyBits, table: t}
}

// Access predicts the branch at pc, then updates with the actual
// outcome; returns true when the prediction was correct.
func (g *GShare) Access(pc uint64, taken bool) bool {
	mask := uint64(len(g.table) - 1)
	idx := (pc ^ g.history) & mask
	pred := g.table[idx] >= 2
	correct := pred == taken
	g.Accesses++
	if !correct {
		g.Mispredicts++
	}
	// Update counter.
	if taken && g.table[idx] < 3 {
		g.table[idx]++
	}
	if !taken && g.table[idx] > 0 {
		g.table[idx]--
	}
	// Update history.
	g.history = (g.history << 1) & mask
	if taken {
		g.history |= 1
	}
	return correct
}

// MispredictRate returns mispredictions / accesses.
func (g *GShare) MispredictRate() float64 {
	if g.Accesses == 0 {
		return 0
	}
	return float64(g.Mispredicts) / float64(g.Accesses)
}
