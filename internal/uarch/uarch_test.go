package uarch

import (
	"testing"

	"repro/internal/mathx"
	"repro/internal/work"
)

func TestCacheSequentialMissesOncePerLine(t *testing.T) {
	c := NewCache(DefaultL1D())
	// 8-byte strides over fresh memory: one miss per 64B line.
	for i := 0; i < 8000; i++ {
		c.Access(uint64(1<<40)+uint64(i*8), false)
	}
	rate := c.Stats.ReadMissRate()
	if rate < 0.115 || rate > 0.135 {
		t.Errorf("sequential miss rate = %v, want ~1/8", rate)
	}
}

func TestCacheHotSetHits(t *testing.T) {
	c := NewCache(DefaultL1D())
	rng := mathx.NewRNG(1)
	// 4 KiB working set fits easily: after warmup, ~0 misses.
	for i := 0; i < 50000; i++ {
		c.Access(uint64(rng.Intn(4096)), false)
	}
	if rate := c.Stats.ReadMissRate(); rate > 0.01 {
		t.Errorf("hot-set miss rate = %v", rate)
	}
}

func TestCacheThrashingWorkingSet(t *testing.T) {
	c := NewCache(DefaultL1D())
	rng := mathx.NewRNG(2)
	// 4 MiB random accesses: mostly misses.
	for i := 0; i < 50000; i++ {
		c.Access(uint64(rng.Intn(4<<20)), false)
	}
	if rate := c.Stats.ReadMissRate(); rate < 0.9 {
		t.Errorf("thrashing miss rate = %v, want ~1", rate)
	}
}

func TestCacheAssociativityConflicts(t *testing.T) {
	// Direct-mapped cache: two lines mapping to the same set thrash.
	c := NewCache(CacheConfig{SizeBytes: 4096, LineBytes: 64, Ways: 1})
	for i := 0; i < 1000; i++ {
		c.Access(0, false)
		c.Access(4096, false) // same set, different tag
	}
	if rate := c.Stats.ReadMissRate(); rate < 0.99 {
		t.Errorf("conflict miss rate = %v", rate)
	}
	// 2-way tolerates the pair.
	c2 := NewCache(CacheConfig{SizeBytes: 4096, LineBytes: 64, Ways: 2})
	for i := 0; i < 1000; i++ {
		c2.Access(0, false)
		c2.Access(4096, false)
	}
	if rate := c2.Stats.ReadMissRate(); rate > 0.01 {
		t.Errorf("2-way conflict miss rate = %v", rate)
	}
}

func TestCacheWriteStats(t *testing.T) {
	c := NewCache(DefaultL1D())
	c.Access(0, true)
	c.Access(0, true)
	if c.Stats.WriteAccesses != 2 || c.Stats.WriteMisses != 1 {
		t.Errorf("write stats = %+v", c.Stats)
	}
}

func TestGSharePredictsBiasedBranches(t *testing.T) {
	g := NewGShare(12)
	rng := mathx.NewRNG(3)
	for i := 0; i < 100000; i++ {
		g.Access(0x400+uint64(rng.Intn(16))*4, rng.Bool(0.98))
	}
	if rate := g.MispredictRate(); rate > 0.05 {
		t.Errorf("biased mispredict rate = %v", rate)
	}
}

func TestGShareDefeatedByRandomBranches(t *testing.T) {
	g := NewGShare(12)
	rng := mathx.NewRNG(4)
	for i := 0; i < 100000; i++ {
		g.Access(0x400, rng.Bool(0.5))
	}
	rate := g.MispredictRate()
	if rate < 0.4 || rate > 0.6 {
		t.Errorf("random mispredict rate = %v, want ~0.5", rate)
	}
}

func TestGShareLearnsPattern(t *testing.T) {
	g := NewGShare(12)
	// Strict alternation is learnable from history.
	for i := 0; i < 10000; i++ {
		g.Access(0x400, i%2 == 0)
	}
	if rate := g.MispredictRate(); rate > 0.05 {
		t.Errorf("alternating pattern mispredict = %v", rate)
	}
}

func TestMixFromWork(t *testing.T) {
	w := work.Work{IntOps: 10, FPOps: 20, LoadOps: 30, StoreOps: 25, BranchOps: 15}
	m := MixFromWork(w)
	if m.Int != 0.1 || m.FP != 0.2 || m.Load != 0.3 || m.Store != 0.25 || m.Branch != 0.15 {
		t.Errorf("mix = %+v", m)
	}
	if MixFromWork(work.Work{}) != (InstrMix{}) {
		t.Error("empty work should give zero mix")
	}
}

// tableVIIMixes approximates Fig. 7's measured mixes for the pipeline
// model inputs.
func tableVIIMixes() map[string]InstrMix {
	return map[string]InstrMix{
		"SSD512":                {Int: 0.23, FP: 0.15, Load: 0.30, Store: 0.12, Branch: 0.20},
		"YOLOv3-416":            {Int: 0.25, FP: 0.20, Load: 0.28, Store: 0.12, Branch: 0.15},
		"euclidean_cluster":     {Int: 0.18, FP: 0.15, Load: 0.32, Store: 0.18, Branch: 0.17},
		"ndt_matching":          {Int: 0.14, FP: 0.19, Load: 0.36, Store: 0.16, Branch: 0.15},
		"imm_ukf_pda_tracker":   {Int: 0.22, FP: 0.22, Load: 0.24, Store: 0.14, Branch: 0.18},
		"costmap_generator_obj": {Int: 0.33, FP: 0.27, Load: 0.18, Store: 0.10, Branch: 0.12},
	}
}

func TestSimulateReproducesTableVIIShape(t *testing.T) {
	mixes := tableVIIMixes()
	profiles := map[string]Profile{}
	for name, spec := range Specs() {
		profiles[name] = Simulate(spec, mixes[name], 400000, 400000, 42)
	}

	p := func(n string) Profile { return profiles[n] }

	// Ordering relations from Table VII.
	if !(p("euclidean_cluster").L1ReadMissRate > p("SSD512").L1ReadMissRate) {
		t.Errorf("euclid read miss (%v) should exceed SSD512 (%v)",
			p("euclidean_cluster").L1ReadMissRate, p("SSD512").L1ReadMissRate)
	}
	if !(p("euclidean_cluster").L1WriteMissRate > 3*p("ndt_matching").L1WriteMissRate) {
		t.Errorf("euclid write miss (%v) should dwarf ndt (%v)",
			p("euclidean_cluster").L1WriteMissRate, p("ndt_matching").L1WriteMissRate)
	}
	if !(p("SSD512").BranchMissRate > 0.05) {
		t.Errorf("SSD512 branch miss = %v, want ~0.1", p("SSD512").BranchMissRate)
	}
	if !(p("YOLOv3-416").BranchMissRate < 0.01) {
		t.Errorf("YOLO branch miss = %v, want tiny", p("YOLOv3-416").BranchMissRate)
	}
	if !(p("costmap_generator_obj").IPC > 1.8) {
		t.Errorf("costmap IPC = %v, want ~2", p("costmap_generator_obj").IPC)
	}
	// SSD512 worst IPC of the table.
	for name, prof := range profiles {
		if name == "SSD512" {
			continue
		}
		if prof.IPC <= p("SSD512").IPC {
			t.Errorf("%s IPC (%v) should exceed SSD512's (%v)", name, prof.IPC, p("SSD512").IPC)
		}
	}
	// Magnitudes within a factor of ~2 of the paper's numbers.
	checks := []struct {
		name  string
		field func(Profile) float64
		lo    float64
		hi    float64
	}{
		{"SSD512", func(p Profile) float64 { return p.BranchMissRate }, 0.05, 0.15},
		{"SSD512", func(p Profile) float64 { return p.IPC }, 0.7, 1.4},
		{"euclidean_cluster", func(p Profile) float64 { return p.L1ReadMissRate }, 0.023, 0.09},
		{"euclidean_cluster", func(p Profile) float64 { return p.L1WriteMissRate }, 0.025, 0.10},
		{"ndt_matching", func(p Profile) float64 { return p.L1ReadMissRate }, 0.006, 0.03},
		{"costmap_generator_obj", func(p Profile) float64 { return p.L1ReadMissRate }, 0.0, 0.006},
		{"costmap_generator_obj", func(p Profile) float64 { return p.IPC }, 1.7, 2.6},
		{"imm_ukf_pda_tracker", func(p Profile) float64 { return p.IPC }, 0.9, 1.5},
	}
	for _, c := range checks {
		v := c.field(profiles[c.name])
		if v < c.lo || v > c.hi {
			t.Errorf("%s: value %v outside [%v, %v]", c.name, v, c.lo, c.hi)
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	spec, err := SpecFor("ndt_matching")
	if err != nil {
		t.Fatal(err)
	}
	mix := tableVIIMixes()["ndt_matching"]
	a := Simulate(spec, mix, 100000, 100000, 7)
	b := Simulate(spec, mix, 100000, 100000, 7)
	if a != b {
		t.Error("simulation not deterministic")
	}
}

func TestSpecForUnknown(t *testing.T) {
	if _, err := SpecFor("nope"); err == nil {
		t.Error("unknown spec should fail")
	}
}

func TestCachePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewCache(CacheConfig{})
}

func TestGSharePanicsOnBadBits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewGShare(0)
}

func TestHierarchyLevels(t *testing.T) {
	h := NewHierarchy(DefaultL1D(), DefaultL2())
	// First touch: memory. Second: L1.
	if got := h.Access(0x1000, false); got != HitMemory {
		t.Errorf("cold access = %v", got)
	}
	if got := h.Access(0x1000, false); got != HitL1 {
		t.Errorf("warm access = %v", got)
	}
	// A working set larger than L1 but inside L2 serves from L2 after
	// warmup.
	rng := mathx.NewRNG(5)
	const ws = 256 << 10
	for i := 0; i < 200000; i++ {
		h.Access(uint64(1<<32)+uint64(rng.Intn(ws)), false)
	}
	l2Read, _ := h.L2MissRatio()
	l1Miss := h.L1.Stats.ReadMissRate()
	if l1Miss < 0.5 {
		t.Errorf("256KB set should thrash a 32KB L1: miss=%v", l1Miss)
	}
	if l2Read > 0.05 {
		t.Errorf("256KB set should live in the 512KB L2: l2 miss ratio=%v", l2Read)
	}
}

func TestHierarchyMemoryBound(t *testing.T) {
	h := NewHierarchy(DefaultL1D(), DefaultL2())
	rng := mathx.NewRNG(6)
	// 8 MB working set misses both levels.
	for i := 0; i < 200000; i++ {
		h.Access(uint64(rng.Intn(8<<20)), false)
	}
	l2Read, _ := h.L2MissRatio()
	if l2Read < 0.8 {
		t.Errorf("8MB random should miss L2: ratio=%v", l2Read)
	}
}
