package fleet

import (
	"container/heap"
	"fmt"
	"sort"
	"time"
)

// Admission disciplines. Fair-share is the default: per-tenant
// token-bucket rate limits at the door and deficit-round-robin
// dispatch behind it, so one tenant's burst fills only its own queue
// and costs only its own turns. The global-priority mode is the PR-8
// discipline, kept selectable for A/B comparison (the starvation test
// pins fair-share against it) and for single-tenant deployments.
const (
	AdmissionFair     = "fair"
	AdmissionPriority = "priority"
)

// TenantLimit is one tenant's admission contract: Rate is the
// token-bucket refill in jobs/second (0 = unlimited), Burst the bucket
// capacity (0 = the service default), Weight the deficit-round-robin
// share (0 = 1; a weight-2 tenant is dispatched twice per round).
// Limits set at runtime are journaled, so they survive restarts.
type TenantLimit struct {
	Rate   float64 `json:"rate"`
	Burst  int     `json:"burst,omitempty"`
	Weight int     `json:"weight,omitempty"`
}

// ThrottleError rejects a submission that exceeded its tenant's rate
// limit; RetryAfter is when the bucket next holds a whole token. It
// matches ErrTenantThrottled and surfaces as an HTTP 429 whose
// Retry-After header is RetryAfter rounded up to whole seconds.
type ThrottleError struct {
	Tenant     string
	RetryAfter time.Duration
}

func (e *ThrottleError) Error() string {
	return fmt.Sprintf("fleet: tenant %q rate limit exceeded (retry in %s)", e.Tenant, e.RetryAfter)
}

// Unwrap makes errors.Is(err, ErrTenantThrottled) match.
func (e *ThrottleError) Unwrap() error { return ErrTenantThrottled }

// bucket is one tenant's token bucket. First use primes it full, so a
// tenant's initial burst up to Burst is admitted before the rate
// gate engages.
type bucket struct {
	tokens float64
	last   time.Time
	primed bool
}

// take refills by elapsed wall clock and spends one token. When the
// bucket is dry it reports how long until a whole token accrues.
func (b *bucket) take(now time.Time, rate float64, burst int) (time.Duration, bool) {
	if rate <= 0 {
		return 0, true
	}
	if burst < 1 {
		burst = 1
	}
	if !b.primed {
		b.tokens = float64(burst)
		b.last = now
		b.primed = true
	}
	if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
		b.tokens += rate * elapsed
		if b.tokens > float64(burst) {
			b.tokens = float64(burst)
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	wait := time.Duration((1 - b.tokens) / rate * float64(time.Second))
	return wait, false
}

// tenantQ is one tenant's pending queue (priority-ordered within the
// tenant) plus its deficit-round-robin credit.
type tenantQ struct {
	heap    jobHeap
	deficit float64
}

// admitQueue is the pending-job structure behind both admission
// disciplines. In priority mode it is the PR-8 global heap (priority
// desc, admission seq asc). In fair mode each tenant owns a heap and
// dispatch walks an activation ring with deficit round-robin: a tenant
// at the head earns Weight credits and is served while credit lasts,
// then the ring advances — so a tenant that queued 100 jobs still
// yields the next turn to every other active tenant. Total occupancy
// is still bounded by the service's global QueueDepth.
type admitQueue struct {
	fair    bool
	weight  func(tenant string) int
	global  jobHeap
	tenants map[string]*tenantQ
	ring    []string // active (non-empty) tenants, activation order
	ringIdx int
	size    int
}

func newAdmitQueue(fair bool, weight func(string) int) *admitQueue {
	return &admitQueue{fair: fair, weight: weight, tenants: make(map[string]*tenantQ)}
}

// Len is the total number of queued jobs across tenants.
func (q *admitQueue) Len() int { return q.size }

// push enqueues an admitted record, activating its tenant if needed.
func (q *admitQueue) push(rec *Record) {
	q.size++
	if !q.fair {
		heap.Push(&q.global, rec)
		return
	}
	tq := q.tenants[rec.Tenant]
	if tq == nil {
		tq = &tenantQ{}
		q.tenants[rec.Tenant] = tq
	}
	if tq.heap.Len() == 0 {
		q.ring = append(q.ring, rec.Tenant)
	}
	heap.Push(&tq.heap, rec)
}

// pop dequeues the next record to dispatch, or nil if empty.
func (q *admitQueue) pop() *Record {
	if q.size == 0 {
		return nil
	}
	if !q.fair {
		q.size--
		return heap.Pop(&q.global).(*Record)
	}
	for len(q.ring) > 0 {
		if q.ringIdx >= len(q.ring) {
			q.ringIdx = 0
		}
		name := q.ring[q.ringIdx]
		tq := q.tenants[name]
		if tq == nil || tq.heap.Len() == 0 {
			q.deactivate(q.ringIdx)
			continue
		}
		if tq.deficit < 1 {
			w := 1
			if q.weight != nil {
				if got := q.weight(name); got > 1 {
					w = got
				}
			}
			tq.deficit += float64(w)
		}
		rec := heap.Pop(&tq.heap).(*Record)
		tq.deficit--
		q.size--
		if tq.heap.Len() == 0 {
			q.deactivate(q.ringIdx)
		} else if tq.deficit < 1 {
			q.ringIdx++
		}
		return rec
	}
	return nil
}

// deactivate removes ring[i], keeping the rotation position stable.
func (q *admitQueue) deactivate(i int) {
	name := q.ring[i]
	if tq := q.tenants[name]; tq != nil {
		tq.deficit = 0
	}
	q.ring = append(q.ring[:i], q.ring[i+1:]...)
	if q.ringIdx > i {
		q.ringIdx--
	}
	if q.ringIdx >= len(q.ring) {
		q.ringIdx = 0
	}
}

// evictBelow removes every queued job with priority below the floor
// (the shedding ladder's queue eviction), returning them in admission
// order for deterministic finish accounting.
func (q *admitQueue) evictBelow(floor int) []*Record {
	var shed []*Record
	if !q.fair {
		var keep jobHeap
		for _, rec := range q.global {
			if rec.Job.Priority < floor {
				shed = append(shed, rec)
			} else {
				keep = append(keep, rec)
			}
		}
		if len(shed) > 0 {
			q.global = keep
			heap.Init(&q.global)
		}
	} else {
		names := make([]string, 0, len(q.tenants))
		for name := range q.tenants {
			names = append(names, name)
		}
		sort.Strings(names)
		changed := false
		for _, name := range names {
			tq := q.tenants[name]
			var keep jobHeap
			for _, rec := range tq.heap {
				if rec.Job.Priority < floor {
					shed = append(shed, rec)
					changed = true
				} else {
					keep = append(keep, rec)
				}
			}
			tq.heap = keep
			heap.Init(&tq.heap)
		}
		if changed {
			q.rebuildRing()
		}
	}
	q.size -= len(shed)
	sort.Slice(shed, func(i, j int) bool { return shed[i].seq < shed[j].seq })
	return shed
}

// drain removes and returns every queued job in admission order (the
// non-durable shutdown path fails them explicitly).
func (q *admitQueue) drain() []*Record {
	var out []*Record
	if !q.fair {
		out = append(out, q.global...)
		q.global = nil
	} else {
		for _, tq := range q.tenants {
			out = append(out, tq.heap...)
			tq.heap = nil
			tq.deficit = 0
		}
		q.ring = nil
		q.ringIdx = 0
	}
	q.size = 0
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// rebuildRing drops emptied tenants from the rotation after eviction.
func (q *admitQueue) rebuildRing() {
	var ring []string
	for _, name := range q.ring {
		if tq := q.tenants[name]; tq != nil && tq.heap.Len() > 0 {
			ring = append(ring, name)
		} else if tq != nil {
			tq.deficit = 0
		}
	}
	q.ring = ring
	q.ringIdx = 0
}
