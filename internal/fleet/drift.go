package fleet

import (
	"sort"
	"strings"

	"repro/internal/mathx"
)

// Per-scenario virtual-time drift detection. Wall-clock completion
// latency confounds host contention with simulation cost; virtual-time
// p99 is deterministic per job key, so a scenario family whose recent
// runs drift above their own established baseline signals a real
// regression (new seeds or params behaving worse), not a busy host.
// Families are keyed by the canonical job key prefix up to the seed —
// scenario + params + nothing run-specific.

const (
	// baselineMin completed samples establish a family's baseline and
	// are the minimum recent window before drift is judged.
	baselineMin = 8
	// baselineWindow bounds the recent sliding window per family.
	baselineWindow = 32
)

// baseline is one scenario family's virtual-time p99 reference: the
// first baselineMin observations freeze the base, later ones feed a
// sliding window compared against it.
type baseline struct {
	base   []float64
	recent []float64
}

// keyPrefix maps a canonical job key to its scenario family: the key
// up to (excluding) the seed field.
func keyPrefix(key string) string {
	if i := strings.Index(key, "|seed="); i >= 0 {
		return key[:i]
	}
	return key
}

// observeVirtualLocked feeds one completed run's virtual-time p99 into
// its family baseline. Callers hold s.mu.
func (s *Service) observeVirtualLocked(key string, e2e float64) {
	if e2e <= 0 {
		return
	}
	prefix := keyPrefix(key)
	b := s.baselines[prefix]
	if b == nil {
		b = &baseline{}
		s.baselines[prefix] = b
	}
	if len(b.base) < baselineMin {
		b.base = append(b.base, e2e)
		return
	}
	b.recent = append(b.recent, e2e)
	if len(b.recent) > baselineWindow {
		b.recent = b.recent[len(b.recent)-baselineWindow:]
	}
}

// driftedVirtualLocked lists scenario families whose recent virtual
// p99 exceeds DriftFactor × their baseline p99, sorted. Callers hold
// s.mu.
func (s *Service) driftedVirtualLocked() []string {
	var drifted []string
	for prefix, b := range s.baselines {
		if len(b.base) < baselineMin || len(b.recent) < baselineMin {
			continue
		}
		if mathx.Quantile(b.recent, 0.99) > s.cfg.DriftFactor*mathx.Quantile(b.base, 0.99) {
			drifted = append(drifted, prefix)
		}
	}
	sort.Strings(drifted)
	return drifted
}
