package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/autoware"
	"repro/internal/faults"
	"repro/internal/scenario"
	"repro/internal/testenv"
	"repro/internal/world"
)

// runnerFunc adapts a function to the Runner interface for tests.
type runnerFunc func(ctx context.Context, spec scenario.Spec, det autoware.Detector, d time.Duration) (*RunResult, error)

func (f runnerFunc) Run(ctx context.Context, spec scenario.Spec, det autoware.Detector, d time.Duration) (*RunResult, error) {
	return f(ctx, spec, det, d)
}

// passResolve resolves any name to a bare spec, so fake-runner tests
// exercise the service machinery without the scenario registry.
func passResolve(name string) (scenario.Spec, error) {
	return scenario.Spec{Name: name}, nil
}

// mustNew builds a service or fails the test.
func mustNew(t *testing.T, cfg Config) *Service {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return svc
}

func waitDone(t *testing.T, s *Service, id int64) Record {
	t.Helper()
	// Generous: one real job is two full simulation legs, and the race
	// detector slows them by an order of magnitude.
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	rec, err := s.Wait(ctx, id)
	if err != nil {
		t.Fatalf("waiting for job %d: %v", id, err)
	}
	return rec
}

// TestFleetIsolationUnderChaos is the headline robustness contract:
// with per-vehicle crash and stall faults injected into some tenants,
// the fleet service stays up, unaffected tenants' reports are
// byte-identical to solo runs, and saturating the bounded admission
// queue produces explicit rejections.
func TestFleetIsolationUnderChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations")
	}
	const dur = 8 * time.Second

	// The ground truth: the scenario run solo, outside the service.
	spec, err := scenario.ByName(scenario.NameCameraStall)
	if err != nil {
		t.Fatal(err)
	}
	solo, err := scenario.RunWithEnv(testenv.Scenario(), testenv.Map(), spec, autoware.DetectorSSD300, dur)
	if err != nil {
		t.Fatal(err)
	}
	var soloRep bytes.Buffer
	solo.WriteReport(&soloRep)

	svc := mustNew(t, Config{
		Workers:     2,
		QueueDepth:  4,
		Duration:    dur,
		RetryBudget: 1,
		RetryBase:   10 * time.Millisecond,
		AllowChaos:  true,
		// Park the ladder so a full queue answers ErrFleetSaturated —
		// the explicit-rejection contract under test here; ladder
		// transitions get their own test.
		ShedHighWater:  2,
		DrainHighWater: 2,
	})
	defer svc.Close()

	// Chaos tenants: mallory's vehicle panics on every attempt (crash
	// isolation + dead letter); sia's stalls until its deadline
	// (timeout isolation). Both submitted first so they share the fleet
	// with alice's healthy run.
	mallory, err := svc.Submit(Job{
		Tenant: "mallory", Priority: 2, Scenario: scenario.NameCameraStall, Seed: 7,
		Chaos: &Chaos{Kind: faults.KindCrash, Attempts: 99},
	})
	if err != nil {
		t.Fatal(err)
	}
	sia, err := svc.Submit(Job{
		Tenant: "sia", Priority: 2, Scenario: scenario.NameCameraStall, Seed: 8,
		Deadline: 300 * time.Millisecond,
		Chaos:    &Chaos{Kind: faults.KindStall, Attempts: 99},
	})
	if err != nil {
		t.Fatal(err)
	}
	alice, err := svc.Submit(Job{Tenant: "alice", Priority: 1, Scenario: scenario.NameCameraStall})
	if err != nil {
		t.Fatal(err)
	}

	malloryRec := waitDone(t, svc, mallory.ID)
	if malloryRec.State != StateFailed || !malloryRec.DeadLetter {
		t.Errorf("mallory: state %s dead-letter %v, want failed dead-letter", malloryRec.State, malloryRec.DeadLetter)
	}
	for _, a := range malloryRec.Attempts {
		if a.Outcome != "crash" {
			t.Errorf("mallory attempt outcome %q, want crash", a.Outcome)
		}
	}
	if want := 2; len(malloryRec.Attempts) != want { // 1 try + 1 retry
		t.Errorf("mallory made %d attempts, want %d", len(malloryRec.Attempts), want)
	}
	siaRec := waitDone(t, svc, sia.ID)
	if siaRec.State != StateFailed {
		t.Errorf("sia: state %s, want failed (deadline)", siaRec.State)
	}
	if len(siaRec.Attempts) == 0 || siaRec.Attempts[0].Outcome != "timeout" {
		t.Errorf("sia attempts %+v, want a timeout outcome", siaRec.Attempts)
	}

	// Tenant isolation: alice's report is byte-identical to the solo
	// run despite sharing the fleet with crashing and stalling tenants.
	aliceRec := waitDone(t, svc, alice.ID)
	if aliceRec.State != StateDone {
		t.Fatalf("alice: state %s (%s), want done", aliceRec.State, aliceRec.Err)
	}
	if !bytes.Equal(aliceRec.Report(), soloRep.Bytes()) {
		t.Errorf("alice's fleet report diverged from the solo run (%d vs %d bytes)",
			len(aliceRec.Report()), soloRep.Len())
	}

	// Determinism under caching: a duplicate submission is served from
	// the cache, still byte-identical.
	bob, err := svc.Submit(Job{Tenant: "bob", Priority: 1, Scenario: scenario.NameCameraStall})
	if err != nil {
		t.Fatal(err)
	}
	bobRec := waitDone(t, svc, bob.ID)
	if !bobRec.CacheHit {
		t.Errorf("bob's duplicate job missed the cache")
	}
	if !bytes.Equal(bobRec.Report(), soloRep.Bytes()) {
		t.Errorf("bob's cached report diverged from the solo run")
	}

	// Saturation: two stall vehicles pin both workers, four more jobs
	// fill the bounded queue, and the next submission is explicitly
	// rejected — never buffered without bound.
	for i := 0; i < 2; i++ {
		if _, err := svc.Submit(Job{
			Tenant: "burst", Priority: 2, Scenario: "x", Seed: uint64(100 + i),
			Deadline: time.Second, Chaos: &Chaos{Kind: faults.KindStall, Attempts: 99},
		}); err != nil {
			t.Fatalf("burst blocker %d: %v", i, err)
		}
	}
	var sawSaturated bool
	for i := 0; i < 8; i++ {
		_, err := svc.Submit(Job{
			Tenant: "burst", Priority: 2, Scenario: "x", Seed: uint64(200 + i),
			Deadline: time.Second, Chaos: &Chaos{Kind: faults.KindCrash, Attempts: 99},
		})
		if errors.Is(err, ErrFleetSaturated) {
			sawSaturated = true
			break
		}
		if err != nil {
			t.Fatalf("burst job %d: unexpected error %v", i, err)
		}
	}
	if !sawSaturated {
		t.Errorf("filling the bounded queue never produced ErrFleetSaturated")
	}

	// The service is still up and accounting: /fleetz answers, the
	// healthy tenants' numbers are intact, the chaos is in the ledger.
	st := svc.Fleetz()
	if st.Fleet.Completed < 2 {
		t.Errorf("fleet completed %d jobs, want >= 2 (alice + bob)", st.Fleet.Completed)
	}
	if st.Fleet.Rejected < 1 {
		t.Errorf("fleet rejected %d, want >= 1 (saturation)", st.Fleet.Rejected)
	}
	if st.PoolPanics < 2 {
		t.Errorf("pool captured %d panics, want >= 2 (mallory's attempts)", st.PoolPanics)
	}
	if len(st.DeadLetters) < 1 {
		t.Errorf("no dead letters recorded; mallory's job should be one")
	}
	var aliceStatus, malloryStatus *TenantStatus
	for i := range st.Tenants {
		switch st.Tenants[i].Tenant {
		case "alice":
			aliceStatus = &st.Tenants[i]
		case "mallory":
			malloryStatus = &st.Tenants[i]
		}
	}
	if aliceStatus == nil || aliceStatus.Completed != 1 || aliceStatus.Failed != 0 {
		t.Errorf("alice tenant status %+v, want 1 completed 0 failed", aliceStatus)
	}
	if malloryStatus == nil || malloryStatus.Failed != 1 || malloryStatus.Retries != 1 {
		t.Errorf("mallory tenant status %+v, want 1 failed 1 retry", malloryStatus)
	}
}

// TestFleetDeadlineFinal proves the job deadline propagates as context
// cancellation into the attempt and is final: no retry resurrects a
// job whose wall-clock budget is spent.
func TestFleetDeadlineFinal(t *testing.T) {
	svc := mustNew(t, Config{
		Workers: 1, QueueDepth: 4, RetryBudget: 3, RetryBase: 5 * time.Millisecond,
		Resolve: passResolve,
		Runner: runnerFunc(func(ctx context.Context, spec scenario.Spec, det autoware.Detector, d time.Duration) (*RunResult, error) {
			<-ctx.Done() // a vehicle that never finishes on its own
			return nil, ctx.Err()
		}),
	})
	defer svc.Close()

	start := time.Now()
	rec, err := svc.Submit(Job{Tenant: "slow", Scenario: "hang", Deadline: 60 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, svc, rec.ID)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("deadline job took %v to fail; cancellation did not propagate", elapsed)
	}
	if final.State != StateFailed || !strings.Contains(final.Err, "deadline") {
		t.Errorf("state %s err %q, want failed with a deadline error", final.State, final.Err)
	}
	if len(final.Attempts) != 1 {
		t.Errorf("deadline job made %d attempts, want exactly 1 (deadline is final, not transient)", len(final.Attempts))
	}
}

// TestFleetAttemptTimeoutRetries distinguishes the two timers: an
// attempt timeout is transient (the job retries on its backoff
// schedule), while the job deadline is final.
func TestFleetAttemptTimeoutRetries(t *testing.T) {
	var calls atomic.Int64
	svc := mustNew(t, Config{
		Workers: 1, QueueDepth: 4, RetryBudget: 2, RetryBase: 5 * time.Millisecond,
		AttemptTimeout: 40 * time.Millisecond,
		Resolve:        passResolve,
		Runner: runnerFunc(func(ctx context.Context, spec scenario.Spec, det autoware.Detector, d time.Duration) (*RunResult, error) {
			if calls.Add(1) == 1 {
				<-ctx.Done() // first attempt stalls past the attempt timeout
				return nil, ctx.Err()
			}
			return &RunResult{Report: []byte("ok\n"), E2EP99: 1}, nil
		}),
	})
	defer svc.Close()

	rec, err := svc.Submit(Job{Tenant: "flaky", Scenario: "stall-once"})
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, svc, rec.ID)
	if final.State != StateDone {
		t.Fatalf("state %s (%s), want done after one timed-out attempt", final.State, final.Err)
	}
	if final.Retries != 1 || len(final.Attempts) != 2 {
		t.Errorf("retries=%d attempts=%d, want 1 retry over 2 attempts", final.Retries, len(final.Attempts))
	}
	if final.Attempts[0].Outcome != "timeout" || final.Attempts[1].Outcome != "ok" {
		t.Errorf("attempt outcomes %+v, want [timeout ok]", final.Attempts)
	}
}

// TestFleetPanicIsolation proves a panicking vehicle costs exactly its
// own job: the panic is captured as the attempt error, the job dead-
// letters after its retry budget, and the service keeps serving other
// tenants on the same workers.
func TestFleetPanicIsolation(t *testing.T) {
	svc := mustNew(t, Config{
		Workers: 1, QueueDepth: 8, RetryBudget: 1, RetryBase: 2 * time.Millisecond,
		Resolve: passResolve,
		Runner: runnerFunc(func(ctx context.Context, spec scenario.Spec, det autoware.Detector, d time.Duration) (*RunResult, error) {
			if spec.Name == "corrupt" {
				panic("corrupt scenario state")
			}
			return &RunResult{Report: []byte("report:" + spec.Name + "\n"), E2EP99: 2}, nil
		}),
	})
	defer svc.Close()

	evil, err := svc.Submit(Job{Tenant: "evil", Scenario: "corrupt"})
	if err != nil {
		t.Fatal(err)
	}
	good, err := svc.Submit(Job{Tenant: "good", Scenario: "healthy"})
	if err != nil {
		t.Fatal(err)
	}

	evilRec := waitDone(t, svc, evil.ID)
	if evilRec.State != StateFailed || !evilRec.DeadLetter {
		t.Errorf("evil: state %s dead-letter %v, want failed dead-letter", evilRec.State, evilRec.DeadLetter)
	}
	// Records carry error text; the dead-letter error must name the
	// exhausted retry budget.
	if !strings.Contains(evilRec.Err, ErrRetriesExhausted.Error()) {
		t.Errorf("evil err %q, want wrapped ErrRetriesExhausted", evilRec.Err)
	}
	goodRec := waitDone(t, svc, good.ID)
	if goodRec.State != StateDone || string(goodRec.Report()) != "report:healthy\n" {
		t.Errorf("good tenant's job did not survive the neighbour's panic: %+v", goodRec)
	}
	if got := svc.Fleetz().PoolPanics; got != 2 {
		t.Errorf("pool recorded %d panics, want 2 (evil's two attempts)", got)
	}
}

// TestFleetLadder walks the degradation ladder end to end: nominal
// under light load, shedding (evicting and rejecting best-effort
// priority) past the shed high-water mark, draining past the drain
// mark, and back to nominal once the backlog clears.
func TestFleetLadder(t *testing.T) {
	release := make(chan struct{})
	started := make(chan string, 16)
	svc := mustNew(t, Config{
		Workers: 1, QueueDepth: 4, RetryBudget: 1, RetryBase: time.Millisecond,
		ShedHighWater: 0.5, DrainHighWater: 0.9, LowWater: 0.1, ShedPriority: 1,
		Resolve: passResolve,
		Runner: runnerFunc(func(ctx context.Context, spec scenario.Spec, det autoware.Detector, d time.Duration) (*RunResult, error) {
			started <- spec.Name
			select {
			case <-release:
			case <-ctx.Done():
			}
			return &RunResult{Report: []byte("ok\n")}, nil
		}),
	})
	defer svc.Close()

	// Occupy the single worker so everything after queues.
	blocker, err := svc.Submit(Job{Tenant: "t", Priority: 5, Scenario: "blocker"})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("blocker never started")
	}
	if got := svc.State(); got != LadderNominal {
		t.Fatalf("state %s, want nominal under light load", got)
	}

	// One best-effort job queues while nominal...
	bestEffort, err := svc.Submit(Job{Tenant: "t", Priority: 0, Scenario: "cheap"})
	if err != nil {
		t.Fatal(err)
	}
	// ...then a protected job pushes occupancy to the shed mark: the
	// ladder enters shedding and evicts the queued best-effort job.
	if _, err := svc.Submit(Job{Tenant: "t", Priority: 5, Scenario: "p1"}); err != nil {
		t.Fatal(err)
	}
	if got := svc.State(); got != LadderShedding {
		t.Fatalf("state %s, want shedding at %d/%d occupancy", got, 2, 4)
	}
	shedRec := waitDone(t, svc, bestEffort.ID)
	if shedRec.State != StateShed {
		t.Errorf("queued best-effort job state %s, want shed", shedRec.State)
	}
	// New best-effort submissions are rejected while shedding…
	if _, err := svc.Submit(Job{Tenant: "t", Priority: 0, Scenario: "cheap2"}); !errors.Is(err, ErrFleetShedding) {
		t.Errorf("best-effort submit while shedding: err %v, want ErrFleetShedding", err)
	}
	// …but protected-priority load is still admitted, up to draining.
	for i := 0; i < 3; i++ {
		if _, err := svc.Submit(Job{Tenant: "t", Priority: 5, Scenario: fmt.Sprintf("p%d", 2+i)}); err != nil {
			t.Fatalf("protected job %d: %v", i, err)
		}
	}
	if got := svc.State(); got != LadderDraining {
		t.Fatalf("state %s, want draining with the queue full", got)
	}
	if _, err := svc.Submit(Job{Tenant: "t", Priority: 9, Scenario: "vip"}); !errors.Is(err, ErrFleetDraining) {
		t.Errorf("submit while draining: err %v, want ErrFleetDraining even at high priority", err)
	}

	// Clear the backlog: the ladder steps back down to nominal and the
	// service admits best-effort load again.
	close(release)
	waitDone(t, svc, blocker.ID)
	deadline := time.Now().Add(10 * time.Second)
	for svc.State() != LadderNominal {
		if time.Now().After(deadline) {
			t.Fatalf("ladder stuck at %s after the backlog drained", svc.State())
		}
		time.Sleep(5 * time.Millisecond)
	}
	again, err := svc.Submit(Job{Tenant: "t", Priority: 0, Scenario: "cheap3"})
	if err != nil {
		t.Fatalf("best-effort submit after recovery: %v", err)
	}
	if rec := waitDone(t, svc, again.ID); rec.State != StateDone {
		t.Errorf("post-recovery job state %s, want done", rec.State)
	}
}

// TestFleetCache proves the result cache serves duplicate job keys
// without re-simulation and distinguishes keys by seed.
func TestFleetCache(t *testing.T) {
	var runs atomic.Int64
	svc := mustNew(t, Config{
		Workers: 1, QueueDepth: 8,
		Resolve: passResolve,
		Runner: runnerFunc(func(ctx context.Context, spec scenario.Spec, det autoware.Detector, d time.Duration) (*RunResult, error) {
			runs.Add(1)
			return &RunResult{Report: []byte(fmt.Sprintf("report seed=%d\n", spec.Seed)), E2EP99: 3}, nil
		}),
	})
	defer svc.Close()

	first, err := svc.Submit(Job{Tenant: "a", Scenario: "s", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	firstRec := waitDone(t, svc, first.ID)

	dup, err := svc.Submit(Job{Tenant: "b", Scenario: "s", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dupRec := waitDone(t, svc, dup.ID)
	if !dupRec.CacheHit {
		t.Errorf("duplicate key was re-run instead of cached")
	}
	if !bytes.Equal(dupRec.Report(), firstRec.Report()) {
		t.Errorf("cached report differs from the original")
	}

	other, err := svc.Submit(Job{Tenant: "a", Scenario: "s", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rec := waitDone(t, svc, other.ID); rec.CacheHit {
		t.Errorf("different seed hit the cache; the key must include the seed")
	}
	if got := runs.Load(); got != 2 {
		t.Errorf("runner executed %d times, want 2 (one per distinct key)", got)
	}
}

// TestFleetValidation pins the admission-time rejections.
func TestFleetValidation(t *testing.T) {
	svc := mustNew(t, Config{Workers: 1, QueueDepth: 2, Resolve: passResolve,
		Runner: runnerFunc(func(ctx context.Context, spec scenario.Spec, det autoware.Detector, d time.Duration) (*RunResult, error) {
			return &RunResult{Report: []byte("ok\n")}, nil
		})})
	defer svc.Close()

	cases := []Job{
		{},                           // neither scenario nor params
		{Scenario: "a", Params: "b"}, // both
		{Scenario: "a", Duration: -time.Second},
		{Scenario: "a", Chaos: &Chaos{Kind: faults.KindCrash, Attempts: 1}}, // chaos disabled
	}
	for i, job := range cases {
		if _, err := svc.Submit(job); !errors.Is(err, ErrBadJob) {
			t.Errorf("case %d: err %v, want ErrBadJob", i, err)
		}
	}
}

// TestFleetCloseFailsQueued proves shutdown is explicit: queued jobs
// fail with the closed sentinel, and new submissions are rejected.
func TestFleetCloseFailsQueued(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	svc := mustNew(t, Config{Workers: 1, QueueDepth: 4, Resolve: passResolve,
		Runner: runnerFunc(func(ctx context.Context, spec scenario.Spec, det autoware.Detector, d time.Duration) (*RunResult, error) {
			started <- struct{}{}
			<-release
			return &RunResult{Report: []byte("ok\n")}, nil
		})})

	blocker, err := svc.Submit(Job{Tenant: "t", Scenario: "blocker"})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := svc.Submit(Job{Tenant: "t", Scenario: "queued"})
	if err != nil {
		t.Fatal(err)
	}

	closed := make(chan struct{})
	go func() { svc.Close(); close(closed) }()
	// The queued job fails promptly; the in-flight blocker is allowed
	// to finish once released.
	queuedRec := waitDone(t, svc, queued.ID)
	if queuedRec.State != StateFailed || !strings.Contains(queuedRec.Err, "closed") {
		t.Errorf("queued job at shutdown: state %s err %q, want failed/closed", queuedRec.State, queuedRec.Err)
	}
	close(release)
	<-closed
	if rec := waitDone(t, svc, blocker.ID); rec.State != StateDone {
		t.Errorf("in-flight job state %s after Close, want done (drained, not killed)", rec.State)
	}
	if _, err := svc.Submit(Job{Tenant: "t", Scenario: "late"}); !errors.Is(err, ErrFleetClosed) {
		t.Errorf("submit after Close: err %v, want ErrFleetClosed", err)
	}
}

// TestFleetParamsJobs covers the params-line job path: a canonical
// world-params line resolves to a guarded+supervised spec over that
// generated world, and a malformed line fails the job (not the
// service) with the validation sentinel.
func TestFleetParamsJobs(t *testing.T) {
	line := world.MarshalParams(world.DefaultScenarioConfig())
	var got scenario.Spec
	svc := mustNew(t, Config{
		Workers: 1, QueueDepth: 4,
		Runner: runnerFunc(func(ctx context.Context, spec scenario.Spec, det autoware.Detector, d time.Duration) (*RunResult, error) {
			got = spec
			return &RunResult{Report: []byte("ok\n")}, nil
		}),
	})
	defer svc.Close()

	rec, err := svc.Submit(Job{Tenant: "p", Params: line, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, svc, rec.ID)
	if final.State != StateDone {
		t.Fatalf("params job state %s (%s), want done", final.State, final.Err)
	}
	if got.World == nil || world.MarshalParams(*got.World) != line {
		t.Errorf("params job resolved to a different world")
	}
	if !got.Guard || !got.Supervise {
		t.Errorf("params jobs must run the hardened stack (guard+supervise)")
	}
	if got.Seed != 9 {
		t.Errorf("params job seed %d, want 9", got.Seed)
	}

	bad, err := svc.Submit(Job{Tenant: "p", Params: "not a params line"})
	if err != nil {
		t.Fatal(err)
	}
	badFinal := waitDone(t, svc, bad.ID)
	if badFinal.State != StateFailed || !strings.Contains(badFinal.Err, ErrBadJob.Error()) {
		t.Errorf("bad params job: state %s err %q, want failed with ErrBadJob", badFinal.State, badFinal.Err)
	}
}
