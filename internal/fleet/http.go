package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Handler exposes the service over HTTP:
//
//	POST /jobs           submit a job (JSON body: Job); ?wait=1 blocks
//	                     until the job is terminal and returns its
//	                     final record. Overload answers are explicit:
//	                     429 saturated/shedding/throttled (with
//	                     Retry-After), 503 draining/closed, 400 invalid
//	                     job.
//	GET  /jobs           list job records (JSON); ?state= narrows to
//	                     queued|running|done|failed|shed or the special
//	                     dead (dead-lettered jobs)
//	GET  /jobs/{id}      job record snapshot (JSON)
//	GET  /jobs/{id}/report  final report (text; 409 until terminal)
//	POST /tenants/{tenant}/limit  install a tenant admission contract
//	                     (JSON body: TenantLimit); journaled when the
//	                     service is durable
//	GET  /fleetz         fleet aggregate: ladder state, queue, per-
//	                     tenant and fleet-wide p50/p99, admission
//	                     limits, journal stats, outage ledger
//	GET  /healthz        liveness + ladder state
func Handler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		state := r.URL.Query().Get("state")
		switch state {
		case "", "queued", "running", "done", "failed", "shed", "dead":
		default:
			http.Error(w, fmt.Sprintf("unknown state filter %q", state), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, s.Jobs(state))
	})
	mux.HandleFunc("POST /tenants/{tenant}/limit", func(w http.ResponseWriter, r *http.Request) {
		var limit TenantLimit
		if err := json.NewDecoder(r.Body).Decode(&limit); err != nil {
			httpError(w, fmt.Errorf("%w: decoding body: %v", ErrBadJob, err))
			return
		}
		tenant := r.PathValue("tenant")
		if err := s.SetTenantLimit(tenant, limit); err != nil {
			httpError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, map[string]any{"tenant": tenant, "limit": limit})
	})
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var job Job
		if err := json.NewDecoder(r.Body).Decode(&job); err != nil {
			httpError(w, fmt.Errorf("%w: decoding body: %v", ErrBadJob, err))
			return
		}
		rec, err := s.Submit(job)
		if err != nil {
			httpError(w, err)
			return
		}
		snap, _ := s.Get(rec.ID)
		if r.URL.Query().Get("wait") == "1" {
			snap, err = s.Wait(r.Context(), rec.ID)
			if err != nil {
				httpError(w, err)
				return
			}
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		writeJSON(w, snap)
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		rec, ok := getRecord(s, w, r)
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, rec)
	})
	mux.HandleFunc("GET /jobs/{id}/report", func(w http.ResponseWriter, r *http.Request) {
		rec, ok := getRecord(s, w, r)
		if !ok {
			return
		}
		switch rec.State {
		case StateDone:
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.Write(rec.Report())
		case StateFailed, StateShed:
			http.Error(w, fmt.Sprintf("job %d %s: %s", rec.ID, rec.State, rec.Err), http.StatusConflict)
		default:
			http.Error(w, fmt.Sprintf("job %d still %s", rec.ID, rec.State), http.StatusConflict)
		}
	})
	mux.HandleFunc("GET /fleetz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, s.Fleetz())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, map[string]any{"ok": true, "state": s.State()})
	})
	return mux
}

func getRecord(s *Service, w http.ResponseWriter, r *http.Request) (Record, bool) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		http.Error(w, "bad job id", http.StatusBadRequest)
		return Record{}, false
	}
	rec, ok := s.Get(id)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown job %d", id), http.StatusNotFound)
		return Record{}, false
	}
	return rec, true
}

// httpError maps service errors onto the status codes the overload
// contract promises: saturation, shedding, and rate-limit throttling
// are retryable 429s (with Retry-After), draining and shutdown are
// 503s, validation is a 400. Retry-After is always a positive integer
// of seconds — the throttle hint rounds up so a client that honors it
// finds a token waiting.
func httpError(w http.ResponseWriter, err error) {
	var throttle *ThrottleError
	switch {
	case errors.As(err, &throttle):
		secs := int(throttle.RetryAfter/time.Second) + 1
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, ErrFleetSaturated), errors.Is(err, ErrFleetShedding):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, ErrFleetDraining), errors.Is(err, ErrFleetClosed):
		w.Header().Set("Retry-After", "5")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, ErrBadJob):
		http.Error(w, err.Error(), http.StatusBadRequest)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
