package fleet

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/autoware"
	"repro/internal/hdmap"
	"repro/internal/scenario"
	"repro/internal/world"
)

// RunResult is what one successful job attempt yields: the rendered
// side-by-side report (the byte-identity unit of the determinism
// contract) and the run's worst faulted-path p99 for aggregation.
type RunResult struct {
	Report []byte
	E2EP99 float64
}

// Runner executes one resolved job attempt. Tests substitute fakes to
// exercise the service's retry/deadline/ladder machinery without
// paying for real simulation.
type Runner interface {
	Run(ctx context.Context, spec scenario.Spec, det autoware.Detector, duration time.Duration) (*RunResult, error)
}

// worldFromParams parses a canonical params line into a world config.
func worldFromParams(line string) (world.ScenarioConfig, error) {
	cfg, err := world.ParseParams(line)
	if err != nil {
		return world.ScenarioConfig{}, fmt.Errorf("%w: params: %v", ErrBadJob, err)
	}
	if err := cfg.Validate(); err != nil {
		return world.ScenarioConfig{}, fmt.Errorf("%w: params: %v", ErrBadJob, err)
	}
	return cfg, nil
}

// env is one built simulation environment: the generated world and its
// HD map. Building the map costs seconds of wall clock; the fleet
// amortizes it across every job sharing the same world params.
type env struct {
	once sync.Once
	scen *world.Scenario
	m    *hdmap.Map
	err  error
}

// envCache shares built environments across jobs and across service
// instances in one process, keyed by canonical world params. Scenarios
// and maps are read-only after construction (the worker-invariance
// tests drive concurrent stacks over shared ones), so concurrent jobs
// may run over one entry safely.
var envCache sync.Map // params line -> *env

func sharedEnv(cfg world.ScenarioConfig) (*world.Scenario, *hdmap.Map, error) {
	key := world.MarshalParams(cfg)
	v, _ := envCache.LoadOrStore(key, &env{})
	e := v.(*env)
	e.once.Do(func() {
		scen, err := world.BuildScenario(cfg)
		if err != nil {
			e.err = fmt.Errorf("fleet: building world: %w", err)
			return
		}
		mc := hdmap.DefaultConfig()
		mc.ScanSpacing = 10
		m, err := hdmap.Build(scen, mc)
		if err != nil {
			e.err = fmt.Errorf("fleet: building map: %w", err)
			return
		}
		e.scen, e.m = scen, m
	})
	return e.scen, e.m, e.err
}

// scenarioRunner is the production Runner: resolve the spec's world to
// a cached environment, run both legs under the attempt context, and
// render the report. Environment construction is not context-aware
// (it is CPU-bound and cached); only the simulation legs observe
// cancellation.
type scenarioRunner struct{}

func defaultRunner() Runner { return scenarioRunner{} }

func (scenarioRunner) Run(ctx context.Context, spec scenario.Spec, det autoware.Detector, duration time.Duration) (*RunResult, error) {
	cfg := world.DefaultScenarioConfig()
	if spec.World != nil {
		cfg = *spec.World
	}
	scen, m, err := sharedEnv(cfg)
	if err != nil {
		return nil, err
	}
	res, err := scenario.RunWithEnvContext(ctx, scen, m, spec, det, duration)
	if err != nil {
		return nil, err
	}
	var rep bytes.Buffer
	res.WriteReport(&rep)
	worst := 0.0
	for _, p := range res.Paths {
		if p.Faulted.Count > 0 && p.Faulted.P99 > worst {
			worst = p.Faulted.P99
		}
	}
	return &RunResult{Report: rep.Bytes(), E2EP99: worst}, nil
}
