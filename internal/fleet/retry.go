package fleet

import (
	"hash/fnv"
	"time"

	"repro/internal/mathx"
)

// maxBackoff caps any single retry delay; past it exponential growth
// only postpones the dead-letter verdict.
const maxBackoff = 5 * time.Second

// BackoffSchedule plans a job's full retry schedule at admission: delay
// k is base·2^k with ±25% jitter, capped at maxBackoff, one entry per
// unit of retry budget. The jitter stream is seeded from (seed, job
// key) — a pure function, so the same job retried on any replica (or
// re-submitted after a restart) backs off on exactly the same schedule,
// which is what lets the retry-determinism test assert the timeline
// byte-for-byte. Distinct job keys still jitter independently, so a
// correlated failure burst does not re-thunder in lockstep.
func BackoffSchedule(seed uint64, key string, base time.Duration, budget int) []time.Duration {
	if budget <= 0 || base <= 0 {
		return nil
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	rng := mathx.NewRNG(seed ^ h.Sum64())
	out := make([]time.Duration, budget)
	for k := range out {
		d := base << uint(k)
		if d <= 0 || d > maxBackoff {
			d = maxBackoff
		}
		jittered := time.Duration(float64(d) * (0.75 + 0.5*rng.Float64()))
		if jittered > maxBackoff {
			jittered = maxBackoff
		}
		out[k] = jittered
	}
	return out
}
