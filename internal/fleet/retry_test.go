package fleet

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/scenario"
)

// TestBackoffScheduleDeterministic pins the retry schedule as a pure
// function of (seed, job key): equal inputs produce identical
// schedules, distinct keys jitter independently, and every delay stays
// inside the jittered exponential envelope.
func TestBackoffScheduleDeterministic(t *testing.T) {
	const base = 50 * time.Millisecond
	a := BackoffSchedule(1, "key-a", base, 4)
	b := BackoffSchedule(1, "key-a", base, 4)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same (seed, key) produced different schedules: %v vs %v", a, b)
	}
	c := BackoffSchedule(1, "key-b", base, 4)
	if reflect.DeepEqual(a, c) {
		t.Errorf("distinct keys produced identical jitter (correlated retries): %v", a)
	}
	d := BackoffSchedule(2, "key-a", base, 4)
	if reflect.DeepEqual(a, d) {
		t.Errorf("distinct seeds produced identical jitter: %v", a)
	}
	for k, delay := range a {
		lo := time.Duration(float64(base<<uint(k)) * 0.75)
		hi := time.Duration(float64(base<<uint(k)) * 1.25)
		if hi > maxBackoff {
			hi = maxBackoff
		}
		if lo > maxBackoff {
			lo = maxBackoff / 2
		}
		if delay < lo || delay > hi {
			t.Errorf("delay %d = %v outside jitter envelope [%v, %v]", k, delay, lo, hi)
		}
	}
	if got := BackoffSchedule(1, "k", base, 0); got != nil {
		t.Errorf("zero budget: schedule %v, want nil", got)
	}
}

// TestFleetRetryDeterminism is the satellite-4 contract: the same seed
// yields an identical retry schedule, and a job that suffers an
// injected transient crash (faults.KindCrash against its first
// attempt) converges to a final report byte-identical to a run that
// never crashed. Retries re-enter the same deterministic simulation,
// so a recovered job is indistinguishable from a lucky one.
func TestFleetRetryDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations")
	}
	const dur = 8 * time.Second
	cfg := Config{
		Workers: 2, QueueDepth: 8, Duration: dur,
		RetryBudget: 2, RetryBase: 10 * time.Millisecond, RetrySeed: 42,
		AllowChaos: true,
		CacheSize:  -1, // force the chaos job to actually re-run
	}

	clean := mustNew(t, cfg)
	cleanRec, err := clean.Submit(Job{Tenant: "clean", Scenario: scenario.NameCameraStall})
	if err != nil {
		t.Fatal(err)
	}
	cleanFinal := waitDone(t, clean, cleanRec.ID)
	clean.Close()
	if cleanFinal.State != StateDone {
		t.Fatalf("clean run: state %s (%s)", cleanFinal.State, cleanFinal.Err)
	}

	chaos := mustNew(t, cfg)
	defer chaos.Close()
	crashRec, err := chaos.Submit(Job{
		Tenant: "crashy", Scenario: scenario.NameCameraStall,
		Chaos: &Chaos{Kind: faults.KindCrash, Attempts: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	crashFinal := waitDone(t, chaos, crashRec.ID)
	if crashFinal.State != StateDone {
		t.Fatalf("crash-once run: state %s (%s), want done after one retry", crashFinal.State, crashFinal.Err)
	}
	if crashFinal.Retries != 1 || len(crashFinal.Attempts) != 2 {
		t.Errorf("retries=%d attempts=%d, want exactly 1 retry over 2 attempts", crashFinal.Retries, len(crashFinal.Attempts))
	}
	if crashFinal.Attempts[0].Outcome != "crash" || crashFinal.Attempts[1].Outcome != "ok" {
		t.Errorf("attempt outcomes %+v, want [crash ok]", crashFinal.Attempts)
	}

	// Identical job key ⇒ identical planned backoff schedule, equal to
	// the pure function both services derived it from.
	want := BackoffSchedule(cfg.RetrySeed, crashFinal.Key, cfg.RetryBase, cfg.RetryBudget)
	if !reflect.DeepEqual(crashFinal.Backoff, want) {
		t.Errorf("recorded schedule %v != derived schedule %v", crashFinal.Backoff, want)
	}
	if !reflect.DeepEqual(crashFinal.Backoff, cleanFinal.Backoff) {
		t.Errorf("clean and crashy jobs share a key but planned different schedules: %v vs %v",
			cleanFinal.Backoff, crashFinal.Backoff)
	}

	// The recovered report is byte-identical to the never-crashed one.
	if !bytes.Equal(crashFinal.Report(), cleanFinal.Report()) {
		t.Errorf("report after a retried transient crash diverged from the clean run (%d vs %d bytes)",
			len(crashFinal.Report()), len(cleanFinal.Report()))
	}
}
