// Package fleet is the simulation-as-a-service layer: a long-running
// service that accepts vehicle simulation jobs keyed by (scenario,
// seed, world params, config), runs each as an isolated vehicle on the
// internal/parallel pool, and aggregates per-tenant and fleet-wide
// results. Where the guard/supervise/sched layers harden one vehicle
// against its own faults, this layer protects vehicles from *each
// other* — robustness is the headline, not throughput:
//
//   - Admission is a bounded priority queue with explicit rejection
//     (ErrFleetSaturated): overload produces 429s, never unbounded
//     buffering.
//   - Per-job wall-clock deadlines propagate as context cancellation
//     into the run (autoware.Stack.RunContext), so an expired job stops
//     simulating within a slice of wall clock instead of leaking until
//     drive end.
//   - Transient failures — a crashed (panicking) or timed-out attempt —
//     retry under a seeded exponential-backoff schedule with a bounded
//     budget; exhaustion lands the job in the dead-letter record, never
//     in a crash loop.
//   - Panic isolation rides the pool's capture contract: one corrupt
//     scenario costs exactly its own job (a *parallel.PanicError in the
//     job record), never the service.
//   - A load-aware degradation ladder (nominal → shed low-priority →
//     drain-and-reject) driven by queue depth and completion-latency
//     drift keeps the service answering under overload.
//   - Results are cached by job key, and determinism is preserved: the
//     same job key yields a byte-identical report whether run solo,
//     under contention, or after a retry — every vehicle is its own
//     virtual-time simulation, so host scheduling cannot leak in.
//   - With Config.Journal set, every job state transition is written to
//     a CRC32C-framed write-ahead log (internal/journal) before it is
//     acknowledged, so a crashed service restarts into the same queue,
//     retry schedules, result cache, and dead-letter ledger — completed
//     reports byte-identical, in-flight jobs re-run deterministically.
//   - Admission is per-tenant fair share by default: token-bucket rate
//     limits at the door and deficit-round-robin dispatch behind it, so
//     one tenant's burst cannot starve another (AdmissionPriority keeps
//     the old global-priority discipline selectable).
//
// The HTTP surface (Handler, cmd/avfleet) exposes submission, per-job
// status/report endpoints, and the /fleetz aggregate.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/autoware"
	"repro/internal/faults"
	"repro/internal/journal"
	"repro/internal/mathx"
	"repro/internal/parallel"
	"repro/internal/scenario"
)

// Admission and job errors.
var (
	// ErrFleetSaturated rejects a submission when the admission queue is
	// full — the 429-style backpressure signal.
	ErrFleetSaturated = errors.New("fleet: saturated (admission queue full)")
	// ErrFleetShedding rejects a low-priority submission while the
	// degradation ladder is in the shedding state.
	ErrFleetShedding = errors.New("fleet: shedding low-priority load")
	// ErrFleetDraining rejects every submission while the ladder is in
	// the draining state (in-flight jobs still finish).
	ErrFleetDraining = errors.New("fleet: draining (rejecting all new jobs)")
	// ErrFleetClosed rejects submissions after Close.
	ErrFleetClosed = errors.New("fleet: service closed")
	// ErrJobShed marks a queued job evicted by the shedding ladder.
	ErrJobShed = errors.New("fleet: job shed under overload")
	// ErrRetriesExhausted wraps the last transient error once the retry
	// budget is spent; such jobs land in the dead-letter record.
	ErrRetriesExhausted = errors.New("fleet: retry budget exhausted")
	// ErrBadJob marks a submission that fails validation.
	ErrBadJob = errors.New("fleet: invalid job")
	// ErrTenantThrottled rejects a submission that exceeded its tenant's
	// token-bucket rate limit; the concrete error is a *ThrottleError
	// carrying the retry-after hint.
	ErrTenantThrottled = errors.New("fleet: tenant rate limit exceeded")
)

// Chaos is test-only attempt perturbation, reusing the fault-kind
// vocabulary of internal/faults at the fleet layer: KindCrash panics
// inside the attempt (captured by the pool as a *parallel.PanicError),
// KindStall blocks the attempt until its context expires. It models
// infrastructure failures — the vehicle's own faults belong in the
// scenario's fault schedule. Ignored unless Config.AllowChaos.
type Chaos struct {
	Kind faults.Kind `json:"kind"`
	// Attempts is how many leading attempts are perturbed; a job whose
	// chaos covers fewer attempts than the retry budget therefore
	// recovers — the deterministic "transient crash" fixture.
	Attempts int `json:"attempts"`
}

// Job is one vehicle simulation request.
type Job struct {
	// Tenant is the isolation and aggregation unit. Empty means
	// "default".
	Tenant string `json:"tenant,omitempty"`
	// Priority orders admission (higher first) and shedding (lowest
	// evicted first). Jobs below Config.ShedPriority are rejected while
	// the ladder sheds.
	Priority int `json:"priority,omitempty"`
	// Scenario names a registry scenario (builtin or pinned gen-*
	// search winner). Exactly one of Scenario and Params must be set.
	Scenario string `json:"scenario,omitempty"`
	// Params is a canonical world-params line (world.MarshalParams /
	// the adversarial search's discovered worlds): the job drives the
	// hardened stack fault-free through that generated world.
	Params string `json:"params,omitempty"`
	// Seed overrides the scenario's fault seed (0 keeps the spec's).
	Seed uint64 `json:"seed,omitempty"`
	// Duration is the virtual drive length (0 uses Config.Duration).
	Duration time.Duration `json:"duration,omitempty"`
	// Deadline is the job's wall-clock budget measured from admission;
	// 0 means none. An expired deadline cancels in-flight simulation.
	Deadline time.Duration `json:"deadline,omitempty"`
	// Chaos perturbs attempts for fault-injection tests (see Chaos).
	Chaos *Chaos `json:"chaos,omitempty"`
}

// Key returns the job's canonical cache key: every input that changes
// the simulation — scenario, world params, seed, duration, detector —
// and nothing that does not (tenant, priority, deadline, chaos). Two
// submissions with equal keys produce byte-identical reports, which is
// what makes the result cache sound.
func (j Job) key(det autoware.Detector, duration time.Duration) string {
	return fmt.Sprintf("scenario=%s|params=%s|seed=%d|duration=%s|detector=%s",
		j.Scenario, j.Params, j.Seed, duration, det)
}

// JobState is a job record's lifecycle state.
type JobState string

// Job lifecycle states.
const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateFailed  JobState = "failed"
	StateShed    JobState = "shed"
)

// Attempt is one recorded execution attempt.
type Attempt struct {
	// Outcome is "ok", "crash" (captured panic), "timeout" (context
	// expiry), or "error".
	Outcome string `json:"outcome"`
	// WallMS is the attempt's wall-clock cost in milliseconds.
	WallMS float64 `json:"wall_ms"`
	// Err is the attempt's error text, empty on success.
	Err string `json:"err,omitempty"`
}

// Record is a job's full service-side record. Snapshots returned by
// the service are copies; mutation happens only under the service lock.
type Record struct {
	ID       int64     `json:"id"`
	Job      Job       `json:"job"`
	Key      string    `json:"key"`
	State    JobState  `json:"state"`
	Tenant   string    `json:"tenant"`
	Attempts []Attempt `json:"attempts,omitempty"`
	// Backoff is the seeded retry schedule planned at admission — a
	// pure function of (retry seed, job key), so identical jobs retry
	// identically.
	Backoff []time.Duration `json:"backoff,omitempty"`
	// Retries is how many backoff delays were actually consumed.
	Retries int `json:"retries"`
	// CacheHit marks a job served from the result cache without
	// re-simulation.
	CacheHit bool `json:"cache_hit"`
	// DeadLetter marks a job that exhausted its retry budget.
	DeadLetter bool   `json:"dead_letter"`
	Err        string `json:"err,omitempty"`
	// E2EP99 is the run's worst-path p99 in milliseconds (faulted leg).
	E2EP99 float64 `json:"e2e_p99_ms"`
	// WallMS is the job's total wall-clock service time in ms.
	WallMS float64 `json:"wall_ms"`
	// Resumed marks a job reconstructed from the journal after a
	// restart: it was admitted by a previous process incarnation.
	Resumed bool `json:"resumed,omitempty"`

	report   []byte
	enqueued time.Time
	done     chan struct{}
	seq      int64
	shedable bool
	// resumeFrom is the attempt index execution continues at — zero for
	// fresh jobs, the replayed retry count for journal-recovered ones,
	// so the seeded backoff schedule resumes exactly where it stopped.
	resumeFrom int
}

// Report returns the job's final report bytes (nil until done).
func (r *Record) Report() []byte { return r.report }

// Config parameterizes a Service.
type Config struct {
	// Workers bounds concurrently simulating vehicles (default
	// parallel.MaxWorkers()).
	Workers int
	// QueueDepth bounds the admission queue; a full queue rejects with
	// ErrFleetSaturated (default 64).
	QueueDepth int
	// Detector is the vision configuration vehicles run with (default
	// SSD300, the cheapest).
	Detector autoware.Detector
	// Duration is the default virtual drive length for jobs that do not
	// set one (default 8s, enough for every builtin horizon under 8s).
	Duration time.Duration
	// RetryBudget is the number of retries after the first attempt
	// (default 2).
	RetryBudget int
	// RetryBase is the first backoff delay; delay k doubles it k times,
	// with ±25% seeded jitter (default 50ms).
	RetryBase time.Duration
	// RetrySeed drives the backoff jitter (default 1). The schedule is
	// a pure function of (RetrySeed, job key).
	RetrySeed uint64
	// AttemptTimeout bounds each attempt's wall clock (0 = only the
	// job deadline bounds it). A timed-out attempt is transient and
	// retries; an expired job deadline is final.
	AttemptTimeout time.Duration
	// CacheSize bounds the result cache (default 256 entries; 0 keeps
	// the default, negative disables caching).
	CacheSize int
	// TargetP99 is the completion wall-time the ladder considers
	// healthy; observed p99 above TargetP99×DriftFactor trips the
	// shedding state. 0 disables drift detection (queue depth alone
	// drives the ladder).
	TargetP99 time.Duration
	// DriftFactor scales TargetP99 into the drift threshold (default 2).
	DriftFactor float64
	// ShedHighWater is the queue occupancy (0..1) entering the shedding
	// state (default 0.75); DrainHighWater the occupancy entering
	// draining (default 0.95); LowWater the occupancy returning to
	// nominal (default 0.25, hysteresis).
	ShedHighWater  float64
	DrainHighWater float64
	LowWater       float64
	// ShedPriority is the admission floor while shedding: submissions
	// with Priority below it are rejected, queued jobs below it are
	// evicted (default 1, so priority 0 is the best-effort class).
	ShedPriority int
	// AllowChaos enables Job.Chaos (tests and the smoke harness only).
	AllowChaos bool
	// Journal is the write-ahead log directory. Empty disables
	// durability: the service is the in-memory PR-8 fleet. Set, every
	// admission and terminal transition is fsynced to the log before it
	// is acknowledged, and New replays any existing log so a restarted
	// service resumes its queue, cache, and dead-letter ledger.
	Journal string
	// SnapshotEvery bounds the WAL: after this many appended entries the
	// service folds its full state into an atomic snapshot and truncates
	// the log (default 512; negative disables compaction).
	SnapshotEvery int
	// Admission selects the dispatch discipline: AdmissionFair (default,
	// per-tenant deficit round-robin + token buckets) or
	// AdmissionPriority (the global priority heap).
	Admission string
	// TenantRate is the default per-tenant admission rate in jobs/second
	// (0 = unlimited); TenantBurst the default bucket capacity (default
	// 8). Per-tenant overrides live in Limits / SetTenantLimit.
	TenantRate  float64
	TenantBurst int
	// Limits seeds per-tenant admission contracts at startup; limits set
	// later via SetTenantLimit are journaled and survive restarts.
	Limits map[string]TenantLimit
	// Resolve maps a scenario name to its spec (default
	// scenario.ByName; tests substitute tiny fixtures).
	Resolve func(string) (scenario.Spec, error)
	// Runner executes one resolved job attempt (default the shared
	// environment-caching scenario runner; tests substitute fakes).
	Runner Runner
}

func (c *Config) fill() {
	if c.Workers < 1 {
		c.Workers = parallel.MaxWorkers()
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 64
	}
	if c.Detector == "" {
		c.Detector = autoware.DetectorSSD300
	}
	if c.Duration <= 0 {
		c.Duration = 8 * time.Second
	}
	if c.RetryBudget < 0 {
		c.RetryBudget = 0
	} else if c.RetryBudget == 0 {
		c.RetryBudget = 2
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 50 * time.Millisecond
	}
	if c.RetrySeed == 0 {
		c.RetrySeed = 1
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.DriftFactor <= 0 {
		c.DriftFactor = 2
	}
	if c.ShedHighWater <= 0 {
		c.ShedHighWater = 0.75
	}
	if c.DrainHighWater <= 0 {
		c.DrainHighWater = 0.95
	}
	if c.LowWater <= 0 {
		c.LowWater = 0.25
	}
	if c.ShedPriority == 0 {
		c.ShedPriority = 1
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 512
	}
	if c.Admission == "" {
		c.Admission = AdmissionFair
	}
	if c.TenantBurst < 1 {
		c.TenantBurst = 8
	}
	if c.Resolve == nil {
		c.Resolve = scenario.ByName
	}
	if c.Runner == nil {
		c.Runner = defaultRunner()
	}
}

// LadderState is the degradation ladder's position.
type LadderState string

// Ladder states, in degradation order.
const (
	LadderNominal  LadderState = "nominal"
	LadderShedding LadderState = "shedding"
	LadderDraining LadderState = "draining"
)

// tenantAgg accumulates one tenant's counters and samples.
type tenantAgg struct {
	submitted, completed, failed, retries, shed, rejected, cacheHits, throttled int64
	e2e                                                                         []float64 // completed jobs' worst-path p99 (ms)
	wall                                                                        []float64 // completed jobs' wall time (ms)
}

// Service is the fleet server. Create with New, stop with Close.
type Service struct {
	cfg  Config
	pool *parallel.Pool
	sem  chan struct{}

	mu         sync.Mutex
	cond       *sync.Cond
	queue      *admitQueue
	records    map[int64]*Record
	nextID     int64
	nextSeq    int64
	state      LadderState
	tenants    map[string]*tenantAgg
	limits     map[string]TenantLimit
	buckets    map[string]*bucket
	baselines  map[string]*baseline
	cache      map[string]cacheEntry
	cacheOrder []string
	cacheHits  int64
	dead       []*Record
	recentWall []float64
	inFlight   int
	closed     bool

	// Durability state (nil/zero without Config.Journal).
	jl              *journal.Log
	walSinceCompact int
	jlErrs          int64
	recovered       RecoveredStats

	// now is the admission clock, injectable so token-bucket tests are
	// deterministic.
	now func() time.Time

	wg sync.WaitGroup
}

type cacheEntry struct {
	report []byte
	e2e    float64
}

// New starts a fleet service. With Config.Journal set it opens (or
// creates) the write-ahead log, replays any prior state — salvaging a
// torn tail the way BagReader does — and resumes interrupted jobs
// before accepting new ones.
func New(cfg Config) (*Service, error) {
	cfg.fill()
	if cfg.Admission != AdmissionFair && cfg.Admission != AdmissionPriority {
		return nil, fmt.Errorf("%w: unknown admission discipline %q (have %s, %s)",
			ErrBadJob, cfg.Admission, AdmissionFair, AdmissionPriority)
	}
	s := &Service{
		cfg:       cfg,
		pool:      parallel.NewPool(cfg.Workers, 0),
		sem:       make(chan struct{}, cfg.Workers),
		records:   make(map[int64]*Record),
		state:     LadderNominal,
		tenants:   make(map[string]*tenantAgg),
		limits:    make(map[string]TenantLimit),
		buckets:   make(map[string]*bucket),
		baselines: make(map[string]*baseline),
		cache:     make(map[string]cacheEntry),
		now:       time.Now,
	}
	for name, l := range cfg.Limits {
		s.limits[name] = l
	}
	s.queue = newAdmitQueue(cfg.Admission == AdmissionFair, func(tenant string) int {
		return s.limitFor(tenant).Weight
	})
	s.cond = sync.NewCond(&s.mu)
	if cfg.Journal != "" {
		if err := s.recover(cfg.Journal); err != nil {
			s.pool.Close()
			return nil, err
		}
	}
	s.wg.Add(1)
	go s.dispatch()
	return s, nil
}

// limitFor resolves a tenant's effective admission contract: the
// journaled/per-tenant override when present, the service defaults
// otherwise, with burst and weight floored at sane minimums.
func (s *Service) limitFor(tenant string) TenantLimit {
	l, ok := s.limits[tenant]
	if !ok {
		l = TenantLimit{Rate: s.cfg.TenantRate, Burst: s.cfg.TenantBurst}
	}
	if l.Burst < 1 {
		l.Burst = s.cfg.TenantBurst
	}
	if l.Weight < 1 {
		l.Weight = 1
	}
	return l
}

// SetTenantLimit installs a tenant's admission contract at runtime,
// resets its token bucket so the new rate takes effect immediately,
// and journals the change (fsynced) so it survives restarts.
func (s *Service) SetTenantLimit(tenant string, limit TenantLimit) error {
	if tenant == "" {
		tenant = "default"
	}
	if limit.Rate < 0 || limit.Burst < 0 || limit.Weight < 0 {
		return fmt.Errorf("%w: negative rate, burst, or weight", ErrBadJob)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrFleetClosed
	}
	s.limits[tenant] = limit
	delete(s.buckets, tenant)
	return s.logLocked(walEntry{Op: opLimit, Tenant: tenant, Limit: &limit}, true)
}

// Close stops admission, waits for in-flight vehicles to finish, and
// tears the pool down. Without a journal, whatever is still queued is
// failed explicitly; with one, queued jobs stay journaled and resume
// when a new service opens the same log.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.jl == nil {
		for _, rec := range s.queue.drain() {
			s.finishLocked(rec, StateFailed, fmt.Errorf("%w: queued at shutdown", ErrFleetClosed))
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	// Every dispatcher-launched job holds a sem slot until done; taking
	// them all back waits for in-flight work.
	for i := 0; i < cap(s.sem); i++ {
		s.sem <- struct{}{}
	}
	s.mu.Lock()
	if s.jl != nil {
		// Fold the final state into a snapshot so the next open replays
		// from a compact image, then release the log.
		s.compactLocked()
		s.jl.Close()
		s.jl = nil
	}
	s.mu.Unlock()
	s.pool.Close()
}

// tenant returns (creating) a tenant's aggregate. Callers hold s.mu.
func (s *Service) tenantLocked(name string) *tenantAgg {
	t := s.tenants[name]
	if t == nil {
		t = &tenantAgg{}
		s.tenants[name] = t
	}
	return t
}

// Submit validates and admits a job. The returned record is a live
// handle: use Wait (or the record's ID with Get) to observe completion.
// Rejections are explicit errors — ErrFleetSaturated on a full queue,
// ErrFleetShedding for low-priority load while shedding,
// ErrFleetDraining while draining, *ThrottleError past the tenant's
// rate limit — and are counted per tenant. On a journaled service the
// admission is fsynced to the WAL before Submit returns: an
// acknowledged job is never silently lost to a crash.
func (s *Service) Submit(job Job) (*Record, error) {
	if job.Tenant == "" {
		job.Tenant = "default"
	}
	if err := validate(job, s.cfg.AllowChaos); err != nil {
		return nil, err
	}
	duration := job.Duration
	if duration <= 0 {
		duration = s.cfg.Duration
	}
	key := job.key(s.cfg.Detector, duration)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrFleetClosed
	}
	agg := s.tenantLocked(job.Tenant)

	// Degradation ladder, before the cache: a draining service answers
	// nothing new, a shedding one only its protected classes.
	switch s.state {
	case LadderDraining:
		agg.rejected++
		return nil, ErrFleetDraining
	case LadderShedding:
		if job.Priority < s.cfg.ShedPriority {
			agg.rejected++
			agg.shed++
			return nil, ErrFleetShedding
		}
	}

	agg.submitted++

	// Cache hit: served without re-simulation, no queue slot and no
	// rate-limit token consumed. Journaled as a single self-contained
	// admit entry so the record survives a restart.
	if ent, ok := s.cache[key]; ok {
		rec := s.newRecordLocked(job, key, duration)
		rec.State = StateDone
		rec.CacheHit = true
		rec.report = ent.report
		rec.E2EP99 = ent.e2e
		rec.WallMS = 0
		if err := s.logLocked(admitEntry(rec), true); err != nil {
			delete(s.records, rec.ID)
			return nil, fmt.Errorf("fleet: journaling admission: %w", err)
		}
		agg.completed++
		agg.cacheHits++
		s.cacheHits++
		agg.e2e = append(agg.e2e, ent.e2e)
		agg.wall = append(agg.wall, 0)
		close(rec.done)
		return rec, nil
	}

	// Queue-depth check before the token bucket: a saturated rejection
	// must not also burn one of the tenant's tokens.
	if s.queue.Len() >= s.cfg.QueueDepth {
		agg.rejected++
		s.reladderLocked()
		return nil, ErrFleetSaturated
	}

	if limit := s.limitFor(job.Tenant); limit.Rate > 0 {
		b := s.buckets[job.Tenant]
		if b == nil {
			b = &bucket{}
			s.buckets[job.Tenant] = b
		}
		if wait, ok := b.take(s.now(), limit.Rate, limit.Burst); !ok {
			agg.rejected++
			agg.throttled++
			return nil, &ThrottleError{Tenant: job.Tenant, RetryAfter: wait}
		}
	}

	rec := s.newRecordLocked(job, key, duration)
	rec.Backoff = BackoffSchedule(s.cfg.RetrySeed, key, s.cfg.RetryBase, s.cfg.RetryBudget)
	rec.shedable = true
	if err := s.logLocked(admitEntry(rec), true); err != nil {
		delete(s.records, rec.ID)
		return nil, fmt.Errorf("fleet: journaling admission: %w", err)
	}
	s.queue.push(rec)
	s.reladderLocked()
	s.cond.Signal()
	return rec, nil
}

func (s *Service) newRecordLocked(job Job, key string, duration time.Duration) *Record {
	s.nextID++
	s.nextSeq++
	job.Duration = duration
	rec := &Record{
		ID:       s.nextID,
		Job:      job,
		Key:      key,
		State:    StateQueued,
		Tenant:   job.Tenant,
		enqueued: time.Now(),
		done:     make(chan struct{}),
		seq:      s.nextSeq,
	}
	s.records[rec.ID] = rec
	return rec
}

// validate rejects structurally bad jobs at admission; scenario
// resolution failures surface later as job failures (so a bad pin in
// the registry degrades to per-job errors, not a dead service).
func validate(job Job, allowChaos bool) error {
	if (job.Scenario == "") == (job.Params == "") {
		return fmt.Errorf("%w: exactly one of scenario and params must be set", ErrBadJob)
	}
	if job.Duration < 0 || job.Deadline < 0 {
		return fmt.Errorf("%w: negative duration or deadline", ErrBadJob)
	}
	if job.Chaos != nil {
		if !allowChaos {
			return fmt.Errorf("%w: chaos injection disabled on this service", ErrBadJob)
		}
		switch job.Chaos.Kind {
		case faults.KindCrash, faults.KindStall:
		default:
			return fmt.Errorf("%w: unsupported chaos kind %q (have crash, stall)", ErrBadJob, job.Chaos.Kind)
		}
	}
	return nil
}

// Get returns a snapshot of a job record.
func (s *Service) Get(id int64) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.records[id]
	if !ok {
		return Record{}, false
	}
	return snapshotLocked(rec), true
}

// snapshotLocked copies the fields a reader may hold after the lock is
// released.
func snapshotLocked(rec *Record) Record {
	cp := *rec
	cp.Attempts = append([]Attempt(nil), rec.Attempts...)
	cp.Backoff = append([]time.Duration(nil), rec.Backoff...)
	cp.done = nil
	return cp
}

// Wait blocks until the job reaches a terminal state (or ctx ends) and
// returns its final snapshot.
func (s *Service) Wait(ctx context.Context, id int64) (Record, error) {
	s.mu.Lock()
	rec, ok := s.records[id]
	s.mu.Unlock()
	if !ok {
		return Record{}, fmt.Errorf("fleet: unknown job %d", id)
	}
	select {
	case <-rec.done:
	case <-ctx.Done():
		return Record{}, ctx.Err()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return snapshotLocked(rec), nil
}

// dispatch pulls admitted jobs off the admission queue — fair-share
// deficit round-robin or global priority order — and runs each on its
// own execution slot; slots bound concurrently simulating vehicles to
// Config.Workers.
func (s *Service) dispatch() {
	defer s.wg.Done()
	for {
		s.sem <- struct{}{}
		s.mu.Lock()
		for !s.closed && s.queue.Len() == 0 {
			s.cond.Wait()
		}
		if s.closed {
			// A journaled service leaves its queue in the log for the
			// next incarnation; a plain one already drained it in Close.
			s.mu.Unlock()
			<-s.sem
			return
		}
		rec := s.queue.pop()
		rec.shedable = false
		rec.State = StateRunning
		s.inFlight++
		s.reladderLocked()
		s.mu.Unlock()
		go func() {
			defer func() { <-s.sem }()
			s.execute(rec)
		}()
	}
}

// execute runs one job to a terminal state: attempts on the pool,
// transient failures retried on the planned backoff schedule, the
// deadline enforced as context cancellation throughout.
func (s *Service) execute(rec *Record) {
	ctx := context.Background()
	cancel := func() {}
	if rec.Job.Deadline > 0 {
		ctx, cancel = context.WithDeadline(ctx, rec.enqueued.Add(rec.Job.Deadline))
	}
	defer cancel()

	for attempt := rec.resumeFrom; ; attempt++ {
		s.mu.Lock()
		// Attempt markers are advisory (appended, not fsynced): losing
		// one to a crash only means the attempt re-runs, and attempts
		// are deterministic in virtual time.
		s.logLocked(walEntry{Op: opStart, ID: rec.ID, Attempt: attempt}, false)
		s.mu.Unlock()
		start := time.Now()
		res, err := s.attempt(ctx, rec, attempt)
		a := Attempt{WallMS: float64(time.Since(start)) / 1e6}
		if err == nil {
			a.Outcome = "ok"
		} else {
			a.Err = err.Error()
			a.Outcome = classify(err)
		}
		s.mu.Lock()
		rec.Attempts = append(rec.Attempts, a)
		s.mu.Unlock()

		if err == nil {
			s.complete(rec, res)
			return
		}
		// The job deadline is final: a dead context cannot host another
		// attempt, whatever the failure class.
		if ctx.Err() != nil {
			s.finish(rec, StateFailed, fmt.Errorf("fleet: job deadline: %w", err))
			return
		}
		if !transient(err) {
			s.finish(rec, StateFailed, err)
			return
		}
		if attempt >= len(rec.Backoff) {
			s.mu.Lock()
			rec.DeadLetter = true
			s.mu.Unlock()
			s.finish(rec, StateFailed, fmt.Errorf("%w after %d attempts: %w", ErrRetriesExhausted, attempt+1, err))
			return
		}
		s.mu.Lock()
		rec.Retries++
		s.tenantLocked(rec.Tenant).retries++
		s.logLocked(walEntry{Op: opRetry, ID: rec.ID, Attempt: attempt, Outcome: a.Outcome, Err: a.Err}, false)
		s.mu.Unlock()
		select {
		case <-time.After(rec.Backoff[attempt]):
		case <-ctx.Done():
			// Loop once more; the dead-context branch above finishes it.
		}
	}
}

// attempt submits one execution attempt to the pool and waits for it.
// The pool's capture contract turns a panicking vehicle into this
// attempt's *parallel.PanicError — isolation, not a dead service.
func (s *Service) attempt(ctx context.Context, rec *Record, n int) (*RunResult, error) {
	actx := ctx
	cancel := func() {}
	if s.cfg.AttemptTimeout > 0 {
		actx, cancel = context.WithTimeout(ctx, s.cfg.AttemptTimeout)
	}
	defer cancel()

	var res *RunResult
	done, err := s.pool.Submit(func() error {
		if c := rec.Job.Chaos; c != nil && s.cfg.AllowChaos && n < c.Attempts {
			switch c.Kind {
			case faults.KindCrash:
				panic(fmt.Sprintf("fleet: injected %s (tenant %s, attempt %d)", c.Kind, rec.Tenant, n))
			case faults.KindStall:
				<-actx.Done()
				return fmt.Errorf("fleet: injected %s (tenant %s, attempt %d): %w", c.Kind, rec.Tenant, n, actx.Err())
			}
		}
		r, err := s.run(actx, rec.Job)
		res = r
		return err
	})
	if err != nil {
		return nil, err
	}
	return res, <-done
}

// run resolves and executes the job's simulation.
func (s *Service) run(ctx context.Context, job Job) (*RunResult, error) {
	spec, err := resolveSpec(job, s.cfg.Resolve)
	if err != nil {
		return nil, err
	}
	return s.cfg.Runner.Run(ctx, spec, s.cfg.Detector, job.Duration)
}

// classify names an attempt outcome for the record.
func classify(err error) string {
	var pe *parallel.PanicError
	switch {
	case errors.As(err, &pe):
		return "crash"
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled),
		errors.Is(err, autoware.ErrCancelled):
		return "timeout"
	default:
		return "error"
	}
}

// transient reports whether a failure class retries: crashes (captured
// panics) and attempt timeouts do; validation and run errors do not.
func transient(err error) bool {
	switch classify(err) {
	case "crash", "timeout":
		return true
	}
	return false
}

// complete records a successful job: the terminal transition journaled
// (fsynced, with the report's content hash so replay can verify it),
// report cached by key, aggregates updated, ladder re-evaluated.
func (s *Service) complete(rec *Record, res *RunResult) {
	s.mu.Lock()
	rec.State = StateDone
	rec.report = res.Report
	rec.E2EP99 = res.E2EP99
	rec.WallMS = float64(time.Since(rec.enqueued)) / 1e6
	s.logLocked(walEntry{
		Op: opDone, ID: rec.ID, Report: res.Report, Hash: reportHash(res.Report),
		E2E: res.E2EP99, Wall: rec.WallMS, Retries: rec.Retries,
	}, true)
	s.cacheInsertLocked(rec.Key, res.Report, res.E2EP99)
	agg := s.tenantLocked(rec.Tenant)
	agg.completed++
	agg.e2e = append(agg.e2e, res.E2EP99)
	agg.wall = append(agg.wall, rec.WallMS)
	s.observeWallLocked(rec.WallMS)
	s.observeVirtualLocked(rec.Key, res.E2EP99)
	s.inFlight--
	s.reladderLocked()
	s.maybeCompactLocked()
	close(rec.done)
	s.mu.Unlock()
}

// cacheInsertLocked adds a result to the bounded key cache.
func (s *Service) cacheInsertLocked(key string, report []byte, e2e float64) {
	if s.cfg.CacheSize <= 0 {
		return
	}
	if _, dup := s.cache[key]; dup {
		return
	}
	s.cache[key] = cacheEntry{report: report, e2e: e2e}
	s.cacheOrder = append(s.cacheOrder, key)
	for len(s.cacheOrder) > s.cfg.CacheSize {
		delete(s.cache, s.cacheOrder[0])
		s.cacheOrder = s.cacheOrder[1:]
	}
}

// finish records a terminal failure or shed.
func (s *Service) finish(rec *Record, state JobState, err error) {
	s.mu.Lock()
	s.inFlight--
	s.finishLocked(rec, state, err)
	s.reladderLocked()
	s.maybeCompactLocked()
	s.mu.Unlock()
}

func (s *Service) finishLocked(rec *Record, state JobState, err error) {
	rec.State = state
	rec.Err = err.Error()
	rec.WallMS = float64(time.Since(rec.enqueued)) / 1e6
	op := opFail
	switch {
	case state == StateShed:
		op = opShed
	case rec.DeadLetter:
		op = opDead
	}
	s.logLocked(walEntry{
		Op: op, ID: rec.ID, Err: rec.Err, Wall: rec.WallMS, Retries: rec.Retries,
	}, true)
	agg := s.tenantLocked(rec.Tenant)
	switch state {
	case StateShed:
		agg.shed++
	default:
		agg.failed++
	}
	if rec.DeadLetter {
		s.deadLetterLocked(rec)
	}
	close(rec.done)
}

// deadLetterLocked appends to the bounded dead-letter ledger.
func (s *Service) deadLetterLocked(rec *Record) {
	s.dead = append(s.dead, rec)
	const deadCap = 128
	if len(s.dead) > deadCap {
		s.dead = s.dead[len(s.dead)-deadCap:]
	}
}

// observeWallLocked feeds the drift detector's sliding window.
func (s *Service) observeWallLocked(ms float64) {
	const window = 64
	s.recentWall = append(s.recentWall, ms)
	if len(s.recentWall) > window {
		s.recentWall = s.recentWall[len(s.recentWall)-window:]
	}
}

// drifting reports whether completion latency has drifted past
// tolerance: wall-clock p99 against the configured target, or any
// scenario family's virtual-time p99 against its own established
// baseline (see drift.go). Callers hold s.mu.
func (s *Service) driftingLocked() bool {
	if s.cfg.TargetP99 > 0 && len(s.recentWall) >= 8 {
		p99 := mathx.Quantile(s.recentWall, 0.99)
		if p99 > s.cfg.DriftFactor*float64(s.cfg.TargetP99)/1e6 {
			return true
		}
	}
	return len(s.driftedVirtualLocked()) > 0
}

// reladderLocked re-evaluates the degradation ladder from queue
// occupancy and latency drift, with hysteresis, and applies the
// shedding state's queue eviction. Callers hold s.mu.
func (s *Service) reladderLocked() {
	occ := float64(s.queue.Len()) / float64(s.cfg.QueueDepth)
	drift := s.driftingLocked()
	switch {
	case occ >= s.cfg.DrainHighWater:
		s.state = LadderDraining
	case occ >= s.cfg.ShedHighWater || drift:
		if s.state != LadderDraining || occ <= s.cfg.LowWater {
			s.state = LadderShedding
		}
	case occ <= s.cfg.LowWater && !drift:
		s.state = LadderNominal
	}
	if s.state == LadderShedding {
		s.shedQueuedLocked()
	}
}

// shedQueuedLocked evicts queued jobs below the shed-priority floor.
func (s *Service) shedQueuedLocked() {
	for _, rec := range s.queue.evictBelow(s.cfg.ShedPriority) {
		s.finishLocked(rec, StateShed, ErrJobShed)
	}
}

// jobHeap orders pending jobs by (priority desc, admission seq asc).
type jobHeap []*Record

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].Job.Priority != h[j].Job.Priority {
		return h[i].Job.Priority > h[j].Job.Priority
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(*Record)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// TenantStatus is one tenant's aggregate in the /fleetz report.
type TenantStatus struct {
	Tenant    string  `json:"tenant"`
	Submitted int64   `json:"submitted"`
	Completed int64   `json:"completed"`
	Failed    int64   `json:"failed"`
	Retries   int64   `json:"retries"`
	Shed      int64   `json:"shed"`
	Rejected  int64   `json:"rejected"`
	Throttled int64   `json:"throttled"`
	CacheHits int64   `json:"cache_hits"`
	E2EP50    float64 `json:"e2e_p50_ms"`
	E2EP99    float64 `json:"e2e_p99_ms"`
	WallP50   float64 `json:"wall_p50_ms"`
	WallP99   float64 `json:"wall_p99_ms"`
}

// TenantLimitStatus is one tenant's effective admission contract in
// the /fleetz report.
type TenantLimitStatus struct {
	Tenant string  `json:"tenant"`
	Rate   float64 `json:"rate"`
	Burst  int     `json:"burst"`
	Weight int     `json:"weight"`
}

// JournalStatus reports the write-ahead log's health in /fleetz.
type JournalStatus struct {
	Dir string `json:"dir"`
	// Stats are the log's own counters: appends, fsyncs, compactions,
	// current WAL records/bytes, salvage note from the last open.
	Stats journal.Stats `json:"stats"`
	// Errors counts journal write failures the service absorbed
	// (terminal transitions are still applied in memory).
	Errors int64 `json:"errors"`
	// Recovered summarizes what the last restart replayed.
	Recovered RecoveredStats `json:"recovered"`
}

// DeadLetter is one dead-letter row in the /fleetz report.
type DeadLetter struct {
	ID       int64  `json:"id"`
	Tenant   string `json:"tenant"`
	Key      string `json:"key"`
	Attempts int    `json:"attempts"`
	Err      string `json:"err"`
}

// Status is the /fleetz aggregate: the ladder state, queue occupancy,
// per-tenant and fleet-wide latency summaries, and the outage ledger
// (retries, sheds, rejections, dead letters, captured panics).
type Status struct {
	State      LadderState `json:"state"`
	Admission  string      `json:"admission"`
	QueueDepth int         `json:"queue_depth"`
	QueueCap   int         `json:"queue_cap"`
	InFlight   int         `json:"in_flight"`
	// Drifting lists scenario-family key prefixes whose virtual-time
	// p99 has drifted past DriftFactor × their established baseline.
	Drifting    []string            `json:"drifting,omitempty"`
	Fleet       TenantStatus        `json:"fleet"`
	Tenants     []TenantStatus      `json:"tenants"`
	Limits      []TenantLimitStatus `json:"limits,omitempty"`
	DeadLetters []DeadLetter        `json:"dead_letters,omitempty"`
	CacheSize   int                 `json:"cache_size"`
	PoolPanics  int64               `json:"pool_panics"`
	Journal     *JournalStatus      `json:"journal,omitempty"`
}

func (t *tenantAgg) status(name string) TenantStatus {
	e2e := mathx.Summarize(t.e2e)
	wall := mathx.Summarize(t.wall)
	return TenantStatus{
		Tenant:    name,
		Submitted: t.submitted,
		Completed: t.completed,
		Failed:    t.failed,
		Retries:   t.retries,
		Shed:      t.shed,
		Rejected:  t.rejected,
		Throttled: t.throttled,
		CacheHits: t.cacheHits,
		E2EP50:    e2e.Median,
		E2EP99:    e2e.P99,
		WallP50:   wall.Median,
		WallP99:   wall.P99,
	}
}

// Fleetz assembles the aggregate status report.
func (s *Service) Fleetz() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{
		State:      s.state,
		Admission:  s.cfg.Admission,
		QueueDepth: s.queue.Len(),
		QueueCap:   s.cfg.QueueDepth,
		InFlight:   s.inFlight,
		Drifting:   s.driftedVirtualLocked(),
		CacheSize:  len(s.cache),
		PoolPanics: s.pool.Panicked(),
	}
	fleet := &tenantAgg{}
	names := make([]string, 0, len(s.tenants))
	for name := range s.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := s.tenants[name]
		st.Tenants = append(st.Tenants, t.status(name))
		fleet.submitted += t.submitted
		fleet.completed += t.completed
		fleet.failed += t.failed
		fleet.retries += t.retries
		fleet.shed += t.shed
		fleet.rejected += t.rejected
		fleet.throttled += t.throttled
		fleet.cacheHits += t.cacheHits
		fleet.e2e = append(fleet.e2e, t.e2e...)
		fleet.wall = append(fleet.wall, t.wall...)
	}
	st.Fleet = fleet.status("fleet")
	limited := make([]string, 0, len(s.limits))
	for name := range s.limits {
		limited = append(limited, name)
	}
	sort.Strings(limited)
	for _, name := range limited {
		l := s.limitFor(name)
		st.Limits = append(st.Limits, TenantLimitStatus{
			Tenant: name, Rate: l.Rate, Burst: l.Burst, Weight: l.Weight,
		})
	}
	for _, rec := range s.dead {
		st.DeadLetters = append(st.DeadLetters, DeadLetter{
			ID: rec.ID, Tenant: rec.Tenant, Key: rec.Key,
			Attempts: len(rec.Attempts), Err: rec.Err,
		})
	}
	if s.cfg.Journal != "" {
		js := &JournalStatus{Dir: s.cfg.Journal, Errors: s.jlErrs, Recovered: s.recovered}
		if s.jl != nil {
			js.Stats = s.jl.Stats()
		}
		st.Journal = js
	}
	return st
}

// Jobs returns snapshots of all records, sorted by ID. filter narrows
// by lifecycle state ("queued", "running", "done", "failed", "shed")
// or the special "dead" (dead-lettered jobs); empty returns all.
func (s *Service) Jobs(filter string) []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, 0, len(s.records))
	for _, rec := range s.records {
		switch filter {
		case "":
		case "dead":
			if !rec.DeadLetter {
				continue
			}
		default:
			if string(rec.State) != filter {
				continue
			}
		}
		out = append(out, snapshotLocked(rec))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// State returns the ladder's current position.
func (s *Service) State() LadderState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// resolveSpec maps a job to its scenario spec: a named registry lookup
// (builtins + pinned search winners), or a params-line job driving the
// hardened stack fault-free through a discovered world.
func resolveSpec(job Job, resolve func(string) (scenario.Spec, error)) (scenario.Spec, error) {
	if job.Scenario != "" {
		spec, err := resolve(job.Scenario)
		if err != nil {
			return scenario.Spec{}, err
		}
		if job.Seed != 0 {
			spec.Seed = job.Seed
		}
		return spec, nil
	}
	cfg, err := worldFromParams(job.Params)
	if err != nil {
		return scenario.Spec{}, err
	}
	name := "params"
	if i := strings.IndexByte(job.Params, ' '); i > 0 {
		name = "params:" + job.Params[:min(12, len(job.Params))]
	}
	return scenario.Spec{
		Name:        name,
		Description: "fleet params-line job: generated world, hardened stack, fault-free",
		World:       &cfg,
		Guard:       true,
		Supervise:   true,
		Seed:        job.Seed,
	}, nil
}
