package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/autoware"
	"repro/internal/scenario"
)

// deterministicRunner reports by scenario name so reruns after a crash
// must reproduce results byte for byte. Jobs named "slow" block on the
// gate channel, pinning the worker so a crash catches them in flight.
func deterministicRunner(gate chan struct{}) runnerFunc {
	return func(ctx context.Context, spec scenario.Spec, det autoware.Detector, d time.Duration) (*RunResult, error) {
		if spec.Name == "slow" {
			<-gate
		}
		return &RunResult{Report: []byte("report:" + spec.Name + "\n"), E2EP99: 7}, nil
	}
}

// killMidFlight simulates SIGKILL while jobs are queued and running:
// the journal handle drops first (nothing further persists), then the
// gated in-flight job is released so the dead service can be reaped.
func killMidFlight(t *testing.T, svc *Service, gate chan struct{}) {
	t.Helper()
	killed := make(chan struct{})
	go func() {
		svc.killForTest()
		close(killed)
	}()
	deadline := time.Now().Add(30 * time.Second)
	for {
		svc.mu.Lock()
		dropped := svc.jl == nil && svc.closed
		svc.mu.Unlock()
		if dropped {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("killForTest never dropped the journal handle")
		}
		time.Sleep(time.Millisecond)
	}
	if gate != nil {
		close(gate)
	}
	<-killed
}

// TestFleetJournalCrashRecovery is the headline durability contract:
// kill the service mid-load, restart it on the same journal, and the
// completed reports are byte-identical to an uninterrupted run while
// every interrupted job re-runs to the identical result — with the
// retry schedule the dead process had planned.
func TestFleetJournalCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	cfg := Config{
		Workers: 1, QueueDepth: 16, RetryBudget: 2, RetryBase: time.Millisecond,
		Journal: dir, Resolve: passResolve, Runner: deterministicRunner(gate),
	}

	// The uninterrupted control run: same jobs, no crash.
	controlGate := make(chan struct{})
	close(controlGate)
	control := mustNew(t, Config{
		Workers: 1, QueueDepth: 16, RetryBudget: 2, RetryBase: time.Millisecond,
		Resolve: passResolve, Runner: deterministicRunner(controlGate),
	})
	want := map[string][]byte{}
	for _, name := range []string{"a", "b", "slow", "q1", "q2"} {
		rec, err := control.Submit(Job{Tenant: "t", Scenario: name})
		if err != nil {
			t.Fatal(err)
		}
		final := waitDone(t, control, rec.ID)
		if final.State != StateDone {
			t.Fatalf("control %s: state %s", name, final.State)
		}
		want[name] = final.Report()
	}
	control.Close()

	svc := mustNew(t, cfg)
	// Phase 1: two jobs complete and are journaled.
	phase1 := map[int64][]byte{}
	for _, name := range []string{"a", "b"} {
		rec, err := svc.Submit(Job{Tenant: "t", Scenario: name})
		if err != nil {
			t.Fatal(err)
		}
		final := waitDone(t, svc, rec.ID)
		if final.State != StateDone {
			t.Fatalf("phase-1 %s: state %s (%s)", name, final.State, final.Err)
		}
		phase1[rec.ID] = final.Report()
	}

	// Phase 2: "slow" pins the single worker, q1/q2 queue behind it.
	slow, err := svc.Submit(Job{Tenant: "t", Scenario: "slow"})
	if err != nil {
		t.Fatal(err)
	}
	waitState := func(id int64, st JobState) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for {
			rec, ok := svc.Get(id)
			if ok && rec.State == st {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %d never reached %s (now %s)", id, st, rec.State)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitState(slow.ID, StateRunning)
	var queued []*Record
	for _, name := range []string{"q1", "q2"} {
		rec, err := svc.Submit(Job{Tenant: "t", Scenario: name})
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, rec)
	}
	// The backoff schedule the dead process planned, to compare after
	// recovery: a pure function of (seed, key), so it must match.
	plannedBackoff := map[int64][]time.Duration{}
	for _, rec := range append([]*Record{slow}, queued...) {
		snap, _ := svc.Get(rec.ID)
		plannedBackoff[rec.ID] = snap.Backoff
	}

	killMidFlight(t, svc, gate)

	// Restart on the same journal. The gate is closed now, so "slow"
	// re-runs straight through.
	cfg.Runner = deterministicRunner(gate)
	svc2 := mustNew(t, cfg)
	defer svc2.Close()

	st := svc2.Fleetz()
	if st.Journal == nil {
		t.Fatal("restarted service reports no journal")
	}
	if got := st.Journal.Recovered; got.Queued != 3 || got.Done != 2 {
		t.Errorf("recovered %+v, want 3 queued and 2 done", got)
	}

	// Completed reports survived byte-identically (and match control).
	for id, report := range phase1 {
		rec, ok := svc2.Get(id)
		if !ok || rec.State != StateDone {
			t.Fatalf("recovered job %d: ok=%v state %s", id, ok, rec.State)
		}
		if !bytes.Equal(rec.Report(), report) {
			t.Errorf("recovered report %d differs from pre-crash bytes", id)
		}
		if !bytes.Equal(rec.Report(), want[rec.Job.Scenario]) {
			t.Errorf("recovered report %d differs from the uninterrupted run", id)
		}
		if rec.Resumed {
			t.Errorf("terminal job %d marked resumed", id)
		}
	}

	// Interrupted jobs resume — same planned backoff — and re-run to
	// the identical result.
	for _, orig := range append([]*Record{slow}, queued...) {
		final := waitDone(t, svc2, orig.ID)
		if final.State != StateDone {
			t.Fatalf("resumed job %d (%s): state %s (%s)", orig.ID, orig.Job.Scenario, final.State, final.Err)
		}
		if !final.Resumed {
			t.Errorf("job %d completed without the resumed mark", orig.ID)
		}
		if !bytes.Equal(final.Report(), want[orig.Job.Scenario]) {
			t.Errorf("resumed job %d report differs from the uninterrupted run", orig.ID)
		}
		if !reflect.DeepEqual(final.Backoff, plannedBackoff[orig.ID]) {
			t.Errorf("job %d recovered backoff %v, want the planned %v", orig.ID, final.Backoff, plannedBackoff[orig.ID])
		}
	}

	// The result cache survived: a recovered key resubmitted under a
	// different tenant is a cache hit with the original bytes.
	again, err := svc2.Submit(Job{Tenant: "other", Scenario: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit || !bytes.Equal(again.Report(), want["a"]) {
		t.Errorf("resubmitted recovered key: cache_hit=%v, want a byte-identical cache hit", again.CacheHit)
	}
}

// TestFleetJournalTornTail crashes the service, corrupts the WAL's
// final frame the way a torn write would, and verifies recovery
// salvages the intact prefix: the undamaged job's report survives
// byte-identically, the job whose completion was torn off simply
// re-runs.
func TestFleetJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Workers: 1, QueueDepth: 16, Journal: dir,
		Resolve: passResolve, Runner: deterministicRunner(nil),
	}
	svc := mustNew(t, cfg)
	var ids []int64
	for _, name := range []string{"intact", "torn"} {
		rec, err := svc.Submit(Job{Tenant: "t", Scenario: name})
		if err != nil {
			t.Fatal(err)
		}
		final := waitDone(t, svc, rec.ID)
		if final.State != StateDone {
			t.Fatalf("%s: state %s", name, final.State)
		}
		ids = append(ids, rec.ID)
	}
	killMidFlight(t, svc, nil)

	// Tear the tail: the last WAL frame is "torn"'s completion.
	wal := filepath.Join(dir, "wal")
	info, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(wal, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	svc2 := mustNew(t, cfg)
	defer svc2.Close()
	st := svc2.Fleetz()
	if st.Journal == nil || st.Journal.Recovered.Salvage == "" {
		t.Fatalf("torn tail recovered without a salvage note: %+v", st.Journal)
	}
	if got := st.Journal.Recovered; got.Done != 1 || got.Queued != 1 {
		t.Errorf("recovered %+v, want 1 done and 1 requeued", got)
	}
	if rec, ok := svc2.Get(ids[0]); !ok || rec.State != StateDone || !bytes.Equal(rec.Report(), []byte("report:intact\n")) {
		t.Errorf("intact job did not survive the torn tail: ok=%v %+v", ok, rec)
	}
	// The torn job re-runs deterministically to the same bytes.
	final := waitDone(t, svc2, ids[1])
	if final.State != StateDone || !final.Resumed || !bytes.Equal(final.Report(), []byte("report:torn\n")) {
		t.Errorf("torn job: state %s resumed %v, want a resumed byte-identical re-run", final.State, final.Resumed)
	}
}

// TestFleetJournalCompaction keeps the log bounded: with a small
// snapshot threshold the WAL compacts during load, and a restart
// replays full state from the compact image.
func TestFleetJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Workers: 2, QueueDepth: 32, Journal: dir, SnapshotEvery: 4,
		Resolve: passResolve, Runner: deterministicRunner(nil),
	}
	svc := mustNew(t, cfg)
	const jobs = 10
	for i := 0; i < jobs; i++ {
		rec, err := svc.Submit(Job{Tenant: "t", Scenario: fmt.Sprintf("job-%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		if final := waitDone(t, svc, rec.ID); final.State != StateDone {
			t.Fatalf("job %d: state %s", i, final.State)
		}
	}
	st := svc.Fleetz()
	if st.Journal == nil || st.Journal.Stats.Compactions < 1 {
		t.Fatalf("no compaction after %d jobs at SnapshotEvery=4: %+v", jobs, st.Journal)
	}
	if st.Journal.Stats.WALRecords > 2*4 {
		t.Errorf("WAL holds %d records after compaction, want bounded near the threshold", st.Journal.Stats.WALRecords)
	}
	svc.Close()

	svc2 := mustNew(t, cfg)
	defer svc2.Close()
	if got := svc2.Fleetz().Journal.Recovered.Done; got != jobs {
		t.Errorf("restart recovered %d done jobs, want %d", got, jobs)
	}
	if recs := svc2.Jobs("done"); len(recs) != jobs {
		t.Errorf("restart lists %d done records, want %d", len(recs), jobs)
	}
}

// TestFleetJournalLimitsPersist proves runtime tenant contracts
// survive a crash: a limit installed via SetTenantLimit throttles
// again after kill-and-restart.
func TestFleetJournalLimitsPersist(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Workers: 1, QueueDepth: 16, Journal: dir,
		Resolve: passResolve, Runner: deterministicRunner(nil),
	}
	svc := mustNew(t, cfg)
	if err := svc.SetTenantLimit("metered", TenantLimit{Rate: 0.0001, Burst: 1, Weight: 3}); err != nil {
		t.Fatal(err)
	}
	killMidFlight(t, svc, nil)

	svc2 := mustNew(t, cfg)
	defer svc2.Close()
	st := svc2.Fleetz()
	if len(st.Limits) != 1 || st.Limits[0].Tenant != "metered" ||
		st.Limits[0].Rate != 0.0001 || st.Limits[0].Burst != 1 || st.Limits[0].Weight != 3 {
		t.Fatalf("recovered limits %+v, want metered 0.0001:1:3", st.Limits)
	}
	if _, err := svc2.Submit(Job{Tenant: "metered", Scenario: "s0"}); err != nil {
		t.Fatalf("first metered job after restart: %v", err)
	}
	if _, err := svc2.Submit(Job{Tenant: "metered", Scenario: "s1"}); !errors.Is(err, ErrTenantThrottled) {
		t.Fatalf("second metered job after restart: %v, want the recovered limit to throttle", err)
	}
}

// TestFleetJournalCloseKeepsQueue pins the graceful-shutdown contract:
// a journaled Close leaves queued jobs in the log (unlike the plain
// service, which fails them), and the next incarnation runs them.
func TestFleetJournalCloseKeepsQueue(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	cfg := Config{
		Workers: 1, QueueDepth: 16, Journal: dir,
		Resolve: passResolve, Runner: deterministicRunner(gate),
	}
	svc := mustNew(t, cfg)
	blocker, err := svc.Submit(Job{Tenant: "t", Scenario: "slow"})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		rec, _ := svc.Get(blocker.ID)
		if rec.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(time.Millisecond)
	}
	parked, err := svc.Submit(Job{Tenant: "t", Scenario: "parked"})
	if err != nil {
		t.Fatal(err)
	}

	closed := make(chan struct{})
	go func() {
		svc.Close()
		close(closed)
	}()
	for {
		svc.mu.Lock()
		stopping := svc.closed
		svc.mu.Unlock()
		if stopping {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Close never stopped admission")
		}
		time.Sleep(time.Millisecond)
	}
	close(gate) // the in-flight blocker finishes inside Close
	<-closed

	svc2 := mustNew(t, cfg)
	defer svc2.Close()
	if got := svc2.Fleetz().Journal.Recovered; got.Queued != 1 || got.Done != 1 {
		t.Errorf("recovered %+v, want the parked job queued and the blocker done", got)
	}
	final := waitDone(t, svc2, parked.ID)
	if final.State != StateDone || !final.Resumed || !bytes.Equal(final.Report(), []byte("report:parked\n")) {
		t.Errorf("parked job after graceful restart: state %s resumed %v", final.State, final.Resumed)
	}
}

// TestApplyWALDamagedDone covers the replay hash check directly: a
// completion entry whose report bytes fail their content hash is
// dropped, leaving the job queued to re-run.
func TestApplyWALDamagedDone(t *testing.T) {
	svc := mustNew(t, Config{
		Workers: 1, QueueDepth: 4, Resolve: passResolve,
		Runner: deterministicRunner(nil),
	})
	defer svc.Close()

	mustJSON := func(e walEntry) []byte {
		data, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	job := Job{Tenant: "t", Scenario: "x", Duration: time.Second}
	svc.mu.Lock()
	defer svc.mu.Unlock()
	if !svc.applyWALLocked(mustJSON(walEntry{Op: opAdmit, ID: 7, Seq: 1, Key: "k", Tenant: "t", Job: &job})) {
		t.Fatal("admit entry rejected")
	}
	damaged := walEntry{Op: opDone, ID: 7, Report: []byte("tampered"), Hash: reportHash([]byte("original"))}
	if svc.applyWALLocked(mustJSON(damaged)) {
		t.Error("completion with a mismatched content hash was accepted")
	}
	if rec := svc.records[7]; rec == nil || rec.State != StateQueued {
		t.Errorf("damaged completion left job in %v, want queued for re-run", svc.records[7])
	}
	good := walEntry{Op: opDone, ID: 7, Report: []byte("original"), Hash: reportHash([]byte("original")), E2E: 1}
	if !svc.applyWALLocked(mustJSON(good)) {
		t.Error("intact completion rejected")
	}
	if rec := svc.records[7]; rec.State != StateDone || !bytes.Equal(rec.report, []byte("original")) {
		t.Errorf("intact completion not applied: %+v", svc.records[7])
	}
}
