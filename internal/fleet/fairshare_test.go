package fleet

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/autoware"
	"repro/internal/mathx"
	"repro/internal/scenario"
)

// TestTokenBucket pins the bucket arithmetic against an injected
// clock: priming to the full burst, refill at the configured rate,
// capping at burst, and the retry-after hint when dry.
func TestTokenBucket(t *testing.T) {
	now := time.Unix(0, 0)
	b := &bucket{}

	// Primed full: the initial burst is admitted.
	for i := 0; i < 2; i++ {
		if wait, ok := b.take(now, 1, 2); !ok || wait != 0 {
			t.Fatalf("burst take %d: ok=%v wait=%v, want free admission", i, ok, wait)
		}
	}
	wait, ok := b.take(now, 1, 2)
	if ok {
		t.Fatal("dry bucket admitted a third take")
	}
	if wait < 900*time.Millisecond || wait > 1100*time.Millisecond {
		t.Errorf("dry bucket retry-after %v, want ~1s at 1 token/s", wait)
	}

	// One second later a whole token has accrued.
	now = now.Add(time.Second)
	if _, ok := b.take(now, 1, 2); !ok {
		t.Error("refilled bucket rejected a take")
	}

	// A long idle stretch caps at burst, not unbounded credit.
	now = now.Add(time.Hour)
	for i := 0; i < 2; i++ {
		if _, ok := b.take(now, 1, 2); !ok {
			t.Fatalf("post-idle take %d rejected; refill did not cap at burst", i)
		}
	}
	if _, ok := b.take(now, 1, 2); ok {
		t.Error("idle refill exceeded the burst cap")
	}

	// Zero rate means unlimited.
	unlimited := &bucket{}
	for i := 0; i < 100; i++ {
		if _, ok := unlimited.take(now, 0, 1); !ok {
			t.Fatal("zero-rate bucket throttled")
		}
	}
}

// TestFleetThrottle drives the service-level rate limit with an
// injected clock: burst admitted, overflow rejected as a
// *ThrottleError matching ErrTenantThrottled, refill re-admits.
func TestFleetThrottle(t *testing.T) {
	svc := mustNew(t, Config{
		Workers: 1, QueueDepth: 32, Resolve: passResolve,
		TenantRate: 1, TenantBurst: 2,
		Runner: runnerFunc(func(ctx context.Context, spec scenario.Spec, det autoware.Detector, d time.Duration) (*RunResult, error) {
			return &RunResult{Report: []byte("ok\n"), E2EP99: 1}, nil
		}),
	})
	defer svc.Close()
	clock := time.Unix(1000, 0)
	svc.now = func() time.Time { return clock }

	for i := 0; i < 2; i++ {
		if _, err := svc.Submit(Job{Tenant: "m", Scenario: fmt.Sprintf("s%d", i)}); err != nil {
			t.Fatalf("burst submit %d: %v", i, err)
		}
	}
	_, err := svc.Submit(Job{Tenant: "m", Scenario: "s2"})
	if !errors.Is(err, ErrTenantThrottled) {
		t.Fatalf("overflow submit err %v, want ErrTenantThrottled", err)
	}
	var throttle *ThrottleError
	if !errors.As(err, &throttle) || throttle.Tenant != "m" || throttle.RetryAfter <= 0 {
		t.Fatalf("overflow error %#v, want *ThrottleError for tenant m with a positive hint", err)
	}

	// Another tenant is unaffected: buckets are per tenant.
	if _, err := svc.Submit(Job{Tenant: "other", Scenario: "s3"}); err != nil {
		t.Fatalf("other tenant throttled by m's bucket: %v", err)
	}

	// After the hinted wait the tenant is admitted again.
	clock = clock.Add(throttle.RetryAfter + time.Millisecond)
	if _, err := svc.Submit(Job{Tenant: "m", Scenario: "s4"}); err != nil {
		t.Fatalf("post-refill submit: %v", err)
	}

	if got := svc.Fleetz().Fleet.Throttled; got != 1 {
		t.Errorf("throttled counter %d, want 1", got)
	}
}

// TestFairShareDRROrder pins the deficit-round-robin dispatch order:
// with tenant a at weight 2 and tenant b at weight 1, a backlog
// queued as a1..a3, b1..b3 dispatches a1 a2 b1 a3 b2 b3.
func TestFairShareDRROrder(t *testing.T) {
	release := make(chan struct{})
	blocked := make(chan struct{})
	order := make(chan string, 16)
	svc := mustNew(t, Config{
		Workers: 1, QueueDepth: 16, Resolve: passResolve,
		Limits: map[string]TenantLimit{"a": {Weight: 2}},
		Runner: runnerFunc(func(ctx context.Context, spec scenario.Spec, det autoware.Detector, d time.Duration) (*RunResult, error) {
			if spec.Name == "blocker" {
				blocked <- struct{}{}
				<-release
			} else {
				order <- spec.Name
			}
			return &RunResult{Report: []byte("ok\n"), E2EP99: 1}, nil
		}),
	})
	defer svc.Close()

	// Pin the single worker so the backlog queues in a known state.
	if _, err := svc.Submit(Job{Tenant: "z", Scenario: "blocker"}); err != nil {
		t.Fatal(err)
	}
	<-blocked
	var last *Record
	for _, name := range []string{"a1", "a2", "a3", "b1", "b2", "b3"} {
		rec, err := svc.Submit(Job{Tenant: name[:1], Scenario: name})
		if err != nil {
			t.Fatalf("submit %s: %v", name, err)
		}
		last = rec
	}
	close(release)
	waitDone(t, svc, last.ID)

	want := []string{"a1", "a2", "b1", "a3", "b2", "b3"}
	for i, w := range want {
		select {
		case got := <-order:
			if got != w {
				t.Fatalf("dispatch %d: got %s, want %s (weight-2 DRR order)", i, got, w)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("dispatch %d (%s) never ran", i, w)
		}
	}
}

// TestFairShareStarvation is the acceptance contract: a tenant
// bursting a large backlog cannot starve another tenant's small,
// steady trickle under fair-share admission, while total throughput
// stays within 10% of the global-priority discipline.
func TestFairShareStarvation(t *testing.T) {
	const (
		hogJobs   = 150
		mouseJobs = 8
		workMS    = 2
	)
	run := func(admission string) (mouseP99 float64, total time.Duration) {
		t.Helper()
		svc := mustNew(t, Config{
			Workers: 2, QueueDepth: 256, CacheSize: -1,
			Admission: admission, Resolve: passResolve,
			Runner: runnerFunc(func(ctx context.Context, spec scenario.Spec, det autoware.Detector, d time.Duration) (*RunResult, error) {
				time.Sleep(workMS * time.Millisecond)
				return &RunResult{Report: []byte("ok:" + spec.Name + "\n"), E2EP99: 1}, nil
			}),
		})
		defer svc.Close()

		start := time.Now()
		hog := make([]*Record, 0, hogJobs)
		for i := 0; i < hogJobs; i++ {
			rec, err := svc.Submit(Job{Tenant: "hog", Scenario: fmt.Sprintf("hog-%d", i)})
			if err != nil {
				t.Fatalf("hog submit %d (%s): %v", i, admission, err)
			}
			hog = append(hog, rec)
		}
		// The mouse trickles in behind the burst, waiting for each job:
		// its wall time is dominated by how long dispatch makes it queue.
		var mouseWall []float64
		for i := 0; i < mouseJobs; i++ {
			rec, err := svc.Submit(Job{Tenant: "mouse", Scenario: fmt.Sprintf("mouse-%d", i)})
			if err != nil {
				t.Fatalf("mouse submit %d (%s): %v", i, admission, err)
			}
			final := waitDone(t, svc, rec.ID)
			mouseWall = append(mouseWall, final.WallMS)
		}
		for _, rec := range hog {
			waitDone(t, svc, rec.ID)
		}
		return mathx.Quantile(mouseWall, 0.99), time.Since(start)
	}

	fairP99, fairTotal := run(AdmissionFair)
	priP99, priTotal := run(AdmissionPriority)
	t.Logf("mouse p99: fair %.1fms vs priority %.1fms; total: fair %v vs priority %v",
		fairP99, priP99, fairTotal, priTotal)

	// Under global priority the mouse waits behind the hog's whole
	// backlog; under fair share it waits a round-robin turn. Demand a
	// decisive separation, not a marginal one.
	if fairP99 > priP99/2 {
		t.Errorf("fair-share mouse p99 %.1fms vs priority %.1fms: starvation not prevented", fairP99, priP99)
	}
	// Fairness must not cost throughput: the same work drains in
	// roughly the same time (10%% bound plus scheduling slack).
	bound := time.Duration(float64(priTotal)*1.10) + 250*time.Millisecond
	if fairTotal > bound {
		t.Errorf("fair-share drained in %v, want <= %v (priority %v + 10%%)", fairTotal, bound, priTotal)
	}
}
