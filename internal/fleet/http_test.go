package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/autoware"
	"repro/internal/scenario"
)

// TestFleetHTTP drives the service through its HTTP surface with a
// fake runner: submit-and-wait, record and report retrieval, the
// /fleetz aggregate, and the explicit overload status codes.
func TestFleetHTTP(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	svc := New(Config{
		Workers: 1, QueueDepth: 2, RetryBudget: 1, RetryBase: time.Millisecond,
		ShedHighWater: 2, DrainHighWater: 2, // saturation path under test, not the ladder
		Resolve: passResolve,
		Runner: runnerFunc(func(ctx context.Context, spec scenario.Spec, det autoware.Detector, d time.Duration) (*RunResult, error) {
			if spec.Name == "block" {
				started <- struct{}{}
				select {
				case <-release:
				case <-ctx.Done():
				}
			}
			return &RunResult{Report: []byte("report:" + spec.Name + "\n"), E2EP99: 5}, nil
		}),
	})
	defer svc.Close()
	ts := httptest.NewServer(Handler(svc))
	defer ts.Close()

	post := func(body string, query string) (*http.Response, string) {
		resp, err := http.Post(ts.URL+"/jobs"+query, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		return resp, buf.String()
	}

	// Submit-and-wait returns the terminal record.
	resp, body := post(`{"tenant":"alice","scenario":"demo"}`, "?wait=1")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs?wait=1: status %d body %s", resp.StatusCode, body)
	}
	var rec Record
	if err := json.Unmarshal([]byte(body), &rec); err != nil {
		t.Fatalf("decoding record: %v", err)
	}
	if rec.State != StateDone {
		t.Fatalf("job state %s, want done", rec.State)
	}

	// Record and report retrieval by id.
	get := func(path string) (*http.Response, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		return resp, buf.String()
	}
	if resp, body := get(fmt.Sprintf("/jobs/%d", rec.ID)); resp.StatusCode != http.StatusOK || !strings.Contains(body, `"done"`) {
		t.Errorf("GET /jobs/{id}: status %d body %s", resp.StatusCode, body)
	}
	if resp, body := get(fmt.Sprintf("/jobs/%d/report", rec.ID)); resp.StatusCode != http.StatusOK || body != "report:demo\n" {
		t.Errorf("GET /jobs/{id}/report: status %d body %q", resp.StatusCode, body)
	}
	if resp, _ := get("/jobs/99999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET unknown job: status %d, want 404", resp.StatusCode)
	}

	// Validation failures are 400s.
	if resp, _ := post(`{"tenant":"bad"}`, ""); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid job: status %d, want 400", resp.StatusCode)
	}

	// Saturation is an explicit 429: block the worker, fill the queue.
	if resp, _ := post(`{"tenant":"b","scenario":"block"}`, ""); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("blocker: status %d", resp.StatusCode)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("blocker never started")
	}
	saw429 := false
	for i := 0; i < 4; i++ {
		resp, _ := post(fmt.Sprintf(`{"tenant":"b","scenario":"q%d"}`, i), "")
		if resp.StatusCode == http.StatusTooManyRequests {
			if resp.Header.Get("Retry-After") == "" {
				t.Errorf("429 without Retry-After")
			}
			saw429 = true
			break
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("queue fill %d: status %d", i, resp.StatusCode)
		}
	}
	if !saw429 {
		t.Errorf("saturating the queue over HTTP never returned 429")
	}
	close(release)

	// /fleetz and /healthz answer with the aggregate.
	if resp, body := get("/fleetz"); resp.StatusCode != http.StatusOK || !strings.Contains(body, `"fleet"`) {
		t.Errorf("GET /fleetz: status %d body %s", resp.StatusCode, body)
	}
	if resp, body := get("/healthz"); resp.StatusCode != http.StatusOK || !strings.Contains(body, `"ok": true`) {
		t.Errorf("GET /healthz: status %d body %s", resp.StatusCode, body)
	}
}
