package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/autoware"
	"repro/internal/scenario"
)

// TestFleetHTTP drives the service through its HTTP surface with a
// fake runner: submit-and-wait, record and report retrieval, the
// /fleetz aggregate, and the explicit overload status codes.
func TestFleetHTTP(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	svc := mustNew(t, Config{
		Workers: 1, QueueDepth: 2, RetryBudget: 1, RetryBase: time.Millisecond,
		ShedHighWater: 2, DrainHighWater: 2, // saturation path under test, not the ladder
		Resolve: passResolve,
		Runner: runnerFunc(func(ctx context.Context, spec scenario.Spec, det autoware.Detector, d time.Duration) (*RunResult, error) {
			if spec.Name == "block" {
				started <- struct{}{}
				select {
				case <-release:
				case <-ctx.Done():
				}
			}
			return &RunResult{Report: []byte("report:" + spec.Name + "\n"), E2EP99: 5}, nil
		}),
	})
	defer svc.Close()
	ts := httptest.NewServer(Handler(svc))
	defer ts.Close()

	post := func(body string, query string) (*http.Response, string) {
		resp, err := http.Post(ts.URL+"/jobs"+query, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		return resp, buf.String()
	}

	// Submit-and-wait returns the terminal record.
	resp, body := post(`{"tenant":"alice","scenario":"demo"}`, "?wait=1")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs?wait=1: status %d body %s", resp.StatusCode, body)
	}
	var rec Record
	if err := json.Unmarshal([]byte(body), &rec); err != nil {
		t.Fatalf("decoding record: %v", err)
	}
	if rec.State != StateDone {
		t.Fatalf("job state %s, want done", rec.State)
	}

	// Record and report retrieval by id.
	get := func(path string) (*http.Response, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		return resp, buf.String()
	}
	if resp, body := get(fmt.Sprintf("/jobs/%d", rec.ID)); resp.StatusCode != http.StatusOK || !strings.Contains(body, `"done"`) {
		t.Errorf("GET /jobs/{id}: status %d body %s", resp.StatusCode, body)
	}
	if resp, body := get(fmt.Sprintf("/jobs/%d/report", rec.ID)); resp.StatusCode != http.StatusOK || body != "report:demo\n" {
		t.Errorf("GET /jobs/{id}/report: status %d body %q", resp.StatusCode, body)
	}
	if resp, _ := get("/jobs/99999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET unknown job: status %d, want 404", resp.StatusCode)
	}

	// Validation failures are 400s.
	if resp, _ := post(`{"tenant":"bad"}`, ""); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid job: status %d, want 400", resp.StatusCode)
	}

	// Saturation is an explicit 429: block the worker, fill the queue.
	if resp, _ := post(`{"tenant":"b","scenario":"block"}`, ""); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("blocker: status %d", resp.StatusCode)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("blocker never started")
	}
	saw429 := false
	for i := 0; i < 4; i++ {
		resp, _ := post(fmt.Sprintf(`{"tenant":"b","scenario":"q%d"}`, i), "")
		if resp.StatusCode == http.StatusTooManyRequests {
			// The 429 contract: Retry-After present and a positive
			// integer of seconds, so naive clients can sleep on it.
			ra := resp.Header.Get("Retry-After")
			if ra == "" {
				t.Errorf("429 without Retry-After")
			} else if secs, err := strconv.Atoi(ra); err != nil || secs <= 0 {
				t.Errorf("429 Retry-After %q does not parse as a positive integer (err %v)", ra, err)
			}
			saw429 = true
			break
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("queue fill %d: status %d", i, resp.StatusCode)
		}
	}
	if !saw429 {
		t.Errorf("saturating the queue over HTTP never returned 429")
	}
	close(release)

	// /fleetz and /healthz answer with the aggregate.
	if resp, body := get("/fleetz"); resp.StatusCode != http.StatusOK || !strings.Contains(body, `"fleet"`) {
		t.Errorf("GET /fleetz: status %d body %s", resp.StatusCode, body)
	}
	if resp, body := get("/healthz"); resp.StatusCode != http.StatusOK || !strings.Contains(body, `"ok": true`) {
		t.Errorf("GET /healthz: status %d body %s", resp.StatusCode, body)
	}
}

// TestFleetHTTPJobsFilter covers the /jobs listing and its state
// filter, in particular the dead-letter view.
func TestFleetHTTPJobsFilter(t *testing.T) {
	svc := mustNew(t, Config{
		Workers: 1, QueueDepth: 8, RetryBudget: 1, RetryBase: time.Millisecond,
		Resolve: passResolve,
		Runner: runnerFunc(func(ctx context.Context, spec scenario.Spec, det autoware.Detector, d time.Duration) (*RunResult, error) {
			if spec.Name == "corrupt" {
				panic("corrupt scenario")
			}
			return &RunResult{Report: []byte("ok\n"), E2EP99: 1}, nil
		}),
	})
	defer svc.Close()
	ts := httptest.NewServer(Handler(svc))
	defer ts.Close()

	good, err := svc.Submit(Job{Tenant: "a", Scenario: "healthy"})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := svc.Submit(Job{Tenant: "a", Scenario: "corrupt"})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, svc, good.ID)
	waitDone(t, svc, bad.ID)

	fetch := func(path string) []Record {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		var recs []Record
		if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return recs
	}

	if all := fetch("/jobs"); len(all) != 2 {
		t.Errorf("GET /jobs listed %d records, want 2", len(all))
	}
	if done := fetch("/jobs?state=done"); len(done) != 1 || done[0].ID != good.ID {
		t.Errorf("GET /jobs?state=done = %+v, want only the healthy job", done)
	}
	dead := fetch("/jobs?state=dead")
	if len(dead) != 1 || dead[0].ID != bad.ID || !dead[0].DeadLetter {
		t.Errorf("GET /jobs?state=dead = %+v, want only the dead-lettered job", dead)
	}
	resp, err := http.Get(ts.URL + "/jobs?state=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("GET /jobs?state=bogus: status %d, want 400", resp.StatusCode)
	}

	// The dead letter also shows in /fleetz alongside journal-less
	// service status.
	st := svc.Fleetz()
	if len(st.DeadLetters) != 1 || st.DeadLetters[0].ID != bad.ID {
		t.Errorf("fleetz dead letters %+v, want the corrupt job", st.DeadLetters)
	}
	if st.Journal != nil {
		t.Errorf("fleetz reports journal %+v on an in-memory service", st.Journal)
	}
}

// TestFleetHTTPTenantLimit covers the limit-install endpoint and the
// throttled 429's Retry-After contract.
func TestFleetHTTPTenantLimit(t *testing.T) {
	svc := mustNew(t, Config{
		Workers: 1, QueueDepth: 32, Resolve: passResolve,
		Runner: runnerFunc(func(ctx context.Context, spec scenario.Spec, det autoware.Detector, d time.Duration) (*RunResult, error) {
			return &RunResult{Report: []byte("ok\n"), E2EP99: 1}, nil
		}),
	})
	defer svc.Close()
	ts := httptest.NewServer(Handler(svc))
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/tenants/metered/limit", "application/json",
		strings.NewReader(`{"rate":0.001,"burst":1,"weight":2}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /tenants/metered/limit: status %d", resp.StatusCode)
	}
	if st := svc.Fleetz(); len(st.Limits) != 1 || st.Limits[0].Tenant != "metered" || st.Limits[0].Rate != 0.001 {
		t.Fatalf("fleetz limits %+v, want metered at 0.001/s", svc.Fleetz().Limits)
	}

	// One token in the bucket: the first submission is admitted, the
	// second is throttled with a positive-integer Retry-After. Distinct
	// scenarios, so the cache (which rightly skips the bucket) stays out
	// of the way.
	submit := func(scenario string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/jobs", "application/json",
			strings.NewReader(`{"tenant":"metered","scenario":"`+scenario+`"}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := submit("s0"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first metered job: status %d, want 202", resp.StatusCode)
	}
	resp = submit("s1")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second metered job: status %d, want 429", resp.StatusCode)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs <= 0 {
		t.Errorf("throttled Retry-After %q, want a positive integer (err %v)",
			resp.Header.Get("Retry-After"), err)
	}
	if got := svc.Fleetz().Fleet.Throttled; got != 1 {
		t.Errorf("fleetz throttled = %d, want 1", got)
	}
}
