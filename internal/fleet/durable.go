package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"repro/internal/journal"
)

// Durability: every job state transition is a JSON walEntry framed and
// CRC-checked by internal/journal. Admissions and terminal transitions
// are fsynced before they are acknowledged; attempt markers are
// appended without sync — losing one to a crash only re-runs a
// deterministic attempt. Compaction folds the full service state into
// an atomic snapshot (snapState) and truncates the WAL, and replay is
// idempotent: the crash window between snapshot install and WAL
// truncation re-delivers old entries, which the skip-if-known rules
// below absorb.

// WAL operation codes.
const (
	opAdmit = "admit" // job admitted (fsynced; CacheHit admits are self-contained)
	opStart = "start" // attempt started (advisory, not fsynced)
	opRetry = "retry" // transient failure consumed one backoff slot (not fsynced)
	opDone  = "done"  // completed, with report bytes + content hash (fsynced)
	opDead  = "dead"  // retry budget exhausted, dead-lettered (fsynced)
	opFail  = "fail"  // terminal non-dead failure (fsynced)
	opShed  = "shed"  // evicted by the degradation ladder (fsynced)
	opLimit = "limit" // tenant admission contract installed (fsynced)
)

// walEntry is one journaled state transition.
type walEntry struct {
	Op       string       `json:"op"`
	ID       int64        `json:"id,omitempty"`
	Seq      int64        `json:"seq,omitempty"`
	Key      string       `json:"key,omitempty"`
	Tenant   string       `json:"tenant,omitempty"`
	Job      *Job         `json:"job,omitempty"`
	Enq      int64        `json:"enq,omitempty"` // admission time, unix nanos
	Attempt  int          `json:"attempt,omitempty"`
	Retries  int          `json:"retries,omitempty"`
	Outcome  string       `json:"outcome,omitempty"`
	Err      string       `json:"err,omitempty"`
	Report   []byte       `json:"report,omitempty"`
	Hash     string       `json:"hash,omitempty"`
	E2E      float64      `json:"e2e,omitempty"`
	Wall     float64      `json:"wall,omitempty"`
	CacheHit bool         `json:"cache_hit,omitempty"`
	Limit    *TenantLimit `json:"limit,omitempty"`
}

// reportHash is the content hash journaled with every completion so
// replay can verify the report bytes survived the disk intact.
func reportHash(report []byte) string {
	sum := sha256.Sum256(report)
	return hex.EncodeToString(sum[:])
}

// admitEntry builds the admission WAL entry. A cache-hit admission is
// self-contained (report + hash inline) so replay reconstructs the
// terminal record from the one entry.
func admitEntry(rec *Record) walEntry {
	e := walEntry{
		Op: opAdmit, ID: rec.ID, Seq: rec.seq, Key: rec.Key,
		Tenant: rec.Tenant, Job: &rec.Job, Enq: rec.enqueued.UnixNano(),
	}
	if rec.CacheHit {
		e.CacheHit = true
		e.Report = rec.report
		e.Hash = reportHash(rec.report)
		e.E2E = rec.E2EP99
	}
	return e
}

// RecoveredStats summarizes what a restart replayed from the journal.
type RecoveredStats struct {
	// Queued is how many interrupted (queued or in-flight) jobs were
	// requeued for re-execution.
	Queued int `json:"queued"`
	Done   int `json:"done"`
	Failed int `json:"failed"`
	Dead   int `json:"dead"`
	Shed   int `json:"shed"`
	// Skipped counts WAL entries that failed to decode or verify and
	// were dropped (the affected job re-runs rather than trusting them).
	Skipped int `json:"skipped"`
	// Salvage is the journal's torn-tail note, empty on a clean open.
	Salvage string `json:"salvage,omitempty"`
}

// logLocked journals one entry, optionally fsyncing it. A nil journal
// is a no-op; write failures are counted and, on the fsynced admission
// path, propagated so no acknowledged job can be lost silently.
// Callers hold s.mu.
func (s *Service) logLocked(e walEntry, sync bool) error {
	if s.jl == nil {
		return nil
	}
	data, err := json.Marshal(e)
	if err != nil {
		s.jlErrs++
		return err
	}
	if err := s.jl.Append(data); err != nil {
		s.jlErrs++
		return err
	}
	s.walSinceCompact++
	if sync {
		if err := s.jl.Sync(); err != nil {
			s.jlErrs++
			return err
		}
	}
	return nil
}

// maybeCompactLocked folds state into a snapshot once enough WAL
// entries accumulated. Callers hold s.mu.
func (s *Service) maybeCompactLocked() {
	if s.jl == nil || s.cfg.SnapshotEvery <= 0 || s.walSinceCompact < s.cfg.SnapshotEvery {
		return
	}
	s.compactLocked()
}

// compactLocked writes the full service state as an atomic snapshot
// and truncates the WAL. Failure is absorbed (counted in jlErrs): the
// un-truncated WAL still replays correctly. Callers hold s.mu.
func (s *Service) compactLocked() {
	if s.jl == nil {
		return
	}
	data, err := json.Marshal(s.snapStateLocked())
	if err != nil {
		s.jlErrs++
		return
	}
	if err := s.jl.Compact(data); err != nil {
		s.jlErrs++
		return
	}
	s.walSinceCompact = 0
}

// Snapshot schema. Sample slices are trimmed so snapshots stay
// bounded; quantiles coarsen slightly across a restart, counters do
// not.
const snapSampleCap = 256

type snapRecord struct {
	ID         int64     `json:"id"`
	Seq        int64     `json:"seq"`
	Job        Job       `json:"job"`
	Key        string    `json:"key"`
	State      JobState  `json:"state"`
	Tenant     string    `json:"tenant"`
	Attempts   []Attempt `json:"attempts,omitempty"`
	Retries    int       `json:"retries,omitempty"`
	CacheHit   bool      `json:"cache_hit,omitempty"`
	DeadLetter bool      `json:"dead_letter,omitempty"`
	Err        string    `json:"err,omitempty"`
	E2E        float64   `json:"e2e,omitempty"`
	Wall       float64   `json:"wall,omitempty"`
	Report     []byte    `json:"report,omitempty"`
	Enq        int64     `json:"enq"`
	Resumed    bool      `json:"resumed,omitempty"`
}

type snapTenant struct {
	Submitted int64     `json:"submitted"`
	Completed int64     `json:"completed"`
	Failed    int64     `json:"failed"`
	Retries   int64     `json:"retries"`
	Shed      int64     `json:"shed"`
	Rejected  int64     `json:"rejected"`
	CacheHits int64     `json:"cache_hits"`
	Throttled int64     `json:"throttled"`
	E2E       []float64 `json:"e2e,omitempty"`
	Wall      []float64 `json:"wall,omitempty"`
}

type snapState struct {
	NextID  int64                  `json:"next_id"`
	NextSeq int64                  `json:"next_seq"`
	Records []snapRecord           `json:"records,omitempty"`
	Tenants map[string]snapTenant  `json:"tenants,omitempty"`
	Limits  map[string]TenantLimit `json:"limits,omitempty"`
	// Dead is the dead-letter ledger as record IDs, in ledger order.
	Dead []int64 `json:"dead,omitempty"`
}

func trimSamples(v []float64) []float64 {
	if len(v) > snapSampleCap {
		v = v[len(v)-snapSampleCap:]
	}
	return append([]float64(nil), v...)
}

// snapStateLocked captures the full durable state. Callers hold s.mu.
func (s *Service) snapStateLocked() snapState {
	st := snapState{
		NextID:  s.nextID,
		NextSeq: s.nextSeq,
		Tenants: make(map[string]snapTenant, len(s.tenants)),
		Limits:  make(map[string]TenantLimit, len(s.limits)),
	}
	ids := make([]int64, 0, len(s.records))
	for id := range s.records {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		rec := s.records[id]
		st.Records = append(st.Records, snapRecord{
			ID: rec.ID, Seq: rec.seq, Job: rec.Job, Key: rec.Key,
			State: rec.State, Tenant: rec.Tenant,
			Attempts: rec.Attempts, Retries: rec.Retries,
			CacheHit: rec.CacheHit, DeadLetter: rec.DeadLetter,
			Err: rec.Err, E2E: rec.E2EP99, Wall: rec.WallMS,
			Report: rec.report, Enq: rec.enqueued.UnixNano(),
			Resumed: rec.Resumed,
		})
	}
	for name, t := range s.tenants {
		st.Tenants[name] = snapTenant{
			Submitted: t.submitted, Completed: t.completed, Failed: t.failed,
			Retries: t.retries, Shed: t.shed, Rejected: t.rejected,
			CacheHits: t.cacheHits, Throttled: t.throttled,
			E2E: trimSamples(t.e2e), Wall: trimSamples(t.wall),
		}
	}
	for name, l := range s.limits {
		st.Limits[name] = l
	}
	for _, rec := range s.dead {
		st.Dead = append(st.Dead, rec.ID)
	}
	return st
}

// recover opens the journal and rebuilds service state: snapshot
// first, then the WAL tail entry by entry, then interrupted jobs are
// requeued and the replayed state is folded into a fresh snapshot.
// Runs during New, before the dispatcher starts.
func (s *Service) recover(dir string) error {
	l, rec, err := journal.Open(dir)
	if err != nil {
		return fmt.Errorf("fleet: opening journal: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jl = l
	s.recovered.Salvage = rec.Salvage
	if rec.Snapshot != nil {
		if err := s.installSnapshotLocked(rec.Snapshot); err != nil {
			l.Close()
			s.jl = nil
			return fmt.Errorf("fleet: installing journal snapshot: %w", err)
		}
	}
	for _, e := range rec.Entries {
		if !s.applyWALLocked(e) {
			s.recovered.Skipped++
		}
	}
	s.resumeQueuedLocked()
	// Fold the replayed state into a snapshot now: the consumed WAL
	// tail truncates away, and the next crash replays from here.
	s.compactLocked()
	return nil
}

// installSnapshotLocked rebuilds service state from a snapState image.
// A snapshot that fails to decode is a hard error — it was written
// atomically, so damage means disk-level corruption, and silently
// serving partial state would be worse than refusing to start.
func (s *Service) installSnapshotLocked(data []byte) error {
	var st snapState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	s.nextID = st.NextID
	s.nextSeq = st.NextSeq
	for _, sr := range st.Records {
		rec := &Record{
			ID: sr.ID, Job: sr.Job, Key: sr.Key,
			State: sr.State, Tenant: sr.Tenant,
			Attempts: sr.Attempts, Retries: sr.Retries,
			CacheHit: sr.CacheHit, DeadLetter: sr.DeadLetter,
			Err: sr.Err, E2EP99: sr.E2E, WallMS: sr.Wall,
			Resumed:  sr.Resumed,
			report:   sr.Report,
			enqueued: time.Unix(0, sr.Enq),
			done:     make(chan struct{}),
			seq:      sr.Seq,
		}
		if terminal(rec.State) {
			close(rec.done)
		}
		s.records[rec.ID] = rec
		if rec.ID > s.nextID {
			s.nextID = rec.ID
		}
		if rec.seq > s.nextSeq {
			s.nextSeq = rec.seq
		}
	}
	for name, t := range st.Tenants {
		s.tenants[name] = &tenantAgg{
			submitted: t.Submitted, completed: t.Completed, failed: t.Failed,
			retries: t.Retries, shed: t.Shed, rejected: t.Rejected,
			cacheHits: t.CacheHits, throttled: t.Throttled,
			e2e: t.E2E, wall: t.Wall,
		}
	}
	for name, l := range st.Limits {
		s.limits[name] = l
	}
	for _, id := range st.Dead {
		if rec := s.records[id]; rec != nil {
			s.dead = append(s.dead, rec)
		}
	}
	// Rebuild the result cache and virtual-time baselines from the
	// completed records, in admission order.
	ids := make([]int64, 0, len(s.records))
	for id := range s.records {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		rec := s.records[id]
		if rec.State == StateDone && rec.report != nil {
			s.cacheInsertLocked(rec.Key, rec.report, rec.E2EP99)
			if !rec.CacheHit {
				s.observeVirtualLocked(rec.Key, rec.E2EP99)
			}
		}
	}
	return nil
}

// terminal reports whether a state ends the job lifecycle.
func terminal(st JobState) bool {
	return st == StateDone || st == StateFailed || st == StateShed
}

// applyWALLocked replays one WAL entry idempotently. Returns false for
// an entry that was dropped (undecodable, unknown op, or a completion
// whose report bytes failed their content hash) — the affected job
// simply re-runs, which determinism makes safe.
func (s *Service) applyWALLocked(data []byte) bool {
	var e walEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return false
	}
	switch e.Op {
	case opLimit:
		if e.Limit == nil {
			return false
		}
		s.limits[e.Tenant] = *e.Limit
	case opAdmit:
		if e.Job == nil {
			return false
		}
		if _, exists := s.records[e.ID]; exists {
			return true // re-delivered pre-snapshot entry
		}
		rec := &Record{
			ID: e.ID, Job: *e.Job, Key: e.Key, State: StateQueued,
			Tenant: e.Tenant, enqueued: time.Unix(0, e.Enq),
			done: make(chan struct{}), seq: e.Seq,
		}
		s.records[rec.ID] = rec
		if rec.ID > s.nextID {
			s.nextID = rec.ID
		}
		if rec.seq > s.nextSeq {
			s.nextSeq = rec.seq
		}
		agg := s.tenantLocked(rec.Tenant)
		agg.submitted++
		if e.CacheHit {
			if reportHash(e.Report) != e.Hash {
				delete(s.records, rec.ID)
				return false
			}
			rec.State = StateDone
			rec.CacheHit = true
			rec.report = e.Report
			rec.E2EP99 = e.E2E
			agg.completed++
			agg.cacheHits++
			s.cacheHits++
			agg.e2e = append(agg.e2e, e.E2E)
			agg.wall = append(agg.wall, 0)
			close(rec.done)
		}
	case opStart:
		// Advisory: an attempt that started but never journaled an
		// outcome was in flight at the crash and re-runs from the
		// replayed retry count.
	case opRetry:
		rec := s.records[e.ID]
		if rec == nil || terminal(rec.State) {
			return rec != nil
		}
		if e.Attempt+1 > rec.Retries {
			rec.Retries = e.Attempt + 1
			rec.Attempts = append(rec.Attempts, Attempt{Outcome: e.Outcome, Err: e.Err})
			s.tenantLocked(rec.Tenant).retries++
		}
	case opDone:
		rec := s.records[e.ID]
		if rec == nil || terminal(rec.State) {
			return rec != nil
		}
		if reportHash(e.Report) != e.Hash {
			return false // damaged report: leave queued, re-run
		}
		rec.State = StateDone
		rec.report = e.Report
		rec.E2EP99 = e.E2E
		rec.WallMS = e.Wall
		if e.Retries > rec.Retries {
			rec.Retries = e.Retries
		}
		agg := s.tenantLocked(rec.Tenant)
		agg.completed++
		agg.e2e = append(agg.e2e, e.E2E)
		agg.wall = append(agg.wall, e.Wall)
		s.cacheInsertLocked(rec.Key, rec.report, rec.E2EP99)
		s.observeVirtualLocked(rec.Key, rec.E2EP99)
		close(rec.done)
	case opDead, opFail, opShed:
		rec := s.records[e.ID]
		if rec == nil || terminal(rec.State) {
			return rec != nil
		}
		if e.Op == opShed {
			rec.State = StateShed
		} else {
			rec.State = StateFailed
		}
		rec.Err = e.Err
		rec.WallMS = e.Wall
		if e.Retries > rec.Retries {
			rec.Retries = e.Retries
		}
		agg := s.tenantLocked(rec.Tenant)
		if e.Op == opShed {
			agg.shed++
		} else {
			agg.failed++
		}
		if e.Op == opDead {
			rec.DeadLetter = true
			s.deadLetterLocked(rec)
		}
		close(rec.done)
	default:
		return false
	}
	return true
}

// resumeQueuedLocked requeues every non-terminal record: interrupted
// in-flight jobs restart at their replayed retry count, with the
// backoff schedule recomputed — it is a pure function of (retry seed,
// job key), so the resumed schedule is the one the dead process
// planned.
func (s *Service) resumeQueuedLocked() {
	var pend []*Record
	for _, rec := range s.records {
		switch rec.State {
		case StateQueued, StateRunning:
			rec.State = StateQueued
			rec.Resumed = true
			rec.shedable = true
			rec.resumeFrom = rec.Retries
			rec.Backoff = BackoffSchedule(s.cfg.RetrySeed, rec.Key, s.cfg.RetryBase, s.cfg.RetryBudget)
			pend = append(pend, rec)
			s.recovered.Queued++
		case StateDone:
			s.recovered.Done++
		case StateFailed:
			if rec.DeadLetter {
				s.recovered.Dead++
			} else {
				s.recovered.Failed++
			}
		case StateShed:
			s.recovered.Shed++
		}
	}
	sort.Slice(pend, func(i, j int) bool { return pend[i].seq < pend[j].seq })
	for _, rec := range pend {
		s.queue.push(rec)
	}
}

// killForTest simulates an abrupt process death for crash-recovery
// tests: admission stops and the journal handle drops immediately —
// anything not yet journaled is lost, exactly as under SIGKILL — then
// resources are reaped so the test leaks nothing. No shutdown snapshot
// is taken; the next Open replays the raw WAL.
func (s *Service) killForTest() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.jl != nil {
		s.jl.Close()
		s.jl = nil
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	for i := 0; i < cap(s.sem); i++ {
		s.sem <- struct{}{}
	}
	s.pool.Close()
}
