package fleet

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/autoware"
	"repro/internal/scenario"
)

func TestKeyPrefix(t *testing.T) {
	cases := map[string]string{
		"scenario=x|params=|seed=9|duration=8s|detector=SSD300": "scenario=x|params=",
		"scenario=x|params=": "scenario=x|params=",
		"":                   "",
	}
	for key, want := range cases {
		if got := keyPrefix(key); got != want {
			t.Errorf("keyPrefix(%q) = %q, want %q", key, got, want)
		}
	}
}

// TestVirtualDriftDetection wires the drift detector to per-scenario
// virtual-time baselines: a family whose recent virtual p99 drifts
// past DriftFactor × its own established baseline shows up in
// Status.Drifting and trips the shedding ladder — host wall clock
// never enters the judgment.
func TestVirtualDriftDetection(t *testing.T) {
	var e2e atomic.Value
	e2e.Store(10.0)
	svc := mustNew(t, Config{
		Workers: 1, QueueDepth: 32, DriftFactor: 2, Resolve: passResolve,
		Runner: runnerFunc(func(ctx context.Context, spec scenario.Spec, det autoware.Detector, d time.Duration) (*RunResult, error) {
			return &RunResult{Report: []byte("ok\n"), E2EP99: e2e.Load().(float64)}, nil
		}),
	})
	defer svc.Close()

	submit := func(seed uint64) {
		t.Helper()
		rec, err := svc.Submit(Job{Tenant: "t", Priority: 1, Scenario: "drifty", Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if final := waitDone(t, svc, rec.ID); final.State != StateDone {
			t.Fatalf("seed %d: state %s", seed, final.State)
		}
	}

	// Establish the family baseline at virtual p99 = 10ms. Seeds vary,
	// so each run is a fresh key in the same family (no cache hits).
	for seed := uint64(1); seed <= baselineMin; seed++ {
		submit(seed)
	}
	if drifting := svc.Fleetz().Drifting; len(drifting) != 0 {
		t.Fatalf("drifting %v before any regression", drifting)
	}

	// The scenario family regresses 10x in virtual time.
	e2e.Store(100.0)
	for seed := uint64(100); seed < 100+baselineMin; seed++ {
		submit(seed)
	}

	st := svc.Fleetz()
	if len(st.Drifting) != 1 || st.Drifting[0] != "scenario=drifty|params=" {
		t.Fatalf("drifting = %v, want the drifty scenario family", st.Drifting)
	}
	if st.State != LadderShedding {
		t.Errorf("ladder %s under virtual drift, want shedding", st.State)
	}
	// Shedding is live: best-effort load is rejected.
	if _, err := svc.Submit(Job{Tenant: "t", Priority: 0, Scenario: "besteffort"}); !errors.Is(err, ErrFleetShedding) {
		t.Errorf("best-effort submit under drift: %v, want ErrFleetShedding", err)
	}
	// Protected-class load still lands.
	if _, err := svc.Submit(Job{Tenant: "t", Priority: 5, Scenario: "drifty", Seed: 999}); err != nil {
		t.Errorf("protected submit under drift: %v", err)
	}
}
