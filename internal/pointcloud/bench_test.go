package pointcloud

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/mathx"
)

// benchCloud synthesizes a LiDAR-sized cloud: points scattered through
// a street-scale box, dense enough to exercise the sharded paths.
func benchCloud(n int) *Cloud {
	rng := mathx.NewRNG(42)
	c := New(n)
	for i := 0; i < n; i++ {
		c.Append(Point{
			Pos: geom.V3(
				rng.Float64()*120-60,
				rng.Float64()*120-60,
				rng.Float64()*6-1,
			),
			Intensity: rng.Float64(),
			Ring:      i % 16,
		})
	}
	return c
}

// BenchmarkVoxelGrid measures the steady-state cost of the pooled,
// sharded voxel downsample with a reused destination cloud — the
// voxel_grid_filter hot path.
func BenchmarkVoxelGrid(b *testing.B) {
	c := benchCloud(30000)
	var dst *Cloud
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _ = VoxelDownsampleInto(c, 2.0, dst)
	}
	if dst.Len() == 0 {
		b.Fatal("empty downsample")
	}
}

// BenchmarkKDTreeBuild measures Rebuild on a retained tree — the
// euclidean_cluster per-frame index build.
func BenchmarkKDTreeBuild(b *testing.B) {
	c := benchCloud(30000)
	pts := make([]geom.Vec3, c.Len())
	for i, p := range c.Points {
		pts[i] = p.Pos
	}
	tree := NewKDTree(pts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Rebuild(pts)
	}
	if tree.Len() != len(pts) {
		b.Fatalf("tree len = %d", tree.Len())
	}
}

// BenchmarkKDTreeRadius measures the query side on the rebuilt tree.
func BenchmarkKDTreeRadius(b *testing.B) {
	c := benchCloud(30000)
	pts := make([]geom.Vec3, c.Len())
	for i, p := range c.Points {
		pts[i] = p.Pos
	}
	tree := NewKDTree(pts)
	var out []int32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = tree.Radius(pts[i%len(pts)], 1.5, out[:0])
	}
}
