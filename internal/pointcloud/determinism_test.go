package pointcloud

import (
	"fmt"
	"testing"

	"repro/internal/geom"
	"repro/internal/mathx"
	"repro/internal/parallel"
)

// determinismCloud is a LiDAR-scale cloud, big enough (>> kdParallelMin
// and the voxel shard threshold) that the parallel build paths engage.
func determinismCloud(n int, seed uint64) *Cloud {
	rng := mathx.NewRNG(seed)
	c := New(n)
	for i := 0; i < n; i++ {
		c.Append(Point{
			Pos: geom.V3(
				rng.Float64()*120-60,
				rng.Float64()*120-60,
				rng.Float64()*6-1,
			),
			Intensity: rng.Float64(),
			Ring:      i % 16,
		})
	}
	return c
}

// withWorkers runs fn with the global worker bound set to n, restoring
// the previous setting afterwards so other tests are unaffected.
func withWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	prev := parallel.MaxWorkers()
	parallel.SetMaxWorkers(n)
	defer parallel.SetMaxWorkers(prev)
	fn()
}

// voxelFingerprint renders the downsampled cloud to an exact,
// order-sensitive string: any reordering or least-significant-bit
// divergence between runs changes it.
func voxelFingerprint(c *Cloud, leaf float64) string {
	dst := New(0)
	out, kept := VoxelDownsampleInto(c, leaf, dst)
	s := fmt.Sprintf("kept=%d\n", kept)
	for _, p := range out.Points {
		s += fmt.Sprintf("%x %x %x %x %d\n",
			p.Pos.X, p.Pos.Y, p.Pos.Z, p.Intensity, p.Ring)
	}
	return s
}

// kdFingerprint renders the built tree's full node array — structure,
// split axes and point order — with exact bit formatting.
func kdFingerprint(t *KDTree) string {
	s := fmt.Sprintf("root=%d n=%d\n", t.root, len(t.nodes))
	for i, n := range t.nodes {
		s += fmt.Sprintf("%d: idx=%d axis=%d l=%d r=%d\n", i, n.idx, n.axis, n.left, n.right)
	}
	return s
}

// TestVoxelDownsampleWorkerInvariance pins the property the simulator's
// determinism rests on: the voxel filter output is identical whether
// the shard loop runs on 1, 2 or 8 host workers, and across repeated
// runs at the same width. Host parallelism must be invisible in
// simulated results.
func TestVoxelDownsampleWorkerInvariance(t *testing.T) {
	c := determinismCloud(30000, 42)
	const leaf = 2.0
	var ref string
	for _, workers := range []int{1, 2, 8} {
		withWorkers(t, workers, func() {
			got := voxelFingerprint(c, leaf)
			if ref == "" {
				ref = got
			} else if got != ref {
				t.Errorf("voxel output at %d workers diverges from 1-worker reference", workers)
			}
			// Repeatability at the same width.
			if again := voxelFingerprint(c, leaf); again != got {
				t.Errorf("voxel output not repeatable at %d workers", workers)
			}
		})
	}
	if ref == "" || ref == "kept=0\n" {
		t.Fatalf("degenerate fingerprint: %q", ref)
	}
}

// TestKDTreeRebuildWorkerInvariance does the same for the k-d tree: the
// node array laid out by the parallel subtree build must be
// bit-identical for any worker count, including reusing one tree's
// storage across Rebuild calls.
func TestKDTreeRebuildWorkerInvariance(t *testing.T) {
	c := determinismCloud(20000, 7)
	pts := make([]geom.Vec3, c.Len())
	for i, p := range c.Points {
		pts[i] = p.Pos
	}
	var ref string
	for _, workers := range []int{1, 2, 8} {
		withWorkers(t, workers, func() {
			tree := NewKDTree(pts)
			got := kdFingerprint(tree)
			if ref == "" {
				ref = got
			} else if got != ref {
				t.Errorf("k-d tree at %d workers diverges from 1-worker reference", workers)
			}
			// Rebuild over the same points into reused storage must
			// reproduce the identical tree.
			tree.Rebuild(pts)
			if again := kdFingerprint(tree); again != got {
				t.Errorf("Rebuild not repeatable at %d workers", workers)
			}
		})
	}
	if ref == "" || ref == "root=-1 n=0\n" {
		t.Fatalf("degenerate fingerprint: %q", ref)
	}
}

// TestKDTreeRebuildAcrossClouds checks storage reuse does not leak
// state between frames: rebuilding over cloud B after cloud A yields
// the same tree as a fresh build over B.
func TestKDTreeRebuildAcrossClouds(t *testing.T) {
	mk := func(seed uint64) []geom.Vec3 {
		c := determinismCloud(12000, seed)
		pts := make([]geom.Vec3, c.Len())
		for i, p := range c.Points {
			pts[i] = p.Pos
		}
		return pts
	}
	a, b := mk(1), mk(2)
	fresh := kdFingerprint(NewKDTree(b))
	reused := NewKDTree(a)
	reused.Rebuild(b)
	if got := kdFingerprint(reused); got != fresh {
		t.Error("Rebuild over reused storage differs from a fresh build of the same cloud")
	}
}
