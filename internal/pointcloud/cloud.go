// Package pointcloud implements the point-cloud substrate that the
// LiDAR-driven nodes operate on: the cloud container, voxel-grid
// downsampling (the voxel_grid_filter core) and a k-d tree used by
// euclidean clustering and NDT neighbor queries. It is this codebase's
// stand-in for the Point Cloud Library the paper's nodes link against.
package pointcloud

import (
	"fmt"

	"repro/internal/geom"
)

// Point is a single LiDAR return. Ring records which laser beam produced
// it (used by the ray ground filter); Intensity is a synthetic surface
// reflectivity.
type Point struct {
	Pos       geom.Vec3
	Intensity float64
	Ring      int
}

// Cloud is an ordered collection of points. Nodes treat clouds as
// immutable inputs; filters allocate fresh clouds for their outputs.
type Cloud struct {
	Points []Point
}

// New returns an empty cloud with the given capacity hint.
func New(capacity int) *Cloud {
	return &Cloud{Points: make([]Point, 0, capacity)}
}

// FromPositions builds a cloud from bare positions (ring 0, intensity 0).
func FromPositions(pos []geom.Vec3) *Cloud {
	c := New(len(pos))
	for _, p := range pos {
		c.Points = append(c.Points, Point{Pos: p})
	}
	return c
}

// Len returns the number of points.
func (c *Cloud) Len() int { return len(c.Points) }

// Append adds a point.
func (c *Cloud) Append(p Point) { c.Points = append(c.Points, p) }

// Reset truncates the cloud to zero points, keeping capacity for reuse.
func (c *Cloud) Reset() { c.Points = c.Points[:0] }

// Clone returns a deep copy of the cloud.
func (c *Cloud) Clone() *Cloud {
	return c.CloneInto(nil)
}

// CloneInto copies the cloud into dst, reusing dst's point storage when
// it has capacity; a nil dst allocates a fresh cloud. Returns dst.
// This is the reusable-destination variant of Clone for per-frame hot
// paths that would otherwise allocate a full point slice per callback.
func (c *Cloud) CloneInto(dst *Cloud) *Cloud {
	if dst == nil {
		dst = New(len(c.Points))
	}
	dst.Points = append(dst.Points[:0], c.Points...)
	return dst
}

// Bounds returns the axis-aligned bounding box of the cloud; an empty
// cloud yields an invalid box.
func (c *Cloud) Bounds() geom.AABB3 {
	b := geom.EmptyAABB3()
	for _, p := range c.Points {
		b.Expand(p.Pos)
	}
	return b
}

// Centroid returns the mean position, or the zero vector when empty.
func (c *Cloud) Centroid() geom.Vec3 {
	if len(c.Points) == 0 {
		return geom.Vec3{}
	}
	var s geom.Vec3
	for _, p := range c.Points {
		s = s.Add(p.Pos)
	}
	return s.Scale(1 / float64(len(c.Points)))
}

// Transform returns a new cloud with every point mapped through pose
// (local -> world).
func (c *Cloud) Transform(pose geom.Pose) *Cloud {
	return c.TransformInto(pose, nil)
}

// TransformInto maps every point through pose (local -> world) into
// dst, reusing dst's storage when it has capacity; a nil dst allocates.
// Returns dst. dst must not alias c.
func (c *Cloud) TransformInto(pose geom.Pose, dst *Cloud) *Cloud {
	if dst == nil {
		dst = New(len(c.Points))
	}
	dst.Points = dst.Points[:0]
	for _, p := range c.Points {
		p.Pos = pose.Transform(p.Pos)
		dst.Points = append(dst.Points, p)
	}
	return dst
}

// String implements fmt.Stringer.
func (c *Cloud) String() string {
	return fmt.Sprintf("cloud{%d points}", len(c.Points))
}
