package pointcloud

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/mathx"
)

func TestCloudBasics(t *testing.T) {
	c := New(4)
	if c.Len() != 0 {
		t.Error("new cloud not empty")
	}
	c.Append(Point{Pos: geom.V3(1, 2, 3), Intensity: 0.5, Ring: 2})
	c.Append(Point{Pos: geom.V3(3, 2, 1)})
	if c.Len() != 2 {
		t.Errorf("len = %d", c.Len())
	}
	cen := c.Centroid()
	if cen != geom.V3(2, 2, 2) {
		t.Errorf("centroid = %v", cen)
	}
	b := c.Bounds()
	if b.Min != geom.V3(1, 2, 1) || b.Max != geom.V3(3, 2, 3) {
		t.Errorf("bounds = %+v", b)
	}
}

func TestCloudEmptyCentroidAndBounds(t *testing.T) {
	c := New(0)
	if c.Centroid() != (geom.Vec3{}) {
		t.Error("empty centroid should be zero")
	}
	if c.Bounds().Valid() {
		t.Error("empty bounds should be invalid")
	}
}

func TestCloudClone(t *testing.T) {
	c := FromPositions([]geom.Vec3{geom.V3(1, 0, 0)})
	d := c.Clone()
	d.Points[0].Pos.X = 99
	if c.Points[0].Pos.X != 1 {
		t.Error("clone aliases original")
	}
}

func TestCloudTransform(t *testing.T) {
	c := FromPositions([]geom.Vec3{geom.V3(1, 0, 0)})
	p := geom.NewPose(10, 0, 5, math.Pi/2)
	w := c.Transform(p)
	got := w.Points[0].Pos
	if math.Abs(got.X-10) > 1e-9 || math.Abs(got.Y-1) > 1e-9 || got.Z != 5 {
		t.Errorf("transformed = %v", got)
	}
	// Original untouched.
	if c.Points[0].Pos != geom.V3(1, 0, 0) {
		t.Error("transform mutated input")
	}
}

func TestVoxelDownsample(t *testing.T) {
	c := New(8)
	// Two clusters in distinct voxels of size 1.
	c.Append(Point{Pos: geom.V3(0.1, 0.1, 0.1), Intensity: 1})
	c.Append(Point{Pos: geom.V3(0.3, 0.3, 0.3), Intensity: 3})
	c.Append(Point{Pos: geom.V3(5.1, 0.1, 0.1), Intensity: 5})
	out, cells := VoxelDownsample(c, 1.0)
	if cells != 2 || out.Len() != 2 {
		t.Fatalf("cells = %d, len = %d", cells, out.Len())
	}
	// One output point should be the centroid (0.2, 0.2, 0.2) with mean
	// intensity 2.
	found := false
	for _, p := range out.Points {
		if p.Pos.Dist(geom.V3(0.2, 0.2, 0.2)) < 1e-9 {
			found = true
			if math.Abs(p.Intensity-2) > 1e-9 {
				t.Errorf("intensity = %v", p.Intensity)
			}
		}
	}
	if !found {
		t.Errorf("centroid point missing: %+v", out.Points)
	}
}

func TestVoxelDownsampleNegativeCoords(t *testing.T) {
	c := FromPositions([]geom.Vec3{
		geom.V3(-0.1, -0.1, 0), geom.V3(-0.9, -0.9, 0), // same voxel [-1,0)
		geom.V3(0.1, 0.1, 0), // different voxel
	})
	_, cells := VoxelDownsample(c, 1.0)
	if cells != 2 {
		t.Errorf("cells = %d, want 2 (floor semantics across zero)", cells)
	}
}

func TestVoxelDownsampleReducesCount(t *testing.T) {
	rng := mathx.NewRNG(5)
	c := New(1000)
	for i := 0; i < 1000; i++ {
		c.Append(Point{Pos: geom.V3(rng.Range(0, 10), rng.Range(0, 10), rng.Range(0, 2))})
	}
	out, _ := VoxelDownsample(c, 2.0)
	if out.Len() >= c.Len() {
		t.Errorf("downsample did not reduce: %d -> %d", c.Len(), out.Len())
	}
	// Larger leaf -> fewer points.
	out2, _ := VoxelDownsample(c, 5.0)
	if out2.Len() > out.Len() {
		t.Errorf("larger leaf should not yield more points: %d vs %d", out2.Len(), out.Len())
	}
}

func TestVoxelDownsamplePanicsOnBadLeaf(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for leaf <= 0")
		}
	}()
	VoxelDownsample(New(0), 0)
}

func TestBuildVoxelStats(t *testing.T) {
	rng := mathx.NewRNG(7)
	c := New(300)
	// A tight Gaussian blob inside one voxel.
	for i := 0; i < 300; i++ {
		c.Append(Point{Pos: geom.V3(
			5+rng.NormScaled(0, 0.2),
			5+rng.NormScaled(0, 0.2),
			0.5+rng.NormScaled(0, 0.1),
		)})
	}
	stats := BuildVoxelStats(c, 10.0, 5)
	if len(stats) == 0 {
		t.Fatal("no voxels")
	}
	var main *VoxelStats
	for _, vs := range stats {
		if main == nil || vs.N > main.N {
			main = vs
		}
	}
	if !main.OK {
		t.Fatal("main voxel should be OK")
	}
	if main.Mean.Dist(geom.V3(5, 5, 0.5)) > 0.1 {
		t.Errorf("voxel mean = %v", main.Mean)
	}
	// Mahalanobis at the mean is ~0 and grows with distance.
	d0 := main.MahalanobisSq(main.Mean)
	d1 := main.MahalanobisSq(main.Mean.Add(geom.V3(1, 0, 0)))
	if d0 > 1e-6 || d1 <= d0 {
		t.Errorf("mahalanobis: at mean %v, offset %v", d0, d1)
	}
}

func TestBuildVoxelStatsMinPoints(t *testing.T) {
	c := FromPositions([]geom.Vec3{geom.V3(0, 0, 0), geom.V3(0.1, 0, 0)})
	stats := BuildVoxelStats(c, 1.0, 5)
	for _, vs := range stats {
		if vs.OK {
			t.Error("voxel with 2 points should not be OK with minPoints=5")
		}
	}
}

func TestInvert3(t *testing.T) {
	m := [3][3]float64{{2, 0, 0}, {0, 4, 0}, {0, 0, 8}}
	inv, ok := invert3(m)
	if !ok {
		t.Fatal("diagonal matrix should invert")
	}
	if inv[0][0] != 0.5 || inv[1][1] != 0.25 || inv[2][2] != 0.125 {
		t.Errorf("inv = %v", inv)
	}
	if _, ok := invert3([3][3]float64{{1, 2, 3}, {2, 4, 6}, {0, 0, 1}}); ok {
		t.Error("singular matrix should not invert")
	}
}
