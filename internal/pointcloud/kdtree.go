package pointcloud

import (
	"sort"

	"repro/internal/geom"
)

// KDTree is a 3-dimensional k-d tree over cloud point indices. It backs
// radius queries for euclidean clustering. Construction is O(n log n);
// the tree refers to the positions slice it was built from and must not
// outlive it.
type KDTree struct {
	pts   []geom.Vec3
	nodes []kdNode
	root  int32
	// TraversalSteps counts nodes visited across all queries since the
	// last ResetCounters call. The µarch trace generators use it to size
	// the pointer-chasing access stream that gives euclidean_cluster its
	// poor-locality cache signature (Table VII).
	TraversalSteps int
}

type kdNode struct {
	idx         int32 // index into pts
	axis        int8  // 0=X 1=Y 2=Z
	left, right int32 // node indices, -1 for none
}

// NewKDTree builds a balanced tree over the given positions.
func NewKDTree(pts []geom.Vec3) *KDTree {
	t := &KDTree{pts: pts, root: -1}
	if len(pts) == 0 {
		return t
	}
	idx := make([]int32, len(pts))
	for i := range idx {
		idx[i] = int32(i)
	}
	t.nodes = make([]kdNode, 0, len(pts))
	t.root = t.build(idx, 0)
	return t
}

func (t *KDTree) build(idx []int32, depth int) int32 {
	if len(idx) == 0 {
		return -1
	}
	axis := depth % 3
	sort.Slice(idx, func(a, b int) bool {
		return coord(t.pts[idx[a]], axis) < coord(t.pts[idx[b]], axis)
	})
	mid := len(idx) / 2
	nodeIdx := int32(len(t.nodes))
	t.nodes = append(t.nodes, kdNode{idx: idx[mid], axis: int8(axis), left: -1, right: -1})
	left := t.build(idx[:mid], depth+1)
	right := t.build(idx[mid+1:], depth+1)
	t.nodes[nodeIdx].left = left
	t.nodes[nodeIdx].right = right
	return nodeIdx
}

func coord(v geom.Vec3, axis int) float64 {
	switch axis {
	case 0:
		return v.X
	case 1:
		return v.Y
	default:
		return v.Z
	}
}

// Radius appends to out the indices of all points within r of q and
// returns the extended slice. Passing a reused out slice avoids
// allocation in the clustering hot loop.
func (t *KDTree) Radius(q geom.Vec3, r float64, out []int32) []int32 {
	if t.root < 0 {
		return out
	}
	r2 := r * r
	return t.radius(t.root, q, r, r2, out)
}

func (t *KDTree) radius(node int32, q geom.Vec3, r, r2 float64, out []int32) []int32 {
	n := &t.nodes[node]
	t.TraversalSteps++
	p := t.pts[n.idx]
	if p.DistSq(q) <= r2 {
		out = append(out, n.idx)
	}
	delta := coord(q, int(n.axis)) - coord(p, int(n.axis))
	var near, far int32
	if delta < 0 {
		near, far = n.left, n.right
	} else {
		near, far = n.right, n.left
	}
	if near >= 0 {
		out = t.radius(near, q, r, r2, out)
	}
	if far >= 0 && delta*delta <= r2 {
		out = t.radius(far, q, r, r2, out)
	}
	return out
}

// Nearest returns the index of the closest point to q and its squared
// distance; (-1, 0) for an empty tree.
func (t *KDTree) Nearest(q geom.Vec3) (int32, float64) {
	if t.root < 0 {
		return -1, 0
	}
	best := int32(-1)
	bestD2 := 0.0
	first := true
	t.nearest(t.root, q, &best, &bestD2, &first)
	return best, bestD2
}

func (t *KDTree) nearest(node int32, q geom.Vec3, best *int32, bestD2 *float64, first *bool) {
	n := &t.nodes[node]
	t.TraversalSteps++
	p := t.pts[n.idx]
	d2 := p.DistSq(q)
	if *first || d2 < *bestD2 {
		*best = n.idx
		*bestD2 = d2
		*first = false
	}
	delta := coord(q, int(n.axis)) - coord(p, int(n.axis))
	var near, far int32
	if delta < 0 {
		near, far = n.left, n.right
	} else {
		near, far = n.right, n.left
	}
	if near >= 0 {
		t.nearest(near, q, best, bestD2, first)
	}
	if far >= 0 && delta*delta < *bestD2 {
		t.nearest(far, q, best, bestD2, first)
	}
}

// Len returns the number of indexed points.
func (t *KDTree) Len() int { return len(t.pts) }

// ResetCounters zeroes the traversal-step counter.
func (t *KDTree) ResetCounters() { t.TraversalSteps = 0 }
