package pointcloud

import (
	"sync"

	"repro/internal/geom"
	"repro/internal/parallel"
)

// KDTree is a 3-dimensional k-d tree over cloud point indices. It backs
// radius queries for euclidean clustering. Construction is O(n log n);
// the tree refers to the positions slice it was built from and must not
// outlive it.
type KDTree struct {
	pts   []geom.Vec3
	nodes []kdNode
	idx   []int32 // build scratch, retained for Rebuild
	root  int32
	// TraversalSteps counts nodes visited across all queries since the
	// last ResetCounters call. The µarch trace generators use it to size
	// the pointer-chasing access stream that gives euclidean_cluster its
	// poor-locality cache signature (Table VII).
	TraversalSteps int
}

type kdNode struct {
	idx         int32 // index into pts
	axis        int8  // 0=X 1=Y 2=Z
	left, right int32 // node indices, -1 for none
}

// kdParallelMin is the smallest subtree handed to its own goroutine
// during construction. Node slots are assigned by subrange — a pure
// function of the input — so the built tree is bit-identical whether
// subtrees build serially or concurrently.
const kdParallelMin = 4096

// NewKDTree builds a balanced tree over the given positions.
func NewKDTree(pts []geom.Vec3) *KDTree {
	t := &KDTree{root: -1}
	t.Rebuild(pts)
	return t
}

// Rebuild re-indexes the tree over a new positions slice, reusing the
// node and scratch storage of previous builds — the zero-allocation
// path for per-frame reconstruction in the clustering node.
func (t *KDTree) Rebuild(pts []geom.Vec3) {
	t.pts = pts
	t.root = -1
	n := len(pts)
	if n == 0 {
		t.nodes = t.nodes[:0]
		return
	}
	if cap(t.idx) < n {
		t.idx = make([]int32, n)
	} else {
		t.idx = t.idx[:n]
	}
	for i := range t.idx {
		t.idx[i] = int32(i)
	}
	if cap(t.nodes) < n {
		t.nodes = make([]kdNode, n)
	} else {
		t.nodes = t.nodes[:n]
	}
	t.build(t.idx, 0, 0)
	t.root = 0
}

// build lays out the subtree over idx (a subslice of the index scratch)
// in pre-order at node slots [base, base+len(idx)): the subtree root at
// base, the left subtree at [base+1, base+1+mid), the right subtree
// after it. Slot assignment depends only on subrange sizes, so parallel
// subtree builds write disjoint slots and produce the serial layout.
func (t *KDTree) build(idx []int32, depth int, base int32) {
	axis := depth % 3
	sortIdxByAxis(t.pts, idx, axis)
	mid := len(idx) / 2
	left, right := int32(-1), int32(-1)
	if mid > 0 {
		left = base + 1
	}
	if mid+1 < len(idx) {
		right = base + 1 + int32(mid)
	}
	t.nodes[base] = kdNode{idx: idx[mid], axis: int8(axis), left: left, right: right}
	if left >= 0 && right >= 0 && len(idx) >= kdParallelMin && parallel.MaxWorkers() > 1 {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			t.build(idx[:mid], depth+1, left)
		}()
		t.build(idx[mid+1:], depth+1, right)
		wg.Wait()
		return
	}
	if left >= 0 {
		t.build(idx[:mid], depth+1, left)
	}
	if right >= 0 {
		t.build(idx[mid+1:], depth+1, right)
	}
}

// kdLess orders indices by (coordinate on axis, index). The index
// tiebreak makes the ordering total, so the built tree is a unique
// function of the input regardless of the sorting algorithm.
func kdLess(pts []geom.Vec3, a, b int32, axis int) bool {
	ca, cb := coord(pts[a], axis), coord(pts[b], axis)
	if ca != cb {
		return ca < cb
	}
	return a < b
}

// sortIdxByAxis sorts idx by kdLess without the interface and closure
// allocations of sort.Slice: median-of-three quicksort with insertion
// sort below a threshold. Deterministic (total order, fixed pivoting).
func sortIdxByAxis(pts []geom.Vec3, idx []int32, axis int) {
	for len(idx) > 12 {
		// Median-of-three pivot, moved to the end.
		m := len(idx) / 2
		hi := len(idx) - 1
		if kdLess(pts, idx[m], idx[0], axis) {
			idx[m], idx[0] = idx[0], idx[m]
		}
		if kdLess(pts, idx[hi], idx[0], axis) {
			idx[hi], idx[0] = idx[0], idx[hi]
		}
		if kdLess(pts, idx[hi], idx[m], axis) {
			idx[hi], idx[m] = idx[m], idx[hi]
		}
		idx[m], idx[hi] = idx[hi], idx[m]
		pivot := idx[hi]
		store := 0
		for i := 0; i < hi; i++ {
			if kdLess(pts, idx[i], pivot, axis) {
				idx[i], idx[store] = idx[store], idx[i]
				store++
			}
		}
		idx[store], idx[hi] = idx[hi], idx[store]
		// Recurse into the smaller side, loop on the larger.
		if store < len(idx)-store-1 {
			sortIdxByAxis(pts, idx[:store], axis)
			idx = idx[store+1:]
		} else {
			sortIdxByAxis(pts, idx[store+1:], axis)
			idx = idx[:store]
		}
	}
	// Insertion sort for small ranges.
	for i := 1; i < len(idx); i++ {
		v := idx[i]
		j := i - 1
		for j >= 0 && kdLess(pts, v, idx[j], axis) {
			idx[j+1] = idx[j]
			j--
		}
		idx[j+1] = v
	}
}

func coord(v geom.Vec3, axis int) float64 {
	switch axis {
	case 0:
		return v.X
	case 1:
		return v.Y
	default:
		return v.Z
	}
}

// Radius appends to out the indices of all points within r of q and
// returns the extended slice. Passing a reused out slice avoids
// allocation in the clustering hot loop.
func (t *KDTree) Radius(q geom.Vec3, r float64, out []int32) []int32 {
	if t.root < 0 {
		return out
	}
	r2 := r * r
	return t.radius(t.root, q, r, r2, out)
}

func (t *KDTree) radius(node int32, q geom.Vec3, r, r2 float64, out []int32) []int32 {
	n := &t.nodes[node]
	t.TraversalSteps++
	p := t.pts[n.idx]
	if p.DistSq(q) <= r2 {
		out = append(out, n.idx)
	}
	delta := coord(q, int(n.axis)) - coord(p, int(n.axis))
	var near, far int32
	if delta < 0 {
		near, far = n.left, n.right
	} else {
		near, far = n.right, n.left
	}
	if near >= 0 {
		out = t.radius(near, q, r, r2, out)
	}
	if far >= 0 && delta*delta <= r2 {
		out = t.radius(far, q, r, r2, out)
	}
	return out
}

// Nearest returns the index of the closest point to q and its squared
// distance; (-1, 0) for an empty tree.
func (t *KDTree) Nearest(q geom.Vec3) (int32, float64) {
	if t.root < 0 {
		return -1, 0
	}
	best := int32(-1)
	bestD2 := 0.0
	first := true
	t.nearest(t.root, q, &best, &bestD2, &first)
	return best, bestD2
}

func (t *KDTree) nearest(node int32, q geom.Vec3, best *int32, bestD2 *float64, first *bool) {
	n := &t.nodes[node]
	t.TraversalSteps++
	p := t.pts[n.idx]
	d2 := p.DistSq(q)
	if *first || d2 < *bestD2 {
		*best = n.idx
		*bestD2 = d2
		*first = false
	}
	delta := coord(q, int(n.axis)) - coord(p, int(n.axis))
	var near, far int32
	if delta < 0 {
		near, far = n.left, n.right
	} else {
		near, far = n.right, n.left
	}
	if near >= 0 {
		t.nearest(near, q, best, bestD2, first)
	}
	if far >= 0 && delta*delta < *bestD2 {
		t.nearest(far, q, best, bestD2, first)
	}
}

// Len returns the number of indexed points.
func (t *KDTree) Len() int { return len(t.pts) }

// ResetCounters zeroes the traversal-step counter.
func (t *KDTree) ResetCounters() { t.TraversalSteps = 0 }
