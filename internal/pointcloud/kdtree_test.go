package pointcloud

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/mathx"
)

func randomPoints(rng *mathx.RNG, n int, span float64) []geom.Vec3 {
	pts := make([]geom.Vec3, n)
	for i := range pts {
		pts[i] = geom.V3(rng.Range(-span, span), rng.Range(-span, span), rng.Range(-span, span))
	}
	return pts
}

func bruteRadius(pts []geom.Vec3, q geom.Vec3, r float64) []int32 {
	var out []int32
	r2 := r * r
	for i, p := range pts {
		if p.DistSq(q) <= r2 {
			out = append(out, int32(i))
		}
	}
	return out
}

func sortedEq(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestKDTreeEmpty(t *testing.T) {
	tree := NewKDTree(nil)
	if got := tree.Radius(geom.V3(0, 0, 0), 1, nil); len(got) != 0 {
		t.Errorf("empty radius = %v", got)
	}
	if idx, _ := tree.Nearest(geom.V3(0, 0, 0)); idx != -1 {
		t.Errorf("empty nearest = %d", idx)
	}
	if tree.Len() != 0 {
		t.Errorf("len = %d", tree.Len())
	}
}

func TestKDTreeRadiusMatchesBruteForce(t *testing.T) {
	rng := mathx.NewRNG(13)
	pts := randomPoints(rng, 500, 20)
	tree := NewKDTree(pts)
	for trial := 0; trial < 50; trial++ {
		q := geom.V3(rng.Range(-20, 20), rng.Range(-20, 20), rng.Range(-20, 20))
		r := rng.Range(0.5, 8)
		got := tree.Radius(q, r, nil)
		want := bruteRadius(pts, q, r)
		if !sortedEq(got, want) {
			t.Fatalf("radius mismatch at trial %d: got %d, want %d points", trial, len(got), len(want))
		}
	}
}

func TestKDTreeNearestMatchesBruteForce(t *testing.T) {
	rng := mathx.NewRNG(17)
	pts := randomPoints(rng, 300, 15)
	tree := NewKDTree(pts)
	for trial := 0; trial < 50; trial++ {
		q := geom.V3(rng.Range(-15, 15), rng.Range(-15, 15), rng.Range(-15, 15))
		gotIdx, gotD2 := tree.Nearest(q)
		bestIdx, bestD2 := -1, 0.0
		for i, p := range pts {
			d2 := p.DistSq(q)
			if bestIdx < 0 || d2 < bestD2 {
				bestIdx, bestD2 = i, d2
			}
		}
		if gotD2 != bestD2 {
			t.Fatalf("nearest dist mismatch: got (%d,%v), want (%d,%v)", gotIdx, gotD2, bestIdx, bestD2)
		}
	}
}

func TestKDTreeSinglePoint(t *testing.T) {
	tree := NewKDTree([]geom.Vec3{geom.V3(1, 2, 3)})
	idx, d2 := tree.Nearest(geom.V3(1, 2, 4))
	if idx != 0 || d2 != 1 {
		t.Errorf("nearest = %d, %v", idx, d2)
	}
	got := tree.Radius(geom.V3(1, 2, 3), 0.5, nil)
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("radius = %v", got)
	}
}

func TestKDTreeDuplicatePoints(t *testing.T) {
	pts := []geom.Vec3{
		geom.V3(1, 1, 1), geom.V3(1, 1, 1), geom.V3(1, 1, 1), geom.V3(5, 5, 5),
	}
	tree := NewKDTree(pts)
	got := tree.Radius(geom.V3(1, 1, 1), 0.1, nil)
	if len(got) != 3 {
		t.Errorf("duplicates: got %d points", len(got))
	}
}

func TestKDTreeTraversalCounter(t *testing.T) {
	rng := mathx.NewRNG(29)
	tree := NewKDTree(randomPoints(rng, 200, 10))
	tree.ResetCounters()
	if tree.TraversalSteps != 0 {
		t.Error("counter should reset")
	}
	tree.Radius(geom.V3(0, 0, 0), 2, nil)
	if tree.TraversalSteps == 0 {
		t.Error("counter should advance during query")
	}
}

func TestKDTreeRadiusReusesSlice(t *testing.T) {
	pts := []geom.Vec3{geom.V3(0, 0, 0), geom.V3(1, 0, 0)}
	tree := NewKDTree(pts)
	buf := make([]int32, 0, 16)
	out := tree.Radius(geom.V3(0, 0, 0), 5, buf)
	if len(out) != 2 {
		t.Errorf("radius with buffer = %v", out)
	}
}

func TestKDTreePropertyRandomized(t *testing.T) {
	rng := mathx.NewRNG(41)
	f := func() bool {
		n := 1 + rng.Intn(100)
		pts := randomPoints(rng, n, 5)
		tree := NewKDTree(pts)
		q := geom.V3(rng.Range(-5, 5), rng.Range(-5, 5), rng.Range(-5, 5))
		r := rng.Range(0, 5)
		return sortedEq(tree.Radius(q, r, nil), bruteRadius(pts, q, r))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
