package pointcloud

import (
	"math"
	"sync"

	"repro/internal/geom"
	"repro/internal/parallel"
)

// VoxelKey identifies a cubic cell of the voxel grid.
type VoxelKey struct {
	X, Y, Z int32
}

// KeyFor returns the voxel containing p for the given leaf size.
func KeyFor(p geom.Vec3, leaf float64) VoxelKey {
	return VoxelKey{
		X: int32(math.Floor(p.X / leaf)),
		Y: int32(math.Floor(p.Y / leaf)),
		Z: int32(math.Floor(p.Z / leaf)),
	}
}

// voxelAcc accumulates one occupied cell. Cells live in a flat slice in
// first-touch order (the order the scan stream discovers them), which
// makes the output ordering deterministic — unlike map iteration — and
// avoids one pointer-chased allocation per cell.
type voxelAcc struct {
	key       VoxelKey
	sum       geom.Vec3
	intensity float64
	n         int
	ring      int
}

// voxelScratch is the reusable working set of one downsample pass: the
// key -> slot index and the accumulator slots.
type voxelScratch struct {
	idx  map[VoxelKey]int32
	accs []voxelAcc
}

var voxelScratchPool = sync.Pool{
	New: func() any { return &voxelScratch{idx: make(map[VoxelKey]int32, 1024)} },
}

func getVoxelScratch() *voxelScratch {
	s := voxelScratchPool.Get().(*voxelScratch)
	clear(s.idx)
	s.accs = s.accs[:0]
	return s
}

func putVoxelScratch(s *voxelScratch) { voxelScratchPool.Put(s) }

// accumulate bins pts into s in input order.
func (s *voxelScratch) accumulate(pts []Point, leaf float64) {
	for i := range pts {
		p := &pts[i]
		k := KeyFor(p.Pos, leaf)
		slot, ok := s.idx[k]
		if !ok {
			slot = int32(len(s.accs))
			s.idx[k] = slot
			s.accs = append(s.accs, voxelAcc{key: k})
		}
		a := &s.accs[slot]
		a.sum = a.sum.Add(p.Pos)
		a.intensity += p.Intensity
		a.ring = p.Ring
		a.n++
	}
}

// merge folds o's cells into s in o's first-touch order, preserving the
// whole-stream first-touch ordering when shards are merged in index
// order.
func (s *voxelScratch) merge(o *voxelScratch) {
	for i := range o.accs {
		oa := &o.accs[i]
		slot, ok := s.idx[oa.key]
		if !ok {
			slot = int32(len(s.accs))
			s.idx[oa.key] = slot
			s.accs = append(s.accs, *oa)
			continue
		}
		a := &s.accs[slot]
		a.sum = a.sum.Add(oa.sum)
		a.intensity += oa.intensity
		a.ring = oa.ring
		a.n += oa.n
	}
}

// voxelShardSize fixes the parallel decomposition of the binning pass.
// It depends only on input size — never on the worker budget — so the
// merge computes the same floating-point sum tree under any host
// parallelism (see package parallel).
const voxelShardSize = 8192

// VoxelDownsample reduces a cloud to one point per occupied voxel — the
// centroid of the points that fell in it, as PCL's VoxelGrid does. This
// is the computational core of the voxel_grid_filter node. It returns
// the filtered cloud and the number of occupied voxels.
func VoxelDownsample(c *Cloud, leaf float64) (*Cloud, int) {
	return VoxelDownsampleInto(c, leaf, nil)
}

// VoxelDownsampleInto is VoxelDownsample with a reusable destination
// cloud (nil allocates). Output points appear in first-touch voxel
// order, so the result is a pure function of the input. Large clouds
// are binned in fixed-size shards executed concurrently and merged in
// shard order.
func VoxelDownsampleInto(c *Cloud, leaf float64, dst *Cloud) (*Cloud, int) {
	if leaf <= 0 {
		panic("pointcloud: non-positive voxel leaf size")
	}
	n := c.Len()
	shards := parallel.Shards(n, voxelShardSize)
	var merged *voxelScratch
	if shards <= 1 {
		merged = getVoxelScratch()
		merged.accumulate(c.Points, leaf)
	} else {
		parts := make([]*voxelScratch, shards)
		parallel.Run(shards, func(si int) {
			lo, hi := parallel.ShardRange(si, voxelShardSize, n)
			parts[si] = getVoxelScratch()
			parts[si].accumulate(c.Points[lo:hi], leaf)
		})
		merged = parts[0]
		for _, part := range parts[1:] {
			merged.merge(part)
			putVoxelScratch(part)
		}
	}
	cells := len(merged.accs)
	if dst == nil {
		dst = New(cells)
	}
	dst.Points = dst.Points[:0]
	for i := range merged.accs {
		a := &merged.accs[i]
		inv := 1 / float64(a.n)
		dst.Points = append(dst.Points, Point{
			Pos:       a.sum.Scale(inv),
			Intensity: a.intensity * inv,
			Ring:      a.ring,
		})
	}
	putVoxelScratch(merged)
	return dst, cells
}

// VoxelStats holds the Gaussian statistics of the points inside one
// voxel: mean, covariance and its inverse. This is the per-cell model of
// the Normal Distributions Transform used by ndt_matching and built by
// the hdmap package.
type VoxelStats struct {
	Mean   geom.Vec3
	Cov    [3][3]float64
	InvCov [3][3]float64
	N      int
	// OK is false when the voxel had too few points or a degenerate
	// covariance and must be skipped during matching.
	OK bool
}

// BuildVoxelStats accumulates per-voxel Gaussian statistics for a cloud.
// Voxels with fewer than minPoints points are marked not OK.
func BuildVoxelStats(c *Cloud, leaf float64, minPoints int) map[VoxelKey]*VoxelStats {
	if leaf <= 0 {
		panic("pointcloud: non-positive voxel leaf size")
	}
	type acc struct {
		sum geom.Vec3
		// Upper triangle of the second-moment matrix.
		xx, xy, xz, yy, yz, zz float64
		n                      int
	}
	cells := make(map[VoxelKey]*acc)
	for _, p := range c.Points {
		k := KeyFor(p.Pos, leaf)
		a := cells[k]
		if a == nil {
			a = &acc{}
			cells[k] = a
		}
		v := p.Pos
		a.sum = a.sum.Add(v)
		a.xx += v.X * v.X
		a.xy += v.X * v.Y
		a.xz += v.X * v.Z
		a.yy += v.Y * v.Y
		a.yz += v.Y * v.Z
		a.zz += v.Z * v.Z
		a.n++
	}
	out := make(map[VoxelKey]*VoxelStats, len(cells))
	for k, a := range cells {
		vs := &VoxelStats{N: a.n}
		inv := 1 / float64(a.n)
		m := a.sum.Scale(inv)
		vs.Mean = m
		if a.n >= minPoints {
			cov := [3][3]float64{
				{a.xx*inv - m.X*m.X, a.xy*inv - m.X*m.Y, a.xz*inv - m.X*m.Z},
				{a.xy*inv - m.X*m.Y, a.yy*inv - m.Y*m.Y, a.yz*inv - m.Y*m.Z},
				{a.xz*inv - m.X*m.Z, a.yz*inv - m.Y*m.Z, a.zz*inv - m.Z*m.Z},
			}
			// Regularize: NDT implementations inflate near-singular
			// covariances so planar surfaces (rank-2 covariance) stay
			// invertible while preserving the anisotropy that makes the
			// match informative. The floor scales with the total spread
			// of the cell, echoing PCL's eigenvalue clamping.
			minVar := math.Max(1e-4, 0.004*(cov[0][0]+cov[1][1]+cov[2][2]))
			for i := 0; i < 3; i++ {
				cov[i][i] += minVar
			}
			vs.Cov = cov
			if ic, ok := invert3(cov); ok {
				vs.InvCov = ic
				vs.OK = true
			}
		}
		out[k] = vs
	}
	return out
}

// invert3 inverts a 3x3 matrix via the adjugate; ok is false when the
// determinant is numerically zero.
func invert3(m [3][3]float64) ([3][3]float64, bool) {
	a, b, c := m[0][0], m[0][1], m[0][2]
	d, e, f := m[1][0], m[1][1], m[1][2]
	g, h, i := m[2][0], m[2][1], m[2][2]
	det := a*(e*i-f*h) - b*(d*i-f*g) + c*(d*h-e*g)
	if math.Abs(det) < 1e-12 {
		return [3][3]float64{}, false
	}
	inv := 1 / det
	return [3][3]float64{
		{(e*i - f*h) * inv, (c*h - b*i) * inv, (b*f - c*e) * inv},
		{(f*g - d*i) * inv, (a*i - c*g) * inv, (c*d - a*f) * inv},
		{(d*h - e*g) * inv, (b*g - a*h) * inv, (a*e - b*d) * inv},
	}, true
}

// MahalanobisSq returns (p-mean)' InvCov (p-mean) for the voxel model.
func (vs *VoxelStats) MahalanobisSq(p geom.Vec3) float64 {
	d := p.Sub(vs.Mean)
	v := [3]float64{d.X, d.Y, d.Z}
	var t [3]float64
	for i := 0; i < 3; i++ {
		t[i] = vs.InvCov[i][0]*v[0] + vs.InvCov[i][1]*v[1] + vs.InvCov[i][2]*v[2]
	}
	return v[0]*t[0] + v[1]*t[1] + v[2]*t[2]
}
