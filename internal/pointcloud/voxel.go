package pointcloud

import (
	"math"

	"repro/internal/geom"
)

// VoxelKey identifies a cubic cell of the voxel grid.
type VoxelKey struct {
	X, Y, Z int32
}

// KeyFor returns the voxel containing p for the given leaf size.
func KeyFor(p geom.Vec3, leaf float64) VoxelKey {
	return VoxelKey{
		X: int32(math.Floor(p.X / leaf)),
		Y: int32(math.Floor(p.Y / leaf)),
		Z: int32(math.Floor(p.Z / leaf)),
	}
}

// VoxelDownsample reduces a cloud to one point per occupied voxel — the
// centroid of the points that fell in it, as PCL's VoxelGrid does. This
// is the computational core of the voxel_grid_filter node. It returns
// the filtered cloud and the number of occupied voxels.
func VoxelDownsample(c *Cloud, leaf float64) (*Cloud, int) {
	if leaf <= 0 {
		panic("pointcloud: non-positive voxel leaf size")
	}
	type acc struct {
		sum       geom.Vec3
		intensity float64
		n         int
		ring      int
	}
	cells := make(map[VoxelKey]*acc, c.Len()/4+1)
	for _, p := range c.Points {
		k := KeyFor(p.Pos, leaf)
		a := cells[k]
		if a == nil {
			a = &acc{}
			cells[k] = a
		}
		a.sum = a.sum.Add(p.Pos)
		a.intensity += p.Intensity
		a.ring = p.Ring
		a.n++
	}
	out := New(len(cells))
	for _, a := range cells {
		inv := 1 / float64(a.n)
		out.Append(Point{
			Pos:       a.sum.Scale(inv),
			Intensity: a.intensity * inv,
			Ring:      a.ring,
		})
	}
	return out, len(cells)
}

// VoxelStats holds the Gaussian statistics of the points inside one
// voxel: mean, covariance and its inverse. This is the per-cell model of
// the Normal Distributions Transform used by ndt_matching and built by
// the hdmap package.
type VoxelStats struct {
	Mean   geom.Vec3
	Cov    [3][3]float64
	InvCov [3][3]float64
	N      int
	// OK is false when the voxel had too few points or a degenerate
	// covariance and must be skipped during matching.
	OK bool
}

// BuildVoxelStats accumulates per-voxel Gaussian statistics for a cloud.
// Voxels with fewer than minPoints points are marked not OK.
func BuildVoxelStats(c *Cloud, leaf float64, minPoints int) map[VoxelKey]*VoxelStats {
	if leaf <= 0 {
		panic("pointcloud: non-positive voxel leaf size")
	}
	type acc struct {
		sum geom.Vec3
		// Upper triangle of the second-moment matrix.
		xx, xy, xz, yy, yz, zz float64
		n                      int
	}
	cells := make(map[VoxelKey]*acc)
	for _, p := range c.Points {
		k := KeyFor(p.Pos, leaf)
		a := cells[k]
		if a == nil {
			a = &acc{}
			cells[k] = a
		}
		v := p.Pos
		a.sum = a.sum.Add(v)
		a.xx += v.X * v.X
		a.xy += v.X * v.Y
		a.xz += v.X * v.Z
		a.yy += v.Y * v.Y
		a.yz += v.Y * v.Z
		a.zz += v.Z * v.Z
		a.n++
	}
	out := make(map[VoxelKey]*VoxelStats, len(cells))
	for k, a := range cells {
		vs := &VoxelStats{N: a.n}
		inv := 1 / float64(a.n)
		m := a.sum.Scale(inv)
		vs.Mean = m
		if a.n >= minPoints {
			cov := [3][3]float64{
				{a.xx*inv - m.X*m.X, a.xy*inv - m.X*m.Y, a.xz*inv - m.X*m.Z},
				{a.xy*inv - m.X*m.Y, a.yy*inv - m.Y*m.Y, a.yz*inv - m.Y*m.Z},
				{a.xz*inv - m.X*m.Z, a.yz*inv - m.Y*m.Z, a.zz*inv - m.Z*m.Z},
			}
			// Regularize: NDT implementations inflate near-singular
			// covariances so planar surfaces (rank-2 covariance) stay
			// invertible while preserving the anisotropy that makes the
			// match informative. The floor scales with the total spread
			// of the cell, echoing PCL's eigenvalue clamping.
			minVar := math.Max(1e-4, 0.004*(cov[0][0]+cov[1][1]+cov[2][2]))
			for i := 0; i < 3; i++ {
				cov[i][i] += minVar
			}
			vs.Cov = cov
			if ic, ok := invert3(cov); ok {
				vs.InvCov = ic
				vs.OK = true
			}
		}
		out[k] = vs
	}
	return out
}

// invert3 inverts a 3x3 matrix via the adjugate; ok is false when the
// determinant is numerically zero.
func invert3(m [3][3]float64) ([3][3]float64, bool) {
	a, b, c := m[0][0], m[0][1], m[0][2]
	d, e, f := m[1][0], m[1][1], m[1][2]
	g, h, i := m[2][0], m[2][1], m[2][2]
	det := a*(e*i-f*h) - b*(d*i-f*g) + c*(d*h-e*g)
	if math.Abs(det) < 1e-12 {
		return [3][3]float64{}, false
	}
	inv := 1 / det
	return [3][3]float64{
		{(e*i - f*h) * inv, (c*h - b*i) * inv, (b*f - c*e) * inv},
		{(f*g - d*i) * inv, (a*i - c*g) * inv, (c*d - a*f) * inv},
		{(d*h - e*g) * inv, (b*g - a*h) * inv, (a*e - b*d) * inv},
	}, true
}

// MahalanobisSq returns (p-mean)' InvCov (p-mean) for the voxel model.
func (vs *VoxelStats) MahalanobisSq(p geom.Vec3) float64 {
	d := p.Sub(vs.Mean)
	v := [3]float64{d.X, d.Y, d.Z}
	var t [3]float64
	for i := 0; i < 3; i++ {
		t[i] = vs.InvCov[i][0]*v[0] + vs.InvCov[i][1]*v[1] + vs.InvCov[i][2]*v[2]
	}
	return v[0]*t[0] + v[1]*t[1] + v[2]*t[2]
}
