// Package search is the adversarial latency-search harness: a seeded,
// deterministic loop that mutates procedural scenario parameters
// (internal/world) and fault-schedule knobs (internal/faults) to *find*
// latency-budget violations, scoring every candidate by the worst
// computation path's p99 over a full stack run and attributing it to
// the most critical node via lineage-chain analysis (internal/sched).
// It follows the same elimination discipline as the scheduler tuner:
// candidate 0 is the scripted baseline, a feasibility floor on sample
// count disqualifies candidates that win by starving traffic, and exact
// ties go to the earlier candidate — so the same seed always elects the
// same worst case. Discovered violations are serialized as candidate
// files and regression-pinned as named scenarios in internal/scenario.
package search

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/faults"
	"repro/internal/world"
)

// Candidate is one point in the search space: a sampled world plus a
// fault schedule to run against it.
type Candidate struct {
	// Name labels the candidate in reports and pinned scenario files.
	Name string
	// World is the procedural scenario parameterization.
	World world.ScenarioConfig
	// FaultSeed drives every stochastic fault decision (and seeds the
	// supervision layer attached during evaluation).
	FaultSeed uint64
	// Faults is the schedule injected during evaluation; empty means a
	// clean drive.
	Faults []faults.Fault
}

// Schedule bundles the candidate's faults with its seed.
func (c Candidate) Schedule() faults.Schedule {
	return faults.Schedule{Seed: c.FaultSeed, Faults: c.Faults}
}

// ErrCandidate marks candidate text the codec cannot decode.
var ErrCandidate = errors.New("search: invalid candidate")

// MarshalCandidate serializes a candidate as a small line-oriented
// document — the form discovered worst cases are pinned to testdata in:
//
//	name gen-rain-burst
//	world blocks=9 size=80.5 ... weather=rain ...
//	faultseed 0xabc
//	fault kind=contention start=4s dur=5s workers=3 load=0.006 bw=2e+09
//
// Parse∘Marshal is the identity on valid candidates; hostile input
// yields ErrCandidate (or the underlying codec sentinel), never a panic.
func MarshalCandidate(c Candidate) string {
	var b strings.Builder
	fmt.Fprintf(&b, "name %s\n", c.Name)
	fmt.Fprintf(&b, "world %s\n", world.MarshalParams(c.World))
	if len(c.Faults) > 0 {
		fmt.Fprintf(&b, "faultseed 0x%x\n", c.FaultSeed)
		for _, f := range c.Faults {
			fmt.Fprintf(&b, "fault %s\n", faults.FormatFault(f))
		}
	}
	return b.String()
}

// ParseCandidate decodes a candidate document. Blank lines and
// #-comments are ignored; every other line is "key rest-of-line".
func ParseCandidate(text string) (Candidate, error) {
	var c Candidate
	var haveName, haveWorld, haveSeed bool
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		if rest == "" {
			return c, fmt.Errorf("%w: line %d: %q has no value", ErrCandidate, ln+1, key)
		}
		switch key {
		case "name":
			if haveName {
				return c, fmt.Errorf("%w: duplicate name", ErrCandidate)
			}
			if !validCandidateName(rest) {
				return c, fmt.Errorf("%w: name %q (want lowercase [a-z0-9-], <= 48 chars)", ErrCandidate, rest)
			}
			c.Name, haveName = rest, true
		case "world":
			if haveWorld {
				return c, fmt.Errorf("%w: duplicate world line", ErrCandidate)
			}
			cfg, err := world.ParseParams(rest)
			if err != nil {
				return c, err
			}
			c.World, haveWorld = cfg, true
		case "faultseed":
			if haveSeed {
				return c, fmt.Errorf("%w: duplicate faultseed", ErrCandidate)
			}
			hex, ok := strings.CutPrefix(rest, "0x")
			if !ok {
				return c, fmt.Errorf("%w: faultseed %q is not 0x-hex", ErrCandidate, rest)
			}
			seed, err := strconv.ParseUint(hex, 16, 64)
			if err != nil {
				return c, fmt.Errorf("%w: faultseed %q is not 0x-hex", ErrCandidate, rest)
			}
			c.FaultSeed, haveSeed = seed, true
		case "fault":
			f, err := faults.ParseFault(rest)
			if err != nil {
				return c, err
			}
			c.Faults = append(c.Faults, f)
		default:
			return c, fmt.Errorf("%w: unknown line key %q", ErrCandidate, key)
		}
	}
	if !haveName || !haveWorld {
		return c, fmt.Errorf("%w: missing name or world line", ErrCandidate)
	}
	if len(c.Faults) > 0 && !haveSeed {
		return c, fmt.Errorf("%w: faults without a faultseed", ErrCandidate)
	}
	if len(c.Faults) == 0 && haveSeed {
		return c, fmt.Errorf("%w: faultseed without faults", ErrCandidate)
	}
	return c, nil
}

// validCandidateName bounds pinned-scenario names to the same safe
// alphabet the scenario registry and report tables use.
func validCandidateName(s string) bool {
	if len(s) == 0 || len(s) > 48 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '-' {
			continue
		}
		return false
	}
	return true
}
