package search

import (
	"fmt"
	"time"

	"repro/internal/autoware"
	"repro/internal/faults"
	"repro/internal/mathx"
	"repro/internal/world"
)

// faultWindowStart matches the builtin chaos scenarios: windows open at
// 4 s, past the 3 s measurement warmup, so faulted and clean intervals
// of the drive line up.
const faultWindowStart = 4 * time.Second

// sample draws a fresh candidate: a generated world plus a sampled
// fault schedule.
func sample(space world.ParamSpace, r *mathx.RNG, duration time.Duration, idx int) (Candidate, error) {
	w, err := world.Generate(space, r.Uint64())
	if err != nil {
		return Candidate{}, err
	}
	c := Candidate{
		Name:      fmt.Sprintf("gen%02d-explore", idx),
		World:     w,
		FaultSeed: r.Uint64(),
	}
	c.Faults = sampleSchedule(r, duration)
	return c, nil
}

// mutate perturbs the current worst case: re-draw one to three world
// knobs within the space (split RNG streams in the generated world keep
// every untouched concern's placement identical — the property that
// makes the p99 delta attributable to the turned knob), and re-roll or
// intensify the fault schedule.
func mutate(best Candidate, space world.ParamSpace, r *mathx.RNG, duration time.Duration, idx int) (Candidate, error) {
	c := Candidate{
		Name:      fmt.Sprintf("gen%02d-exploit", idx),
		World:     best.World,
		FaultSeed: best.FaultSeed,
		Faults:    append([]faults.Fault(nil), best.Faults...),
	}
	for n := 1 + r.Intn(3); n > 0; n-- {
		mutateWorldKnob(&c.World, space, r)
	}
	fixupWorld(&c.World)
	if err := c.World.Validate(); err != nil {
		return Candidate{}, err
	}
	switch {
	case r.Bool(0.4):
		// Re-roll the schedule entirely.
		c.FaultSeed = r.Uint64()
		c.Faults = sampleSchedule(r, duration)
	case len(c.Faults) > 0 && r.Bool(0.5):
		intensify(&c.Faults[r.Intn(len(c.Faults))], r)
	}
	return c, nil
}

// mutateWorldKnob re-draws one knob from the space.
func mutateWorldKnob(w *world.ScenarioConfig, space world.ParamSpace, r *mathx.RNG) {
	switch r.Intn(9) {
	case 0:
		w.City.Blocks = sampleInt(space.Blocks, r)
	case 1:
		w.City.BuildingDensity = quantize(sampleSpan(space.BuildingDensity, r))
	case 2:
		w.NumCars = sampleInt(space.Cars, r)
	case 3:
		w.NumPedestrians = sampleInt(space.Pedestrians, r)
	case 4:
		w.NumCyclists = sampleInt(space.Cyclists, r)
	case 5:
		w.EgoSpeed = quantize(sampleSpan(space.EgoSpeed, r))
	case 6:
		// Toggle or re-draw the pedestrian burst.
		if w.Burst.Count != 0 && r.Bool(0.3) {
			w.Burst = world.PedBurst{}
			return
		}
		w.Burst = world.PedBurst{
			Count:   sampleInt(space.BurstCount, r),
			Street:  1, // fixupWorld re-centers into the interior
			Radius:  quantize(sampleSpan(space.BurstRadius, r)),
			Stagger: quantize(sampleSpan(space.BurstStagger, r)),
		}
		if w.City.Blocks > 2 {
			w.Burst.Street = 1 + r.Intn(w.City.Blocks-1)
		}
	case 7:
		w.Seed = r.Uint64() // re-roll traffic placement wholesale
	case 8:
		w.Noise = space.Weather[r.Intn(len(space.Weather))]
	}
}

// fixupWorld clamps cross-knob constraints a single-knob mutation can
// break (burst street inside a shrunken city, radius within the block).
func fixupWorld(w *world.ScenarioConfig) {
	if w.Burst.Count != 0 {
		if max := w.City.Blocks - 1; w.Burst.Street > max && max >= 1 {
			w.Burst.Street = max
		}
		if w.Burst.Radius > w.City.BlockSize {
			w.Burst.Radius = w.City.BlockSize
		}
	}
}

// sampleSchedule draws one or two faults from the menu of perturbations
// the chaos scenarios established, with windows inside [4 s, duration −
// 1 s) so every schedule satisfies the scenario harness's horizon rule.
func sampleSchedule(r *mathx.RNG, duration time.Duration) []faults.Fault {
	maxWin := duration - faultWindowStart - time.Second
	if maxWin < time.Second {
		maxWin = time.Second
	}
	win := func() (time.Duration, time.Duration) {
		d := time.Duration(r.Range(1000, maxWin.Seconds()*1000)) * time.Millisecond
		if d > maxWin {
			d = maxWin
		}
		return faultWindowStart, d
	}
	n := 1
	if r.Bool(0.35) {
		n = 2
	}
	var out []faults.Fault
	for i := 0; i < n; i++ {
		start, dur := win()
		switch r.Intn(6) {
		case 0:
			out = append(out, faults.Fault{
				Kind: faults.KindContention, Start: start, Duration: dur,
				Workers:   1 + r.Intn(3),
				Load:      quantize(r.Range(2e-3, 9e-3)),
				Bandwidth: quantize(r.Range(1e9, 3e9)),
			})
		case 1:
			out = append(out, faults.Fault{
				Kind: faults.KindStall, Node: autoware.VisionNodeName,
				Start: start, Duration: dur,
				Delay: time.Duration(r.Range(100, 900)) * time.Millisecond,
			})
		case 2:
			out = append(out, faults.Fault{
				Kind: faults.KindStall, Node: autoware.LocalizerNodeName,
				Start: start, Duration: dur,
				Delay: time.Duration(r.Range(50, 400)) * time.Millisecond,
			})
		case 3:
			out = append(out, faults.Fault{
				Kind: faults.KindDrop, Topic: "/points_raw",
				Start: start, Duration: dur,
				Prob: quantize(r.Range(0.1, 0.5)),
			})
		case 4:
			out = append(out, faults.Fault{
				Kind: faults.KindJitter, Topic: "/points_raw",
				Start: start, Duration: dur,
				Sigma: time.Duration(r.Range(10, 40)) * time.Millisecond,
			})
		case 5:
			out = append(out, faults.Fault{
				Kind: faults.KindBurst, Topic: "/points_raw",
				Start: start, Duration: dur,
				Rate: quantize(r.Range(20, 80)),
			})
		}
	}
	return out
}

// intensify turns a fault's primary magnitude knob up, staying inside
// Validate's bounds.
func intensify(f *faults.Fault, r *mathx.RNG) {
	grow := 1 + r.Range(0.2, 0.6)
	switch f.Kind {
	case faults.KindContention:
		if f.Workers < 4 {
			f.Workers++
		}
		f.Load = quantize(minF(f.Load*grow, 12e-3))
	case faults.KindStall:
		f.Delay = time.Duration(minF(float64(f.Delay)*grow, float64(1200*time.Millisecond)))
	case faults.KindDrop:
		f.Prob = quantize(minF(f.Prob*grow, 0.7))
	case faults.KindJitter:
		f.Sigma = time.Duration(minF(float64(f.Sigma)*grow, float64(60*time.Millisecond)))
	case faults.KindBurst:
		f.Rate = quantize(minF(f.Rate*grow, 120))
	}
}

func sampleInt(s world.IntSpan, r *mathx.RNG) int {
	if s.Max == s.Min {
		return s.Min
	}
	return s.Min + r.Intn(s.Max-s.Min+1)
}

func sampleSpan(s world.Span, r *mathx.RNG) float64 {
	if s.Max == s.Min {
		return s.Min
	}
	return r.Range(s.Min, s.Max)
}

// quantize keeps mutated float knobs on the same 1/1024 lattice the
// generator emits, so params lines stay short and byte-stable.
func quantize(v float64) float64 {
	return float64(int64(v*1024+0.5)) / 1024
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
