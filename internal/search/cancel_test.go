package search

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/autoware"
	"repro/internal/world"
)

// TestSearchCancelledReturnsPromptly pins the fleet-deadline contract
// on the adversarial search: cancelling the context mid-evaluation
// aborts the in-flight drive within a slice of wall clock and surfaces
// the autoware.ErrCancelled sentinel — it is never recorded as a
// candidate elimination.
func TestSearchCancelledReturnsPromptly(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a world environment")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()

	start := time.Now()
	rep, err := RunContext(ctx, Config{
		Space:     world.CompactSpace(),
		SpaceName: "compact",
		Seed:      3,
		Budget:    4,
		// A drive this long would take minutes if cancellation leaked.
		Duration: 10 * time.Minute,
		Detector: autoware.DetectorSSD300,
	})
	elapsed := time.Since(start)

	if rep != nil {
		t.Fatal("cancelled search returned a report")
	}
	if !errors.Is(err, autoware.ErrCancelled) {
		t.Fatalf("cancelled search = %v, want wrapped autoware.ErrCancelled", err)
	}
	// Generous bound: environment construction (world + HD map) happens
	// before the first cancellable drive and is not interruptible.
	if elapsed > 60*time.Second {
		t.Fatalf("cancelled search took %v, want prompt return", elapsed)
	}
}
