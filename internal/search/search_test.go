package search

import (
	"encoding/json"
	"errors"
	"testing"
	"time"

	"repro/internal/autoware"
	"repro/internal/faults"
	"repro/internal/mathx"
	"repro/internal/world"
)

func testCandidate(t *testing.T) Candidate {
	t.Helper()
	w, err := world.Generate(world.CompactSpace(), 7)
	if err != nil {
		t.Fatal(err)
	}
	return Candidate{
		Name:      "gen-test-case",
		World:     w,
		FaultSeed: 0xFEED,
		Faults: []faults.Fault{
			{Kind: faults.KindContention, Start: 4 * time.Second, Duration: 2 * time.Second,
				Workers: 2, Load: 4e-3, Bandwidth: 2e9},
			{Kind: faults.KindDrop, Topic: "/points_raw",
				Start: 4 * time.Second, Duration: 2 * time.Second, Prob: 0.25},
		},
	}
}

func TestCandidateCodecRoundTrip(t *testing.T) {
	cases := []Candidate{
		testCandidate(t),
		{Name: "clean-world", World: world.DefaultScenarioConfig()},
	}
	for _, c := range cases {
		text := MarshalCandidate(c)
		back, err := ParseCandidate(text)
		if err != nil {
			t.Fatalf("%s: parse:\n%s\n%v", c.Name, text, err)
		}
		if back.Name != c.Name || back.World != c.World || back.FaultSeed != c.FaultSeed ||
			len(back.Faults) != len(c.Faults) {
			t.Fatalf("%s: round-trip mismatch\ngot:  %+v\nwant: %+v", c.Name, back, c)
		}
		for i := range c.Faults {
			if back.Faults[i] != c.Faults[i] {
				t.Fatalf("%s: fault %d mismatch: %+v vs %+v", c.Name, i, back.Faults[i], c.Faults[i])
			}
		}
		if again := MarshalCandidate(back); again != text {
			t.Fatalf("%s: marshal not canonical:\n%s\n%s", c.Name, text, again)
		}
	}
	// Comments and blank lines are tolerated.
	withComments := "# pinned by search\n\n" + MarshalCandidate(cases[0])
	if _, err := ParseCandidate(withComments); err != nil {
		t.Fatalf("commented candidate rejected: %v", err)
	}
}

func TestParseCandidateRejects(t *testing.T) {
	valid := MarshalCandidate(testCandidate(t))
	cases := map[string]string{
		"empty":               "",
		"missing world":       "name gen-x\n",
		"missing name":        "world blocks=8 size=100 street=14 density=0.85 cityseed=0xa07a0 seed=0x5ce11a cars=22 peds=18 cyclists=6 ego=9\n",
		"bad name":            "name GEN X\nworld blocks=8 size=100 street=14 density=0.85 cityseed=0xa07a0 seed=0x5ce11a cars=22 peds=18 cyclists=6 ego=9\n",
		"duplicate name":      "name gen-a\nname gen-b\n" + valid,
		"bad world":           "name gen-x\nworld blocks=zero\n",
		"bad fault":           "name gen-x\nworld blocks=8 size=100 street=14 density=0.85 cityseed=0xa07a0 seed=0x5ce11a cars=22 peds=18 cyclists=6 ego=9\nfaultseed 0x1\nfault kind=gremlin dur=5s\n",
		"faults without seed": "name gen-x\nworld blocks=8 size=100 street=14 density=0.85 cityseed=0xa07a0 seed=0x5ce11a cars=22 peds=18 cyclists=6 ego=9\nfault kind=crash node=x dur=5s\n",
		"seed without faults": "name gen-x\nworld blocks=8 size=100 street=14 density=0.85 cityseed=0xa07a0 seed=0x5ce11a cars=22 peds=18 cyclists=6 ego=9\nfaultseed 0x1\n",
		"bad seed":            "name gen-x\nworld blocks=8 size=100 street=14 density=0.85 cityseed=0xa07a0 seed=0x5ce11a cars=22 peds=18 cyclists=6 ego=9\nfaultseed 12\nfault kind=crash node=x dur=5s\n",
		"unknown line":        "name gen-x\nwarp 9\n" + valid,
	}
	for name, text := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ParseCandidate(text); err == nil {
				t.Fatalf("ParseCandidate accepted:\n%s", text)
			}
		})
	}
	if _, err := ParseCandidate("name gen-a\nname gen-b\n"); !errors.Is(err, ErrCandidate) {
		t.Fatalf("err = %v, want ErrCandidate", err)
	}
}

// TestCandidateSequenceDeterministic pins that the sampling/mutation
// stream — the part of the search that is cheap to rerun — produces an
// identical candidate sequence for a given seed, including the adaptive
// exploit branch.
func TestCandidateSequenceDeterministic(t *testing.T) {
	space := world.CompactSpace()
	gen := func() []string {
		root := mathx.NewRNG(42 ^ searchSalt)
		best := testCandidate(t)
		var out []string
		for i := 1; i <= 8; i++ {
			stream := root.Split()
			var c Candidate
			var err error
			if i%2 == 1 {
				c, err = sample(space, stream, 10*time.Second, i)
			} else {
				c, err = mutate(best, space, stream, 10*time.Second, i)
			}
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, MarshalCandidate(c))
		}
		return out
	}
	a, b := gen(), gen()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("candidate %d differs between identical seeds:\n%s\n%s", i, a[i], b[i])
		}
	}
}

// TestSampledCandidatesAreRunnable walks many sampled and mutated
// candidates through full validation (world build + schedule validate)
// without ever evaluating them — the search must not burn budget on
// structurally invalid candidates.
func TestSampledCandidatesAreRunnable(t *testing.T) {
	for _, space := range []world.ParamSpace{world.DefaultSpace(), world.CompactSpace()} {
		root := mathx.NewRNG(7 ^ searchSalt)
		best := testCandidate(t)
		for i := 1; i <= 60; i++ {
			stream := root.Split()
			var c Candidate
			var err error
			if i%2 == 1 {
				c, err = sample(space, stream, 8*time.Second, i)
			} else {
				c, err = mutate(best, space, stream, 8*time.Second, i)
			}
			if err != nil {
				t.Fatalf("candidate %d: %v", i, err)
			}
			if _, err := world.BuildScenario(c.World); err != nil {
				t.Fatalf("candidate %d world does not build: %v\n%s", i, err, MarshalCandidate(c))
			}
			if len(c.Faults) > 0 {
				if err := c.Schedule().Validate(); err != nil {
					t.Fatalf("candidate %d schedule invalid: %v\n%s", i, err, MarshalCandidate(c))
				}
				for _, f := range c.Faults {
					if f.End()+time.Second > 8*time.Second {
						t.Fatalf("candidate %d fault window %v overruns the drive", i, f.End())
					}
				}
			}
			best = c // keep the mutation path exercised on fresh material
		}
	}
}

// TestSearchRunDeterministic runs a tiny real search twice and demands
// byte-identical reports — the reproducibility contract behind
// `characterize -exp search` and the search-smoke CI job.
func TestSearchRunDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack search in -short mode")
	}
	cfg := Config{
		Space:     world.CompactSpace(),
		SpaceName: "compact",
		Seed:      3,
		Budget:    3,
		Duration:  7 * time.Second,
		Detector:  autoware.DetectorSSD300,
	}
	run := func() []byte {
		rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a := run()
	b := run()
	if string(a) != string(b) {
		t.Fatalf("identical configs produced different reports:\n%s\n---\n%s", a, b)
	}
	var rep Report
	if err := json.Unmarshal(a, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Worst.Name == "" || !rep.Worst.Feasible {
		t.Fatalf("worst candidate missing or infeasible: %+v", rep.Worst)
	}
	if rep.Worst.P99 < rep.Baseline.P99 {
		t.Fatalf("worst p99 %v below baseline %v — baseline must floor the election", rep.Worst.P99, rep.Baseline.P99)
	}
	if c, ok := rep.WorstCandidate(); !ok || c.Name != rep.Worst.Name {
		t.Fatalf("WorstCandidate() = %+v, %v", c, ok)
	}
}

func TestSearchRunRejectsBadConfig(t *testing.T) {
	base := Config{
		Space:    world.CompactSpace(),
		Seed:     1,
		Budget:   2,
		Duration: 8 * time.Second,
		Detector: autoware.DetectorSSD300,
	}
	short := base
	short.Duration = 2 * time.Second
	if _, err := Run(short); err == nil {
		t.Fatal("short duration accepted")
	}
	tiny := base
	tiny.Budget = 1
	if _, err := Run(tiny); err == nil {
		t.Fatal("budget 1 accepted")
	}
	bad := base
	bad.Space.Weather = nil
	if _, err := Run(bad); !errors.Is(err, world.ErrSpaceConfig) {
		t.Fatalf("err = %v, want ErrSpaceConfig", err)
	}
}
