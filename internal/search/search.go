package search

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/avstack"
	"repro/internal/autoware"
	"repro/internal/faults"
	"repro/internal/hdmap"
	"repro/internal/mathx"
	"repro/internal/sched"
	"repro/internal/world"
)

// DefaultBudgetMS is the paper's end-to-end latency budget the search
// hunts violations of.
const DefaultBudgetMS = 100.0

// minSamplesFrac is the feasibility floor, matching the scheduler
// tuner: a candidate keeping fewer than this fraction of the baseline's
// end-to-end samples is disqualified regardless of its p99 — a scenario
// is not "worst" if it simply starves the pipeline of traffic.
const minSamplesFrac = 0.5

// searchSalt decorrelates the search's RNG streams from the generator's
// and the simulation's use of the same seed value.
const searchSalt = 0x5EA2C4

// Config parameterizes one search run.
type Config struct {
	// Space bounds world sampling and mutation.
	Space world.ParamSpace
	// SpaceName labels the space in reports ("default", "compact").
	SpaceName string
	// Seed drives every sampling and mutation decision.
	Seed uint64
	// Budget is the total number of evaluated candidates, including the
	// scripted baseline at index 0. Minimum 2.
	Budget int
	// Duration is the virtual drive length per evaluation. Minimum 7 s
	// (fault windows open at 4 s, past the measurement warmup, and need
	// a second of post-fault headroom).
	Duration time.Duration
	// Detector selects the vision DNN (the paper's configuration axis).
	Detector autoware.Detector
	// BudgetMS is the latency budget; zero means DefaultBudgetMS.
	BudgetMS float64
}

// Eval is one candidate's measurement: the worst computation path's
// latency, plus the criticality attribution of that run — which node
// carried the largest share of end-to-end latency across the lineage
// chains, per sched.Analyze.
type Eval struct {
	Path     string  `json:"path"`
	P50      float64 `json:"p50_ms"`
	P99      float64 `json:"p99_ms"`
	Samples  int     `json:"samples"`
	TopNode  string  `json:"top_node,omitempty"`
	TopShare float64 `json:"top_share,omitempty"`
}

// Outcome pairs a candidate with its measurement in the report.
type Outcome struct {
	Name string `json:"name"`
	// Params is the world's canonical params line; Faults the canonical
	// fault lines — together with FaultSeed they reproduce the run.
	Params    string   `json:"params"`
	FaultSeed uint64   `json:"fault_seed,omitempty"`
	Faults    []string `json:"faults,omitempty"`
	Eval
	Feasible bool `json:"feasible"`
	// Violation marks worst-path p99 above the budget — the search's
	// quarry.
	Violation bool   `json:"violation"`
	Error     string `json:"error,omitempty"`
}

// Report is the search's output, serialized to BENCH_search.json by
// `characterize -exp search`. Same config ⇒ byte-identical report.
type Report struct {
	SearchSeed      uint64  `json:"search_seed"`
	Space           string  `json:"space"`
	Detector        string  `json:"detector"`
	DurationSeconds float64 `json:"duration_s"`
	Budget          int     `json:"budget"`
	BudgetMS        float64 `json:"budget_ms"`
	// Baseline is candidate 0: the scripted default drive, fault-free.
	Baseline Outcome `json:"baseline"`
	// Worst is the feasible candidate with the highest worst-path p99
	// (ties to the earlier candidate). Never below Baseline: the
	// baseline is always feasible.
	Worst Outcome `json:"worst"`
	// P99InflationPct is Worst's p99 over Baseline's, as a percentage.
	P99InflationPct float64 `json:"p99_inflation_pct"`
	// Violations counts feasible candidates whose p99 broke the budget.
	Violations int       `json:"violations"`
	Candidates []Outcome `json:"candidates"`
}

// WorstCandidate returns the elected worst case as a Candidate (for
// pinning). ok is false when the report is empty.
func (r *Report) WorstCandidate() (Candidate, bool) {
	for _, o := range r.Candidates {
		if o.Name == r.Worst.Name {
			return outcomeToCandidate(o)
		}
	}
	return Candidate{}, false
}

func outcomeToCandidate(o Outcome) (Candidate, bool) {
	w, err := world.ParseParams(o.Params)
	if err != nil {
		return Candidate{}, false
	}
	c := Candidate{Name: o.Name, World: w, FaultSeed: o.FaultSeed}
	for _, line := range o.Faults {
		f, err := faults.ParseFault(line)
		if err != nil {
			return Candidate{}, false
		}
		c.Faults = append(c.Faults, f)
	}
	return c, true
}

// Run executes the adversarial search: evaluate the scripted baseline,
// then Budget-1 generated candidates — alternating fresh samples from
// the space with mutations of the worst case found so far — and elect
// the feasible candidate with the highest worst-path p99. Everything
// underneath is deterministic, so the same Config always elects the
// same worst case with the same measurements.
func Run(cfg Config) (*Report, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cooperative cancellation: the context is
// checked between candidates and threaded into every drive, so a fleet
// job deadline (or a ctrl-C) stops the in-flight evaluation within a
// slice of wall clock — the error wraps autoware.ErrCancelled — rather
// than leaking the stack until drive end. Run to completion it is
// byte-identical to Run.
func RunContext(ctx context.Context, cfg Config) (*Report, error) {
	if err := cfg.Space.Validate(); err != nil {
		return nil, err
	}
	if cfg.Budget < 2 {
		return nil, fmt.Errorf("search: budget %d too small (need >= 2: baseline + one candidate)", cfg.Budget)
	}
	if cfg.Duration < 7*time.Second {
		return nil, fmt.Errorf("search: duration %v too short (need >= 7s to fit a fault window past warmup)", cfg.Duration)
	}
	if cfg.BudgetMS == 0 {
		cfg.BudgetMS = DefaultBudgetMS
	}

	h := &harness{
		ctx:      ctx,
		det:      cfg.Detector,
		duration: cfg.Duration,
		maps:     make(map[string]*hdmap.Map),
	}
	rep := &Report{
		SearchSeed:      cfg.Seed,
		Space:           cfg.SpaceName,
		Detector:        string(cfg.Detector),
		DurationSeconds: cfg.Duration.Seconds(),
		Budget:          cfg.Budget,
		BudgetMS:        cfg.BudgetMS,
	}

	// Candidate 0: the scripted baseline — the paper's default drive,
	// no faults. Always feasible by construction; its sample count sets
	// the feasibility floor, its p99 the inflation reference.
	baseline := Candidate{Name: "baseline-scripted", World: world.DefaultScenarioConfig(), FaultSeed: 0x0BA5E}
	base, err := h.eval(baseline)
	if err != nil {
		return nil, fmt.Errorf("search: baseline eval: %w", err)
	}
	rep.Baseline = outcome(baseline, base, nil, true, cfg.BudgetMS)
	rep.Candidates = append(rep.Candidates, rep.Baseline)
	floor := int(minSamplesFrac * float64(base.Samples))

	root := mathx.NewRNG(cfg.Seed ^ searchSalt)
	bestIdx := 0
	best := baseline
	bestEval := base
	for i := 1; i < cfg.Budget; i++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("search: candidate %d: %w: %w", i, autoware.ErrCancelled, err)
		}
		stream := root.Split()
		var c Candidate
		// Alternate explore (fresh sample) and exploit (mutate the
		// elected worst so far); exploit has nothing to chew on until a
		// generated candidate beats the baseline.
		if i%2 == 1 || bestIdx == 0 {
			c, err = sample(cfg.Space, stream, cfg.Duration, i)
		} else {
			c, err = mutate(best, cfg.Space, stream, cfg.Duration, i)
		}
		if err != nil {
			rep.Candidates = append(rep.Candidates, Outcome{Name: fmt.Sprintf("gen%02d", i), Error: err.Error()})
			continue
		}
		ev, err := h.eval(c)
		if errors.Is(err, autoware.ErrCancelled) {
			// Cancellation aborts the whole search; elimination is only
			// for candidates the generator or stack rejects.
			return nil, fmt.Errorf("search: candidate %d: %w", i, err)
		}
		if err != nil {
			// Elimination, not abortion: a candidate the generator or
			// stack rejects is recorded and skipped, same as the tuner.
			rep.Candidates = append(rep.Candidates, outcome(c, Eval{}, err, false, cfg.BudgetMS))
			continue
		}
		feasible := ev.Samples > 0 && ev.Samples >= floor
		rep.Candidates = append(rep.Candidates, outcome(c, ev, nil, feasible, cfg.BudgetMS))
		if feasible && ev.P99 > bestEval.P99 {
			bestIdx, best, bestEval = i, c, ev
		}
	}

	rep.Worst = rep.Candidates[bestIdx]
	for _, o := range rep.Candidates {
		if o.Violation {
			rep.Violations++
		}
	}
	if rep.Baseline.P99 > 0 {
		rep.P99InflationPct = 100 * (rep.Worst.P99 - rep.Baseline.P99) / rep.Baseline.P99
	}
	return rep, nil
}

func outcome(c Candidate, ev Eval, err error, feasible bool, budgetMS float64) Outcome {
	o := Outcome{
		Name:      c.Name,
		Params:    world.MarshalParams(c.World),
		FaultSeed: c.FaultSeed,
		Eval:      ev,
		Feasible:  feasible && err == nil,
	}
	if len(c.Faults) == 0 {
		o.FaultSeed = 0
	}
	for _, f := range c.Faults {
		o.Faults = append(o.Faults, faults.FormatFault(f))
	}
	if err != nil {
		o.Error = err.Error()
		return o
	}
	o.Violation = o.Feasible && ev.P99 > budgetMS
	return o
}

// harness evaluates candidates over cached HD maps. Maps depend only on
// the static city and the ego route (never on traffic, bursts, or
// weather — the map is surveyed offline in a quiet world), so mutations
// that keep the city reuse the expensive build.
type harness struct {
	ctx      context.Context
	det      autoware.Detector
	duration time.Duration
	maps     map[string]*hdmap.Map
}

func mapKey(cfg world.ScenarioConfig) string {
	c := cfg.City
	return fmt.Sprintf("%d|%g|%g|%g|%x|%x|%g",
		c.Blocks, c.BlockSize, c.StreetWidth, c.BuildingDensity, c.Seed, c.FurnitureSeed, cfg.EgoSpeed)
}

func (h *harness) mapFor(cfg world.ScenarioConfig, scen *world.Scenario) (*hdmap.Map, error) {
	key := mapKey(cfg)
	if m, ok := h.maps[key]; ok {
		return m, nil
	}
	mc := hdmap.DefaultConfig()
	mc.ScanSpacing = 10
	m, err := hdmap.Build(scen, mc)
	if err != nil {
		return nil, err
	}
	h.maps[key] = m
	return m, nil
}

// eval runs one candidate: generated world, guard attached (the search
// measures the hardened stack, matching the pinned-scenario harness),
// the candidate's fault schedule injected, default supervision seeded
// from the fault seed, full drive, then worst-path extraction and
// lineage criticality attribution.
func (h *harness) eval(c Candidate) (Eval, error) {
	scen, err := world.BuildScenario(c.World)
	if err != nil {
		return Eval{}, err
	}
	m, err := h.mapFor(c.World, scen)
	if err != nil {
		return Eval{}, err
	}
	acfg := autoware.DefaultConfig(h.det)
	acfg.Scenario = c.World
	acfg.Guard = true
	st, err := autoware.BuildWithMap(acfg, scen, m)
	if err != nil {
		return Eval{}, err
	}
	chains := avstack.AttachChainLog(st)
	if len(c.Faults) > 0 {
		if err := c.Schedule().Validate(); err != nil {
			return Eval{}, err
		}
		inj, err := faults.New(c.Schedule())
		if err != nil {
			return Eval{}, err
		}
		inj.SetLossRecorder(st.Recorder)
		inj.Attach(st.Executor, st.Bus)
	}
	if _, err := avstack.AttachDefaultSupervision(st, c.FaultSeed); err != nil {
		return Eval{}, err
	}
	if err := st.RunContext(h.ctx, h.duration); err != nil {
		return Eval{}, err
	}

	// Worst path by p99 (ties to name order — PathNames is sorted),
	// sample floor over every path's total, matching the tuner.
	var ev Eval
	for _, p := range st.Recorder.PathNames() {
		s := st.Recorder.PathLatency(p)
		ev.Samples += s.Count
		if s.Count == 0 {
			continue
		}
		if ev.Path == "" || s.P99 > ev.P99 {
			ev.Path, ev.P50, ev.P99 = p, s.Median, s.P99
		}
	}
	if crit := sched.Analyze(chains.Chains()); crit.Chains() > 0 {
		if nodes := crit.Nodes(); len(nodes) > 0 {
			ev.TopNode, ev.TopShare = nodes[0].Node, nodes[0].Share
		}
	}
	return ev, nil
}
