package trace

import (
	"time"

	"repro/internal/platform"
)

// Span is one recorded callback on a completed lineage chain: which
// node ran, when its input arrived, when it started (the gap is queue
// wait) and when its outputs were ready. Parents index the spans whose
// outputs this span consumed — the triggering input first, then any
// fused cache inputs — so a chain is a DAG with fan-in at fusion-style
// nodes and a single terminal span at the end.
type Span struct {
	Node                       string
	Arrived, Started, Finished time.Duration
	// Parents are indices into the owning Chain's Spans slice. Parents
	// always precede their children (the slice is topologically
	// ordered); an empty list means a sensor publication fed the span
	// directly.
	Parents []int
}

// Duration is the span's share of chain wall time: queue wait plus
// compute plus offload, from input arrival to outputs ready.
func (s Span) Duration() time.Duration { return s.Finished - s.Arrived }

// Chain is one completed end-to-end computation chain: every recorded
// callback reachable backwards from the terminal publication, plus the
// sensor origin that opened the path. The scheduler's critical-path
// analysis (internal/sched) walks these backwards to find which nodes
// carried the makespan and how much slack the others had.
type Chain struct {
	// Path names the PathSpec this chain closed.
	Path string
	// OriginTopic/OriginStamp identify the sensor frame that opened the
	// chain; Terminal is the closing publication instant. The chain's
	// makespan is Terminal - OriginStamp.
	OriginTopic string
	OriginStamp time.Duration
	Terminal    time.Duration
	// Spans is topologically ordered (parents before children); the
	// last span produced the terminal publication.
	Spans []Span
}

// Makespan is the chain's end-to-end latency.
func (c Chain) Makespan() time.Duration { return c.Terminal - c.OriginStamp }

type prodKey struct {
	topic string
	stamp time.Duration
}

type chainSpan struct {
	node                       string
	arrived, started, finished time.Duration
	parents                    []int // global span indices
}

// ChainLog reconstructs end-to-end lineage chains from executor hooks:
// every completed callback becomes a span, keyed as a producer by
// (output topic, finish stamp) so the callback that later consumes that
// publication links back to it. When a span publishes a path's terminal
// topic with the path's origin in its lineage, the chain closes and the
// backward-reachable spans are captured as a Chain.
//
// The log is an observer: it allocates host memory but never touches
// virtual time, so attaching it cannot change a single simulated
// sample. Spans accumulate for the whole run (a 60 s drive records a
// few thousand), which is the price of being able to walk arbitrary
// fan-in lineage after the fact.
type ChainLog struct {
	paths     []PathSpec
	spans     []chainSpan
	producers map[prodKey]int
	chains    []Chain

	// Warmup discards chains closing before this virtual time (pipeline
	// fill), mirroring Recorder.Warmup. Spans are still recorded — a
	// post-warmup chain may reach back into the warmup window.
	Warmup time.Duration
	// MaxChains, when positive, stops capturing after this many chains
	// (profiling runs need a few hundred, not every frame of a soak).
	MaxChains int
}

// NewChainLog creates an empty log closing chains on the given paths.
func NewChainLog(paths []PathSpec) *ChainLog {
	return &ChainLog{
		paths:     paths,
		producers: make(map[prodKey]int),
	}
}

// Attach installs the log's OnDone hook on an executor, chaining with
// any hook already installed.
func (l *ChainLog) Attach(ex *platform.Executor) {
	prev := ex.OnDone
	ex.OnDone = func(d platform.DoneInfo) {
		l.OnDone(d)
		if prev != nil {
			prev(d)
		}
	}
}

// OnDone records one completed callback as a span, registers it as the
// producer of its publications, and closes any path chains the
// publication terminates.
func (l *ChainLog) OnDone(d platform.DoneInfo) {
	idx := len(l.spans)
	sp := chainSpan{
		node:     d.Node,
		arrived:  d.Arrived,
		started:  d.Started,
		finished: d.Finished,
	}
	if p, ok := l.producers[prodKey{d.Input.Topic, d.Input.Header.Stamp}]; ok {
		sp.parents = append(sp.parents, p)
	}
	for _, f := range d.FusedInputs {
		if f == nil {
			continue
		}
		if p, ok := l.producers[prodKey{f.Topic, f.Header.Stamp}]; ok && !containsInt(sp.parents, p) {
			sp.parents = append(sp.parents, p)
		}
	}
	l.spans = append(l.spans, sp)
	for _, topic := range d.Published {
		// Publications are stamped with the finish instant; a later
		// duplicate stamp (dup faults) overwrites, keeping the newest.
		l.producers[prodKey{topic, d.Finished}] = idx
	}
	if d.Finished < l.Warmup {
		return
	}
	for _, p := range l.paths {
		if !containsString(d.Published, p.Terminal) {
			continue
		}
		stamp, ok := originStamp(d, p.Origin)
		if !ok {
			continue
		}
		if l.MaxChains > 0 && len(l.chains) >= l.MaxChains {
			return
		}
		l.chains = append(l.chains, l.capture(p.Name, p.Origin, stamp, idx, d.Finished))
	}
}

// capture extracts the backward-reachable subgraph of the terminal span
// as a self-contained Chain with local, topologically ordered indices.
func (l *ChainLog) capture(path, originTopic string, originStamp time.Duration, terminal int, at time.Duration) Chain {
	// Backward reachability over global indices. Parents always have
	// smaller indices than children (they finished earlier), so a
	// descending scan from the terminal visits each span after all its
	// children.
	reach := map[int]bool{terminal: true}
	order := []int{terminal}
	for i := 0; i < len(order); i++ {
		for _, p := range l.spans[order[i]].parents {
			if !reach[p] {
				reach[p] = true
				order = append(order, p)
			}
		}
	}
	// Ascending global order = topological order.
	sortInts(order)
	local := make(map[int]int, len(order))
	for li, gi := range order {
		local[gi] = li
	}
	spans := make([]Span, len(order))
	for li, gi := range order {
		g := l.spans[gi]
		sp := Span{Node: g.node, Arrived: g.arrived, Started: g.started, Finished: g.finished}
		for _, p := range g.parents {
			if lp, ok := local[p]; ok {
				sp.Parents = append(sp.Parents, lp)
			}
		}
		spans[li] = sp
	}
	return Chain{
		Path:        path,
		OriginTopic: originTopic,
		OriginStamp: originStamp,
		Terminal:    at,
		Spans:       spans,
	}
}

// Chains returns the captured chains in completion order. The slice is
// shared; callers must not mutate it.
func (l *ChainLog) Chains() []Chain { return l.chains }

// originStamp finds the earliest lineage stamp for the origin topic
// across the triggering input and fused inputs — the same merge rule
// the executor applies to output lineage.
func originStamp(d platform.DoneInfo, topic string) (time.Duration, bool) {
	var best time.Duration
	found := false
	for _, o := range d.Input.Header.Origins {
		if o.Topic == topic && (!found || o.Stamp < best) {
			best, found = o.Stamp, true
		}
	}
	for _, f := range d.FusedInputs {
		if f == nil {
			continue
		}
		for _, o := range f.Header.Origins {
			if o.Topic == topic && (!found || o.Stamp < best) {
				best, found = o.Stamp, true
			}
		}
	}
	return best, found
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func containsString(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// sortInts is a tiny insertion sort (chains are short; avoids pulling
// sort into the hot observer path for a handful of elements).
func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
