// Package trace implements the measurement layer of the paper's
// methodology: per-node latency recording (queue wait + compute +
// offload, from input arrival to output ready) and end-to-end
// computation-path tracing through message header lineage — the
// "longest path" definition of perception latency (Fig. 4/6).
package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/mathx"
	"repro/internal/platform"
	"repro/internal/ros"
	"repro/internal/work"
)

// PathSpec defines one computation path: a name, the sensor origin
// topic it starts at, and the terminal topic whose publication closes
// the path.
type PathSpec struct {
	Name     string
	Origin   string
	Terminal string
}

// StandardPaths are the four computation paths of Table IV.
func StandardPaths() []PathSpec {
	return []PathSpec{
		{Name: "localization", Origin: "/points_raw", Terminal: "/current_pose"},
		{Name: "costmap_points", Origin: "/points_raw", Terminal: "/costmap/points"},
		{Name: "costmap_vision_obj", Origin: "/image_raw", Terminal: "/costmap/objects"},
		{Name: "costmap_cluster_obj", Origin: "/points_raw", Terminal: "/costmap/objects"},
	}
}

// Recorder collects single-node latencies, CPU/GPU phase splits, and
// end-to-end path samples from executor hooks.
type Recorder struct {
	// nodeLatency[node] holds per-callback latencies in seconds.
	nodeLatency map[string][]float64
	// cpuSeconds/gpuSeconds accumulate per node phase time.
	cpuSeconds map[string]float64
	gpuSeconds map[string]float64
	callbacks  map[string]int
	workSum    map[string]work.Work

	paths   []PathSpec
	pathLat map[string][]float64

	// degraded holds closed and open degradation intervals in the order
	// they opened; openDegraded indexes the open one per node.
	degraded     []DegradedInterval
	openDegraded map[string]int

	// outages holds supervised node-down windows in the order they were
	// detected; openOutage indexes the open one per node.
	outages    []Outage
	openOutage map[string]int

	// faultLosses accumulates fault-induced message losses keyed by
	// (kind, target), so reports can distinguish "dropped by an injected
	// fault" from "never produced".
	faultLosses map[faultLossKey]*FaultLoss

	// integrity accumulates guard-quarantined frames keyed by
	// (topic, cause, point), so reports can distinguish
	// "dropped by the integrity guard" from dropped-by-queue/fault/shed.
	integrity map[integrityKey]*IntegrityEvent

	// Warmup discards samples before this virtual time (pipeline fill).
	Warmup time.Duration
}

// Outage is one supervised node-down window: from the supervisor
// detecting a crashed or silent node to the restart that brought it
// back. It carries the recovery metrics the chaos reports surface —
// restart attempts, frames lost while down, and how stale the restored
// checkpoint was.
type Outage struct {
	// Node is the supervised node that went down.
	Node string
	// Cause names the detection channel ("crash" for a missed dispatch,
	// "stale-output" for header-stamp liveness).
	Cause string
	// Detected is when the supervisor declared the node down; Recovered
	// is when a restarted instance completed its first callback (zero
	// while still down).
	Detected, Recovered time.Duration
	// Restarts counts restart attempts, including failed probes.
	Restarts int
	// FramesLost counts input messages consumed while the node was down.
	FramesLost int
	// Restored reports whether a checkpoint was restored on restart
	// (false means a cold restart that lost all state).
	Restored bool
	// CheckpointAge is how stale the restored snapshot was at recovery.
	CheckpointAge time.Duration
	// Recheckpointed reports whether a fresh snapshot was taken at
	// recovery, restoring crash consistency for the next outage.
	Recheckpointed bool
}

// FaultLoss aggregates fault-induced losses of one kind on one target
// (messages dropped in transport, callbacks consumed by a crash).
type FaultLoss struct {
	// Kind is the fault kind that caused the loss (e.g. "drop", "crash").
	Kind string
	// Target is the topic or node the fault acted on.
	Target string
	// Count is the number of messages lost.
	Count int
	// First and Last bound the observed losses in virtual time.
	First, Last time.Duration
}

type faultLossKey struct{ kind, target string }

// IntegrityEvent aggregates frames the input-integrity guard
// quarantined on one topic for one cause at one detection point —
// diverted at the bus boundary, never dispatched.
type IntegrityEvent struct {
	// Topic is the topic the rejected frames were published on.
	Topic string
	// Cause names the rejection (e.g. "malformed-payload",
	// "stamp-rewind", "duplicate-stamp", "future-stamp").
	Cause string
	// Point names where the guard detected it (e.g. "ingress").
	Point string
	// Count is the number of frames quarantined.
	Count int
	// First and Last bound the observed rejections in virtual time.
	First, Last time.Duration
}

type integrityKey struct{ topic, cause, point string }

// DegradedInterval is one window during which a watchdog substituted
// for (or silenced) a faulty node — the degraded-operation record the
// chaos reports surface alongside latency distributions.
type DegradedInterval struct {
	// Node is the node whose output went stale.
	Node string
	// Policy names the fallback applied (last-good, skip-frame, degrade).
	Policy string
	// Start is when staleness was detected; End when fresh output
	// resumed (zero while still degraded).
	Start, End time.Duration
	// Substituted counts fallback outputs published during the window.
	Substituted int
}

// NewRecorder creates an empty recorder for the given paths.
func NewRecorder(paths []PathSpec) *Recorder {
	return &Recorder{
		nodeLatency:  make(map[string][]float64),
		cpuSeconds:   make(map[string]float64),
		gpuSeconds:   make(map[string]float64),
		callbacks:    make(map[string]int),
		workSum:      make(map[string]work.Work),
		paths:        paths,
		pathLat:      make(map[string][]float64),
		openDegraded: make(map[string]int),
		openOutage:   make(map[string]int),
		faultLosses:  make(map[faultLossKey]*FaultLoss),
		integrity:    make(map[integrityKey]*IntegrityEvent),
	}
}

// OnQuarantine records one guard-quarantined frame (implements the
// guard's IntegrityRecorder hook).
func (r *Recorder) OnQuarantine(topic, cause, point string, at time.Duration) {
	k := integrityKey{topic: topic, cause: cause, point: point}
	ev := r.integrity[k]
	if ev == nil {
		ev = &IntegrityEvent{Topic: topic, Cause: cause, Point: point, First: at}
		r.integrity[k] = ev
	}
	ev.Count++
	if at < ev.First {
		ev.First = at
	}
	if at > ev.Last {
		ev.Last = at
	}
}

// IntegrityEvents returns the aggregated quarantine record, sorted by
// topic, then cause, then detection point.
func (r *Recorder) IntegrityEvents() []IntegrityEvent {
	out := make([]IntegrityEvent, 0, len(r.integrity))
	for _, ev := range r.integrity {
		out = append(out, *ev)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Topic != out[j].Topic {
			return out[i].Topic < out[j].Topic
		}
		if out[i].Cause != out[j].Cause {
			return out[i].Cause < out[j].Cause
		}
		return out[i].Point < out[j].Point
	})
	return out
}

// OnOutageOpen opens an outage for a node. A node has at most one open
// outage; a second OnOutageOpen before OnOutageClose is ignored.
func (r *Recorder) OnOutageOpen(node, cause string, at time.Duration) {
	if _, open := r.openOutage[node]; open {
		return
	}
	r.openOutage[node] = len(r.outages)
	r.outages = append(r.outages, Outage{Node: node, Cause: cause, Detected: at})
}

// OnOutageRestart counts one restart attempt during a node's open outage.
func (r *Recorder) OnOutageRestart(node string) {
	if i, open := r.openOutage[node]; open {
		r.outages[i].Restarts++
	}
}

// OnOutageFrameLost counts one input message consumed while down.
func (r *Recorder) OnOutageFrameLost(node string) {
	if i, open := r.openOutage[node]; open {
		r.outages[i].FramesLost++
	}
}

// OnOutageClose closes a node's open outage with its recovery metrics.
func (r *Recorder) OnOutageClose(node string, at time.Duration, restored bool, checkpointAge time.Duration, recheckpointed bool) {
	if i, open := r.openOutage[node]; open {
		r.outages[i].Recovered = at
		r.outages[i].Restored = restored
		r.outages[i].CheckpointAge = checkpointAge
		r.outages[i].Recheckpointed = recheckpointed
		delete(r.openOutage, node)
	}
}

// Outages returns all outages in detection order. Outages with a zero
// Recovered were still open when queried.
func (r *Recorder) Outages() []Outage {
	out := make([]Outage, len(r.outages))
	copy(out, r.outages)
	return out
}

// OnFaultLoss records one fault-induced message loss (implements the
// fault injector's LossRecorder hook).
func (r *Recorder) OnFaultLoss(kind, target string, at time.Duration) {
	k := faultLossKey{kind: kind, target: target}
	fl := r.faultLosses[k]
	if fl == nil {
		fl = &FaultLoss{Kind: kind, Target: target, First: at}
		r.faultLosses[k] = fl
	}
	fl.Count++
	if at < fl.First {
		fl.First = at
	}
	if at > fl.Last {
		fl.Last = at
	}
}

// FaultLosses returns the aggregated fault-induced losses, sorted by
// kind then target.
func (r *Recorder) FaultLosses() []FaultLoss {
	out := make([]FaultLoss, 0, len(r.faultLosses))
	for _, fl := range r.faultLosses {
		out = append(out, *fl)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Target < out[j].Target
	})
	return out
}

// OnDegrade opens a degradation interval for a node. A node has at most
// one open interval; a second OnDegrade before OnRecover is ignored.
func (r *Recorder) OnDegrade(node, policy string, at time.Duration) {
	if _, open := r.openDegraded[node]; open {
		return
	}
	r.openDegraded[node] = len(r.degraded)
	r.degraded = append(r.degraded, DegradedInterval{Node: node, Policy: policy, Start: at})
}

// OnSubstitute counts one fallback output published while degraded.
func (r *Recorder) OnSubstitute(node string) {
	if i, open := r.openDegraded[node]; open {
		r.degraded[i].Substituted++
	}
}

// OnRecover closes a node's open degradation interval.
func (r *Recorder) OnRecover(node string, at time.Duration) {
	if i, open := r.openDegraded[node]; open {
		r.degraded[i].End = at
		delete(r.openDegraded, node)
	}
}

// DegradedIntervals returns all degradation intervals in the order they
// opened. Intervals with a zero End were still open when queried.
func (r *Recorder) DegradedIntervals() []DegradedInterval {
	out := make([]DegradedInterval, len(r.degraded))
	copy(out, r.degraded)
	return out
}

// Attach installs the recorder's hooks on an executor. It chains with
// any hooks already installed.
func (r *Recorder) Attach(ex *platform.Executor) {
	prevDone := ex.OnDone
	ex.OnDone = func(d platform.DoneInfo) {
		r.OnDone(d)
		if prevDone != nil {
			prevDone(d)
		}
	}
	prevPub := ex.OnPublish
	ex.OnPublish = func(topic string, h ros.Header) {
		r.OnPublish(topic, h)
		if prevPub != nil {
			prevPub(topic, h)
		}
	}
	prevQuar := ex.OnQuarantine
	ex.OnQuarantine = func(topic, cause string, stamp time.Duration) {
		// The detection point is the executor's ingress hook; record at
		// arrival time (Sim.Now), not the possibly-corrupted stamp.
		r.OnQuarantine(topic, cause, "ingress", ex.Sim.Now())
		if prevQuar != nil {
			prevQuar(topic, cause, stamp)
		}
	}
}

// OnDone records one completed callback.
func (r *Recorder) OnDone(d platform.DoneInfo) {
	if d.Finished < r.Warmup {
		return
	}
	// Only callbacks that produced output count toward the latency
	// distribution (the paper's "input arrives ... until the output is
	// ready"); cache-update callbacks (IMU, pose, buffered detections)
	// still contribute to phase-time accounting below.
	if d.Outputs > 0 {
		lat := (d.Finished - d.Arrived).Seconds()
		// A skewed input clock can stamp the arrival in the future;
		// clamp so corrupted stamps cannot drive the span negative.
		if lat < 0 {
			lat = 0
		}
		r.nodeLatency[d.Node] = append(r.nodeLatency[d.Node], lat)
	}
	r.cpuSeconds[d.Node] += (d.CPUDone - d.Started).Seconds()
	r.gpuSeconds[d.Node] += (d.Finished - d.CPUDone).Seconds()
	r.callbacks[d.Node]++
	ws := r.workSum[d.Node]
	ws.Add(d.Work)
	r.workSum[d.Node] = ws
}

// NodeWork returns the accumulated Work a node reported across all its
// callbacks — the measured instruction mix source for Fig. 7/Table VII.
func (r *Recorder) NodeWork(node string) work.Work { return r.workSum[node] }

// OnPublish closes computation paths that terminate on this topic.
func (r *Recorder) OnPublish(topic string, h ros.Header) {
	if h.Stamp < r.Warmup {
		return
	}
	for _, p := range r.paths {
		if p.Terminal != topic {
			continue
		}
		for _, o := range h.Origins {
			if o.Topic == p.Origin {
				lat := (h.Stamp - o.Stamp).Seconds()
				// Origin stamps are not guaranteed monotonic once a
				// clock-skew fault future-stamps a sensor frame; clamp
				// so lineage spans never go negative.
				if lat < 0 {
					lat = 0
				}
				r.pathLat[p.Name] = append(r.pathLat[p.Name], lat)
			}
		}
	}
}

// NodeNames returns nodes with at least one sample, sorted.
func (r *Recorder) NodeNames() []string {
	out := make([]string, 0, len(r.nodeLatency))
	for n := range r.nodeLatency {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NodeLatency returns the latency summary (milliseconds) for a node.
func (r *Recorder) NodeLatency(node string) mathx.Summary {
	return mathx.Summarize(toMillis(r.nodeLatency[node]))
}

// NodeSamples returns the raw latency samples (milliseconds).
func (r *Recorder) NodeSamples(node string) []float64 {
	return toMillis(r.nodeLatency[node])
}

// PathLatency returns the latency summary (milliseconds) for a path.
func (r *Recorder) PathLatency(path string) mathx.Summary {
	return mathx.Summarize(toMillis(r.pathLat[path]))
}

// PathSamples returns raw path samples (milliseconds).
func (r *Recorder) PathSamples(path string) []float64 {
	return toMillis(r.pathLat[path])
}

// PathNames returns configured path names in order.
func (r *Recorder) PathNames() []string {
	out := make([]string, len(r.paths))
	for i, p := range r.paths {
		out[i] = p.Name
	}
	return out
}

// EndToEnd returns, per the paper's definition, the worst path: the
// name and summary of the path with the largest mean latency.
func (r *Recorder) EndToEnd() (string, mathx.Summary) {
	var worst string
	var worstSum mathx.Summary
	for _, p := range r.paths {
		s := r.PathLatency(p.Name)
		if s.Count == 0 {
			continue
		}
		if worst == "" || s.Mean > worstSum.Mean {
			worst, worstSum = p.Name, s
		}
	}
	return worst, worstSum
}

// CPUShare and GPUShare report the per-node phase-time split of total
// callback time, the Fig. 8 quantity.
func (r *Recorder) CPUShare(node string) float64 {
	c, g := r.cpuSeconds[node], r.gpuSeconds[node]
	if c+g == 0 {
		return 0
	}
	return c / (c + g)
}

// GPUShare is 1 - CPUShare for nodes with samples.
func (r *Recorder) GPUShare(node string) float64 {
	c, g := r.cpuSeconds[node], r.gpuSeconds[node]
	if c+g == 0 {
		return 0
	}
	return g / (c + g)
}

// Callbacks returns how many callbacks a node completed.
func (r *Recorder) Callbacks(node string) int { return r.callbacks[node] }

// Fingerprint renders every recorded node and path latency sample as
// an exact hexadecimal float, giving a bit-exact digest of the run for
// determinism tests: two runs are behaviourally identical iff their
// fingerprints match, with no decimal rounding to hide divergence.
func (r *Recorder) Fingerprint() string {
	var b strings.Builder
	for _, n := range r.NodeNames() {
		fmt.Fprintf(&b, "node %s:", n)
		for _, v := range r.NodeSamples(n) {
			fmt.Fprintf(&b, " %x", v)
		}
		b.WriteByte('\n')
	}
	for _, p := range r.PathNames() {
		fmt.Fprintf(&b, "path %s:", p)
		for _, v := range r.PathSamples(p) {
			fmt.Fprintf(&b, " %x", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func toMillis(sec []float64) []float64 {
	out := make([]float64, len(sec))
	for i, v := range sec {
		out[i] = v * 1000
	}
	return out
}
