package trace

import (
	"testing"
	"time"

	"repro/internal/platform"
	"repro/internal/ros"
	"repro/internal/work"
)

func done(node string, arrived, started, cpuDone, finished time.Duration, outputs int) platform.DoneInfo {
	return platform.DoneInfo{
		Node:    node,
		Input:   &ros.Message{Header: ros.Header{Stamp: arrived}},
		Arrived: arrived, Started: started, CPUDone: cpuDone, Finished: finished,
		Outputs: outputs,
		Work:    work.Work{IntOps: 100},
	}
}

func TestRecorderNodeLatency(t *testing.T) {
	r := NewRecorder(StandardPaths())
	r.OnDone(done("a", 0, time.Millisecond, 6*time.Millisecond, 10*time.Millisecond, 1))
	r.OnDone(done("a", 0, time.Millisecond, 11*time.Millisecond, 20*time.Millisecond, 1))
	s := r.NodeLatency("a")
	if s.Count != 2 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Mean != 15 { // (10 + 20)/2 ms
		t.Errorf("mean = %v", s.Mean)
	}
	if len(r.NodeNames()) != 1 || r.NodeNames()[0] != "a" {
		t.Errorf("names = %v", r.NodeNames())
	}
	if r.Callbacks("a") != 2 {
		t.Errorf("callbacks = %d", r.Callbacks("a"))
	}
}

func TestRecorderSkipsZeroOutputCallbacksForLatency(t *testing.T) {
	r := NewRecorder(nil)
	r.OnDone(done("n", 0, 0, time.Millisecond, time.Millisecond, 0))
	if r.NodeLatency("n").Count != 0 {
		t.Error("cache-update callback should not enter the latency distribution")
	}
	// But phase accounting still happens.
	if r.CPUShare("n") != 1 {
		t.Errorf("cpu share = %v", r.CPUShare("n"))
	}
	if r.Callbacks("n") != 1 {
		t.Error("callback count should include cache updates")
	}
}

func TestRecorderWarmupFilter(t *testing.T) {
	r := NewRecorder(StandardPaths())
	r.Warmup = time.Second
	r.OnDone(done("a", 0, 0, 0, 500*time.Millisecond, 1))
	r.OnDone(done("a", time.Second, time.Second, time.Second, 1500*time.Millisecond, 1))
	if got := r.NodeLatency("a").Count; got != 1 {
		t.Errorf("warmup not applied: count = %d", got)
	}
}

func TestRecorderCPUGPUShares(t *testing.T) {
	r := NewRecorder(nil)
	// 6ms CPU phase, 4ms GPU phase.
	r.OnDone(done("v", 0, 0, 6*time.Millisecond, 10*time.Millisecond, 1))
	if got := r.CPUShare("v"); got != 0.6 {
		t.Errorf("cpu share = %v", got)
	}
	if got := r.GPUShare("v"); got != 0.4 {
		t.Errorf("gpu share = %v", got)
	}
	if r.CPUShare("missing") != 0 || r.GPUShare("missing") != 0 {
		t.Error("missing node shares should be zero")
	}
}

func TestRecorderPathTracing(t *testing.T) {
	r := NewRecorder(StandardPaths())
	// A costmap publication tracing back to both sensors.
	r.OnPublish("/costmap/objects", ros.Header{
		Stamp: 200 * time.Millisecond,
		Origins: []ros.Origin{
			{Topic: "/points_raw", Stamp: 50 * time.Millisecond},
			{Topic: "/image_raw", Stamp: 80 * time.Millisecond},
		},
	})
	cluster := r.PathLatency("costmap_cluster_obj")
	visionPath := r.PathLatency("costmap_vision_obj")
	if cluster.Count != 1 || cluster.Mean != 150 {
		t.Errorf("cluster path = %+v", cluster)
	}
	if visionPath.Count != 1 || visionPath.Mean != 120 {
		t.Errorf("vision path = %+v", visionPath)
	}
	// Unrelated topic ignored.
	r.OnPublish("/other", ros.Header{Stamp: time.Second, Origins: []ros.Origin{{Topic: "/points_raw"}}})
	if r.PathLatency("costmap_cluster_obj").Count != 1 {
		t.Error("unrelated topic leaked into path")
	}
}

func TestRecorderEndToEndPicksWorstPath(t *testing.T) {
	r := NewRecorder(StandardPaths())
	r.OnPublish("/current_pose", ros.Header{
		Stamp:   100 * time.Millisecond,
		Origins: []ros.Origin{{Topic: "/points_raw", Stamp: 70 * time.Millisecond}},
	})
	r.OnPublish("/costmap/objects", ros.Header{
		Stamp:   300 * time.Millisecond,
		Origins: []ros.Origin{{Topic: "/image_raw", Stamp: 100 * time.Millisecond}},
	})
	name, sum := r.EndToEnd()
	if name != "costmap_vision_obj" {
		t.Errorf("worst path = %s", name)
	}
	if sum.Mean != 200 {
		t.Errorf("worst mean = %v", sum.Mean)
	}
}

func TestRecorderEndToEndEmpty(t *testing.T) {
	r := NewRecorder(StandardPaths())
	name, sum := r.EndToEnd()
	if name != "" || sum.Count != 0 {
		t.Errorf("empty end-to-end = %q %+v", name, sum)
	}
}

func TestRecorderOutageLifecycle(t *testing.T) {
	r := NewRecorder(nil)
	r.OnOutageOpen("a", "crash", time.Second)
	r.OnOutageOpen("a", "stale-output", 2*time.Second) // ignored: already open
	r.OnOutageRestart("a")
	r.OnOutageFrameLost("a")
	r.OnOutageFrameLost("a")
	r.OnOutageRestart("a")
	r.OnOutageClose("a", 3*time.Second, true, 700*time.Millisecond, true)

	outs := r.Outages()
	if len(outs) != 1 {
		t.Fatalf("outages = %+v", outs)
	}
	o := outs[0]
	if o.Node != "a" || o.Cause != "crash" || o.Detected != time.Second {
		t.Errorf("outage = %+v", o)
	}
	if o.Recovered != 3*time.Second || o.Restarts != 2 || o.FramesLost != 2 {
		t.Errorf("outage = %+v", o)
	}
	if !o.Restored || o.CheckpointAge != 700*time.Millisecond || !o.Recheckpointed {
		t.Errorf("outage = %+v", o)
	}

	// A second outage for the same node opens independently and stays
	// open (zero Recovered) until closed.
	r.OnOutageOpen("a", "stale-output", 5*time.Second)
	outs = r.Outages()
	if len(outs) != 2 || outs[1].Cause != "stale-output" || outs[1].Recovered != 0 {
		t.Errorf("outages = %+v", outs)
	}

	// Hooks on nodes without an open outage are no-ops.
	r.OnOutageRestart("missing")
	r.OnOutageFrameLost("missing")
	r.OnOutageClose("missing", time.Second, false, 0, false)
	if got := r.Outages(); len(got) != 2 {
		t.Errorf("outages = %+v", got)
	}
}

func TestRecorderFaultLossAggregation(t *testing.T) {
	r := NewRecorder(nil)
	r.OnFaultLoss("drop", "/points_raw", 2*time.Second)
	r.OnFaultLoss("drop", "/points_raw", time.Second)
	r.OnFaultLoss("drop", "/points_raw", 3*time.Second)
	r.OnFaultLoss("crash", "tracker", 1500*time.Millisecond)

	losses := r.FaultLosses()
	if len(losses) != 2 {
		t.Fatalf("losses = %+v", losses)
	}
	// Sorted by kind then target: crash before drop.
	if losses[0].Kind != "crash" || losses[0].Count != 1 {
		t.Errorf("losses[0] = %+v", losses[0])
	}
	d := losses[1]
	if d.Kind != "drop" || d.Target != "/points_raw" || d.Count != 3 {
		t.Errorf("losses[1] = %+v", d)
	}
	if d.First != time.Second || d.Last != 3*time.Second {
		t.Errorf("loss window = [%v, %v]", d.First, d.Last)
	}
}

func TestStandardPathsMatchTableIV(t *testing.T) {
	paths := StandardPaths()
	if len(paths) != 4 {
		t.Fatalf("paths = %d", len(paths))
	}
	byName := map[string]PathSpec{}
	for _, p := range paths {
		byName[p.Name] = p
	}
	if byName["localization"].Origin != "/points_raw" {
		t.Error("localization origin")
	}
	if byName["costmap_vision_obj"].Origin != "/image_raw" {
		t.Error("vision path origin")
	}
	if byName["costmap_cluster_obj"].Terminal != byName["costmap_vision_obj"].Terminal {
		t.Error("both object paths should share the terminal costmap topic")
	}
}

func TestRecorderIntegrityAggregation(t *testing.T) {
	r := NewRecorder(nil)
	r.OnQuarantine("/points_raw", "malformed-payload", "ingress", 5*time.Second)
	r.OnQuarantine("/points_raw", "malformed-payload", "ingress", 4*time.Second)
	r.OnQuarantine("/points_raw", "malformed-payload", "ingress", 6*time.Second)
	r.OnQuarantine("/points_raw", "duplicate-stamp", "ingress", 4500*time.Millisecond)
	r.OnQuarantine("/image_raw", "future-stamp", "ingress", 7*time.Second)

	evs := r.IntegrityEvents()
	if len(evs) != 3 {
		t.Fatalf("events = %+v", evs)
	}
	// Sorted by topic, then cause: /image_raw first, then /points_raw
	// duplicate before malformed.
	if evs[0].Topic != "/image_raw" || evs[0].Cause != "future-stamp" || evs[0].Count != 1 {
		t.Errorf("evs[0] = %+v", evs[0])
	}
	if evs[1].Topic != "/points_raw" || evs[1].Cause != "duplicate-stamp" {
		t.Errorf("evs[1] = %+v", evs[1])
	}
	m := evs[2]
	if m.Cause != "malformed-payload" || m.Point != "ingress" || m.Count != 3 {
		t.Errorf("evs[2] = %+v", m)
	}
	// The window widens min/max-wise regardless of arrival order.
	if m.First != 4*time.Second || m.Last != 6*time.Second {
		t.Errorf("window = [%v, %v], want [4s, 6s]", m.First, m.Last)
	}
}

// TestRecorderClampsNegativeLatency pins the skew hardening: a frame
// whose arrival stamp runs ahead of its completion (a future-stamped
// sensor clock) must clamp to zero latency, not poison the
// distribution with a negative sample.
func TestRecorderClampsNegativeLatency(t *testing.T) {
	r := NewRecorder(StandardPaths())
	// Arrived "later" than it finished: stamp from a fast clock.
	r.OnDone(done("n", 2*time.Second, time.Second, time.Second, 1500*time.Millisecond, 1))
	s := r.NodeLatency("n")
	if s.Count != 1 || s.Min < 0 || s.Max != 0 {
		t.Errorf("latency summary = %+v, want one clamped zero sample", s)
	}

	// Same for lineage spans: an origin stamped after the terminal
	// publication must not produce a negative path sample.
	r2 := NewRecorder([]PathSpec{{Name: "p", Origin: "/points_raw", Terminal: "/out"}})
	r2.OnPublish("/out", ros.Header{
		Stamp:   time.Second,
		Origins: []ros.Origin{{Topic: "/points_raw", Stamp: 3 * time.Second}},
	})
	p := r2.PathLatency("p")
	if p.Count != 1 || p.Min < 0 || p.Max != 0 {
		t.Errorf("path summary = %+v, want one clamped zero sample", p)
	}
}
