package dnn

import (
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/mathx"
)

// randomDetections builds a plausible detection set.
func randomDetections(rng *mathx.RNG, n int) []Detection {
	out := make([]Detection, n)
	for i := range out {
		x := rng.Range(0, 100)
		y := rng.Range(0, 100)
		out[i] = Detection{
			Rect:  geom.NewRect(geom.V2(x, y), geom.V2(x+rng.Range(1, 30), y+rng.Range(1, 30))),
			Class: rng.Intn(4),
			Score: rng.Float64(),
		}
	}
	return out
}

// TestNMSNoSurvivingOverlapsProperty: after suppression, no kept pair
// overlaps beyond the threshold.
func TestNMSNoSurvivingOverlapsProperty(t *testing.T) {
	rng := mathx.NewRNG(83)
	f := func() bool {
		dets := randomDetections(rng, 1+rng.Intn(40))
		thresh := rng.Range(0.2, 0.8)
		kept := NMS(dets, thresh)
		for i := range kept {
			for j := i + 1; j < len(kept); j++ {
				if kept[i].Rect.IoU(kept[j].Rect) > thresh {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestNMSIdempotentProperty: suppressing an already-suppressed set is a
// no-op.
func TestNMSIdempotentProperty(t *testing.T) {
	rng := mathx.NewRNG(89)
	f := func() bool {
		dets := randomDetections(rng, 1+rng.Intn(40))
		thresh := rng.Range(0.2, 0.8)
		once := NMS(dets, thresh)
		twice := NMS(once, thresh)
		if len(once) != len(twice) {
			return false
		}
		for i := range once {
			if once[i] != twice[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestNMSKeepsHighestScoreProperty: the top-scored detection always
// survives.
func TestNMSKeepsHighestScoreProperty(t *testing.T) {
	rng := mathx.NewRNG(97)
	f := func() bool {
		dets := randomDetections(rng, 1+rng.Intn(40))
		best := dets[0]
		for _, d := range dets[1:] {
			if d.Score > best.Score {
				best = d
			}
		}
		for _, k := range NMS(dets, 0.5) {
			if k == best {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestDetectorOutputSanityProperty: any random image yields detections
// with finite scores in [0,1] and rects inside the image.
func TestDetectorOutputSanityProperty(t *testing.T) {
	rng := mathx.NewRNG(101)
	d := NewDetector(ArchSSD300, 7)
	f := func() bool {
		img := NewTensor(3, 96, 128)
		// Random blobs of random palette colors.
		for b := 0; b < rng.Intn(4); b++ {
			x0, y0 := rng.Intn(100), rng.Intn(70)
			w, h := 5+rng.Intn(25), 5+rng.Intn(25)
			col := [3]float32{float32(rng.Float64()), float32(rng.Float64()), float32(rng.Float64())}
			for y := y0; y < y0+h && y < 96; y++ {
				for x := x0; x < x0+w && x < 128; x++ {
					img.Set(0, y, x, col[0])
					img.Set(1, y, x, col[1])
					img.Set(2, y, x, col[2])
				}
			}
		}
		for _, det := range d.Infer(img) {
			if det.Score < 0 || det.Score > 1 {
				return false
			}
			if det.Class < 0 || det.Class >= len(ClassNames) {
				return false
			}
			r := det.Rect
			if r.Min.X < 0 || r.Min.Y < 0 || r.Max.X > 128 || r.Max.Y > 96 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
