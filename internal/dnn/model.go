package dnn

import (
	"fmt"

	"repro/internal/work"
)

// ConvLayer describes one convolution of the *full-size* architecture,
// for analytic workload accounting.
type ConvLayer struct {
	Name    string
	InC     int
	OutC    int
	K       int
	Stride  int
	Repeats int // identical consecutive layers collapsed
}

// Arch is a full-size detector architecture.
type Arch struct {
	Name      string
	InputSize int // square input resolution
	Layers    []ConvLayer
	// Priors is the number of prior/anchor boxes the output layer
	// decodes and (for SSD) sorts on the CPU.
	Priors int
	// CPUSortHeavy marks architectures whose post-processing sorts the
	// full prior set per class on the CPU (SSD's ranking stage — the
	// paper measured 71% of SSD512 CPU time there).
	CPUSortHeavy bool
	// Classes the head scores per prior.
	Classes int
}

// vggSSD builds the VGG16-based SSD architecture at the given input
// size, following the layer progression of the original network with
// extra feature layers.
func vggSSD(name string, input, priors int) Arch {
	layers := []ConvLayer{
		{Name: "conv1", InC: 3, OutC: 64, K: 3, Stride: 1, Repeats: 2},
		{Name: "conv2", InC: 64, OutC: 128, K: 3, Stride: 2, Repeats: 2},
		{Name: "conv3", InC: 128, OutC: 256, K: 3, Stride: 2, Repeats: 3},
		{Name: "conv4", InC: 256, OutC: 512, K: 3, Stride: 2, Repeats: 3},
		{Name: "conv5", InC: 512, OutC: 512, K: 3, Stride: 2, Repeats: 3},
		{Name: "fc6", InC: 512, OutC: 1024, K: 3, Stride: 1, Repeats: 1},
		{Name: "fc7", InC: 1024, OutC: 1024, K: 1, Stride: 1, Repeats: 1},
		{Name: "extra8", InC: 1024, OutC: 512, K: 3, Stride: 2, Repeats: 1},
		{Name: "extra9", InC: 512, OutC: 256, K: 3, Stride: 2, Repeats: 1},
		{Name: "extra10", InC: 256, OutC: 256, K: 3, Stride: 2, Repeats: 1},
		{Name: "heads", InC: 512, OutC: 84, K: 3, Stride: 1, Repeats: 6},
	}
	return Arch{
		Name: name, InputSize: input, Layers: layers,
		Priors: priors, CPUSortHeavy: true, Classes: 21,
	}
}

// darknet53YOLO builds the YOLOv3 architecture at the given input size.
func darknet53YOLO(name string, input int) Arch {
	layers := []ConvLayer{
		{Name: "conv0", InC: 3, OutC: 32, K: 3, Stride: 1, Repeats: 1},
		{Name: "down1", InC: 32, OutC: 64, K: 3, Stride: 2, Repeats: 1},
		{Name: "res1", InC: 64, OutC: 64, K: 3, Stride: 1, Repeats: 2},
		{Name: "down2", InC: 64, OutC: 128, K: 3, Stride: 2, Repeats: 1},
		{Name: "res2", InC: 128, OutC: 128, K: 3, Stride: 1, Repeats: 4},
		{Name: "down3", InC: 128, OutC: 256, K: 3, Stride: 2, Repeats: 1},
		{Name: "res3", InC: 256, OutC: 256, K: 3, Stride: 1, Repeats: 16},
		{Name: "down4", InC: 256, OutC: 512, K: 3, Stride: 2, Repeats: 1},
		{Name: "res4", InC: 512, OutC: 512, K: 3, Stride: 1, Repeats: 16},
		{Name: "down5", InC: 512, OutC: 1024, K: 3, Stride: 2, Repeats: 1},
		{Name: "res5", InC: 1024, OutC: 1024, K: 3, Stride: 1, Repeats: 8},
		{Name: "neck", InC: 1024, OutC: 512, K: 1, Stride: 1, Repeats: 3},
		{Name: "heads", InC: 512, OutC: 255, K: 1, Stride: 1, Repeats: 3},
	}
	return Arch{
		Name: name, InputSize: input, Layers: layers,
		Priors: 10647, CPUSortHeavy: false, Classes: 80,
	}
}

// Standard architectures the characterization sweeps over.
var (
	ArchSSD300 = vggSSD("SSD300", 300, 8732)
	ArchSSD512 = vggSSD("SSD512", 512, 24564)
	ArchYOLOv3 = darknet53YOLO("YOLOv3-416", 416)
)

// ArchByName resolves an architecture by its canonical name.
func ArchByName(name string) (Arch, error) {
	switch name {
	case ArchSSD300.Name:
		return ArchSSD300, nil
	case ArchSSD512.Name:
		return ArchSSD512, nil
	case ArchYOLOv3.Name:
		return ArchYOLOv3, nil
	default:
		return Arch{}, fmt.Errorf("dnn: unknown architecture %q", name)
	}
}

// GPUKernels expands the architecture into the per-layer device kernels
// for one inference at full input size.
func (a Arch) GPUKernels() []work.GPUKernel {
	var out []work.GPUKernel
	h, w := a.InputSize, a.InputSize
	for _, l := range a.Layers {
		for rep := 0; rep < l.Repeats; rep++ {
			stride := l.Stride
			if rep > 0 {
				stride = 1 // repeated layers keep resolution
			}
			oh := (h + stride - 1) / stride
			ow := (w + stride - 1) / stride
			inC := l.InC
			if rep > 0 {
				inC = l.OutC
			}
			fmas := float64(oh) * float64(ow) * float64(l.OutC) * float64(inC) * float64(l.K*l.K)
			bytes := 4 * (float64(h*w*inC) + float64(oh*ow*l.OutC) + float64(inC*l.OutC*l.K*l.K))
			out = append(out, work.GPUKernel{
				Name:       fmt.Sprintf("%s/%s.%d", a.Name, l.Name, rep),
				FMAs:       fmas,
				Bytes:      bytes,
				Efficiency: 0.6, // dense GEMM-backed convolution
			})
			h, w = oh, ow
		}
	}
	return out
}

// TotalFMAs sums the device arithmetic of one inference.
func (a Arch) TotalFMAs() float64 {
	var s float64
	for _, k := range a.GPUKernels() {
		s += k.FMAs
	}
	return s
}

// CPUWork returns the host-side work of one inference: input
// normalization/copy, box decoding, and — for SSD — the per-class
// ranking sort over the prior set whose data-dependent branches gave
// SSD512 its 9.78% branch misprediction rate in the paper.
func (a Arch) CPUWork() work.Work {
	var w work.Work
	// Pre-processing: resize + normalize, a few ops per input pixel.
	pix := float64(a.InputSize * a.InputSize * 3)
	w.FPOps += 4 * pix
	w.LoadOps += 2 * pix
	w.StoreOps += pix
	w.BytesTouched += 8 * pix

	// Box decode: geometry per prior.
	p := float64(a.Priors)
	w.FPOps += 24 * p
	w.LoadOps += 12 * p
	w.StoreOps += 6 * p
	w.BranchOps += 4 * p

	if a.CPUSortHeavy {
		// Per-class sort of the full prior ranking (quicksort-style):
		// classes * n log2 n comparison iterations, each a handful of
		// ops with a data-dependent branch.
		nlogn := p * log2(p)
		cls := float64(a.Classes)
		w.IntOps += 4 * cls * nlogn
		w.LoadOps += 3 * cls * nlogn
		w.StoreOps += 0.6 * cls * nlogn
		w.BranchOps += 1.2 * cls * nlogn
		w.BytesTouched += 16 * cls * p
	} else {
		// Confidence-threshold scan + light NMS.
		w.IntOps += 10 * p
		w.LoadOps += 6 * p
		w.BranchOps += 2 * p
		w.BytesTouched += 16 * p
	}
	return w
}

func log2(x float64) float64 {
	n := 0.0
	for x > 1 {
		x /= 2
		n++
	}
	return n
}
