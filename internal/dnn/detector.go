package dnn

import (
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/mathx"
)

// Detection is one decoded box in input-image pixel coordinates.
type Detection struct {
	Rect  geom.Rect
	Class int // index into ClassNames
	Score float64
}

// ClassNames are the functional detector's classes, aligned with the
// actor kinds the camera renders.
var ClassNames = []string{"car", "truck", "pedestrian", "cyclist"}

// Detector is the functional reduced-scale CNN detector. Its first
// convolution contains hand-constructed color-opponent and edge filters
// tuned to the camera's rendering palette; deeper layers are seeded
// random projections. The decoding head finds connected salient regions
// of the class activation maps — a real (if untrained) detection
// pipeline whose output depends only on pixels.
type Detector struct {
	arch Arch
	// Functional resolution (fixed across models; the analytic workload
	// differentiates their cost).
	funcH, funcW int
	// Layer parameters.
	w1, b1 []float32 // 3 -> nc1 color/edge bank
	w2, b2 []float32 // nc1 -> nc2 mixing
	w3, b3 []float32 // nc2 -> 4 class maps
	// Threshold on class-map activation.
	thresh float32

	// Per-frame activation scratch: one tensor per pipeline stage plus
	// the decoder's working sets, reused across Infer calls (each node
	// owns its detector and processes one frame at a time).
	tIn, tF1, tP1, tF2, tP2, tCls Tensor
	salBuf, visitedBuf            []bool
	stackBuf                      []int
}

const (
	nc1 = 8
	nc2 = 8
)

// NewDetector builds the functional detector for an architecture.
func NewDetector(arch Arch, seed uint64) *Detector {
	d := &Detector{
		arch:   arch,
		funcH:  48,
		funcW:  64,
		thresh: 0.35,
	}
	rng := mathx.NewRNG(seed)
	// Layer 1: 3x3 filters over RGB. First four output channels are
	// color-opponent detectors matched to the rendering palette
	// (car=red, truck=yellow, pedestrian=blue, cyclist=green); the rest
	// are edge/texture filters with small random weights.
	d.w1 = make([]float32, nc1*3*3*3)
	d.b1 = make([]float32, nc1)
	colorOpponent := [4][3]float32{
		{1.2, -0.7, -0.7},  // red-dominance (car)
		{0.7, 0.7, -1.3},   // yellow (truck)
		{-0.8, -0.2, 1.4},  // blue (pedestrian)
		{-0.8, 1.3, -0.55}, // green (cyclist)
	}
	for oc := 0; oc < nc1; oc++ {
		for ic := 0; ic < 3; ic++ {
			for ky := 0; ky < 3; ky++ {
				for kx := 0; kx < 3; kx++ {
					i := ((oc*3+ic)*3+ky)*3 + kx
					if oc < 4 {
						// Center-weighted color-opponent kernel.
						wgt := colorOpponent[oc][ic] / 9
						if ky == 1 && kx == 1 {
							wgt *= 2
						}
						d.w1[i] = wgt
					} else {
						d.w1[i] = float32(rng.NormScaled(0, 0.15))
					}
				}
			}
		}
		if oc < 4 {
			d.b1[oc] = -0.12 // suppress background response
		}
	}
	// Layer 2: channel mixing, biased toward identity on the four color
	// channels so class evidence survives depth.
	d.w2 = make([]float32, nc2*nc1*3*3)
	d.b2 = make([]float32, nc2)
	for oc := 0; oc < nc2; oc++ {
		for ic := 0; ic < nc1; ic++ {
			for ky := 0; ky < 3; ky++ {
				for kx := 0; kx < 3; kx++ {
					i := ((oc*nc1+ic)*3+ky)*3 + kx
					v := float32(rng.NormScaled(0, 0.04))
					if oc == ic && ky == 1 && kx == 1 && oc < 4 {
						v += 1.0
					}
					d.w2[i] = v
				}
			}
		}
	}
	// Layer 3: 1x1 projection to the 4 class maps (identity-dominant).
	d.w3 = make([]float32, 4*nc2)
	d.b3 = make([]float32, 4)
	for oc := 0; oc < 4; oc++ {
		for ic := 0; ic < nc2; ic++ {
			v := float32(rng.NormScaled(0, 0.03))
			if oc == ic {
				v += 1.0
			}
			d.w3[oc*nc2+ic] = v
		}
	}
	return d
}

// Arch returns the full-size architecture this detector models.
func (d *Detector) Arch() Arch { return d.arch }

// Infer runs the functional pipeline on an image tensor (any size; it
// is resized to the functional resolution) and returns detections in
// the *input tensor's* pixel coordinates.
func (d *Detector) Infer(img *Tensor) []Detection {
	in := ResizeBilinearInto(img, d.funcH, d.funcW, &d.tIn)
	f1 := LeakyReLU(Conv2DInto(in, d.w1, d.b1, nc1, 3, 1, 1, &d.tF1), 0.05)
	p1 := MaxPool2x2Into(f1, &d.tP1) // /2
	f2 := LeakyReLU(Conv2DInto(p1, d.w2, d.b2, nc2, 3, 1, 1, &d.tF2), 0.05)
	p2 := MaxPool2x2Into(f2, &d.tP2) // /4
	cls := Conv2DInto(p2, d.w3, d.b3, 4, 1, 1, 0, &d.tCls)

	dets := d.decode(cls)
	// Map back to the original image coordinates.
	sx := float64(img.W) / float64(cls.W)
	sy := float64(img.H) / float64(cls.H)
	for i := range dets {
		dets[i].Rect.Min.X *= sx
		dets[i].Rect.Max.X = (dets[i].Rect.Max.X + 1) * sx
		dets[i].Rect.Min.Y *= sy
		dets[i].Rect.Max.Y = (dets[i].Rect.Max.Y + 1) * sy
	}
	return NMS(dets, 0.45)
}

// decode finds connected components of super-threshold activation in
// the class maps (max over classes) and emits one candidate per
// component, classified by the component's mean class response.
func (d *Detector) decode(cls *Tensor) []Detection {
	h, w := cls.H, cls.W
	// Salience = max over class channels.
	if cap(d.salBuf) < h*w {
		d.salBuf = make([]bool, h*w)
		d.visitedBuf = make([]bool, h*w)
	}
	sal := d.salBuf[:h*w]
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			m := cls.At(0, y, x)
			for c := 1; c < 4; c++ {
				if v := cls.At(c, y, x); v > m {
					m = v
				}
			}
			sal[y*w+x] = m > d.thresh
		}
	}
	// 4-connected components via iterative flood fill.
	visited := d.visitedBuf[:h*w]
	for i := range visited {
		visited[i] = false
	}
	var out []Detection
	stack := d.stackBuf
	for start := 0; start < h*w; start++ {
		if !sal[start] || visited[start] {
			continue
		}
		stack = append(stack[:0], start)
		visited[start] = true
		minX, minY := w, h
		maxX, maxY := 0, 0
		var sums [4]float64
		count := 0
		for len(stack) > 0 {
			idx := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			y, x := idx/w, idx%w
			if x < minX {
				minX = x
			}
			if x > maxX {
				maxX = x
			}
			if y < minY {
				minY = y
			}
			if y > maxY {
				maxY = y
			}
			for c := 0; c < 4; c++ {
				sums[c] += float64(cls.At(c, y, x))
			}
			count++
			for _, n := range [4]int{idx - 1, idx + 1, idx - w, idx + w} {
				if n < 0 || n >= h*w || visited[n] || !sal[n] {
					continue
				}
				// Avoid wrapping across rows for the +/-1 neighbors.
				if (n == idx-1 || n == idx+1) && n/w != y {
					continue
				}
				visited[n] = true
				stack = append(stack, n)
			}
		}
		if count < 1 {
			continue
		}
		best, bestV := 0, sums[0]
		for c := 1; c < 4; c++ {
			if sums[c] > bestV {
				best, bestV = c, sums[c]
			}
		}
		score := 1 / (1 + math.Exp(-bestV/float64(count))) // squash mean act
		out = append(out, Detection{
			Rect:  geom.NewRect(geom.V2(float64(minX), float64(minY)), geom.V2(float64(maxX), float64(maxY))),
			Class: best,
			Score: score,
		})
	}
	d.stackBuf = stack[:0]
	return out
}

// NMS applies greedy non-maximum suppression at the given IoU threshold,
// keeping higher-scored boxes.
func NMS(dets []Detection, iouThresh float64) []Detection {
	sort.Slice(dets, func(i, j int) bool { return dets[i].Score > dets[j].Score })
	var out []Detection
	for _, d := range dets {
		keep := true
		for _, k := range out {
			if d.Rect.IoU(k.Rect) > iouThresh {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, d)
		}
	}
	return out
}
