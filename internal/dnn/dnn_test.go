package dnn

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestTensorAtSet(t *testing.T) {
	x := NewTensor(2, 3, 4)
	x.Set(1, 2, 3, 7)
	if x.At(1, 2, 3) != 7 || x.At(0, 0, 0) != 0 {
		t.Error("At/Set broken")
	}
}

func TestTensorPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewTensor(0, 1, 1)
}

func TestConv2DIdentity(t *testing.T) {
	in := NewTensor(1, 3, 3)
	for i := range in.Data {
		in.Data[i] = float32(i)
	}
	// 1x1 identity kernel.
	out := Conv2D(in, []float32{1}, []float32{0}, 1, 1, 1, 0)
	for i := range in.Data {
		if out.Data[i] != in.Data[i] {
			t.Fatal("1x1 identity conv should copy")
		}
	}
}

func TestConv2DSum(t *testing.T) {
	in := NewTensor(1, 3, 3)
	for i := range in.Data {
		in.Data[i] = 1
	}
	// 3x3 all-ones kernel, pad 1: center output = 9, corner = 4.
	w := make([]float32, 9)
	for i := range w {
		w[i] = 1
	}
	out := Conv2D(in, w, []float32{0}, 1, 3, 1, 1)
	if out.At(0, 1, 1) != 9 {
		t.Errorf("center = %v", out.At(0, 1, 1))
	}
	if out.At(0, 0, 0) != 4 {
		t.Errorf("corner = %v", out.At(0, 0, 0))
	}
}

func TestConv2DStride(t *testing.T) {
	in := NewTensor(1, 4, 4)
	out := Conv2D(in, []float32{1}, []float32{0.5}, 1, 1, 2, 0)
	if out.H != 2 || out.W != 2 {
		t.Errorf("stride-2 dims = %dx%d", out.H, out.W)
	}
	if out.At(0, 0, 0) != 0.5 {
		t.Error("bias not applied")
	}
}

func TestConv2DPanics(t *testing.T) {
	in := NewTensor(1, 3, 3)
	for name, fn := range map[string]func(){
		"weights": func() { Conv2D(in, []float32{1, 2}, []float32{0}, 1, 1, 1, 0) },
		"bias":    func() { Conv2D(in, []float32{1}, nil, 1, 1, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestLeakyReLU(t *testing.T) {
	x := NewTensor(1, 1, 3)
	x.Data[0], x.Data[1], x.Data[2] = -2, 0, 3
	LeakyReLU(x, 0.1)
	if math.Abs(float64(x.Data[0]+0.2)) > 1e-6 || x.Data[1] != 0 || x.Data[2] != 3 {
		t.Errorf("leaky = %v", x.Data)
	}
}

func TestMaxPool2x2(t *testing.T) {
	in := NewTensor(1, 2, 4)
	copy(in.Data, []float32{1, 2, 3, 4, 5, 6, 7, 8})
	out := MaxPool2x2(in)
	if out.H != 1 || out.W != 2 {
		t.Fatalf("pool dims %dx%d", out.H, out.W)
	}
	if out.At(0, 0, 0) != 6 || out.At(0, 0, 1) != 8 {
		t.Errorf("pool = %v", out.Data)
	}
}

func TestResizeBilinearIdentityAndScale(t *testing.T) {
	in := NewTensor(1, 2, 2)
	copy(in.Data, []float32{0, 1, 2, 3})
	same := ResizeBilinear(in, 2, 2)
	for i := range in.Data {
		if same.Data[i] != in.Data[i] {
			t.Fatal("identity resize should copy")
		}
	}
	up := ResizeBilinear(in, 4, 4)
	if up.H != 4 || up.W != 4 {
		t.Fatal("resize dims wrong")
	}
	// Values stay within input range.
	for _, v := range up.Data {
		if v < 0 || v > 3 {
			t.Fatalf("resize out of range: %v", v)
		}
	}
	// Corners approximately preserved.
	if up.At(0, 0, 0) != 0 || up.At(0, 3, 3) != 3 {
		t.Errorf("corners = %v, %v", up.At(0, 0, 0), up.At(0, 3, 3))
	}
}

func TestArchWorkloadOrdering(t *testing.T) {
	f300 := ArchSSD300.TotalFMAs()
	f512 := ArchSSD512.TotalFMAs()
	fy := ArchYOLOv3.TotalFMAs()
	if !(f512 > fy && fy > f300) {
		t.Errorf("FMA ordering: SSD512=%.2e YOLO=%.2e SSD300=%.2e", f512, fy, f300)
	}
	// SSD512 should be roughly (512/300)^2 = 2.9x SSD300.
	ratio := f512 / f300
	if ratio < 2 || ratio > 4 {
		t.Errorf("SSD512/SSD300 ratio = %v", ratio)
	}
}

func TestArchByName(t *testing.T) {
	for _, name := range []string{"SSD300", "SSD512", "YOLOv3-416"} {
		a, err := ArchByName(name)
		if err != nil || a.Name != name {
			t.Errorf("ArchByName(%s) = %v, %v", name, a.Name, err)
		}
	}
	if _, err := ArchByName("nope"); err == nil {
		t.Error("unknown arch should fail")
	}
}

func TestArchCPUWorkSSDSortDominates(t *testing.T) {
	s := ArchSSD512.CPUWork()
	y := ArchYOLOv3.CPUWork()
	if s.CPUOps() < 3*y.CPUOps() {
		t.Errorf("SSD512 CPU work (%.2e) should dwarf YOLO's (%.2e)", s.CPUOps(), y.CPUOps())
	}
	// SSD's branch share should be much higher (sort-heavy).
	sb := s.BranchOps / s.CPUOps()
	yb := y.BranchOps / y.CPUOps()
	if sb <= yb {
		t.Errorf("SSD branch share %v should exceed YOLO %v", sb, yb)
	}
}

func TestArchGPUKernelsResolutionChain(t *testing.T) {
	ks := ArchSSD300.GPUKernels()
	if len(ks) < 10 {
		t.Fatalf("kernel count = %d", len(ks))
	}
	for _, k := range ks {
		if k.FMAs <= 0 || k.Bytes <= 0 {
			t.Fatalf("degenerate kernel %+v", k)
		}
	}
}

// synthImage renders a colored rectangle on a dark background directly
// as a tensor, mimicking the camera's palette.
func synthImage(w, h int, r geom.Rect, color [3]float32) *Tensor {
	img := NewTensor(3, h, w)
	for c := 0; c < 3; c++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				img.Set(c, y, x, 0.12)
			}
		}
	}
	for y := int(r.Min.Y); y <= int(r.Max.Y); y++ {
		for x := int(r.Min.X); x <= int(r.Max.X); x++ {
			if y < 0 || x < 0 || y >= h || x >= w {
				continue
			}
			img.Set(0, y, x, color[0])
			img.Set(1, y, x, color[1])
			img.Set(2, y, x, color[2])
		}
	}
	return img
}

func TestDetectorFindsRedCar(t *testing.T) {
	d := NewDetector(ArchSSD512, 1)
	rect := geom.NewRect(geom.V2(40, 30), geom.V2(80, 60))
	img := synthImage(128, 96, rect, [3]float32{0.95, 0.25, 0.2})
	dets := d.Infer(img)
	if len(dets) == 0 {
		t.Fatal("no detections on clear target")
	}
	best := dets[0]
	if ClassNames[best.Class] != "car" {
		t.Errorf("class = %s", ClassNames[best.Class])
	}
	if best.Rect.IoU(rect) < 0.25 {
		t.Errorf("IoU with truth = %v (rect %+v)", best.Rect.IoU(rect), best.Rect)
	}
}

func TestDetectorClassifiesPedestrian(t *testing.T) {
	d := NewDetector(ArchYOLOv3, 2)
	rect := geom.NewRect(geom.V2(60, 40), geom.V2(75, 80))
	img := synthImage(128, 96, rect, [3]float32{0.2, 0.55, 0.95})
	dets := d.Infer(img)
	if len(dets) == 0 {
		t.Fatal("no detections")
	}
	if ClassNames[dets[0].Class] != "pedestrian" {
		t.Errorf("class = %s", ClassNames[dets[0].Class])
	}
}

func TestDetectorEmptyOnBackground(t *testing.T) {
	d := NewDetector(ArchSSD300, 3)
	img := synthImage(128, 96, geom.Rect{}, [3]float32{0.12, 0.12, 0.13})
	dets := d.Infer(img)
	if len(dets) > 1 {
		t.Errorf("background should yield at most noise: %d detections", len(dets))
	}
}

func TestDetectorTwoObjects(t *testing.T) {
	d := NewDetector(ArchSSD512, 4)
	img := synthImage(128, 96, geom.NewRect(geom.V2(10, 30), geom.V2(40, 60)), [3]float32{0.95, 0.25, 0.2})
	// Paint a second (blue) region.
	for y := 30; y <= 60; y++ {
		for x := 85; x <= 110; x++ {
			img.Set(0, y, x, 0.2)
			img.Set(1, y, x, 0.55)
			img.Set(2, y, x, 0.95)
		}
	}
	dets := d.Infer(img)
	if len(dets) < 2 {
		t.Fatalf("expected 2 detections, got %d", len(dets))
	}
	classes := map[string]bool{}
	for _, det := range dets {
		classes[ClassNames[det.Class]] = true
	}
	if !classes["car"] || !classes["pedestrian"] {
		t.Errorf("classes = %v", classes)
	}
}

func TestNMSSuppressesOverlaps(t *testing.T) {
	dets := []Detection{
		{Rect: geom.NewRect(geom.V2(0, 0), geom.V2(10, 10)), Score: 0.9},
		{Rect: geom.NewRect(geom.V2(1, 1), geom.V2(11, 11)), Score: 0.8},
		{Rect: geom.NewRect(geom.V2(50, 50), geom.V2(60, 60)), Score: 0.7},
	}
	out := NMS(dets, 0.45)
	if len(out) != 2 {
		t.Fatalf("NMS kept %d", len(out))
	}
	if out[0].Score != 0.9 || out[1].Score != 0.7 {
		t.Errorf("NMS kept wrong boxes: %+v", out)
	}
}

func TestNMSEmpty(t *testing.T) {
	if out := NMS(nil, 0.5); len(out) != 0 {
		t.Error("empty NMS should be empty")
	}
}
