// Package dnn is the minimal CNN inference engine behind the vision
// detectors. It serves two roles that the paper's CUDA-based SSD/YOLO
// implementations play there:
//
//  1. Functional: a reduced-scale convolutional pipeline really runs
//     over the synthetic camera pixels and produces detections whose
//     quality depends on image content (hand-constructed color/edge
//     filters plus a saliency decoding head — no ground-truth leaks).
//  2. Analytic: each detector carries its *full-size* architecture
//     (VGG-SSD at 300/512, Darknet-53 YOLOv3 at 416) whose exact
//     per-layer FLOP and byte volumes drive the GPU timing and power
//     models, preserving the relative cost ratios the paper measures.
package dnn

import (
	"fmt"

	"repro/internal/parallel"
)

// Tensor is a dense CHW float32 tensor.
type Tensor struct {
	C, H, W int
	Data    []float32
}

// NewTensor allocates a zero tensor.
func NewTensor(c, h, w int) *Tensor {
	if c <= 0 || h <= 0 || w <= 0 {
		panic(fmt.Sprintf("dnn: bad tensor dims %dx%dx%d", c, h, w))
	}
	return &Tensor{C: c, H: h, W: w, Data: make([]float32, c*h*w)}
}

// Reshape resizes t in place to (c, h, w), reusing its buffer when
// capacity allows. Contents are unspecified afterwards; every layer
// below overwrites its full output. Returns t.
func (t *Tensor) Reshape(c, h, w int) *Tensor {
	if c <= 0 || h <= 0 || w <= 0 {
		panic(fmt.Sprintf("dnn: bad tensor dims %dx%dx%d", c, h, w))
	}
	n := c * h * w
	if cap(t.Data) < n {
		t.Data = make([]float32, n)
	}
	t.Data = t.Data[:n]
	t.C, t.H, t.W = c, h, w
	return t
}

// ensureDst returns dst reshaped to (c, h, w), allocating when nil.
func ensureDst(dst *Tensor, c, h, w int) *Tensor {
	if dst == nil {
		return NewTensor(c, h, w)
	}
	return dst.Reshape(c, h, w)
}

// At returns element (c, y, x).
func (t *Tensor) At(c, y, x int) float32 { return t.Data[(c*t.H+y)*t.W+x] }

// Set assigns element (c, y, x).
func (t *Tensor) Set(c, y, x int, v float32) { t.Data[(c*t.H+y)*t.W+x] = v }

// convParallelMin is the smallest per-layer MAC volume worth fanning
// output channels across goroutines. Channels are independent (disjoint
// output planes, read-only input), so concurrency cannot change a
// single output bit.
const convParallelMin = 1 << 17

// Conv2D applies a 3x3-style convolution with stride and zero padding.
// weights layout: [outC][inC][k][k]; bias length outC.
func Conv2D(in *Tensor, weights []float32, bias []float32, outC, k, stride, pad int) *Tensor {
	return Conv2DInto(in, weights, bias, outC, k, stride, pad, nil)
}

// Conv2DInto is Conv2D with a reusable destination tensor (nil
// allocates). dst must not alias in.
func Conv2DInto(in *Tensor, weights []float32, bias []float32, outC, k, stride, pad int, dst *Tensor) *Tensor {
	if len(weights) != outC*in.C*k*k {
		panic("dnn: conv weight size mismatch")
	}
	if len(bias) != outC {
		panic("dnn: conv bias size mismatch")
	}
	outH := (in.H+2*pad-k)/stride + 1
	outW := (in.W+2*pad-k)/stride + 1
	out := ensureDst(dst, outC, outH, outW)
	convPlane := func(oc int) {
		wBase := oc * in.C * k * k
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				sum := bias[oc]
				iy0 := oy*stride - pad
				ix0 := ox*stride - pad
				for ic := 0; ic < in.C; ic++ {
					for ky := 0; ky < k; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= in.H {
							continue
						}
						rowIn := (ic*in.H + iy) * in.W
						rowW := wBase + (ic*k+ky)*k
						for kx := 0; kx < k; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= in.W {
								continue
							}
							sum += in.Data[rowIn+ix] * weights[rowW+kx]
						}
					}
				}
				out.Data[(oc*outH+oy)*outW+ox] = sum
			}
		}
	}
	if outC > 1 && outC*outH*outW*in.C*k*k >= convParallelMin {
		parallel.Run(outC, convPlane)
	} else {
		for oc := 0; oc < outC; oc++ {
			convPlane(oc)
		}
	}
	return out
}

// LeakyReLU applies max(x, alpha*x) in place and returns t.
func LeakyReLU(t *Tensor, alpha float32) *Tensor {
	for i, v := range t.Data {
		if v < 0 {
			t.Data[i] = alpha * v
		}
	}
	return t
}

// MaxPool2x2 downsamples by 2 with a 2x2 window (odd trailing row/col
// dropped, as common frameworks do with floor mode).
func MaxPool2x2(in *Tensor) *Tensor {
	return MaxPool2x2Into(in, nil)
}

// MaxPool2x2Into is MaxPool2x2 with a reusable destination (nil
// allocates). dst must not alias in.
func MaxPool2x2Into(in *Tensor, dst *Tensor) *Tensor {
	outH, outW := in.H/2, in.W/2
	if outH < 1 || outW < 1 {
		panic("dnn: tensor too small to pool")
	}
	out := ensureDst(dst, in.C, outH, outW)
	for c := 0; c < in.C; c++ {
		for y := 0; y < outH; y++ {
			for x := 0; x < outW; x++ {
				m := in.At(c, 2*y, 2*x)
				if v := in.At(c, 2*y, 2*x+1); v > m {
					m = v
				}
				if v := in.At(c, 2*y+1, 2*x); v > m {
					m = v
				}
				if v := in.At(c, 2*y+1, 2*x+1); v > m {
					m = v
				}
				out.Set(c, y, x, m)
			}
		}
	}
	return out
}

// ResizeBilinear resamples to (h, w).
func ResizeBilinear(in *Tensor, h, w int) *Tensor {
	return ResizeBilinearInto(in, h, w, nil)
}

// ResizeBilinearInto is ResizeBilinear with a reusable destination (nil
// allocates). dst must not alias in.
func ResizeBilinearInto(in *Tensor, h, w int, dst *Tensor) *Tensor {
	out := ensureDst(dst, in.C, h, w)
	if in.H == h && in.W == w {
		copy(out.Data, in.Data)
		return out
	}
	sy := float32(in.H) / float32(h)
	sx := float32(in.W) / float32(w)
	for c := 0; c < in.C; c++ {
		for y := 0; y < h; y++ {
			fy := (float32(y)+0.5)*sy - 0.5
			y0 := int(fy)
			if y0 < 0 {
				y0 = 0
			}
			y1 := y0 + 1
			if y1 >= in.H {
				y1 = in.H - 1
			}
			wy := fy - float32(y0)
			if wy < 0 {
				wy = 0
			}
			for x := 0; x < w; x++ {
				fx := (float32(x)+0.5)*sx - 0.5
				x0 := int(fx)
				if x0 < 0 {
					x0 = 0
				}
				x1 := x0 + 1
				if x1 >= in.W {
					x1 = in.W - 1
				}
				wx := fx - float32(x0)
				if wx < 0 {
					wx = 0
				}
				v := in.At(c, y0, x0)*(1-wy)*(1-wx) +
					in.At(c, y0, x1)*(1-wy)*wx +
					in.At(c, y1, x0)*wy*(1-wx) +
					in.At(c, y1, x1)*wy*wx
				out.Set(c, y, x, v)
			}
		}
	}
	return out
}
