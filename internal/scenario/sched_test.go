package scenario

import (
	"testing"
	"time"

	"repro/internal/autoware"
	"repro/internal/testenv"
)

// schedTestDuration matches the golden duration: the contention window
// closes at 9 s, leaving a second of recovery.
const schedTestDuration = 10 * time.Second

// TestContentionTunedImprovesP99 is the F1-closure assertion: the
// pinned tuned schedule must beat the plain contention scenario's
// worst-path faulted p99 while keeping the sample population (no
// winning by shedding the traffic), and must leave the fault-free
// baseline leg untouched.
func TestContentionTunedImprovesP99(t *testing.T) {
	plain, err := ByName(NameContention)
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := ByName(NameContentionTuned)
	if err != nil {
		t.Fatal(err)
	}

	run := func(spec Spec) *Result {
		res, err := RunWithEnv(testenv.Scenario(), testenv.Map(), spec, autoware.DetectorSSD300, schedTestDuration)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plainRes, tunedRes := run(plain), run(tuned)

	worst := func(r *Result) (string, float64, int, int) {
		var path string
		var p99 float64
		total := 0
		var count int
		for _, ps := range r.Paths {
			total += ps.Faulted.Count
			if ps.Faulted.Count == 0 {
				continue
			}
			if path == "" || ps.Faulted.P99 > p99 {
				path, p99, count = ps.Path, ps.Faulted.P99, ps.Faulted.Count
			}
		}
		return path, p99, count, total
	}
	plainPath, plainP99, _, plainTotal := worst(plainRes)
	tunedPath, tunedP99, _, tunedTotal := worst(tunedRes)
	t.Logf("plain worst %s p99=%.2fms (%d samples); tuned worst %s p99=%.2fms (%d samples)",
		plainPath, plainP99, plainTotal, tunedPath, tunedP99, tunedTotal)

	if tunedP99 >= plainP99 {
		t.Errorf("tuned schedule did not improve worst-path p99: %.2fms vs %.2fms", tunedP99, plainP99)
	}
	if float64(tunedTotal) < 0.5*float64(plainTotal) {
		t.Errorf("tuned schedule gutted the sample population: %d vs %d", tunedTotal, plainTotal)
	}

	// The scheduler only touches the faulted leg; both specs' fault-free
	// baselines must be identical (the tuned spec's lineage observer is
	// not allowed to move a sample).
	for i, ps := range plainRes.Paths {
		tp := tunedRes.Paths[i]
		if ps.Path != tp.Path || ps.Baseline != tp.Baseline {
			t.Errorf("baseline leg diverged on path %s with the chain log attached", ps.Path)
		}
	}
}
